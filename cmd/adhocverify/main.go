// Command adhocverify replays the reproduction's acceptance criteria: it
// runs the reference configurations and checks every documented qualitative
// finding of the study (see EXPERIMENTS.md). Exit status 0 means all
// findings reproduced. Ctrl-C cancels the runs cleanly.
//
// Usage:
//
//	adhocverify                 # quick pass (120 s runs, 2 seeds)
//	adhocverify -dur 900 -seeds 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"adhocsim/internal/core"
	"adhocsim/internal/sim"
)

func main() {
	var (
		dur      = flag.Float64("dur", 120, "simulated seconds per run")
		seeds    = flag.Int("seeds", 2, "replication seeds")
		workers  = flag.Int("workers", 0, "parallel workers (0 = NumCPU)")
		progress = flag.Bool("progress", true, "report per-run progress on stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := core.DefaultOptions()
	opts.Base.Duration = sim.Seconds(*dur)
	opts.Workers = *workers
	opts.Seeds = opts.Seeds[:0]
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, int64(i+1))
	}
	if *progress {
		opts.OnProgress = core.ProgressPrinter(os.Stderr)
	}

	fmt.Printf("verifying %d findings (%d protocols, %.0f s runs, %d seeds)...\n\n",
		len(core.Findings()), len(opts.Protocols), *dur, *seeds)
	results, err := core.Verify(ctx, opts)
	if err != nil {
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr, "adhocverify:", err)
		os.Exit(1)
	}
	fmt.Print(core.RenderVerify(results))
	for _, r := range results {
		if !r.Pass {
			os.Exit(1)
		}
	}
}
