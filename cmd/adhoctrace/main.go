// Command adhoctrace inspects a scenario without running traffic: it prints
// the mobility trace, connectivity statistics over time, and the CBR
// connection list — the equivalent of eyeballing ns-2 scenario files before
// a run.
//
// Usage:
//
//	adhoctrace -nodes 40 -pause 0 -dur 150 -seed 1 -every 10
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/topo"
)

func main() {
	var (
		nodes = flag.Int("nodes", 40, "number of nodes")
		areaW = flag.Float64("w", 1500, "area width (m)")
		areaH = flag.Float64("h", 300, "area height (m)")
		pause = flag.Float64("pause", 0, "pause time (s)")
		speed = flag.Float64("speed", 20, "max speed (m/s)")
		dur   = flag.Float64("dur", 150, "duration (s)")
		seed  = flag.Int64("seed", 1, "seed")
		every = flag.Float64("every", 10, "sampling interval (s)")
		pos   = flag.Bool("pos", false, "print per-node positions at each sample")
	)
	flag.Parse()

	spec := scenario.Default()
	spec.Nodes = *nodes
	spec.Area.W, spec.Area.H = *areaW, *areaH
	spec.Pause = sim.Seconds(*pause)
	spec.MaxSpeed = *speed
	if spec.MinSpeed > *speed {
		spec.MinSpeed = *speed
	}
	spec.Duration = sim.Seconds(*dur)

	inst, err := spec.Generate(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhoctrace:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario: %d nodes, %.0fx%.0f m, pause %.0fs, speed %.0f m/s, seed %d\n",
		*nodes, *areaW, *areaH, *pause, *speed, *seed)
	fmt.Println("\nconnections:")
	for _, c := range inst.Connections {
		fmt.Printf("  %v -> %v  %.1f pkt/s x %dB starting %v\n", c.Src, c.Dst, c.Rate, c.PayloadBytes, c.Start)
	}

	fmt.Println("\nconnectivity over time (radio range", inst.Radio.RxRange(), "m):")
	fmt.Printf("%8s %10s %12s %12s\n", "t(s)", "avg-degree", "components", "connected")
	for t := 0.0; t <= *dur; t += *every {
		g := topo.Snapshot(inst.Tracks, sim.At(t), inst.Radio.RxRange())
		fmt.Printf("%8.0f %10.2f %12d %12v\n", t, g.AvgDegree(), g.Components(), g.Connected())
		if *pos {
			for i, tr := range inst.Tracks {
				p := tr.At(sim.At(t))
				fmt.Printf("    n%-3d (%7.1f, %6.1f)\n", i, p.X, p.Y)
			}
		}
	}
}
