// Command adhocfigs regenerates every figure and table of the reproduced
// evaluation, printing text tables to stdout and writing CSV files to an
// output directory.
//
// By default it runs a scaled configuration (150 s instead of 900 s, one
// seed) that finishes in minutes on a laptop; pass -full for the
// publication-scale run.
//
// Usage:
//
//	adhocfigs                 # scaled run, all figures
//	adhocfigs -full -seeds 5  # full-length run
//	adhocfigs -only fig1,tab1 # subset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"adhocsim"
	"adhocsim/internal/core"
	"adhocsim/internal/sim"
)

func main() {
	var (
		full    = flag.Bool("full", false, "publication scale: 900 s runs (slow)")
		dur     = flag.Float64("dur", 0, "override duration (s)")
		seeds   = flag.Int("seeds", 1, "replication seeds per point")
		out     = flag.String("out", "results", "CSV output directory")
		only    = flag.String("only", "", "comma-separated subset: fig1..fig8,tab1,tab2,tab3")
		sources = flag.Int("sources", 10, "CBR sources for the pause sweep")
		workers = flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
	)
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Workers = *workers
	opts.Base.Sources = *sources
	switch {
	case *dur > 0:
		opts.Base.Duration = sim.Seconds(*dur)
	case *full:
		opts.Base.Duration = 900 * sim.Second
	default:
		opts.Base.Duration = 150 * sim.Second
	}
	opts.Seeds = opts.Seeds[:0]
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, int64(i+1))
	}

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(f))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	fmt.Println(core.RenderParameters(opts))

	// Figures 1–4 share the pause sweep.
	if sel("fig1") || sel("fig2") || sel("fig3") || sel("fig4") {
		fmt.Println("running pause-time sweep (figures 1-4)...")
		sweep, err := core.PauseSweep(opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range core.Figures14(sweep) {
			if !sel(f.ID) {
				continue
			}
			fmt.Println(core.RenderFigure(f))
			writeCSV(*out, f.ID, core.RenderFigureCSV(f))
		}
	}

	if sel("fig5") {
		fmt.Println("running path-optimality experiment (figure 5)...")
		hist, err := core.PathOptimality(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(core.RenderPathOptimality(hist, opts.Protocols))
	}

	if sel("fig6") {
		fmt.Println("running density sweep (figure 6)...")
		sweep, err := core.DensitySweep(opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: "fig6a", Title: "PDR vs node count", Metric: core.MetricPDR, Sweep: sweep},
			{ID: "fig6b", Title: "Delay vs node count", Metric: core.MetricDelay, Sweep: sweep},
			{ID: "fig6c", Title: "Routing overhead vs node count", Metric: core.MetricOverhead, Sweep: sweep},
		} {
			fmt.Println(core.RenderFigure(f))
			writeCSV(*out, f.ID, core.RenderFigureCSV(f))
		}
	}

	if sel("fig7") {
		fmt.Println("running offered-load sweep (figure 7)...")
		sweep, err := core.LoadSweep(opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: "fig7a", Title: "Delay vs offered load", Metric: core.MetricDelay, Sweep: sweep},
			{ID: "fig7b", Title: "Throughput vs offered load", Metric: core.MetricThroughput, Sweep: sweep},
		} {
			fmt.Println(core.RenderFigure(f))
			writeCSV(*out, f.ID, core.RenderFigureCSV(f))
		}
	}

	if sel("fig8") {
		fmt.Println("running speed sweep (figure 8)...")
		sweep, err := core.SpeedSweep(opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: "fig8a", Title: "PDR vs max speed", Metric: core.MetricPDR, Sweep: sweep},
			{ID: "fig8b", Title: "Routing overhead vs max speed", Metric: core.MetricOverhead, Sweep: sweep},
		} {
			fmt.Println(core.RenderFigure(f))
			writeCSV(*out, f.ID, core.RenderFigureCSV(f))
		}
	}

	if sel("tab1") || sel("tab2") {
		fmt.Println("running summary configuration (tables 1-2)...")
		sum, err := core.SummaryTable(opts)
		if err != nil {
			fatal(err)
		}
		if sel("tab1") {
			fmt.Println(core.RenderSummaryTable(sum, opts.Protocols))
		}
		if sel("tab2") {
			fmt.Println(core.RenderOverheadBreakdown(sum, opts.Protocols))
		}
	}
	_ = adhocsim.DSR // keep the facade linked for doc purposes
}

func writeCSV(dir, id, content string) {
	path := filepath.Join(dir, id+".csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adhocfigs:", err)
	os.Exit(1)
}
