// Command adhocfigs regenerates every figure and table of the reproduced
// evaluation, printing text tables to stdout and writing CSV (and
// optionally JSON) files to an output directory.
//
// By default it runs a scaled configuration (150 s instead of 900 s, one
// seed) that finishes in minutes on a laptop; pass -full for the
// publication-scale run. Ctrl-C cancels cleanly mid-sweep.
//
// Beyond the published figures, -axis sweeps any catalogue axis — including
// dimensions the study never varied, such as transmission range:
//
//	adhocfigs                          # scaled run, all figures
//	adhocfigs -full -seeds 5           # full-length run
//	adhocfigs -only fig1,tab1          # subset
//	adhocfigs -axis txrange=100,150,200,250 -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"adhocsim"
	"adhocsim/internal/core"
	"adhocsim/internal/sim"
)

func main() {
	var (
		full     = flag.Bool("full", false, "publication scale: 900 s runs (slow)")
		dur      = flag.Float64("dur", 0, "override duration (s)")
		seeds    = flag.Int("seeds", 1, "replication seeds per point")
		out      = flag.String("out", "results", "CSV/JSON output directory")
		only     = flag.String("only", "", "comma-separated subset: fig1..fig8,tab1,tab2,tab3")
		sources  = flag.Int("sources", 10, "CBR sources for the pause sweep")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
		asJSON   = flag.Bool("json", false, "also write .json files for every figure and sweep")
		progress = flag.Bool("progress", true, "report per-run progress on stderr")
		axisFlag = flag.String("axis", "", "custom sweep instead of the study figures: name=v1,v2,... (names: "+strings.Join(core.AxisNames(), ", ")+"; empty value list selects axis defaults)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := core.DefaultOptions()
	opts.Workers = *workers
	opts.Base.Sources = *sources
	switch {
	case *dur > 0:
		opts.Base.Duration = sim.Seconds(*dur)
	case *full:
		opts.Base.Duration = 900 * sim.Second
	default:
		opts.Base.Duration = 150 * sim.Second
	}
	opts.Seeds = opts.Seeds[:0]
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, int64(i+1))
	}
	if *progress {
		opts.OnProgress = core.ProgressPrinter(os.Stderr)
		progressActive = true
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	emit := func(id string, f core.Figure) {
		fmt.Println(core.RenderFigure(f))
		writeFile(*out, id+".csv", []byte(core.RenderFigureCSV(f)))
		if *asJSON {
			b, err := core.FigureJSON(f)
			if err != nil {
				fatal(err)
			}
			writeFile(*out, id+".json", b)
		}
	}
	emitSweep := func(id string, sweep *core.SweepResult) {
		if !*asJSON {
			return
		}
		b, err := core.SweepJSON(sweep)
		if err != nil {
			fatal(err)
		}
		writeFile(*out, id+".json", b)
	}

	// A custom axis sweep replaces the study figure set.
	if *axisFlag != "" {
		axis, err := parseAxis(*axisFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Println(core.RenderParameters(opts))
		fmt.Printf("running %s sweep...\n", axis.Label)
		sweep, err := core.Sweep(ctx, opts, axis)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: axis.Label + "_pdr", Title: "PDR vs " + axis.Label, Metric: core.MetricPDR, Sweep: sweep},
			{ID: axis.Label + "_delay", Title: "Delay vs " + axis.Label, Metric: core.MetricDelay, Sweep: sweep},
			{ID: axis.Label + "_overhead", Title: "Routing overhead vs " + axis.Label, Metric: core.MetricOverhead, Sweep: sweep},
			{ID: axis.Label + "_throughput", Title: "Throughput vs " + axis.Label, Metric: core.MetricThroughput, Sweep: sweep},
		} {
			emit(f.ID, f)
		}
		emitSweep(axis.Label+"_sweep", sweep)
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(f))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Println(core.RenderParameters(opts))

	// Figures 1–4 share the pause sweep.
	if sel("fig1") || sel("fig2") || sel("fig3") || sel("fig4") {
		fmt.Println("running pause-time sweep (figures 1-4)...")
		sweep, err := core.PauseSweep(ctx, opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range core.Figures14(sweep) {
			if !sel(f.ID) {
				continue
			}
			emit(f.ID, f)
		}
		emitSweep("pause_sweep", sweep)
	}

	if sel("fig5") {
		fmt.Println("running path-optimality experiment (figure 5)...")
		hist, err := core.PathOptimality(ctx, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(core.RenderPathOptimality(hist, opts.Protocols))
	}

	if sel("fig6") {
		fmt.Println("running density sweep (figure 6)...")
		sweep, err := core.DensitySweep(ctx, opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: "fig6a", Title: "PDR vs node count", Metric: core.MetricPDR, Sweep: sweep},
			{ID: "fig6b", Title: "Delay vs node count", Metric: core.MetricDelay, Sweep: sweep},
			{ID: "fig6c", Title: "Routing overhead vs node count", Metric: core.MetricOverhead, Sweep: sweep},
		} {
			emit(f.ID, f)
		}
		emitSweep("density_sweep", sweep)
	}

	if sel("fig7") {
		fmt.Println("running offered-load sweep (figure 7)...")
		sweep, err := core.LoadSweep(ctx, opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: "fig7a", Title: "Delay vs offered load", Metric: core.MetricDelay, Sweep: sweep},
			{ID: "fig7b", Title: "Throughput vs offered load", Metric: core.MetricThroughput, Sweep: sweep},
		} {
			emit(f.ID, f)
		}
		emitSweep("load_sweep", sweep)
	}

	if sel("fig8") {
		fmt.Println("running speed sweep (figure 8)...")
		sweep, err := core.SpeedSweep(ctx, opts, nil)
		if err != nil {
			fatal(err)
		}
		for _, f := range []core.Figure{
			{ID: "fig8a", Title: "PDR vs max speed", Metric: core.MetricPDR, Sweep: sweep},
			{ID: "fig8b", Title: "Routing overhead vs max speed", Metric: core.MetricOverhead, Sweep: sweep},
		} {
			emit(f.ID, f)
		}
		emitSweep("speed_sweep", sweep)
	}

	if sel("tab1") || sel("tab2") {
		fmt.Println("running summary configuration (tables 1-2)...")
		sum, err := core.SummaryTable(ctx, opts)
		if err != nil {
			fatal(err)
		}
		if sel("tab1") {
			fmt.Println(core.RenderSummaryTable(sum, opts.Protocols))
		}
		if sel("tab2") {
			fmt.Println(core.RenderOverheadBreakdown(sum, opts.Protocols))
		}
		if *asJSON {
			for _, p := range opts.Protocols {
				b, err := core.ResultsJSON(sum[p])
				if err != nil {
					fatal(err)
				}
				writeFile(*out, "summary_"+strings.ToLower(p)+".json", b)
			}
		}
	}
	_ = adhocsim.DSR // keep the facade linked for doc purposes
}

// parseAxis parses "-axis name=v1,v2,..."; an empty or omitted value list
// selects the axis defaults.
func parseAxis(s string) (core.Axis, error) {
	name, list, _ := strings.Cut(s, "=")
	var values []float64
	if strings.TrimSpace(list) != "" {
		for _, field := range strings.Split(list, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return core.Axis{}, fmt.Errorf("bad axis value %q: %v", field, err)
			}
			values = append(values, v)
		}
	}
	return core.AxisByName(name, values)
}

func writeFile(dir, name string, content []byte) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n\n", path)
}

// progressActive makes fatal terminate a partially-drawn progress line
// before the error (e.g. on mid-sweep cancellation).
var progressActive bool

func fatal(err error) {
	if progressActive {
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintln(os.Stderr, "adhocfigs:", err)
	os.Exit(1)
}
