// Command adhocd is the HTTP simulation service: it accepts replication
// campaigns as JSON, executes them on a worker pool, and serves live
// progress and aggregated results.
//
// Usage:
//
//	adhocd -addr :8080 -journal-dir ./journals
//
// API:
//
//	POST   /campaigns              submit a campaign spec (JSON)
//	GET    /campaigns              list campaigns
//	GET    /campaigns/{id}         live progress
//	GET    /campaigns/{id}/results aggregated results (409 while running)
//	DELETE /campaigns/{id}         cancel
//
// The -smoke flag runs a self-contained smoke test instead of serving: the
// daemon binds a loopback port, submits a tiny two-protocol campaign to
// itself over real HTTP, polls it to completion, prints the results, and
// exits non-zero on any failure. CI runs this via `make campaign-smoke`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"adhocsim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
		journalDir = flag.String("journal-dir", "", "checkpoint journals directory (empty = no checkpointing)")
		smoke      = flag.Bool("smoke", false, "run the loopback HTTP smoke test and exit")
	)
	flag.Parse()

	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "adhocd:", err)
			os.Exit(1)
		}
	}
	srv := adhocsim.NewCampaignServer(adhocsim.CampaignServerOptions{
		Workers:    *workers,
		JournalDir: *journalDir,
	})

	if *smoke {
		if err := runSmoke(srv); err != nil {
			fmt.Fprintln(os.Stderr, "adhocd: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("campaign smoke OK")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Fprintln(os.Stderr, "adhocd: shutting down")
		httpSrv.Close()
	}()
	fmt.Fprintf(os.Stderr, "adhocd: listening on %s\n", *addr)
	err := httpSrv.ListenAndServe()
	srv.Close() // cancel and drain running campaigns
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "adhocd:", err)
		os.Exit(1)
	}
}

// smokeSpec is the tiny campaign of the smoke test: 2 protocols × 2
// replication seeds on a 10-node, 10-second scenario — 4 runs, a few
// seconds of wall clock. It selects non-default scenario models — for the
// radio, log-normal shadowing decoded under cumulative-interference SINR —
// so the smoke proves all three registry paths end to end over HTTP.
const smokeSpec = `{
  "name": "smoke",
  "base": {
    "nodes": 10, "area_w_m": 600, "duration_s": 10, "sources": 3,
    "mobility": {"name": "gauss-markov", "params": {"alpha": 0.8}},
    "traffic": {"name": "expoo", "params": {"on_s": 0.5, "off_s": 0.5}},
    "radio": {"name": "shadowing", "params": {"sigma_db": 3}, "sinr": true}
  },
  "protocols": ["DSR", "AODV"],
  "max_reps": 2
}`

// runSmoke exercises the full submit → poll → results → delete cycle over a
// real loopback TCP listener.
func runSmoke(srv *adhocsim.CampaignServer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "adhocd: smoke server on %s\n", base)

	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		return err
	}
	var created struct {
		ID      string `json:"id"`
		MaxRuns int    `json:"max_runs"`
	}
	if err := decode(resp, http.StatusCreated, &created); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "adhocd: smoke campaign %s (%d runs max)\n", created.ID, created.MaxRuns)

	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(base + "/campaigns/" + created.ID)
		if err != nil {
			return err
		}
		var snap adhocsim.CampaignSnapshot
		if err := decode(resp, http.StatusOK, &snap); err != nil {
			return fmt.Errorf("progress: %w", err)
		}
		if snap.State == "done" {
			break
		}
		if snap.State == "failed" || snap.State == "cancelled" {
			return fmt.Errorf("campaign ended %s: %s", snap.State, snap.Err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign stuck: %+v", snap)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err = http.Get(base + "/campaigns/" + created.ID + "/results")
	if err != nil {
		return err
	}
	var result adhocsim.CampaignResult
	if err := decode(resp, http.StatusOK, &result); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if len(result.Cells) != 2 {
		return fmt.Errorf("expected 2 cells, got %d", len(result.Cells))
	}
	for _, cell := range result.Cells {
		if cell.Reps != 2 || cell.Merged.DataSent == 0 {
			return fmt.Errorf("degenerate cell: %+v", cell)
		}
		pdr := cell.Metrics["pdr"]
		fmt.Fprintf(os.Stderr, "adhocd: smoke %-6s pdr %.1f%% ±%.1f (n=%d)\n",
			cell.Protocol, pdr.Mean, pdr.CI95, pdr.N)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/campaigns/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var final adhocsim.CampaignSnapshot
	if err := decode(resp, http.StatusOK, &final); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// decode checks the status code and unmarshals the JSON body.
func decode(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, body)
	}
	return json.Unmarshal(body, v)
}
