// Command adhocd is the HTTP simulation service: it accepts replication
// campaigns as JSON, executes them on local executors and/or a cluster of
// worker processes, and serves live progress (polling and SSE) and
// aggregated results.
//
// Usage:
//
//	adhocd -addr :8080 -journal-dir ./journals -cache-dir ./cache
//	adhocd -worker -join http://coordinator:8080
//
// API (coordinator mode):
//
//	POST   /campaigns              submit a campaign spec (JSON)
//	GET    /campaigns              list campaigns
//	GET    /campaigns/{id}         live progress
//	GET    /campaigns/{id}/events  server-sent-events progress stream
//	GET    /campaigns/{id}/results aggregated results (409 while running)
//	DELETE /campaigns/{id}         cancel (workers are notified)
//	POST   /dist/{lease,renew,release,commit} + GET /dist/...
//	                               the worker protocol (see internal/dist)
//
// SIGINT/SIGTERM drains gracefully: dispatch stops, in-flight runs finish
// and are journaled, leases are released. A second signal forces exit.
//
// The -smoke flag runs a self-contained single-process smoke test; the
// -smoke-dist flag runs a distributed one — one coordinator plus two
// worker child processes over loopback, killing and replacing a worker
// mid-campaign — and asserts the distributed result is reflect.DeepEqual
// to the single-process result, that resubmitting the spec completes
// entirely from the result cache, and that the SSE stream reports
// monotonically increasing run counts. CI runs both via
// `make campaign-smoke` and `make dist-smoke`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"syscall"
	"time"

	"adhocsim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (coordinator mode)")
		workers    = flag.Int("workers", 0, "local executor slots (0 = GOMAXPROCS; -1 = pure coordinator, remote workers only)")
		journalDir = flag.String("journal-dir", "", "checkpoint journals directory (empty = no checkpointing)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory (empty = in-memory cache)")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "worker lease duration")
		workerMode = flag.Bool("worker", false, "run as a worker process (requires -join)")
		join       = flag.String("join", "", "coordinator URL to join in worker mode")
		smoke      = flag.Bool("smoke", false, "run the single-process loopback smoke test and exit")
		smokeDist  = flag.Bool("smoke-dist", false, "run the distributed smoke test (coordinator + 2 worker processes) and exit")
		smokeChurn = flag.Bool("smoke-churn", false, "run the churn×scale autoconfiguration smoke test and exit")
	)
	flag.Parse()

	if *workerMode {
		os.Exit(runWorkerMode(*join, *workers))
	}
	if *smokeDist {
		if err := runSmokeDist(); err != nil {
			fmt.Fprintln(os.Stderr, "adhocd: dist smoke:", err)
			os.Exit(1)
		}
		fmt.Println("dist smoke OK")
		return
	}

	srv, err := newServer(*workers, *journalDir, *cacheDir, *leaseTTL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhocd:", err)
		os.Exit(1)
	}

	if *smoke {
		if err := runSmoke(srv); err != nil {
			fmt.Fprintln(os.Stderr, "adhocd: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("campaign smoke OK")
		return
	}
	if *smokeChurn {
		if err := runSmokeChurn(srv); err != nil {
			fmt.Fprintln(os.Stderr, "adhocd: churn smoke:", err)
			os.Exit(1)
		}
		fmt.Println("churn smoke OK")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "adhocd: draining — in-flight runs will checkpoint (signal again to force)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		go func() {
			select {
			case <-sig:
				cancel()
			case <-ctx.Done():
			}
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "adhocd: forced shutdown:", err)
		}
		cancel()
		httpSrv.Close() // closes the listener and any open SSE streams
	}()
	fmt.Fprintf(os.Stderr, "adhocd: listening on %s\n", *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "adhocd:", err)
		os.Exit(1)
	}
}

// newServer builds the coordinator from the command-line flags.
func newServer(workers int, journalDir, cacheDir string, leaseTTL time.Duration) (*adhocsim.DistServer, error) {
	if journalDir != "" {
		if err := os.MkdirAll(journalDir, 0o755); err != nil {
			return nil, err
		}
	}
	var cache adhocsim.ResultStore
	var err error
	if cacheDir != "" {
		cache, err = adhocsim.NewFSResultStore(cacheDir)
		if err != nil {
			return nil, err
		}
	} else {
		cache = adhocsim.NewMemResultStore()
	}
	return adhocsim.NewDistServer(adhocsim.DistServerOptions{
		LocalWorkers: workers,
		JournalDir:   journalDir,
		Cache:        cache,
		LeaseTTL:     leaseTTL,
	}), nil
}

// runWorkerMode executes leased run units until the first SIGINT/SIGTERM
// (graceful drain: in-flight runs finish and commit); a second signal
// aborts in-flight runs immediately.
func runWorkerMode(join string, slots int) int {
	if join == "" {
		fmt.Fprintln(os.Stderr, "adhocd: -worker requires -join <coordinator URL>")
		return 2
	}
	if slots == 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	soft, softCancel := context.WithCancel(context.Background())
	hard, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	defer softCancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "adhocd: worker draining — in-flight runs will commit (signal again to abort)")
		softCancel()
		<-sig
		hardCancel()
	}()
	err := adhocsim.RunDistWorker(soft, adhocsim.DistWorkerOptions{
		Coordinator: join,
		Slots:       slots,
		Hard:        hard,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "adhocd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhocd: worker:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "adhocd: worker exited cleanly")
	return 0
}

// smokeSpec is the tiny campaign of the smoke tests: 2 protocols × 2
// replication seeds on a 10-node, 10-second scenario — 4 runs, a few
// seconds of wall clock. It selects non-default scenario models — for the
// radio, log-normal shadowing decoded under cumulative-interference SINR —
// so the smoke proves all three registry paths end to end over HTTP.
const smokeSpec = `{
  "name": "smoke",
  "base": {
    "nodes": 10, "area_w_m": 600, "duration_s": 10, "sources": 3,
    "mobility": {"name": "gauss-markov", "params": {"alpha": 0.8}},
    "traffic": {"name": "expoo", "params": {"on_s": 0.5, "off_s": 0.5}},
    "radio": {"name": "shadowing", "params": {"sigma_db": 3}, "sinr": true}
  },
  "protocols": ["DSR", "AODV"],
  "max_reps": 2
}`

// churnSpec is the churn×scale network-initialization campaign of the churn
// smoke test: the AUTOCONF protocol crossed over two lifecycle models
// (Ravelomanana-style staggered bootstrap and a flash-crowd burst) and two
// population scales, exercising the lifecycle registry, the membership-aware
// hot path and the autoconfiguration census end to end over HTTP.
const churnSpec = `{
  "name": "churn-smoke",
  "base": {
    "nodes": 10, "area_w_m": 600, "duration_s": 45, "sources": 3
  },
  "protocols": ["AUTOCONF"],
  "axes": [
    {"name": "lifecycle", "models": ["staggered-join", "flashcrowd"]},
    {"name": "nodes", "values": [10, 20]}
  ],
  "max_reps": 2
}`

// serveLoopback binds a loopback port and serves the handler on it.
func serveLoopback(h http.Handler) (base string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

type createdInfo struct {
	ID      string `json:"id"`
	MaxRuns int    `json:"max_runs"`
}

// submitCampaign POSTs a campaign spec.
func submitCampaign(base, spec string) (createdInfo, error) {
	var created createdInfo
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return created, err
	}
	if err := decode(resp, http.StatusCreated, &created); err != nil {
		return created, fmt.Errorf("submit: %w", err)
	}
	return created, nil
}

// waitDone polls a campaign until it settles.
func waitDone(base, id string, timeout time.Duration) (adhocsim.CampaignSnapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			return adhocsim.CampaignSnapshot{}, err
		}
		var snap adhocsim.CampaignSnapshot
		if err := decode(resp, http.StatusOK, &snap); err != nil {
			return snap, fmt.Errorf("progress: %w", err)
		}
		switch snap.State {
		case "done":
			return snap, nil
		case "failed", "cancelled":
			return snap, fmt.Errorf("campaign ended %s: %s", snap.State, snap.Err)
		}
		if time.Now().After(deadline) {
			return snap, fmt.Errorf("campaign stuck: %+v", snap)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fetchResults GETs the final aggregate.
func fetchResults(base, id string) (adhocsim.CampaignResult, error) {
	var result adhocsim.CampaignResult
	resp, err := http.Get(base + "/campaigns/" + id + "/results")
	if err != nil {
		return result, err
	}
	if err := decode(resp, http.StatusOK, &result); err != nil {
		return result, fmt.Errorf("results: %w", err)
	}
	return result, nil
}

// runSmoke exercises the full submit → poll → results → delete cycle over a
// real loopback TCP listener, single process.
func runSmoke(srv *adhocsim.DistServer) error {
	base, stop, err := serveLoopback(srv.Handler())
	if err != nil {
		return err
	}
	defer stop()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "adhocd: smoke server on %s\n", base)

	created, err := submitCampaign(base, smokeSpec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adhocd: smoke campaign %s (%d runs max)\n", created.ID, created.MaxRuns)
	if _, err := waitDone(base, created.ID, 5*time.Minute); err != nil {
		return err
	}
	result, err := fetchResults(base, created.ID)
	if err != nil {
		return err
	}
	if len(result.Cells) != 2 {
		return fmt.Errorf("expected 2 cells, got %d", len(result.Cells))
	}
	for _, cell := range result.Cells {
		if cell.Reps != 2 || cell.Merged.DataSent == 0 {
			return fmt.Errorf("degenerate cell: %+v", cell)
		}
		// The streaming pipeline must surface per-packet percentiles in the
		// HTTP results JSON, monotone and covering every delivered packet.
		q, ok := cell.Quantiles["delay"]
		if !ok {
			return fmt.Errorf("cell %s has no delay quantiles", cell.Label)
		}
		if q.Count != float64(cell.Merged.DataDelivered) {
			return fmt.Errorf("cell %s delay sketch count %v != delivered %d",
				cell.Label, q.Count, cell.Merged.DataDelivered)
		}
		if !(q.P50 > 0 && q.P50 <= q.P95 && q.P95 <= q.P99) {
			return fmt.Errorf("cell %s percentiles not monotone: %+v", cell.Label, q)
		}
		if cell.Series == nil || len(cell.Series.Counts) == 0 {
			return fmt.Errorf("cell %s has no time series", cell.Label)
		}
		pdr := cell.Metrics["pdr"]
		fmt.Fprintf(os.Stderr, "adhocd: smoke %-6s pdr %.1f%% ±%.1f (n=%d), delay p50/p95/p99 %.2f/%.2f/%.2f ms\n",
			cell.Protocol, pdr.Mean, pdr.CI95, pdr.N, q.P50*1e3, q.P95*1e3, q.P99*1e3)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/campaigns/"+created.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var final adhocsim.CampaignSnapshot
	if err := decode(resp, http.StatusOK, &final); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// runSmokeChurn submits the churn×scale autoconfiguration campaign over
// loopback HTTP and asserts the membership-aware metric plumbing end to end:
// every cell must report joins, a positive time_to_converge with its CI95
// summary, and an addr_collision_rate in [0,1].
func runSmokeChurn(srv *adhocsim.DistServer) error {
	base, stop, err := serveLoopback(srv.Handler())
	if err != nil {
		return err
	}
	defer stop()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "adhocd: churn smoke server on %s\n", base)

	created, err := submitCampaign(base, churnSpec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adhocd: churn campaign %s (%d runs max)\n", created.ID, created.MaxRuns)
	if _, err := waitDone(base, created.ID, 5*time.Minute); err != nil {
		return err
	}
	result, err := fetchResults(base, created.ID)
	if err != nil {
		return err
	}
	if len(result.Cells) != 4 {
		return fmt.Errorf("expected 4 cells (2 lifecycle models × 2 scales), got %d", len(result.Cells))
	}
	for _, cell := range result.Cells {
		if cell.Merged.Joins == 0 {
			return fmt.Errorf("cell %s saw no join events", cell.Label)
		}
		ttc, ok := cell.Metrics["time_to_converge"]
		if !ok {
			return fmt.Errorf("cell %s has no time_to_converge metric", cell.Label)
		}
		if ttc.Mean <= 0 {
			return fmt.Errorf("cell %s time_to_converge %v not positive", cell.Label, ttc.Mean)
		}
		acr, ok := cell.Metrics["addr_collision_rate"]
		if !ok {
			return fmt.Errorf("cell %s has no addr_collision_rate metric", cell.Label)
		}
		if acr.Mean < 0 || acr.Mean > 1 {
			return fmt.Errorf("cell %s addr_collision_rate %v outside [0,1]", cell.Label, acr.Mean)
		}
		fmt.Fprintf(os.Stderr, "adhocd: churn %-40s joins %d, ttc %.2fs ±%.2f (n=%d), collisions %.4f\n",
			cell.Label, cell.Merged.Joins, ttc.Mean, ttc.CI95, ttc.N, acr.Mean)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/campaigns/"+created.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var final adhocsim.CampaignSnapshot
	if err := decode(resp, http.StatusOK, &final); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// runSmokeDist is the distributed smoke test: a pure coordinator plus two
// worker child processes over loopback, one of which is SIGKILLed
// mid-campaign and replaced. Asserts the three distribution invariants:
// the distributed aggregate is reflect.DeepEqual to the single-process
// one, an identical resubmission on a fresh coordinator completes entirely
// from the shared result cache, and the SSE progress stream reports
// monotonically increasing committed-run counts through completion.
func runSmokeDist() error {
	tmp, err := os.MkdirTemp("", "adhocd-dist-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	cache, err := adhocsim.NewFSResultStore(filepath.Join(tmp, "cache"))
	if err != nil {
		return err
	}

	// Reference: the same spec, single process, no cache.
	ref := adhocsim.NewDistServer(adhocsim.DistServerOptions{})
	refBase, refStop, err := serveLoopback(ref.Handler())
	if err != nil {
		return err
	}
	refCreated, err := submitCampaign(refBase, smokeSpec)
	if err == nil {
		_, err = waitDone(refBase, refCreated.ID, 5*time.Minute)
	}
	var refResult adhocsim.CampaignResult
	if err == nil {
		refResult, err = fetchResults(refBase, refCreated.ID)
	}
	ref.Close()
	refStop()
	if err != nil {
		return fmt.Errorf("single-process reference: %w", err)
	}

	// Distributed: a coordinator with no local executors — every run must
	// arrive from a worker process. Short leases so the killed worker's
	// unit re-issues quickly.
	coord := adhocsim.NewDistServer(adhocsim.DistServerOptions{
		LocalWorkers: -1,
		Cache:        cache,
		LeaseTTL:     2 * time.Second,
		ReapInterval: 200 * time.Millisecond,
	})
	base, stop, err := serveLoopback(coord.Handler())
	if err != nil {
		return err
	}
	defer stop()
	defer coord.Close()
	fmt.Fprintf(os.Stderr, "adhocd: dist smoke coordinator on %s\n", base)

	w1, err := spawnWorker(base)
	if err != nil {
		return err
	}
	defer reapWorker(w1)
	w2, err := spawnWorker(base)
	if err != nil {
		return err
	}
	defer reapWorker(w2)

	created, err := submitCampaign(base, smokeSpec)
	if err != nil {
		return err
	}
	watch := watchEvents(base, created.ID)

	// Kill a worker as soon as the first run lands, then bring up a
	// replacement: the campaign must still complete, identically.
	select {
	case <-watch.firstCommit:
	case err := <-watch.done:
		if err != nil {
			return fmt.Errorf("SSE stream: %w", err)
		}
	case <-time.After(5 * time.Minute):
		return fmt.Errorf("no run committed within 5 minutes")
	}
	fmt.Fprintln(os.Stderr, "adhocd: dist smoke: killing worker 1 mid-campaign")
	w1.Process.Kill()
	w3, err := spawnWorker(base)
	if err != nil {
		return err
	}
	defer reapWorker(w3)

	select {
	case err := <-watch.done:
		if err != nil {
			return fmt.Errorf("SSE stream: %w", err)
		}
	case <-time.After(5 * time.Minute):
		return fmt.Errorf("distributed campaign did not finish within 5 minutes")
	}
	if _, err := waitDone(base, created.ID, time.Minute); err != nil {
		return err
	}
	distResult, err := fetchResults(base, created.ID)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(refResult, distResult) {
		return fmt.Errorf("distributed result differs from single-process result:\nsingle: %+v\ndist:   %+v", refResult, distResult)
	}
	fmt.Fprintln(os.Stderr, "adhocd: dist smoke: distributed result is DeepEqual to single-process")

	// Resubmission on a fresh coordinator sharing only the cache directory:
	// it has no local executors and no workers, so the only way it can
	// finish is from cache — zero recomputed runs, at submission time.
	coord2 := adhocsim.NewDistServer(adhocsim.DistServerOptions{LocalWorkers: -1, Cache: cache})
	base2, stop2, err := serveLoopback(coord2.Handler())
	if err != nil {
		return err
	}
	defer stop2()
	defer coord2.Close()
	created2, err := submitCampaign(base2, smokeSpec)
	if err != nil {
		return err
	}
	snap2, err := waitDone(base2, created2.ID, time.Minute)
	if err != nil {
		return fmt.Errorf("cached resubmission: %w", err)
	}
	if snap2.RunsFromCache != snap2.RunsDone || snap2.RunsDone != created2.MaxRuns {
		return fmt.Errorf("cached resubmission recomputed runs: %d done, %d from cache, want all %d cached",
			snap2.RunsDone, snap2.RunsFromCache, created2.MaxRuns)
	}
	cachedResult, err := fetchResults(base2, created2.ID)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(refResult, cachedResult) {
		return fmt.Errorf("cache-served result differs from single-process result")
	}
	fmt.Fprintf(os.Stderr, "adhocd: dist smoke: resubmission served %d/%d runs from cache\n",
		snap2.RunsFromCache, snap2.RunsDone)
	return nil
}

// spawnWorker starts this binary again as a worker child process.
func spawnWorker(base string) (*exec.Cmd, error) {
	cmd := exec.Command(os.Args[0], "-worker", "-join", base, "-workers", "1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// reapWorker asks a worker child to drain (SIGTERM) and reaps it, forcing
// after a timeout.
func reapWorker(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		<-done
	}
}

// eventWatch follows one campaign's SSE stream, asserting monotone
// committed-run counts.
type eventWatch struct {
	firstCommit chan struct{}
	done        chan error
}

func watchEvents(base, id string) *eventWatch {
	ew := &eventWatch{firstCommit: make(chan struct{}), done: make(chan error, 1)}
	go func() { ew.done <- ew.follow(base, id) }()
	return ew
}

func (ew *eventWatch) follow(base, id string) error {
	resp, err := http.Get(base + "/campaigns/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	last := -1
	sawFirst := false
	markFirst := func() {
		if !sawFirst {
			sawFirst = true
			close(ew.firstCommit)
		}
	}
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "":
			if data.Len() == 0 {
				continue
			}
			var e adhocsim.DistEvent
			if err := json.Unmarshal(data.Bytes(), &e); err != nil {
				return fmt.Errorf("events: %w", err)
			}
			data.Reset()
			if e.Snapshot != nil {
				if e.Snapshot.RunsDone < last {
					return fmt.Errorf("SSE runs_done went backwards: %d after %d", e.Snapshot.RunsDone, last)
				}
				last = e.Snapshot.RunsDone
				if last > 0 {
					markFirst()
				}
			}
			switch e.Type {
			case adhocsim.DistEventCampaignDone:
				markFirst()
				if e.State != "done" {
					return fmt.Errorf("campaign ended %s: %s", e.State, e.Err)
				}
				fmt.Fprintf(os.Stderr, "adhocd: dist smoke: SSE saw %d committed runs, all monotone\n", last)
				return nil
			case adhocsim.DistEventCampaignCancelled:
				markFirst()
				return fmt.Errorf("campaign was cancelled")
			}
		}
	}
	return fmt.Errorf("SSE stream ended before campaign finished: %v", sc.Err())
}

// decode checks the status code and unmarshals the JSON body.
func decode(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, body)
	}
	return json.Unmarshal(body, v)
}
