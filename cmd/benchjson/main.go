// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout), so benchmark baselines can be committed
// and diffed across PRs:
//
//	go test -bench . -benchtime 1x | go run ./cmd/benchjson > BENCH_baseline.json
//
// Every benchmark line becomes one record with its ns/op and any custom
// b.ReportMetric values; context lines (goos, goarch, cpu, pkg) are carried
// through so a baseline records where it was measured.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. Package is the pkg: header
// in effect when the line was read, so a multi-package `./...` stream keeps
// same-named benchmarks from different packages apart.
type Benchmark struct {
	Package    string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{GoVersion: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		if rep.Benchmarks[i].Package != rep.Benchmarks[j].Package {
			return rep.Benchmarks[i].Package < rep.Benchmarks[j].Package
		}
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line:
//
//	BenchmarkName-8   3   123456 ns/op   95.2 DSR_pdr   0.5 extra_metric
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix so baselines diff cleanly across
		// machines with different core counts.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
