// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout), so benchmark baselines can be committed
// and diffed across PRs:
//
//	go test -bench . -benchtime 1x | go run ./cmd/benchjson > BENCH_baseline.json
//
// Every benchmark line becomes one record with its ns/op and any custom
// b.ReportMetric values; context lines (goos, goarch, cpu, pkg) are carried
// through so a baseline records where it was measured.
//
// With -compare, the stdin stream is instead checked against a committed
// baseline: every benchmark present in both is reported with its ns/op
// ratio, drifts beyond -tolerance are flagged, and benchmarks present on
// only one side are called out. When the stream contains *Parallel
// benchmarks alongside their sequential twins (same name minus the
// "Parallel" suffix), a speedup section pairs them within the run. The
// exit status stays 0 unless -strict is set, so CI can surface the report
// without gating merges on a noisy shared runner.
//
//	go test -bench . -benchtime 1x ./... | go run ./cmd/benchjson -compare BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. Package is the pkg: header
// in effect when the line was read, so a multi-package `./...` stream keeps
// same-named benchmarks from different packages apart.
type Benchmark struct {
	Package    string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "compare stdin against this baseline JSON instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 0.25, "relative ns/op drift treated as noise in -compare mode")
	strict := flag.Bool("strict", false, "with -compare, exit 1 when any benchmark regresses past the tolerance")
	flag.Parse()

	rep, err := parseStream(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *compare != "" {
		os.Exit(compareBaseline(rep, *compare, *tolerance, *strict))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseStream reads `go test -bench` text output and returns the sorted
// Report the plain (non-compare) mode would emit.
func parseStream(r io.Reader) (Report, error) {
	rep := Report{GoVersion: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		if rep.Benchmarks[i].Package != rep.Benchmarks[j].Package {
			return rep.Benchmarks[i].Package < rep.Benchmarks[j].Package
		}
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// compareBaseline prints a per-benchmark ns/op ratio report of cur against
// the baseline JSON at path and returns the process exit code.
func compareBaseline(cur Report, path string, tol float64, strict bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return 1
	}

	key := func(b Benchmark) string { return b.Package + " " + b.Name }
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[key(b)] = b
	}

	fmt.Printf("benchmark comparison vs %s (tolerance ±%.0f%%)\n", path, tol*100)
	if base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Printf("note: baseline cpu %q != current cpu %q — ratios are indicative only\n", base.CPU, cur.CPU)
	}
	fmt.Printf("%-58s %14s %14s %8s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio", "status")

	var regressions, improvements int
	for _, b := range cur.Benchmarks {
		bb, ok := baseBy[key(b)]
		if !ok {
			fmt.Printf("%-58s %14s %14.0f %8s  new (not in baseline)\n", b.Name, "-", b.NsPerOp, "-")
			continue
		}
		delete(baseBy, key(b))
		if bb.NsPerOp <= 0 || b.NsPerOp <= 0 {
			fmt.Printf("%-58s %14.0f %14.0f %8s  no ns/op\n", b.Name, bb.NsPerOp, b.NsPerOp, "-")
			continue
		}
		ratio := b.NsPerOp / bb.NsPerOp
		status := "ok"
		switch {
		case ratio > 1+tol:
			status = "REGRESSION"
			regressions++
		case ratio < 1-tol:
			status = "improved"
			improvements++
		}
		fmt.Printf("%-58s %14.0f %14.0f %7.2fx  %s\n", b.Name, bb.NsPerOp, b.NsPerOp, ratio, status)
	}

	var missing []string
	for k := range baseBy {
		missing = append(missing, baseBy[k].Name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("%-58s %14s %14s %8s  missing from current run\n", name, "-", "-", "-")
	}

	printSpeedups(cur)

	matched := len(base.Benchmarks) - len(missing)
	fmt.Printf("summary: %d compared, %d regressions, %d improvements, %d new, %d missing\n",
		matched, regressions, improvements, len(cur.Benchmarks)-matched, len(missing))
	if strict && regressions > 0 {
		return 1
	}
	return 0
}

// printSpeedups pairs every *Parallel benchmark in the current run with its
// sequential twin — the benchmark whose top-level name is the same minus the
// "Parallel" suffix, with an identical sub-benchmark path — and reports the
// intra-run parallelism speedup (sequential ns/op ÷ parallel ns/op) within
// this run. Both sides come from the same stream, so the column is
// machine-consistent even when the committed baseline was recorded
// elsewhere. Nothing is printed when the run has no such pairs.
func printSpeedups(cur Report) {
	type pair struct{ seq, par Benchmark }
	byName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		byName[b.Package+" "+b.Name] = b
	}
	var pairs []pair
	for _, b := range cur.Benchmarks {
		head, tail, _ := strings.Cut(b.Name, "/")
		if !strings.HasSuffix(head, "Parallel") {
			continue
		}
		seqName := strings.TrimSuffix(head, "Parallel")
		if tail != "" {
			seqName += "/" + tail
		}
		if seq, ok := byName[b.Package+" "+seqName]; ok && seq.NsPerOp > 0 && b.NsPerOp > 0 {
			pairs = append(pairs, pair{seq, b})
		}
	}
	if len(pairs) == 0 {
		return
	}
	fmt.Printf("\nparallel speedup (sequential ns/op ÷ parallel ns/op, this run)\n")
	fmt.Printf("%-58s %14s %14s %8s\n", "benchmark", "seq ns/op", "par ns/op", "speedup")
	for _, p := range pairs {
		fmt.Printf("%-58s %14.0f %14.0f %7.2fx\n", p.par.Name, p.seq.NsPerOp, p.par.NsPerOp, p.seq.NsPerOp/p.par.NsPerOp)
	}
}

// parseBench parses one result line:
//
//	BenchmarkName-8   3   123456 ns/op   95.2 DSR_pdr   0.5 extra_metric
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix so baselines diff cleanly across
		// machines with different core counts.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
