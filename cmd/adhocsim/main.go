// Command adhocsim runs a single ad hoc network simulation and prints its
// metrics, or — with -campaign — a whole replication campaign from a JSON
// spec.
//
// Usage:
//
//	adhocsim -proto DSR -nodes 40 -pause 0 -speed 20 -sources 10 -dur 150 -seed 1
//	adhocsim -proto AODV -mobility gauss-markov,alpha=0.85 -traffic expoo,on_s=0.5,off_s=1
//	adhocsim -proto DSR -radio shadowing,sigma_db=6 -sinr
//	adhocsim -proto AUTOCONF -lifecycle onoff-fail,mean_up_s=60 -dur 120
//	adhocsim -campaign spec.json -checkpoint run.jsonl
//	adhocsim -list-models
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"adhocsim"
	lifecyclereg "adhocsim/internal/lifecycle"
	"adhocsim/internal/metrics"
	mobilityreg "adhocsim/internal/mobility"
	radioreg "adhocsim/internal/radio"
	"adhocsim/internal/trace"
	trafficreg "adhocsim/internal/traffic"
)

// parseModelFlag parses "name" or "name,key=value,key=value" into a model
// name plus a parameter map ("" means the default model).
func parseModelFlag(flagName, s string) (string, map[string]float64) {
	if s == "" {
		return "", nil
	}
	parts := strings.Split(s, ",")
	name := strings.TrimSpace(parts[0])
	var params map[string]float64
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "adhocsim: -%s: %q is not key=value\n", flagName, kv)
			os.Exit(2)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhocsim: -%s: %q: %v\n", flagName, kv, err)
			os.Exit(2)
		}
		if params == nil {
			params = make(map[string]float64)
		}
		params[strings.TrimSpace(key)] = x
	}
	return name, params
}

// listModels enumerates every registry — routing protocols plus the four
// scenario-model registries — with each model's parameter vocabulary,
// discovered by dry-building the model and observing which keys it reads.
func listModels(w io.Writer) {
	fmt.Fprintf(w, "protocols: %s\n", strings.Join(adhocsim.RegisteredProtocols(), ", "))
	kinds := []struct {
		kind   string
		names  []string
		params func(string) ([]string, error)
	}{
		{"mobility", mobilityreg.Registered(), mobilityreg.ParamNames},
		{"traffic", trafficreg.Registered(), trafficreg.ParamNames},
		{"radio", radioreg.Registered(), radioreg.ParamNames},
		{"lifecycle", lifecyclereg.Registered(), lifecyclereg.ParamNames},
	}
	for _, k := range kinds {
		fmt.Fprintf(w, "%s models:\n", k.kind)
		for _, name := range k.names {
			params, err := k.params(name)
			switch {
			case err != nil:
				fmt.Fprintf(w, "  %-16s (error: %v)\n", name, err)
			case len(params) == 0:
				fmt.Fprintf(w, "  %-16s (no parameters)\n", name)
			default:
				fmt.Fprintf(w, "  %-16s %s\n", name, strings.Join(params, ", "))
			}
		}
	}
}

// runCampaign executes a campaign spec end to end: progress on stderr, the
// aggregated Result as JSON on stdout. With -checkpoint, completed runs are
// journaled and an interrupted campaign (Ctrl-C included) resumes from the
// same file.
func runCampaign(specPath, checkpoint string, workers int) {
	var data []byte
	var err error
	if specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(specPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhocsim:", err)
		os.Exit(1)
	}
	var spec adhocsim.CampaignSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		fmt.Fprintln(os.Stderr, "adhocsim: campaign spec:", err)
		os.Exit(1)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	res, err := adhocsim.RunCampaign(ctx, spec, adhocsim.CampaignOptions{
		Workers:     workers,
		JournalPath: checkpoint,
		OnProgress: func(s adhocsim.CampaignSnapshot) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d runs, %d/%d cells settled]   ",
				s.RunsDone, s.MaxRuns, s.CellsStopped, s.Cells)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhocsim:", err)
		if checkpoint != "" {
			fmt.Fprintf(os.Stderr, "adhocsim: rerun with -checkpoint %s to resume\n", checkpoint)
		}
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, "adhocsim:", err)
		os.Exit(1)
	}
}

func main() {
	var (
		proto       = flag.String("proto", adhocsim.DSR, "routing protocol: "+strings.Join(adhocsim.RegisteredProtocols(), ", "))
		nodes       = flag.Int("nodes", 40, "number of nodes")
		areaW       = flag.Float64("w", 1500, "area width (m)")
		areaH       = flag.Float64("h", 300, "area height (m)")
		pause       = flag.Float64("pause", 0, "random-waypoint pause time (s)")
		speed       = flag.Float64("speed", 20, "maximum node speed (m/s)")
		sources     = flag.Int("sources", 10, "number of CBR connections")
		rate        = flag.Float64("rate", 4, "packets per second per connection")
		payload     = flag.Int("payload", 64, "payload bytes per packet")
		dur         = flag.Float64("dur", 150, "simulated duration (s)")
		txRange     = flag.Float64("range", 250, "radio range (m)")
		mobility    = flag.String("mobility", "", "mobility model, optionally with parameters (\"gauss-markov,alpha=0.85\"); models: "+strings.Join(adhocsim.RegisteredMobilityModels(), ", "))
		traffic     = flag.String("traffic", "", "traffic model, optionally with parameters (\"expoo,on_s=0.5\"); models: "+strings.Join(adhocsim.RegisteredTrafficModels(), ", "))
		radio       = flag.String("radio", "", "radio model, optionally with parameters (\"shadowing,sigma_db=6\"); models: "+strings.Join(adhocsim.RegisteredRadioModels(), ", "))
		lcModel     = flag.String("lifecycle", "", "node-lifecycle (churn) model, optionally with parameters (\"onoff-fail,mean_up_s=60\"); models: "+strings.Join(adhocsim.RegisteredLifecycleModels(), ", "))
		listModelsF = flag.Bool("list-models", false, "list every registered protocol and scenario model (with parameter names) and exit")
		sinr        = flag.Bool("sinr", false, "cumulative-interference SINR reception instead of pairwise capture")
		seed        = flag.Int64("seed", 1, "scenario seed")
		seeds       = flag.Int("seeds", 1, "number of replication seeds (averaged)")
		verbose     = flag.Bool("v", false, "print drop census and overhead breakdown")
		asJSON      = flag.Bool("json", false, "emit results as JSON instead of text")
		traceFile   = flag.String("trace", "", "write an ns-2-style packet trace to this file (single seed only)")
		metricsFile = flag.String("metrics", "", "dump the metric sample stream as JSONL to this file (single seed only)")
		brute       = flag.Bool("brute", false, "disable the spatial-index transmit path (legacy O(N) loop)")
		scheduler   = flag.String("scheduler", "", "event-queue implementation for single runs: heap (default) or calendar")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")

		campaignFile = flag.String("campaign", "", "run a replication campaign from this JSON spec file ('-' = stdin) instead of a single run")
		checkpoint   = flag.String("checkpoint", "", "campaign journal path; an existing journal of the same spec is resumed")
		workers      = flag.Int("workers", 0, "campaigns: worker pool size (0 = GOMAXPROCS); single runs: intra-run transmit fan-out workers (0 = sequential; results are identical either way)")
	)
	flag.Parse()

	if *listModelsF {
		listModels(os.Stdout)
		return
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "adhocsim: -workers %d: worker count cannot be negative\n", *workers)
		os.Exit(2)
	}

	// Profiling wraps everything after flag parsing — single runs and
	// campaigns alike — so hot-path regressions can be diagnosed straight
	// from the CLI (`make profile`) without editing benchmark code. The
	// profiles are skipped on error exits (os.Exit bypasses defers), which
	// is fine for a diagnostics flag.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adhocsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "adhocsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adhocsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle to live objects so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "adhocsim:", err)
			}
		}()
	}

	if *campaignFile != "" {
		runCampaign(*campaignFile, *checkpoint, *workers)
		return
	}

	sched, err := adhocsim.ParseQueueKind(*scheduler)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhocsim:", err)
		os.Exit(2)
	}

	spec := adhocsim.DefaultSpec()
	spec.Nodes = *nodes
	spec.Area = adhocsim.Rect{W: *areaW, H: *areaH}
	spec.Pause = adhocsim.Seconds(*pause)
	spec.MaxSpeed = *speed
	if spec.MinSpeed > *speed {
		spec.MinSpeed = *speed
	}
	spec.Sources = *sources
	spec.Rate = *rate
	spec.PayloadBytes = *payload
	spec.Duration = adhocsim.Seconds(*dur)
	spec.TxRange = *txRange
	mobName, mobParams := parseModelFlag("mobility", *mobility)
	spec.Mobility = adhocsim.MobilitySpec{Name: mobName, Params: mobParams}
	traName, traParams := parseModelFlag("traffic", *traffic)
	spec.Traffic = adhocsim.TrafficSpec{Name: traName, Params: traParams}
	radName, radParams := parseModelFlag("radio", *radio)
	spec.Radio = adhocsim.RadioSpec{Name: radName, Params: radParams, SINR: *sinr}
	lcName, lcParams := parseModelFlag("lifecycle", *lcModel)
	spec.Lifecycle = adhocsim.LifecycleSpec{Name: lcName, Params: lcParams}

	var seedList []int64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, *seed+int64(i))
	}
	// For single runs -workers selects intra-run parallelism: deterministic
	// transmit fan-out plus pipelined reindexing inside the one simulation,
	// byte-identical to the sequential path. More workers than cores only
	// adds scheduling overhead, so clamp with a note rather than oblige.
	if max := runtime.GOMAXPROCS(0); *workers > max {
		fmt.Fprintf(os.Stderr, "adhocsim: -workers %d exceeds GOMAXPROCS, clamping to %d\n", *workers, max)
		*workers = max
	}
	rc := adhocsim.RunConfig{
		Spec:     spec,
		Protocol: strings.ToUpper(*proto),
		Phy:      adhocsim.PhyConfig{BruteForce: *brute, Scheduler: sched, Workers: *workers},
	}
	if *traceFile != "" {
		if *seeds != 1 {
			fmt.Fprintln(os.Stderr, "adhocsim: -trace requires -seeds 1")
			os.Exit(2)
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adhocsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w := trace.NewWriter(f)
		rc.Tracer = w
		defer func() {
			if err := w.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "adhocsim: trace:", err)
			}
		}()
	}
	if *metricsFile != "" {
		if *seeds != 1 {
			fmt.Fprintln(os.Stderr, "adhocsim: -metrics requires -seeds 1")
			os.Exit(2)
		}
		f, err := os.Create(*metricsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adhocsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink := metrics.NewJSONLWriter(f)
		rc.Sinks = append(rc.Sinks, sink)
		defer func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "adhocsim: metrics:", err)
			}
		}()
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	res, err := adhocsim.RunReplicatedContext(ctx, rc, seedList, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhocsim:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Protocol string
			adhocsim.Results
		}{strings.ToUpper(*proto), res}); err != nil {
			fmt.Fprintln(os.Stderr, "adhocsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("protocol            %s\n", strings.ToUpper(*proto))
	fmt.Printf("scenario            %d nodes, %.0fx%.0f m, pause %.0fs, speed %.0f m/s, %d srcs @ %.1f pkt/s, %.0fs\n",
		*nodes, *areaW, *areaH, *pause, *speed, *sources, *rate, *dur)
	if mobName != "" || traName != "" || radName != "" || lcName != "" || *sinr {
		showModel := func(name, def string) string {
			if name == "" {
				return def + " (default)"
			}
			return name
		}
		reception := "capture"
		if *sinr {
			reception = "sinr"
		}
		fmt.Printf("models              mobility %s, traffic %s, radio %s (%s), lifecycle %s\n",
			showModel(mobName, "waypoint"), showModel(traName, "cbr"),
			showModel(radName, "tworay"), reception, showModel(lcName, "static"))
	}
	fmt.Printf("data sent/received  %d / %d (+%d dup)\n", res.DataSent, res.DataDelivered, res.DupDelivered)
	fmt.Printf("packet delivery     %.2f %%\n", res.PDR*100)
	fmt.Printf("avg e2e delay       %.2f ms (p50 %.2f, p95 %.2f)\n", res.AvgDelay*1e3, res.P50Delay*1e3, res.P95Delay*1e3)
	fmt.Printf("throughput          %.1f kbit/s\n", res.ThroughputKbps)
	fmt.Printf("routing overhead    %d pkts (%.1f kB), NRL %.2f\n",
		res.RoutingTxPackets, float64(res.RoutingTxBytes)/1000, res.NormalizedRoutingLoad)
	fmt.Printf("MAC ctl frames      %d, normalized MAC load %.2f\n", res.MacCtlFrames, res.NormalizedMacLoad)
	fmt.Printf("avg hops            %.2f (optimal-path share %.1f %%)\n", res.AvgHops, res.PathOptimalityShare()*100)
	if res.Joins > 0 || res.Leaves > 0 {
		fmt.Printf("membership churn    %d joins, %d leaves\n", res.Joins, res.Leaves)
	}
	if res.TimeToConverge > 0 || res.AddrCollisionRate > 0 {
		fmt.Printf("autoconfiguration   converged in %.2f s, addr collision rate %.4f\n",
			res.TimeToConverge, res.AddrCollisionRate)
	}

	if *verbose {
		fmt.Println("\ndrops:")
		type kv struct {
			k string
			v uint64
		}
		var drops []kv
		for r, n := range res.Drops {
			drops = append(drops, kv{string(r), n})
		}
		sort.Slice(drops, func(i, j int) bool { return drops[i].k < drops[j].k })
		for _, d := range drops {
			fmt.Printf("  %-22s %d\n", d.k, d.v)
		}
		fmt.Println("routing overhead by message type:")
		var types []kv
		for t, n := range res.RoutingByType {
			types = append(types, kv{t, n})
		}
		sort.Slice(types, func(i, j int) bool { return types[i].k < types[j].k })
		for _, t := range types {
			fmt.Printf("  %-22s %d\n", t.k, t.v)
		}
	}
}
