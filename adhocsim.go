// Package adhocsim is a discrete-event simulator for mobile ad hoc network
// routing protocols, reproducing the comparison study "A Performance
// Comparison of Routing Protocols for Ad Hoc Networks" (IPPS/IPDPS 2001).
//
// It provides, built entirely on the Go standard library:
//
//   - an ns-2-class wireless substrate: two-ray ground propagation with
//     250 m/550 m reception and carrier-sense ranges, an IEEE 802.11 DCF
//     MAC with RTS/CTS and link-breakage detection, random-waypoint
//     mobility and CBR/UDP traffic;
//   - full implementations of DSR, AODV, PAODV (preemptive AODV), CBRP and
//     DSDV, plus a flooding yardstick;
//   - the study's metric suite (packet delivery ratio, end-to-end delay,
//     per-hop routing overhead, normalized routing and MAC load, path
//     optimality) and a parallel experiment harness that regenerates every
//     figure and table of the evaluation.
//
// # Quick start
//
//	spec := adhocsim.DefaultSpec()
//	spec.Nodes = 30
//	res, err := adhocsim.Run(adhocsim.RunConfig{
//		Spec:     spec,
//		Protocol: adhocsim.DSR,
//		Seed:     1,
//	})
//	fmt.Printf("PDR %.1f%%  delay %.1f ms\n", res.PDR*100, res.AvgDelay*1e3)
//
// Deeper customisation (custom mobility models, protocol ablations, raw
// world wiring) is available through the internal packages for code living
// in this module; the facade covers the published study surface.
package adhocsim

import (
	"adhocsim/internal/core"
	"adhocsim/internal/geo"
	"adhocsim/internal/mac"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Protocol names understood by Run and the sweep helpers.
const (
	DSR   = core.DSR
	AODV  = core.AODV
	PAODV = core.PAODV
	CBRP  = core.CBRP
	DSDV  = core.DSDV
	Flood = core.Flood
)

// StudyProtocols returns the five protocols of the IPPS'01 comparison.
func StudyProtocols() []string { return core.StudyProtocols() }

// AllProtocols additionally includes the flooding baseline.
func AllProtocols() []string { return core.AllProtocols() }

// Spec describes a scenario; see DefaultSpec for the study configuration.
type Spec = scenario.Spec

// Rect is the simulation area type used in Spec.
type Rect = geo.Rect

// Results is the metric set produced by a run.
type Results = stats.Results

// RunConfig identifies one simulation run.
type RunConfig = core.RunConfig

// Options configures comparisons and sweeps.
type Options = core.Options

// SweepResult holds per-protocol results along a swept axis.
type SweepResult = core.SweepResult

// Figure is a sweep viewed through one metric, ready to render.
type Figure = core.Figure

// MacConfig tunes the 802.11 MAC (queue limit, RTS threshold).
type MacConfig = mac.Config

// Duration and Time re-export the virtual-clock types used in Spec.
type (
	Duration = sim.Duration
	Time     = sim.Time
)

// Second is one simulated second.
const Second = sim.Second

// Seconds converts float seconds to a Duration.
func Seconds(s float64) Duration { return sim.Seconds(s) }

// DefaultSpec returns the reconstructed study configuration (40 nodes,
// 1500×300 m, 20 m/s random waypoint, 10 CBR sources at 4 pkt/s, 250 m
// radios, 900 s).
func DefaultSpec() Spec { return scenario.Default() }

// DefaultOptions returns study defaults: all five protocols, three seeds.
func DefaultOptions() Options { return core.DefaultOptions() }

// Run executes one scenario×protocol×seed simulation.
func Run(rc RunConfig) (Results, error) { return core.Run(rc) }

// RunReplicated executes rc once per seed (in parallel) and merges results.
func RunReplicated(rc RunConfig, seeds []int64, workers int) (Results, error) {
	return core.RunReplicated(rc, seeds, workers)
}

// Compare runs every protocol in opts on the base scenario (pause time as
// configured) and returns per-protocol results.
func Compare(opts Options) (map[string]Results, error) {
	return core.SummaryTable(opts)
}

// PauseSweep sweeps pause time (mobility), the axis of Figures 1–4.
// A nil pauses slice selects the Broch-style defaults.
func PauseSweep(opts Options, pauses []float64) (*SweepResult, error) {
	return core.PauseSweep(opts, pauses)
}

// DensitySweep sweeps the node count (Figure 6).
func DensitySweep(opts Options, nodes []float64) (*SweepResult, error) {
	return core.DensitySweep(opts, nodes)
}

// LoadSweep sweeps the offered load in packets/s (Figure 7).
func LoadSweep(opts Options, rates []float64) (*SweepResult, error) {
	return core.LoadSweep(opts, rates)
}

// SpeedSweep sweeps maximum node speed (Figure 8).
func SpeedSweep(opts Options, speeds []float64) (*SweepResult, error) {
	return core.SpeedSweep(opts, speeds)
}

// RenderFigure renders a figure as an aligned text table.
func RenderFigure(f Figure) string { return core.RenderFigure(f) }

// RenderFigureCSV renders a figure as CSV.
func RenderFigureCSV(f Figure) string { return core.RenderFigureCSV(f) }

// Metrics available for figure rendering.
var (
	MetricPDR        = core.MetricPDR
	MetricDelay      = core.MetricDelay
	MetricOverhead   = core.MetricOverhead
	MetricNRL        = core.MetricNRL
	MetricThroughput = core.MetricThroughput
	MetricMacLoad    = core.MetricMacLoad
	MetricAvgHops    = core.MetricAvgHops
)
