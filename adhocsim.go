// Package adhocsim is a discrete-event simulator for mobile ad hoc network
// routing protocols, reproducing the comparison study "A Performance
// Comparison of Routing Protocols for Ad Hoc Networks" (IPPS/IPDPS 2001).
//
// It provides, built entirely on the Go standard library:
//
//   - an ns-2-class wireless substrate: two-ray ground propagation with
//     250 m/550 m reception and carrier-sense ranges, an IEEE 802.11 DCF
//     MAC with RTS/CTS and link-breakage detection, random-waypoint
//     mobility and CBR/UDP traffic;
//   - full implementations of DSR, AODV, PAODV (preemptive AODV), CBRP and
//     DSDV, plus a flooding yardstick;
//   - the study's metric suite (packet delivery ratio, end-to-end delay,
//     per-hop routing overhead, normalized routing and MAC load, path
//     optimality) and a parallel experiment harness that regenerates every
//     figure and table of the evaluation.
//
// # Quick start
//
//	spec := adhocsim.DefaultSpec()
//	spec.Nodes = 30
//	res, err := adhocsim.Run(adhocsim.RunConfig{
//		Spec:     spec,
//		Protocol: adhocsim.DSR,
//		Seed:     1,
//	})
//	fmt.Printf("PDR %.1f%%  delay %.1f ms\n", res.PDR*100, res.AvgDelay*1e3)
//
// # Experiment API v2
//
// The harness is open on three axes:
//
// Protocols resolve through a registry. The built-ins self-register; call
// RegisterProtocol to plug in a new routing protocol or ablation variant —
// it then works everywhere a built-in does (Run, Compare, sweeps, the cmd
// tools):
//
//	adhocsim.RegisterProtocol("MYPROTO", func(bc adhocsim.BuildContext) (adhocsim.ProtocolFactory, error) {
//		return func(id adhocsim.NodeID) adhocsim.Protocol { return newMyProto(id) }, nil
//	})
//
// Scenario dimensions are swept through first-class Axis values. The
// catalogue (PauseAxis, NodesAxis, RateAxis, SpeedAxis, SourcesAxis,
// TxRangeAxis, CSRangeAxis, AreaWidthAxis, PayloadAxis) covers the study
// axes plus radio and traffic dimensions the study never varied, and a
// custom Apply function sweeps anything else:
//
//	sweep, err := adhocsim.Sweep(ctx, opts, adhocsim.TxRangeAxis(nil))
//	grid, err := adhocsim.Grid(ctx, opts, adhocsim.TxRangeAxis(nil), adhocsim.RateAxis(nil))
//
// Scenario families resolve through model registries: Spec.Mobility,
// Spec.Traffic and Spec.Radio name registered mobility models (random
// waypoint, Gauss-Markov, Manhattan grid, RPGM, random walk, static grid),
// traffic models (CBR, Poisson, exponential on/off VBR) and radio models
// (two-ray ground, free space, tunable path-loss exponent, log-normal
// shadowing, Ricean/Rayleigh fading) with JSON-friendly parameter maps,
// and RegisterMobilityModel / RegisterTrafficModel / RegisterRadioModel
// plug in new ones. Spec.Radio.SINR switches frame reception from the
// ns-2 pairwise capture test to cumulative-interference SINR. The model
// axes (MobilityModelAxis, TrafficModelAxis, RadioModelAxis) sweep the
// family itself as a grid dimension:
//
//	spec.Mobility = adhocsim.MobilitySpec{Name: "gauss-markov", Params: map[string]float64{"alpha": 0.85}}
//	spec.Radio = adhocsim.RadioSpec{Name: "shadowing", Params: map[string]float64{"sigma_db": 6}, SINR: true}
//	grid, err := adhocsim.Grid(ctx, opts, adhocsim.MobilityModelAxis(nil), adhocsim.TrafficModelAxis(nil))
//
// Node lifecycle is a fourth registry: Spec.Lifecycle names a churn model
// (staggered joins, flash crowds, on/off failures, region-wide partitions)
// that compiles into a deterministic per-run schedule of join/leave/fail/
// recover events, RegisterLifecycleModel plugs in new ones, and
// ChurnModelAxis sweeps the membership dimension. The AUTOCONF protocol
// (randomized address claim → probe → defend) pairs with it to study
// network initialization, reporting time_to_converge and
// addr_collision_rate:
//
//	spec.Lifecycle = adhocsim.LifecycleSpec{Name: "onoff-fail", Params: map[string]float64{"mean_up_s": 60}}
//	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.Autoconf, Seed: 1})
//
// Long experiments are cancellable and observable: every runner threads a
// context.Context down into the event loop (cancellation aborts promptly
// with ctx.Err()), and Options.OnProgress receives a callback after every
// completed run. Results, sweeps, grids and figures all export to JSON
// (ResultsJSON, SweepJSON, GridJSON, FigureJSON) alongside the text and
// CSV renders.
//
// The v1 helpers (Run without a context, PauseSweep and friends) remain as
// thin wrappers over the v2 API.
//
// # Campaigns
//
// The campaign engine (CampaignSpec, RunCampaign, NewCampaignServer) runs
// multi-seed replication campaigns on top of the experiment API: cells are
// aggregated online with Welford moments and Student-t 95% confidence
// intervals, replication stops early per cell once the estimate is tight
// enough, completed runs are journaled for bit-identical resume, and
// cmd/adhocd serves the whole thing over HTTP.
package adhocsim

import (
	"context"
	"io"

	"adhocsim/internal/core"
	"adhocsim/internal/geo"
	"adhocsim/internal/lifecycle"
	"adhocsim/internal/mac"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/radio"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/traffic"
)

// Protocol names understood by Run and the sweep helpers.
const (
	DSR   = core.DSR
	AODV  = core.AODV
	PAODV = core.PAODV
	CBRP  = core.CBRP
	DSDV  = core.DSDV
	Flood = core.Flood
	// Autoconf is the randomized address-autoconfiguration protocol
	// (claim → probe → defend); pair it with Spec.Lifecycle to study
	// network initialization under churn.
	Autoconf = core.Autoconf
)

// StudyProtocols returns the five protocols of the IPPS'01 comparison.
func StudyProtocols() []string { return core.StudyProtocols() }

// AllProtocols additionally includes the flooding baseline.
func AllProtocols() []string { return core.AllProtocols() }

// RegisteredProtocols returns every protocol name the registry resolves,
// built-ins and external registrations alike, sorted.
func RegisteredProtocols() []string { return core.RegisteredProtocols() }

// RegisterProtocol plugs a new routing protocol (or ablation variant) into
// the harness under the given case-insensitive name. Once registered it is
// accepted everywhere a built-in is: Run, Compare, Sweep, Grid and the cmd
// tools. Registering a duplicate or empty name is an error.
func RegisterProtocol(name string, builder ProtocolBuilder) error {
	return core.RegisterProtocol(name, builder)
}

// Spec describes a scenario; see DefaultSpec for the study configuration.
type Spec = scenario.Spec

// MobilitySpec selects a registered mobility model by name with optional
// parameters inside a Spec ({"name": "gauss-markov", "params": {...}}); the
// zero value is the study's random waypoint.
type MobilitySpec = scenario.MobilitySpec

// TrafficSpec selects a registered traffic model inside a Spec; the zero
// value is the study's CBR workload.
type TrafficSpec = scenario.TrafficSpec

// RadioSpec selects a registered radio/propagation model inside a Spec
// ({"name": "shadowing", "params": {"sigma_db": 6}, "sinr": true}); the
// zero value is the study's two-ray ground with pairwise capture. SINR
// switches reception to the cumulative-interference model.
type RadioSpec = scenario.RadioSpec

// LifecycleSpec selects a registered node-lifecycle (churn) model inside a
// Spec ({"name": "onoff-fail", "params": {"mean_up_s": 60}}); the zero
// value is the study's static membership, bit-identical to a spec without
// the field.
type LifecycleSpec = scenario.LifecycleSpec

// Scenario-model extension surface: the types an external mobility or
// traffic model implements against, re-exported so registrations need no
// internal imports.
type (
	// MobilityModel generates one movement track per node.
	MobilityModel = mobility.Model
	// MobilityEnv carries the spec-level area/speed/pause fields into a
	// mobility model builder.
	MobilityEnv = mobility.Env
	// MobilityParams is the parameter map view handed to mobility builders.
	MobilityParams = mobility.Params
	// MobilityBuilder constructs a mobility model; see RegisterMobilityModel.
	MobilityBuilder = mobility.Builder
	// Track is a node's piecewise-linear movement schedule.
	Track = mobility.Track
	// TrafficGenerator expands a traffic environment into connections.
	TrafficGenerator = traffic.Generator
	// TrafficEnv carries the spec-level traffic fields into a generator.
	TrafficEnv = traffic.Env
	// TrafficParams is the parameter map view handed to traffic builders.
	TrafficParams = traffic.Params
	// TrafficBuilder constructs a traffic generator; see RegisterTrafficModel.
	TrafficBuilder = traffic.Builder
	// TrafficConnection is one generated flow (the generator's output unit).
	TrafficConnection = traffic.Connection
	// RadioEnv carries the spec-level range fields and the run seed into a
	// radio model builder.
	RadioEnv = radio.Env
	// RadioModelParams is the parameter map view handed to radio builders.
	RadioModelParams = radio.Params
	// RadioBuilder constructs concrete radio parameters; see RegisterRadioModel.
	RadioBuilder = radio.Builder
	// Propagation computes received power as a function of distance.
	Propagation = phy.Propagation
	// LinkPropagation extends Propagation with per-link / per-reception
	// power draws (shadowing, fading).
	LinkPropagation = phy.LinkPropagation
	// GainBounded declares a stochastic propagation model's upward power
	// bound so the spatial index stays exact.
	GainBounded = phy.GainBounded
	// LifecycleModel derives a deterministic membership schedule; see
	// RegisterLifecycleModel.
	LifecycleModel = lifecycle.Model
	// LifecycleEnv carries the spec-level population/duration/area fields
	// (and a position oracle) into a lifecycle model builder.
	LifecycleEnv = lifecycle.Env
	// LifecycleParams is the parameter map view handed to lifecycle builders.
	LifecycleParams = lifecycle.Params
	// LifecycleBuilder constructs a lifecycle model; see RegisterLifecycleModel.
	LifecycleBuilder = lifecycle.Builder
	// LifecycleEvent is one scheduled membership transition.
	LifecycleEvent = lifecycle.Event
	// LifecycleEventKind labels a membership transition (join/leave/fail/recover).
	LifecycleEventKind = lifecycle.EventKind
	// LifecycleAware is the optional protocol extension receiving Up/Down
	// hooks at membership transitions.
	LifecycleAware = network.LifecycleAware
	// Autoconfigured is the optional protocol extension exposing address-
	// autoconfiguration state to the end-of-run census.
	Autoconfigured = network.Autoconfigured
)

// RegisterMobilityModel plugs a new mobility model into the registry under
// the given case-insensitive name. Once registered it is selectable
// everywhere a built-in is: Spec.Mobility, campaign patches and axes, and
// the cmd tools.
func RegisterMobilityModel(name string, b MobilityBuilder) error { return mobility.Register(name, b) }

// RegisterTrafficModel plugs a new traffic model into the registry.
func RegisterTrafficModel(name string, b TrafficBuilder) error { return traffic.Register(name, b) }

// RegisterRadioModel plugs a new radio/propagation model into the registry
// under the given case-insensitive name. Once registered it is selectable
// everywhere a built-in is: Spec.Radio, campaign patches and axes, and the
// cmd tools. Stochastic models must clamp their draws and implement
// GainBounded so the spatial-index transmit path stays exact.
func RegisterRadioModel(name string, b RadioBuilder) error { return radio.Register(name, b) }

// RegisteredMobilityModels lists every mobility model name, sorted.
func RegisteredMobilityModels() []string { return mobility.Registered() }

// RegisteredTrafficModels lists every traffic model name, sorted.
func RegisteredTrafficModels() []string { return traffic.Registered() }

// RegisteredRadioModels lists every radio model name, sorted.
func RegisteredRadioModels() []string { return radio.Registered() }

// RegisterLifecycleModel plugs a new node-lifecycle (churn) model into the
// registry under the given case-insensitive name. Once registered it is
// selectable everywhere a built-in is: Spec.Lifecycle, campaign patches and
// axes, and the cmd tools.
func RegisterLifecycleModel(name string, b LifecycleBuilder) error {
	return lifecycle.Register(name, b)
}

// RegisteredLifecycleModels lists every lifecycle model name, sorted.
func RegisteredLifecycleModels() []string { return lifecycle.Registered() }

// Rect is the simulation area type used in Spec.
type Rect = geo.Rect

// Results is the metric set produced by a run.
type Results = stats.Results

// RunConfig identifies one simulation run.
type RunConfig = core.RunConfig

// Options configures comparisons and sweeps (protocol set, seeds, workers,
// progress callback).
type Options = core.Options

// Progress reports one completed run inside a sweep; see Options.OnProgress.
type Progress = core.Progress

// ProgressFunc observes sweep progress; see Options.OnProgress.
type ProgressFunc = core.ProgressFunc

// ProgressPrinter returns a ProgressFunc rendering a single updating
// progress line to w (typically os.Stderr).
func ProgressPrinter(w io.Writer) ProgressFunc { return core.ProgressPrinter(w) }

// Axis is one sweepable scenario dimension; see the axis catalogue
// (PauseAxis and friends) and AxisByName.
type Axis = core.Axis

// SweepResult holds per-protocol results along a swept axis.
type SweepResult = core.SweepResult

// GridResult holds per-protocol results over a multi-axis cross product.
type GridResult = core.GridResult

// Figure is a sweep viewed through one metric, ready to render.
type Figure = core.Figure

// MacConfig tunes the 802.11 MAC (queue limit, RTS threshold).
type MacConfig = mac.Config

// PhyConfig tunes the channel's transmit fast path: the spatial-index
// neighbourhood query (default) versus the legacy brute-force loop, the
// index's reindex cadence, and the engine's event-queue implementation
// (PhyConfig.Scheduler). See RunConfig.Phy.
type PhyConfig = phy.Config

// QueueKind selects the engine's event-queue implementation (see
// PhyConfig.Scheduler). Both kinds dispatch the identical event sequence;
// the calendar queue is the O(1)-amortized choice for city-scale runs.
type QueueKind = sim.QueueKind

// Event-queue kinds for PhyConfig.Scheduler.
const (
	QueueHeap     = sim.QueueHeap
	QueueCalendar = sim.QueueCalendar
)

// ParseQueueKind resolves an event-queue kind by name ("heap", "calendar").
func ParseQueueKind(s string) (QueueKind, error) { return sim.ParseQueueKind(s) }

// Protocol-extension surface: the types an external routing protocol
// implements against, re-exported so registrations need no internal
// imports.
type (
	// Protocol is a routing agent bound to one node.
	Protocol = network.Protocol
	// Env is the node-side API a routing protocol programs against.
	Env = network.Env
	// ProtocolFactory builds the routing agent for each node.
	ProtocolFactory = network.ProtocolFactory
	// BuildContext carries per-run inputs (radio parameters, tweaks) to a
	// protocol builder.
	BuildContext = core.BuildContext
	// ProtocolBuilder constructs a factory for one run; see RegisterProtocol.
	ProtocolBuilder = core.ProtocolBuilder
	// NodeID identifies a node.
	NodeID = pkt.NodeID
	// Packet is the network-layer packet model.
	Packet = pkt.Packet
	// RadioParams are the physical-layer parameters of a scenario.
	RadioParams = phy.RadioParams
	// DropReason labels packet losses in the drop census.
	DropReason = stats.DropReason
)

// Broadcast is the link/network broadcast address.
const Broadcast = pkt.Broadcast

// Duration and Time re-export the virtual-clock types used in Spec.
type (
	Duration = sim.Duration
	Time     = sim.Time
)

// Second is one simulated second.
const Second = sim.Second

// Seconds converts float seconds to a Duration.
func Seconds(s float64) Duration { return sim.Seconds(s) }

// DefaultSpec returns the reconstructed study configuration (40 nodes,
// 1500×300 m, 20 m/s random waypoint, 10 CBR sources at 4 pkt/s, 250 m
// radios, 900 s).
func DefaultSpec() Spec { return scenario.Default() }

// DefaultOptions returns study defaults: all five protocols, three seeds.
func DefaultOptions() Options { return core.DefaultOptions() }

// Run executes one scenario×protocol×seed simulation.
func Run(rc RunConfig) (Results, error) { return core.Run(context.Background(), rc) }

// RunContext is Run with cancellation: the context is polled inside the
// event loop, so cancelling it aborts a long simulation promptly.
func RunContext(ctx context.Context, rc RunConfig) (Results, error) { return core.Run(ctx, rc) }

// RunReplicated executes rc once per seed (in parallel) and merges results.
func RunReplicated(rc RunConfig, seeds []int64, workers int) (Results, error) {
	return core.RunReplicated(context.Background(), rc, seeds, workers)
}

// RunReplicatedContext is RunReplicated with cancellation.
func RunReplicatedContext(ctx context.Context, rc RunConfig, seeds []int64, workers int) (Results, error) {
	return core.RunReplicated(ctx, rc, seeds, workers)
}

// Compare runs every protocol in opts on the base scenario (pause time as
// configured) and returns per-protocol results.
func Compare(opts Options) (map[string]Results, error) {
	return core.SummaryTable(context.Background(), opts)
}

// CompareContext is Compare with cancellation.
func CompareContext(ctx context.Context, opts Options) (map[string]Results, error) {
	return core.SummaryTable(ctx, opts)
}

// Sweep evaluates every protocol at every value of one axis, in parallel,
// merging replication seeds per point. Any Spec dimension an Axis can
// Apply is sweepable.
func Sweep(ctx context.Context, opts Options, axis Axis) (*SweepResult, error) {
	return core.Sweep(ctx, opts, axis)
}

// Grid evaluates every protocol at every combination of several axes (full
// cross product) on one shared worker pool.
func Grid(ctx context.Context, opts Options, axes ...Axis) (*GridResult, error) {
	return core.Grid(ctx, opts, axes...)
}

// The axis catalogue. Each constructor accepts explicit values; nil selects
// canonical defaults.
func PauseAxis(vs []float64) Axis     { return core.PauseAxis(vs) }
func NodesAxis(vs []float64) Axis     { return core.NodesAxis(vs) }
func ScaleAxis(vs []float64) Axis     { return core.ScaleAxis(vs) }
func RateAxis(vs []float64) Axis      { return core.RateAxis(vs) }
func SpeedAxis(vs []float64) Axis     { return core.SpeedAxis(vs) }
func SourcesAxis(vs []float64) Axis   { return core.SourcesAxis(vs) }
func TxRangeAxis(vs []float64) Axis   { return core.TxRangeAxis(vs) }
func CSRangeAxis(vs []float64) Axis   { return core.CSRangeAxis(vs) }
func AreaWidthAxis(vs []float64) Axis { return core.AreaWidthAxis(vs) }
func PayloadAxis(vs []float64) Axis   { return core.PayloadAxis(vs) }

// MobilityModelAxis and TrafficModelAxis sweep the scenario family itself:
// their values index a list of registered model names (nil selects the
// whole registry), so a Grid can cross protocols × mobility × traffic
// models. ModelAxisByName is the string-list form used by JSON campaign
// specs ({"name": "mobility", "models": [...]}).
func MobilityModelAxis(names []string) Axis { return core.MobilityModelAxis(names) }
func TrafficModelAxis(names []string) Axis  { return core.TrafficModelAxis(names) }
func RadioModelAxis(names []string) Axis    { return core.RadioModelAxis(names) }
func ChurnModelAxis(names []string) Axis    { return core.ChurnModelAxis(names) }
func ModelAxisByName(name string, models []string) (Axis, error) {
	return core.ModelAxisByName(name, models)
}

// AxisByName resolves a catalogue axis by CLI-friendly name ("txrange",
// "pause", …); AxisNames lists them.
func AxisByName(name string, vs []float64) (Axis, error) { return core.AxisByName(name, vs) }
func AxisNames() []string                                { return core.AxisNames() }

// PauseSweep sweeps pause time (mobility), the axis of Figures 1–4.
// A nil pauses slice selects the Broch-style defaults.
func PauseSweep(opts Options, pauses []float64) (*SweepResult, error) {
	return core.PauseSweep(context.Background(), opts, pauses)
}

// DensitySweep sweeps the node count (Figure 6).
func DensitySweep(opts Options, nodes []float64) (*SweepResult, error) {
	return core.DensitySweep(context.Background(), opts, nodes)
}

// LoadSweep sweeps the offered load in packets/s (Figure 7).
func LoadSweep(opts Options, rates []float64) (*SweepResult, error) {
	return core.LoadSweep(context.Background(), opts, rates)
}

// SpeedSweep sweeps maximum node speed (Figure 8).
func SpeedSweep(opts Options, speeds []float64) (*SweepResult, error) {
	return core.SpeedSweep(context.Background(), opts, speeds)
}

// RenderFigure renders a figure as an aligned text table.
func RenderFigure(f Figure) string { return core.RenderFigure(f) }

// RenderFigureCSV renders a figure as CSV.
func RenderFigureCSV(f Figure) string { return core.RenderFigureCSV(f) }

// JSON exports, alongside the text/CSV renders.
func ResultsJSON(r Results) ([]byte, error)     { return core.ResultsJSON(r) }
func SweepJSON(sr *SweepResult) ([]byte, error) { return core.SweepJSON(sr) }
func GridJSON(g *GridResult) ([]byte, error)    { return core.GridJSON(g) }
func FigureJSON(f Figure) ([]byte, error)       { return core.FigureJSON(f) }

// Metrics available for figure rendering.
var (
	MetricPDR        = core.MetricPDR
	MetricDelay      = core.MetricDelay
	MetricOverhead   = core.MetricOverhead
	MetricNRL        = core.MetricNRL
	MetricThroughput = core.MetricThroughput
	MetricMacLoad    = core.MetricMacLoad
	MetricAvgHops    = core.MetricAvgHops
	// Autoconfiguration metrics, populated by the AUTOCONF census.
	MetricTimeToConverge    = core.MetricTimeToConverge
	MetricAddrCollisionRate = core.MetricAddrCollisionRate
)
