package adhocsim_test

import (
	"context"
	"io"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"adhocsim"
)

// allSinks attaches one of every production sink plus a capture, returning
// the capture for stream inspection.
func allSinks(spec adhocsim.Spec) (*captureSink, []adhocsim.MetricSink) {
	cap := &captureSink{}
	return cap, []adhocsim.MetricSink{
		adhocsim.NewSketchSink(100, adhocsim.MetricDelaySec, adhocsim.MetricHops),
		adhocsim.NewWindowSink(spec.Duration, 60),
		adhocsim.NewWelfordSink(),
		adhocsim.NewJSONLSink(io.Discard),
		cap,
	}
}

// captureSink records every sample (test-only; unbounded).
type captureSink struct{ samples []adhocsim.MetricSample }

func (c *captureSink) Record(s adhocsim.MetricSample) { c.samples = append(c.samples, s) }

// TestGoldenParityWithSinksAttached: attaching the full sink set must leave
// the golden DSR seed-1 run bit-identical — the sample stream is a read-only
// tap on the stats path, not a second accounting.
func TestGoldenParityWithSinksAttached(t *testing.T) {
	if testing.Short() {
		t.Skip("150 s study run")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 150 * adhocsim.Second
	want := seedGolden["DSR"]

	sketches := adhocsim.NewSketchSink(100, adhocsim.MetricDelaySec, adhocsim.MetricHops)
	welford := adhocsim.NewWelfordSink()
	cap, sinks := allSinks(spec)
	sinks[0] = sketches
	sinks[2] = welford
	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: 1, Sinks: sinks})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent != want.dataSent || res.DataDelivered != want.dataDelivered ||
		res.RoutingTxPackets != want.routingTxPackets || res.MacCtlFrames != want.macCtlFrames {
		t.Errorf("counters diverged with sinks attached: %+v", res)
	}
	if res.PDR != want.pdr || res.AvgDelay != want.avgDelay || res.AvgHops != want.avgHops {
		t.Errorf("rates diverged with sinks attached: pdr %v delay %v hops %v", res.PDR, res.AvgDelay, res.AvgHops)
	}
	// And a sinkless rerun is DeepEqual to the sinked one (both Streams nil:
	// sinks are caller-owned; Run does not attach digests to Results).
	plain, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Error("results with and without sinks are not DeepEqual")
	}

	// The stream agrees with the aggregate accounting.
	var delivered uint64
	for _, s := range cap.samples {
		if s.Kind == adhocsim.MetricDelivered {
			delivered++
		}
	}
	if delivered != res.DataDelivered {
		t.Errorf("stream delivered %d samples, results say %d", delivered, res.DataDelivered)
	}
	delay := sketches.Sketch(adhocsim.MetricDelaySec)
	if delay.Count() != float64(res.DataDelivered) {
		t.Errorf("delay sketch count %v, want %d", delay.Count(), res.DataDelivered)
	}
	// Sketch and Welford views of the same stream agree with the exact stats
	// (sketch within rank tolerance, Welford mean within float noise).
	if p50 := delay.Quantile(0.5); math.Abs(p50-res.P50Delay) > res.P95Delay*0.05+1e-9 {
		t.Errorf("sketch p50 %v far from exact %v", p50, res.P50Delay)
	}
	if m := welford.Cell(adhocsim.MetricDelaySec).Mean(); math.Abs(m-res.AvgDelay) > 1e-12 {
		t.Errorf("welford delay mean %v, exact %v", m, res.AvgDelay)
	}
}

// TestMetricStreamReplayParity: the sample stream is part of the determinism
// contract — the spatial-grid and brute-force transmit paths, and the heap
// and calendar schedulers, must all emit the identical stream, sample for
// sample.
func TestMetricStreamReplayParity(t *testing.T) {
	if testing.Short() {
		t.Skip("three 60 s study runs")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 60 * adhocsim.Second
	run := func(phy adhocsim.PhyConfig) []adhocsim.MetricSample {
		cap := &captureSink{}
		_, err := adhocsim.Run(adhocsim.RunConfig{
			Spec: spec, Protocol: adhocsim.DSR, Seed: 1, Phy: phy,
			Sinks: []adhocsim.MetricSink{cap},
		})
		if err != nil {
			t.Fatal(err)
		}
		return cap.samples
	}
	grid := run(adhocsim.PhyConfig{})
	if len(grid) == 0 {
		t.Fatal("no samples emitted")
	}
	if brute := run(adhocsim.PhyConfig{BruteForce: true}); !reflect.DeepEqual(grid, brute) {
		t.Error("grid and brute-force paths emit different sample streams")
	}
	if cal := run(adhocsim.PhyConfig{Scheduler: adhocsim.QueueCalendar}); !reflect.DeepEqual(grid, cal) {
		t.Error("heap and calendar schedulers emit different sample streams")
	}
}

// TestCampaignResumeSketchParity: a campaign resumed entirely from its
// journal reproduces percentiles and time series bit-identically — the
// serialized sketch states in the journal are the full aggregation input.
func TestCampaignResumeSketchParity(t *testing.T) {
	if testing.Short() {
		t.Skip("small campaign, two executions")
	}
	nodes, sources, dur := 15, 3, 20.0
	spec := adhocsim.CampaignSpec{
		Name: "resume-sketch",
		Base: adhocsim.CampaignScenarioPatch{
			Nodes: &nodes, Sources: &sources, DurationS: &dur,
		},
		Protocols: []string{adhocsim.DSR},
		MaxReps:   2,
	}
	journal := filepath.Join(t.TempDir(), "ckpt.jsonl")
	first, err := adhocsim.RunCampaign(context.Background(), spec, adhocsim.CampaignOptions{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	// Second execution resumes every run from the journal: no simulation
	// executes, yet the result — quantiles and series included — matches
	// bit for bit.
	resumed, err := adhocsim.RunCampaign(context.Background(), spec, adhocsim.CampaignOptions{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, resumed) {
		t.Fatalf("journal-resumed result diverges:\nfirst   %+v\nresumed %+v", first, resumed)
	}
	cell := first.Cells[0]
	q, ok := cell.Quantiles["delay"]
	if !ok || q.Count == 0 {
		t.Fatalf("campaign cell carries no delay quantiles: %+v", cell.Quantiles)
	}
	if q.Count != float64(cell.Merged.DataDelivered) {
		t.Errorf("delay quantile count %v, want %d delivered", q.Count, cell.Merged.DataDelivered)
	}
	if cell.Series == nil || len(cell.Series.Counts["delivered"]) == 0 {
		t.Error("campaign cell carries no time series")
	}
}
