package adhocsim

import (
	"context"

	"adhocsim/internal/campaign"
)

// Campaign engine: multi-seed replication campaigns over the experiment API.
// A CampaignSpec (protocols × sweep axes × replication policy) expands into
// a run set executed on a work-stealing worker pool; each metric cell is
// aggregated online (Welford moments, Student-t 95% confidence intervals)
// and may stop replicating early once its estimates are tight enough.
// Completed runs are journaled to a JSONL checkpoint so an interrupted
// campaign resumes bit-identically. NewCampaignServer exposes the same
// engine over HTTP (see cmd/adhocd).

// CampaignSpec declares a replication campaign; see the campaign package.
type CampaignSpec = campaign.Spec

// CampaignAxis names a catalogue axis and its values inside a CampaignSpec.
type CampaignAxis = campaign.AxisSpec

// CampaignScenarioPatch overrides study-default scenario fields in
// JSON-friendly units (the HTTP-facing half of CampaignSpec).
type CampaignScenarioPatch = campaign.ScenarioPatch

// CampaignOptions configure execution: worker count, checkpoint journal,
// progress callback.
type CampaignOptions = campaign.Options

// CampaignSnapshot is a live progress view of a running campaign.
type CampaignSnapshot = campaign.Snapshot

// CampaignResult is the final aggregate: per-cell merged Results plus
// per-metric summaries with 95% confidence half-widths.
type CampaignResult = campaign.Result

// CampaignCellResult is one cell of a CampaignResult.
type CampaignCellResult = campaign.CellResult

// Campaign is a prepared campaign; create with NewCampaign, execute with
// its Run method, observe with Snapshot.
type Campaign = campaign.Campaign

// NewCampaign validates and expands a campaign without running it.
func NewCampaign(spec CampaignSpec, opts CampaignOptions) (*Campaign, error) {
	return campaign.New(spec, opts)
}

// RunCampaign expands and executes a campaign to completion (or
// cancellation) and returns its aggregate.
func RunCampaign(ctx context.Context, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(ctx, spec, opts)
}

// CampaignServer serves campaigns over HTTP (submit, progress, results,
// cancel); cmd/adhocd is a thin main around it.
type CampaignServer = campaign.Server

// CampaignServerOptions configure a CampaignServer.
type CampaignServerOptions = campaign.ServerOptions

// NewCampaignServer creates the HTTP simulation service.
func NewCampaignServer(opts CampaignServerOptions) *CampaignServer {
	return campaign.NewServer(opts)
}
