GO ?= go

.PHONY: verify fmt vet build test figs

## verify: the tier-1 gate — formatting, vet, build, tests.
verify: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## figs: regenerate the scaled evaluation figures (text + CSV + JSON).
figs:
	$(GO) run ./cmd/adhocfigs -json
