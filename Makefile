GO ?= go

.PHONY: verify fmt vet build test figs bench bench-baseline bench-compare profile race race-parallel campaign-smoke dist-smoke scenario-smoke radio-smoke churn-smoke

## verify: the tier-1 gate — formatting, vet, build, tests.
verify: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## figs: regenerate the scaled evaluation figures (text + CSV + JSON).
figs:
	$(GO) run ./cmd/adhocfigs -json

## race: the short test suite under the race detector.
race:
	$(GO) test -race -short ./...

## race-parallel: the intra-run parallelism suite under the race detector —
## the workers-vs-sequential parity fuzz across schedulers, radio models and
## reception modes, the pool/precompute unit tests, and one short
## city-scale benchmark iteration with the fan-out pool engaged (workers=4).
race-parallel:
	$(GO) test -race -run 'TestParallelParityFuzz|TestParallelCancellationLeaksNothing|TestParallelNegativeWorkersRejected' .
	$(GO) test -race -run 'Parallel|AtRO|Clone|Pool|Precompute|StopWorkers|Workers' ./internal/sim ./internal/mobility ./internal/phy ./internal/campaign
	ADHOCSIM_BENCH_WORKERS=4 $(GO) test -race -run '^$$' -bench 'BenchmarkSingleRunCityScaleParallel/5k-calendar' -benchtime 1x .

## campaign-smoke: drive a tiny 2-protocol × 2-seed campaign through the
## adhocd HTTP API on a loopback port (submit → poll → results → delete).
campaign-smoke:
	$(GO) run ./cmd/adhocd -smoke

## dist-smoke: distributed execution end to end — one coordinator plus two
## adhocd -worker child processes over loopback, one worker SIGKILLed and
## replaced mid-campaign. Asserts the distributed result is
## reflect.DeepEqual to the single-process result, that resubmitting the
## spec completes entirely from the content-addressed result cache, and
## that the SSE progress stream stays monotone.
dist-smoke:
	$(GO) run ./cmd/adhocd -smoke-dist

## scenario-smoke: run a tiny protocol × mobility × traffic model matrix
## through the campaign engine (exercises the scenario model registries).
scenario-smoke:
	$(GO) run ./examples/model_matrix

## radio-smoke: run a tiny protocol × radio model matrix under SINR
## reception through the campaign engine (exercises the radio registry and
## the cumulative-interference path).
radio-smoke:
	$(GO) run ./examples/radio_matrix

## churn-smoke: run the address-autoconfiguration protocol across a churn
## model × population matrix through the adhocd HTTP API on a loopback
## port, asserting every cell reports membership churn plus converged
## time_to_converge / addr_collision_rate summaries in the results JSON.
churn-smoke:
	$(GO) run ./cmd/adhocd -smoke-churn

## bench: smoke-scale benchmarks (1 iteration each, shape check).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-baseline: record the committed benchmark baseline as JSON (same
## ./... scope the CI bench-smoke step runs, so the two are comparable).
## Two steps, not a pipe, so a benchmark failure fails the target.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > BENCH_baseline.json
	@rm -f bench.out.tmp
	@echo wrote BENCH_baseline.json

## bench-compare: run the benchmarks and report per-benchmark ns/op drift
## against the committed BENCH_baseline.json. Informational — a drift past
## the tolerance prints REGRESSION but does not fail the target (pass
## BENCHJSON_FLAGS=-strict to make it gate).
BENCHJSON_FLAGS ?=
bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > bench.out.tmp
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json $(BENCHJSON_FLAGS) < bench.out.tmp
	@rm -f bench.out.tmp

## profile: capture CPU + heap pprof profiles of a mid-size city-scale
## single run (2000 nodes, manhattan mobility, calendar scheduler) into
## ./profiles. Inspect with `go tool pprof profiles/cpu.pprof`.
profile:
	@mkdir -p profiles
	$(GO) run ./cmd/adhocsim -nodes 2000 -w 4000 -h 800 -dur 30 \
		-proto CBRP -mobility manhattan -scheduler calendar \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof
	@echo wrote profiles/cpu.pprof profiles/mem.pprof
