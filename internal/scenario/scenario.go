// Package scenario turns a declarative experiment specification into
// concrete simulation inputs: mobility tracks (setdest), CBR connection
// lists (cbrgen) and radio parameters, all derived deterministically from a
// seed.
package scenario

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/traffic"
)

// Spec describes one experiment configuration (before seeding).
type Spec struct {
	// Nodes is the network size (study: up to 40).
	Nodes int
	// Area is the simulation rectangle in metres (study family:
	// 1500×300).
	Area geo.Rect
	// Duration is the simulated time horizon.
	Duration sim.Duration

	// Mobility (random waypoint unless Static).
	MaxSpeed float64 // m/s (study: 20)
	MinSpeed float64 // m/s (CMU setdest uses ~1 to avoid speed decay)
	Pause    sim.Duration

	// Traffic.
	Sources      int     // number of CBR connections
	Rate         float64 // packets/s per connection (study: 4)
	PayloadBytes int     // study: 64
	// TrafficStart window: connection start times are uniform in
	// [StartMin, StartMax].
	StartMin, StartMax sim.Duration

	// Radio.
	TxRange float64 // metres (study: 250); 0 selects the default params
	CSRange float64 // metres; 0 selects 2.2 × TxRange

	// Model, when non-nil, overrides the mobility model (e.g.
	// mobility.GroupMobility for convoy scenarios); the speed/pause
	// fields above are then ignored.
	Model mobility.Model
}

// Default returns the reconstructed study configuration: 40 nodes,
// 1500×300 m, 20 m/s random waypoint, 10 CBR sources at 4 pkt/s of 64-byte
// payloads, 250 m radios, 900 s horizon.
func Default() Spec {
	return Spec{
		Nodes:        40,
		Area:         geo.Rect{W: 1500, H: 300},
		Duration:     900 * sim.Second,
		MaxSpeed:     20,
		MinSpeed:     1,
		Pause:        0,
		Sources:      10,
		Rate:         4,
		PayloadBytes: 64,
		StartMin:     10 * sim.Second,
		StartMax:     90 * sim.Second,
		TxRange:      250,
	}
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.Area.W <= 0 || s.Area.H <= 0 {
		return fmt.Errorf("scenario: degenerate area %+v", s.Area)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration")
	}
	if s.Sources < 1 {
		return fmt.Errorf("scenario: need at least one source")
	}
	if s.Sources > s.Nodes*(s.Nodes-1) {
		return fmt.Errorf("scenario: %d sources exceed possible pairs", s.Sources)
	}
	if s.Rate <= 0 || s.PayloadBytes <= 0 {
		return fmt.Errorf("scenario: bad traffic parameters")
	}
	if s.MaxSpeed < 0 || s.MinSpeed < 0 || s.MaxSpeed < s.MinSpeed {
		return fmt.Errorf("scenario: bad speed range [%v,%v]", s.MinSpeed, s.MaxSpeed)
	}
	if s.StartMax < s.StartMin {
		return fmt.Errorf("scenario: bad start window")
	}
	return nil
}

// Instance is a fully-generated scenario ready to simulate.
type Instance struct {
	Spec        Spec
	Seed        int64
	Tracks      []*mobility.Track
	Connections []traffic.Connection
	Radio       phy.RadioParams
}

// Generate expands the spec deterministically from seed.
func (s Spec) Generate(seed int64) (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(seed)

	model := s.Model
	if model == nil {
		model = mobility.RandomWaypoint{
			Area:     s.Area,
			MinSpeed: s.MinSpeed,
			MaxSpeed: s.MaxSpeed,
			Pause:    s.Pause,
		}
	}
	tracks, err := model.Generate(s.Nodes, s.Duration, root.ForkNamed("mobility"))
	if err != nil {
		return nil, err
	}

	conns, err := s.generateConnections(root.ForkNamed("traffic"))
	if err != nil {
		return nil, err
	}

	radio := phy.DefaultParams()
	if s.TxRange > 0 && s.TxRange != 250 || s.CSRange > 0 {
		cs := s.CSRange
		if cs <= 0 {
			cs = 2.2 * s.TxRange
		}
		radio = phy.ParamsForRange(s.TxRange, cs)
	}

	return &Instance{
		Spec:        s,
		Seed:        seed,
		Tracks:      tracks,
		Connections: conns,
		Radio:       radio,
	}, nil
}

// generateConnections draws distinct (src,dst) pairs, like cbrgen: sources
// are distinct nodes where possible, destinations uniform among the others.
// The start window is clamped to the first half of the run so that short
// scenarios still carry traffic.
func (s Spec) generateConnections(rng *sim.RNG) ([]traffic.Connection, error) {
	if max := s.Duration / 2; s.StartMax > max {
		s.StartMax = max
		if s.StartMin > s.StartMax {
			s.StartMin = s.StartMax
		}
	}
	used := make(map[[2]int32]bool)
	var conns []traffic.Connection
	attempts := 0
	for len(conns) < s.Sources {
		attempts++
		if attempts > 100*s.Sources+1000 {
			return nil, fmt.Errorf("scenario: could not draw %d distinct connections", s.Sources)
		}
		src := int32(rng.Intn(s.Nodes))
		dst := int32(rng.Intn(s.Nodes))
		if src == dst {
			continue
		}
		key := [2]int32{src, dst}
		if used[key] {
			continue
		}
		used[key] = true
		start := sim.Time(0).Add(rng.DurationUniform(s.StartMin, s.StartMax+1))
		conns = append(conns, traffic.Connection{
			Src:          pkt.NodeID(src),
			Dst:          pkt.NodeID(dst),
			Rate:         s.Rate,
			PayloadBytes: s.PayloadBytes,
			Start:        start,
		})
	}
	return conns, nil
}
