// Package scenario turns a declarative experiment specification into
// concrete simulation inputs: mobility tracks (setdest), traffic connection
// lists (cbrgen) and radio parameters, all derived deterministically from a
// seed.
//
// Mobility, traffic and radio models are named, parameterized and
// JSON-serializable (MobilitySpec/TrafficSpec/RadioSpec) and resolve
// through the open registries in the mobility, traffic and radio packages,
// so campaigns and the HTTP service can select and sweep scenario families
// without Go-side hooks. Zero-valued specs select the study models (random
// waypoint, CBR, two-ray ground with pairwise capture) and compile
// bit-identically to the pre-registry harness.
package scenario

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/lifecycle"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/radio"
	"adhocsim/internal/sim"
	"adhocsim/internal/traffic"
)

// MobilitySpec names a registered mobility model with optional parameter
// overrides. The zero value selects the study's random waypoint driven by
// the Spec-level speed/pause fields. See mobility.Registered for the
// built-in names and DESIGN.md for their parameters.
type MobilitySpec struct {
	Name   string             `json:"name,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
}

// TrafficSpec names a registered traffic model with optional parameter
// overrides. The zero value selects the study's CBR workload.
type TrafficSpec struct {
	Name   string             `json:"name,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
}

// RadioSpec names a registered radio/propagation model with optional
// parameter overrides, plus the reception-model switch. The zero value
// selects the study's two-ray ground at the Spec-level TxRange/CSRange
// fields with pairwise ns-2 capture, and compiles bit-identically to the
// pre-registry radio path.
type RadioSpec struct {
	Name   string             `json:"name,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
	// SINR switches reception from the pairwise capture test to
	// cumulative-interference SINR (see phy.Config.SINR). It is
	// orthogonal to the propagation model: any registered model runs in
	// either mode.
	SINR bool `json:"sinr,omitempty"`
}

// LifecycleSpec names a registered churn (node lifecycle) model with
// optional parameter overrides. The zero value selects the static lifecycle
// — the full population up for the whole run — and compiles bit-identically
// to the fixed-population harness.
type LifecycleSpec struct {
	Name   string             `json:"name,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
}

// Spec describes one experiment configuration (before seeding).
type Spec struct {
	// Nodes is the network size (study: up to 40).
	Nodes int
	// Area is the simulation rectangle in metres (study family:
	// 1500×300).
	Area geo.Rect
	// Duration is the simulated time horizon.
	Duration sim.Duration

	// Mobility (random waypoint unless Static).
	MaxSpeed float64 // m/s (study: 20)
	MinSpeed float64 // m/s (CMU setdest uses ~1 to avoid speed decay)
	Pause    sim.Duration

	// Traffic.
	Sources      int     // number of traffic connections
	Rate         float64 // packets/s per connection (study: 4)
	PayloadBytes int     // study: 64
	// TrafficStart window: connection start times are uniform in
	// [StartMin, StartMax].
	StartMin, StartMax sim.Duration

	// Radio.
	TxRange float64 // metres (study: 250); 0 selects the default params
	CSRange float64 // metres; 0 selects 2.2 × TxRange

	// Mobility selects a registered mobility model by name with optional
	// model-specific parameters; the zero value is the study's random
	// waypoint shaped by the speed/pause fields above.
	Mobility MobilitySpec
	// Traffic selects a registered traffic model; the zero value is the
	// study's CBR shaped by Rate/PayloadBytes.
	Traffic TrafficSpec
	// Radio selects a registered radio/propagation model and the
	// reception mode; the zero value is the study's two-ray ground with
	// pairwise capture, shaped by the TxRange/CSRange fields above.
	Radio RadioSpec
	// Lifecycle selects a registered churn model compiling to a per-run
	// schedule of Join/Leave/Fail/Recover membership events; the zero
	// value is the static fixed population. omitzero keeps the zero-value
	// spec's JSON — and therefore every campaign plan hash and
	// distributed-cache unit key derived from it — byte-identical to the
	// pre-lifecycle harness.
	Lifecycle LifecycleSpec `json:",omitzero"`
}

// Default returns the reconstructed study configuration: 40 nodes,
// 1500×300 m, 20 m/s random waypoint, 10 CBR sources at 4 pkt/s of 64-byte
// payloads, 250 m radios, 900 s horizon.
func Default() Spec {
	return Spec{
		Nodes:        40,
		Area:         geo.Rect{W: 1500, H: 300},
		Duration:     900 * sim.Second,
		MaxSpeed:     20,
		MinSpeed:     1,
		Pause:        0,
		Sources:      10,
		Rate:         4,
		PayloadBytes: 64,
		StartMin:     10 * sim.Second,
		StartMax:     90 * sim.Second,
		TxRange:      250,
	}
}

// MobilityModel resolves the spec's mobility model through the registry.
func (s Spec) MobilityModel() (mobility.Model, error) {
	env := mobility.Env{
		Area:     s.Area,
		MinSpeed: s.MinSpeed,
		MaxSpeed: s.MaxSpeed,
		Pause:    s.Pause,
	}
	return mobility.New(s.Mobility.Name, env, s.Mobility.Params)
}

// TrafficGenerator resolves the spec's traffic model through the registry.
func (s Spec) TrafficGenerator() (traffic.Generator, error) {
	return traffic.New(s.Traffic.Name, s.Traffic.Params)
}

// RadioModel resolves the spec's radio model through the registry for one
// run. The seed matters only to the stochastic models (shadowing, fading),
// which root their content-derived draws in it; Validate dry-runs with
// seed 0.
func (s Spec) RadioModel(seed int64) (phy.RadioParams, error) {
	env := radio.Env{TxRange: s.TxRange, CSRange: s.CSRange, Seed: seed}
	return radio.New(s.Radio.Name, env, s.Radio.Params)
}

// LifecycleModel resolves the spec's churn model through the registry. pos
// reports node positions to spatially-correlated models (partition-heal);
// nil pins every node to the origin, which Validate's dry runs use so they
// never have to generate mobility tracks.
func (s Spec) LifecycleModel(pos func(node int, at sim.Time) geo.Point) (lifecycle.Model, error) {
	return lifecycle.New(s.Lifecycle.Name, s.lifecycleEnv(pos), s.Lifecycle.Params)
}

// lifecycleEnv is the churn-model-facing view of the spec.
func (s Spec) lifecycleEnv(pos func(node int, at sim.Time) geo.Point) lifecycle.Env {
	return lifecycle.Env{
		Nodes:    s.Nodes,
		Duration: s.Duration,
		Area:     s.Area,
		Pos:      pos,
	}
}

// trafficEnv is the generator-facing view of the spec for one run.
func (s Spec) trafficEnv(seed int64) traffic.Env {
	return traffic.Env{
		Nodes:        s.Nodes,
		Sources:      s.Sources,
		Rate:         s.Rate,
		PayloadBytes: s.PayloadBytes,
		StartMin:     s.StartMin,
		StartMax:     s.StartMax,
		Duration:     s.Duration,
		Seed:         seed,
	}
}

// Validate reports configuration errors, including mobility/traffic/radio
// model names that do not resolve in the registries and malformed model
// parameters. Radio parameters additionally pass phy.RadioParams.Validate,
// so a capture ratio at or below 1 (formerly a channel-constructor panic)
// surfaces here — at spec/campaign submission time.
func (s Spec) Validate() error {
	if err := s.validateFields(); err != nil {
		return err
	}
	if _, err := s.MobilityModel(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := s.TrafficGenerator(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := s.RadioModel(0); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	// The lifecycle model is dry-run twice: New's zero-node build catches
	// malformed parameters, and a full-population seed-0 schedule (with
	// origin-pinned positions, so no tracks are generated) is bounds-checked
	// so churn that falls outside the run horizon — a join scheduled after
	// Duration — fails at campaign submission, not mid-flight.
	model, err := s.LifecycleModel(nil)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	events, err := model.Schedule(s.lifecycleEnv(nil), sim.NewRNG(0))
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := lifecycle.Check(events, s.Nodes, s.Duration); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// validateFields checks the plain scalar fields; Validate additionally
// resolves the model specs, and Generate resolves them itself (once) so a
// run does not build every model twice.
func (s Spec) validateFields() error {
	if s.Nodes < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.Area.W <= 0 || s.Area.H <= 0 {
		return fmt.Errorf("scenario: degenerate area %+v", s.Area)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration")
	}
	if s.Sources < 1 {
		return fmt.Errorf("scenario: need at least one source")
	}
	if s.Sources > s.Nodes*(s.Nodes-1) {
		return fmt.Errorf("scenario: %d sources exceed possible pairs", s.Sources)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("scenario: non-positive rate %v", s.Rate)
	}
	if s.PayloadBytes <= 0 {
		return fmt.Errorf("scenario: non-positive payload %d bytes", s.PayloadBytes)
	}
	if s.MaxSpeed < 0 || s.MinSpeed < 0 {
		return fmt.Errorf("scenario: negative speed [%v,%v]", s.MinSpeed, s.MaxSpeed)
	}
	if s.MaxSpeed < s.MinSpeed {
		return fmt.Errorf("scenario: MinSpeed %v exceeds MaxSpeed %v", s.MinSpeed, s.MaxSpeed)
	}
	if s.Pause < 0 {
		return fmt.Errorf("scenario: negative pause %v", s.Pause)
	}
	if s.StartMin < 0 {
		return fmt.Errorf("scenario: negative traffic start %v", s.StartMin)
	}
	if s.StartMax < s.StartMin {
		return fmt.Errorf("scenario: traffic start window [%v,%v] ends before it begins",
			s.StartMin, s.StartMax)
	}
	return nil
}

// Instance is a fully-generated scenario ready to simulate.
type Instance struct {
	Spec        Spec
	Seed        int64
	Tracks      []*mobility.Track
	Connections []traffic.Connection
	Radio       phy.RadioParams
	// Lifecycle is the compiled membership schedule in canonical order;
	// nil for the static lifecycle.
	Lifecycle []lifecycle.Event
}

// Generate expands the spec deterministically from seed: the mobility model
// consumes the run's "mobility" substream, the traffic generator the
// "traffic" substream (stochastic emission processes additionally derive
// per-connection seeds via sim.DeriveSeed). Identical (spec, seed) pairs
// yield identical instances across processes.
func (s Spec) Generate(seed int64) (*Instance, error) {
	// Resolving the models here doubles as their validation (Validate does
	// the same resolution), so each run builds every model exactly once.
	if err := s.validateFields(); err != nil {
		return nil, err
	}
	model, err := s.MobilityModel()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	gen, err := s.TrafficGenerator()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	root := sim.NewRNG(seed)

	tracks, err := model.Generate(s.Nodes, s.Duration, root.ForkNamed("mobility"))
	if err != nil {
		return nil, err
	}
	conns, err := gen.Connections(s.trafficEnv(seed), root.ForkNamed("traffic"))
	if err != nil {
		return nil, err
	}

	// Positions are served from a lazily-built track table, so only
	// spatially-correlated churn models (partition-heal) pay for it.
	var posTab *mobility.Table
	pos := func(node int, at sim.Time) geo.Point {
		if posTab == nil {
			posTab = mobility.NewTable(tracks)
		}
		return posTab.At(node, at)
	}
	lcModel, err := s.LifecycleModel(pos)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// The lifecycle fork is drawn unconditionally — after the mobility and
	// traffic forks, which root consumed last before this registry existed —
	// so the static lifecycle leaves every earlier substream untouched and
	// the instance bit-identical to the fixed-population harness.
	churn, err := lcModel.Schedule(s.lifecycleEnv(pos), root.ForkNamed("lifecycle"))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	lifecycle.Normalize(churn)
	if err := lifecycle.Check(churn, s.Nodes, s.Duration); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	params, err := s.RadioModel(seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	return &Instance{
		Spec:        s,
		Seed:        seed,
		Tracks:      tracks,
		Connections: conns,
		Radio:       params,
		Lifecycle:   churn,
	}, nil
}
