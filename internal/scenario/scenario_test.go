package scenario

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/sim"
	"adhocsim/internal/topo"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationCatchesBadSpecs(t *testing.T) {
	mk := func(mut func(*Spec)) Spec {
		s := Default()
		mut(&s)
		return s
	}
	bad := []Spec{
		mk(func(s *Spec) { s.Nodes = 1 }),
		mk(func(s *Spec) { s.Area = geo.Rect{} }),
		mk(func(s *Spec) { s.Duration = 0 }),
		mk(func(s *Spec) { s.Sources = 0 }),
		mk(func(s *Spec) { s.Nodes = 3; s.Sources = 100 }),
		mk(func(s *Spec) { s.Rate = 0 }),
		mk(func(s *Spec) { s.PayloadBytes = 0 }),
		mk(func(s *Spec) { s.MinSpeed = 30 }),
		mk(func(s *Spec) { s.StartMin = 2 * sim.Second; s.StartMax = sim.Second }),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
		if _, err := s.Generate(1); err == nil {
			t.Fatalf("bad spec %d generated", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	s := Default()
	s.Duration = 100 * sim.Second
	inst, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tracks) != s.Nodes {
		t.Fatalf("tracks = %d", len(inst.Tracks))
	}
	if len(inst.Connections) != s.Sources {
		t.Fatalf("connections = %d", len(inst.Connections))
	}
	seen := map[[2]int32]bool{}
	for _, c := range inst.Connections {
		if c.Src == c.Dst {
			t.Fatal("self-loop connection")
		}
		k := [2]int32{int32(c.Src), int32(c.Dst)}
		if seen[k] {
			t.Fatal("duplicate connection pair")
		}
		seen[k] = true
		if c.Start < sim.Time(0).Add(s.StartMin) || c.Start > sim.Time(0).Add(s.StartMax)+1 {
			t.Fatalf("start %v outside window", c.Start)
		}
	}
	// Default radio: exactly the CMU 250 m parameters.
	if r := inst.Radio.RxRange(); r < 249 || r > 251 {
		t.Fatalf("radio range = %f", r)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Default()
	s.Duration = 60 * sim.Second
	a, _ := s.Generate(5)
	b, _ := s.Generate(5)
	for i := range a.Tracks {
		for ts := 0.0; ts < 60; ts += 9 {
			if a.Tracks[i].At(sim.At(ts)) != b.Tracks[i].At(sim.At(ts)) {
				t.Fatal("same seed, different mobility")
			}
		}
	}
	for i := range a.Connections {
		if a.Connections[i] != b.Connections[i] {
			t.Fatal("same seed, different connections")
		}
	}
	c, _ := s.Generate(6)
	if a.Tracks[0].At(sim.At(9)) == c.Tracks[0].At(sim.At(9)) &&
		a.Tracks[1].At(sim.At(9)) == c.Tracks[1].At(sim.At(9)) {
		t.Fatal("different seeds produced identical mobility")
	}
}

func TestCustomRange(t *testing.T) {
	s := Default()
	s.TxRange = 100
	inst, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r := inst.Radio.RxRange(); r < 99 || r > 101 {
		t.Fatalf("custom range = %f", r)
	}
	if cs := inst.Radio.CSRange(); cs < 215 || cs > 225 {
		t.Fatalf("default CS scaling = %f, want ~220", cs)
	}
}

func TestStaticSpec(t *testing.T) {
	s := Default()
	s.MaxSpeed, s.MinSpeed = 0, 0
	s.Duration = 30 * sim.Second
	inst, err := s.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range inst.Tracks {
		if tr.At(0) != tr.At(sim.At(30)) {
			t.Fatal("static scenario moved")
		}
	}
}

// TestScenarioConnectivitySanity documents that the default 40-node strip is
// usually connected — the premise of the study's traffic patterns.
func TestScenarioConnectivitySanity(t *testing.T) {
	s := Default()
	s.Duration = 60 * sim.Second
	inst, err := s.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	connectedSamples := 0
	const samples = 12
	for i := 0; i < samples; i++ {
		g := topo.Snapshot(inst.Tracks, sim.At(float64(i)*5), 250)
		if g.Connected() {
			connectedSamples++
		}
	}
	if connectedSamples < samples/2 {
		t.Fatalf("default scenario mostly partitioned: %d/%d connected", connectedSamples, samples)
	}
}

func TestModelOverride(t *testing.T) {
	s := Default()
	s.Nodes = 8
	s.Duration = 30 * sim.Second
	s.Model = mobility.GroupMobility{
		Area: s.Area, Groups: 2, MinSpeed: 1, MaxSpeed: 5, Spread: 80,
	}
	inst, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tracks) != 8 {
		t.Fatalf("tracks = %d", len(inst.Tracks))
	}
	// Group members (round-robin: 0,2,4,6 vs 1,3,5,7) stay together.
	d02 := inst.Tracks[0].At(sim.At(15)).Dist(inst.Tracks[2].At(sim.At(15)))
	if d02 > 4*80 {
		t.Fatalf("group members %f m apart", d02)
	}
}
