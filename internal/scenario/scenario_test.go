package scenario

import (
	"reflect"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/topo"
	"adhocsim/internal/traffic"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationCatchesBadSpecs(t *testing.T) {
	mk := func(mut func(*Spec)) Spec {
		s := Default()
		mut(&s)
		return s
	}
	bad := []Spec{
		mk(func(s *Spec) { s.Nodes = 1 }),
		mk(func(s *Spec) { s.Area = geo.Rect{} }),
		mk(func(s *Spec) { s.Duration = 0 }),
		mk(func(s *Spec) { s.Sources = 0 }),
		mk(func(s *Spec) { s.Nodes = 3; s.Sources = 100 }),
		mk(func(s *Spec) { s.Rate = 0 }),
		mk(func(s *Spec) { s.Rate = -4 }),
		mk(func(s *Spec) { s.PayloadBytes = 0 }),
		mk(func(s *Spec) { s.MinSpeed = 30 }),
		mk(func(s *Spec) { s.MaxSpeed = -1; s.MinSpeed = -2 }),
		mk(func(s *Spec) { s.Pause = -sim.Second }),
		mk(func(s *Spec) { s.StartMin = 2 * sim.Second; s.StartMax = sim.Second }),
		mk(func(s *Spec) { s.StartMin = -sim.Second; s.StartMax = sim.Second }),
		mk(func(s *Spec) { s.Mobility = MobilitySpec{Name: "teleport"} }),
		mk(func(s *Spec) {
			s.Mobility = MobilitySpec{Name: "gauss-markov", Params: map[string]float64{"alfa": 0.5}}
		}),
		// Out-of-range parameter values must fail eagerly at Validate, not
		// mid-campaign at the first Generate.
		mk(func(s *Spec) {
			s.Mobility = MobilitySpec{Name: "gauss-markov", Params: map[string]float64{"alpha": 1.5}}
		}),
		mk(func(s *Spec) {
			s.Mobility = MobilitySpec{Name: "manhattan", Params: map[string]float64{"turn_prob": 2}}
		}),
		mk(func(s *Spec) {
			s.Mobility = MobilitySpec{Name: "waypoint", Params: map[string]float64{"min_speed_mps": 50}}
		}),
		mk(func(s *Spec) { s.Traffic = TrafficSpec{Name: "warp"} }),
		mk(func(s *Spec) { s.Traffic = TrafficSpec{Name: "expoo", Params: map[string]float64{"on_s": -1}} }),
		mk(func(s *Spec) { s.Radio = RadioSpec{Name: "warpdrive"} }),
		mk(func(s *Spec) { s.Radio = RadioSpec{Name: "shadowing", Params: map[string]float64{"sigma": 4}} }),
		// The capture-ratio ≤ 1 condition that used to panic inside the
		// channel constructor must now fail spec validation.
		mk(func(s *Spec) { s.Radio = RadioSpec{Params: map[string]float64{"capture_ratio": 1}} }),
		mk(func(s *Spec) { s.Radio = RadioSpec{Name: "pathloss", Params: map[string]float64{"exponent": -2}} }),
		// A carrier-sense range below the reception range inverts the
		// thresholds.
		mk(func(s *Spec) { s.TxRange = 300; s.CSRange = 200 }),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
		if _, err := s.Generate(1); err == nil {
			t.Fatalf("bad spec %d generated", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	s := Default()
	s.Duration = 100 * sim.Second
	inst, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tracks) != s.Nodes {
		t.Fatalf("tracks = %d", len(inst.Tracks))
	}
	if len(inst.Connections) != s.Sources {
		t.Fatalf("connections = %d", len(inst.Connections))
	}
	seen := map[[2]int32]bool{}
	for _, c := range inst.Connections {
		if c.Src == c.Dst {
			t.Fatal("self-loop connection")
		}
		k := [2]int32{int32(c.Src), int32(c.Dst)}
		if seen[k] {
			t.Fatal("duplicate connection pair")
		}
		seen[k] = true
		if c.Start < sim.Time(0).Add(s.StartMin) || c.Start > sim.Time(0).Add(s.StartMax)+1 {
			t.Fatalf("start %v outside window", c.Start)
		}
	}
	// Default radio: exactly the CMU 250 m parameters.
	if r := inst.Radio.RxRange(); r < 249 || r > 251 {
		t.Fatalf("radio range = %f", r)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Default()
	s.Duration = 60 * sim.Second
	a, _ := s.Generate(5)
	b, _ := s.Generate(5)
	for i := range a.Tracks {
		for ts := 0.0; ts < 60; ts += 9 {
			if a.Tracks[i].At(sim.At(ts)) != b.Tracks[i].At(sim.At(ts)) {
				t.Fatal("same seed, different mobility")
			}
		}
	}
	for i := range a.Connections {
		if a.Connections[i] != b.Connections[i] {
			t.Fatal("same seed, different connections")
		}
	}
	c, _ := s.Generate(6)
	if a.Tracks[0].At(sim.At(9)) == c.Tracks[0].At(sim.At(9)) &&
		a.Tracks[1].At(sim.At(9)) == c.Tracks[1].At(sim.At(9)) {
		t.Fatal("different seeds produced identical mobility")
	}
}

func TestCustomRange(t *testing.T) {
	s := Default()
	s.TxRange = 100
	inst, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r := inst.Radio.RxRange(); r < 99 || r > 101 {
		t.Fatalf("custom range = %f", r)
	}
	if cs := inst.Radio.CSRange(); cs < 215 || cs > 225 {
		t.Fatalf("default CS scaling = %f, want ~220", cs)
	}
}

func TestStaticSpec(t *testing.T) {
	s := Default()
	s.MaxSpeed, s.MinSpeed = 0, 0
	s.Duration = 30 * sim.Second
	inst, err := s.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range inst.Tracks {
		if tr.At(0) != tr.At(sim.At(30)) {
			t.Fatal("static scenario moved")
		}
	}
}

// TestScenarioConnectivitySanity documents that the default 40-node strip is
// usually connected — the premise of the study's traffic patterns.
func TestScenarioConnectivitySanity(t *testing.T) {
	s := Default()
	s.Duration = 60 * sim.Second
	inst, err := s.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	connectedSamples := 0
	const samples = 12
	for i := 0; i < samples; i++ {
		g := topo.Snapshot(inst.Tracks, sim.At(float64(i)*5), 250)
		if g.Connected() {
			connectedSamples++
		}
	}
	if connectedSamples < samples/2 {
		t.Fatalf("default scenario mostly partitioned: %d/%d connected", connectedSamples, samples)
	}
}

func TestModelOverride(t *testing.T) {
	s := Default()
	s.Nodes = 8
	s.Duration = 30 * sim.Second
	s.MinSpeed, s.MaxSpeed = 1, 5
	s.Mobility = MobilitySpec{Name: "rpgm", Params: map[string]float64{"groups": 2, "spread_m": 80}}
	inst, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tracks) != 8 {
		t.Fatalf("tracks = %d", len(inst.Tracks))
	}
	// Group members (round-robin: 0,2,4,6 vs 1,3,5,7) stay together.
	d02 := inst.Tracks[0].At(sim.At(15)).Dist(inst.Tracks[2].At(sim.At(15)))
	if d02 > 4*80 {
		t.Fatalf("group members %f m apart", d02)
	}
}

// TestNamedDefaultsMatchZeroValue: spelling out the default models must
// compile to the identical instance as the zero-valued spec — the parity
// bridge between the registry surface and the study configuration.
func TestNamedDefaultsMatchZeroValue(t *testing.T) {
	base := Default()
	base.Duration = 60 * sim.Second
	named := base
	named.Mobility = MobilitySpec{Name: "waypoint"}
	named.Traffic = TrafficSpec{Name: "cbr"}
	a, err := base.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := named.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Connections, b.Connections) {
		t.Fatal("named cbr produced different connections")
	}
	for i := range a.Tracks {
		if !reflect.DeepEqual(a.Tracks[i].Segments(), b.Tracks[i].Segments()) {
			t.Fatalf("named waypoint produced a different track %d", i)
		}
	}
}

// TestNamedRadioDefaultMatchesZeroValue: spelling out the default radio
// model (and the explicit-range path) must compile to the identical
// parameters as the zero-valued spec — the radio half of the registry
// parity bridge.
func TestNamedRadioDefaultMatchesZeroValue(t *testing.T) {
	base := Default()
	base.Duration = 30 * sim.Second
	named := base
	named.Radio = RadioSpec{Name: "tworay"}
	a, err := base.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := named.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Radio, b.Radio) {
		t.Fatalf("named tworay = %+v, zero value = %+v", b.Radio, a.Radio)
	}
	ranged := base
	ranged.TxRange = 175
	named.TxRange = 175
	a, err = ranged.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err = named.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Radio, b.Radio) {
		t.Fatal("named tworay diverges from zero value at a custom range")
	}
}

// TestRadioModelThreadsRunSeed: stochastic radio models must derive their
// per-link field from the run seed — same seed, same powers; different
// seed, different field — through the scenario layer end to end.
func TestRadioModelThreadsRunSeed(t *testing.T) {
	s := Default()
	s.Duration = 30 * sim.Second
	s.Radio = RadioSpec{Name: "shadowing"}
	gen := func(seed int64) phy.LinkPropagation {
		inst, err := s.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		lp, ok := inst.Radio.Prop.(phy.LinkPropagation)
		if !ok {
			t.Fatal("shadowing lost its link propagation through Generate")
		}
		return lp
	}
	a, b, c := gen(5), gen(5), gen(6)
	tx := phy.DefaultParams().TxPower
	diff := 0
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			pa := a.LinkRxPower(tx, 200, pkt.NodeID(i), pkt.NodeID(j), 1)
			if pa != b.LinkRxPower(tx, 200, pkt.NodeID(i), pkt.NodeID(j), 1) {
				t.Fatalf("link %d-%d: same run seed, different shadowing", i, j)
			}
			if pa != c.LinkRxPower(tx, 200, pkt.NodeID(i), pkt.NodeID(j), 1) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("run seed does not shape the shadowing field")
	}
}

// TestNewModelsGenerateDeterministically covers every mobility × traffic
// model combination through the scenario layer: same seed ⇒ DeepEqual
// tracks and connections (the registry analogue of TestGenerateDeterministic),
// different seed ⇒ different mobility.
func TestNewModelsGenerateDeterministically(t *testing.T) {
	for _, mob := range mobility.Registered() {
		for _, tra := range traffic.Registered() {
			mob, tra := mob, tra
			t.Run(mob+"/"+tra, func(t *testing.T) {
				t.Parallel()
				s := Default()
				s.Nodes = 12
				s.Sources = 4
				s.Duration = 45 * sim.Second
				s.Mobility = MobilitySpec{Name: mob}
				s.Traffic = TrafficSpec{Name: tra}
				a, err := s.Generate(21)
				if err != nil {
					t.Fatal(err)
				}
				b, err := s.Generate(21)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Connections, b.Connections) {
					t.Fatal("same seed, different connections")
				}
				for i := range a.Tracks {
					if !reflect.DeepEqual(a.Tracks[i].Segments(), b.Tracks[i].Segments()) {
						t.Fatalf("same seed, different track %d", i)
					}
				}
				if mob == "static-grid" {
					return // placement ignores the seed by design (jitter only)
				}
				c, err := s.Generate(22)
				if err != nil {
					t.Fatal(err)
				}
				same := 0
				for i := range a.Tracks {
					if reflect.DeepEqual(a.Tracks[i].Segments(), c.Tracks[i].Segments()) {
						same++
					}
				}
				if same == len(a.Tracks) {
					t.Fatal("different seeds produced identical mobility")
				}
			})
		}
	}
}
