package scenario

import (
	"reflect"
	"strings"
	"testing"

	"adhocsim/internal/lifecycle"
	"adhocsim/internal/sim"
)

// TestValidateRejectsChurnPastHorizon is the lifecycle dry-run guard: a
// staggered join window extending past Duration must fail Spec.Validate —
// at campaign-submission time, not mid-flight.
func TestValidateRejectsChurnPastHorizon(t *testing.T) {
	s := Default()
	s.Duration = 20 * sim.Second
	s.Lifecycle = LifecycleSpec{
		Name:   "staggered-join",
		Params: map[string]float64{"start_s": 10, "window_s": 30},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted a join window extending past Duration")
	}
	if !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("error does not name the horizon violation: %v", err)
	}

	// Shrinking the window back inside the run makes the same spec valid.
	s.Lifecycle.Params["window_s"] = 5
	if err := s.Validate(); err != nil {
		t.Fatalf("in-horizon staggered-join rejected: %v", err)
	}
}

func TestValidateRejectsBadLifecycleParams(t *testing.T) {
	s := Default()
	s.Lifecycle = LifecycleSpec{Name: "flashcrowd", Params: map[string]float64{"base_frac": 1.5}}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted flashcrowd base_frac=1.5")
	}
	s.Lifecycle = LifecycleSpec{Name: "no-such-model"}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted an unregistered lifecycle model")
	}
}

// TestGenerateLifecycleSchedule pins the instance-level contract: churn
// models yield a normalized, bounds-checked schedule that is a pure
// function of (spec, seed), and the static lifecycle compiles to nil so
// the network layer keeps its fixed-population fast path.
func TestGenerateLifecycleSchedule(t *testing.T) {
	s := Default()
	s.Nodes = 20
	s.Duration = 60 * sim.Second
	s.Sources = 3

	inst, err := s.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Lifecycle != nil {
		t.Fatalf("static lifecycle compiled to %d events, want nil", len(inst.Lifecycle))
	}

	s.Lifecycle = LifecycleSpec{Name: "onoff-fail", Params: map[string]float64{"mean_up_s": 20, "mean_down_s": 5}}
	a, err := s.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Lifecycle) == 0 {
		t.Fatal("onoff-fail produced an empty schedule over 60s with mean_up 20s")
	}
	if err := lifecycle.Check(a.Lifecycle, s.Nodes, s.Duration); err != nil {
		t.Fatal(err)
	}
	sorted := append([]lifecycle.Event(nil), a.Lifecycle...)
	lifecycle.Normalize(sorted)
	if !reflect.DeepEqual(a.Lifecycle, sorted) {
		t.Fatal("Generate returned an unnormalized schedule")
	}

	b, err := s.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Lifecycle, b.Lifecycle) {
		t.Fatal("schedule differs across Generate calls with the same seed")
	}
	c, err := s.Generate(10)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Lifecycle, c.Lifecycle) {
		t.Fatal("different seeds produced identical onoff-fail schedules")
	}

	// Churn draws come from their own substream: tracks and connections
	// must be untouched by switching the lifecycle model.
	static := s
	static.Lifecycle = LifecycleSpec{}
	d, err := static.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Connections, d.Connections) {
		t.Fatal("lifecycle model choice perturbed the traffic substream")
	}
	if len(a.Tracks) != len(d.Tracks) || !reflect.DeepEqual(a.Tracks[0], d.Tracks[0]) {
		t.Fatal("lifecycle model choice perturbed the mobility substream")
	}
}
