package stats

import (
	"math"
	"testing"
	"testing/quick"

	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

func deliver(c *Collector, created, now sim.Time, hops, optimal int) {
	p := pkt.DataPacket(0, 1, 0, 64, created)
	p.Hops = hops
	p.OptimalHops = optimal
	c.OnDataDelivered(p, now, false)
}

func TestPDRAndDelay(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	for i := 0; i < 10; i++ {
		c.OnDataOriginated(pkt.DataPacket(0, 1, uint32(i), 64, 0), 2)
	}
	deliver(c, 0, sim.At(0.1), 2, 2)
	deliver(c, 0, sim.At(0.3), 3, 2)
	c.Finish(sim.At(100))
	r := c.Finalize()
	if r.DataSent != 10 || r.DataDelivered != 2 {
		t.Fatalf("sent/delivered = %d/%d", r.DataSent, r.DataDelivered)
	}
	if math.Abs(r.PDR-0.2) > 1e-12 {
		t.Fatalf("PDR = %v", r.PDR)
	}
	if math.Abs(r.AvgDelay-0.2) > 1e-9 {
		t.Fatalf("AvgDelay = %v", r.AvgDelay)
	}
	if math.Abs(r.AvgHops-2.5) > 1e-9 {
		t.Fatalf("AvgHops = %v", r.AvgHops)
	}
	if r.HopExcess[0] != 1 || r.HopExcess[1] != 1 {
		t.Fatalf("HopExcess = %v", r.HopExcess)
	}
	if s := r.PathOptimalityShare(); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("PathOptimalityShare = %v", s)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	// 100 packets of 92 bytes over 10 s = 73.6 kbit/s.
	for i := 0; i < 100; i++ {
		c.OnDataOriginated(pkt.DataPacket(0, 1, uint32(i), 64, 0), 1)
		deliver(c, 0, sim.At(0.01), 1, 1)
	}
	c.Finish(sim.At(10))
	r := c.Finalize()
	want := 100.0 * 92 * 8 / 1000 / 10
	if math.Abs(r.ThroughputKbps-want) > 1e-9 {
		t.Fatalf("throughput = %v, want %v", r.ThroughputKbps, want)
	}
}

func TestNormalizedLoads(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	for i := 0; i < 4; i++ {
		c.OnDataOriginated(pkt.DataPacket(0, 1, uint32(i), 64, 0), 1)
		deliver(c, 0, sim.At(0.01), 1, 1)
	}
	for i := 0; i < 8; i++ {
		c.OnRoutingTx(pkt.RoutingPacket("RREQ", 0, pkt.Broadcast, 5, 24, 0))
	}
	c.OnRoutingTx(pkt.RoutingPacket("RREP", 1, 0, 5, 24, 0))
	c.OnMacControl(3, 100)
	c.Finish(sim.At(10))
	r := c.Finalize()
	if r.RoutingTxPackets != 9 {
		t.Fatalf("routing tx = %d", r.RoutingTxPackets)
	}
	if r.RoutingByType["RREQ"] != 8 || r.RoutingByType["RREP"] != 1 {
		t.Fatalf("by type = %v", r.RoutingByType)
	}
	if math.Abs(r.NormalizedRoutingLoad-9.0/4) > 1e-12 {
		t.Fatalf("NRL = %v", r.NormalizedRoutingLoad)
	}
	if math.Abs(r.NormalizedMacLoad-12.0/4) > 1e-12 {
		t.Fatalf("NML = %v", r.NormalizedMacLoad)
	}
	if r.RoutingTxBytes != 9*44 {
		t.Fatalf("routing bytes = %d", r.RoutingTxBytes)
	}
}

func TestDuplicatesNotDoubleCounted(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	c.OnDataOriginated(pkt.DataPacket(0, 1, 0, 64, 0), 1)
	p := pkt.DataPacket(0, 1, 0, 64, 0)
	c.OnDataDelivered(p, sim.At(1), false)
	c.OnDataDelivered(p, sim.At(2), true)
	c.Finish(sim.At(10))
	r := c.Finalize()
	if r.DataDelivered != 1 || r.DupDelivered != 1 {
		t.Fatalf("delivered/dup = %d/%d", r.DataDelivered, r.DupDelivered)
	}
	if r.PDR != 1 {
		t.Fatalf("PDR = %v", r.PDR)
	}
}

func TestDropCensus(t *testing.T) {
	c := NewCollector()
	c.OnDrop(pkt.DataPacket(0, 1, 0, 64, 0), DropNoRoute)
	c.OnDrop(pkt.DataPacket(0, 1, 1, 64, 0), DropNoRoute)
	c.OnDrop(pkt.DataPacket(0, 1, 2, 64, 0), DropTTL)
	r := c.Finalize()
	if r.Drops[DropNoRoute] != 2 || r.Drops[DropTTL] != 1 {
		t.Fatalf("drops = %v", r.Drops)
	}
	if r.TotalDrops() != 3 {
		t.Fatalf("TotalDrops = %d", r.TotalDrops())
	}
}

func TestEmptyRunSafe(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	c.Finish(0)
	r := c.Finalize()
	if r.PDR != 0 || r.AvgDelay != 0 || r.ThroughputKbps != 0 || r.NormalizedRoutingLoad != 0 {
		t.Fatal("zero-division leak in empty run")
	}
	if r.PathOptimalityShare() != 0 {
		t.Fatal("PathOptimalityShare on empty run")
	}
}

func TestHopExcessClamped(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	deliver(c, 0, sim.At(1), 2, 5) // topology improved mid-flight
	r := c.Finalize()
	if r.HopExcess[0] != 1 {
		t.Fatalf("negative excess not clamped: %v", r.HopExcess)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	for i := 1; i <= 100; i++ {
		deliver(c, 0, sim.At(float64(i)*0.01), 1, 1)
	}
	c.Finish(sim.At(10))
	r := c.Finalize()
	if r.P50Delay < 0.4 || r.P50Delay > 0.6 {
		t.Fatalf("P50 = %v", r.P50Delay)
	}
	if r.P95Delay < 0.90 || r.P95Delay > 1.0 {
		t.Fatalf("P95 = %v", r.P95Delay)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatal("empty summarize")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e9))
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeResults(t *testing.T) {
	a := Results{
		PDR: 0.8, AvgDelay: 0.1, DataSent: 10, DataDelivered: 8,
		RoutingTxPackets: 100, NormalizedRoutingLoad: 12.5,
		RoutingByType: map[string]uint64{"RREQ": 60, "RREP": 40},
		HopExcess:     map[int]uint64{0: 5, 1: 3},
		Drops:         map[DropReason]uint64{DropNoRoute: 2},
		Duration:      sim.Seconds(100),
	}
	b := Results{
		PDR: 0.6, AvgDelay: 0.3, DataSent: 10, DataDelivered: 6,
		RoutingTxPackets: 200, NormalizedRoutingLoad: 33.3,
		RoutingByType: map[string]uint64{"RREQ": 150, "RERR": 50},
		HopExcess:     map[int]uint64{0: 6},
		Drops:         map[DropReason]uint64{DropTTL: 4},
		Duration:      sim.Seconds(100),
	}
	m := MergeResults([]Results{a, b})
	if math.Abs(m.PDR-0.7) > 1e-12 {
		t.Fatalf("merged PDR = %v", m.PDR)
	}
	if math.Abs(m.AvgDelay-0.2) > 1e-12 {
		t.Fatalf("merged delay = %v", m.AvgDelay)
	}
	if m.DataSent != 20 || m.RoutingTxPackets != 300 {
		t.Fatal("merged counters")
	}
	if m.RoutingByType["RREQ"] != 210 || m.RoutingByType["RERR"] != 50 {
		t.Fatalf("merged by-type = %v", m.RoutingByType)
	}
	if m.HopExcess[0] != 11 || m.Drops[DropNoRoute] != 2 || m.Drops[DropTTL] != 4 {
		t.Fatal("merged histograms")
	}
	if m.Duration != sim.Seconds(100) {
		t.Fatalf("merged duration = %v", m.Duration)
	}
	// Single-element merge is the identity.
	if one := MergeResults([]Results{a}); one.PDR != a.PDR {
		t.Fatal("single merge")
	}
	if z := MergeResults(nil); z.DataSent != 0 {
		t.Fatal("empty merge")
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{10, 12, 14, 16, 18})
	// stddev ≈ 3.162, t(4) = 2.776 → CI ≈ 3.93.
	if s.CI95 < 3.8 || s.CI95 > 4.1 {
		t.Fatalf("CI95 = %v", s.CI95)
	}
	if Summarize([]float64{5}).CI95 != 0 {
		t.Fatal("single-sample CI must be 0")
	}
	// Large samples approach the normal quantile.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	s = Summarize(big)
	want := 1.96 * s.StdDev / 10
	if d := s.CI95 - want; d < -1e-9 || d > 1e-9 {
		t.Fatalf("large-sample CI = %v, want %v", s.CI95, want)
	}
}
