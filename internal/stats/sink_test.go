package stats

import (
	"math"
	"testing"

	"adhocsim/internal/metrics"
)

func TestWelfordSinkPerKindCells(t *testing.T) {
	s := NewWelfordSink()
	s.Record(metrics.Sample{Kind: metrics.Delay, Value: 0.010})
	s.Record(metrics.Sample{Kind: metrics.Delay, Value: 0.030})
	s.Record(metrics.Sample{Kind: metrics.Hops, Value: 3})
	if n := s.Cell(metrics.Delay).N(); n != 2 {
		t.Fatalf("delay cell N = %d", n)
	}
	if m := s.Cell(metrics.Delay).Mean(); math.Abs(m-0.020) > 1e-15 {
		t.Fatalf("delay mean = %v", m)
	}
	if n := s.Cell(metrics.RoutingTx).N(); n != 0 {
		t.Fatalf("untouched cell N = %d", n)
	}
	o := NewWelfordSink()
	o.Record(metrics.Sample{Kind: metrics.Delay, Value: 0.050})
	s.Merge(o)
	if n := s.Cell(metrics.Delay).N(); n != 3 {
		t.Fatalf("merged delay N = %d", n)
	}
	if m := s.Cell(metrics.Delay).Mean(); math.Abs(m-0.030) > 1e-15 {
		t.Fatalf("merged delay mean = %v", m)
	}
}
