package stats

import (
	"math"

	"adhocsim/internal/sim"
)

// Summary aggregates a sample of float64 observations (e.g. one metric
// across replication seeds).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95% confidence interval for the mean
	// (Student-t quantiles through n=31, normal approximation beyond).
	// Zero for samples of size < 2.
	CI95 float64
}

// Summarize computes a Summary over xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	s.CI95 = ci95(s.N, s.StdDev)
	return s
}

// ci95 returns the half-width of the 95% confidence interval for the mean of
// an n-sample with the given sample standard deviation, using Student's t
// quantiles. Zero for samples of size < 2.
func ci95(n int, stddev float64) float64 {
	if n < 2 {
		return 0
	}
	return t95(n-1) * stddev / math.Sqrt(float64(n))
}

// t95 returns the two-sided 95% Student-t quantile for df degrees of
// freedom (table for small df, normal approximation beyond).
func t95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// MergeResults averages the scalar metrics of several runs (replication
// seeds) into one Results, summing the histograms and counters. Drop maps
// and per-type overhead are summed; rates are averaged. Stream digests are
// dropped: cross-run sketch aggregation lives in the campaign layer, where
// merge order is pinned to replication order.
func MergeResults(rs []Results) Results {
	if len(rs) == 0 {
		return Results{}
	}
	if len(rs) == 1 {
		r := rs[0]
		r.Streams = nil
		return r
	}
	out := Results{
		RoutingByType: make(map[string]uint64),
		HopExcess:     make(map[int]uint64),
		Drops:         make(map[DropReason]uint64),
	}
	n := float64(len(rs))
	for _, r := range rs {
		out.Duration += r.Duration
		out.DataSent += r.DataSent
		out.DataDelivered += r.DataDelivered
		out.DupDelivered += r.DupDelivered
		out.PDR += r.PDR / n
		out.AvgDelay += r.AvgDelay / n
		out.P50Delay += r.P50Delay / n
		out.P95Delay += r.P95Delay / n
		out.ThroughputKbps += r.ThroughputKbps / n
		out.RoutingTxPackets += r.RoutingTxPackets
		out.RoutingTxBytes += r.RoutingTxBytes
		out.DataTxPackets += r.DataTxPackets
		out.MacCtlFrames += r.MacCtlFrames
		out.MacCtlBytes += r.MacCtlBytes
		out.NormalizedRoutingLoad += r.NormalizedRoutingLoad / n
		out.NormalizedMacLoad += r.NormalizedMacLoad / n
		out.AvgHops += r.AvgHops / n
		out.OptUnknown += r.OptUnknown
		out.Joins += r.Joins
		out.Leaves += r.Leaves
		out.TimeToConverge += r.TimeToConverge / n
		out.AddrCollisionRate += r.AddrCollisionRate / n
		for k, v := range r.RoutingByType {
			out.RoutingByType[k] += v
		}
		for k, v := range r.HopExcess {
			out.HopExcess[k] += v
		}
		for k, v := range r.Drops {
			out.Drops[k] += v
		}
	}
	out.Duration /= sim.Duration(len(rs))
	return out
}
