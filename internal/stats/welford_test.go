package stats

import (
	"math"
	"testing"
)

func TestWelfordKnownSample(t *testing.T) {
	// Sample {10,12,14,16,18}: mean 14, sample stddev √10 ≈ 3.1623,
	// t(4) = 2.776 → CI half-width 2.776·√10/√5 ≈ 3.926.
	var w Welford
	for _, x := range []float64{10, 12, 14, 16, 18} {
		w.Add(x)
	}
	if w.N() != 5 || w.Min() != 10 || w.Max() != 18 {
		t.Fatalf("welford = %+v", w)
	}
	if math.Abs(w.Mean()-14) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-10) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	wantCI := 2.776 * math.Sqrt(10) / math.Sqrt(5)
	if math.Abs(w.CI95()-wantCI) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", w.CI95(), wantCI)
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	xs := []float64{3.5, -1.25, 0, 7.75, 2.25, 100.5, -42, 13}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s, batch := w.Summary(), Summarize(xs)
	if s.N != batch.N || s.Min != batch.Min || s.Max != batch.Max {
		t.Fatalf("summary = %+v vs %+v", s, batch)
	}
	if math.Abs(s.Mean-batch.Mean) > 1e-12 ||
		math.Abs(s.StdDev-batch.StdDev) > 1e-9 ||
		math.Abs(s.CI95-batch.CI95) > 1e-9 {
		t.Fatalf("streaming %+v != batch %+v", s, batch)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.StdDev() != 0 || w.CI95() != 0 {
		t.Fatalf("zero value = %+v", w.Summary())
	}
	w.Add(42)
	if w.Mean() != 42 || w.Min() != 42 || w.Max() != 42 || w.CI95() != 0 {
		t.Fatalf("single sample = %+v", w.Summary())
	}
}

func TestWelfordDeterministicReplay(t *testing.T) {
	// Identical sequences must yield bit-identical state: campaign resume
	// replays journaled values through a fresh accumulator and requires
	// reflect.DeepEqual aggregates.
	xs := []float64{0.1, 0.2, 0.30000000000000004, 1e-17, -5, 3.25}
	var a, b Welford
	for _, x := range xs {
		a.Add(x)
	}
	for _, x := range xs {
		b.Add(x)
	}
	if a != b {
		t.Fatalf("replayed state differs: %+v vs %+v", a, b)
	}
}

func TestWelfordMergeKnownSample(t *testing.T) {
	// Split {10,12,14,16,18,20} as {10,12}+{14,16,18,20}: merged mean 15,
	// sample variance 14, min 10, max 20 — the parallel combine must match
	// the one-accumulator result to float64 noise.
	var a, b Welford
	for _, x := range []float64{10, 12} {
		a.Add(x)
	}
	for _, x := range []float64{14, 16, 18, 20} {
		b.Add(x)
	}
	a.Merge(b)
	if a.N() != 6 || a.Min() != 10 || a.Max() != 20 {
		t.Fatalf("merged = %+v", a.Summary())
	}
	if math.Abs(a.Mean()-15) > 1e-12 {
		t.Fatalf("merged mean = %v, want 15", a.Mean())
	}
	if math.Abs(a.Variance()-14) > 1e-12 {
		t.Fatalf("merged variance = %v, want 14", a.Variance())
	}
	// Uneven magnitudes and negative values against a sequential reference.
	xs := []float64{3.5, -1.25, 0, 7.75, 2.25, 100.5, -42, 13}
	var left, right, seq Welford
	for _, x := range xs[:3] {
		left.Add(x)
	}
	for _, x := range xs[3:] {
		right.Add(x)
	}
	for _, x := range xs {
		seq.Add(x)
	}
	left.Merge(right)
	if left.N() != seq.N() || left.Min() != seq.Min() || left.Max() != seq.Max() {
		t.Fatalf("merged %+v vs sequential %+v", left.Summary(), seq.Summary())
	}
	if math.Abs(left.Mean()-seq.Mean()) > 1e-12 || math.Abs(left.Variance()-seq.Variance()) > 1e-9 {
		t.Fatalf("merged %+v vs sequential %+v", left.Summary(), seq.Summary())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(3)
	before := w
	w.Merge(Welford{})
	if w != before {
		t.Fatal("merging an empty accumulator must be a no-op")
	}
	var e Welford
	e.Merge(before)
	if e != before {
		t.Fatal("merging into an empty accumulator must adopt the source")
	}
}

func TestT95TableBoundary(t *testing.T) {
	// df=1 (n=2) is the widest quantile; the table runs through df=30 and
	// hands over to the normal approximation at df=31.
	if ci := ci95(2, 1); math.Abs(ci-12.706/math.Sqrt(2)) > 1e-9 {
		t.Fatalf("n=2 CI = %v", ci)
	}
	if ci := ci95(31, 1); math.Abs(ci-2.042/math.Sqrt(31)) > 1e-9 {
		t.Fatalf("n=31 (df=30) CI = %v", ci)
	}
	if ci := ci95(32, 1); math.Abs(ci-1.96/math.Sqrt(32)) > 1e-9 {
		t.Fatalf("n=32 (df=31) CI = %v", ci)
	}
}
