package stats

import (
	"math"
	"testing"
)

func TestWelfordKnownSample(t *testing.T) {
	// Sample {10,12,14,16,18}: mean 14, sample stddev √10 ≈ 3.1623,
	// t(4) = 2.776 → CI half-width 2.776·√10/√5 ≈ 3.926.
	var w Welford
	for _, x := range []float64{10, 12, 14, 16, 18} {
		w.Add(x)
	}
	if w.N() != 5 || w.Min() != 10 || w.Max() != 18 {
		t.Fatalf("welford = %+v", w)
	}
	if math.Abs(w.Mean()-14) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-10) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	wantCI := 2.776 * math.Sqrt(10) / math.Sqrt(5)
	if math.Abs(w.CI95()-wantCI) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", w.CI95(), wantCI)
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	xs := []float64{3.5, -1.25, 0, 7.75, 2.25, 100.5, -42, 13}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s, batch := w.Summary(), Summarize(xs)
	if s.N != batch.N || s.Min != batch.Min || s.Max != batch.Max {
		t.Fatalf("summary = %+v vs %+v", s, batch)
	}
	if math.Abs(s.Mean-batch.Mean) > 1e-12 ||
		math.Abs(s.StdDev-batch.StdDev) > 1e-9 ||
		math.Abs(s.CI95-batch.CI95) > 1e-9 {
		t.Fatalf("streaming %+v != batch %+v", s, batch)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.StdDev() != 0 || w.CI95() != 0 {
		t.Fatalf("zero value = %+v", w.Summary())
	}
	w.Add(42)
	if w.Mean() != 42 || w.Min() != 42 || w.Max() != 42 || w.CI95() != 0 {
		t.Fatalf("single sample = %+v", w.Summary())
	}
}

func TestWelfordDeterministicReplay(t *testing.T) {
	// Identical sequences must yield bit-identical state: campaign resume
	// replays journaled values through a fresh accumulator and requires
	// reflect.DeepEqual aggregates.
	xs := []float64{0.1, 0.2, 0.30000000000000004, 1e-17, -5, 3.25}
	var a, b Welford
	for _, x := range xs {
		a.Add(x)
	}
	for _, x := range xs {
		b.Add(x)
	}
	if a != b {
		t.Fatalf("replayed state differs: %+v vs %+v", a, b)
	}
}

func TestT95TableBoundary(t *testing.T) {
	// df=1 (n=2) is the widest quantile; the table runs through df=30 and
	// hands over to the normal approximation at df=31.
	if ci := ci95(2, 1); math.Abs(ci-12.706/math.Sqrt(2)) > 1e-9 {
		t.Fatalf("n=2 CI = %v", ci)
	}
	if ci := ci95(31, 1); math.Abs(ci-2.042/math.Sqrt(31)) > 1e-9 {
		t.Fatalf("n=31 (df=30) CI = %v", ci)
	}
	if ci := ci95(32, 1); math.Abs(ci-1.96/math.Sqrt(32)) > 1e-9 {
		t.Fatalf("n=32 (df=31) CI = %v", ci)
	}
}
