// Package stats collects the evaluation metrics of the study: packet
// delivery ratio, end-to-end delay, throughput, routing overhead in packets
// and bytes (counted per hop, as in Broch et al. 1998), normalized routing
// and MAC loads, path optimality, and a census of drop reasons.
package stats

import (
	"sort"

	"adhocsim/internal/metrics"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// DropReason labels why a packet died.
type DropReason string

// Drop reasons used across the stack.
const (
	DropQueueFull   DropReason = "ifq-full"
	DropRetries     DropReason = "mac-retries"
	DropNoRoute     DropReason = "no-route"
	DropTTL         DropReason = "ttl-expired"
	DropSendBuffer  DropReason = "send-buffer-timeout"
	DropSendBufFull DropReason = "send-buffer-full"
	DropLoop        DropReason = "routing-loop"
	DropSalvageFail DropReason = "salvage-failed"
)

// Collector accumulates raw counters during one run. It is single-threaded
// (one per Engine).
type Collector struct {
	start, end sim.Time

	dataSent      uint64 // originated by sources
	dataDelivered uint64
	dupDelivered  uint64
	bytesReceived uint64

	delaySum   sim.Duration
	delays     []float64 // seconds, for percentiles
	hopsSum    uint64
	hopExcess  map[int]uint64 // actual-optimal histogram (delivered pkts with known optimum)
	optUnknown uint64

	routingTx      uint64 // routing packets transmitted (per hop)
	routingTxBytes uint64
	routingByType  map[string]uint64
	dataFwd        uint64 // data packet transmissions incl. source (per hop)

	macCtlFrames uint64 // RTS+CTS+ACK
	macCtlBytes  uint64

	drops map[DropReason]uint64

	joins, leaves     uint64  // membership transitions applied (lifecycle)
	timeToConverge    float64 // autoconf census: slowest up node, seconds
	addrCollisionRate float64 // autoconf census: duplicate-address share
	autoconfDone      bool

	// Optional metric-stream fan-out. When no sinks are attached the
	// counter path above runs byte-identically to the seed pipeline.
	sinks []metrics.Sink
	clock func() sim.Time
}

// NewCollector creates an empty collector; Begin/Finish bracket the
// measurement window.
func NewCollector() *Collector {
	return &Collector{
		hopExcess:     make(map[int]uint64),
		routingByType: make(map[string]uint64),
		drops:         make(map[DropReason]uint64),
	}
}

// AttachSinks connects the collector to the metric sample stream: every
// subsequent data/routing event is also emitted as a typed metrics.Sample,
// stamped with the virtual time from clock. Sinks share the Engine's
// single-goroutine discipline.
func (c *Collector) AttachSinks(clock func() sim.Time, sinks ...metrics.Sink) {
	if len(sinks) == 0 {
		return
	}
	c.clock = clock
	c.sinks = append(c.sinks, sinks...)
}

// emit fans one sample out to the attached sinks at the current sim time.
func (c *Collector) emit(k metrics.Kind, v float64) {
	s := metrics.Sample{At: c.clock(), Kind: k, Value: v}
	for _, sk := range c.sinks {
		sk.Record(s)
	}
}

// Begin marks the start of the measurement window.
func (c *Collector) Begin(t sim.Time) { c.start = t }

// Finish marks the end of the measurement window.
func (c *Collector) Finish(t sim.Time) { c.end = t }

// OnDataOriginated records an application packet handed to the network
// layer. optimalHops is the oracle hop distance at origination (-1 when the
// destination is partitioned/unknown).
func (c *Collector) OnDataOriginated(p *pkt.Packet, optimalHops int) {
	c.dataSent++
	_ = p
	_ = optimalHops // recorded on the packet itself; used at delivery
	if len(c.sinks) > 0 {
		c.emit(metrics.Originated, 1)
	}
}

// OnDataDelivered records a packet reaching its destination sink.
// isDup marks duplicates (already-delivered sequence numbers).
func (c *Collector) OnDataDelivered(p *pkt.Packet, now sim.Time, isDup bool) {
	if isDup {
		c.dupDelivered++
		return
	}
	c.dataDelivered++
	c.bytesReceived += uint64(p.Size)
	d := now.Sub(p.CreatedAt)
	c.delaySum += d
	c.delays = append(c.delays, d.Seconds())
	c.hopsSum += uint64(p.Hops)
	if len(c.sinks) > 0 {
		c.emit(metrics.Delivered, float64(p.Size))
		c.emit(metrics.Delay, d.Seconds())
		c.emit(metrics.Hops, float64(p.Hops))
	}
	if p.OptimalHops > 0 {
		excess := p.Hops - p.OptimalHops
		if excess < 0 {
			excess = 0 // topology changed mid-flight; clamp
		}
		c.hopExcess[excess]++
	} else {
		c.optUnknown++
	}
}

// OnRoutingTx records one transmission (one hop) of a routing packet.
// Per Broch et al., each forwarding hop counts as a separate transmission.
func (c *Collector) OnRoutingTx(p *pkt.Packet) {
	c.routingTx++
	c.routingTxBytes += uint64(p.Size)
	c.routingByType[p.Msg]++
	if len(c.sinks) > 0 {
		c.emit(metrics.RoutingTx, float64(p.Size))
	}
}

// OnDataTx records one transmission (one hop) of a data packet.
func (c *Collector) OnDataTx(p *pkt.Packet) {
	c.dataFwd++
	if len(c.sinks) > 0 {
		c.emit(metrics.DataTx, float64(p.Size))
	}
}

// OnMacControl records MAC control frames (RTS/CTS/ACK) in aggregate.
func (c *Collector) OnMacControl(frames, bytes uint64) {
	c.macCtlFrames += frames
	c.macCtlBytes += bytes
}

// OnJoin records a node joining (or recovering into) the membership.
func (c *Collector) OnJoin() {
	c.joins++
	if len(c.sinks) > 0 {
		c.emit(metrics.Join, 1)
	}
}

// OnLeave records a node leaving (or failing out of) the membership.
func (c *Collector) OnLeave() {
	c.leaves++
	if len(c.sinks) > 0 {
		c.emit(metrics.Leave, 1)
	}
}

// SetAutoconf records the end-of-run address-autoconfiguration census
// (network.World computes it when the protocol implements Autoconfigured):
// the convergence instant of the slowest up node and the duplicate-address
// share among up nodes.
func (c *Collector) SetAutoconf(timeToConverge, collisionRate float64) {
	c.timeToConverge = timeToConverge
	c.addrCollisionRate = collisionRate
	c.autoconfDone = true
}

// OnDrop records a packet death. Only data packets are charged to PDR;
// routing packet drops are tracked for diagnostics.
func (c *Collector) OnDrop(p *pkt.Packet, reason DropReason) {
	c.drops[reason]++
	if len(c.sinks) > 0 {
		c.emit(metrics.Dropped, 1)
	}
}

// Results is the final metric set of one run.
type Results struct {
	Duration sim.Duration

	DataSent      uint64
	DataDelivered uint64
	DupDelivered  uint64

	// PDR is delivered/sent in [0,1].
	PDR float64
	// AvgDelay is the mean end-to-end delay of delivered packets, seconds.
	AvgDelay float64
	// P50Delay/P95Delay are delay percentiles, seconds.
	P50Delay, P95Delay float64
	// ThroughputKbps is application payload delivered per unit time.
	ThroughputKbps float64

	// RoutingTxPackets counts routing packet transmissions per hop.
	RoutingTxPackets uint64
	RoutingTxBytes   uint64
	RoutingByType    map[string]uint64
	// NormalizedRoutingLoad is routing transmissions per delivered packet.
	NormalizedRoutingLoad float64
	// DataTxPackets counts data packet transmissions per hop.
	DataTxPackets uint64

	// MacCtlFrames / NormalizedMacLoad cover RTS/CTS/ACK control frames.
	MacCtlFrames      uint64
	MacCtlBytes       uint64
	NormalizedMacLoad float64

	// AvgHops is the mean hop count of delivered packets; HopExcess is the
	// histogram of (actual − optimal) hops for delivered packets whose
	// optimal distance was known.
	AvgHops    float64
	HopExcess  map[int]uint64
	OptUnknown uint64

	Drops map[DropReason]uint64

	// Joins/Leaves count the membership transitions the lifecycle layer
	// applied during the run; zero under the static lifecycle.
	Joins  uint64
	Leaves uint64
	// TimeToConverge is the autoconfiguration convergence instant in
	// seconds (the slowest up node; unconverged nodes are charged the full
	// run). Zero when the protocol does not autoconfigure.
	TimeToConverge float64
	// AddrCollisionRate is the fraction of up nodes whose claimed address
	// was also claimed by another up node at the end of the run.
	AddrCollisionRate float64

	// Streams is the serialized metric-stream digest (quantile sketches and
	// bucketed time series) when the run was executed with stream sinks
	// attached — the campaign pipeline sets it so journal entries and
	// distributed commits carry sketch state. Nil on plain runs.
	Streams *metrics.RunStreams `json:"Streams,omitempty"`
}

// Finalize computes Results from the raw counters.
func (c *Collector) Finalize() Results {
	r := Results{
		Duration:         c.end.Sub(c.start),
		DataSent:         c.dataSent,
		DataDelivered:    c.dataDelivered,
		DupDelivered:     c.dupDelivered,
		RoutingTxPackets: c.routingTx,
		RoutingTxBytes:   c.routingTxBytes,
		RoutingByType:    c.routingByType,
		DataTxPackets:    c.dataFwd,
		MacCtlFrames:     c.macCtlFrames,
		MacCtlBytes:      c.macCtlBytes,
		HopExcess:        c.hopExcess,
		OptUnknown:       c.optUnknown,
		Drops:            c.drops,
		Joins:            c.joins,
		Leaves:           c.leaves,
	}
	if c.autoconfDone {
		r.TimeToConverge = c.timeToConverge
		r.AddrCollisionRate = c.addrCollisionRate
	}
	if c.dataSent > 0 {
		r.PDR = float64(c.dataDelivered) / float64(c.dataSent)
	}
	if c.dataDelivered > 0 {
		r.AvgDelay = c.delaySum.Seconds() / float64(c.dataDelivered)
		r.AvgHops = float64(c.hopsSum) / float64(c.dataDelivered)
		r.NormalizedRoutingLoad = float64(c.routingTx) / float64(c.dataDelivered)
		r.NormalizedMacLoad = float64(c.macCtlFrames+c.routingTx) / float64(c.dataDelivered)
		sorted := append([]float64(nil), c.delays...)
		sort.Float64s(sorted)
		r.P50Delay = percentile(sorted, 0.50)
		r.P95Delay = percentile(sorted, 0.95)
	}
	if dur := r.Duration.Seconds(); dur > 0 {
		r.ThroughputKbps = float64(c.bytesReceived) * 8 / 1000 / dur
	}
	return r
}

// percentile returns the p-quantile (0..1) of sorted data by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// PathOptimalityShare returns the fraction of delivered packets that took
// exactly the optimal path length.
func (r Results) PathOptimalityShare() float64 {
	var total, opt uint64
	for excess, n := range r.HopExcess {
		total += n
		if excess == 0 {
			opt += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(opt) / float64(total)
}

// TotalDrops sums all recorded drops.
func (r Results) TotalDrops() uint64 {
	var t uint64
	for _, n := range r.Drops {
		t += n
	}
	return t
}
