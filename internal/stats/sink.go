package stats

import "adhocsim/internal/metrics"

// WelfordSink consumes the metric sample stream into one Welford cell per
// kind, making the existing mean/CI machinery a plain consumer of the
// stream. Memory is O(NumKinds), independent of run size.
type WelfordSink struct {
	cells [metrics.NumKinds]Welford
}

// NewWelfordSink creates an empty per-kind Welford sink.
func NewWelfordSink() *WelfordSink { return &WelfordSink{} }

// Record implements metrics.Sink.
func (s *WelfordSink) Record(sm metrics.Sample) { s.cells[sm.Kind].Add(sm.Value) }

// Cell returns the accumulator for a kind.
func (s *WelfordSink) Cell(k metrics.Kind) *Welford { return &s.cells[k] }

// Merge folds another sink's cells into s via Welford.Merge.
func (s *WelfordSink) Merge(o *WelfordSink) {
	for k := range s.cells {
		s.cells[k].Merge(o.cells[k])
	}
}
