package stats

import "math"

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm) with min/max tracking, for aggregating a metric across
// replication runs without keeping the sample. The zero value is ready to
// use.
//
// Determinism: feeding the same observations in the same order reproduces
// bit-identical state (the update is a fixed sequence of float64 operations),
// which the campaign engine relies on for checkpoint/resume equivalence.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w using the pairwise
// parallel-variance combine (Chan et al.): the result matches what a single
// accumulator over the concatenated samples would report, up to float64
// rounding. Deterministic in call order; it does NOT bit-match a sequential
// Add of the same observations, so the campaign's checkpoint-identical
// rep folding keeps using Add.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	wf, of := float64(w.n), float64(o.n)
	w.m2 += o.m2 + delta*delta*wf*of/float64(n)
	w.mean += delta * of / float64(n)
	w.n = n
}

// N returns the number of observations fed so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n−1 denominator); 0 for n < 2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation; 0 for n < 2.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// CI95 returns the half-width of the 95% confidence interval for the mean
// (Student-t); 0 for n < 2.
func (w *Welford) CI95() float64 { return ci95(w.n, w.StdDev()) }

// Summary materializes the accumulator into a Summary, including the 95%
// confidence half-width.
func (w *Welford) Summary() Summary {
	return Summary{
		N:      w.n,
		Mean:   w.mean,
		StdDev: w.StdDev(),
		Min:    w.min,
		Max:    w.max,
		CI95:   w.CI95(),
	}
}
