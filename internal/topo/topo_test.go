package topo

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/sim"
)

func chainGraph(n int, spacing, rng float64) *Graph {
	return Snapshot(mobility.Chain(n, spacing), 0, rng)
}

func TestChainConnectivity(t *testing.T) {
	g := chainGraph(5, 200, 250)
	for i := int32(0); i < 5; i++ {
		wantDeg := 2
		if i == 0 || i == 4 {
			wantDeg = 1
		}
		if g.Degree(i) != wantDeg {
			t.Fatalf("node %d degree = %d, want %d", i, g.Degree(i), wantDeg)
		}
	}
	if !g.Connected() {
		t.Fatal("chain should be connected")
	}
	if d := g.HopDist(0, 4); d != 4 {
		t.Fatalf("HopDist(0,4) = %d, want 4", d)
	}
	if d := g.HopDist(2, 2); d != 0 {
		t.Fatalf("HopDist(self) = %d", d)
	}
}

func TestPartition(t *testing.T) {
	// Two clusters far apart.
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.Static(geo.Pt(100, 0)),
		mobility.Static(geo.Pt(5000, 0)),
		mobility.Static(geo.Pt(5100, 0)),
	}
	g := Snapshot(tracks, 0, 250)
	if g.Connected() {
		t.Fatal("partitioned graph reported connected")
	}
	if c := g.Components(); c != 2 {
		t.Fatalf("components = %d, want 2", c)
	}
	if d := g.HopDist(0, 2); d != -1 {
		t.Fatalf("HopDist across partition = %d, want -1", d)
	}
}

func TestRangeBoundaryInclusive(t *testing.T) {
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.Static(geo.Pt(250, 0)),
		mobility.Static(geo.Pt(500.5, 0)),
	}
	g := Snapshot(tracks, 0, 250)
	if g.Degree(0) != 1 {
		t.Fatal("edge exactly at range missing")
	}
	if g.HopDist(1, 2) != -1 {
		t.Fatal("edge slightly beyond range present")
	}
}

func TestSnapshotTracksMovement(t *testing.T) {
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.MustTrack([]mobility.Segment{
			{Start: 0, From: geo.Pt(200, 0), To: geo.Pt(1000, 0), Speed: 100},
		}),
	}
	if !Snapshot(tracks, 0, 250).Connected() {
		t.Fatal("should be connected at t=0")
	}
	if Snapshot(tracks, sim.At(5), 250).Connected() {
		t.Fatal("should be partitioned at t=5 (node at 700 m)")
	}
}

func TestBFSLevels(t *testing.T) {
	g := chainGraph(6, 100, 150)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if d[i] != want {
			t.Fatalf("BFS[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestAvgDegree(t *testing.T) {
	g := chainGraph(3, 100, 150)
	// Degrees 1,2,1 → mean 4/3.
	if got := g.AvgDegree(); got < 1.32 || got > 1.34 {
		t.Fatalf("AvgDegree = %v", got)
	}
}

func TestOracleCachingAndRefresh(t *testing.T) {
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.MustTrack([]mobility.Segment{
			{Start: 0, From: geo.Pt(200, 0), To: geo.Pt(2000, 0), Speed: 100},
		}),
	}
	o := NewOracle(tracks, 250)
	if d := o.HopDist(0, 0, 1); d != 1 {
		t.Fatalf("t=0 dist = %d", d)
	}
	// Within the cache resolution the snapshot must be reused.
	if d := o.HopDist(sim.At(0.5), 0, 1); d != 1 {
		t.Fatalf("cached dist = %d", d)
	}
	// Far later the link is gone.
	if d := o.HopDist(sim.At(10), 0, 1); d != -1 {
		t.Fatalf("t=10 dist = %d, want -1", d)
	}
	g := o.GraphAt(sim.At(10))
	if g.Connected() {
		t.Fatal("stale graph returned")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Snapshot(nil, 0, 250)
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
	if g.Components() != 0 || g.N() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph invariants")
	}
}
