// Package topo provides a global-knowledge connectivity oracle over node
// positions: snapshot graphs, BFS hop counts (the "optimal path length" in
// the path-optimality metric) and partition checks for scenario validation.
// Routing protocols never see this information; only the measurement layer
// and scenario generator use it.
package topo

import (
	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/sim"
)

// Graph is a snapshot connectivity graph: adj[i] lists the neighbours of i.
type Graph struct {
	adj [][]int32
}

// Snapshot builds the connectivity graph at time t: an edge exists between
// two nodes iff their distance is at most radioRange. Neighbour candidates
// come from the same spatial grid the radio channel uses, so building a
// snapshot costs O(N·k) rather than the N²/2 pair scan; each adjacency list
// comes out sorted ascending, exactly as the pair scan produced it.
func Snapshot(tracks []*mobility.Track, t sim.Time, radioRange float64) *Graph {
	return snapshotInto(nil, tracks, t, radioRange)
}

// snapshotInto is Snapshot with a reusable spatial grid (nil builds a fresh
// one); the Oracle passes its persistent grid so periodic refreshes reuse
// the cell storage instead of reallocating the whole index.
func snapshotInto(grid *geo.FlatGrid, tracks []*mobility.Track, t sim.Time, radioRange float64) *Graph {
	n := len(tracks)
	g := &Graph{adj: make([][]int32, n)}
	if n == 0 {
		return g
	}
	if grid == nil {
		grid = geo.NewFlatGrid(radioRange + 1)
	}
	pts := make([]geo.Point, n)
	for i, tr := range tracks {
		pts[i] = tr.At(t)
	}
	grid.Rebuild(pts)
	var scratch []int32
	for i := 0; i < n; i++ {
		scratch = grid.WithinSorted(pts[i], radioRange, int32(i), scratch[:0])
		g.adj[i] = append([]int32(nil), scratch...)
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return len(g.adj) }

// Neighbors returns the adjacency list of node i (not a copy).
func (g *Graph) Neighbors(i int32) []int32 { return g.adj[i] }

// Degree returns the number of neighbours of node i.
func (g *Graph) Degree(i int32) int { return len(g.adj[i]) }

// HopDist returns the BFS hop count from src to dst, or -1 if unreachable.
func (g *Graph) HopDist(src, dst int32) int {
	if src == dst {
		return 0
	}
	dist := g.BFS(src)
	return dist[dst]
}

// BFS returns hop distances from src to every node (-1 when unreachable).
func (g *Graph) BFS(src int32) []int {
	n := len(g.adj)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the whole graph is one component.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the number of connected components.
func (g *Graph) Components() int {
	n := len(g.adj)
	seen := make([]bool, n)
	comps := 0
	for s := int32(0); int(s) < n; s++ {
		if seen[s] {
			continue
		}
		comps++
		stack := []int32{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return comps
}

// AvgDegree returns the mean node degree (a density diagnostic).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return float64(total) / float64(len(g.adj))
}

// Oracle answers hop-distance queries against a mobility scenario, caching
// the snapshot graph and memoising BFS trees until the snapshot time moves
// by more than resolution (default 1 s). Traffic layers call it once per
// originated packet, so caching matters.
type Oracle struct {
	tracks     []*mobility.Track
	radioRange float64
	resolution sim.Duration

	snapAt  sim.Time
	snap    *Graph
	grid    *geo.FlatGrid // reused across refreshes
	bfsFrom map[int32][]int
	valid   bool
}

// NewOracle creates an oracle for the given tracks and radio range.
func NewOracle(tracks []*mobility.Track, radioRange float64) *Oracle {
	return &Oracle{
		tracks:     tracks,
		radioRange: radioRange,
		resolution: sim.Second,
		bfsFrom:    make(map[int32][]int),
	}
}

// GraphAt returns the (cached) snapshot graph near time t.
func (o *Oracle) GraphAt(t sim.Time) *Graph {
	o.refresh(t)
	return o.snap
}

func (o *Oracle) refresh(t sim.Time) {
	if o.valid && t.Sub(o.snapAt) < o.resolution && t >= o.snapAt {
		return
	}
	if o.grid == nil {
		o.grid = geo.NewFlatGrid(o.radioRange + 1)
	}
	o.snap = snapshotInto(o.grid, o.tracks, t, o.radioRange)
	o.snapAt = t
	o.valid = true
	for k := range o.bfsFrom {
		delete(o.bfsFrom, k)
	}
}

// HopDist returns the BFS hop distance from src to dst near time t
// (-1 when partitioned).
func (o *Oracle) HopDist(t sim.Time, src, dst int32) int {
	o.refresh(t)
	tree, ok := o.bfsFrom[src]
	if !ok {
		tree = o.snap.BFS(src)
		o.bfsFrom[src] = tree
	}
	return tree[dst]
}
