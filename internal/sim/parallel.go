package sim

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool for intra-run data parallelism: fanning
// one event's pure per-item work (the channel's per-receiver propagation
// math) across cores while the simulation goroutine keeps exclusive
// ownership of all mutable state. It is deliberately not a general task
// queue — one ParallelFor runs at a time, submitted and joined by the
// single simulation goroutine, so the engine's sequential semantics are
// preserved: by the time ParallelFor returns, every worker is idle again
// and all writes made by the chunks happen-before the caller's next read.
//
// Workers are started lazily on the first ParallelFor and tagged with a
// pprof "phase" label so CPU profiles attribute parallel time to the
// subsystem that spawned it. Stop tears the workers down; the pool restarts
// itself on the next ParallelFor, so a stopped pool never strands work.
type Pool struct {
	workers int
	label   string
	jobs    chan *poolJob
	wg      sync.WaitGroup
	started bool
	job     poolJob // the single in-flight job, reused across calls
}

// poolJob is one ParallelFor invocation: an index range [0, n) consumed in
// grain-sized chunks through an atomic cursor by every worker plus the
// submitting goroutine.
type poolJob struct {
	fn    func(lo, hi int)
	n     int
	grain int
	next  atomic.Int64
	done  sync.WaitGroup
}

func (j *poolJob) run() {
	defer j.done.Done()
	for {
		hi := int(j.next.Add(int64(j.grain)))
		lo := hi - j.grain
		if lo >= j.n {
			return
		}
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
	}
}

// NewPool creates a pool of `workers` goroutines (none started yet) whose
// profiles are labelled phase=label.
func NewPool(workers int, label string) *Pool {
	return &Pool{workers: workers, label: label}
}

// Workers returns the pool's configured worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

func (p *Pool) start() {
	if p.started {
		return
	}
	p.started = true
	p.jobs = make(chan *poolJob, p.workers)
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go func() {
			defer p.wg.Done()
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("phase", p.label)))
			for j := range p.jobs {
				j.run()
			}
		}()
	}
}

// ParallelFor invokes fn over the index range [0, n) split into grain-sized
// chunks, running chunks on the pool workers and on the calling goroutine,
// and returns only when every chunk has completed. fn must be safe to call
// concurrently on disjoint ranges and must not call back into the pool.
// With n ≤ grain (or a nil/empty pool) the whole range runs inline on the
// caller — the sequential fast path costs one comparison.
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p == nil || p.workers < 1 || n <= grain {
		fn(0, n)
		return
	}
	p.start()
	j := &p.job
	j.fn, j.n, j.grain = fn, n, grain
	j.next.Store(0)
	// Every worker plus the caller joins the chunk race; the buffered
	// channel holds one notification per worker so submission never blocks.
	j.done.Add(p.workers + 1)
	for i := 0; i < p.workers; i++ {
		p.jobs <- j
	}
	j.run()
	j.done.Wait()
	j.fn = nil
}

// Stop terminates the worker goroutines and waits for them to exit. The
// pool restarts lazily on the next ParallelFor, so Stop is safe to call
// between phased runs; calling it on a never-started or already-stopped
// pool is a no-op.
func (p *Pool) Stop() {
	if p == nil || !p.started {
		return
	}
	close(p.jobs)
	p.wg.Wait()
	p.started = false
}
