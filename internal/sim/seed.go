package sim

// DeriveSeed deterministically derives a per-run seed from a campaign base
// seed and a textual run label (e.g. "DSR|pause_s=0|rep=3"). It is
// content-addressed: the same (base, label) pair always yields the same seed
// regardless of run scheduling, process, or platform, so a resumed campaign
// re-executes exactly the runs an uninterrupted one would. The label is
// FNV-1a hashed and combined with the splitmix-finalized base so that
// adjacent base seeds and near-identical labels land in well-separated
// streams.
func DeriveSeed(base int64, label string) int64 {
	return mix(fnvLabel(label) ^ mix(base))
}

// DeriveSeedValues is the allocation-free sibling of DeriveSeed for
// per-event derivation on hot paths: it folds integer components into the
// base with the same splitmix finalizer instead of formatting a label.
// Fading models key per-reception draws on (link, transmission sequence)
// through it — roughly one derivation per frame leg, where a fmt.Sprintf
// label would dominate the simulation. The accumulator is multiplied by
// an odd prime before each fold so the base and the components occupy
// different roles: DeriveSeedValues(a, b) and DeriveSeedValues(b, a)
// are distinct streams. Like DeriveSeed, the mixing constants are part of
// the cross-process determinism contract.
func DeriveSeedValues(base int64, vals ...int64) int64 {
	h := mix(base)
	for _, v := range vals {
		h = mix(h*1099511628211 ^ mix(v))
	}
	return h
}

// SeedUniform maps a derived seed to a uniform draw in (0, 1]: the top 53
// bits of one further splitmix round, offset so the result is never 0 (a
// log of it is always finite). It exists so stochastic radio models can
// turn content-derived seeds into draws without constructing an RNG per
// reception.
func SeedUniform(seed int64) float64 {
	return (float64(uint64(mix(seed))>>11) + 1) / (1 << 53)
}
