package sim

// DeriveSeed deterministically derives a per-run seed from a campaign base
// seed and a textual run label (e.g. "DSR|pause_s=0|rep=3"). It is
// content-addressed: the same (base, label) pair always yields the same seed
// regardless of run scheduling, process, or platform, so a resumed campaign
// re-executes exactly the runs an uninterrupted one would. The label is
// FNV-1a hashed and combined with the splitmix-finalized base so that
// adjacent base seeds and near-identical labels land in well-separated
// streams.
func DeriveSeed(base int64, label string) int64 {
	return mix(fnvLabel(label) ^ mix(base))
}
