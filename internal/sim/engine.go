package sim

import (
	"container/heap"
	"fmt"
)

// EventFunc is the body of a scheduled event. It runs with the engine clock
// set to the event's timestamp.
type EventFunc func()

// Handle identifies a scheduled event so it can be cancelled. The zero Handle
// is invalid.
type Handle uint64

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps, and determinism
	fn   EventFunc
	h    Handle
	dead bool // cancelled; skipped when popped
	idx  int  // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is NOT safe for
// concurrent use; run one Engine per goroutine.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	nextH   Handle
	live    map[Handle]*event
	stopped bool

	// Executed counts events actually dispatched (statistics / loop guards).
	Executed uint64
	// Limit, when non-zero, aborts Run with an error after this many events.
	// It is a guard against runaway protocol loops in tests.
	Limit uint64

	// Interrupt, when non-nil, is polled every InterruptEvery events during
	// Run; a non-nil return aborts Run with that error. This is how external
	// cancellation (context.Context) reaches the event loop without putting
	// a channel receive on the per-event hot path.
	Interrupt func() error
	// InterruptEvery is the polling period in events (0 selects a default
	// of 4096, frequent enough for sub-millisecond cancellation latency).
	InterruptEvery uint64
}

// NewEngine returns an empty engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{live: make(map[Handle]*event, 64)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events.
func (e *Engine) Len() int { return len(e.live) }

// Schedule runs fn at absolute time at. Scheduling in the past (before Now)
// panics: it always indicates a model bug.
func (e *Engine) Schedule(at Time, fn EventFunc) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.nextSeq++
	e.nextH++
	ev := &event{at: at, seq: e.nextSeq, fn: fn, h: e.nextH}
	heap.Push(&e.queue, ev)
	e.live[ev.h] = ev
	return ev.h
}

// ScheduleIn runs fn after delay d (clamped to zero).
func (e *Engine) ScheduleIn(d Duration, fn EventFunc) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or already-
// cancelled handle is a no-op and reports false.
func (e *Engine) Cancel(h Handle) bool {
	ev, ok := e.live[h]
	if !ok {
		return false
	}
	delete(e.live, h)
	ev.dead = true
	if ev.idx >= 0 {
		heap.Remove(&e.queue, ev.idx)
	}
	return true
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue is empty, the
// clock passes until, or Stop is called. Events scheduled exactly at until
// still run. The clock is left at min(until, last event time).
func (e *Engine) Run(until Time) error {
	e.stopped = false
	every := e.InterruptEvery
	if every == 0 {
		every = 4096
	}
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		if ev.dead {
			continue
		}
		delete(e.live, ev.h)
		e.now = ev.at
		e.Executed++
		if e.Limit != 0 && e.Executed > e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		if e.Interrupt != nil && e.Executed%every == 0 {
			if err := e.Interrupt(); err != nil {
				return err
			}
		}
		ev.fn()
	}
	if until != Never && e.now < until && !e.stopped {
		e.now = until
	}
	return nil
}

// RunAll dispatches every pending event regardless of timestamp.
func (e *Engine) RunAll() error { return e.Run(Never) }

// Timer is a restartable one-shot timer bound to an engine, the building
// block for protocol timeouts (route expiry, retransmission, hello beacons).
// The zero value is unusable; create with NewTimer.
type Timer struct {
	e  *Engine
	fn EventFunc
	h  Handle
	on bool
}

// NewTimer binds fn to engine e. The timer starts stopped.
func NewTimer(e *Engine, fn EventFunc) *Timer {
	return &Timer{e: e, fn: fn}
}

// Reset (re)arms the timer to fire after d, cancelling any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.on = true
	t.h = t.e.ScheduleIn(d, func() {
		t.on = false
		t.fn()
	})
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.on = true
	t.h = t.e.Schedule(at, func() {
		t.on = false
		t.fn()
	})
}

// Stop cancels a pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	if !t.on {
		return false
	}
	t.on = false
	return t.e.Cancel(t.h)
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.on }

// Ticker repeatedly invokes fn every interval until stopped. Intervals may be
// jittered by the caller via the OnTick hook returning the next interval.
type Ticker struct {
	t        *Timer
	interval Duration
	stopped  bool
	// Jitter, if non-nil, returns the next interval (e.g. randomized
	// beacon spacing). It is consulted before every tick.
	Jitter func() Duration
}

// NewTicker creates a ticker bound to e that calls fn every interval once
// started. fn runs before the next tick is scheduled, so fn may Stop it.
func NewTicker(e *Engine, interval Duration, fn EventFunc) *Ticker {
	tk := &Ticker{interval: interval}
	tk.t = NewTimer(e, func() {
		fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
	return tk
}

func (tk *Ticker) schedule() {
	iv := tk.interval
	if tk.Jitter != nil {
		iv = tk.Jitter()
	}
	tk.t.Reset(iv)
}

// Start begins ticking; the first tick fires after one interval (plus jitter).
func (tk *Ticker) Start() {
	tk.stopped = false
	tk.schedule()
}

// StartIn begins ticking with a custom first delay.
func (tk *Ticker) StartIn(first Duration) {
	tk.stopped = false
	tk.t.Reset(first)
}

// Stop cancels future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.t.Stop()
}
