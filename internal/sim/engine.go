package sim

import (
	"fmt"
	"strings"
)

// EventFunc is the body of a scheduled event. It runs with the engine clock
// set to the event's timestamp.
type EventFunc func()

// Handle identifies a scheduled event so it can be cancelled. It carries a
// direct pointer to the (pooled) event struct plus the generation the event
// had when scheduled: recycling bumps the generation, so stale handles to
// fired or cancelled events are rejected without any lookup table on the
// per-event hot path. The zero Handle is invalid.
type Handle struct {
	ev  *event
	gen uint64
}

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps, and determinism
	gen uint64 // incremented on recycle; validates Handles
	fn  EventFunc
	idx int // queue-internal position (≥0 while queued), -1 once popped
}

// eventBefore is the strict total order every queue implementation must
// dispatch in: timestamp first, then scheduling sequence. Because no two
// events share (at, seq), any correct implementation of eventQueue yields
// the same dispatch sequence — determinism does not depend on the queue
// shape, which is what lets the calendar queue replace the heap without
// perturbing a single result bit.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is the engine's pluggable priority queue. Implementations
// must dispatch in eventBefore order, keep ev.idx ≥ 0 while an event is
// queued and set it to -1 on pop/remove (Cancel keys off that), and return
// nil from peek/popMin when empty.
type eventQueue interface {
	push(ev *event)
	peek() *event
	popMin() *event
	remove(ev *event)
	size() int
}

// QueueKind selects an eventQueue implementation for a new Engine.
type QueueKind uint8

const (
	// QueueHeap is the default 4-ary min-heap: O(log n) per operation,
	// unbeatable constants at the study's 25–500 node populations.
	QueueHeap QueueKind = iota
	// QueueCalendar is the calendar queue (Brown 1988): O(1) amortized
	// insert/pop, the better fit for city-scale runs whose pending-event
	// populations reach the tens of thousands.
	QueueCalendar
)

// String renders the kind as its ParseQueueKind spelling.
func (k QueueKind) String() string {
	if k == QueueCalendar {
		return "calendar"
	}
	return "heap"
}

// ParseQueueKind resolves a queue-kind name ("heap", "calendar"; the empty
// string selects the default heap).
func ParseQueueKind(s string) (QueueKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "heap":
		return QueueHeap, nil
	case "calendar":
		return QueueCalendar, nil
	}
	return 0, fmt.Errorf("sim: unknown event-queue kind %q (want heap or calendar)", s)
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). Heap
// maintenance is the single hottest loop of a large run, so the heap works
// directly on the concrete slice — no container/heap interface dispatch per
// comparison — and the wider fan-out halves the tree depth (pops do ~4
// compares per level but half the levels and half the swaps of a binary
// heap, a net win for the pop-heavy event-loop workload). Because (at, seq)
// is a strict total order over events, any correct heap yields the same
// dispatch sequence: determinism does not depend on the heap shape.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	ev.idx = len(*h)
	*h = append(*h, ev)
	h.siftUp(ev.idx)
}

// peek returns the minimum event without removing it (nil when empty).
func (h *eventHeap) peek() *event {
	if len(*h) == 0 {
		return nil
	}
	return (*h)[0]
}

func (h *eventHeap) size() int { return len(*h) }

// remove unlinks a queued event (for cancellation).
func (h *eventHeap) remove(ev *event) { h.removeAt(ev.idx) }

// popMin removes and returns the minimum event (nil when empty).
func (h *eventHeap) popMin() *event {
	old := *h
	if len(old) == 0 {
		return nil
	}
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].idx = 0
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.siftDown(0)
	}
	ev.idx = -1
	return ev
}

// removeAt removes the event at index i (for cancellation).
func (h *eventHeap) removeAt(i int) {
	old := *h
	n := len(old) - 1
	ev := old[i]
	if i != n {
		old[i] = old[n]
		old[i].idx = i
	}
	old[n] = nil
	*h = old[:n]
	if i < n {
		h.siftDown(i)
		h.siftUp(i)
	}
	ev.idx = -1
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].idx = i
		h[parent].idx = parent
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		min := i
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		h[i].idx = i
		h[min].idx = min
		i = min
	}
}

// Engine is a single-threaded discrete-event scheduler. It is NOT safe for
// concurrent use; run one Engine per goroutine.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	free    []*event // recycled event structs (see alloc/recycle)
	stopped bool

	// Executed counts events actually dispatched (statistics / loop guards).
	Executed uint64
	// Limit, when non-zero, aborts Run with an error after this many events.
	// It is a guard against runaway protocol loops in tests.
	Limit uint64

	// Interrupt, when non-nil, is polled every InterruptEvery events during
	// Run; a non-nil return aborts Run with that error. This is how external
	// cancellation (context.Context) reaches the event loop without putting
	// a channel receive on the per-event hot path.
	Interrupt func() error
	// InterruptEvery is the polling period in events (0 selects a default
	// of 4096, frequent enough for sub-millisecond cancellation latency).
	InterruptEvery uint64
}

// NewEngine returns an empty engine with the clock at time zero and the
// default heap event queue.
func NewEngine() *Engine { return NewEngineQueue(QueueHeap) }

// NewEngineQueue returns an empty engine using the given event-queue
// implementation. Either kind dispatches the exact same (at, seq) sequence;
// the choice is purely a performance trade-off (see QueueKind).
func NewEngineQueue(kind QueueKind) *Engine {
	e := &Engine{}
	if kind == QueueCalendar {
		e.queue = newCalQueue()
	} else {
		e.queue = new(eventHeap)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events.
func (e *Engine) Len() int { return e.queue.size() }

// alloc takes an event struct from the free list, or heap-allocates one.
// Pooling matters at scale: every transmission, timer and MAC slot is one
// event, and recycling the structs keeps the per-event allocation off the
// large-N hot path.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// maxFreeEvents caps the recycled-event free list. Without a cap the list
// grows to the run's peak pending-event count and stays there: one
// burst-heavy phase (a broadcast storm fanning out to a 10k-node
// neighbourhood) would pin that peak's memory for the rest of a long run.
// Structs recycled beyond the cap are released to the GC instead; their
// bumped generation still invalidates outstanding Handles.
const maxFreeEvents = 1 << 15

// recycle returns an event struct to the free list. The caller must have
// removed it from the queue. Bumping the generation invalidates outstanding
// Handles; dropping the closure reference keeps recycled events from
// pinning captured memory (the remaining fields are overwritten on reuse).
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// Schedule runs fn at absolute time at. Scheduling in the past (before Now)
// panics: it always indicates a model bug.
func (e *Engine) Schedule(at Time, fn EventFunc) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.nextSeq++
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = at, e.nextSeq, fn
	e.queue.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// ScheduleIn runs fn after delay d (clamped to zero).
func (e *Engine) ScheduleIn(d Duration, fn EventFunc) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or already-
// cancelled handle is a no-op and reports false.
func (e *Engine) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.idx < 0 {
		return false
	}
	e.queue.remove(ev)
	e.recycle(ev)
	return true
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue is empty, the
// clock passes until, or Stop is called. Events scheduled exactly at until
// still run. The clock is left at min(until, last event time).
func (e *Engine) Run(until Time) error {
	e.stopped = false
	every := e.InterruptEvery
	if every == 0 {
		every = 4096
	}
	for !e.stopped {
		ev := e.queue.peek()
		if ev == nil || ev.at > until {
			break
		}
		e.queue.popMin()
		e.now = ev.at
		e.Executed++
		if e.Limit != 0 && e.Executed > e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		if e.Interrupt != nil && e.Executed%every == 0 {
			if err := e.Interrupt(); err != nil {
				return err
			}
		}
		fn := ev.fn
		// Recycle before dispatch: ev is out of the heap, so fn (which may
		// Schedule) can reuse the struct immediately, and its bumped
		// generation makes self-cancellation from within fn a no-op.
		e.recycle(ev)
		fn()
	}
	if until != Never && e.now < until && !e.stopped {
		e.now = until
	}
	return nil
}

// RunAll dispatches every pending event regardless of timestamp.
func (e *Engine) RunAll() error { return e.Run(Never) }

// Timer is a restartable one-shot timer bound to an engine, the building
// block for protocol timeouts (route expiry, retransmission, hello beacons).
// The zero value is unusable; create with NewTimer.
type Timer struct {
	e    *Engine
	fn   EventFunc
	fire EventFunc // wrapping closure, allocated once (Reset is hot)
	h    Handle
	on   bool
}

// NewTimer binds fn to engine e. The timer starts stopped.
func NewTimer(e *Engine, fn EventFunc) *Timer {
	t := &Timer{e: e, fn: fn}
	t.fire = func() {
		t.on = false
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire after d, cancelling any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.on = true
	t.h = t.e.ScheduleIn(d, t.fire)
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.on = true
	t.h = t.e.Schedule(at, t.fire)
}

// Stop cancels a pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	if !t.on {
		return false
	}
	t.on = false
	return t.e.Cancel(t.h)
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.on }

// Ticker repeatedly invokes fn every interval until stopped. Intervals may be
// jittered by the caller via the OnTick hook returning the next interval.
type Ticker struct {
	t        *Timer
	interval Duration
	stopped  bool
	// Jitter, if non-nil, returns the next interval (e.g. randomized
	// beacon spacing). It is consulted before every tick.
	Jitter func() Duration
}

// NewTicker creates a ticker bound to e that calls fn every interval once
// started. fn runs before the next tick is scheduled, so fn may Stop it.
func NewTicker(e *Engine, interval Duration, fn EventFunc) *Ticker {
	tk := &Ticker{interval: interval}
	tk.t = NewTimer(e, func() {
		fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
	return tk
}

func (tk *Ticker) schedule() {
	iv := tk.interval
	if tk.Jitter != nil {
		iv = tk.Jitter()
	}
	tk.t.Reset(iv)
}

// Start begins ticking; the first tick fires after one interval (plus jitter).
func (tk *Ticker) Start() {
	tk.stopped = false
	tk.schedule()
}

// StartIn begins ticking with a custom first delay.
func (tk *Ticker) StartIn(first Duration) {
	tk.stopped = false
	tk.t.Reset(first)
}

// Stop cancels future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.t.Stop()
}
