package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationScale(t *testing.T) {
	if Second.Scale(0.5) != 500*Millisecond {
		t.Fatalf("Scale = %v", Second.Scale(0.5))
	}
	if Second.Scale(2) != 2*Second {
		t.Fatal("Scale(2)")
	}
}

func TestDurationStd(t *testing.T) {
	if Second.Std() != time.Second {
		t.Fatal("Std conversion")
	}
	if Millis(1.5).Std() != 1500*time.Microsecond {
		t.Fatal("fractional millis")
	}
}

func TestTimeOrderingProperties(t *testing.T) {
	f := func(a, b int32) bool {
		ta, tb := Time(a), Time(b)
		if ta.Before(tb) && tb.Before(ta) {
			return false
		}
		if ta.Before(tb) {
			return tb.After(ta)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(base int32, delta int32) bool {
		t0 := Time(base)
		d := Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationStringSmoke(t *testing.T) {
	if Second.String() == "" || Millis(5).String() == "" {
		t.Fatal("empty duration strings")
	}
}
