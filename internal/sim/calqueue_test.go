package sim

import (
	"math/rand"
	"testing"
)

// queueKinds enumerates every event-queue implementation; dispatch-order
// tests run against all of them.
var queueKinds = []QueueKind{QueueHeap, QueueCalendar}

func TestCalendarEngineBasics(t *testing.T) {
	t.Run("order", func(t *testing.T) {
		e := NewEngineQueue(QueueCalendar)
		var got []int
		e.Schedule(At(3), func() { got = append(got, 3) })
		e.Schedule(At(1), func() { got = append(got, 1) })
		e.Schedule(At(2), func() { got = append(got, 2) })
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		for i, want := range []int{1, 2, 3} {
			if got[i] != want {
				t.Fatalf("order = %v", got)
			}
		}
	})
	t.Run("fifo-ties", func(t *testing.T) {
		e := NewEngineQueue(QueueCalendar)
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(At(1), func() { got = append(got, i) })
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != i {
				t.Fatalf("equal-time events not FIFO: %v", got)
			}
		}
	})
	t.Run("cancel", func(t *testing.T) {
		e := NewEngineQueue(QueueCalendar)
		var fired []int
		e.Schedule(At(1), func() { fired = append(fired, 1) })
		h := e.Schedule(At(2), func() { fired = append(fired, 2) })
		e.Schedule(At(3), func() { fired = append(fired, 3) })
		if !e.Cancel(h) {
			t.Fatal("cancel of pending event failed")
		}
		if e.Cancel(h) {
			t.Fatal("double cancel succeeded")
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
			t.Fatalf("fired = %v, want [1 3]", fired)
		}
	})
	t.Run("horizon-resume", func(t *testing.T) {
		e := NewEngineQueue(QueueCalendar)
		var fired []int
		e.Schedule(At(1), func() { fired = append(fired, 1) })
		e.Schedule(At(5), func() { fired = append(fired, 5) })
		if err := e.Run(At(2)); err != nil {
			t.Fatal(err)
		}
		if len(fired) != 1 || e.Len() != 1 {
			t.Fatalf("after first phase: fired %v, pending %d", fired, e.Len())
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != 2 || fired[1] != 5 {
			t.Fatalf("fired = %v, want [1 5]", fired)
		}
	})
	t.Run("sparse-far-future", func(t *testing.T) {
		// Events separated by hours of empty days exercise the
		// jump-to-minimum path instead of a day-by-day cursor crawl.
		e := NewEngineQueue(QueueCalendar)
		var got []Time
		for _, s := range []float64{0.001, 3600, 7 * 3600, 100 * 3600} {
			at := At(s)
			e.Schedule(at, func() { got = append(got, e.Now()) })
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("non-monotone dispatch: %v", got)
			}
		}
		if len(got) != 4 {
			t.Fatalf("fired %d events, want 4", len(got))
		}
	})
	t.Run("resize-grow-shrink", func(t *testing.T) {
		// Push far past the grow threshold, then drain past the shrink
		// threshold; order must hold across both rebuilds.
		e := NewEngineQueue(QueueCalendar)
		rng := rand.New(rand.NewSource(7))
		const n = 5000
		var got []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Int63n(int64(10 * Second)))
			e.Schedule(at, func() { got = append(got, e.Now()) })
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("fired %d events, want %d", len(got), n)
		}
		for i := 1; i < n; i++ {
			if got[i] < got[i-1] {
				t.Fatalf("non-monotone dispatch at %d: %v then %v", i, got[i-1], got[i])
			}
		}
	})
}

// queueFiring is one dispatched event as observed by the equivalence fuzz:
// the event's creation id plus the clock at dispatch. Ids are assigned in
// Schedule order, so equal id sequences mean equal (at, seq) sequences.
type queueFiring struct {
	id int
	at Time
}

// runQueueScript drives one engine through a seeded random script:
// an initial event population with deliberate timestamp ties, then
// rng-driven actions from inside firing events — nested schedules, cancels
// of live and stale handles, reschedules. The rng is consumed in dispatch
// order, so two engines replaying the same seed stay action-identical
// exactly as long as their dispatch orders agree — any divergence shows up
// in the returned firing log.
func runQueueScript(t *testing.T, kind QueueKind, seed int64) []queueFiring {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := NewEngineQueue(kind)
	var log []queueFiring
	var handles []Handle
	nextID := 0
	var schedule func(at Time)
	schedule = func(at Time) {
		id := nextID
		nextID++
		h := e.Schedule(at, func() {
			log = append(log, queueFiring{id: id, at: e.Now()})
			if nextID < 4000 {
				switch rng.Intn(5) {
				case 0: // burst of near-future events, clustered timestamps
					base := e.Now() + Time(rng.Int63n(int64(50*Millisecond)))
					for k := 0; k < 1+rng.Intn(3); k++ {
						schedule(base) // exact ties across separate schedules
					}
				case 1: // spread-out future event
					schedule(e.Now() + Time(rng.Int63n(int64(20*Second))))
				case 2: // cancel a random (possibly stale) handle
					if len(handles) > 0 {
						e.Cancel(handles[rng.Intn(len(handles))])
					}
				case 3: // reschedule: cancel then re-issue later
					if len(handles) > 0 {
						h := handles[rng.Intn(len(handles))]
						if e.Cancel(h) {
							schedule(e.Now() + Time(rng.Int63n(int64(Second))))
						}
					}
				}
			}
		})
		handles = append(handles, h)
	}
	for i := 0; i < 300; i++ {
		at := Time(rng.Int63n(int64(2 * Second)))
		schedule(at)
		if rng.Intn(4) == 0 {
			schedule(at) // seed (at, seq) ties in the initial population too
		}
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestQueueEquivalenceFuzz is the randomized heap-vs-calendar scheduler
// equivalence guard: for many seeded random schedule/cancel/reschedule
// scripts, both queue implementations must dispatch the identical (at, seq)
// sequence. This is the property that makes the calendar queue safe to
// enable on any scenario — bit-identical results follow from identical
// dispatch order.
func TestQueueEquivalenceFuzz(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		heapLog := runQueueScript(t, QueueHeap, seed)
		calLog := runQueueScript(t, QueueCalendar, seed)
		if len(heapLog) != len(calLog) {
			t.Fatalf("seed %d: heap fired %d events, calendar %d", seed, len(heapLog), len(calLog))
		}
		for i := range heapLog {
			if heapLog[i] != calLog[i] {
				t.Fatalf("seed %d: dispatch diverges at %d: heap %+v, calendar %+v",
					seed, i, heapLog[i], calLog[i])
			}
		}
		if len(heapLog) < 300 {
			t.Fatalf("seed %d: script fired only %d events — not exercising the queues", seed, len(heapLog))
		}
	}
}

// TestEngineFreeListCapped: recycling must stop growing the free list at
// maxFreeEvents, so a burst's peak event population is not pinned in memory
// for the rest of the run.
func TestEngineFreeListCapped(t *testing.T) {
	for _, kind := range queueKinds {
		e := NewEngineQueue(kind)
		n := maxFreeEvents + 5000
		for i := 0; i < n; i++ {
			e.Schedule(Time(i), func() {})
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		if len(e.free) > maxFreeEvents {
			t.Fatalf("%v: free list holds %d events, cap is %d", kind, len(e.free), maxFreeEvents)
		}
		if len(e.free) != maxFreeEvents {
			t.Fatalf("%v: free list holds %d events after an over-cap burst, want exactly %d",
				kind, len(e.free), maxFreeEvents)
		}
	}
}

func TestParseQueueKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want QueueKind
		ok   bool
	}{
		{"", QueueHeap, true},
		{"heap", QueueHeap, true},
		{"Calendar", QueueCalendar, true},
		{" calendar ", QueueCalendar, true},
		{"ladder", 0, false},
	} {
		got, err := ParseQueueKind(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseQueueKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if QueueHeap.String() != "heap" || QueueCalendar.String() != "calendar" {
		t.Errorf("String() = %q, %q", QueueHeap, QueueCalendar)
	}
}
