package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestPoolParallelForCoversRange: every index in [0, n) is visited exactly
// once, across assorted n/grain shapes including the inline fast path.
func TestPoolParallelForCoversRange(t *testing.T) {
	p := NewPool(3, "test")
	defer p.Stop()
	for _, tc := range []struct{ n, grain int }{
		{0, 8}, {1, 8}, {7, 8}, {8, 8}, {9, 8}, {64, 8}, {1000, 7}, {5, 0},
	} {
		hits := make([]int32, tc.n)
		p.ParallelFor(tc.n, tc.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d grain=%d: index %d visited %d times", tc.n, tc.grain, i, h)
			}
		}
	}
}

// TestPoolSequentialBelowGrain: with n ≤ grain the whole range must run on
// the calling goroutine (no workers started, so Stop stays a no-op).
func TestPoolSequentialBelowGrain(t *testing.T) {
	p := NewPool(4, "test")
	before := runtime.NumGoroutine()
	ran := false
	p.ParallelFor(8, 8, func(lo, hi int) {
		if lo != 0 || hi != 8 {
			t.Fatalf("inline path split the range: [%d, %d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not invoked")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("inline ParallelFor started goroutines: %d -> %d", before, after)
	}
	p.Stop()
}

// TestPoolRestartsAfterStop: Stop tears the workers down; the next
// ParallelFor must transparently restart them and still cover the range.
func TestPoolRestartsAfterStop(t *testing.T) {
	p := NewPool(2, "test")
	var sum atomic.Int64
	for round := 0; round < 3; round++ {
		sum.Store(0)
		p.ParallelFor(100, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if got := sum.Load(); got != 4950 {
			t.Fatalf("round %d: sum = %d, want 4950", round, got)
		}
		p.Stop()
		p.Stop() // idempotent
	}
}

// TestPoolNilSafe: a nil pool degrades to the inline path.
func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	n := 0
	p.ParallelFor(10, 3, func(lo, hi int) { n += hi - lo })
	if n != 10 {
		t.Fatalf("nil pool covered %d of 10", n)
	}
	p.Stop()
	if p.Workers() != 0 {
		t.Fatal("nil pool reports workers")
	}
}
