package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(At(3), func() { got = append(got, 3) })
	e.Schedule(At(1), func() { got = append(got, 1) })
	e.Schedule(At(2), func() { got = append(got, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != At(3) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(At(1), func() { got = append(got, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulingFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var fired bool
	e.Schedule(At(1), func() {
		e.ScheduleIn(Seconds(1), func() { fired = true })
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("nested event did not fire")
	}
	if e.Now() != At(2) {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	var late bool
	e.Schedule(At(1), func() {})
	e.Schedule(At(5), func() { late = true })
	if err := e.Run(At(2)); err != nil {
		t.Fatal(err)
	}
	if late {
		t.Fatal("event after horizon fired")
	}
	if e.Now() != At(2) {
		t.Fatalf("Now = %v, want clamped to horizon 2s", e.Now())
	}
	if e.Len() != 1 {
		t.Fatalf("pending = %d, want 1", e.Len())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	var fired bool
	h := e.Schedule(At(1), func() { fired = true })
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var handles []Handle
	for i := 0; i < 5; i++ {
		i := i
		handles = append(handles, e.Schedule(At(float64(i+1)), func() { got = append(got, i) }))
	}
	e.Cancel(handles[2])
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("fired %d events, want 4", len(got))
	}
	for _, v := range got {
		if v == 2 {
			t.Fatal("cancelled event fired")
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(At(5), func() {})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(At(1), func() {})
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(At(float64(i)), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("executed %d events after Stop, want 3", n)
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 10
	var tick func()
	tick = func() { e.ScheduleIn(Second, tick) }
	e.ScheduleIn(Second, tick)
	if err := e.RunAll(); err == nil {
		t.Fatal("runaway loop not caught by Limit")
	}
}

func TestTimerResetStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(Seconds(1))
	tm.Reset(Seconds(2)) // supersedes first arming
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Reset must cancel prior arming)", fired)
	}
	if e.Now() != At(2) {
		t.Fatalf("fired at %v, want 2s", e.Now())
	}
	tm.Reset(Seconds(1))
	if !tm.Pending() {
		t.Fatal("Pending = false after Reset")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false for armed timer")
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine()
	var times []Time
	tk := NewTicker(e, Seconds(2), func() { times = append(times, e.Now()) })
	tk.Start()
	if err := e.Run(At(7)); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	if len(times) != 3 {
		t.Fatalf("ticks = %d, want 3 (at 2,4,6)", len(times))
	}
	for i, want := range []Time{At(2), At(4), At(6)} {
		if times[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestTickerStopFromWithinTick(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, Second, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	tk.Start()
	if err := e.Run(At(10)); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Intn(1000) == c.Intn(1000) {
			same++
		}
	}
	if same > 50 {
		t.Fatal("different seeds look correlated")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork(1)
	g2 := NewRNG(7)
	f1b := g2.Fork(1)
	for i := 0; i < 50; i++ {
		if f1.Float64() != f1b.Float64() {
			t.Fatal("fork with same lineage diverged")
		}
	}
	// Forks with different ids should differ somewhere early.
	x, y := NewRNG(7).Fork(1), NewRNG(7).Fork(2)
	diff := false
	for i := 0; i < 10; i++ {
		if x.Float64() != y.Float64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("forks with different ids identical")
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(1)
	f := func(lo, hi uint8) bool {
		a, b := float64(lo), float64(lo)+float64(hi)+1
		v := g.Uniform(a, b)
		return v >= a && v < b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDurationUniform(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		d := g.DurationUniform(Millis(5), Millis(10))
		if d < Millis(5) || d >= Millis(10) {
			t.Fatalf("DurationUniform out of range: %v", d)
		}
	}
	if g.DurationUniform(Second, Second) != Second {
		t.Fatal("degenerate range should return lo")
	}
	if g.Jitter(0) != 0 {
		t.Fatal("Jitter(0) should be 0")
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != Duration(1500000000) {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
	if Millis(2) != Duration(2000000) {
		t.Fatalf("Millis(2) = %d", Millis(2))
	}
	if Micros(3) != Duration(3000) {
		t.Fatalf("Micros(3) = %d", Micros(3))
	}
	if At(2).Add(Seconds(0.5)) != At(2.5) {
		t.Fatal("Add mismatch")
	}
	if At(3).Sub(At(1)) != Seconds(2) {
		t.Fatal("Sub mismatch")
	}
	if s := At(1.25).String(); s != "1.250000s" {
		t.Fatalf("String = %q", s)
	}
	if Never.String() != "never" {
		t.Fatal("Never.String mismatch")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			e.ScheduleIn(Microsecond, next)
		}
	}
	e.ScheduleIn(Microsecond, next)
	b.ResetTimer()
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func TestEngineInterrupt(t *testing.T) {
	e := NewEngine()
	e.InterruptEvery = 10
	stop := errors.New("stop now")
	var fired int
	e.Interrupt = func() error {
		if fired >= 25 {
			return stop
		}
		return nil
	}
	var next func()
	next = func() {
		fired++
		e.ScheduleIn(Microsecond, next)
	}
	e.ScheduleIn(Microsecond, next)
	err := e.RunAll()
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want interrupt error", err)
	}
	// The poll period is 10 events, so the abort lands within one period
	// of the trigger point.
	if fired < 25 || fired > 40 {
		t.Fatalf("fired %d events before interrupt took effect", fired)
	}
}

func TestEngineInterruptNilNeverPolled(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.ScheduleIn(Microsecond, func() {})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Executed != 100 {
		t.Fatalf("executed %d", e.Executed)
	}
}

func TestEngineEventPoolRecycles(t *testing.T) {
	e := NewEngine()
	// Sequential schedule/fire cycles must reuse the same pooled struct
	// instead of allocating one event per cycle.
	for i := 0; i < 1000; i++ {
		e.ScheduleIn(Microsecond, func() {})
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(e.free); n != 1 {
		t.Fatalf("free list holds %d events after sequential cycles, want 1", n)
	}
}

func TestEngineStaleHandleRejected(t *testing.T) {
	e := NewEngine()
	var fired int
	h := e.ScheduleIn(Microsecond, func() { fired++ })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d", fired)
	}
	// The handle's event struct has been recycled; cancelling must be a
	// no-op even after the struct is reused by a new event.
	h2 := e.ScheduleIn(Microsecond, func() { fired++ })
	if e.Cancel(h) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("recycled event did not fire (fired=%d)", fired)
	}
	if e.Cancel(h2) {
		t.Fatal("cancel after firing reported true")
	}
	var zero Handle
	if e.Cancel(zero) {
		t.Fatal("zero handle cancelled something")
	}
}

func TestEngineCancelSelfDuringDispatch(t *testing.T) {
	e := NewEngine()
	var h Handle
	h = e.ScheduleIn(Microsecond, func() {
		if e.Cancel(h) {
			t.Fatal("event cancelled itself mid-dispatch")
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDispatchOrderWithPooling(t *testing.T) {
	// Heavy interleaved schedule/cancel traffic must still dispatch in
	// exact (time, seq) order — the determinism contract of the 4-ary
	// heap + pool.
	e := NewEngine()
	var got []int
	var handles []Handle
	for i := 0; i < 200; i++ {
		i := i
		at := Time((i * 7919) % 100).Add(Duration(i))
		handles = append(handles, e.Schedule(at, func() { got = append(got, i) }))
	}
	for i := 0; i < 200; i += 3 {
		e.Cancel(handles[i])
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Expect the surviving events sorted by (at, seq): seq increases with
	// i, so equal timestamps keep ascending i.
	var want []int
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			continue
		}
		want = append(want, i)
	}
	sortStable(want, func(a, b int) bool {
		ta := Time((a * 7919) % 100).Add(Duration(a))
		tb := Time((b * 7919) % 100).Add(Duration(b))
		if ta != tb {
			return ta < tb
		}
		return a < b
	})
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverged at %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// sortStable is a tiny stable insertion sort for the test above.
func sortStable(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && less(v, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
