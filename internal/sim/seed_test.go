package sim

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, "DSR|pause_s=0|rep=0")
	b := DeriveSeed(1, "DSR|pause_s=0|rep=0")
	if a != b {
		t.Fatalf("same inputs diverged: %d vs %d", a, b)
	}
}

func TestDeriveSeedSeparation(t *testing.T) {
	seen := make(map[int64]string)
	add := func(base int64, label string) {
		s := DeriveSeed(base, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("collision: (%d,%q) and %q both map to %d", base, label, prev, s)
		}
		seen[s] = label
	}
	// Near-identical labels and adjacent bases must all separate.
	for base := int64(0); base < 4; base++ {
		for rep := 0; rep < 50; rep++ {
			add(base, "DSR|pause_s=0|rep="+string(rune('0'+rep%10))+string(rune('a'+rep/10)))
		}
	}
	if DeriveSeed(1, "AODV|rep=0") == DeriveSeed(1, "DSR|rep=0") {
		t.Fatal("protocol change did not change the seed")
	}
	if DeriveSeed(1, "DSR|rep=0") == DeriveSeed(2, "DSR|rep=0") {
		t.Fatal("base change did not change the seed")
	}
}

func TestDeriveSeedValuesSeparation(t *testing.T) {
	seen := make(map[int64][3]int64)
	for a := int64(0); a < 8; a++ {
		for b := int64(0); b < 8; b++ {
			for c := int64(0); c < 8; c++ {
				s := DeriveSeedValues(7, a, b, c)
				if s != DeriveSeedValues(7, a, b, c) {
					t.Fatal("same components diverged")
				}
				if prev, dup := seen[s]; dup {
					t.Fatalf("collision: %v and %v both map to %d", prev, [3]int64{a, b, c}, s)
				}
				seen[s] = [3]int64{a, b, c}
			}
		}
	}
	if DeriveSeedValues(1, 2, 3) == DeriveSeedValues(2, 2, 3) {
		t.Fatal("base change did not change the seed")
	}
	// Component order matters: (a,b) and (b,a) are different streams.
	if DeriveSeedValues(1, 2, 3) == DeriveSeedValues(1, 3, 2) {
		t.Fatal("component order did not change the seed")
	}
	// The base is not interchangeable with the first component: a model
	// keying streams as (id, peer, …) must not collide with (peer, id, …).
	if DeriveSeedValues(1, 2, 3) == DeriveSeedValues(2, 1, 3) {
		t.Fatal("base and first component are symmetric")
	}
	if DeriveSeedValues(1, 2) == DeriveSeedValues(2, 1) {
		t.Fatal("base and sole component are symmetric")
	}
}

func TestSeedUniformRange(t *testing.T) {
	sum := 0.0
	const n = 10_000
	for i := int64(0); i < n; i++ {
		u := SeedUniform(DeriveSeedValues(3, i))
		if u <= 0 || u > 1 {
			t.Fatalf("SeedUniform outside (0,1]: %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("SeedUniform mean %v, want ≈0.5", mean)
	}
}
