package sim

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, "DSR|pause_s=0|rep=0")
	b := DeriveSeed(1, "DSR|pause_s=0|rep=0")
	if a != b {
		t.Fatalf("same inputs diverged: %d vs %d", a, b)
	}
}

func TestDeriveSeedSeparation(t *testing.T) {
	seen := make(map[int64]string)
	add := func(base int64, label string) {
		s := DeriveSeed(base, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("collision: (%d,%q) and %q both map to %d", base, label, prev, s)
		}
		seen[s] = label
	}
	// Near-identical labels and adjacent bases must all separate.
	for base := int64(0); base < 4; base++ {
		for rep := 0; rep < 50; rep++ {
			add(base, "DSR|pause_s=0|rep="+string(rune('0'+rep%10))+string(rune('a'+rep/10)))
		}
	}
	if DeriveSeed(1, "AODV|rep=0") == DeriveSeed(1, "DSR|rep=0") {
		t.Fatal("protocol change did not change the seed")
	}
	if DeriveSeed(1, "DSR|rep=0") == DeriveSeed(2, "DSR|rep=0") {
		t.Fatal("base change did not change the seed")
	}
}
