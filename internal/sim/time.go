// Package sim provides the discrete-event simulation kernel used by every
// other subsystem: a virtual clock, an event queue, and deterministic
// random-number streams.
//
// The kernel is intentionally single-threaded per Engine; parallelism in the
// study harness comes from running many independent Engines concurrently
// (one per scenario×protocol×seed), which is both faster and deterministic.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in integer nanoseconds since the
// start of the simulation. Integer ticks (rather than float64 seconds) keep
// event ordering exact and runs bit-reproducible across platforms; nanosecond
// resolution preserves sub-microsecond radio propagation delays.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Never is a sentinel Time beyond any simulation horizon.
const Never Time = 1<<63 - 1

// Seconds constructs a Duration from (possibly fractional) seconds.
func Seconds(s float64) Duration { return Duration(s * 1e9) }

// Millis constructs a Duration from (possibly fractional) milliseconds.
func Millis(ms float64) Duration { return Duration(ms * 1e6) }

// Micros constructs a Duration from (possibly fractional) microseconds.
func Micros(us float64) Duration { return Duration(us * 1e3) }

// At constructs a Time from (possibly fractional) seconds.
func At(s float64) Time { return Time(s * 1e9) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Std converts d to a standard-library time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String renders the duration compactly.
func (d Duration) String() string { return d.Std().String() }

// Scale multiplies d by a float factor, rounding toward zero.
func (d Duration) Scale(f float64) Duration { return Duration(float64(d) * f) }
