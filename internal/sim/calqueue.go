package sim

import "sort"

// calQueue is a calendar-queue event queue (R. Brown, "Calendar Queues: A
// Fast O(1) Priority Queue Implementation for the Simulation Event Set
// Problem", CACM 1988). Virtual time is divided into fixed-width "days";
// day d hashes to bucket d & mask, so the bucket array is one "year" of
// width×len(buckets) nanoseconds that wraps indefinitely. A cursor walks
// the current day forward; popping inspects only the current bucket, and
// pushing appends into the target day's bucket — both O(1) amortized once
// the resize policy keeps the population near a few events per bucket.
//
// Two invariants make dispatch order exactly the heap's (and therefore keep
// runs bit-identical, which the engine's golden parity tests enforce):
//
//   - Each bucket is kept sorted descending by eventBefore, so its tail is
//     the bucket minimum and pops are O(1). A day maps to exactly one
//     bucket, hence the tail of the current day's bucket — filtered to
//     events inside the day — is the global minimum.
//   - No queued event is ever earlier than the cursor's day: pops advance
//     monotonically, and a push before the current day start rewinds the
//     cursor to the pushed event's day.
//
// Long empty stretches (a sparse far-future timer population) would make
// the cursor crawl day by day; after scanning a full year without finding
// an in-day event the queue jumps the cursor straight to the earliest
// event's day instead.
type calQueue struct {
	buckets [][]*event
	mask    int      // len(buckets)-1; len is a power of two
	width   Duration // day width in virtual nanoseconds
	n       int      // queued events

	cur      int  // bucket index of the current day
	dayStart Time // inclusive lower bound of the current day
	dayEnd   Time // exclusive upper bound of the current day
	lastAt   Time // lower bound on every queued event (last pop's at)
}

// minCalBuckets keeps the bucket array from collapsing below a useful size;
// 64 buckets cost ~1.5 kB and avoid resize churn for small populations.
const minCalBuckets = 64

func newCalQueue() *calQueue {
	q := &calQueue{width: Millisecond}
	q.setBuckets(minCalBuckets)
	q.seek(0)
	return q
}

func (q *calQueue) setBuckets(nb int) {
	q.buckets = make([][]*event, nb)
	q.mask = nb - 1
}

func (q *calQueue) bucketFor(at Time) int {
	return int(int64(at)/int64(q.width)) & q.mask
}

// seek positions the cursor on the day containing t.
func (q *calQueue) seek(t Time) {
	day := int64(t) / int64(q.width)
	q.cur = int(day) & q.mask
	q.dayStart = Time(day * int64(q.width))
	end := q.dayStart + Time(q.width)
	if end < q.dayStart {
		// Day arithmetic overflows only within one width of Never.
		end = Never
	}
	q.dayEnd = end
}

// advanceDay moves the cursor to the next day.
func (q *calQueue) advanceDay() {
	q.cur = (q.cur + 1) & q.mask
	q.dayStart = q.dayEnd
	end := q.dayEnd + Time(q.width)
	if end < q.dayEnd {
		end = Never
	}
	q.dayEnd = end
}

// insert places ev into its day's bucket, keeping the bucket sorted
// descending by eventBefore (tail = bucket minimum). Binary search rather
// than a linear shift: a burst of same-timestamp events all lands in one
// bucket, and each newcomer (highest seq so far) belongs at the head.
func (q *calQueue) insert(ev *event) {
	idx := q.bucketFor(ev.at)
	b := q.buckets[idx]
	i := sort.Search(len(b), func(i int) bool { return eventBefore(b[i], ev) })
	b = append(b, nil)
	copy(b[i+1:], b[i:])
	b[i] = ev
	q.buckets[idx] = b
}

func (q *calQueue) push(ev *event) {
	if ev.at < q.dayStart {
		// The cursor has moved past this event's day (an out-of-order
		// schedule relative to the last pop's day); rewind so the event
		// cannot be skipped.
		q.seek(ev.at)
	}
	q.insert(ev)
	ev.idx = 0
	q.n++
	if q.n > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// peek advances the cursor to the earliest event's day and returns that
// event (the tail of the current bucket) without removing it.
func (q *calQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	scanned := 0
	for {
		if q.dayEnd == Never {
			// The day arithmetic has saturated (cursor within one width
			// of Never, reachable only through events scheduled there):
			// a saturated day can no longer discriminate buckets, so
			// find the minimum directly and pin the cursor on its day —
			// the global minimum is its own bucket's minimum, i.e. the
			// tail popMin expects.
			ev := q.minEvent()
			q.seek(ev.at)
			return ev
		}
		if b := q.buckets[q.cur]; len(b) > 0 {
			if ev := b[len(b)-1]; ev.at < q.dayEnd {
				return ev
			}
		}
		q.advanceDay()
		if scanned++; scanned > len(q.buckets) {
			// A whole year of empty days: jump to the earliest event.
			q.seek(q.minEvent().at)
			scanned = 0
		}
	}
}

func (q *calQueue) popMin() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	b := q.buckets[q.cur]
	b[len(b)-1] = nil
	q.buckets[q.cur] = b[:len(b)-1]
	q.n--
	q.lastAt = ev.at
	ev.idx = -1
	q.maybeShrink()
	return ev
}

func (q *calQueue) remove(ev *event) {
	idx := q.bucketFor(ev.at)
	b := q.buckets[idx]
	// First index whose element is not after ev; with ev queued that is ev
	// itself (the order is strict: no two events share (at, seq)).
	i := sort.Search(len(b), func(i int) bool { return !eventBefore(ev, b[i]) })
	if i >= len(b) || b[i] != ev {
		panic("sim: calendar queue remove of event not queued")
	}
	copy(b[i:], b[i+1:])
	b[len(b)-1] = nil
	q.buckets[idx] = b[:len(b)-1]
	q.n--
	ev.idx = -1
	q.maybeShrink()
}

func (q *calQueue) size() int { return q.n }

func (q *calQueue) maybeShrink() {
	if nb := len(q.buckets); nb > minCalBuckets && q.n < nb/2 {
		q.resize(nb / 2)
	}
}

// resize rebuilds the calendar with nb buckets and a day width matched to
// the current event population, then rewinds the cursor to lastAt (a lower
// bound on every queued event, so nothing can land behind the cursor).
func (q *calQueue) resize(nb int) {
	if nb < minCalBuckets {
		nb = minCalBuckets
	}
	evs := make([]*event, 0, q.n)
	for i, b := range q.buckets {
		evs = append(evs, b...)
		q.buckets[i] = nil
	}
	q.width = q.spreadWidth(evs)
	q.setBuckets(nb)
	q.seek(q.lastAt)
	for _, ev := range evs {
		q.insert(ev)
	}
}

// spreadWidth picks a day width placing ~3 events per day across the
// population's current timestamp span, the classic calendar-queue sizing
// that keeps both the per-bucket sort depth and the empty-day scan short.
// Degenerate spans (all events on one timestamp) keep the current width —
// bucketing cannot help there, any width is equivalent.
func (q *calQueue) spreadWidth(evs []*event) Duration {
	if len(evs) < 2 {
		return q.width
	}
	lo, hi := evs[0].at, evs[0].at
	for _, ev := range evs[1:] {
		if ev.at < lo {
			lo = ev.at
		}
		if ev.at > hi {
			hi = ev.at
		}
	}
	w := Duration(int64(hi-lo) / int64(len(evs)) * 3)
	if w <= 0 {
		return q.width
	}
	return w
}

// minEvent scans every bucket tail for the global minimum (only used to
// re-aim the cursor across long empty stretches; each tail is its bucket's
// minimum, so the scan is O(buckets)).
func (q *calQueue) minEvent() *event {
	var best *event
	for _, b := range q.buckets {
		if len(b) == 0 {
			continue
		}
		if ev := b[len(b)-1]; best == nil || eventBefore(ev, best) {
			best = ev
		}
	}
	return best
}
