package sim

import "math/rand"

// RNG is a deterministic random stream. Each subsystem of a run gets its own
// forked substream so that, e.g., adding one extra MAC backoff draw does not
// perturb the mobility pattern of an otherwise identical scenario.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a stream from a 64-bit seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(mix(seed)))}
}

// mix applies a splitmix64 finalizer so that small consecutive seeds (0,1,2…)
// yield well-separated streams.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Fork derives an independent substream labelled by id. Forks of the same
// (seed, id) pair are identical; different ids are effectively independent.
func (g *RNG) Fork(id int64) *RNG {
	return NewRNG(int64(g.r.Uint64()>>1) ^ mix(id))
}

// fnvLabel hashes a string label (FNV-1a) for substream forking and seed
// derivation. Both users must keep sharing it: the constants are part of
// the cross-process determinism contract.
func fnvLabel(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}

// ForkNamed derives a substream from a string label (hashing the label).
func (g *RNG) ForkNamed(name string) *RNG {
	return g.Fork(fnvLabel(name))
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform draw in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform integer in [0,n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Normal returns a normal draw with the given mean and stddev.
func (g *RNG) Normal(mean, sd float64) float64 { return g.r.NormFloat64()*sd + mean }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// DurationUniform returns a uniform Duration in [lo,hi).
func (g *RNG) DurationUniform(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(g.r.Int63n(int64(hi-lo)))
}

// Jitter returns a uniform Duration in [0,max).
func (g *RNG) Jitter(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(g.r.Int63n(int64(max)))
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
