package sim

import (
	"math/rand"
	"testing"
)

// TestEngineRandomizedOrdering schedules thousands of events in random
// order, with random cancellations and nested scheduling, and asserts
// global timestamp-order dispatch.
func TestEngineRandomizedOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		var fired []Time
		var handles []Handle
		for i := 0; i < 2000; i++ {
			at := Time(r.Int63n(int64(Seconds(100))))
			at2 := at
			h := e.Schedule(at, func() {
				fired = append(fired, at2)
				if r.Intn(4) == 0 {
					// Nested event strictly in the future.
					nat := at2 + Time(1+r.Int63n(int64(Seconds(1))))
					e.Schedule(nat, func() { fired = append(fired, nat) })
				}
			})
			handles = append(handles, h)
		}
		// Cancel a random 10%.
		for i := 0; i < 200; i++ {
			e.Cancel(handles[r.Intn(len(handles))])
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("trial %d: out-of-order dispatch at %d: %v after %v",
					trial, i, fired[i], fired[i-1])
			}
		}
		if len(fired) < 1800 {
			t.Fatalf("trial %d: only %d events fired", trial, len(fired))
		}
	}
}

// TestEngineManyTimers exercises heavy Reset/Stop churn (protocol-style
// usage) without leaks: after everything settles the queue must be empty.
func TestEngineManyTimers(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(3))
	timers := make([]*Timer, 50)
	firings := 0
	for i := range timers {
		timers[i] = NewTimer(e, func() { firings++ })
	}
	for round := 0; round < 200; round++ {
		at := Time(r.Int63n(int64(Seconds(10))))
		e.Schedule(at, func() {
			tm := timers[r.Intn(len(timers))]
			switch r.Intn(3) {
			case 0:
				tm.Reset(Duration(r.Int63n(int64(Second))))
			case 1:
				tm.Stop()
			case 2:
				tm.Reset(Duration(r.Int63n(int64(Second))))
				tm.Reset(Duration(r.Int63n(int64(Second))))
			}
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("queue leaked %d events", e.Len())
	}
	if firings == 0 {
		t.Fatal("no timer ever fired")
	}
}
