package metrics

import "sort"

// SketchSink routes samples of selected kinds into per-kind quantile
// sketches. Kinds not selected are ignored at the cost of one array load.
type SketchSink struct {
	sketches [NumKinds]*Sketch
}

// NewSketchSink creates a sink sketching the given kinds with compression δ.
func NewSketchSink(compression float64, kinds ...Kind) *SketchSink {
	s := &SketchSink{}
	for _, k := range kinds {
		s.sketches[k] = NewSketch(compression)
	}
	return s
}

// Record implements Sink.
func (s *SketchSink) Record(sm Sample) {
	if sk := s.sketches[sm.Kind]; sk != nil {
		sk.Add(sm.Value)
	}
}

// Sketch returns the sketch for a kind (nil when the kind isn't tracked).
func (s *SketchSink) Sketch(k Kind) *Sketch { return s.sketches[k] }

// States snapshots every tracked sketch, keyed by kind name.
func (s *SketchSink) States() map[string]SketchState {
	out := make(map[string]SketchState)
	for k, sk := range s.sketches {
		if sk != nil {
			out[Kind(k).String()] = sk.State()
		}
	}
	return out
}

// RunStreams is the serialized stream digest of one run: the per-kind
// quantile sketches and the bucketed time series. It travels inside
// stats.Results through the campaign journal, the distributed commit
// protocol, and the result cache, and round-trips JSON bit-exactly.
type RunStreams struct {
	Sketches map[string]SketchState `json:"sketches,omitempty"`
	Series   *SeriesState           `json:"series,omitempty"`
}

// SketchedKinds is the kind set the campaign pipeline sketches: the
// distribution-valued metrics (per-packet delay and hop count). Counter-like
// kinds are covered by the time series instead.
var SketchedKinds = []Kind{Delay, Hops}

// Quantiles materializes the standard percentile set for every sketch in the
// digest, keyed by kind name. Returns nil when there are no sketches, so
// results stay reflect.DeepEqual-stable through JSON round-trips.
func (r *RunStreams) Quantiles() map[string]QuantileSummary {
	if r == nil || len(r.Sketches) == 0 {
		return nil
	}
	out := make(map[string]QuantileSummary, len(r.Sketches))
	names := make([]string, 0, len(r.Sketches))
	for name := range r.Sketches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out[name] = FromState(r.Sketches[name]).Summary()
	}
	return out
}
