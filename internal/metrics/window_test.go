package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"adhocsim/internal/sim"
)

func TestKindNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
		got, err := KindByName(name)
		if err != nil || got != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v", name, got, err, k)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Fatal("KindByName must reject unknown names")
	}
}

func TestWindowBucketing(t *testing.T) {
	w := NewWindow(60*sim.Second, 6) // 10 s buckets
	w.Record(Sample{At: 0, Kind: Delivered, Value: 512})
	w.Record(Sample{At: sim.Time(9 * sim.Second), Kind: Delivered, Value: 512})
	w.Record(Sample{At: sim.Time(10 * sim.Second), Kind: Delivered, Value: 512})
	w.Record(Sample{At: sim.Time(59 * sim.Second), Kind: Delay, Value: 0.25})
	w.Record(Sample{At: sim.Time(60 * sim.Second), Kind: Delay, Value: 0.75}) // clamps into last bucket
	st := w.State()
	if st.BucketS != 10 {
		t.Fatalf("BucketS = %v, want 10", st.BucketS)
	}
	if got := st.Counts[Delivered.String()]; !reflect.DeepEqual(got, []float64{2, 1, 0, 0, 0, 0}) {
		t.Fatalf("delivered counts = %v", got)
	}
	if got := st.Sums[Delivered.String()]; got[0] != 1024 || got[1] != 512 {
		t.Fatalf("delivered sums = %v", got)
	}
	if got := st.Counts[Delay.String()]; got[5] != 2 {
		t.Fatalf("delay must clamp into last bucket: %v", got)
	}
	if got := st.Sums[Delay.String()]; got[5] != 1.0 {
		t.Fatalf("delay sums = %v", got)
	}
	// Every kind is present with uniform geometry.
	for k := Kind(0); k < NumKinds; k++ {
		if len(st.Counts[k.String()]) != 6 || len(st.Sums[k.String()]) != 6 {
			t.Fatalf("kind %v missing uniform buckets", k)
		}
	}
}

func TestSeriesStateMergeAndRoundTrip(t *testing.T) {
	mk := func(v float64) *SeriesState {
		w := NewWindow(30*sim.Second, 3)
		w.Record(Sample{At: sim.Time(5 * sim.Second), Kind: Originated, Value: v})
		return w.State()
	}
	a, b := mk(1), mk(1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Counts[Originated.String()][0]; got != 2 {
		t.Fatalf("merged count = %v, want 2", got)
	}
	// Geometry mismatch is rejected without mutation.
	w2 := NewWindow(30*sim.Second, 5)
	before := a.Clone()
	if err := a.Merge(w2.State()); err == nil {
		t.Fatal("geometry mismatch must error")
	}
	if !reflect.DeepEqual(a, before) {
		t.Fatal("failed merge must not mutate the receiver")
	}
	// JSON round-trip is exact.
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var rt SeriesState
	if err := json.Unmarshal(blob, &rt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&rt, a) {
		t.Fatal("series state must survive a JSON round-trip exactly")
	}
}

func TestSketchSinkRoutesKinds(t *testing.T) {
	s := NewSketchSink(DefaultCompression, Delay, Hops)
	s.Record(Sample{Kind: Delay, Value: 0.5})
	s.Record(Sample{Kind: Hops, Value: 3})
	s.Record(Sample{Kind: RoutingTx, Value: 64}) // not tracked
	if got := s.Sketch(Delay).Count(); got != 1 {
		t.Fatalf("delay count = %v", got)
	}
	if s.Sketch(RoutingTx) != nil {
		t.Fatal("untracked kind must have nil sketch")
	}
	states := s.States()
	if len(states) != 2 {
		t.Fatalf("States() = %v keys, want 2", len(states))
	}
	rs := &RunStreams{Sketches: states}
	qs := rs.Quantiles()
	if qs[Delay.String()].P50 != 0.5 || qs[Hops.String()].Count != 1 {
		t.Fatalf("Quantiles() = %+v", qs)
	}
	if (&RunStreams{}).Quantiles() != nil {
		t.Fatal("empty RunStreams must yield nil quantiles")
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLWriter(&buf)
	j.Record(Sample{At: sim.Time(1500 * sim.Millisecond), Kind: Delay, Value: 0.015625})
	j.Record(Sample{At: sim.Time(2 * sim.Second), Kind: Dropped, Value: 1})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	var rec struct {
		T    float64 `json:"t_s"`
		Kind string  `json:"kind"`
		V    float64 `json:"v"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if rec.T != 1.5 || rec.Kind != "delay" || rec.V != 0.015625 {
		t.Fatalf("decoded %+v", rec)
	}
}

func TestCaptureAndMultiSink(t *testing.T) {
	var a, b Capture
	m := MultiSink{&a, &b}
	m.Record(Sample{Kind: Originated, Value: 1})
	if len(a.Samples) != 1 || len(b.Samples) != 1 {
		t.Fatal("MultiSink must fan out to every sink")
	}
}
