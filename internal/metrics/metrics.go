// Package metrics turns stats collection into an event stream: the network
// layer emits typed Samples (one per delivery, drop, transmission, …) and
// pluggable Sinks consume them online. Sinks are bounded-memory by design —
// a quantile sketch (Sketch/SketchSink), a fixed-bucket time series (Window),
// and a JSONL dump (JSONLWriter) — so 10k-node runs stay observable without
// keeping full traces. All sinks are deterministic: feeding the same samples
// in the same order reproduces bit-identical state.
package metrics

import (
	"fmt"

	"adhocsim/internal/sim"
)

// Kind labels what a Sample measures and what its Value means.
type Kind uint8

// The sample taxonomy. MAC control frames are only available in aggregate at
// run end, so they have no per-sample kind; everything else that feeds
// stats.Results has one.
const (
	// Originated: an application packet handed to the network layer. Value 1.
	Originated Kind = iota
	// Delivered: a packet reached its destination sink (duplicates excluded).
	// Value is the payload size in bytes, so per-bucket sums give throughput
	// and per-bucket counts give delivery rate.
	Delivered
	// Delay: end-to-end delay of a delivered packet, seconds.
	Delay
	// Hops: hop count of a delivered packet.
	Hops
	// RoutingTx: one transmission (one hop) of a routing packet. Value is the
	// packet size in bytes.
	RoutingTx
	// DataTx: one transmission (one hop) of a data packet. Value is the
	// packet size in bytes.
	DataTx
	// Dropped: a packet died. Value 1.
	Dropped
	// Join: a node joined or recovered into the membership (lifecycle
	// event). Value 1.
	Join
	// Leave: a node left or failed out of the membership. Value 1.
	Leave

	// NumKinds bounds the Kind space; valid kinds are 0..NumKinds-1.
	NumKinds
)

var kindNames = [NumKinds]string{
	Originated: "originated",
	Delivered:  "delivered",
	Delay:      "delay",
	Hops:       "hops",
	RoutingTx:  "routing_tx",
	DataTx:     "data_tx",
	Dropped:    "dropped",
	Join:       "join",
	Leave:      "leave",
}

// String returns the stable wire name of the kind (used as JSON map keys).
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName resolves a wire name back to its Kind.
func KindByName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("metrics: unknown kind %q", name)
}

// Sample is one typed metric observation at a point in virtual time.
type Sample struct {
	At    sim.Time
	Kind  Kind
	Value float64
}

// Sink consumes the sample stream of one run. Record is called on the
// simulation hot path and must not retain the sample past the call; sinks
// that buffer should keep allocation amortized (the large-N allocation
// budget test runs with every sink attached). Sinks are single-goroutine,
// like the Engine that feeds them.
type Sink interface {
	Record(s Sample)
}

// Capture is a Sink that appends every sample to a slice, for tests and
// replay comparisons. Unlike the production sinks its memory is unbounded —
// do not attach it to large runs.
type Capture struct {
	Samples []Sample
}

// Record appends the sample.
func (c *Capture) Record(s Sample) { c.Samples = append(c.Samples, s) }

// MultiSink fans one stream out to several sinks in order.
type MultiSink []Sink

// Record forwards the sample to each sink in order.
func (m MultiSink) Record(s Sample) {
	for _, sk := range m {
		sk.Record(s)
	}
}
