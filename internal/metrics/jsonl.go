package metrics

import (
	"bufio"
	"io"
	"strconv"
)

// JSONLWriter is a Sink that dumps the raw sample stream as one JSON object
// per line: {"t_s":<sim seconds>,"kind":"<name>","v":<value>}. Lines are
// hand-encoded into a reused buffer, so the hot path does not allocate.
// Errors are sticky; check Flush at end of run.
type JSONLWriter struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL sample sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, 96)}
}

// Record implements Sink.
func (j *JSONLWriter) Record(s Sample) {
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"t_s":`...)
	b = strconv.AppendFloat(b, s.At.Seconds(), 'g', -1, 64)
	b = append(b, `,"kind":"`...)
	b = append(b, s.Kind.String()...)
	b = append(b, `","v":`...)
	b = strconv.AppendFloat(b, s.Value, 'g', -1, 64)
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first write error, if any.
func (j *JSONLWriter) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}
