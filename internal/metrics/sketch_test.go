package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile is the reference: nearest-rank with interpolation disabled
// is too coarse for comparison, so use the same definition the sketch
// targets (linear interpolation over the empirical CDF).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

func TestSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 0.05 }}, // delay-like skew
		{"bimodal", func() float64 {
			if rng.Intn(10) == 0 {
				return 1 + rng.Float64()
			}
			return 0.01 * rng.Float64()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 200_000
			s := NewSketch(DefaultCompression)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = tc.gen()
				s.Add(xs[i])
			}
			sort.Float64s(xs)
			for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
				got := s.Quantile(q)
				// Rank error: where does the estimate fall in the true CDF?
				rank := float64(sort.SearchFloat64s(xs, got)) / n
				if d := math.Abs(rank - q); d > 0.01 {
					t.Errorf("q=%v: estimate %v has true rank %v (rank error %v)", q, got, rank, d)
				}
			}
			if got, want := s.Min(), xs[0]; got != want {
				t.Errorf("Min = %v, want %v", got, want)
			}
			if got, want := s.Max(), xs[n-1]; got != want {
				t.Errorf("Max = %v, want %v", got, want)
			}
			if got, want := s.Count(), float64(n); got != want {
				t.Errorf("Count = %v, want %v", got, want)
			}
		})
	}
}

func TestSketchBoundedCentroids(t *testing.T) {
	// 5M samples ≈ the sample volume of a 10k-node city run; memory must
	// stay at the fixed centroid cap regardless.
	rng := rand.New(rand.NewSource(3))
	s := NewSketch(DefaultCompression)
	for i := 0; i < 5_000_000; i++ {
		s.Add(rng.ExpFloat64())
	}
	if got, limit := s.Centroids(), s.MaxCentroids(); got > limit {
		t.Fatalf("centroids = %d, exceeds cap %d", got, limit)
	}
	if c := s.Centroids(); c > 2*DefaultCompression {
		t.Fatalf("centroids = %d, want ≤ 2δ = %d", c, 2*DefaultCompression)
	}
	// Buffer and centroid storage never grow past their initial capacity.
	if cap(s.buf) != 4*DefaultCompression {
		t.Errorf("buffer capacity grew to %d", cap(s.buf))
	}
}

func TestSketchDeterminismAndJSONRoundTrip(t *testing.T) {
	feed := func() *Sketch {
		rng := rand.New(rand.NewSource(11))
		s := NewSketch(DefaultCompression)
		for i := 0; i < 50_000; i++ {
			s.Add(rng.ExpFloat64() * 0.01)
		}
		return s
	}
	a, b := feed(), feed()
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatal("same input order must produce bit-identical state")
	}
	// JSON round-trip is exact.
	blob, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st SketchState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, a.State()) {
		t.Fatal("sketch state must survive a JSON round-trip bit-exactly")
	}
	// Reconstruction is exact: quantiles agree bit-for-bit.
	r := FromState(st)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got, want := r.Quantile(q), a.Quantile(q); got != want {
			t.Errorf("Quantile(%v): reconstructed %v != original %v", q, got, want)
		}
	}
}

func TestSketchMergeDeterministicInOrder(t *testing.T) {
	part := func(seed int64) SketchState {
		rng := rand.New(rand.NewSource(seed))
		s := NewSketch(DefaultCompression)
		for i := 0; i < 20_000; i++ {
			s.Add(rng.Float64())
		}
		return s.State()
	}
	parts := []SketchState{part(1), part(2), part(3), part(4)}

	fold := func() SketchState {
		acc := FromState(parts[0])
		for _, p := range parts[1:] {
			acc.MergeState(p)
		}
		return acc.State()
	}
	first, second := fold(), fold()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("in-order merge must be deterministic")
	}
	// Merged sketch still answers quantiles sensibly over the union.
	m := FromState(first)
	if m.Count() != 80_000 {
		t.Fatalf("merged count = %v, want 80000", m.Count())
	}
	if p50 := m.Quantile(0.5); math.Abs(p50-0.5) > 0.02 {
		t.Errorf("merged p50 = %v, want ≈0.5", p50)
	}
	if m.Centroids() > m.MaxCentroids() {
		t.Errorf("merged centroids %d exceed cap %d", m.Centroids(), m.MaxCentroids())
	}
	// A resume that rebuilds from serialized state mid-fold lands on the
	// same bits as the uninterrupted fold.
	acc := FromState(parts[0])
	acc.MergeState(parts[1])
	resumed := FromState(acc.State())
	resumed.MergeState(parts[2])
	resumed.MergeState(parts[3])
	if !reflect.DeepEqual(resumed.State(), first) {
		t.Fatal("fold resumed from serialized state must match uninterrupted fold")
	}
}

func TestSketchEmptyAndSingleton(t *testing.T) {
	s := NewSketch(DefaultCompression)
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	st := s.State()
	if st.Means != nil || st.Weights != nil {
		t.Fatal("empty state must keep nil slices for DeepEqual-through-JSON")
	}
	s.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("singleton Quantile(%v) = %v, want 42", q, got)
		}
	}
	// Merging an empty sketch is a no-op on state.
	before := s.State()
	s.Merge(NewSketch(DefaultCompression))
	s.MergeState(SketchState{Compression: DefaultCompression})
	if !reflect.DeepEqual(s.State(), before) {
		t.Fatal("merging empty sketches must not change state")
	}
	// Merging into an empty sketch adopts the other side.
	e := NewSketch(DefaultCompression)
	e.MergeState(before)
	if e.Quantile(0.5) != 42 || e.Count() != 1 {
		t.Fatal("merge into empty sketch must adopt the source")
	}
}

func TestQuantileSummary(t *testing.T) {
	s := NewSketch(DefaultCompression)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summary()
	if sum.Count != 1000 || sum.Min != 1 || sum.Max != 1000 {
		t.Fatalf("summary bounds wrong: %+v", sum)
	}
	if !(sum.P50 <= sum.P90 && sum.P90 <= sum.P95 && sum.P95 <= sum.P99) {
		t.Fatalf("percentiles not monotone: %+v", sum)
	}
	if math.Abs(sum.P50-500) > 15 || math.Abs(sum.P99-990) > 10 {
		t.Fatalf("percentiles off: %+v", sum)
	}
}
