package metrics

import (
	"fmt"

	"adhocsim/internal/sim"
)

// DefaultSeriesBuckets is the time-series resolution used by the campaign
// pipeline: one run's horizon is split into at most this many fixed
// sim-time buckets.
const DefaultSeriesBuckets = 60

// Window is a Sink that accumulates the sample stream into fixed sim-time
// buckets: per bucket and per kind it keeps the sample count and the value
// sum, so delivered counts/bytes, mean delay, and drop rates can be plotted
// over a run without a trace. Memory is O(buckets × kinds), independent of
// node count and run length.
//
// Bucketing is integer math on sim.Time, so it is exactly deterministic.
type Window struct {
	width   sim.Duration
	buckets int
	counts  [NumKinds][]float64
	sums    [NumKinds][]float64
}

// NewWindow creates a window covering [0, horizon) with at most maxBuckets
// buckets. Samples at or beyond the horizon clamp into the last bucket.
func NewWindow(horizon sim.Duration, maxBuckets int) *Window {
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	width := horizon / sim.Duration(maxBuckets)
	if width <= 0 {
		width = 1
	}
	buckets := int((horizon + width - 1) / width)
	if buckets < 1 {
		buckets = 1
	}
	if buckets > maxBuckets {
		buckets = maxBuckets
	}
	w := &Window{width: width, buckets: buckets}
	for k := range w.counts {
		w.counts[k] = make([]float64, buckets)
		w.sums[k] = make([]float64, buckets)
	}
	return w
}

// Record implements Sink.
func (w *Window) Record(s Sample) {
	i := int(sim.Duration(s.At) / w.width)
	if i >= w.buckets {
		i = w.buckets - 1
	}
	if i < 0 {
		i = 0
	}
	w.counts[s.Kind][i]++
	w.sums[s.Kind][i] += s.Value
}

// SeriesState is the serialized form of a Window: per-kind per-bucket sample
// counts and value sums. Counts and sums always carry every kind (uniform
// keys), so states from runs of the same spec merge bucket-wise.
type SeriesState struct {
	// BucketS is the bucket width in seconds.
	BucketS float64 `json:"bucket_s"`
	// Counts maps kind name to per-bucket sample counts.
	Counts map[string][]float64 `json:"counts"`
	// Sums maps kind name to per-bucket value sums (bytes for delivered and
	// transmissions, seconds for delay, sample counts for unit-valued kinds).
	Sums map[string][]float64 `json:"sums"`
}

// State snapshots the window. Slices are copies; later Records don't alias.
func (w *Window) State() *SeriesState {
	st := &SeriesState{
		BucketS: w.width.Seconds(),
		Counts:  make(map[string][]float64, NumKinds),
		Sums:    make(map[string][]float64, NumKinds),
	}
	for k := Kind(0); k < NumKinds; k++ {
		st.Counts[k.String()] = append([]float64(nil), w.counts[k]...)
		st.Sums[k.String()] = append([]float64(nil), w.sums[k]...)
	}
	return st
}

// Merge adds o's buckets into s element-wise. Both states must come from
// windows of identical geometry (same spec → same horizon and bucket count);
// a mismatch is an error and leaves s unchanged.
func (s *SeriesState) Merge(o *SeriesState) error {
	if o == nil {
		return nil
	}
	if s.BucketS != o.BucketS {
		return fmt.Errorf("metrics: series bucket width mismatch: %v vs %v", s.BucketS, o.BucketS)
	}
	for name, ob := range o.Counts {
		if sb, ok := s.Counts[name]; !ok || len(sb) != len(ob) {
			return fmt.Errorf("metrics: series geometry mismatch for %q", name)
		}
	}
	for name, ob := range o.Sums {
		if sb, ok := s.Sums[name]; !ok || len(sb) != len(ob) {
			return fmt.Errorf("metrics: series geometry mismatch for %q", name)
		}
	}
	for name, ob := range o.Counts {
		sb := s.Counts[name]
		for i := range ob {
			sb[i] += ob[i]
		}
	}
	for name, ob := range o.Sums {
		sb := s.Sums[name]
		for i := range ob {
			sb[i] += ob[i]
		}
	}
	return nil
}

// Clone deep-copies the state (nil stays nil).
func (s *SeriesState) Clone() *SeriesState {
	if s == nil {
		return nil
	}
	out := &SeriesState{
		BucketS: s.BucketS,
		Counts:  make(map[string][]float64, len(s.Counts)),
		Sums:    make(map[string][]float64, len(s.Sums)),
	}
	for k, v := range s.Counts {
		out.Counts[k] = append([]float64(nil), v...)
	}
	for k, v := range s.Sums {
		out.Sums[k] = append([]float64(nil), v...)
	}
	return out
}
