package metrics

import (
	"math"
	"sort"
)

// DefaultCompression is the sketch compression δ used by the campaign
// pipeline. It bounds centroid count (and so memory and serialized size)
// while keeping tail quantiles (p95/p99) accurate to a fraction of a
// percentile on the skewed delay distributions interference scenes produce.
const DefaultCompression = 100

// Sketch is a merging t-digest: an online quantile summary with bounded
// memory. Incoming values buffer until the buffer fills, then a single
// merge pass folds them into a sorted centroid list whose resolution follows
// the k₁ scale function k(q) = δ/(2π)·asin(2q−1) — fine near the tails,
// coarse in the middle — so the centroid count stays below ~δ regardless of
// how many values are added.
//
// Determinism: every operation is a fixed sequence of float64 ops over
// deterministic state. Compression sorts the buffer (sort.Float64s) and
// merges with a stable tie-break (existing centroids before new values, left
// list before right on Merge), so the same values in the same order — and
// the same Merge call order — reproduce bit-identical centroids. State
// survives a JSON round-trip exactly (encoding/json emits shortest
// round-trippable float64s), which the campaign journal and the distributed
// result cache rely on for reflect.DeepEqual checkpoint equivalence.
type Sketch struct {
	compression float64
	count       float64 // total weight incl. buffered values
	min, max    float64

	means   []float64 // centroid means, sorted ascending
	weights []float64 // centroid weights, parallel to means

	buf []float64 // values not yet folded into centroids

	scratchM, scratchW []float64 // reused by compress to avoid per-pass allocation
}

// NewSketch creates a sketch with compression δ (centroid budget ~δ).
// Compressions below 20 are raised to 20.
func NewSketch(compression float64) *Sketch {
	if compression < 20 {
		compression = 20
	}
	bufCap := 4 * int(compression)
	centCap := int(2*compression) + 8
	return &Sketch{
		compression: compression,
		means:       make([]float64, 0, centCap),
		weights:     make([]float64, 0, centCap),
		buf:         make([]float64, 0, bufCap),
	}
}

// Add feeds one value. Amortized allocation-free: values buffer in place and
// compress reuses scratch storage.
func (s *Sketch) Add(x float64) {
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	s.buf = append(s.buf, x)
	if len(s.buf) == cap(s.buf) {
		s.compress()
	}
}

// Record implements Sink for single-kind streams; it adds the sample value.
func (s *Sketch) Record(sm Sample) { s.Add(sm.Value) }

// Count returns the total number of values (sum of weights).
func (s *Sketch) Count() float64 { return s.count }

// Min returns the smallest value seen (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest value seen (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Centroids returns the current centroid count (after folding the buffer).
func (s *Sketch) Centroids() int {
	s.compress()
	return len(s.means)
}

// MaxCentroids is the hard bound on Centroids() for this sketch's
// compression: the merge pass cannot emit more than 2δ+8 centroids.
func (s *Sketch) MaxCentroids() int { return int(2*s.compression) + 8 }

// k is the k₁ scale function mapping quantile to centroid index space.
func (s *Sketch) k(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return s.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// kInv inverts k, clamping to [0,1].
func (s *Sketch) kInv(k float64) float64 {
	a := 2 * math.Pi * k / s.compression
	if a <= -math.Pi/2 {
		return 0
	}
	if a >= math.Pi/2 {
		return 1
	}
	return (math.Sin(a) + 1) / 2
}

// compress folds buffered values into the centroid list.
func (s *Sketch) compress() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	// Two-pointer merge of the sorted centroid list with the sorted buffer
	// (buffered values become weight-1 centroids; ties keep existing
	// centroids first).
	mm, mw := s.scratchM[:0], s.scratchW[:0]
	i, j := 0, 0
	for i < len(s.means) || j < len(s.buf) {
		if j >= len(s.buf) || (i < len(s.means) && s.means[i] <= s.buf[j]) {
			mm = append(mm, s.means[i])
			mw = append(mw, s.weights[i])
			i++
		} else {
			mm = append(mm, s.buf[j])
			mw = append(mw, 1)
			j++
		}
	}
	s.means, s.weights = s.mergePass(mm, mw, s.means[:0], s.weights[:0])
	s.scratchM, s.scratchW = mm[:0], mw[:0]
	s.buf = s.buf[:0]
}

// mergePass runs the greedy t-digest merge over a sorted centroid list,
// appending the result to outM/outW (which must be empty, possibly sharing
// no storage with ms/ws).
func (s *Sketch) mergePass(ms, ws, outM, outW []float64) ([]float64, []float64) {
	var total float64
	for _, w := range ws {
		total += w
	}
	var wSoFar float64
	curM, curW := ms[0], ws[0]
	qLimit := s.kInv(s.k(0) + 1)
	for idx := 1; idx < len(ms); idx++ {
		q := (wSoFar + curW + ws[idx]) / total
		if q <= qLimit {
			curW += ws[idx]
			curM += ws[idx] * (ms[idx] - curM) / curW
		} else {
			outM = append(outM, curM)
			outW = append(outW, curW)
			wSoFar += curW
			qLimit = s.kInv(s.k(wSoFar/total) + 1)
			curM, curW = ms[idx], ws[idx]
		}
	}
	outM = append(outM, curM)
	outW = append(outW, curW)
	return outM, outW
}

// Merge folds o into s. The merge is deterministic in call order: both
// sketches are compressed, the centroid lists are interleaved by mean (ties
// keep s's centroids first), and one merge pass re-compresses. o is
// compressed but otherwise unchanged.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	o.compress()
	if o.count == 0 {
		return
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.count += o.count
	s.compress()
	// Two-pointer interleave of the two sorted centroid lists, s's centroids
	// first on ties.
	n := len(s.means) + len(o.means)
	mm, mw := make([]float64, 0, n), make([]float64, 0, n)
	i, j := 0, 0
	for i < len(s.means) || j < len(o.means) {
		if j >= len(o.means) || (i < len(s.means) && s.means[i] <= o.means[j]) {
			mm = append(mm, s.means[i])
			mw = append(mw, s.weights[i])
			i++
		} else {
			mm = append(mm, o.means[j])
			mw = append(mw, o.weights[j])
			j++
		}
	}
	s.means, s.weights = s.mergePass(mm, mw, s.means[:0], s.weights[:0])
}

// Quantile returns the q-quantile estimate (q in [0,1]) with linear
// interpolation between centroid centers, clamped to [Min, Max]. Empty
// sketches return 0.
func (s *Sketch) Quantile(q float64) float64 {
	s.compress()
	n := len(s.means)
	if n == 0 {
		return 0
	}
	if q <= 0 || s.count == 1 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	idx := q * s.count
	var cum float64
	for i := 0; i < n; i++ {
		center := cum + s.weights[i]/2
		if idx < center {
			if i == 0 {
				t := idx / center
				return s.min + t*(s.means[0]-s.min)
			}
			prev := cum - s.weights[i-1]/2
			t := (idx - prev) / (center - prev)
			return s.means[i-1] + t*(s.means[i]-s.means[i-1])
		}
		cum += s.weights[i]
	}
	last := cum - s.weights[n-1]/2
	t := (idx - last) / (s.count - last)
	if t > 1 {
		t = 1
	}
	return s.means[n-1] + t*(s.max-s.means[n-1])
}

// SketchState is the serialized form of a Sketch. All fields round-trip
// through encoding/json bit-exactly (weights are integer-valued counts well
// below 2⁵³).
type SketchState struct {
	Compression float64   `json:"compression"`
	Count       float64   `json:"count"`
	Min         float64   `json:"min,omitempty"`
	Max         float64   `json:"max,omitempty"`
	Means       []float64 `json:"means,omitempty"`
	Weights     []float64 `json:"weights,omitempty"`
}

// State compresses the sketch and snapshots it. The returned slices are
// copies (nil when the sketch is empty) so later Adds don't alias.
func (s *Sketch) State() SketchState {
	s.compress()
	st := SketchState{Compression: s.compression, Count: s.count}
	if s.count > 0 {
		st.Min, st.Max = s.min, s.max
	}
	if len(s.means) > 0 {
		st.Means = append([]float64(nil), s.means...)
		st.Weights = append([]float64(nil), s.weights...)
	}
	return st
}

// FromState reconstructs a sketch from a snapshot. The reconstruction is
// exact: quantiles and subsequent merges behave identically to the original.
func FromState(st SketchState) *Sketch {
	s := NewSketch(st.Compression)
	s.count = st.Count
	if st.Count > 0 {
		s.min, s.max = st.Min, st.Max
	}
	s.means = append(s.means, st.Means...)
	s.weights = append(s.weights, st.Weights...)
	return s
}

// MergeState folds a serialized sketch into s, equivalent to
// s.Merge(FromState(st)).
func (s *Sketch) MergeState(st SketchState) { s.Merge(FromState(st)) }

// QuantileSummary is the fixed percentile set served in campaign results.
type QuantileSummary struct {
	Count float64 `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary materializes the standard percentile set from the sketch.
func (s *Sketch) Summary() QuantileSummary {
	return QuantileSummary{
		Count: s.Count(),
		Min:   s.Min(),
		Max:   s.Max(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}
