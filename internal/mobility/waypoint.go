package mobility

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// RandomWaypoint is the classic model of Broch et al. 1998: each node starts
// at a uniform random position, waits Pause seconds, picks a uniform random
// destination and a uniform random speed in [MinSpeed, MaxSpeed], travels
// there in a straight line, and repeats.
type RandomWaypoint struct {
	Area     geo.Rect
	MinSpeed float64 // m/s; CMU setdest uses >0 to avoid the speed-decay pathology
	MaxSpeed float64 // m/s
	Pause    sim.Duration
}

// Generate produces n tracks covering [0, horizon].
func (m RandomWaypoint) Generate(n int, horizon sim.Duration, rng *sim.RNG) ([]*Track, error) {
	if m.MaxSpeed < m.MinSpeed || m.MinSpeed < 0 {
		return nil, fmt.Errorf("mobility: bad speed range [%v,%v]", m.MinSpeed, m.MaxSpeed)
	}
	if m.Area.W <= 0 || m.Area.H <= 0 {
		return nil, fmt.Errorf("mobility: degenerate area %+v", m.Area)
	}
	tracks := make([]*Track, n)
	for i := 0; i < n; i++ {
		tracks[i] = m.generateOne(horizon, rng)
	}
	return tracks, nil
}

func (m RandomWaypoint) randPoint(rng *sim.RNG) geo.Point {
	return geo.Pt(rng.Uniform(0, m.Area.W), rng.Uniform(0, m.Area.H))
}

func (m RandomWaypoint) generateOne(horizon sim.Duration, rng *sim.RNG) *Track {
	var segs []Segment
	pos := m.randPoint(rng)
	t := sim.Time(0)
	end := sim.Time(0).Add(horizon)
	for t <= end {
		// Pause phase (also models MaxSpeed==0 as "static forever").
		if m.Pause > 0 || m.MaxSpeed == 0 {
			segs = append(segs, Segment{Start: t, From: pos, To: pos, Speed: 0})
			if m.MaxSpeed == 0 {
				break
			}
			t = t.Add(m.Pause)
			if t > end {
				break
			}
		}
		dst := m.randPoint(rng)
		speed := rng.Uniform(m.MinSpeed, m.MaxSpeed)
		if speed <= 0 {
			speed = m.MaxSpeed // MinSpeed==MaxSpeed==v>0 or guard against 0
		}
		if speed == 0 {
			break
		}
		segs = append(segs, Segment{Start: t, From: pos, To: dst, Speed: speed})
		travel := sim.Seconds(pos.Dist(dst) / speed)
		if travel <= 0 {
			travel = sim.Microsecond
		}
		t = t.Add(travel)
		pos = dst
	}
	if len(segs) == 0 {
		segs = append(segs, Segment{Start: 0, From: pos, To: pos, Speed: 0})
	}
	return MustTrack(segs)
}

// RandomWalk is a simple alternative model: each node repeatedly picks a
// uniform random direction and walks for Step seconds at a uniform speed,
// reflecting off the area boundary. Useful for sensitivity studies.
type RandomWalk struct {
	Area     geo.Rect
	MinSpeed float64
	MaxSpeed float64
	Step     sim.Duration // duration of each leg
}

// Generate produces n random-walk tracks covering [0, horizon].
func (m RandomWalk) Generate(n int, horizon sim.Duration, rng *sim.RNG) ([]*Track, error) {
	if m.Step <= 0 {
		return nil, fmt.Errorf("mobility: RandomWalk.Step must be positive")
	}
	if m.MaxSpeed < m.MinSpeed || m.MinSpeed < 0 {
		return nil, fmt.Errorf("mobility: bad speed range [%v,%v]", m.MinSpeed, m.MaxSpeed)
	}
	tracks := make([]*Track, n)
	for i := 0; i < n; i++ {
		tracks[i] = m.generateOne(horizon, rng)
	}
	return tracks, nil
}

func (m RandomWalk) generateOne(horizon sim.Duration, rng *sim.RNG) *Track {
	var segs []Segment
	pos := geo.Pt(rng.Uniform(0, m.Area.W), rng.Uniform(0, m.Area.H))
	t := sim.Time(0)
	end := sim.Time(0).Add(horizon)
	for t <= end {
		speed := rng.Uniform(m.MinSpeed, m.MaxSpeed)
		if speed == 0 {
			segs = append(segs, Segment{Start: t, From: pos, To: pos, Speed: 0})
			t = t.Add(m.Step)
			continue
		}
		// Pick a direction; clip the leg at the boundary by clamping the
		// endpoint (a cheap approximation of reflection that keeps nodes
		// inside the area).
		ang := rng.Uniform(0, 2*3.141592653589793)
		distance := speed * m.Step.Seconds()
		raw := geo.Pt(pos.X+distance*cos(ang), pos.Y+distance*sin(ang))
		dst := m.Area.Clamp(raw)
		segs = append(segs, Segment{Start: t, From: pos, To: dst, Speed: speed})
		actual := pos.Dist(dst)
		if actual == 0 {
			t = t.Add(m.Step)
			continue
		}
		t = t.Add(sim.Seconds(actual / speed))
		pos = dst
	}
	if len(segs) == 0 {
		segs = append(segs, Segment{Start: 0, From: pos, To: pos, Speed: 0})
	}
	return MustTrack(segs)
}
