package mobility

import (
	"math/rand"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

func randomTrack(t *testing.T, seed int64) *Track {
	t.Helper()
	m := RandomWaypoint{Area: geo.Rect{W: 1000, H: 500}, MinSpeed: 1, MaxSpeed: 20, Pause: 2 * sim.Second}
	tracks, err := m.Generate(1, 300*sim.Second, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tracks[0]
}

func TestCursorMatchesTrackMonotone(t *testing.T) {
	tr := randomTrack(t, 1)
	c := NewCursor(tr)
	for s := 0.0; s < 320; s += 0.37 {
		at := sim.At(s)
		if got, want := c.At(at), tr.At(at); got != want {
			t.Fatalf("t=%v: cursor %v, track %v", at, got, want)
		}
	}
}

func TestCursorMatchesTrackRandomOrder(t *testing.T) {
	tr := randomTrack(t, 2)
	c := NewCursor(tr)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		at := sim.At(rng.Float64() * 320)
		if got, want := c.At(at), tr.At(at); got != want {
			t.Fatalf("t=%v: cursor %v, track %v", at, got, want)
		}
	}
}

func TestCursorMemoisesPerTimestamp(t *testing.T) {
	tr := randomTrack(t, 3)
	c := NewCursor(tr)
	at := sim.At(42.5)
	c.At(at)
	misses := c.Misses
	for i := 0; i < 10; i++ {
		c.At(at)
	}
	if c.Misses != misses {
		t.Fatalf("repeated same-timestamp queries recomputed: misses %d → %d", misses, c.Misses)
	}
	if c.Lookups != misses+10 {
		t.Fatalf("lookups = %d, want %d", c.Lookups, misses+10)
	}
}

func TestTrackMaxSpeed(t *testing.T) {
	tr := MustTrack([]Segment{
		{Start: 0, From: geo.Pt(0, 0), To: geo.Pt(100, 0), Speed: 5},
		{Start: sim.At(20), From: geo.Pt(100, 0), To: geo.Pt(0, 0), Speed: 12.5},
	})
	if got := tr.MaxSpeed(); got != 12.5 {
		t.Fatalf("MaxSpeed = %v", got)
	}
	static := Static(geo.Pt(1, 1))
	if got := static.MaxSpeed(); got != 0 {
		t.Fatalf("static MaxSpeed = %v", got)
	}
	if got := MaxTrackSpeed([]*Track{tr, static}); got != 12.5 {
		t.Fatalf("MaxTrackSpeed = %v", got)
	}
	if got := MaxTrackSpeed(nil); got != 0 {
		t.Fatalf("MaxTrackSpeed(nil) = %v", got)
	}
}
