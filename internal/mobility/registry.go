package mobility

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/modelreg"
	"adhocsim/internal/sim"
)

// Env carries the scenario-level mobility parameters into a model builder:
// the simulation area and the generic speed/pause knobs every spec exposes.
// Model-specific parameters arrive separately as a name→value map, so a
// model spec stays JSON-serializable end to end (scenario.MobilitySpec).
type Env struct {
	Area     geo.Rect
	MinSpeed float64 // m/s
	MaxSpeed float64 // m/s
	Pause    sim.Duration
}

// Builder constructs a configured Model from the scenario environment and a
// model-specific parameter map. Builders must be pure and must reject
// unknown parameter names (use Params.Err) so misspelled keys fail loudly
// instead of silently selecting defaults.
type Builder func(env Env, params Params) (Model, error)

// Params is the read-tracking parameter-map view handed to builders.
type Params = modelreg.Params

// NewParams wraps a raw parameter map (nil is fine).
func NewParams(m map[string]float64) Params { return modelreg.NewParams(m) }

// DefaultModel is the model an empty spec name selects: the study's random
// waypoint.
const DefaultModel = "waypoint"

var registry = modelreg.New[Builder]("mobility", DefaultModel)

// Register adds a mobility model under the given case-insensitive name,
// making it available to scenario specs, the campaign engine and the cmd
// tools. Registration is open: code outside this package can plug in new
// models. Registering an empty name, a nil builder, or a taken name is an
// error.
func Register(name string, b Builder) error { return registry.Register(name, b) }

// Registered returns every registered model name, sorted.
func Registered() []string { return registry.Names() }

// Known reports whether a model name resolves in the registry (the empty
// name selects the default model and is always known).
func Known(name string) bool { return registry.Known(name) }

// ParamNames reports the parameter keys the named model consumes, observed
// by dry-building it with an empty parameter map.
func ParamNames(name string) ([]string, error) {
	b, _, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	p := NewParams(nil)
	_, _ = b(Env{}, p)
	return p.Used(), nil
}

// New resolves a model name through the registry and builds it for the
// given environment. An empty name selects DefaultModel. The built model
// is eagerly validated with a zero-node dry run, so an out-of-range
// parameter (gauss-markov alpha=1.5, manhattan turn_prob=2, …) fails at
// Spec.Validate / campaign-submission time rather than mid-campaign —
// which is why Model.Generate must tolerate n=0.
func New(name string, env Env, params map[string]float64) (Model, error) {
	b, key, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	model, err := b(env, NewParams(params))
	if err != nil {
		return nil, fmt.Errorf("mobility: model %q: %w", key, err)
	}
	if _, err := model.Generate(0, 0, sim.NewRNG(0)); err != nil {
		return nil, fmt.Errorf("mobility: model %q: %w", key, err)
	}
	return model, nil
}

// The built-in models self-register so that scenario specs, campaign axes
// and external registrations all resolve through one mechanism.
func init() {
	registry.MustRegister(DefaultModel, func(env Env, p Params) (Model, error) {
		m := RandomWaypoint{
			Area:     env.Area,
			MinSpeed: p.Get("min_speed_mps", env.MinSpeed),
			MaxSpeed: p.Get("max_speed_mps", env.MaxSpeed),
			Pause:    p.Duration("pause_s", env.Pause),
		}
		return m, p.Err()
	})
	registry.MustRegister("walk", func(env Env, p Params) (Model, error) {
		m := RandomWalk{
			Area:     env.Area,
			MinSpeed: p.Get("min_speed_mps", env.MinSpeed),
			MaxSpeed: p.Get("max_speed_mps", env.MaxSpeed),
			Step:     p.Duration("step_s", 10*sim.Second),
		}
		return m, p.Err()
	})
	registry.MustRegister("gauss-markov", func(env Env, p Params) (Model, error) {
		min := p.Get("min_speed_mps", env.MinSpeed)
		max := p.Get("max_speed_mps", env.MaxSpeed)
		m := GaussMarkov{
			Area:       env.Area,
			MinSpeed:   min,
			MaxSpeed:   max,
			MeanSpeed:  p.Get("mean_speed_mps", (min+max)/2),
			Alpha:      p.Get("alpha", 0.75),
			SigmaSpeed: p.Get("sigma_speed_mps", (max-min)/4),
			SigmaDir:   p.Get("sigma_dir_rad", 0.4),
			Tick:       p.Duration("tick_s", sim.Second),
			Margin:     p.Get("margin_m", 0),
		}
		return m, p.Err()
	})
	registry.MustRegister("manhattan", func(env Env, p Params) (Model, error) {
		m := Manhattan{
			Area:     env.Area,
			BlocksX:  int(p.Get("blocks_x", 0)),
			BlocksY:  int(p.Get("blocks_y", 0)),
			MinSpeed: p.Get("min_speed_mps", env.MinSpeed),
			MaxSpeed: p.Get("max_speed_mps", env.MaxSpeed),
			TurnProb: p.Get("turn_prob", 0.25),
		}
		return m, p.Err()
	})
	registry.MustRegister("rpgm", func(env Env, p Params) (Model, error) {
		m := GroupMobility{
			Area:     env.Area,
			Groups:   int(p.Get("groups", 4)),
			MinSpeed: p.Get("min_speed_mps", env.MinSpeed),
			MaxSpeed: p.Get("max_speed_mps", env.MaxSpeed),
			Pause:    p.Duration("pause_s", env.Pause),
			Spread:   p.Get("spread_m", 100),
			Resample: p.Duration("resample_s", 10*sim.Second),
		}
		return m, p.Err()
	})
	registry.MustRegister("static-grid", func(env Env, p Params) (Model, error) {
		m := StaticGrid{
			Area:   env.Area,
			Jitter: p.Get("jitter_m", 25),
		}
		return m, p.Err()
	})
}
