package mobility

import (
	"math"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }

// Model generates movement tracks; RandomWaypoint, RandomWalk and StaticGrid
// implement it. Generate must validate the model's configuration and
// tolerate n=0: the registry (New) issues a zero-node dry run to surface
// configuration errors eagerly, before any simulation starts.
type Model interface {
	Generate(n int, horizon sim.Duration, rng *sim.RNG) ([]*Track, error)
}

// StaticGrid places nodes on a jittered grid and keeps them still — a
// deterministic, well-connected layout for baselines and tests.
type StaticGrid struct {
	Area   geo.Rect
	Jitter float64 // max uniform displacement from grid point, metres
}

// Generate lays out n static tracks.
func (m StaticGrid) Generate(n int, _ sim.Duration, rng *sim.RNG) ([]*Track, error) {
	cols := int(math.Ceil(math.Sqrt(float64(n) * m.Area.W / math.Max(m.Area.H, 1))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	tracks := make([]*Track, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		x := (float64(c) + 0.5) * m.Area.W / float64(cols)
		y := (float64(r) + 0.5) * m.Area.H / float64(rows)
		if m.Jitter > 0 {
			x += rng.Uniform(-m.Jitter, m.Jitter)
			y += rng.Uniform(-m.Jitter, m.Jitter)
		}
		tracks = append(tracks, Static(m.Area.Clamp(geo.Pt(x, y))))
	}
	return tracks, nil
}

// Chain places nodes in a straight horizontal line with the given spacing —
// the canonical multi-hop topology for unit tests (node i talks to i±1 only
// when spacing < radio range < 2×spacing).
func Chain(n int, spacing float64) []*Track {
	tracks := make([]*Track, n)
	for i := range tracks {
		tracks[i] = Static(geo.Pt(float64(i)*spacing, 0))
	}
	return tracks
}
