package mobility

import (
	"fmt"
	"math"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// Manhattan is the Manhattan-grid mobility model (ETSI urban pattern, as in
// the Camp et al. survey): nodes move along a lattice of horizontal and
// vertical streets overlaid on the area. A node travels street by street
// between adjacent intersections at a per-leg uniform speed; at each
// intersection it turns onto a crossing street with probability TurnProb
// (split evenly between the available turns), otherwise it continues
// straight. Nodes never reverse unless the grid leaves no other choice.
//
// Per-leg speeds are drawn uniformly from [MinSpeed, MaxSpeed], so
// Track.MaxSpeed — and hence mobility.MaxTrackSpeed, the bound the
// spatial-index transmit path relies on — never exceeds MaxSpeed.
type Manhattan struct {
	Area geo.Rect
	// BlocksX/BlocksY are the number of city blocks per axis (streets run
	// on the block boundaries, so there are Blocks+1 parallel streets).
	// 0 derives a count from the area at ~250 m block size.
	BlocksX, BlocksY int
	MinSpeed         float64 // m/s
	MaxSpeed         float64 // m/s
	// TurnProb is the probability of turning at an intersection with a
	// crossing street, in [0,1].
	TurnProb float64
}

// grid directions in a fixed order (determinism): east, west, north, south.
var manhattanDirs = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// check reports configuration errors (zero block counts are legal: they
// derive from the area at Generate time). The registry builder calls it
// too, so a bad parameterization fails at Spec.Validate time instead of
// mid-campaign.
func (m Manhattan) check() error {
	if m.Area.W <= 0 || m.Area.H <= 0 {
		return fmt.Errorf("mobility: degenerate area %+v", m.Area)
	}
	if m.MaxSpeed < m.MinSpeed || m.MinSpeed < 0 {
		return fmt.Errorf("mobility: bad speed range [%v,%v]", m.MinSpeed, m.MaxSpeed)
	}
	if m.TurnProb < 0 || m.TurnProb > 1 {
		return fmt.Errorf("mobility: Manhattan.TurnProb %v outside [0,1]", m.TurnProb)
	}
	if m.BlocksX < 0 || m.BlocksY < 0 {
		return fmt.Errorf("mobility: negative Manhattan block count %d×%d", m.BlocksX, m.BlocksY)
	}
	return nil
}

// Generate produces n tracks covering [0, horizon].
func (m Manhattan) Generate(n int, horizon sim.Duration, rng *sim.RNG) ([]*Track, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if m.BlocksX == 0 {
		m.BlocksX = defaultBlocks(m.Area.W)
	}
	if m.BlocksY == 0 {
		m.BlocksY = defaultBlocks(m.Area.H)
	}
	if m.BlocksX < 1 || m.BlocksY < 1 {
		return nil, fmt.Errorf("mobility: Manhattan needs at least 1×1 blocks, got %d×%d",
			m.BlocksX, m.BlocksY)
	}
	tracks := make([]*Track, n)
	for i := 0; i < n; i++ {
		tracks[i] = m.generateOne(horizon, rng)
	}
	return tracks, nil
}

// defaultBlocks targets ~250 m blocks (the study's radio range), at least 1.
func defaultBlocks(side float64) int {
	b := int(math.Round(side / 250))
	if b < 1 {
		b = 1
	}
	return b
}

// point maps intersection indices to area coordinates.
func (m Manhattan) point(ix, iy int) geo.Point {
	return geo.Pt(float64(ix)*m.Area.W/float64(m.BlocksX), float64(iy)*m.Area.H/float64(m.BlocksY))
}

func (m Manhattan) generateOne(horizon sim.Duration, rng *sim.RNG) *Track {
	ix, iy := rng.Intn(m.BlocksX+1), rng.Intn(m.BlocksY+1)
	pos := m.point(ix, iy)
	if m.MaxSpeed == 0 {
		return Static(pos)
	}
	dir := m.chooseDir(ix, iy, -1, false, rng)

	var segs []Segment
	t := sim.Time(0)
	end := sim.Time(0).Add(horizon)
	for t <= end {
		d := manhattanDirs[dir]
		jx, jy := ix+d[0], iy+d[1]
		dst := m.point(jx, jy)
		speed := rng.Uniform(m.MinSpeed, m.MaxSpeed)
		if speed <= 0 {
			speed = m.MaxSpeed
		}
		segs = append(segs, Segment{Start: t, From: pos, To: dst, Speed: speed})
		travel := sim.Seconds(pos.Dist(dst) / speed)
		if travel <= 0 {
			travel = sim.Microsecond
		}
		t = t.Add(travel)
		ix, iy, pos = jx, jy, dst
		dir = m.chooseDir(ix, iy, dir, rng.Float64() < m.TurnProb, rng)
	}
	if len(segs) == 0 {
		return Static(pos)
	}
	return MustTrack(segs)
}

// chooseDir picks the next travel direction from intersection (ix,iy).
// prev is the current direction (−1 at the start), turn requests a turn onto
// a crossing street. Reversing is the last resort (dead ends only).
func (m Manhattan) chooseDir(ix, iy, prev int, turn bool, rng *sim.RNG) int {
	reverse := -1
	if prev >= 0 {
		reverse = prev ^ 1 // pairs are (0,1) east/west and (2,3) north/south
	}
	var candidates []int
	for di, d := range manhattanDirs {
		if di == reverse {
			continue
		}
		jx, jy := ix+d[0], iy+d[1]
		if jx < 0 || jx > m.BlocksX || jy < 0 || jy > m.BlocksY {
			continue
		}
		candidates = append(candidates, di)
	}
	if len(candidates) == 0 {
		return reverse // dead end: U-turn
	}
	// Going straight is a candidate only when not turning (and possible);
	// when turning (or straight is blocked) pick uniformly among the rest.
	if prev >= 0 && !turn {
		for _, di := range candidates {
			if di == prev {
				return di
			}
		}
	}
	turns := candidates[:0]
	for _, di := range candidates {
		if di != prev {
			turns = append(turns, di)
		}
	}
	if len(turns) == 0 {
		return prev
	}
	return turns[rng.Intn(len(turns))]
}
