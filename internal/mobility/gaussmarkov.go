package mobility

import (
	"fmt"
	"math"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// GaussMarkov is the Gauss-Markov mobility model (Liang & Haas; the
// temporally-correlated model of the Camp et al. survey): each node carries a
// speed and a direction that evolve as first-order autoregressive processes,
//
//	s(t) = α·s(t−1) + (1−α)·s̄ + √(1−α²)·σs·N(0,1)
//	d(t) = α·d(t−1) + (1−α)·d̄ + √(1−α²)·σd·N(0,1)
//
// sampled every Tick. α=0 degenerates to a memoryless random walk, α→1 to
// near-linear motion. Near an area edge the mean direction d̄ is steered
// toward the area centre (the standard edge-avoidance rule), and positions
// are clamped to the area as a final guard.
//
// Speeds are clamped to [MinSpeed, MaxSpeed], so generated tracks respect
// the spec's speed bound: Track.MaxSpeed (and hence MaxTrackSpeed, the
// bound the spatial-index transmit path pads its queries with) never
// exceeds MaxSpeed.
type GaussMarkov struct {
	Area      geo.Rect
	MinSpeed  float64 // m/s, clamp floor (≥ 0)
	MaxSpeed  float64 // m/s, hard clamp; the MaxTrackSpeed bound
	MeanSpeed float64 // s̄, the asymptotic mean speed
	// Alpha is the memory parameter in [0,1).
	Alpha float64
	// SigmaSpeed / SigmaDir are the process noise scales (m/s, radians).
	SigmaSpeed float64
	SigmaDir   float64
	// Tick is the resampling interval (default 1 s).
	Tick sim.Duration
	// Margin is the edge-avoidance band in metres; inside it the mean
	// direction points at the area centre. 0 selects 10% of the shorter
	// area side.
	Margin float64
}

// check reports configuration errors. The registry builder calls it too,
// so a bad parameterization fails at Spec.Validate / campaign-submission
// time instead of mid-campaign.
func (m GaussMarkov) check() error {
	if m.Area.W <= 0 || m.Area.H <= 0 {
		return fmt.Errorf("mobility: degenerate area %+v", m.Area)
	}
	if m.MaxSpeed < m.MinSpeed || m.MinSpeed < 0 {
		return fmt.Errorf("mobility: bad speed range [%v,%v]", m.MinSpeed, m.MaxSpeed)
	}
	if m.Alpha < 0 || m.Alpha >= 1 {
		return fmt.Errorf("mobility: GaussMarkov.Alpha %v outside [0,1)", m.Alpha)
	}
	if m.SigmaSpeed < 0 || m.SigmaDir < 0 {
		return fmt.Errorf("mobility: negative GaussMarkov noise scale")
	}
	if m.MeanSpeed < m.MinSpeed || m.MeanSpeed > m.MaxSpeed {
		return fmt.Errorf("mobility: GaussMarkov mean speed %v outside [%v,%v]",
			m.MeanSpeed, m.MinSpeed, m.MaxSpeed)
	}
	if m.Tick < 0 {
		return fmt.Errorf("mobility: negative GaussMarkov tick %v", m.Tick)
	}
	if m.Margin < 0 {
		return fmt.Errorf("mobility: negative GaussMarkov margin %v", m.Margin)
	}
	return nil
}

// Generate produces n tracks covering [0, horizon].
func (m GaussMarkov) Generate(n int, horizon sim.Duration, rng *sim.RNG) ([]*Track, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if m.Tick <= 0 {
		m.Tick = sim.Second
	}
	if m.Margin <= 0 {
		m.Margin = 0.1 * math.Min(m.Area.W, m.Area.H)
	}
	tracks := make([]*Track, n)
	for i := 0; i < n; i++ {
		tracks[i] = m.generateOne(horizon, rng)
	}
	return tracks, nil
}

func (m GaussMarkov) generateOne(horizon sim.Duration, rng *sim.RNG) *Track {
	pos := geo.Pt(rng.Uniform(0, m.Area.W), rng.Uniform(0, m.Area.H))
	if m.MaxSpeed == 0 {
		return Static(pos)
	}
	speed := m.MeanSpeed
	dir := rng.Uniform(0, 2*math.Pi)
	meanDir := dir
	noise := math.Sqrt(1 - m.Alpha*m.Alpha)
	tickSec := m.Tick.Seconds()

	var segs []Segment
	t := sim.Time(0)
	end := sim.Time(0).Add(horizon)
	for t <= end {
		// Edge avoidance: inside the margin band the mean direction points
		// back at the area centre, and the current direction is pulled onto
		// it so the turn actually happens within a couple of ticks.
		if pos.X < m.Margin || pos.X > m.Area.W-m.Margin ||
			pos.Y < m.Margin || pos.Y > m.Area.H-m.Margin {
			meanDir = math.Atan2(m.Area.H/2-pos.Y, m.Area.W/2-pos.X)
			dir += 0.5 * angleDiff(dir, meanDir)
		}
		speed = m.Alpha*speed + (1-m.Alpha)*m.MeanSpeed + noise*m.SigmaSpeed*rng.Normal(0, 1)
		if speed < m.MinSpeed {
			speed = m.MinSpeed
		}
		if speed > m.MaxSpeed {
			speed = m.MaxSpeed
		}
		dir = m.Alpha*dir + (1-m.Alpha)*meanDir + noise*m.SigmaDir*rng.Normal(0, 1)

		step := speed * tickSec
		dst := m.Area.Clamp(geo.Pt(pos.X+step*math.Cos(dir), pos.Y+step*math.Sin(dir)))
		// The emitted segment speed is the actual clamped displacement per
		// tick, ≤ the drawn speed, so the track's MaxSpeed stays a sound
		// bound for spatial-index query padding.
		actual := pos.Dist(dst) / tickSec
		segs = append(segs, Segment{Start: t, From: pos, To: dst, Speed: actual})
		pos = dst
		t = t.Add(m.Tick)
	}
	if len(segs) == 0 {
		return Static(pos)
	}
	return MustTrack(segs)
}

// angleDiff returns the signed smallest difference b−a in (−π, π].
func angleDiff(a, b float64) float64 {
	d := math.Mod(b-a, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
