package mobility

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// GroupMobility is the Reference Point Group Mobility model (Hong et al.),
// used by follow-up studies of the same protocol family: nodes are split
// into groups; each group's logical centre performs a random-waypoint walk,
// and members jitter around their group centre. It produces the correlated
// motion of convoys and teams, the scenario CBRP's clustering was designed
// for.
type GroupMobility struct {
	Area geo.Rect
	// Groups is the number of groups; nodes are assigned round-robin.
	Groups int
	// MinSpeed/MaxSpeed bound the group-centre speed (m/s).
	MinSpeed, MaxSpeed float64
	// Pause is the group-centre pause time at each waypoint.
	Pause sim.Duration
	// Spread is the maximum member displacement from the group centre
	// (metres).
	Spread float64
	// Resample is how often members draw a new offset around the centre
	// (default 10 s).
	Resample sim.Duration
}

// Generate produces n tracks covering [0, horizon].
func (m GroupMobility) Generate(n int, horizon sim.Duration, rng *sim.RNG) ([]*Track, error) {
	if m.Groups <= 0 {
		return nil, fmt.Errorf("mobility: GroupMobility needs at least one group")
	}
	if m.Spread <= 0 {
		return nil, fmt.Errorf("mobility: GroupMobility.Spread must be positive")
	}
	resample := m.Resample
	if resample <= 0 {
		resample = 10 * sim.Second
	}
	// Shrink the centre's roaming area so member jitter stays inside.
	inner := geo.Rect{W: m.Area.W - 2*m.Spread, H: m.Area.H - 2*m.Spread}
	if inner.W <= 0 || inner.H <= 0 {
		return nil, fmt.Errorf("mobility: spread %.0f too large for area %+v", m.Spread, m.Area)
	}
	centreModel := RandomWaypoint{Area: inner, MinSpeed: m.MinSpeed, MaxSpeed: m.MaxSpeed, Pause: m.Pause}
	centres, err := centreModel.Generate(m.Groups, horizon, rng.ForkNamed("centres"))
	if err != nil {
		return nil, err
	}

	tracks := make([]*Track, n)
	memberRNG := rng.ForkNamed("members")
	for i := 0; i < n; i++ {
		centre := centres[i%m.Groups]
		tracks[i] = m.memberTrack(centre, horizon, memberRNG.Fork(int64(i)))
	}
	return tracks, nil
}

// memberTrack samples the centre track and adds a slowly-changing offset,
// emitting a piecewise-linear member track.
func (m GroupMobility) memberTrack(centre *Track, horizon sim.Duration, rng *sim.RNG) *Track {
	resample := m.Resample
	if resample <= 0 {
		resample = 10 * sim.Second
	}
	offset := func() geo.Point {
		return geo.Pt(rng.Uniform(-m.Spread, m.Spread), rng.Uniform(-m.Spread, m.Spread))
	}
	var segs []Segment
	cur := offset()
	pos := m.Area.Clamp(centre.At(0).Add(cur).Add(geo.Pt(m.Spread, m.Spread)))
	t := sim.Time(0)
	end := sim.Time(0).Add(horizon)
	for t <= end {
		next := t.Add(resample)
		cur = offset()
		target := m.Area.Clamp(centre.At(next).Add(cur).Add(geo.Pt(m.Spread, m.Spread)))
		dist := pos.Dist(target)
		speed := dist / resample.Seconds()
		if speed == 0 {
			segs = append(segs, Segment{Start: t, From: pos, To: pos, Speed: 0})
		} else {
			segs = append(segs, Segment{Start: t, From: pos, To: target, Speed: speed})
		}
		pos = target
		t = next
	}
	if len(segs) == 0 {
		segs = append(segs, Segment{Start: 0, From: pos, To: pos, Speed: 0})
	}
	return MustTrack(segs)
}
