// Package mobility generates and evaluates node movement patterns.
//
// Movement is precomputed: a generator (random waypoint, random walk, static)
// expands a scenario into one Track per node, a piecewise-linear function of
// virtual time. This mirrors ns-2/CMU practice, where the `setdest` tool
// emits a movement script before the simulation starts, and makes position
// queries cheap and the pattern independent of protocol behaviour.
package mobility

import (
	"fmt"
	"sort"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// Segment is one leg of movement: the node departs From at Start and moves
// toward To at Speed m/s (Speed 0 means it pauses at From). The segment ends
// when the next one starts; the last segment extends forever.
type Segment struct {
	Start sim.Time
	From  geo.Point
	To    geo.Point
	Speed float64 // metres per second; 0 = stationary
}

// Track is a node's full movement schedule, segments sorted by Start.
type Track struct {
	segs []Segment
}

// NewTrack builds a track from segments, which must be sorted by Start and
// non-empty with the first segment at time 0.
func NewTrack(segs []Segment) (*Track, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("mobility: empty track")
	}
	if segs[0].Start != 0 {
		return nil, fmt.Errorf("mobility: first segment starts at %v, want 0", segs[0].Start)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].Start {
			return nil, fmt.Errorf("mobility: segments out of order at %d", i)
		}
	}
	return &Track{segs: segs}, nil
}

// MustTrack is NewTrack that panics on error (for generators and tests).
func MustTrack(segs []Segment) *Track {
	tr, err := NewTrack(segs)
	if err != nil {
		panic(err)
	}
	return tr
}

// Static returns a track that stays at p forever.
func Static(p geo.Point) *Track {
	return MustTrack([]Segment{{Start: 0, From: p, To: p, Speed: 0}})
}

// At returns the node position at time t.
func (tr *Track) At(t sim.Time) geo.Point {
	return tr.segmentAt(t).posAt(t)
}

// posAt evaluates the position within this segment at time t (t must be at
// or after the segment's Start).
func (s Segment) posAt(t sim.Time) geo.Point {
	if s.Speed == 0 {
		return s.From
	}
	dist := s.Speed * t.Sub(s.Start).Seconds()
	total := s.From.Dist(s.To)
	if total == 0 || dist >= total {
		return s.To
	}
	return s.From.Lerp(s.To, dist/total)
}

// MaxSpeed returns the fastest speed over the whole schedule — an upper
// bound on how far the node can drift per unit time, used by the radio
// channel to pad spatial-index queries between reindexes.
func (tr *Track) MaxSpeed() float64 {
	max := 0.0
	for _, s := range tr.segs {
		if s.Speed > max {
			max = s.Speed
		}
	}
	return max
}

// MaxTrackSpeed returns the fastest speed across all tracks.
func MaxTrackSpeed(tracks []*Track) float64 {
	max := 0.0
	for _, tr := range tracks {
		if v := tr.MaxSpeed(); v > max {
			max = v
		}
	}
	return max
}

// VelocityAt returns the node's velocity vector (m/s) at time t.
func (tr *Track) VelocityAt(t sim.Time) geo.Point {
	s := tr.segmentAt(t)
	if s.Speed == 0 {
		return geo.Point{}
	}
	total := s.From.Dist(s.To)
	if total == 0 {
		return geo.Point{}
	}
	travelled := s.Speed * t.Sub(s.Start).Seconds()
	if travelled >= total {
		return geo.Point{} // arrived, waiting for next segment
	}
	return s.To.Sub(s.From).Unit().Scale(s.Speed)
}

func (tr *Track) segmentAt(t sim.Time) Segment {
	// Binary search for the last segment with Start <= t.
	i := sort.Search(len(tr.segs), func(i int) bool { return tr.segs[i].Start > t })
	if i == 0 {
		return tr.segs[0]
	}
	return tr.segs[i-1]
}

// Segments exposes the underlying schedule (read-only by convention).
func (tr *Track) Segments() []Segment { return tr.segs }

// ChangeTimes returns every time at which the node's course changes
// (segment boundaries), for listeners that resample positions adaptively.
func (tr *Track) ChangeTimes() []sim.Time {
	out := make([]sim.Time, len(tr.segs))
	for i, s := range tr.segs {
		out[i] = s.Start
	}
	return out
}
