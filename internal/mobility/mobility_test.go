package mobility

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

func TestTrackValidation(t *testing.T) {
	if _, err := NewTrack(nil); err == nil {
		t.Fatal("empty track accepted")
	}
	if _, err := NewTrack([]Segment{{Start: sim.At(1)}}); err == nil {
		t.Fatal("track not starting at 0 accepted")
	}
	if _, err := NewTrack([]Segment{{Start: 0}, {Start: sim.At(2)}, {Start: sim.At(1)}}); err == nil {
		t.Fatal("out-of-order track accepted")
	}
}

func TestStaticTrack(t *testing.T) {
	tr := Static(geo.Pt(10, 20))
	for _, at := range []sim.Time{0, sim.At(5), sim.At(1e6)} {
		if tr.At(at) != geo.Pt(10, 20) {
			t.Fatalf("static track moved at %v", at)
		}
		if tr.VelocityAt(at) != (geo.Point{}) {
			t.Fatal("static track has velocity")
		}
	}
}

func TestTrackInterpolation(t *testing.T) {
	// Move from (0,0) to (100,0) at 10 m/s starting t=0, then pause.
	tr := MustTrack([]Segment{
		{Start: 0, From: geo.Pt(0, 0), To: geo.Pt(100, 0), Speed: 10},
		{Start: sim.At(10), From: geo.Pt(100, 0), To: geo.Pt(100, 0), Speed: 0},
	})
	cases := []struct {
		at   sim.Time
		want geo.Point
	}{
		{0, geo.Pt(0, 0)},
		{sim.At(5), geo.Pt(50, 0)},
		{sim.At(10), geo.Pt(100, 0)},
		{sim.At(20), geo.Pt(100, 0)},
	}
	for _, c := range cases {
		got := tr.At(c.at)
		if got.Dist(c.want) > 1e-6 {
			t.Fatalf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	v := tr.VelocityAt(sim.At(5))
	if v.Dist(geo.Pt(10, 0)) > 1e-9 {
		t.Fatalf("VelocityAt(5) = %v, want (10,0)", v)
	}
	if tr.VelocityAt(sim.At(15)) != (geo.Point{}) {
		t.Fatal("velocity nonzero during pause")
	}
}

func TestTrackArrivalBeforeNextSegment(t *testing.T) {
	// Segment says 10 m/s toward (50,0) but next segment only starts at
	// t=20: the node must sit at the destination in between.
	tr := MustTrack([]Segment{
		{Start: 0, From: geo.Pt(0, 0), To: geo.Pt(50, 0), Speed: 10},
		{Start: sim.At(20), From: geo.Pt(50, 0), To: geo.Pt(0, 0), Speed: 10},
	})
	if got := tr.At(sim.At(7)); got.Dist(geo.Pt(50, 0)) > 1e-6 {
		t.Fatalf("At(7) = %v, want parked at destination", got)
	}
	if tr.VelocityAt(sim.At(7)) != (geo.Point{}) {
		t.Fatal("velocity nonzero after arrival")
	}
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	area := geo.Rect{W: 1500, H: 300}
	m := RandomWaypoint{Area: area, MinSpeed: 1, MaxSpeed: 20, Pause: sim.Seconds(30)}
	rng := sim.NewRNG(1)
	tracks, err := m.Generate(40, sim.Seconds(900), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 40 {
		t.Fatalf("generated %d tracks", len(tracks))
	}
	for id, tr := range tracks {
		for s := 0.0; s <= 900; s += 7.3 {
			p := tr.At(sim.At(s))
			if !area.Contains(p) {
				t.Fatalf("node %d at %v outside area at t=%.1f", id, p, s)
			}
		}
	}
}

func TestRandomWaypointContinuity(t *testing.T) {
	m := RandomWaypoint{Area: geo.Rect{W: 1000, H: 1000}, MinSpeed: 1, MaxSpeed: 20, Pause: 0}
	tracks, err := m.Generate(10, sim.Seconds(300), sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Max displacement over dt must be bounded by MaxSpeed*dt (no jumps).
	const dt = 0.5
	for id, tr := range tracks {
		prev := tr.At(0)
		for s := dt; s <= 300; s += dt {
			cur := tr.At(sim.At(s))
			if d := cur.Dist(prev); d > 20*dt+1e-6 {
				t.Fatalf("node %d teleported %.2f m in %.1f s", id, d, dt)
			}
			prev = cur
		}
	}
}

func TestRandomWaypointPauseZeroKeepsMoving(t *testing.T) {
	m := RandomWaypoint{Area: geo.Rect{W: 500, H: 500}, MinSpeed: 5, MaxSpeed: 20, Pause: 0}
	tracks, err := m.Generate(5, sim.Seconds(120), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for id, tr := range tracks {
		moving := 0
		for s := 0.0; s < 120; s += 1 {
			if tr.VelocityAt(sim.At(s)).Len() > 0 {
				moving++
			}
		}
		// With no pause, nodes should be moving nearly all the time (brief
		// arrival instants aside).
		if moving < 100 {
			t.Fatalf("node %d moving only %d/120 samples with Pause=0", id, moving)
		}
	}
}

func TestRandomWaypointInfinitePause(t *testing.T) {
	// MaxSpeed 0 means static regardless of pause.
	m := RandomWaypoint{Area: geo.Rect{W: 100, H: 100}, MinSpeed: 0, MaxSpeed: 0, Pause: sim.Seconds(1)}
	tracks, err := m.Generate(3, sim.Seconds(60), sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range tracks {
		if tr.At(0) != tr.At(sim.At(60)) {
			t.Fatal("MaxSpeed=0 node moved")
		}
	}
}

func TestRandomWaypointDeterminism(t *testing.T) {
	m := RandomWaypoint{Area: geo.Rect{W: 1500, H: 300}, MinSpeed: 1, MaxSpeed: 20, Pause: sim.Seconds(10)}
	a, _ := m.Generate(10, sim.Seconds(200), sim.NewRNG(7))
	b, _ := m.Generate(10, sim.Seconds(200), sim.NewRNG(7))
	for i := range a {
		for s := 0.0; s < 200; s += 13 {
			if a[i].At(sim.At(s)) != b[i].At(sim.At(s)) {
				t.Fatal("same seed produced different tracks")
			}
		}
	}
}

func TestRandomWaypointRejectsBadConfig(t *testing.T) {
	bad := []RandomWaypoint{
		{Area: geo.Rect{W: 100, H: 100}, MinSpeed: 10, MaxSpeed: 5},
		{Area: geo.Rect{W: 100, H: 100}, MinSpeed: -1, MaxSpeed: 5},
		{Area: geo.Rect{W: 0, H: 100}, MinSpeed: 1, MaxSpeed: 5},
	}
	for i, m := range bad {
		if _, err := m.Generate(1, sim.Second, sim.NewRNG(1)); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestRandomWalkStaysInArea(t *testing.T) {
	area := geo.Rect{W: 400, H: 400}
	m := RandomWalk{Area: area, MinSpeed: 1, MaxSpeed: 10, Step: sim.Seconds(5)}
	tracks, err := m.Generate(10, sim.Seconds(300), sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for id, tr := range tracks {
		for s := 0.0; s <= 300; s += 2.1 {
			if p := tr.At(sim.At(s)); !area.Contains(p) {
				t.Fatalf("walker %d at %v outside area", id, p)
			}
		}
	}
}

func TestRandomWalkRejectsBadStep(t *testing.T) {
	m := RandomWalk{Area: geo.Rect{W: 10, H: 10}, MaxSpeed: 1}
	if _, err := m.Generate(1, sim.Second, sim.NewRNG(1)); err == nil {
		t.Fatal("zero Step accepted")
	}
}

func TestStaticGridLayout(t *testing.T) {
	m := StaticGrid{Area: geo.Rect{W: 1000, H: 1000}}
	tracks, err := m.Generate(16, 0, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 16 {
		t.Fatalf("got %d tracks", len(tracks))
	}
	seen := map[geo.Point]bool{}
	for _, tr := range tracks {
		p := tr.At(0)
		if seen[p] {
			t.Fatalf("duplicate grid position %v", p)
		}
		seen[p] = true
		if !m.Area.Contains(p) {
			t.Fatalf("grid point %v outside area", p)
		}
	}
}

func TestChainSpacing(t *testing.T) {
	tracks := Chain(5, 200)
	for i, tr := range tracks {
		want := geo.Pt(float64(i)*200, 0)
		if tr.At(sim.At(42)) != want {
			t.Fatalf("chain node %d at %v, want %v", i, tr.At(0), want)
		}
	}
}

func TestChangeTimes(t *testing.T) {
	tr := MustTrack([]Segment{
		{Start: 0, From: geo.Pt(0, 0), To: geo.Pt(1, 0), Speed: 1},
		{Start: sim.At(1), From: geo.Pt(1, 0), To: geo.Pt(1, 0), Speed: 0},
	})
	ct := tr.ChangeTimes()
	if len(ct) != 2 || ct[0] != 0 || ct[1] != sim.At(1) {
		t.Fatalf("ChangeTimes = %v", ct)
	}
}
