package mobility

import (
	"sort"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// Cursor is a stateful position reader over one Track, built for the hot
// lookup path of the radio channel. It memoises the last query: within one
// virtual timestamp (epoch) a node's position is computed at most once, no
// matter how many transmissions probe it. It also keeps a segment-index
// hint so that the usual monotonically advancing queries skip the binary
// search of Track.At.
//
// A Cursor belongs to one single-threaded simulation world; the underlying
// Track stays immutable and shareable.
type Cursor struct {
	tr  *Track
	seg int // index of the segment used by the last query

	epoch   sim.Time // timestamp of the memoised position
	pos     geo.Point
	primed  bool
	Lookups uint64 // total queries (diagnostics)
	Misses  uint64 // queries that had to recompute (diagnostics)
}

// NewCursor creates a cursor over tr.
func NewCursor(tr *Track) *Cursor {
	return &Cursor{tr: tr}
}

// Track returns the underlying immutable track.
func (c *Cursor) Track() *Track { return c.tr }

// At returns the node position at time t. Repeated queries at the same
// timestamp return the memoised value; queries at a new timestamp advance
// (or, for out-of-order probes, re-seek) the segment hint and recompute.
func (c *Cursor) At(t sim.Time) geo.Point {
	c.Lookups++
	if c.primed && t == c.epoch {
		return c.pos
	}
	c.Misses++
	segs := c.tr.segs
	if t < segs[c.seg].Start {
		// Out-of-order probe (rare): re-seek from scratch.
		i := sort.Search(len(segs), func(i int) bool { return segs[i].Start > t })
		if i == 0 {
			i = 1
		}
		c.seg = i - 1
	} else {
		for c.seg+1 < len(segs) && segs[c.seg+1].Start <= t {
			c.seg++
		}
	}
	c.epoch = t
	c.pos = segs[c.seg].posAt(t)
	c.primed = true
	return c.pos
}
