package mobility

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

func TestGroupMobilityStaysInArea(t *testing.T) {
	area := geo.Rect{W: 1000, H: 1000}
	m := GroupMobility{Area: area, Groups: 3, MinSpeed: 1, MaxSpeed: 10, Spread: 100}
	tracks, err := m.Generate(12, sim.Seconds(200), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 12 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	for id, tr := range tracks {
		for s := 0.0; s <= 200; s += 3.7 {
			if p := tr.At(sim.At(s)); !area.Contains(p) {
				t.Fatalf("member %d at %v outside area", id, p)
			}
		}
	}
}

func TestGroupMembersStayTogether(t *testing.T) {
	m := GroupMobility{Area: geo.Rect{W: 2000, H: 2000}, Groups: 2, MinSpeed: 5, MaxSpeed: 15, Spread: 80}
	tracks, err := m.Generate(8, sim.Seconds(300), sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0,2,4,6 form group 0; 1,3,5,7 group 1. Same-group members must
	// stay within ~4×Spread of each other (offsets are ±Spread around the
	// same centre, plus transition slack); different groups usually drift
	// far apart at least once.
	maxSame := 0.0
	for s := 10.0; s <= 300; s += 10 {
		at := sim.At(s)
		for _, pair := range [][2]int{{0, 2}, {2, 4}, {1, 3}, {3, 5}} {
			d := tracks[pair[0]].At(at).Dist(tracks[pair[1]].At(at))
			if d > maxSame {
				maxSame = d
			}
		}
	}
	if maxSame > 4*80 {
		t.Fatalf("same-group members separated by %.0f m", maxSame)
	}
}

func TestGroupMobilityValidation(t *testing.T) {
	bad := []GroupMobility{
		{Area: geo.Rect{W: 100, H: 100}, Groups: 0, Spread: 10},
		{Area: geo.Rect{W: 100, H: 100}, Groups: 1, Spread: 0},
		{Area: geo.Rect{W: 100, H: 100}, Groups: 1, Spread: 60}, // spread exceeds area
	}
	for i, m := range bad {
		if _, err := m.Generate(4, sim.Second, sim.NewRNG(1)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGroupMobilityDeterminism(t *testing.T) {
	m := GroupMobility{Area: geo.Rect{W: 800, H: 800}, Groups: 2, MinSpeed: 1, MaxSpeed: 8, Spread: 60}
	a, _ := m.Generate(6, sim.Seconds(100), sim.NewRNG(9))
	b, _ := m.Generate(6, sim.Seconds(100), sim.NewRNG(9))
	for i := range a {
		for s := 0.0; s < 100; s += 11 {
			if a[i].At(sim.At(s)) != b[i].At(sim.At(s)) {
				t.Fatal("same seed diverged")
			}
		}
	}
}
