package mobility

import (
	"reflect"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

func testEnv() Env {
	return Env{Area: geo.Rect{W: 1500, H: 300}, MinSpeed: 1, MaxSpeed: 20, Pause: 0}
}

// TestRegistryDeterminism: every registered model, built twice through the
// registry and driven by fresh same-seed RNGs, must emit identical tracks —
// the cross-process determinism contract scenario compilation relies on.
func TestRegistryDeterminism(t *testing.T) {
	for _, name := range Registered() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen := func() []*Track {
				m, err := New(name, testEnv(), nil)
				if err != nil {
					t.Fatal(err)
				}
				tracks, err := m.Generate(12, 120*sim.Second, sim.NewRNG(99).ForkNamed("mobility"))
				if err != nil {
					t.Fatal(err)
				}
				return tracks
			}
			a, b := gen(), gen()
			if len(a) != 12 {
				t.Fatalf("tracks = %d", len(a))
			}
			for i := range a {
				if !reflect.DeepEqual(a[i].Segments(), b[i].Segments()) {
					t.Fatalf("track %d differs between builds", i)
				}
			}
		})
	}
}

// TestModelsRespectSpeedBound: generated tracks must never exceed the
// environment's MaxSpeed — MaxTrackSpeed is the bound the spatial-index
// transmit path pads its neighbourhood queries with, so a faster segment
// would silently corrupt reception.
func TestModelsRespectSpeedBound(t *testing.T) {
	env := testEnv()
	for _, name := range Registered() {
		if name == "rpgm" {
			// RPGM member speed is centre speed plus offset-resampling
			// jitter and legitimately exceeds the centre bound; its tracks
			// still carry true per-segment speeds, which is all
			// MaxTrackSpeed soundness needs.
			continue
		}
		m, err := New(name, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		tracks, err := m.Generate(10, 200*sim.Second, sim.NewRNG(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v := MaxTrackSpeed(tracks); v > env.MaxSpeed+1e-9 {
			t.Fatalf("%s: MaxTrackSpeed %.3f exceeds MaxSpeed %.0f", name, v, env.MaxSpeed)
		}
	}
}

// TestModelsStayInArea samples every registered model's tracks over time and
// requires all positions to stay inside the scenario rectangle.
func TestModelsStayInArea(t *testing.T) {
	env := testEnv()
	for _, name := range Registered() {
		m, err := New(name, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		tracks, err := m.Generate(8, 150*sim.Second, sim.NewRNG(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, tr := range tracks {
			for ts := 0.0; ts <= 150; ts += 3 {
				p := tr.At(sim.At(ts))
				if p.X < -1e-6 || p.X > env.Area.W+1e-6 || p.Y < -1e-6 || p.Y > env.Area.H+1e-6 {
					t.Fatalf("%s: track %d left the area at t=%.0f: %v", name, i, ts, p)
				}
			}
		}
	}
}

// TestModelsActuallyMove guards against degenerate parameterizations: under
// the default mobile environment every non-static model must displace nodes.
func TestModelsActuallyMove(t *testing.T) {
	env := testEnv()
	for _, name := range Registered() {
		if name == "static-grid" {
			continue
		}
		m, err := New(name, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		tracks, err := m.Generate(6, 120*sim.Second, sim.NewRNG(11))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		moved := 0
		for _, tr := range tracks {
			if tr.At(0).Dist(tr.At(sim.At(120))) > 1 || tr.MaxSpeed() > 0 {
				moved++
			}
		}
		if moved == 0 {
			t.Fatalf("%s: no node moved", name)
		}
	}
}

func TestGaussMarkovAlphaExtremes(t *testing.T) {
	for _, alpha := range []float64{0, 0.95} {
		m, err := New("gauss-markov", testEnv(), map[string]float64{"alpha": alpha})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Generate(4, 60*sim.Second, sim.NewRNG(1)); err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
	}
	// Out-of-range alpha must be rejected no later than Generate.
	if m, err := New("gauss-markov", testEnv(), map[string]float64{"alpha": 1.5}); err == nil {
		if _, err := m.Generate(2, sim.Second, sim.NewRNG(1)); err == nil {
			t.Fatal("alpha=1.5 accepted")
		}
	}
}

func TestManhattanSnapsToStreets(t *testing.T) {
	m, err := New("manhattan", testEnv(), map[string]float64{"blocks_x": 3, "blocks_y": 2})
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := m.Generate(5, 90*sim.Second, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	onStreet := func(v float64, side float64, blocks int) bool {
		spacing := side / float64(blocks)
		k := v / spacing
		return k-float64(int(k+0.5)) < eps && k-float64(int(k+0.5)) > -eps
	}
	for i, tr := range tracks {
		for _, s := range tr.Segments() {
			// Every leg runs along one street: endpoints share a street
			// coordinate on at least one axis.
			horiz := onStreet(s.From.Y, 300, 2) && s.From.Y == s.To.Y
			vert := onStreet(s.From.X, 1500, 3) && s.From.X == s.To.X
			if !horiz && !vert {
				t.Fatalf("track %d segment off-street: %+v", i, s)
			}
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New("no-such-model", testEnv(), nil); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := New("gauss-markov", testEnv(), map[string]float64{"alfa": 0.5}); err == nil {
		t.Fatal("misspelled parameter accepted")
	}
	if err := Register("", func(Env, Params) (Model, error) { return nil, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("waypoint", func(Env, Params) (Model, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("nilbuilder", nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	if !Known("") || !Known("WayPoint") || Known("no-such-model") {
		t.Fatal("Known misreports registry membership")
	}
}

// TestDefaultModelMatchesExplicitWaypoint: the empty model name and
// "waypoint" with no parameters must generate identical tracks — the
// bit-identity bridge from the pre-registry scenario layer.
func TestDefaultModelMatchesExplicitWaypoint(t *testing.T) {
	gen := func(name string) []*Track {
		m, err := New(name, testEnv(), nil)
		if err != nil {
			t.Fatal(err)
		}
		tracks, err := m.Generate(10, 100*sim.Second, sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		return tracks
	}
	a, b := gen(""), gen("waypoint")
	for i := range a {
		if !reflect.DeepEqual(a[i].Segments(), b[i].Segments()) {
			t.Fatalf("track %d differs", i)
		}
	}
	// And the registry-built waypoint must equal the directly-constructed
	// struct the old scenario layer used.
	env := testEnv()
	direct := RandomWaypoint{Area: env.Area, MinSpeed: env.MinSpeed, MaxSpeed: env.MaxSpeed, Pause: env.Pause}
	c, err := direct.Generate(10, 100*sim.Second, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Segments(), c[i].Segments()) {
			t.Fatalf("registry waypoint diverges from direct construction at track %d", i)
		}
	}
}
