package mobility

import (
	"math/rand"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// fuzzTracks builds a deterministic multi-segment population for the
// read-only/clone lookup tests.
func fuzzTracks(rng *rand.Rand, n int) []*Track {
	var tracks []*Track
	for i := 0; i < n; i++ {
		segs := []Segment{{
			Start: 0,
			From:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			To:    geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		}}
		if i%4 != 0 {
			segs[0].Speed = 1 + rng.Float64()*19
		}
		at := sim.Time(0)
		for k := 0; k < rng.Intn(25); k++ {
			at += sim.Time(rng.Int63n(int64(10 * sim.Second)))
			prev := segs[len(segs)-1]
			seg := Segment{Start: at, From: prev.posAt(at),
				To: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
			if rng.Intn(4) != 0 {
				seg.Speed = 1 + rng.Float64()*19
			}
			segs = append(segs, seg)
		}
		tracks = append(tracks, MustTrack(segs))
	}
	return tracks
}

// TestAtROMatchesAt: the write-free lookup must be bit-identical to the
// memoising one under every probe pattern — monotone, repeated, and
// out-of-order — regardless of where the memo and segment hints currently
// point. The parallel transmit fan-out relies on this equivalence: workers
// probe via AtRO while the sequential path uses At, and candidate legs must
// not diverge by a single bit.
func TestAtROMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tracks := fuzzTracks(rng, 25)
	tb := NewTable(tracks)
	ref := NewTable(tracks) // probed only through At, as the sequential path would

	var clock sim.Time
	for probe := 0; probe < 8000; probe++ {
		i := rng.Intn(len(tracks))
		var at sim.Time
		switch rng.Intn(4) {
		case 0:
			clock += sim.Time(rng.Int63n(int64(sim.Second)))
			at = clock
		case 1:
			at = clock
		case 2:
			if clock > 0 {
				at = sim.Time(rng.Int63n(int64(clock)))
			}
		default:
			at = clock + sim.Time(rng.Int63n(int64(100*sim.Second)))
		}
		want := ref.At(i, at)
		if got := tb.AtRO(i, at); got != want {
			t.Fatalf("AtRO(%d, %v) = %v, At = %v", i, at, got, want)
		}
		// Interleave memoising probes on tb so AtRO keeps hitting both the
		// memo fast path and arbitrary hint positions.
		if probe%3 == 0 {
			if got := tb.At(i, at); got != want {
				t.Fatalf("At(%d, %v) = %v after AtRO, want %v", i, at, got, want)
			}
		}
	}
}

// TestAtRODoesNotWrite: AtRO must leave the memo and hints untouched — that
// is what makes it safe for concurrent readers.
func TestAtRODoesNotWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tracks := fuzzTracks(rng, 8)
	tb := NewTable(tracks)
	tb.At(3, sim.At(5)) // plant a memo entry and advance a hint
	seg, epoch, pos := tb.seg[3], tb.epoch[3], tb.pos[3]
	for _, at := range []sim.Time{0, sim.At(1), sim.At(5), sim.At(90)} {
		tb.AtRO(3, at)
	}
	if tb.seg[3] != seg || tb.epoch[3] != epoch || tb.pos[3] != pos {
		t.Fatal("AtRO mutated lookup state")
	}
}

// TestCloneIndependentMemo: a clone shares segments but owns its lookup
// state, so probing the clone at one epoch while the original walks another
// (exactly what the pipelined reindex does) never perturbs the original's
// results.
func TestCloneIndependentMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tracks := fuzzTracks(rng, 12)
	tb := NewTable(tracks)
	cl := tb.Clone()
	if cl.Len() != tb.Len() {
		t.Fatalf("clone Len = %d, want %d", cl.Len(), tb.Len())
	}

	ref := NewTable(tracks)
	dst := make([]geo.Point, cl.Len())
	refDst := make([]geo.Point, cl.Len())
	for step := 0; step < 50; step++ {
		now := sim.At(float64(step))
		ahead := now.Add(10 * sim.Second)
		// Original probes "now" while the clone batch-sweeps a future epoch.
		for i := 0; i < tb.Len(); i++ {
			if got, want := tb.At(i, now), ref.At(i, now); got != want {
				t.Fatalf("original diverged at node %d t=%v: %v != %v", i, now, got, want)
			}
		}
		cl.Positions(ahead, dst)
		ref2 := NewTable(tracks)
		ref2.Positions(ahead, refDst)
		for i := range dst {
			if dst[i] != refDst[i] {
				t.Fatalf("clone Positions diverged at node %d t=%v", i, ahead)
			}
		}
	}
}
