package mobility

import (
	"math/rand"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// TestTableMatchesCursor: the flattened table must reproduce Cursor.At (and
// therefore Track.At) bit-for-bit under the same probe sequence — monotone
// probes, exact repeats, and out-of-order re-seeks alike. The channel's
// parity tests lean on this equivalence.
func TestTableMatchesCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tracks []*Track
	for n := 0; n < 20; n++ {
		segs := []Segment{{
			Start: 0,
			From:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		}}
		segs[0].To = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if n%3 != 0 {
			segs[0].Speed = 1 + rng.Float64()*19
		}
		at := sim.Time(0)
		for k := 0; k < rng.Intn(30); k++ {
			at += sim.Time(rng.Int63n(int64(10 * sim.Second)))
			prev := segs[len(segs)-1]
			seg := Segment{Start: at, From: prev.posAt(at), To: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
			if rng.Intn(4) != 0 {
				seg.Speed = 1 + rng.Float64()*19
			}
			segs = append(segs, seg)
		}
		tracks = append(tracks, MustTrack(segs))
	}

	tb := NewTable(tracks)
	if tb.Len() != len(tracks) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(tracks))
	}
	cursors := make([]*Cursor, len(tracks))
	for i, tr := range tracks {
		cursors[i] = NewCursor(tr)
	}

	var clock sim.Time
	for probe := 0; probe < 5000; probe++ {
		i := rng.Intn(len(tracks))
		var at sim.Time
		switch rng.Intn(4) {
		case 0: // monotone advance
			clock += sim.Time(rng.Int63n(int64(sim.Second)))
			at = clock
		case 1: // repeat the current timestamp (memo hit)
			at = clock
		case 2: // out-of-order probe into the past
			if clock > 0 {
				at = sim.Time(rng.Int63n(int64(clock) + 1))
			}
		case 3: // far-future probe beyond the last segment
			at = clock + sim.Time(rng.Int63n(int64(1000*sim.Second)))
		}
		got, want := tb.At(i, at), cursors[i].At(at)
		if got != want {
			t.Fatalf("probe %d: Table.At(%d, %v) = %v, Cursor.At = %v", probe, i, at, got, want)
		}
	}
}

// TestTablePositionsBatch: the batch refresh must agree with per-node At
// and leave the memo hot for subsequent same-timestamp probes.
func TestTablePositionsBatch(t *testing.T) {
	tracks := []*Track{
		Static(geo.Point{X: 1, Y: 2}),
		MustTrack([]Segment{{Start: 0, From: geo.Point{}, To: geo.Point{X: 100}, Speed: 10}}),
		MustTrack([]Segment{
			{Start: 0, From: geo.Point{}, To: geo.Point{Y: 50}, Speed: 5},
			{Start: sim.At(4), From: geo.Point{Y: 20}, To: geo.Point{X: 30, Y: 20}, Speed: 15},
		}),
	}
	tb := NewTable(tracks)
	dst := make([]geo.Point, tb.Len())
	for _, s := range []float64{0, 1.5, 4, 4.5, 100} {
		at := sim.At(s)
		tb.Positions(at, dst)
		for i, tr := range tracks {
			if want := tr.At(at); dst[i] != want {
				t.Fatalf("Positions at %v: node %d = %v, want %v", at, i, dst[i], want)
			}
			if got := tb.At(i, at); got != dst[i] {
				t.Fatalf("memo after batch at %v: node %d = %v, want %v", at, i, got, dst[i])
			}
		}
	}
	// A position query at time zero on a fresh table must not be fooled by
	// the zero-valued memo (epoch sentinel is -1, not 0).
	tb2 := NewTable(tracks)
	if got, want := tb2.At(1, 0), tracks[1].At(0); got != want {
		t.Fatalf("fresh table at t=0: %v, want %v", got, want)
	}
}
