package mobility

import (
	"sort"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

// Table is the struct-of-arrays sibling of Cursor for a whole node
// population: every track's segments live in one contiguous arena, and the
// per-node lookup state (segment hint, memo epoch, memoised position) lives
// in parallel flat slices instead of one heap object per node. At
// city-scale populations this keeps the position lookup — the innermost
// call of every transmission leg — walking dense arrays rather than chasing
// a *Cursor and a *Track pointer per probe.
//
// The lookup semantics are exactly Cursor.At's: within one virtual
// timestamp a node's position is computed at most once; monotone queries
// advance the segment hint linearly; out-of-order probes re-seek by binary
// search. A Table belongs to one single-threaded simulation world.
type Table struct {
	segs []Segment // all tracks' segments, concatenated in node order
	off  []int32   // node i's segments are segs[off[i]:off[i+1]]

	seg   []int32     // per-node hint: arena index of the last-used segment
	epoch []sim.Time  // per-node timestamp of the memoised position (-1 = none)
	pos   []geo.Point // per-node memoised position
}

// NewTable flattens the tracks (node id = slice index) into one table.
func NewTable(tracks []*Track) *Table {
	total := 0
	for _, tr := range tracks {
		total += len(tr.segs)
	}
	tb := &Table{
		segs:  make([]Segment, 0, total),
		off:   make([]int32, len(tracks)+1),
		seg:   make([]int32, len(tracks)),
		epoch: make([]sim.Time, len(tracks)),
		pos:   make([]geo.Point, len(tracks)),
	}
	for i, tr := range tracks {
		tb.off[i] = int32(len(tb.segs))
		tb.seg[i] = int32(len(tb.segs))
		tb.epoch[i] = -1 // no virtual timestamp is negative: never a false memo hit
		tb.segs = append(tb.segs, tr.segs...)
	}
	tb.off[len(tracks)] = int32(len(tb.segs))
	return tb
}

// Len returns the number of nodes in the table.
func (tb *Table) Len() int { return len(tb.off) - 1 }

// At returns node i's position at time t, memoised per (node, timestamp).
func (tb *Table) At(i int, t sim.Time) geo.Point {
	if tb.epoch[i] == t {
		return tb.pos[i]
	}
	return tb.lookup(i, t)
}

func (tb *Table) lookup(i int, t sim.Time) geo.Point {
	s := int(tb.seg[i])
	segs := tb.segs
	if t < segs[s].Start {
		// Out-of-order probe (rare): re-seek within this node's range.
		lo, hi := int(tb.off[i]), int(tb.off[i+1])
		j := lo + sort.Search(hi-lo, func(k int) bool { return segs[lo+k].Start > t })
		if j == lo {
			j = lo + 1
		}
		s = j - 1
	} else {
		hi := int(tb.off[i+1])
		for s+1 < hi && segs[s+1].Start <= t {
			s++
		}
	}
	tb.seg[i] = int32(s)
	tb.epoch[i] = t
	p := segs[s].posAt(t)
	tb.pos[i] = p
	return p
}

// Clone returns a table that shares the immutable segment arena with tb but
// owns fresh lookup state (segment hints, memo). The channel's pipelined
// reindex hands a clone to its background precompute goroutine, so the
// epoch-ahead Positions sweep can run concurrently with the simulation
// goroutine's own At probes without the two racing on the memo arrays —
// segments are written once in NewTable and never mutated afterwards.
func (tb *Table) Clone() *Table {
	n := tb.Len()
	cl := &Table{
		segs:  tb.segs,
		off:   tb.off,
		seg:   make([]int32, n),
		epoch: make([]sim.Time, n),
		pos:   make([]geo.Point, n),
	}
	for i := 0; i < n; i++ {
		cl.seg[i] = tb.off[i]
		cl.epoch[i] = -1
	}
	return cl
}

// AtRO returns node i's position at time t without writing any lookup
// state, so any number of goroutines may call it concurrently while the
// owning simulation goroutine is quiescent (the parallel transmit fan-out:
// the sim goroutine is parked inside ParallelFor while workers probe). The
// memoised fast path is kept; a miss falls back to a pure binary search
// over the node's segments, which selects exactly the segment lookup's
// hint-walk would — the last segment whose Start is ≤ t, clamped to the
// first segment for pre-track probes — so the returned position is
// bit-identical to At's.
func (tb *Table) AtRO(i int, t sim.Time) geo.Point {
	if tb.epoch[i] == t {
		return tb.pos[i]
	}
	segs := tb.segs
	lo, hi := int(tb.off[i]), int(tb.off[i+1])
	j := lo + sort.Search(hi-lo, func(k int) bool { return segs[lo+k].Start > t })
	if j == lo {
		j = lo + 1
	}
	return segs[j-1].posAt(t)
}

// Positions refreshes every node's position at time t into dst (which must
// hold Len() points) in one pass — the batch form the radio channel's
// reindex uses, so a 10k-node rebuild is one linear sweep over the arena
// instead of 10k indirect cursor calls. The memo is updated too: probes at
// the same timestamp afterwards are pure array reads.
func (tb *Table) Positions(t sim.Time, dst []geo.Point) {
	for i := range dst {
		if tb.epoch[i] == t {
			dst[i] = tb.pos[i]
			continue
		}
		dst[i] = tb.lookup(i, t)
	}
}
