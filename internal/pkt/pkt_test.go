package pkt

import (
	"testing"

	"adhocsim/internal/sim"
)

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "bcast" {
		t.Fatal("broadcast string")
	}
	if NodeID(7).String() != "n7" {
		t.Fatal("node string")
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindRouting.String() != "routing" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestDataPacketSizes(t *testing.T) {
	p := DataPacket(1, 2, 42, 64, sim.At(3))
	if p.Size != 64+8+20 {
		t.Fatalf("data packet size = %d, want 92", p.Size)
	}
	if p.Kind != KindData || p.Src != 1 || p.Dst != 2 || p.Seq != 42 {
		t.Fatal("data packet fields")
	}
	if p.TTL != DefaultTTL {
		t.Fatal("TTL default")
	}
	if p.CreatedAt != sim.At(3) {
		t.Fatal("CreatedAt")
	}
}

func TestRoutingPacket(t *testing.T) {
	p := RoutingPacket("RREQ", 1, Broadcast, 5, 24, sim.At(1))
	if p.Size != 44 {
		t.Fatalf("routing packet size = %d, want 44", p.Size)
	}
	if p.Kind != KindRouting || p.Msg != "RREQ" || p.TTL != 5 {
		t.Fatal("routing packet fields")
	}
}

func TestUIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		u := NewUID()
		if seen[u] {
			t.Fatal("duplicate UID")
		}
		seen[u] = true
	}
}

func TestCloneIndependence(t *testing.T) {
	p := DataPacket(1, 2, 0, 64, 0)
	p.SrcRoute = []NodeID{1, 3, 2}
	q := p.Clone()
	if q.UID == p.UID {
		t.Fatal("clone kept UID")
	}
	q.SrcRoute[1] = 9
	q.TTL--
	q.Hops++
	if p.SrcRoute[1] != 3 || p.TTL != DefaultTTL || p.Hops != 0 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestExpired(t *testing.T) {
	p := DataPacket(1, 2, 0, 10, 0)
	p.TTL = 1
	if p.Expired() {
		t.Fatal("TTL 1 should not be expired")
	}
	p.TTL = 0
	if !p.Expired() {
		t.Fatal("TTL 0 should be expired")
	}
}

func TestStringSmoke(t *testing.T) {
	p := DataPacket(1, 2, 0, 10, 0)
	if p.String() == "" {
		t.Fatal("empty String")
	}
	r := RoutingPacket("RERR", 3, Broadcast, 1, 12, 0)
	if r.String() == "" || r.String() == p.String() {
		t.Fatal("routing String")
	}
}
