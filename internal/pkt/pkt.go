// Package pkt defines the network-layer packet model shared by the traffic
// generators, routing protocols and forwarding plane. Header sizes are
// byte-accurate so that routing-overhead metrics can be reported in both
// packets and bytes, as in Broch et al. 1998.
package pkt

import (
	"fmt"
	"sync/atomic"

	"adhocsim/internal/sim"
)

// NodeID identifies a node (its "IP address"). IDs are dense small integers.
type NodeID int32

// Broadcast is the link/network broadcast address.
const Broadcast NodeID = -1

// String renders a node id, with the broadcast address spelled out.
func (id NodeID) String() string {
	if id == Broadcast {
		return "bcast"
	}
	return fmt.Sprintf("n%d", int32(id))
}

// Kind classifies packets for metric accounting.
type Kind uint8

const (
	// KindData is application (CBR) traffic.
	KindData Kind = iota
	// KindRouting is routing-protocol control traffic.
	KindRouting
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindRouting:
		return "routing"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Header sizes in bytes, following ns-2/CMU conventions.
const (
	IPHeaderBytes  = 20
	UDPHeaderBytes = 8
	// SrcRouteAddrBytes is the per-hop cost of carrying a source route in
	// a packet header (DSR, CBRP): 4 bytes per address.
	SrcRouteAddrBytes = 4
	// DefaultTTL matches the IP default used by the CMU extensions.
	DefaultTTL = 32
)

// Packet is a network-layer packet. Packets are passed by pointer along a
// single node's stack but must be Cloned when handed to another node or
// duplicated by a flood, because forwarding mutates TTL/hop state.
type Packet struct {
	UID  uint64 // globally unique per transmission lineage (see Clone)
	Kind Kind
	// Msg labels routing messages ("RREQ", "RREP", …) for per-type
	// overhead breakdowns; empty for data packets.
	Msg string

	Src NodeID // originator (network layer)
	Dst NodeID // final destination, or Broadcast
	TTL int
	// Hops counts network-layer forwards so far (for path optimality).
	Hops int

	// Size is the total packet size in bytes including IP header and any
	// protocol-specific header, but excluding MAC framing (the MAC adds
	// its own framing when computing airtime).
	Size int

	// CreatedAt is the origination timestamp (end-to-end delay baseline:
	// when the application handed the packet to the network layer).
	CreatedAt sim.Time

	// Seq is the application sequence number (per source), used by sinks
	// to detect duplicates.
	Seq uint32

	// OptimalHops is the BFS shortest hop distance from Src to Dst at
	// origination time, filled by the traffic layer for path-optimality
	// accounting. Zero when unknown/unreachable.
	OptimalHops int

	// Salvaged counts DSR-style salvage operations applied to the packet.
	Salvaged int

	// SrcRoute is the full source route (including Src and Dst) for
	// source-routed protocols; SRIndex is the position of the node that
	// currently holds the packet. Nil for table-driven protocols.
	SrcRoute []NodeID
	SRIndex  int

	// Payload carries a protocol-specific routing header. Routing
	// payloads must be treated as immutable once attached; Clone copies
	// the reference only.
	Payload any
}

var nextUID atomic.Uint64

// NewUID issues a fresh packet UID. The counter is process-global and
// atomic: independent simulation runs execute in parallel goroutines, and
// UIDs only need to be unique, not dense — runs never compare UIDs across
// engines, so the shared counter does not harm reproducibility.
func NewUID() uint64 {
	return nextUID.Add(1)
}

// Clone returns a copy of p with a fresh UID and a deep-copied source route.
// The payload reference is shared (payloads are immutable by convention).
func (p *Packet) Clone() *Packet {
	q := *p
	q.UID = NewUID()
	if p.SrcRoute != nil {
		q.SrcRoute = append([]NodeID(nil), p.SrcRoute...)
	}
	return &q
}

// Expired reports whether the TTL has been exhausted.
func (p *Packet) Expired() bool { return p.TTL <= 0 }

// String renders a compact description for traces and test failures.
func (p *Packet) String() string {
	label := p.Msg
	if label == "" {
		label = p.Kind.String()
	}
	return fmt.Sprintf("%s %v->%v uid=%d ttl=%d hops=%d size=%dB", label, p.Src, p.Dst, p.UID, p.TTL, p.Hops, p.Size)
}

// DataPacket builds an application data packet of payloadBytes carried over
// UDP/IP.
func DataPacket(src, dst NodeID, seq uint32, payloadBytes int, at sim.Time) *Packet {
	return &Packet{
		UID:       NewUID(),
		Kind:      KindData,
		Src:       src,
		Dst:       dst,
		TTL:       DefaultTTL,
		Size:      payloadBytes + UDPHeaderBytes + IPHeaderBytes,
		CreatedAt: at,
		Seq:       seq,
	}
}

// RoutingPacket builds a routing control packet. bodyBytes is the size of
// the protocol message body; the IP header is added here.
func RoutingPacket(msg string, src, dst NodeID, ttl, bodyBytes int, at sim.Time) *Packet {
	return &Packet{
		UID:       NewUID(),
		Kind:      KindRouting,
		Msg:       msg,
		Src:       src,
		Dst:       dst,
		TTL:       ttl,
		Size:      bodyBytes + IPHeaderBytes,
		CreatedAt: at,
	}
}
