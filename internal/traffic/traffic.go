// Package traffic provides the constant-bit-rate UDP workload of the study
// (ns-2 "cbrgen"): each connection sends fixed-size packets at a fixed rate
// from a staggered start time, and the sink side performs duplicate
// suppression and feeds the metrics collector.
package traffic

import (
	"fmt"

	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// Connection is one CBR flow.
type Connection struct {
	Src, Dst pkt.NodeID
	// Rate in packets per second.
	Rate float64
	// PayloadBytes per packet (64 in the study).
	PayloadBytes int
	// Start is when the flow begins; Stop (0 = never) ends it.
	Start sim.Time
	Stop  sim.Time
}

// Validate sanity-checks the connection against a node count.
func (c Connection) Validate(numNodes int) error {
	if c.Src == c.Dst {
		return fmt.Errorf("traffic: connection %v->%v is a self-loop", c.Src, c.Dst)
	}
	if int(c.Src) < 0 || int(c.Src) >= numNodes || int(c.Dst) < 0 || int(c.Dst) >= numNodes {
		return fmt.Errorf("traffic: connection %v->%v out of range (%d nodes)", c.Src, c.Dst, numNodes)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("traffic: non-positive rate %v", c.Rate)
	}
	if c.PayloadBytes <= 0 {
		return fmt.Errorf("traffic: non-positive payload %d", c.PayloadBytes)
	}
	if c.Stop != 0 && c.Stop <= c.Start {
		return fmt.Errorf("traffic: connection %v->%v stops at %v, at or before its start %v",
			c.Src, c.Dst, c.Stop, c.Start)
	}
	return nil
}

// Source drives one connection on its source node.
type Source struct {
	conn Connection
	node *network.Node
	seq  uint32
	tick *sim.Ticker
}

// Install wires connections and sinks into the world: every destination node
// gets a deduplicating sink, every source a CBR generator. It returns the
// sources (mainly for tests).
func Install(w *network.World, conns []Connection, horizon sim.Time) ([]*Source, error) {
	sinks := make(map[pkt.NodeID]*Sink)
	var sources []*Source
	for _, cn := range conns {
		if err := cn.Validate(len(w.Nodes)); err != nil {
			return nil, err
		}
		if _, ok := sinks[cn.Dst]; !ok {
			s := NewSink(w)
			sinks[cn.Dst] = s
			w.Node(cn.Dst).SetSink(s.Accept)
		}
		sources = append(sources, NewSource(w, cn, horizon))
	}
	return sources, nil
}

// NewSource schedules a CBR generator for conn on its source node.
func NewSource(w *network.World, conn Connection, horizon sim.Time) *Source {
	node := w.Node(conn.Src)
	s := &Source{conn: conn, node: node}
	interval := sim.Seconds(1 / conn.Rate)
	s.tick = sim.NewTicker(w.Eng, interval, func() {
		now := w.Eng.Now()
		if conn.Stop != 0 && now.After(conn.Stop) {
			s.tick.Stop()
			return
		}
		if now.After(horizon) {
			s.tick.Stop()
			return
		}
		p := pkt.DataPacket(conn.Src, conn.Dst, s.seq, conn.PayloadBytes, now)
		s.seq++
		node.Originate(p)
	})
	// First packet at Start exactly; subsequent at the CBR interval.
	w.Eng.Schedule(conn.Start, func() {
		now := w.Eng.Now()
		if conn.Stop != 0 && now.After(conn.Stop) {
			return
		}
		p := pkt.DataPacket(conn.Src, conn.Dst, s.seq, conn.PayloadBytes, now)
		s.seq++
		node.Originate(p)
		s.tick.Start()
	})
	return s
}

// Sent reports how many packets this source has originated.
func (s *Source) Sent() uint32 { return s.seq }

// Sink accepts data packets at a destination node, suppressing duplicates
// per flow.
type Sink struct {
	w    *network.World
	seen map[flowKey]map[uint32]struct{}
	n    uint64
}

type flowKey struct{ src pkt.NodeID }

// NewSink creates a sink bound to the world's collector.
func NewSink(w *network.World) *Sink {
	return &Sink{w: w, seen: make(map[flowKey]map[uint32]struct{})}
}

// Accept implements network.SinkFunc.
func (s *Sink) Accept(p *pkt.Packet, from pkt.NodeID) {
	k := flowKey{src: p.Src}
	m, ok := s.seen[k]
	if !ok {
		m = make(map[uint32]struct{})
		s.seen[k] = m
	}
	if _, dup := m[p.Seq]; dup {
		s.w.Collector.OnDataDelivered(p, s.w.Eng.Now(), true)
		return
	}
	m[p.Seq] = struct{}{}
	s.n++
	s.w.Collector.OnDataDelivered(p, s.w.Eng.Now(), false)
}

// Received reports unique packets accepted.
func (s *Sink) Received() uint64 { return s.n }
