// Package traffic provides the UDP workload generators of the harness. The
// study's workload is constant bit rate (ns-2 "cbrgen"): each connection
// sends fixed-size packets at a fixed rate from a staggered start time.
// Alternative emission processes — Poisson arrivals and exponential on/off
// (VBR) bursts — resolve through an open registry (Register/New) so
// campaigns can sweep the traffic model like any other axis. The sink side
// performs duplicate suppression and feeds the metrics collector.
package traffic

import (
	"fmt"

	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// Packet emission process names; Connection.Process selects one.
const (
	ProcessCBR      = "cbr"
	ProcessPoisson  = "poisson"
	ProcessExpOnOff = "expoo"
)

// Connection is one traffic flow.
type Connection struct {
	Src, Dst pkt.NodeID
	// Rate in packets per second (for on/off processes: the peak rate
	// while ON).
	Rate float64
	// PayloadBytes per packet (64 in the study).
	PayloadBytes int
	// Start is when the flow begins; Stop (0 = never) ends it.
	Start sim.Time
	Stop  sim.Time
	// Process selects the packet emission process: "" or ProcessCBR emits
	// at the fixed CBR interval, ProcessPoisson draws exponential
	// inter-packet gaps with mean 1/Rate, ProcessExpOnOff alternates
	// exponential ON bursts (emitting at Rate) with exponential OFF gaps.
	Process string
	// OnMean/OffMean are the mean ON/OFF period lengths in seconds of the
	// expoo process.
	OnMean, OffMean float64
	// Seed drives the random draws of stochastic processes (unused by
	// CBR). Generators derive it from the run seed via sim.DeriveSeed so
	// emission schedules are reproducible across processes.
	Seed int64
}

// Validate sanity-checks the connection against a node count.
func (c Connection) Validate(numNodes int) error {
	if c.Src == c.Dst {
		return fmt.Errorf("traffic: connection %v->%v is a self-loop", c.Src, c.Dst)
	}
	if int(c.Src) < 0 || int(c.Src) >= numNodes || int(c.Dst) < 0 || int(c.Dst) >= numNodes {
		return fmt.Errorf("traffic: connection %v->%v out of range (%d nodes)", c.Src, c.Dst, numNodes)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("traffic: non-positive rate %v", c.Rate)
	}
	if c.PayloadBytes <= 0 {
		return fmt.Errorf("traffic: non-positive payload %d", c.PayloadBytes)
	}
	if c.Stop != 0 && c.Stop <= c.Start {
		return fmt.Errorf("traffic: connection %v->%v stops at %v, at or before its start %v",
			c.Src, c.Dst, c.Stop, c.Start)
	}
	switch c.Process {
	case "", ProcessCBR, ProcessPoisson:
	case ProcessExpOnOff:
		if c.OnMean <= 0 {
			return fmt.Errorf("traffic: expoo connection %v->%v needs a positive OnMean, got %v",
				c.Src, c.Dst, c.OnMean)
		}
		if c.OffMean < 0 {
			return fmt.Errorf("traffic: expoo connection %v->%v has negative OffMean %v",
				c.Src, c.Dst, c.OffMean)
		}
	default:
		return fmt.Errorf("traffic: connection %v->%v has unknown process %q",
			c.Src, c.Dst, c.Process)
	}
	return nil
}

// Source drives one connection on its source node.
type Source struct {
	conn Connection
	node *network.Node
	seq  uint32
	tick *sim.Ticker
}

// Install wires connections and sinks into the world: every destination node
// gets a deduplicating sink, every source a CBR generator. It returns the
// sources (mainly for tests).
func Install(w *network.World, conns []Connection, horizon sim.Time) ([]*Source, error) {
	sinks := make(map[pkt.NodeID]*Sink)
	var sources []*Source
	for _, cn := range conns {
		if err := cn.Validate(len(w.Nodes)); err != nil {
			return nil, err
		}
		if _, ok := sinks[cn.Dst]; !ok {
			s := NewSink(w)
			sinks[cn.Dst] = s
			w.Node(cn.Dst).SetSink(s.Accept)
		}
		sources = append(sources, NewSource(w, cn, horizon))
	}
	return sources, nil
}

// NewSource schedules conn's packet emission process on its source node.
func NewSource(w *network.World, conn Connection, horizon sim.Time) *Source {
	node := w.Node(conn.Src)
	s := &Source{conn: conn, node: node}
	switch conn.Process {
	case ProcessPoisson:
		s.startPoisson(w, horizon)
	case ProcessExpOnOff:
		s.startExpOnOff(w, horizon)
	default: // "" / ProcessCBR
		s.startCBR(w, horizon)
	}
	return s
}

// startCBR is the study's fixed-interval emission (unchanged from the
// pre-registry source: same event pattern, bit-identical runs).
func (s *Source) startCBR(w *network.World, horizon sim.Time) {
	conn := s.conn
	node := s.node
	interval := sim.Seconds(1 / conn.Rate)
	s.tick = sim.NewTicker(w.Eng, interval, func() {
		now := w.Eng.Now()
		if conn.Stop != 0 && now.After(conn.Stop) {
			s.tick.Stop()
			return
		}
		if now.After(horizon) {
			s.tick.Stop()
			return
		}
		p := pkt.DataPacket(conn.Src, conn.Dst, s.seq, conn.PayloadBytes, now)
		s.seq++
		node.Originate(p)
	})
	// First packet at Start exactly; subsequent at the CBR interval.
	w.Eng.Schedule(conn.Start, func() {
		now := w.Eng.Now()
		if conn.Stop != 0 && now.After(conn.Stop) {
			return
		}
		p := pkt.DataPacket(conn.Src, conn.Dst, s.seq, conn.PayloadBytes, now)
		s.seq++
		node.Originate(p)
		s.tick.Start()
	})
}

// ended reports whether the flow is past its stop time or the horizon.
func (s *Source) ended(now, horizon sim.Time) bool {
	return (s.conn.Stop != 0 && now.After(s.conn.Stop)) || now.After(horizon)
}

// emit originates one data packet at now.
func (s *Source) emit(now sim.Time) {
	p := pkt.DataPacket(s.conn.Src, s.conn.Dst, s.seq, s.conn.PayloadBytes, now)
	s.seq++
	s.node.Originate(p)
}

// startPoisson schedules memoryless emission: exponential inter-packet gaps
// with mean 1/Rate, drawn from the connection's own seeded stream.
func (s *Source) startPoisson(w *network.World, horizon sim.Time) {
	rng := sim.NewRNG(s.conn.Seed)
	mean := 1 / s.conn.Rate
	var next func()
	next = func() {
		now := w.Eng.Now()
		if s.ended(now, horizon) {
			return
		}
		s.emit(now)
		w.Eng.Schedule(now.Add(sim.Seconds(rng.Exp(mean))), next)
	}
	w.Eng.Schedule(s.conn.Start, next)
}

// startExpOnOff schedules the exponential on/off VBR process: bursts of
// CBR-paced packets whose lengths are exponential with mean OnMean seconds,
// separated by exponential OFF gaps with mean OffMean seconds.
func (s *Source) startExpOnOff(w *network.World, horizon sim.Time) {
	rng := sim.NewRNG(s.conn.Seed)
	interval := sim.Seconds(1 / s.conn.Rate)
	var burstEnd sim.Time
	var emit func()
	startBurst := func() {
		now := w.Eng.Now()
		if s.ended(now, horizon) {
			return
		}
		burstEnd = now.Add(sim.Seconds(rng.Exp(s.conn.OnMean)))
		emit()
	}
	emit = func() {
		now := w.Eng.Now()
		if s.ended(now, horizon) {
			return
		}
		if now.After(burstEnd) {
			w.Eng.Schedule(now.Add(sim.Seconds(rng.Exp(s.conn.OffMean))), startBurst)
			return
		}
		s.emit(now)
		w.Eng.Schedule(now.Add(interval), emit)
	}
	w.Eng.Schedule(s.conn.Start, startBurst)
}

// Sent reports how many packets this source has originated.
func (s *Source) Sent() uint32 { return s.seq }

// Sink accepts data packets at a destination node, suppressing duplicates
// per flow.
type Sink struct {
	w    *network.World
	seen map[flowKey]map[uint32]struct{}
	n    uint64
}

type flowKey struct{ src pkt.NodeID }

// NewSink creates a sink bound to the world's collector.
func NewSink(w *network.World) *Sink {
	return &Sink{w: w, seen: make(map[flowKey]map[uint32]struct{})}
}

// Accept implements network.SinkFunc.
func (s *Sink) Accept(p *pkt.Packet, from pkt.NodeID) {
	k := flowKey{src: p.Src}
	m, ok := s.seen[k]
	if !ok {
		m = make(map[uint32]struct{})
		s.seen[k] = m
	}
	if _, dup := m[p.Seq]; dup {
		s.w.Collector.OnDataDelivered(p, s.w.Eng.Now(), true)
		return
	}
	m[p.Seq] = struct{}{}
	s.n++
	s.w.Collector.OnDataDelivered(p, s.w.Eng.Now(), false)
}

// Received reports unique packets accepted.
func (s *Sink) Received() uint64 { return s.n }
