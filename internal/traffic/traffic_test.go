package traffic_test

import (
	"context"
	"testing"

	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/flood"
	"adhocsim/internal/sim"
	"adhocsim/internal/traffic"
)

func world(t *testing.T, n int, spacing float64) *network.World {
	t.Helper()
	w, err := network.NewWorld(network.Config{
		Tracks:   mobility.Chain(n, spacing),
		Radio:    phy.DefaultParams(),
		Protocol: flood.Factory(flood.Config{}),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConnectionValidate(t *testing.T) {
	good := traffic.Connection{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 64}
	if err := good.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := []traffic.Connection{
		{Src: 1, Dst: 1, Rate: 4, PayloadBytes: 64},
		{Src: 0, Dst: 5, Rate: 4, PayloadBytes: 64},
		{Src: -1, Dst: 1, Rate: 4, PayloadBytes: 64},
		{Src: 0, Dst: 1, Rate: 0, PayloadBytes: 64},
		{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 0},
		// Stop at or before Start: the flow would silently never send.
		{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 64, Start: sim.At(10), Stop: sim.At(5)},
		{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 64, Start: sim.At(10), Stop: sim.At(10)},
	}
	for i, c := range bad {
		if err := c.Validate(2); err == nil {
			t.Fatalf("bad connection %d accepted", i)
		}
	}
	// Stop == 0 still means "never stops", and a Stop after Start is fine.
	open := traffic.Connection{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 64, Start: sim.At(10)}
	if err := open.Validate(2); err != nil {
		t.Fatal(err)
	}
	bounded := traffic.Connection{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 64, Start: sim.At(1), Stop: sim.At(3)}
	if err := bounded.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestCBRPacing(t *testing.T) {
	w := world(t, 2, 100)
	conn := traffic.Connection{Src: 0, Dst: 1, Rate: 4, PayloadBytes: 64, Start: sim.At(1)}
	srcs, err := traffic.Install(w, []traffic.Connection{conn}, sim.At(100))
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	// Run just past t=11 so the packet sent exactly at t=11 also lands.
	if err := w.Run(context.Background(), sim.At(11.1)); err != nil {
		t.Fatal(err)
	}
	// 4 pkt/s from t=1 to t=11: first at 1.0, then every 250 ms → 41.
	if got := srcs[0].Sent(); got != 41 {
		t.Fatalf("sent %d packets, want 41", got)
	}
	res := w.Collector.Finalize()
	if res.DataSent != 41 {
		t.Fatalf("collector counted %d", res.DataSent)
	}
	if res.DataDelivered != 41 {
		t.Fatalf("delivered %d/41 over one hop", res.DataDelivered)
	}
}

func TestStopTimeHonored(t *testing.T) {
	w := world(t, 2, 100)
	conn := traffic.Connection{Src: 0, Dst: 1, Rate: 10, PayloadBytes: 64, Start: sim.At(1), Stop: sim.At(3)}
	srcs, err := traffic.Install(w, []traffic.Connection{conn}, sim.At(100))
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	if err := w.Run(context.Background(), sim.At(20)); err != nil {
		t.Fatal(err)
	}
	sent := srcs[0].Sent()
	if sent < 19 || sent > 21 {
		t.Fatalf("sent %d packets in a 2 s window at 10 pkt/s", sent)
	}
}

func TestSinkDeduplicates(t *testing.T) {
	w := world(t, 2, 100)
	sink := traffic.NewSink(w)
	w.Node(1).SetSink(sink.Accept)
	p := pkt.DataPacket(0, 1, 7, 64, 0)
	sink.Accept(p, 0)
	sink.Accept(p.Clone(), 0) // same (src,seq): duplicate
	q := pkt.DataPacket(0, 1, 8, 64, 0)
	sink.Accept(q, 0)
	if sink.Received() != 2 {
		t.Fatalf("sink accepted %d unique, want 2", sink.Received())
	}
	res := w.Collector.Finalize()
	if res.DataDelivered != 2 || res.DupDelivered != 1 {
		t.Fatalf("delivered/dup = %d/%d", res.DataDelivered, res.DupDelivered)
	}
}

func TestInstallRejectsBadConnection(t *testing.T) {
	w := world(t, 2, 100)
	_, err := traffic.Install(w, []traffic.Connection{{Src: 0, Dst: 0, Rate: 1, PayloadBytes: 1}}, sim.At(10))
	if err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestHorizonStopsSources(t *testing.T) {
	w := world(t, 2, 100)
	conn := traffic.Connection{Src: 0, Dst: 1, Rate: 100, PayloadBytes: 64, Start: sim.At(1)}
	srcs, err := traffic.Install(w, []traffic.Connection{conn}, sim.At(2))
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	if err := w.Run(context.Background(), sim.At(10)); err != nil {
		t.Fatal(err)
	}
	sent := srcs[0].Sent()
	if sent > 105 {
		t.Fatalf("source kept sending past the horizon: %d", sent)
	}
}
