package traffic

import (
	"fmt"

	"adhocsim/internal/modelreg"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// Env carries the scenario-level traffic parameters into a generator: node
// and connection counts, the per-connection rate and payload, the staggered
// start window, the horizon, and the run seed (stochastic processes derive
// per-connection emission seeds from it via sim.DeriveSeed, so a generated
// connection list is self-contained and deterministic across processes).
type Env struct {
	Nodes        int
	Sources      int
	Rate         float64 // packets/s per connection
	PayloadBytes int
	StartMin     sim.Duration
	StartMax     sim.Duration
	Duration     sim.Duration
	// Seed is the scenario's run seed, the root of per-connection process
	// seed derivation.
	Seed int64
}

// Generator expands a traffic environment into concrete connections. The
// rng argument is the scenario's "traffic" substream; generators must be
// deterministic functions of (env, rng) so scenario compilation stays
// reproducible.
type Generator interface {
	Connections(env Env, rng *sim.RNG) ([]Connection, error)
}

// Builder constructs a configured Generator from a model-specific parameter
// map. Builders must reject unknown parameter names (use Params.Err).
type Builder func(params Params) (Generator, error)

// Params is the read-tracking parameter-map view handed to builders.
type Params = modelreg.Params

// NewParams wraps a raw parameter map (nil is fine).
func NewParams(m map[string]float64) Params { return modelreg.NewParams(m) }

// DefaultModel is the model an empty spec name selects: the study's CBR.
const DefaultModel = ProcessCBR

var registry = modelreg.New[Builder]("traffic", DefaultModel)

// Register adds a traffic model under the given case-insensitive name,
// making it available to scenario specs, the campaign engine and the cmd
// tools. Registering an empty name, a nil builder, or a taken name is an
// error.
func Register(name string, b Builder) error { return registry.Register(name, b) }

// Registered returns every registered traffic model name, sorted.
func Registered() []string { return registry.Names() }

// Known reports whether a model name resolves in the registry (the empty
// name selects the default model).
func Known(name string) bool { return registry.Known(name) }

// ParamNames reports the parameter keys the named model consumes, observed
// by dry-building it with an empty parameter map.
func ParamNames(name string) ([]string, error) {
	b, _, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	p := NewParams(nil)
	_, _ = b(p)
	return p.Used(), nil
}

// New resolves a traffic model name through the registry and builds it. An
// empty name selects DefaultModel.
func New(name string, params map[string]float64) (Generator, error) {
	b, key, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	gen, err := b(NewParams(params))
	if err != nil {
		return nil, fmt.Errorf("traffic: model %q: %w", key, err)
	}
	return gen, nil
}

// CBR is the study's cbrgen workload: Sources distinct (src,dst) pairs,
// each a constant-bit-rate flow from a staggered start time.
type CBR struct{}

// Connections draws the cbrgen pair list. This is the original scenario
// generator verbatim — its rng consumption is part of the bit-identity
// contract with pre-registry study runs.
func (CBR) Connections(env Env, rng *sim.RNG) ([]Connection, error) {
	return drawPairs(env, rng)
}

// Poisson is CBR's pair layout with memoryless packet emission: each
// connection's inter-packet gaps are exponential with mean 1/Rate, so the
// offered load matches CBR on average but arrives in bursts.
type Poisson struct{}

// Connections draws the pair list and attaches per-connection Poisson
// emission seeds derived from the run seed.
func (Poisson) Connections(env Env, rng *sim.RNG) ([]Connection, error) {
	conns, err := drawPairs(env, rng)
	if err != nil {
		return nil, err
	}
	for i := range conns {
		conns[i].Process = ProcessPoisson
		conns[i].Seed = sim.DeriveSeed(env.Seed, fmt.Sprintf("traffic|poisson|conn=%d", i))
	}
	return conns, nil
}

// ExpOnOff is the exponential on/off VBR source (ns-2's Exponential
// On/Off): a connection alternates exponentially-distributed ON bursts —
// during which it emits at the full CBR rate — with exponentially-
// distributed silent OFF gaps. Mean offered load is Rate·On/(On+Off).
type ExpOnOff struct {
	// OnMean / OffMean are the mean burst and gap lengths in seconds.
	OnMean  float64
	OffMean float64
}

// Connections draws the pair list and attaches the on/off process
// parameters plus per-connection emission seeds.
func (g ExpOnOff) Connections(env Env, rng *sim.RNG) ([]Connection, error) {
	if g.OnMean <= 0 {
		return nil, fmt.Errorf("traffic: ExpOnOff.OnMean must be positive, got %v", g.OnMean)
	}
	if g.OffMean < 0 {
		return nil, fmt.Errorf("traffic: negative ExpOnOff.OffMean %v", g.OffMean)
	}
	conns, err := drawPairs(env, rng)
	if err != nil {
		return nil, err
	}
	for i := range conns {
		conns[i].Process = ProcessExpOnOff
		conns[i].OnMean = g.OnMean
		conns[i].OffMean = g.OffMean
		conns[i].Seed = sim.DeriveSeed(env.Seed, fmt.Sprintf("traffic|expoo|conn=%d", i))
	}
	return conns, nil
}

// drawPairs draws distinct (src,dst) pairs, like cbrgen: sources are
// distinct nodes where possible, destinations uniform among the others. The
// start window is clamped to the first half of the run so that short
// scenarios still carry traffic. The draw sequence is shared by every
// built-in generator and is bit-identical to the pre-registry scenario
// layer for the CBR case.
func drawPairs(env Env, rng *sim.RNG) ([]Connection, error) {
	if max := env.Duration / 2; env.StartMax > max {
		env.StartMax = max
		if env.StartMin > env.StartMax {
			env.StartMin = env.StartMax
		}
	}
	used := make(map[[2]int32]bool)
	var conns []Connection
	attempts := 0
	for len(conns) < env.Sources {
		attempts++
		if attempts > 100*env.Sources+1000 {
			return nil, fmt.Errorf("traffic: could not draw %d distinct connections", env.Sources)
		}
		src := int32(rng.Intn(env.Nodes))
		dst := int32(rng.Intn(env.Nodes))
		if src == dst {
			continue
		}
		key := [2]int32{src, dst}
		if used[key] {
			continue
		}
		used[key] = true
		start := sim.Time(0).Add(rng.DurationUniform(env.StartMin, env.StartMax+1))
		conns = append(conns, Connection{
			Src:          pkt.NodeID(src),
			Dst:          pkt.NodeID(dst),
			Rate:         env.Rate,
			PayloadBytes: env.PayloadBytes,
			Start:        start,
		})
	}
	return conns, nil
}

// The built-in traffic models self-register.
func init() {
	registry.MustRegister(ProcessCBR, func(p Params) (Generator, error) {
		return CBR{}, p.Err()
	})
	registry.MustRegister(ProcessPoisson, func(p Params) (Generator, error) {
		return Poisson{}, p.Err()
	})
	registry.MustRegister(ProcessExpOnOff, func(p Params) (Generator, error) {
		g := ExpOnOff{OnMean: p.Get("on_s", 1), OffMean: p.Get("off_s", 1)}
		if g.OnMean <= 0 {
			return nil, fmt.Errorf("on_s must be positive, got %v", g.OnMean)
		}
		if g.OffMean < 0 {
			return nil, fmt.Errorf("negative off_s %v", g.OffMean)
		}
		return g, p.Err()
	})
}
