package traffic_test

import (
	"context"
	"reflect"
	"testing"

	"adhocsim/internal/sim"
	"adhocsim/internal/traffic"
)

func testTrafficEnv() traffic.Env {
	return traffic.Env{
		Nodes:        20,
		Sources:      6,
		Rate:         4,
		PayloadBytes: 64,
		StartMin:     5 * sim.Second,
		StartMax:     15 * sim.Second,
		Duration:     60 * sim.Second,
		Seed:         42,
	}
}

// TestGeneratorDeterminism: every registered traffic model, built twice
// through fresh registries/RNGs, must emit reflect.DeepEqual connection
// lists — the cross-process determinism contract.
func TestGeneratorDeterminism(t *testing.T) {
	for _, name := range traffic.Registered() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen := func() []traffic.Connection {
				g, err := traffic.New(name, nil)
				if err != nil {
					t.Fatal(err)
				}
				conns, err := g.Connections(testTrafficEnv(), sim.NewRNG(7).ForkNamed("traffic"))
				if err != nil {
					t.Fatal(err)
				}
				return conns
			}
			a, b := gen(), gen()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed, different connections:\n%+v\nvs\n%+v", a, b)
			}
			if len(a) != 6 {
				t.Fatalf("connections = %d", len(a))
			}
			for _, c := range a {
				if err := c.Validate(20); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDefaultModelIsCBR: the empty name and "cbr" must produce identical
// connections, with zero-valued process fields (the pre-registry layout).
func TestDefaultModelIsCBR(t *testing.T) {
	gen := func(name string) []traffic.Connection {
		g, err := traffic.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		conns, err := g.Connections(testTrafficEnv(), sim.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		return conns
	}
	a, b := gen(""), gen(traffic.ProcessCBR)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("default model differs from cbr")
	}
	for _, c := range a {
		if c.Process != "" || c.Seed != 0 || c.OnMean != 0 {
			t.Fatalf("cbr connection carries process state: %+v", c)
		}
	}
}

// TestStochasticModelsShareThePairLayout: poisson/expoo reuse the cbrgen
// pair drawing, so the (src,dst,start) layout is identical across models —
// only the emission process differs. That keeps traffic-model sweeps
// apples-to-apples.
func TestStochasticModelsShareThePairLayout(t *testing.T) {
	layout := func(name string) [][2]int32 {
		g, err := traffic.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		conns, err := g.Connections(testTrafficEnv(), sim.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		out := make([][2]int32, len(conns))
		for i, c := range conns {
			out[i] = [2]int32{int32(c.Src), int32(c.Dst)}
		}
		return out
	}
	base := layout("cbr")
	for _, name := range []string{"poisson", "expoo"} {
		if got := layout(name); !reflect.DeepEqual(got, base) {
			t.Fatalf("%s pair layout diverges: %v vs %v", name, got, base)
		}
	}
}

// TestExpOnOffSeedsDistinct: per-connection process seeds must differ (a
// shared seed would synchronize every burst).
func TestExpOnOffSeedsDistinct(t *testing.T) {
	g, err := traffic.New("expoo", map[string]float64{"on_s": 0.5, "off_s": 2})
	if err != nil {
		t.Fatal(err)
	}
	conns, err := g.Connections(testTrafficEnv(), sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	seeds := make(map[int64]bool)
	for _, c := range conns {
		if c.Process != traffic.ProcessExpOnOff || c.OnMean != 0.5 || c.OffMean != 2 {
			t.Fatalf("bad expoo connection: %+v", c)
		}
		if seeds[c.Seed] {
			t.Fatalf("duplicate process seed %d", c.Seed)
		}
		seeds[c.Seed] = true
	}
}

func TestTrafficRegistryErrors(t *testing.T) {
	if _, err := traffic.New("warp", nil); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := traffic.New("expoo", map[string]float64{"onn_s": 1}); err == nil {
		t.Fatal("misspelled parameter accepted")
	}
	if _, err := traffic.New("expoo", map[string]float64{"on_s": 0}); err == nil {
		t.Fatal("zero on_s accepted")
	}
	if err := traffic.Register("cbr", func(traffic.Params) (traffic.Generator, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if !traffic.Known("") || !traffic.Known("CBR") || traffic.Known("warp") {
		t.Fatal("Known misreports registry membership")
	}
}

// TestPoissonSourceEmits runs a Poisson source against a 2-node world and
// checks the emitted count is near the configured mean rate, and that the
// same connection seed reproduces the exact schedule.
func TestPoissonSourceEmits(t *testing.T) {
	run := func() uint32 {
		w := world(t, 2, 100)
		conn := traffic.Connection{
			Src: 0, Dst: 1, Rate: 10, PayloadBytes: 64, Start: sim.At(1),
			Process: traffic.ProcessPoisson, Seed: 77,
		}
		srcs, err := traffic.Install(w, []traffic.Connection{conn}, sim.At(101))
		if err != nil {
			t.Fatal(err)
		}
		w.Start()
		if err := w.Run(context.Background(), sim.At(101)); err != nil {
			t.Fatal(err)
		}
		return srcs[0].Sent()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different poisson schedule: %d vs %d", a, b)
	}
	// 10 pkt/s over ~100 s → expect ~1000; Poisson σ≈32, allow ±5σ.
	if a < 840 || a > 1160 {
		t.Fatalf("poisson emitted %d packets, want ≈1000", a)
	}
}

// TestExpOnOffSourceDutyCycle: with equal on/off means the expoo source
// should emit roughly half the CBR packet count.
func TestExpOnOffSourceDutyCycle(t *testing.T) {
	w := world(t, 2, 100)
	conn := traffic.Connection{
		Src: 0, Dst: 1, Rate: 20, PayloadBytes: 64, Start: sim.At(1),
		Process: traffic.ProcessExpOnOff, OnMean: 1, OffMean: 1, Seed: 13,
	}
	srcs, err := traffic.Install(w, []traffic.Connection{conn}, sim.At(201))
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	if err := w.Run(context.Background(), sim.At(201)); err != nil {
		t.Fatal(err)
	}
	sent := float64(srcs[0].Sent())
	// Full-rate would be ~4000 packets over 200 s; 50% duty cycle → ~2000.
	if sent < 1200 || sent > 2800 {
		t.Fatalf("expoo emitted %.0f packets, want ≈2000 (50%% duty cycle)", sent)
	}
}

// TestStochasticSourcesHonorStopAndHorizon mirrors the CBR stop tests for
// the new processes.
func TestStochasticSourcesHonorStopAndHorizon(t *testing.T) {
	for _, conn := range []traffic.Connection{
		{Src: 0, Dst: 1, Rate: 50, PayloadBytes: 64, Start: sim.At(1), Stop: sim.At(3),
			Process: traffic.ProcessPoisson, Seed: 5},
		{Src: 0, Dst: 1, Rate: 50, PayloadBytes: 64, Start: sim.At(1), Stop: sim.At(3),
			Process: traffic.ProcessExpOnOff, OnMean: 0.5, OffMean: 0.1, Seed: 5},
	} {
		w := world(t, 2, 100)
		srcs, err := traffic.Install(w, []traffic.Connection{conn}, sim.At(100))
		if err != nil {
			t.Fatal(err)
		}
		w.Start()
		if err := w.Run(context.Background(), sim.At(50)); err != nil {
			t.Fatal(err)
		}
		// ≤ 2 s live window at ≤ 50 pkt/s, plus slack for burst pacing.
		if sent := srcs[0].Sent(); sent > 130 {
			t.Fatalf("%s kept sending past Stop: %d", conn.Process, sent)
		}
	}
}

func TestValidateRejectsBadProcess(t *testing.T) {
	bad := []traffic.Connection{
		{Src: 0, Dst: 1, Rate: 1, PayloadBytes: 1, Process: "vbr"},
		{Src: 0, Dst: 1, Rate: 1, PayloadBytes: 1, Process: traffic.ProcessExpOnOff},
		{Src: 0, Dst: 1, Rate: 1, PayloadBytes: 1, Process: traffic.ProcessExpOnOff,
			OnMean: 1, OffMean: -2},
	}
	for i, c := range bad {
		if err := c.Validate(2); err == nil {
			t.Fatalf("bad process connection %d accepted", i)
		}
	}
	ok := traffic.Connection{Src: 0, Dst: 1, Rate: 1, PayloadBytes: 1,
		Process: traffic.ProcessPoisson, Seed: 3}
	if err := ok.Validate(2); err != nil {
		t.Fatal(err)
	}
}
