package mac

import (
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// UpperLayer receives MAC events: the network layer / routing agent.
type UpperLayer interface {
	// MacRecv delivers a decoded data packet addressed to this node (or
	// broadcast). from is the transmitting neighbour, rxPower the
	// received signal power in Watts.
	MacRecv(p *pkt.Packet, from pkt.NodeID, rxPower float64)
	// MacSnoop observes unicast data frames addressed to other nodes
	// (promiscuous mode), used by DSR-style optimizations. May be a no-op.
	MacSnoop(p *pkt.Packet, from, to pkt.NodeID, rxPower float64)
	// MacSent confirms a packet left this node successfully (ACK received,
	// or broadcast transmitted).
	MacSent(p *pkt.Packet, to pkt.NodeID)
	// MacSendFailed reports that retries were exhausted for p toward to —
	// the routing layer's link-breakage signal.
	MacSendFailed(p *pkt.Packet, to pkt.NodeID)
	// MacQueueFull reports that p was dropped because the interface
	// queue overflowed — a congestion signal, NOT a link failure.
	MacQueueFull(p *pkt.Packet, to pkt.NodeID)
}

// Stats counts per-node MAC activity for the normalized-MAC-load metric.
type Stats struct {
	RTSSent, CTSSent, AckSent uint64
	DataSent, DataRecv        uint64
	CtlBytes, DataBytes       uint64
	QueueDrops                uint64 // ifq full
	RetryDrops                uint64 // retry limit exceeded
	Retries                   uint64
	Duplicates                uint64 // retransmissions filtered by dedup
}

// Config tunes the MAC.
type Config struct {
	// QueueLimit is the interface queue depth (default 50, as in ns-2).
	QueueLimit int
	// RTSThreshold disables RTS/CTS for unicast data shorter than this
	// many bytes. 0 (default) means RTS/CTS precedes every unicast data
	// frame, matching the CMU study configuration. Set very large to
	// disable RTS/CTS entirely (MAC ablation bench).
	RTSThreshold int
}

type macState uint8

const (
	stIdle macState = iota
	stContend
	stWaitCTS
	stWaitACK
	stTxBcast
)

// Mac is one node's 802.11 DCF instance.
type Mac struct {
	eng   *sim.Engine
	radio *phy.Radio
	id    pkt.NodeID
	up    UpperLayer
	rng   *sim.RNG
	cfg   Config

	queue *ifQueue
	cur   *outPkt

	state            macState
	cw               int
	shortRetries     int
	longRetries      int
	backoffRemaining sim.Duration
	contendStart     sim.Time
	contendTimer     *sim.Timer
	responseTimer    *sim.Timer
	resumeTimer      *sim.Timer
	navUntil         sim.Time

	seq      uint16 // counter for issuing MAC sequence numbers
	curSeq   uint16 // sequence number of the packet in flight (stable across retries)
	dupCache map[pkt.NodeID]uint16
	dupSeen  map[pkt.NodeID]bool

	Stats Stats
}

// New creates a MAC for node id bound to radio. The caller must also set
// the radio's receiver to the returned Mac.
func New(eng *sim.Engine, id pkt.NodeID, radio *phy.Radio, up UpperLayer, rng *sim.RNG, cfg Config) *Mac {
	m := &Mac{
		eng:      eng,
		radio:    radio,
		id:       id,
		up:       up,
		rng:      rng,
		cfg:      cfg,
		queue:    newIfQueue(cfg.QueueLimit),
		cw:       CWMin,
		dupCache: make(map[pkt.NodeID]uint16),
		dupSeen:  make(map[pkt.NodeID]bool),
	}
	m.contendTimer = sim.NewTimer(eng, m.onContendTimeout)
	m.responseTimer = sim.NewTimer(eng, m.onResponseTimeout)
	m.resumeTimer = sim.NewTimer(eng, m.tryResume)
	return m
}

// QueueLen returns the current interface-queue depth (excluding the packet
// being transmitted).
func (m *Mac) QueueLen() int { return m.queue.len() }

// Send enqueues p for transmission to the link-level next hop. Broadcast
// packets use pkt.Broadcast.
func (m *Mac) Send(p *pkt.Packet, nextHop pkt.NodeID) {
	if !m.queue.push(outPkt{p: p, to: nextHop}) {
		m.Stats.QueueDrops++
		m.up.MacQueueFull(p, nextHop)
		return
	}
	if m.state == stIdle {
		m.nextPacket()
	}
}

// FlushDest removes all queued packets headed for the given next hop and
// hands them back to the upper layer via MacSendFailed (used after a link
// break so packets can be salvaged/rerouted).
func (m *Mac) FlushDest(to pkt.NodeID) {
	for _, op := range m.queue.removeDest(to) {
		m.up.MacSendFailed(op.p, op.to)
	}
}

// --- transmit path -----------------------------------------------------

func (m *Mac) nextPacket() {
	if m.cur == nil {
		op, ok := m.queue.pop()
		if !ok {
			m.state = stIdle
			return
		}
		m.cur = &op
		m.seq++
		m.curSeq = m.seq
	}
	m.state = stContend
	m.shortRetries, m.longRetries = 0, 0
	m.newBackoff()
	m.tryResume()
}

// newBackoff draws a fresh backoff from the current contention window.
func (m *Mac) newBackoff() {
	slots := m.rng.Intn(m.cw + 1)
	m.backoffRemaining = sim.Duration(slots) * SlotTime
}

// tryResume (re)starts the DIFS+backoff countdown if the medium is free.
func (m *Mac) tryResume() {
	if m.state != stContend || m.cur == nil {
		return
	}
	now := m.eng.Now()
	if m.radio.Busy() {
		return // OnChannelIdle will call us back
	}
	if now < m.navUntil {
		m.resumeTimer.ResetAt(m.navUntil)
		return
	}
	m.contendStart = now
	m.contendTimer.Reset(DIFS + m.backoffRemaining)
}

// freeze suspends a running countdown, banking the unconsumed backoff.
func (m *Mac) freeze() {
	if m.state != stContend || !m.contendTimer.Pending() {
		return
	}
	elapsed := m.eng.Now().Sub(m.contendStart)
	consumed := elapsed - DIFS
	if consumed < 0 {
		consumed = 0
	}
	m.backoffRemaining -= consumed
	if m.backoffRemaining < 0 {
		m.backoffRemaining = 0
	}
	m.contendTimer.Stop()
}

func (m *Mac) onContendTimeout() {
	if m.state != stContend || m.cur == nil {
		return
	}
	now := m.eng.Now()
	if m.radio.Busy() || now < m.navUntil {
		// Lost the race with an arrival in the same instant; re-contend.
		m.tryResume()
		return
	}
	p, to := m.cur.p, m.cur.to
	switch {
	case to == pkt.Broadcast:
		m.transmitData()
	case m.cfg.RTSThreshold > 0 && p.Size+DataHdrBytes < m.cfg.RTSThreshold:
		m.transmitData()
	case m.cfg.RTSThreshold == 0:
		m.transmitRTS()
	default:
		m.transmitRTS()
	}
}

func (m *Mac) transmitRTS() {
	dataTime := FrameTxTime(&Frame{Kind: FrameData, Pkt: m.cur.p})
	nav := SIFS + TxTime(CTSBytes) + SIFS + dataTime + SIFS + TxTime(AckBytes)
	f := &Frame{Kind: FrameRTS, From: m.id, To: m.cur.to, NAV: nav}
	m.Stats.RTSSent++
	m.Stats.CtlBytes += RTSBytes
	m.transmit(f)
	m.state = stWaitCTS
	// Timeout: frame airtime + SIFS + CTS airtime + propagation slack.
	m.responseTimer.Reset(FrameTxTime(f) + SIFS + TxTime(CTSBytes) + 2*SlotTime)
}

func (m *Mac) transmitData() {
	p, to := m.cur.p, m.cur.to
	var nav sim.Duration
	if to != pkt.Broadcast {
		nav = SIFS + TxTime(AckBytes)
	}
	f := &Frame{Kind: FrameData, From: m.id, To: to, NAV: nav, Seq: m.curSeq, Pkt: p}
	m.Stats.DataSent++
	m.Stats.DataBytes += uint64(FrameBytes(f))
	m.transmit(f)
	if to == pkt.Broadcast {
		// Fire-and-forget: done when the frame leaves the air.
		m.state = stTxBcast
		done := m.eng.Now().Add(FrameTxTime(f))
		m.eng.Schedule(done, func() {
			m.finishCurrent(true)
		})
		return
	}
	m.state = stWaitACK
	m.responseTimer.Reset(FrameTxTime(f) + SIFS + TxTime(AckBytes) + 2*SlotTime)
}

func (m *Mac) transmit(f *Frame) {
	m.radio.Transmit(f, FrameTxTime(f))
}

func (m *Mac) onResponseTimeout() {
	if m.cur == nil {
		return
	}
	m.Stats.Retries++
	switch m.state {
	case stWaitCTS:
		m.shortRetries++
		if m.shortRetries > ShortRetryLimit {
			m.giveUp()
			return
		}
	case stWaitACK:
		m.longRetries++
		if m.longRetries > LongRetryLimit {
			m.giveUp()
			return
		}
	default:
		return
	}
	m.cw = min(2*(m.cw+1)-1, CWMax)
	m.state = stContend
	m.newBackoff()
	m.tryResume()
}

func (m *Mac) giveUp() {
	op := m.cur
	m.cur = nil
	m.cw = CWMin
	m.state = stIdle
	m.Stats.RetryDrops++
	m.up.MacSendFailed(op.p, op.to)
	m.nextPacket()
}

func (m *Mac) finishCurrent(success bool) {
	op := m.cur
	m.cur = nil
	m.cw = CWMin
	m.state = stIdle
	if op != nil && success {
		m.up.MacSent(op.p, op.to)
	}
	m.nextPacket()
}

// --- receive path ------------------------------------------------------

// OnReceive implements phy.Receiver.
func (m *Mac) OnReceive(payload any, from pkt.NodeID, rxPower float64) {
	f := payload.(*Frame)
	now := m.eng.Now()
	if f.To != m.id && f.To != pkt.Broadcast {
		// Third-party frame: honour its NAV, optionally snoop data.
		if end := now.Add(f.NAV); end > m.navUntil {
			m.setNAV(end)
		}
		if f.Kind == FrameData && f.Pkt != nil {
			m.up.MacSnoop(f.Pkt, f.From, f.To, rxPower)
		}
		return
	}
	switch f.Kind {
	case FrameRTS:
		m.onRTS(f)
	case FrameCTS:
		m.onCTS(f)
	case FrameData:
		m.onData(f, rxPower)
	case FrameAck:
		m.onAck(f)
	}
}

func (m *Mac) setNAV(until sim.Time) {
	m.freeze()
	m.navUntil = until
	if m.state == stContend {
		m.resumeTimer.ResetAt(until)
	}
}

func (m *Mac) onRTS(f *Frame) {
	now := m.eng.Now()
	if now < m.navUntil {
		return // deferring for someone else's exchange
	}
	cts := &Frame{Kind: FrameCTS, From: m.id, To: f.From, NAV: f.NAV - SIFS - TxTime(CTSBytes)}
	m.respondAfterSIFS(cts)
}

func (m *Mac) onCTS(f *Frame) {
	if m.state != stWaitCTS || m.cur == nil || f.From != m.cur.to {
		return
	}
	m.responseTimer.Stop()
	m.shortRetries = 0
	m.state = stWaitACK
	// Arm the ACK timeout up front so a suppressed data send (pathological
	// transmit overlap) still recovers via the normal retry path.
	dataTime := FrameTxTime(&Frame{Kind: FrameData, Pkt: m.cur.p})
	m.responseTimer.Reset(SIFS + dataTime + SIFS + TxTime(AckBytes) + 2*SlotTime)
	m.eng.ScheduleIn(SIFS, func() {
		if m.cur == nil || m.state != stWaitACK {
			return
		}
		if m.radio.Transmitting() {
			return // ACK timeout will retry
		}
		p, to := m.cur.p, m.cur.to
		df := &Frame{Kind: FrameData, From: m.id, To: to, NAV: SIFS + TxTime(AckBytes), Seq: m.curSeq, Pkt: p}
		m.Stats.DataSent++
		m.Stats.DataBytes += uint64(FrameBytes(df))
		m.transmit(df)
	})
}

func (m *Mac) onData(f *Frame, rxPower float64) {
	if f.To == pkt.Broadcast {
		m.Stats.DataRecv++
		// Every broadcast receiver gets its own copy: receivers mutate
		// TTL/hop state, and the same frame fans out to many nodes.
		m.up.MacRecv(f.Pkt.Clone(), f.From, rxPower)
		return
	}
	// Unicast: ACK regardless of duplication, deliver only once.
	ack := &Frame{Kind: FrameAck, From: m.id, To: f.From}
	m.respondAfterSIFS(ack)
	if m.dupSeen[f.From] && m.dupCache[f.From] == f.Seq {
		m.Stats.Duplicates++
		return
	}
	m.dupSeen[f.From] = true
	m.dupCache[f.From] = f.Seq
	m.Stats.DataRecv++
	m.up.MacRecv(f.Pkt, f.From, rxPower)
}

func (m *Mac) onAck(f *Frame) {
	if m.state != stWaitACK || m.cur == nil || f.From != m.cur.to {
		return
	}
	m.responseTimer.Stop()
	m.finishCurrent(true)
}

// respondAfterSIFS transmits a control response SIFS after the frame that
// elicited it. Responses skip carrier sense per the standard.
func (m *Mac) respondAfterSIFS(f *Frame) {
	m.eng.ScheduleIn(SIFS, func() {
		if m.radio.Transmitting() {
			return // cannot preempt an ongoing transmission
		}
		switch f.Kind {
		case FrameCTS:
			m.Stats.CTSSent++
			m.Stats.CtlBytes += CTSBytes
		case FrameAck:
			m.Stats.AckSent++
			m.Stats.CtlBytes += AckBytes
		}
		m.transmit(f)
	})
}

// --- carrier-sense callbacks --------------------------------------------

// OnChannelBusy implements phy.Receiver.
func (m *Mac) OnChannelBusy() { m.freeze() }

// OnChannelIdle implements phy.Receiver.
func (m *Mac) OnChannelIdle() { m.tryResume() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
