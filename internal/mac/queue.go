package mac

import "adhocsim/internal/pkt"

// outPkt is a queued network-layer packet with its resolved next hop.
type outPkt struct {
	p  *pkt.Packet
	to pkt.NodeID
}

// ifQueue is the bounded interface queue between the network layer and the
// MAC. Mirroring the CMU ns-2 "priority queue", routing-protocol packets are
// enqueued ahead of data packets (control traffic must not starve behind a
// congested data backlog, or every protocol collapses identically). Within a
// class the order is FIFO; when full the incoming packet is dropped
// (drop-tail).
type ifQueue struct {
	items []outPkt
	limit int
	// nRouting is the number of routing packets at the head of items.
	nRouting int
}

func newIfQueue(limit int) *ifQueue {
	if limit <= 0 {
		limit = 50
	}
	return &ifQueue{limit: limit}
}

// push enqueues op. It reports false (and drops) when the queue is full.
func (q *ifQueue) push(op outPkt) bool {
	if len(q.items) >= q.limit {
		return false
	}
	if op.p.Kind == pkt.KindRouting {
		// Insert after the existing routing packets, before data.
		q.items = append(q.items, outPkt{})
		copy(q.items[q.nRouting+1:], q.items[q.nRouting:])
		q.items[q.nRouting] = op
		q.nRouting++
		return true
	}
	q.items = append(q.items, op)
	return true
}

// pop dequeues the highest-priority packet, or ok=false when empty.
func (q *ifQueue) pop() (outPkt, bool) {
	if len(q.items) == 0 {
		return outPkt{}, false
	}
	op := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	if q.nRouting > 0 {
		q.nRouting--
	}
	return op, true
}

func (q *ifQueue) len() int { return len(q.items) }

// removeDest drops every queued packet whose next hop is to, returning the
// removed packets. Routing protocols call this when a link is declared
// broken so queued traffic can be salvaged or rerouted instead of being
// hammered at a dead neighbour.
func (q *ifQueue) removeDest(to pkt.NodeID) []outPkt {
	var removed []outPkt
	kept := q.items[:0]
	nRouting := 0
	for i, op := range q.items {
		if op.to == to {
			removed = append(removed, op)
			continue
		}
		if i < q.nRouting {
			nRouting++
		}
		kept = append(kept, op)
	}
	// Zero the tail so packets aren't retained.
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = outPkt{}
	}
	q.items = kept
	q.nRouting = nRouting
	return removed
}
