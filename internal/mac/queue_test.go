package mac

import (
	"math/rand"
	"testing"

	"adhocsim/internal/pkt"
)

func TestQueuePropertyRoutingBeforeData(t *testing.T) {
	// Whatever the interleaving of pushes, every pop must return all
	// remaining routing packets before any data packet, and preserve FIFO
	// order within each class.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		q := newIfQueue(64)
		var wantRouting, wantData []uint64
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				p := pkt.RoutingPacket("X", 0, 1, 1, 8, 0)
				q.push(outPkt{p: p, to: 1})
				wantRouting = append(wantRouting, p.UID)
			} else {
				p := pkt.DataPacket(0, 1, 0, 8, 0)
				q.push(outPkt{p: p, to: 1})
				wantData = append(wantData, p.UID)
			}
		}
		want := append(wantRouting, wantData...)
		for i, w := range want {
			got, ok := q.pop()
			if !ok {
				t.Fatalf("trial %d: queue empty at %d", trial, i)
			}
			if got.p.UID != w {
				t.Fatalf("trial %d: pop %d = uid %d, want %d", trial, i, got.p.UID, w)
			}
		}
		if _, ok := q.pop(); ok {
			t.Fatalf("trial %d: extra packet", trial)
		}
	}
}

func TestQueuePropertyRemoveDestPreservesOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		q := newIfQueue(64)
		type rec struct {
			uid uint64
			to  pkt.NodeID
		}
		var all []rec
		for i := 0; i < 30; i++ {
			to := pkt.NodeID(r.Intn(3))
			var p *pkt.Packet
			if r.Intn(3) == 0 {
				p = pkt.RoutingPacket("X", 0, to, 1, 8, 0)
			} else {
				p = pkt.DataPacket(0, to, 0, 8, 0)
			}
			q.push(outPkt{p: p, to: to})
			all = append(all, rec{p.UID, to})
		}
		removed := q.removeDest(1)
		for _, op := range removed {
			if op.to != 1 {
				t.Fatal("removed wrong destination")
			}
		}
		var prevRoutingDone bool
		var got []rec
		for {
			op, ok := q.pop()
			if !ok {
				break
			}
			if op.to == 1 {
				t.Fatal("survivor headed to removed destination")
			}
			if op.p.Kind == pkt.KindRouting && prevRoutingDone {
				t.Fatal("routing packet after data packet")
			}
			if op.p.Kind == pkt.KindData {
				prevRoutingDone = true
			}
			got = append(got, rec{op.p.UID, op.to})
		}
		if len(got)+len(removed) != len(all) {
			t.Fatalf("lost packets: %d+%d != %d", len(got), len(removed), len(all))
		}
	}
}

func TestQueueLimitZeroUsesDefault(t *testing.T) {
	q := newIfQueue(0)
	for i := 0; i < 50; i++ {
		if !q.push(outPkt{p: pkt.DataPacket(0, 1, uint32(i), 8, 0), to: 1}) {
			t.Fatalf("default-limit queue full at %d", i)
		}
	}
	if q.push(outPkt{p: pkt.DataPacket(0, 1, 99, 8, 0), to: 1}) {
		t.Fatal("51st packet accepted with default limit 50")
	}
}
