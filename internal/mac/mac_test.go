package mac

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// upper is a test UpperLayer recording events.
type upper struct {
	recv     []*pkt.Packet
	recvFrom []pkt.NodeID
	snoop    []*pkt.Packet
	sent     []*pkt.Packet
	failed   []*pkt.Packet
	failedTo []pkt.NodeID
	qfull    []*pkt.Packet
}

func (u *upper) MacRecv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	u.recv = append(u.recv, p)
	u.recvFrom = append(u.recvFrom, from)
}
func (u *upper) MacSnoop(p *pkt.Packet, from, to pkt.NodeID, _ float64) {
	u.snoop = append(u.snoop, p)
}
func (u *upper) MacSent(p *pkt.Packet, to pkt.NodeID) { u.sent = append(u.sent, p) }
func (u *upper) MacSendFailed(p *pkt.Packet, to pkt.NodeID) {
	u.failed = append(u.failed, p)
	u.failedTo = append(u.failedTo, to)
}
func (u *upper) MacQueueFull(p *pkt.Packet, to pkt.NodeID) { u.qfull = append(u.qfull, p) }

// rig builds n nodes at the given static positions, all with the same config.
type rig struct {
	eng    *sim.Engine
	ch     *phy.Channel
	macs   []*Mac
	uppers []*upper
}

func buildRig(positions []geo.Point, cfg Config) *rig {
	return buildRigParams(positions, cfg, phy.DefaultParams())
}

func buildRigParams(positions []geo.Point, cfg Config, params phy.RadioParams) *rig {
	eng := sim.NewEngine()
	ch := phy.NewChannel(eng, params)
	root := sim.NewRNG(99)
	r := &rig{eng: eng, ch: ch}
	for i, p := range positions {
		p := p
		u := &upper{}
		radio := ch.AttachRadio(pkt.NodeID(i), func(sim.Time) geo.Point { return p }, nil)
		m := New(eng, pkt.NodeID(i), radio, u, root.Fork(int64(i)), cfg)
		attachReceiver(ch, pkt.NodeID(i), m)
		r.macs = append(r.macs, m)
		r.uppers = append(r.uppers, u)
	}
	return r
}

// attachReceiver wires the MAC back into the already-attached radio.
func attachReceiver(ch *phy.Channel, id pkt.NodeID, m *Mac) {
	// Radios are created with a nil receiver in buildRig; phy exposes no
	// setter, so rig construction uses this helper via the test-only
	// SetReceiver hook.
	ch.Radio(id).SetReceiver(m)
}

func chainRig(n int, spacing float64, cfg Config) *rig {
	tracks := mobility.Chain(n, spacing)
	pos := make([]geo.Point, n)
	for i, tr := range tracks {
		pos[i] = tr.At(0)
	}
	return buildRig(pos, cfg)
}

func data(src, dst pkt.NodeID, size int) *pkt.Packet {
	return pkt.DataPacket(src, dst, 0, size, 0)
}

func TestUnicastDelivery(t *testing.T) {
	r := chainRig(2, 200, Config{})
	p := data(0, 1, 64)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, 1) })
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[1].recv) != 1 || r.uppers[1].recv[0] != p {
		t.Fatalf("receiver got %d packets", len(r.uppers[1].recv))
	}
	if r.uppers[1].recvFrom[0] != 0 {
		t.Fatal("wrong link-level sender")
	}
	if len(r.uppers[0].sent) != 1 {
		t.Fatalf("sender confirmations = %d, want 1", len(r.uppers[0].sent))
	}
	if len(r.uppers[0].failed) != 0 {
		t.Fatal("spurious failure")
	}
	// RTS/CTS/DATA/ACK exchange must have happened.
	if r.macs[0].Stats.RTSSent != 1 || r.macs[1].Stats.CTSSent != 1 || r.macs[1].Stats.AckSent != 1 {
		t.Fatalf("exchange stats: RTS=%d CTS=%d ACK=%d",
			r.macs[0].Stats.RTSSent, r.macs[1].Stats.CTSSent, r.macs[1].Stats.AckSent)
	}
}

func TestUnicastWithoutRTS(t *testing.T) {
	r := chainRig(2, 200, Config{RTSThreshold: 1 << 20})
	p := data(0, 1, 64)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, 1) })
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[1].recv) != 1 {
		t.Fatal("no delivery without RTS")
	}
	if r.macs[0].Stats.RTSSent != 0 {
		t.Fatal("RTS sent despite huge threshold")
	}
	if r.macs[1].Stats.AckSent != 1 {
		t.Fatal("no ACK")
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	r := chainRig(4, 200, Config{}) // 0 reaches 1 only at 200 m spacing... 0-1:200, 0-2:400
	p := pkt.RoutingPacket("RREQ", 0, pkt.Broadcast, 5, 24, 0)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, pkt.Broadcast) })
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[1].recv) != 1 {
		t.Fatal("neighbor missed broadcast")
	}
	if len(r.uppers[2].recv) != 0 || len(r.uppers[3].recv) != 0 {
		t.Fatal("broadcast travelled beyond radio range")
	}
	if len(r.uppers[0].sent) != 1 {
		t.Fatal("broadcast completion not confirmed")
	}
	if r.macs[0].Stats.RTSSent != 0 || r.macs[1].Stats.AckSent != 0 {
		t.Fatal("broadcast must not use RTS or ACK")
	}
}

func TestRetryExhaustionReportsFailure(t *testing.T) {
	// Receiver 600 m away: out of range entirely; RTS gets no CTS.
	r := chainRig(2, 600, Config{})
	p := data(0, 1, 64)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, 1) })
	if err := r.eng.Run(sim.At(5)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[0].failed) != 1 || r.uppers[0].failed[0] != p {
		t.Fatalf("failures = %d, want 1", len(r.uppers[0].failed))
	}
	if r.uppers[0].failedTo[0] != 1 {
		t.Fatal("failure reported wrong next hop")
	}
	if got := r.macs[0].Stats.RTSSent; got != ShortRetryLimit+1 {
		t.Fatalf("RTS attempts = %d, want %d", got, ShortRetryLimit+1)
	}
	if r.macs[0].Stats.RetryDrops != 1 {
		t.Fatal("retry drop not counted")
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	r := chainRig(2, 200, Config{})
	var pkts []*pkt.Packet
	r.eng.ScheduleIn(0, func() {
		for i := 0; i < 10; i++ {
			p := data(0, 1, 64)
			p.Seq = uint32(i)
			pkts = append(pkts, p)
			r.macs[0].Send(p, 1)
		}
	})
	if err := r.eng.Run(sim.At(2)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[1].recv) != 10 {
		t.Fatalf("delivered %d/10", len(r.uppers[1].recv))
	}
	for i, p := range r.uppers[1].recv {
		if p.Seq != uint32(i) {
			t.Fatalf("out of order: pos %d has seq %d", i, p.Seq)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	r := chainRig(2, 600, Config{QueueLimit: 5}) // unreachable peer keeps MAC busy
	r.eng.ScheduleIn(0, func() {
		for i := 0; i < 10; i++ {
			r.macs[0].Send(data(0, 1, 64), 1)
		}
	})
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if r.macs[0].Stats.QueueDrops != 4 {
		// 1 in flight + 5 queued = 6 accepted, 4 dropped.
		t.Fatalf("queue drops = %d, want 4", r.macs[0].Stats.QueueDrops)
	}
}

func TestRoutingPriorityInQueue(t *testing.T) {
	q := newIfQueue(10)
	d1 := outPkt{p: data(0, 1, 64), to: 1}
	d2 := outPkt{p: data(0, 1, 64), to: 1}
	r1 := outPkt{p: pkt.RoutingPacket("RREQ", 0, pkt.Broadcast, 5, 24, 0), to: pkt.Broadcast}
	r2 := outPkt{p: pkt.RoutingPacket("RREP", 0, 1, 5, 24, 0), to: 1}
	q.push(d1)
	q.push(d2)
	q.push(r1)
	q.push(r2)
	want := []outPkt{r1, r2, d1, d2}
	for i, w := range want {
		got, ok := q.pop()
		if !ok || got.p != w.p {
			t.Fatalf("pop %d: got %v, want %v", i, got.p, w.p)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueRemoveDest(t *testing.T) {
	q := newIfQueue(10)
	a := outPkt{p: data(0, 1, 64), to: 1}
	b := outPkt{p: data(0, 2, 64), to: 2}
	c := outPkt{p: data(0, 1, 64), to: 1}
	rp := outPkt{p: pkt.RoutingPacket("RREP", 0, 1, 5, 24, 0), to: 2}
	q.push(a)
	q.push(b)
	q.push(c)
	q.push(rp)
	removed := q.removeDest(1)
	if len(removed) != 2 {
		t.Fatalf("removed %d, want 2", len(removed))
	}
	first, _ := q.pop()
	if first.p != rp.p {
		t.Fatal("routing priority lost after removeDest")
	}
	second, ok := q.pop()
	if !ok || second.p != b.p {
		t.Fatal("wrong survivor")
	}
}

func TestHiddenTerminalEventualDelivery(t *testing.T) {
	// With the default 550 m carrier-sense range, two nodes in range of a
	// common receiver always hear each other (550 > 2·250) — the classic
	// hidden-terminal geometry needs a reduced CS range. Nodes 0 and 2 are
	// 480 m apart (beyond the 300 m CS range here) and both 240 m from the
	// middle receiver: mutually hidden. RTS/CTS plus retries must still
	// deliver the bulk of both flows.
	pos := []geo.Point{geo.Pt(0, 0), geo.Pt(240, 0), geo.Pt(480, 0)}
	r := buildRigParams(pos, Config{}, phy.ParamsForRange(250, 300))
	const n = 20
	r.eng.ScheduleIn(0, func() {
		for i := 0; i < n; i++ {
			p0 := data(0, 1, 64)
			p0.Seq = uint32(i)
			r.macs[0].Send(p0, 1)
			p2 := data(2, 1, 64)
			p2.Seq = uint32(i)
			r.macs[2].Send(p2, 1)
		}
	})
	if err := r.eng.Run(sim.At(10)); err != nil {
		t.Fatal(err)
	}
	if got := len(r.uppers[1].recv); got < 2*n*9/10 {
		t.Fatalf("hidden-terminal delivery %d/%d too low", got, 2*n)
	}
}

func TestDuplicateFiltering(t *testing.T) {
	// Force an ACK loss scenario indirectly: run many packets between two
	// nodes with an interferer; dedup must ensure the upper layer never
	// sees the same packet twice.
	pos := []geo.Point{geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(400, 0)}
	r := buildRig(pos, Config{})
	const n = 30
	r.eng.ScheduleIn(0, func() {
		for i := 0; i < n; i++ {
			p := data(0, 1, 512)
			p.Seq = uint32(i)
			r.macs[0].Send(p, 1)
			r.macs[2].Send(data(2, 1, 512), 1)
		}
	})
	if err := r.eng.Run(sim.At(20)); err != nil {
		t.Fatal(err)
	}
	seen := map[*pkt.Packet]int{}
	for _, p := range r.uppers[1].recv {
		seen[p]++
		if seen[p] > 1 {
			t.Fatal("duplicate delivery to upper layer")
		}
	}
}

func TestSnoopObservesThirdPartyData(t *testing.T) {
	// 0→1 unicast; node 2 within range of 0 must snoop the data frame.
	pos := []geo.Point{geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(100, 100)}
	r := buildRig(pos, Config{})
	p := data(0, 1, 64)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, 1) })
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[2].snoop) != 1 || r.uppers[2].snoop[0] != p {
		t.Fatalf("snooped %d frames, want 1", len(r.uppers[2].snoop))
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// 5 nodes in mutual range all send bursts to node 0: CSMA/CA must
	// serialize without losing anything.
	pos := []geo.Point{
		geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(0, 100), geo.Pt(100, 100), geo.Pt(50, 50),
	}
	r := buildRig(pos, Config{})
	const per = 10
	r.eng.ScheduleIn(0, func() {
		for s := 1; s < 5; s++ {
			for i := 0; i < per; i++ {
				r.macs[s].Send(data(pkt.NodeID(s), 0, 64), 0)
			}
		}
	})
	if err := r.eng.Run(sim.At(10)); err != nil {
		t.Fatal(err)
	}
	if got := len(r.uppers[0].recv); got != 4*per {
		t.Fatalf("delivered %d/%d under contention", got, 4*per)
	}
}

func TestFlushDest(t *testing.T) {
	r := chainRig(2, 600, Config{}) // peer unreachable; packets pile up
	r.eng.ScheduleIn(0, func() {
		for i := 0; i < 5; i++ {
			r.macs[0].Send(data(0, 1, 64), 1)
		}
	})
	r.eng.ScheduleIn(sim.Millis(1), func() { r.macs[0].FlushDest(1) })
	if err := r.eng.Run(sim.At(3)); err != nil {
		t.Fatal(err)
	}
	// 4 flushed from the queue + 1 in-flight eventually fails = 5.
	if got := len(r.uppers[0].failed); got != 5 {
		t.Fatalf("failures after flush = %d, want 5", got)
	}
}

func TestTxTimeMath(t *testing.T) {
	// 64-byte frame at 2 Mbit/s: 192 µs PLCP + 256 µs payload.
	if got := TxTime(64); got != sim.Micros(192+256) {
		t.Fatalf("TxTime(64) = %v", got)
	}
	f := &Frame{Kind: FrameData, Pkt: data(0, 1, 64)}
	if FrameBytes(f) != 64+8+20+DataHdrBytes {
		t.Fatalf("FrameBytes = %d", FrameBytes(f))
	}
	if FrameBytes(&Frame{Kind: FrameRTS}) != RTSBytes {
		t.Fatal("RTS bytes")
	}
	if FrameKind(9).String() == "" || FrameRTS.String() != "RTS" {
		t.Fatal("FrameKind strings")
	}
}
