package mac

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// TestNAVDefersThirdParty verifies virtual carrier sense: a bystander that
// hears an RTS addressed elsewhere must defer its own transmission until
// the announced exchange completes.
func TestNAVDefersThirdParty(t *testing.T) {
	// 0 and 1 exchange; 2 hears both and wants to send to 1 concurrently.
	pos := []geo.Point{geo.Pt(0, 0), geo.Pt(150, 0), geo.Pt(75, 100)}
	r := buildRig(pos, Config{})
	p01 := data(0, 1, 512)
	p21 := data(2, 1, 512)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p01, 1) })
	// Node 2 queues its packet shortly after node 0 wins the channel.
	r.eng.ScheduleIn(sim.Micros(400), func() { r.macs[2].Send(p21, 1) })
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(r.uppers[1].recv) != 2 {
		t.Fatalf("receiver got %d/2 under NAV contention", len(r.uppers[1].recv))
	}
	// Both exchanges succeeded without retry storms.
	if r.macs[0].Stats.RetryDrops != 0 || r.macs[2].Stats.RetryDrops != 0 {
		t.Fatal("retry drops under NAV deferral")
	}
}

// TestBackoffEscalatesContentionWindow checks the CW doubling on timeout.
func TestBackoffEscalatesContentionWindow(t *testing.T) {
	r := chainRig(2, 600, Config{}) // peer unreachable → repeated RTS timeouts
	p := data(0, 1, 64)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, 1) })
	if err := r.eng.Run(sim.At(2)); err != nil {
		t.Fatal(err)
	}
	if r.macs[0].Stats.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if r.macs[0].cw != CWMin {
		t.Fatalf("cw = %d after giving up, want reset to %d", r.macs[0].cw, CWMin)
	}
}

// TestBroadcastDeliversClones ensures every broadcast receiver gets an
// independent packet copy (receivers mutate TTL/hops).
func TestBroadcastDeliversClones(t *testing.T) {
	pos := []geo.Point{geo.Pt(0, 0), geo.Pt(150, 0), geo.Pt(0, 150), geo.Pt(150, 150)}
	r := buildRig(pos, Config{})
	p := pkt.RoutingPacket("X", 0, pkt.Broadcast, 5, 16, 0)
	r.eng.ScheduleIn(0, func() { r.macs[0].Send(p, pkt.Broadcast) })
	if err := r.eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	var uids []uint64
	for i := 1; i < 4; i++ {
		if len(r.uppers[i].recv) != 1 {
			t.Fatalf("node %d got %d copies", i, len(r.uppers[i].recv))
		}
		got := r.uppers[i].recv[0]
		if got == p {
			t.Fatal("receiver shares the sender's packet object")
		}
		got.TTL-- // mutate: must not affect others
		uids = append(uids, got.UID)
	}
	if uids[0] == uids[1] || uids[1] == uids[2] {
		t.Fatal("clones share UIDs")
	}
	if p.TTL != 5 {
		t.Fatal("receiver mutation leaked into the original")
	}
}

// TestSaturatedChannelDropsAreCounted drives far more load than 2 Mbit/s
// can carry and checks accounting consistency: everything sent is either
// delivered, queued, or counted as a drop.
func TestSaturatedChannelDropsAreCounted(t *testing.T) {
	r := chainRig(2, 150, Config{QueueLimit: 10})
	const n = 300
	r.eng.ScheduleIn(0, func() {
		for i := 0; i < n; i++ {
			p := data(0, 1, 1400)
			p.Seq = uint32(i)
			r.macs[0].Send(p, 1)
		}
	})
	if err := r.eng.Run(sim.At(2)); err != nil {
		t.Fatal(err)
	}
	delivered := uint64(len(r.uppers[1].recv))
	dropped := r.macs[0].Stats.QueueDrops
	pending := uint64(r.macs[0].QueueLen())
	inFlight := uint64(0)
	if r.macs[0].cur != nil {
		inFlight = 1
	}
	if delivered+dropped+pending+inFlight != n {
		t.Fatalf("accounting leak: %d delivered + %d dropped + %d pending + %d in flight != %d",
			delivered, dropped, pending, inFlight, n)
	}
	if dropped == 0 {
		t.Fatal("saturation produced no queue drops")
	}
}
