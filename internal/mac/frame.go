// Package mac implements a IEEE 802.11 DCF-style medium access control
// layer over the phy channel: CSMA/CA with slotted binary-exponential
// backoff, virtual carrier sense (NAV), an optional RTS/CTS exchange for
// unicast data, positive ACKs with retry limits, and a bounded drop-tail
// interface queue that gives routing packets priority (as the CMU ns-2
// extensions do).
//
// Simplifications relative to the full standard, none of which affect the
// relative comparison of routing protocols: no EIFS, no fragmentation, a
// single data rate for control and data frames, and backoff that freezes as
// remaining time rather than discrete slot counts.
package mac

import (
	"fmt"

	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// FrameKind enumerates 802.11 frame types used by the DCF.
type FrameKind uint8

const (
	// FrameData carries a network-layer packet.
	FrameData FrameKind = iota
	// FrameRTS is a request-to-send.
	FrameRTS
	// FrameCTS is a clear-to-send.
	FrameCTS
	// FrameAck is a positive acknowledgement.
	FrameAck
)

func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "DATA"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameAck:
		return "ACK"
	default:
		return fmt.Sprintf("frame(%d)", uint8(k))
	}
}

// Frame is the on-air unit.
type Frame struct {
	Kind FrameKind
	From pkt.NodeID
	To   pkt.NodeID // pkt.Broadcast for broadcast data
	// NAV is the duration-field: time the exchange will continue to
	// occupy the medium after this frame ends. Third parties defer for it.
	NAV sim.Duration
	// Seq is the MAC sequence number, used for duplicate detection of
	// retransmitted data frames.
	Seq uint16
	// Pkt is the carried packet (data frames only).
	Pkt *pkt.Packet
}

// String renders the frame compactly for traces.
func (f *Frame) String() string {
	if f.Kind == FrameData {
		return fmt.Sprintf("%v %v->%v seq=%d [%v]", f.Kind, f.From, f.To, f.Seq, f.Pkt)
	}
	return fmt.Sprintf("%v %v->%v", f.Kind, f.From, f.To)
}

// 802.11 DSSS timing and framing constants at 2 Mbit/s, matching the CMU
// ns-2 configuration used by the study family.
const (
	SlotTime = 20 * sim.Microsecond
	SIFS     = 10 * sim.Microsecond
	DIFS     = 50 * sim.Microsecond // SIFS + 2·slot

	// PLCPOverhead is the preamble+header airtime prepended to every
	// frame (long preamble at 1 Mbit/s).
	PLCPOverhead = 192 * sim.Microsecond

	// BitRate is the channel rate for all MAC payloads.
	BitRate = 2_000_000 // bits per second

	CWMin = 31
	CWMax = 1023

	// ShortRetryLimit bounds RTS attempts, LongRetryLimit data attempts.
	ShortRetryLimit = 7
	LongRetryLimit  = 4

	// Frame sizes in bytes (header + FCS).
	RTSBytes     = 20
	CTSBytes     = 14
	AckBytes     = 14
	DataHdrBytes = 28 // 24-byte MAC header + 4-byte FCS
)

// TxTime returns the airtime of a frame with the given total byte count.
func TxTime(bytes int) sim.Duration {
	return PLCPOverhead + sim.Duration(bytes)*8*sim.Second/BitRate
}

// FrameBytes returns the total on-air size of f, including MAC framing.
func FrameBytes(f *Frame) int {
	switch f.Kind {
	case FrameRTS:
		return RTSBytes
	case FrameCTS:
		return CTSBytes
	case FrameAck:
		return AckBytes
	default:
		return DataHdrBytes + f.Pkt.Size
	}
}

// FrameTxTime returns the airtime of f.
func FrameTxTime(f *Frame) sim.Duration { return TxTime(FrameBytes(f)) }
