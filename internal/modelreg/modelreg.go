// Package modelreg is the shared machinery behind the scenario model
// registries (mobility, traffic): a case-insensitive named-builder table
// with a default entry, and the read-tracking parameter-map view builders
// consume. The model packages wrap one Registry instance each with their
// kind-specific Builder signature, so registration semantics (name
// canonicalization, duplicate/nil rejection, error wording) cannot drift
// between them.
package modelreg

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"adhocsim/internal/sim"
)

// Canonical normalizes a model name: lower-case, trimmed.
func Canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Registry is a named-builder table for one model kind. B is the kind's
// builder function type.
type Registry[B any] struct {
	kind        string // "mobility" / "traffic": error-message prefix
	defaultName string // resolved when a lookup name is empty

	mu sync.RWMutex
	m  map[string]B
}

// New creates a registry for the given kind whose empty-name lookups
// resolve to defaultName.
func New[B any](kind, defaultName string) *Registry[B] {
	return &Registry[B]{kind: kind, defaultName: defaultName, m: make(map[string]B)}
}

// Register adds a builder under the given case-insensitive name.
// Registering an empty name, a nil builder, or a taken name is an error.
func (r *Registry[B]) Register(name string, b B) error {
	key := Canonical(name)
	if key == "" {
		return fmt.Errorf("%s: empty model name", r.kind)
	}
	if rv := reflect.ValueOf(b); !rv.IsValid() || (rv.Kind() == reflect.Func && rv.IsNil()) {
		return fmt.Errorf("%s: nil builder for model %q", r.kind, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[key]; dup {
		return fmt.Errorf("%s: model %q already registered", r.kind, key)
	}
	r.m[key] = b
	return nil
}

// MustRegister is Register for built-ins, where failure is a programming
// error.
func (r *Registry[B]) MustRegister(name string, b B) {
	if err := r.Register(name, b); err != nil {
		panic(err)
	}
}

// Names returns every registered model name, sorted.
func (r *Registry[B]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Known reports whether a name resolves (the empty name selects the
// default model).
func (r *Registry[B]) Known(name string) bool {
	key := Canonical(name)
	if key == "" {
		key = r.defaultName
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.m[key]
	return ok
}

// Lookup resolves a name (empty selects the default model) to its builder
// and canonical name.
func (r *Registry[B]) Lookup(name string) (B, string, error) {
	key := Canonical(name)
	if key == "" {
		key = r.defaultName
	}
	r.mu.RLock()
	b, ok := r.m[key]
	r.mu.RUnlock()
	if !ok {
		var zero B
		return zero, key, fmt.Errorf("%s: unknown model %q (registered: %s)",
			r.kind, name, strings.Join(r.Names(), ", "))
	}
	return b, key, nil
}

// Params wraps a model's parameter map, tracking which keys were read so a
// builder can reject unknown (misspelled) parameters with Err.
type Params struct {
	m    map[string]float64
	used map[string]bool
}

// NewParams wraps a raw parameter map (nil is fine).
func NewParams(m map[string]float64) Params {
	return Params{m: m, used: make(map[string]bool)}
}

// Get returns the parameter's value, or def when absent.
func (p Params) Get(key string, def float64) float64 {
	p.used[key] = true
	if v, ok := p.m[key]; ok {
		return v
	}
	return def
}

// Duration returns a parameter expressed in seconds as a sim.Duration.
func (p Params) Duration(key string, def sim.Duration) sim.Duration {
	p.used[key] = true
	if v, ok := p.m[key]; ok {
		return sim.Seconds(v)
	}
	return def
}

// Used returns the sorted parameter keys the builder has consumed so far
// (via Get/Duration). Dry-building a model with an empty map and reading
// Used afterwards yields the model's parameter vocabulary — the registry
// listings behind `adhocsim -list-models` are produced this way.
func (p Params) Used() []string {
	out := make([]string, 0, len(p.used))
	for k := range p.used {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Err reports the first parameter key that no Get/Duration call consumed —
// the guard against silently-ignored misspellings. Builders call it last.
func (p Params) Err() error {
	var unknown []string
	for k := range p.m {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	known := make([]string, 0, len(p.used))
	for k := range p.used {
		known = append(known, k)
	}
	sort.Strings(known)
	return fmt.Errorf("unknown parameter %q (known: %s)", unknown[0], strings.Join(known, ", "))
}
