package geo

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteWithin is the reference O(N) neighbourhood query.
func bruteWithin(pts []Point, center Point, r float64, exclude int32) []int32 {
	var out []int32
	for i, p := range pts {
		if int32(i) == exclude {
			continue
		}
		if p.Dist2(center) <= r*r {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestFlatGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(80)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000-100, rng.Float64()*600-100)
		}
		cell := 50 + rng.Float64()*300
		g := NewFlatGrid(cell)
		g.Rebuild(pts)
		if g.Len() != n {
			t.Fatalf("Len = %d, want %d", g.Len(), n)
		}
		for q := 0; q < 10; q++ {
			center := Pt(rng.Float64()*1200-200, rng.Float64()*800-200)
			r := rng.Float64() * 400
			exclude := int32(rng.Intn(n))
			got := g.WithinSorted(center, r, exclude, nil)
			want := bruteWithin(pts, center, r, exclude)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: got %v, want %v (order)", trial, got, want)
				}
			}
		}
	}
}

func TestFlatGridRebuildReuses(t *testing.T) {
	g := NewFlatGrid(100)
	pts := []Point{Pt(0, 0), Pt(50, 50), Pt(500, 500)}
	g.Rebuild(pts)
	if got := g.WithinSorted(Pt(0, 0), 80, -1, nil); len(got) != 2 {
		t.Fatalf("first build: %v", got)
	}
	// Rebuild with moved points: old contents must be gone.
	pts[0], pts[1], pts[2] = Pt(500, 500), Pt(510, 510), Pt(0, 0)
	g.Rebuild(pts)
	got := g.WithinSorted(Pt(505, 505), 20, -1, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("after rebuild: %v", got)
	}
}

func TestFlatGridEmpty(t *testing.T) {
	g := NewFlatGrid(100)
	g.Rebuild(nil)
	if g.Len() != 0 {
		t.Fatal("empty grid has items")
	}
	if got := g.WithinSorted(Pt(0, 0), 100, -1, nil); got != nil {
		t.Fatalf("query on empty grid: %v", got)
	}
}

func TestGridWithinSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid(120)
	n := 60
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*800, rng.Float64()*800)
	}
	// Insert in random order: output order must not depend on it.
	for _, i := range rng.Perm(n) {
		g.Insert(int32(i), pts[i])
	}
	for q := 0; q < 20; q++ {
		center := Pt(rng.Float64()*800, rng.Float64()*800)
		got := g.WithinSorted(center, 250, -1, nil)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("unsorted result: %v", got)
		}
		want := bruteWithin(pts, center, 250, -1)
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
}

func TestGridSameCellMoveUpdatesStoredPosition(t *testing.T) {
	g := NewGrid(100)
	g.Insert(1, Pt(10, 10))
	g.Insert(1, Pt(90, 90)) // same cell, new position
	if got := g.Within(Pt(12, 12), 10, -1, nil); len(got) != 0 {
		t.Fatalf("stale cell position survived the move: %v", got)
	}
	if got := g.Within(Pt(90, 90), 5, -1, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("moved item not found: %v", got)
	}
}
