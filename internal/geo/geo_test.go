package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(4, 6)
	if p.Add(q) != Pt(5, 8) {
		t.Fatal("Add")
	}
	if q.Sub(p) != Pt(3, 4) {
		t.Fatal("Sub")
	}
	if !almostEq(p.Dist(q), 5) {
		t.Fatalf("Dist = %v", p.Dist(q))
	}
	if !almostEq(p.Dist2(q), 25) {
		t.Fatal("Dist2")
	}
	if p.Scale(2) != Pt(2, 4) {
		t.Fatal("Scale")
	}
	if !almostEq(p.Dot(q), 16) {
		t.Fatal("Dot")
	}
	if u := Pt(3, 4).Unit(); !almostEq(u.Len(), 1) {
		t.Fatal("Unit length")
	}
	if Pt(0, 0).Unit() != Pt(0, 0) {
		t.Fatal("Unit of zero")
	}
	if s := Pt(1, 2).String(); s != "(1.00, 2.00)" {
		t.Fatalf("String = %q", s)
	}
}

func TestLerpEndpoints(t *testing.T) {
	// t=0 is an exact identity; t=1 holds to within a relative epsilon
	// (p + (q-p) may round for extreme magnitudes).
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := Pt(r.Float64()*2000-1000, r.Float64()*2000-1000)
		b := Pt(r.Float64()*2000-1000, r.Float64()*2000-1000)
		if a.Lerp(b, 0) != a {
			t.Fatalf("Lerp(0) != a for %v %v", a, b)
		}
		if e := a.Lerp(b, 1); e.Dist(b) > 1e-9 {
			t.Fatalf("Lerp(1) = %v, want %v", e, b)
		}
	}
}

func TestUnitScaleProperty(t *testing.T) {
	f := func(x, y float64) bool {
		p := Pt(math.Mod(x, 1e6), math.Mod(y, 1e6))
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || (p.X == 0 && p.Y == 0) {
			return true
		}
		u := p.Unit()
		return math.Abs(u.Len()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpMidpoint(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Pt(r.Float64()*1000, r.Float64()*1000)
		b := Pt(r.Float64()*1000, r.Float64()*1000)
		m := a.Lerp(b, 0.5)
		if !almostEq(m.Dist(a), m.Dist(b)) {
			t.Fatalf("midpoint not equidistant: %v %v %v", a, b, m)
		}
	}
}

func TestRect(t *testing.T) {
	r := Rect{W: 100, H: 50}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(100, 50)) || r.Contains(Pt(100.1, 0)) || r.Contains(Pt(-1, 10)) {
		t.Fatal("Contains")
	}
	if r.Clamp(Pt(-5, 60)) != Pt(0, 50) {
		t.Fatal("Clamp")
	}
	if r.Clamp(Pt(40, 20)) != Pt(40, 20) {
		t.Fatal("Clamp of inner point must be identity")
	}
	if !almostEq(r.Area(), 5000) {
		t.Fatal("Area")
	}
	if !almostEq(r.Diagonal(), math.Hypot(100, 50)) {
		t.Fatal("Diagonal")
	}
}

func TestGridBasic(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, Pt(5, 5))
	g.Insert(2, Pt(15, 5))
	g.Insert(3, Pt(95, 95))
	got := g.Within(Pt(0, 0), 20, -1, nil)
	if len(got) != 2 {
		t.Fatalf("Within found %v, want ids 1,2", got)
	}
	got = g.Within(Pt(0, 0), 20, 1, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Within with exclusion found %v, want [2]", got)
	}
	if g.Len() != 3 {
		t.Fatal("Len")
	}
	p, ok := g.Position(3)
	if !ok || p != Pt(95, 95) {
		t.Fatal("Position")
	}
	g.Remove(2)
	if got := g.Within(Pt(0, 0), 200, -1, nil); len(got) != 2 {
		t.Fatalf("after Remove: %v", got)
	}
	g.Remove(2) // removing twice is a no-op
	if g.Len() != 2 {
		t.Fatal("Len after double remove")
	}
}

func TestGridMove(t *testing.T) {
	g := NewGrid(25)
	g.Insert(7, Pt(0, 0))
	g.Move(7, Pt(300, 300))
	if got := g.Within(Pt(0, 0), 50, -1, nil); len(got) != 0 {
		t.Fatalf("item still found at old cell: %v", got)
	}
	if got := g.Within(Pt(300, 300), 1, -1, nil); len(got) != 1 {
		t.Fatalf("item not found at new cell: %v", got)
	}
	// Move within the same cell.
	g.Move(7, Pt(301, 301))
	if got := g.Within(Pt(301, 301), 2, -1, nil); len(got) != 1 {
		t.Fatal("intra-cell move lost item")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Move of unknown id must panic")
		}
	}()
	g.Move(99, Pt(0, 0))
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, Pt(-5, -5))
	g.Insert(2, Pt(-15, -25))
	if got := g.Within(Pt(-10, -10), 30, -1, nil); len(got) != 2 {
		t.Fatalf("negative-coordinate query found %v", got)
	}
}

// TestGridMatchesBruteForce is the core correctness property: Within must
// return exactly the set a brute-force distance scan returns.
func TestGridMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		cell := 5 + r.Float64()*100
		g := NewGrid(cell)
		n := 50 + r.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(r.Float64()*1500, r.Float64()*300)
			g.Insert(int32(i), pts[i])
		}
		for q := 0; q < 20; q++ {
			c := Pt(r.Float64()*1500, r.Float64()*300)
			radius := r.Float64() * 400
			got := g.Within(c, radius, -1, nil)
			want := map[int32]bool{}
			for i, p := range pts {
				if p.Dist(c) <= radius {
					want[int32(i)] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("cell=%.1f r=%.1f: grid found %d, brute force %d", cell, radius, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("grid returned id %d outside radius", id)
				}
			}
		}
	}
}

func TestGridForEach(t *testing.T) {
	g := NewGrid(10)
	for i := int32(0); i < 10; i++ {
		g.Insert(i, Pt(float64(i)*7, 0))
	}
	seen := map[int32]bool{}
	g.ForEach(func(id int32, p Point) { seen[id] = true })
	if len(seen) != 10 {
		t.Fatalf("ForEach visited %d items", len(seen))
	}
}

func BenchmarkGridWithin(b *testing.B) {
	g := NewGrid(250)
	r := rand.New(rand.NewSource(1))
	for i := int32(0); i < 100; i++ {
		g.Insert(i, Pt(r.Float64()*1500, r.Float64()*300))
	}
	buf := make([]int32, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(Pt(750, 150), 250, -1, buf[:0])
	}
}
