// Package geo provides 2-D geometry primitives and a uniform spatial hash
// grid used by the radio channel for O(1)-neighbourhood queries.
package geo

import (
	"fmt"
	"math"
)

// Point is a position (or vector) in the plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Len returns the Euclidean norm of p.
func (p Point) Len() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared distance between p and q (cheaper than Dist).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Unit returns p normalized to length 1, or the zero point if p is zero.
func (p Point) Unit() Point {
	l := p.Len()
	if l == 0 {
		return Point{}
	}
	return Point{p.X / l, p.Y / l}
}

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle anchored at the origin: the simulation
// area [0,W]×[0,H].
type Rect struct {
	W, H float64
}

// Contains reports whether p lies in the rectangle (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{math.Min(math.Max(p.X, 0), r.W), math.Min(math.Max(p.Y, 0), r.H)}
}

// Area returns the rectangle's area in m².
func (r Rect) Area() float64 { return r.W * r.H }

// Diagonal returns the length of the rectangle's diagonal.
func (r Rect) Diagonal() float64 { return math.Hypot(r.W, r.H) }
