package geo

// Grid is a uniform spatial hash over integer item ids. It supports moving
// items and querying all items within a radius of a point. Cell size should
// be on the order of the query radius for best performance; correctness does
// not depend on it.
//
// The grid uses open hashing on (cx,cy) cell coordinates so it handles
// unbounded coordinates (nodes may briefly leave the nominal area). Each
// cell stores (id, position) pairs so that range queries touch no hash
// table beyond the per-cell lookup — the inner distance test runs over a
// contiguous slice.
type Grid struct {
	cell  float64
	cells map[cellKey][]gridItem
	pos   map[int32]Point
}

type cellKey struct{ cx, cy int32 }

type gridItem struct {
	id int32
	p  Point
}

// NewGrid creates a grid with the given cell edge length in metres.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geo: non-positive grid cell size")
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]gridItem),
		pos:   make(map[int32]Point),
	}
}

func (g *Grid) key(p Point) cellKey {
	return cellKey{int32(floorDiv(p.X, g.cell)), int32(floorDiv(p.Y, g.cell))}
}

func floorDiv(a, b float64) float64 {
	q := a / b
	f := float64(int64(q))
	if q < 0 && q != f {
		f--
	}
	return f
}

// Insert adds an item at p. Inserting an existing id moves it.
func (g *Grid) Insert(id int32, p Point) {
	if old, ok := g.pos[id]; ok {
		ko, kn := g.key(old), g.key(p)
		if ko == kn {
			g.pos[id] = p
			items := g.cells[ko]
			for i := range items {
				if items[i].id == id {
					items[i].p = p
					break
				}
			}
			return
		}
		g.removeFromCell(ko, id)
	}
	g.pos[id] = p
	k := g.key(p)
	g.cells[k] = append(g.cells[k], gridItem{id: id, p: p})
}

// Move updates an item's position. It panics if the id is unknown.
func (g *Grid) Move(id int32, p Point) {
	if _, ok := g.pos[id]; !ok {
		panic("geo: Move of unknown grid item")
	}
	g.Insert(id, p)
}

// Remove deletes an item. Removing an unknown id is a no-op.
func (g *Grid) Remove(id int32) {
	p, ok := g.pos[id]
	if !ok {
		return
	}
	g.removeFromCell(g.key(p), id)
	delete(g.pos, id)
}

func (g *Grid) removeFromCell(k cellKey, id int32) {
	items := g.cells[k]
	for i := range items {
		if items[i].id == id {
			items[i] = items[len(items)-1]
			items = items[:len(items)-1]
			break
		}
	}
	if len(items) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = items
	}
}

// Position returns the stored position of id.
func (g *Grid) Position(id int32) (Point, bool) {
	p, ok := g.pos[id]
	return p, ok
}

// Len returns the number of stored items.
func (g *Grid) Len() int { return len(g.pos) }

// Within appends to dst the ids of all items with Dist(center) <= r,
// excluding exclude (pass a negative id to exclude nothing), and returns the
// extended slice. Results are in arbitrary order; use WithinSorted when the
// caller needs a deterministic visiting order.
func (g *Grid) Within(center Point, r float64, exclude int32, dst []int32) []int32 {
	r2 := r * r
	lo := g.key(Point{center.X - r, center.Y - r})
	hi := g.key(Point{center.X + r, center.Y + r})
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, it := range g.cells[cellKey{cx, cy}] {
				if it.id == exclude {
					continue
				}
				if it.p.Dist2(center) <= r2 {
					dst = append(dst, it.id)
				}
			}
		}
	}
	return dst
}

// WithinSorted is Within with the results sorted ascending by id — the
// deterministic neighbourhood query: independent of insertion history and
// cell hashing, the caller visits candidates in the same order a dense
// id-ordered scan would. Sorting is an allocation-free insertion sort: the
// result is a near-sorted handful of ids (one short ascending run per
// visited cell), the regime where insertion sort beats the libraries.
func (g *Grid) WithinSorted(center Point, r float64, exclude int32, dst []int32) []int32 {
	start := len(dst)
	dst = g.Within(center, r, exclude, dst)
	insertionSortIDs(dst[start:])
	return dst
}

// insertionSortIDs sorts a small id slice ascending in place without
// allocating — the regime of grid query results (a handful of ids, one
// short ascending run per visited cell), where insertion sort beats the
// libraries. Shared by Grid and FlatGrid.
func insertionSortIDs(ids []int32) {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// ForEach visits every stored item.
func (g *Grid) ForEach(fn func(id int32, p Point)) {
	for id, p := range g.pos {
		fn(id, p)
	}
}
