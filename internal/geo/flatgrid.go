package geo

// FlatGrid is the rebuild-oriented sibling of Grid: a uniform grid over a
// dense id space (0..n-1) stored in one flat cell array, rebuilt wholesale
// from a position slice. Queries do pure index arithmetic — no hashing, no
// map lookups — which makes it the right structure for the radio channel's
// periodic reindex (positions are recaptured for every node anyway) while
// the hash-based Grid serves callers that move items incrementally.
type FlatGrid struct {
	cell       float64
	minX, minY float64
	cols, rows int32
	cells      [][]gridItem // cols*rows buckets, storage reused across rebuilds
	used       []int32      // bucket indices filled by the last Rebuild
	n          int
}

// NewFlatGrid creates a grid with the given cell edge length in metres.
func NewFlatGrid(cellSize float64) *FlatGrid {
	if cellSize <= 0 {
		panic("geo: non-positive grid cell size")
	}
	return &FlatGrid{cell: cellSize}
}

// Len returns the number of stored items.
func (g *FlatGrid) Len() int { return g.n }

// Rebuild replaces the whole index: item i sits at pts[i]. Cell storage is
// reused, so steady-state rebuilds allocate only when a cell outgrows its
// previous capacity.
func (g *FlatGrid) Rebuild(pts []Point) {
	g.n = len(pts)
	if g.n == 0 {
		g.cols, g.rows = 0, 0
		return
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		} else if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		} else if p.Y > maxY {
			maxY = p.Y
		}
	}
	g.minX, g.minY = minX, minY
	g.cols = int32((maxX-minX)/g.cell) + 1
	g.rows = int32((maxY-minY)/g.cell) + 1
	need := int(g.cols) * int(g.rows)
	if need > len(g.cells) {
		g.cells = make([][]gridItem, need)
	}
	// Clear only the buckets the previous build touched: over a sparse
	// field the bucket count scales with area but the touched count is
	// bounded by the item count.
	for _, idx := range g.used {
		g.cells[idx] = g.cells[idx][:0]
	}
	g.used = g.used[:0]
	for i, p := range pts {
		cx := int32((p.X - minX) / g.cell)
		cy := int32((p.Y - minY) / g.cell)
		idx := cy*g.cols + cx
		if len(g.cells[idx]) == 0 {
			g.used = append(g.used, idx)
		}
		g.cells[idx] = append(g.cells[idx], gridItem{id: int32(i), p: p})
	}
}

// WithinSorted appends to dst the ids of all items with Dist(center) <= r,
// excluding exclude (pass a negative id to exclude nothing), sorted
// ascending by id, and returns the extended slice. Items land in each cell
// in ascending id order (Rebuild inserts 0..n-1 sequentially), so the
// result is a handful of merged ascending runs — insertion-sort territory.
func (g *FlatGrid) WithinSorted(center Point, r float64, exclude int32, dst []int32) []int32 {
	if g.n == 0 {
		return dst
	}
	start := len(dst)
	r2 := r * r
	cx0 := g.clampCol(int32((center.X - r - g.minX) / g.cell))
	cx1 := g.clampCol(int32((center.X + r - g.minX) / g.cell))
	cy0 := g.clampRow(int32((center.Y - r - g.minY) / g.cell))
	cy1 := g.clampRow(int32((center.Y + r - g.minY) / g.cell))
	for cy := cy0; cy <= cy1; cy++ {
		row := g.cells[cy*g.cols+cx0 : cy*g.cols+cx1+1]
		for _, cell := range row {
			for _, it := range cell {
				if it.id == exclude {
					continue
				}
				if it.p.Dist2(center) <= r2 {
					dst = append(dst, it.id)
				}
			}
		}
	}
	insertionSortIDs(dst[start:])
	return dst
}

// WithinSortedLive is WithinSorted restricted to items whose up[id] flag is
// set — the membership-aware neighbourhood query behind churn scenarios.
// The mask is indexed by item id (the dense 0..n-1 space Rebuild was
// given). Masking happens inside the cell scan, before the result ever
// materializes, so a down item is invisible to the caller exactly as if it
// had not been indexed; the query geometry (and therefore the padding
// bound the caller derived) is untouched, because masked items still do
// not move.
func (g *FlatGrid) WithinSortedLive(center Point, r float64, exclude int32, up []bool, dst []int32) []int32 {
	if g.n == 0 {
		return dst
	}
	start := len(dst)
	r2 := r * r
	cx0 := g.clampCol(int32((center.X - r - g.minX) / g.cell))
	cx1 := g.clampCol(int32((center.X + r - g.minX) / g.cell))
	cy0 := g.clampRow(int32((center.Y - r - g.minY) / g.cell))
	cy1 := g.clampRow(int32((center.Y + r - g.minY) / g.cell))
	for cy := cy0; cy <= cy1; cy++ {
		row := g.cells[cy*g.cols+cx0 : cy*g.cols+cx1+1]
		for _, cell := range row {
			for _, it := range cell {
				if it.id == exclude || !up[it.id] {
					continue
				}
				if it.p.Dist2(center) <= r2 {
					dst = append(dst, it.id)
				}
			}
		}
	}
	insertionSortIDs(dst[start:])
	return dst
}

func (g *FlatGrid) clampCol(c int32) int32 {
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

func (g *FlatGrid) clampRow(c int32) int32 {
	if c < 0 {
		return 0
	}
	if c >= g.rows {
		return g.rows - 1
	}
	return c
}
