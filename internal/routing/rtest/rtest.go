// Package rtest provides a compact harness for routing-protocol tests:
// small deterministic topologies (chains, custom tracks), traffic
// origination, and delivery accounting. It exists so each protocol package
// can write behavioural tests without duplicating world wiring.
package rtest

import (
	"context"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mac"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/topo"
)

// Delivery records one packet arriving at its destination sink.
type Delivery struct {
	Pkt  *pkt.Packet
	At   sim.Time
	Node pkt.NodeID
}

// Harness wraps a world with delivery capture.
type Harness struct {
	T          *testing.T
	World      *network.World
	Deliveries []Delivery
	seq        map[pkt.NodeID]uint32
}

// NewChain builds a static chain of n nodes with the given spacing (metres)
// running the protocol produced by factory. Spacing 200 with default radios
// links each node to its immediate neighbours only.
func NewChain(t *testing.T, n int, spacing float64, factory network.ProtocolFactory) *Harness {
	t.Helper()
	return NewTracks(t, mobility.Chain(n, spacing), factory)
}

// NewPositions builds a static topology at explicit positions.
func NewPositions(t *testing.T, positions []geo.Point, factory network.ProtocolFactory) *Harness {
	t.Helper()
	tracks := make([]*mobility.Track, len(positions))
	for i, p := range positions {
		tracks[i] = mobility.Static(p)
	}
	return NewTracks(t, tracks, factory)
}

// NewTracks builds a topology from arbitrary mobility tracks.
func NewTracks(t *testing.T, tracks []*mobility.Track, factory network.ProtocolFactory) *Harness {
	t.Helper()
	radio := phy.DefaultParams()
	world, err := network.NewWorld(network.Config{
		Tracks:   tracks,
		Radio:    radio,
		Mac:      mac.Config{},
		Protocol: factory,
		Seed:     12345,
		Oracle:   topo.NewOracle(tracks, radio.RxRange()),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &Harness{T: t, World: world, seq: make(map[pkt.NodeID]uint32)}
	for _, n := range world.Nodes {
		n := n
		n.SetSink(func(p *pkt.Packet, from pkt.NodeID) {
			h.Deliveries = append(h.Deliveries, Delivery{Pkt: p, At: world.Eng.Now(), Node: n.ID()})
		})
	}
	world.Eng.Limit = 20_000_000
	world.Start()
	return h
}

// SendAt schedules one data packet from src to dst at time at.
func (h *Harness) SendAt(src, dst pkt.NodeID, at sim.Time) *pkt.Packet {
	h.seq[src]++
	seq := h.seq[src]
	p := pkt.DataPacket(src, dst, seq, 64, at)
	h.World.Eng.Schedule(at, func() {
		p.CreatedAt = h.World.Eng.Now()
		h.World.Node(src).Originate(p)
	})
	return p
}

// SendMany schedules n packets src→dst starting at `start`, spaced by gap.
func (h *Harness) SendMany(src, dst pkt.NodeID, n int, start sim.Time, gap sim.Duration) {
	for i := 0; i < n; i++ {
		h.SendAt(src, dst, start.Add(sim.Duration(i)*gap))
	}
}

// Run executes the simulation until the given number of simulated seconds.
func (h *Harness) Run(seconds float64) {
	h.T.Helper()
	if err := h.World.Run(context.Background(), sim.At(seconds)); err != nil {
		h.T.Fatal(err)
	}
}

// DeliveredTo counts deliveries at node id.
func (h *Harness) DeliveredTo(id pkt.NodeID) int {
	c := 0
	for _, d := range h.Deliveries {
		if d.Node == id {
			c++
		}
	}
	return c
}

// DeliveredUnique counts distinct (src,seq) pairs delivered at id.
func (h *Harness) DeliveredUnique(id pkt.NodeID) int {
	seen := map[[2]uint64]bool{}
	for _, d := range h.Deliveries {
		if d.Node == id {
			seen[[2]uint64{uint64(d.Pkt.Src), uint64(d.Pkt.Seq)}] = true
		}
	}
	return len(seen)
}

// RoutingTx returns the total routing transmissions counted so far.
func (h *Harness) RoutingTx() uint64 {
	return h.World.Collector.Finalize().RoutingTxPackets
}

// Results finalizes and returns current metrics.
func (h *Harness) Results() interface{ PathOptimalityShare() float64 } {
	r := h.World.Collector.Finalize()
	return r
}

// MovingAwayTrack returns a track that sits at from until tMove, then moves
// to to at speed (m/s) — the standard way to break a link mid-test.
func MovingAwayTrack(from, to geo.Point, tMove sim.Time, speed float64) *mobility.Track {
	return mobility.MustTrack([]mobility.Segment{
		{Start: 0, From: from, To: from, Speed: 0},
		{Start: tMove, From: from, To: to, Speed: speed},
	})
}
