package dsdv_test

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/dsdv"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func factory(cfg dsdv.Config) network.ProtocolFactory { return dsdv.Factory(cfg) }

func instrumented(cfg dsdv.Config, agents *[]*dsdv.DSDV) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol {
		a := dsdv.New(cfg)
		*agents = append(*agents, a)
		return a
	}
}

// fast returns a config with quick convergence for short tests.
func fast() dsdv.Config {
	return dsdv.Config{UpdateInterval: 2 * sim.Second, MinTriggerGap: 200 * sim.Millisecond}
}

func TestTableConvergenceOnChain(t *testing.T) {
	var agents []*dsdv.DSDV
	h := rtest.NewChain(t, 5, 200, instrumented(fast(), &agents))
	h.Run(15)
	for i, a := range agents {
		if a.TableSize() != 4 {
			t.Fatalf("node %d knows %d destinations, want 4", i, a.TableSize())
		}
	}
	// Next hops follow the chain.
	if nh, ok := agents[0].NextHop(4); !ok || nh != 1 {
		t.Fatalf("n0→4 next hop = %v,%v want 1", nh, ok)
	}
	if nh, ok := agents[2].NextHop(0); !ok || nh != 1 {
		t.Fatalf("n2→0 next hop = %v,%v want 1", nh, ok)
	}
	if nh, ok := agents[4].NextHop(0); !ok || nh != 3 {
		t.Fatalf("n4→0 next hop = %v,%v want 3", nh, ok)
	}
}

func TestDataFollowsConvergedRoutes(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(fast()))
	// Wait out convergence, then send.
	h.SendMany(0, 4, 10, sim.At(12), 100*sim.Millisecond)
	h.Run(20)
	if got := h.DeliveredUnique(4); got != 10 {
		t.Fatalf("delivered %d/10 on converged chain", got)
	}
	// Delivered along the 4-hop optimal path.
	for _, d := range h.Deliveries {
		if d.Pkt.Hops != 4 {
			t.Fatalf("packet took %d hops, want 4", d.Pkt.Hops)
		}
	}
}

func TestNoRouteDropsBeforeConvergence(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(dsdv.Config{UpdateInterval: 10 * sim.Second}))
	// Send immediately: far destination is unknown, DSDV drops.
	h.SendAt(0, 4, sim.At(0.5))
	h.Run(2)
	res := h.World.Collector.Finalize()
	if res.Drops["no-route"] != 1 {
		t.Fatalf("expected a no-route drop, got %v", res.Drops)
	}
	if h.DeliveredTo(4) != 0 {
		t.Fatal("impossible delivery before any update exchange")
	}
}

func TestBrokenLinkMarksInfinityAndHeals(t *testing.T) {
	// Chain with a redundant bypass: 0-1-2 plus node 3 near the middle.
	// When 1 vanishes, routes via 1 must break and re-form via 3.
	var agents []*dsdv.DSDV
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		rtest.MovingAwayTrack(geo.Pt(200, 0), geo.Pt(200, 5000), sim.At(10), 500),
		mobility.Static(geo.Pt(400, 0)),
		mobility.Static(geo.Pt(200, 100)),
	}
	h := rtest.NewTracks(t, tracks, instrumented(fast(), &agents))
	h.SendMany(0, 2, 60, sim.At(8), 250*sim.Millisecond)
	h.Run(30)
	// Traffic spans the break at t=10; most packets must arrive.
	if got := h.DeliveredUnique(2); got < 45 {
		t.Fatalf("delivered %d/60 across DSDV break+heal", got)
	}
	// After healing, node 0 must route to 2 via 3.
	if nh, ok := agents[0].NextHop(2); !ok || nh != 3 {
		t.Fatalf("healed next hop = %v,%v want 3", nh, ok)
	}
}

func TestPeriodicOverheadIndependentOfTraffic(t *testing.T) {
	quiet := rtest.NewChain(t, 4, 200, factory(dsdv.Config{UpdateInterval: 3 * sim.Second}))
	quiet.Run(30)
	quietTx := quiet.RoutingTx()
	if quietTx == 0 {
		t.Fatal("proactive protocol silent")
	}
	busy := rtest.NewChain(t, 4, 200, factory(dsdv.Config{UpdateInterval: 3 * sim.Second}))
	busy.SendMany(0, 3, 20, sim.At(10), 500*sim.Millisecond)
	busy.Run(30)
	busyTx := busy.RoutingTx()
	// Same beacon schedule: overhead within 30% regardless of traffic.
	lo, hi := float64(quietTx)*0.7, float64(quietTx)*1.3
	if float64(busyTx) < lo || float64(busyTx) > hi {
		t.Fatalf("overhead traffic-dependent: quiet %d vs busy %d", quietTx, busyTx)
	}
}

func TestTriggeredUpdatesAccelerateConvergence(t *testing.T) {
	slowCfg := dsdv.Config{UpdateInterval: 5 * sim.Second, DisableTriggered: true}
	fastCfg := dsdv.Config{UpdateInterval: 5 * sim.Second, MinTriggerGap: 200 * sim.Millisecond}
	measure := func(cfg dsdv.Config) int {
		var agents []*dsdv.DSDV
		h := rtest.NewChain(t, 6, 200, instrumented(cfg, &agents))
		h.Run(7) // just past one full dump cycle
		known := 0
		for _, a := range agents {
			known += a.TableSize()
		}
		return known
	}
	slow := measure(slowCfg)
	quick := measure(fastCfg)
	if quick <= slow {
		t.Fatalf("triggered updates did not speed convergence: %d vs %d entries", quick, slow)
	}
}

func TestHopCountTTLGuard(t *testing.T) {
	// Two nodes; corrupting route tables is hard from outside, so just
	// verify a normal delivery records sane hop counts (no loop blowup).
	h := rtest.NewChain(t, 3, 200, factory(fast()))
	h.SendMany(0, 2, 5, sim.At(10), 200*sim.Millisecond)
	h.Run(15)
	for _, d := range h.Deliveries {
		if d.Pkt.Hops > 3 {
			t.Fatalf("suspicious hop count %d on 2-hop chain", d.Pkt.Hops)
		}
	}
}
