// Package dsdv implements Destination-Sequenced Distance-Vector routing
// (Perkins & Bhagwat 1994), the proactive baseline of the study family.
//
// Each node advertises its full routing table periodically (and changed
// entries in triggered incremental updates). Every route carries a
// destination-generated sequence number: even numbers stamp real routes,
// odd numbers mark broken ones. Freshness (higher sequence) always beats
// metric; among equal sequences the lower metric wins. Link breaks detected
// by the MAC raise the metric to infinity and bump the sequence odd,
// propagating the failure.
package dsdv

import (
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Infinity is the broken-route metric.
const Infinity = 255

// Config tunes DSDV.
type Config struct {
	// UpdateInterval is the periodic full-dump period (default 15 s).
	UpdateInterval sim.Duration
	// TriggeredUpdates enables immediate incremental updates on route
	// changes (default on; the ablation bench turns it off).
	DisableTriggered bool
	// MinTriggerGap rate-limits triggered updates (default 1 s).
	MinTriggerGap sim.Duration
	// RouteExpiry invalidates routes not refreshed by updates
	// (default 3 × UpdateInterval).
	RouteExpiry sim.Duration
}

func (c Config) withDefaults() Config {
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 15 * sim.Second
	}
	if c.MinTriggerGap <= 0 {
		c.MinTriggerGap = sim.Second
	}
	if c.RouteExpiry <= 0 {
		c.RouteExpiry = 3 * c.UpdateInterval
	}
	return c
}

// Factory returns a protocol factory.
func Factory(cfg Config) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol { return New(cfg) }
}

// entry is one routing-table row.
type entry struct {
	dst     pkt.NodeID
	nextHop pkt.NodeID
	metric  int
	seq     uint32
	updated sim.Time
	changed bool // pending advertisement in the next triggered update
}

// advert is one advertised route inside an update message.
type advert struct {
	Dst    pkt.NodeID
	Metric int
	Seq    uint32
}

// update is the routing message payload.
type update struct {
	Routes []advert
}

// entryBytes is the wire size of one advertised route (addr+seq+metric).
const entryBytes = 9

// DSDV is one node's agent.
type DSDV struct {
	cfg          Config
	env          network.Env
	table        map[pkt.NodeID]*entry
	ownSeq       uint32
	ticker       *sim.Ticker
	lastTrigger  sim.Time
	triggerArmed bool
}

// New creates a DSDV agent.
func New(cfg Config) *DSDV {
	return &DSDV{cfg: cfg.withDefaults(), table: make(map[pkt.NodeID]*entry)}
}

// Start implements network.Protocol.
func (d *DSDV) Start(env network.Env) {
	d.env = env
	d.ownSeq = 0
	d.ticker = sim.NewTicker(env.Engine(), d.cfg.UpdateInterval, d.fullDump)
	d.ticker.Jitter = func() sim.Duration {
		// ±10% period jitter de-synchronizes neighbours.
		base := d.cfg.UpdateInterval
		return base - base/10 + d.env.RNG().Jitter(base/5)
	}
	// First dump after a short random offset so nodes don't all flood at t=0.
	d.ticker.StartIn(d.env.RNG().Jitter(d.cfg.UpdateInterval / 4))
}

// SendData implements network.Protocol. DSDV drops packets without routes —
// there is no on-demand discovery to wait for (this is the behaviour that
// costs DSDV delivery ratio under mobility).
func (d *DSDV) SendData(p *pkt.Packet) {
	d.forward(p)
}

func (d *DSDV) forward(p *pkt.Packet) {
	e := d.lookup(p.Dst)
	if e == nil {
		d.env.Drop(p, stats.DropNoRoute)
		return
	}
	if p.Hops >= pkt.DefaultTTL {
		d.env.Drop(p, stats.DropTTL)
		return
	}
	d.env.SendMac(p, e.nextHop)
}

// lookup returns a valid, unexpired route to dst or nil.
func (d *DSDV) lookup(dst pkt.NodeID) *entry {
	e, ok := d.table[dst]
	if !ok || e.metric >= Infinity {
		return nil
	}
	if d.env.Now().Sub(e.updated) > d.cfg.RouteExpiry {
		return nil
	}
	return e
}

// Recv implements network.Protocol.
func (d *DSDV) Recv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	if p.Kind == pkt.KindRouting {
		if u, ok := p.Payload.(*update); ok {
			d.handleUpdate(u, from)
		}
		return
	}
	p.Hops++
	if p.Dst == d.env.ID() {
		d.env.Deliver(p, from)
		return
	}
	d.forward(p)
}

// handleUpdate applies the DSDV-SQ adoption rules (Broch et al.'s variant,
// which triggers on sequence-number arrival, not just metric changes):
//
//   - ∞-metric (broken) adverts are adopted only from the neighbour we are
//     actually routing through; from anyone else, a node holding a finite
//     route instead re-advertises it — Perkins & Bhagwat's healing rule —
//     so a break only blackholes the subtree that really used the link;
//   - finite adverts win by fresher sequence number, or by shorter metric
//     at the same sequence number, and always replace a broken entry of
//     the same generation;
//   - any adoption marks the entry for the next triggered update.
func (d *DSDV) handleUpdate(u *update, from pkt.NodeID) {
	now := d.env.Now()
	for _, a := range u.Routes {
		if a.Dst == d.env.ID() {
			// Someone advertising a route to me; my own seq authority
			// is higher, ignore.
			continue
		}
		cur, ok := d.table[a.Dst]

		if a.Metric >= Infinity {
			switch {
			case ok && cur.metric < Infinity && cur.nextHop == from && seqNewer(a.Seq, cur.seq):
				cur.metric = Infinity
				cur.seq = a.Seq
				cur.updated = now
				cur.changed = true
				d.scheduleTrigger()
			case ok && cur.metric < Infinity:
				// We hold a working route the breaker does not:
				// spread the good news.
				cur.changed = true
				d.scheduleTrigger()
			}
			continue
		}

		metric := a.Metric + 1
		// A silently-expired entry must not veto fresh information with
		// its stale sequence number.
		expired := ok && now.Sub(cur.updated) > d.cfg.RouteExpiry
		adopt := !ok || expired ||
			seqNewer(a.Seq, cur.seq) ||
			(a.Seq == cur.seq && metric < cur.metric) ||
			(cur.metric >= Infinity && int32(a.Seq-cur.seq) >= -1)
		if !adopt {
			// Refresh liveness of the route we already use via this
			// neighbour even if the advert is not an improvement.
			if ok && cur.nextHop == from && a.Seq == cur.seq && metric == cur.metric {
				cur.updated = now
			}
			continue
		}
		if !ok {
			cur = &entry{dst: a.Dst}
			d.table[a.Dst] = cur
		}
		seqAdvanced := cur.seq != a.Seq
		changed := cur.metric != metric || cur.nextHop != from || seqAdvanced
		cur.nextHop = from
		cur.metric = metric
		cur.seq = a.Seq
		cur.updated = now
		if changed {
			cur.changed = true
			d.scheduleTrigger()
		}
	}
}

// seqNewer reports whether a is a fresher sequence number than b
// (wraparound-aware).
func seqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// MacFailed implements network.Protocol: a broken link invalidates every
// route through that neighbour.
func (d *DSDV) MacFailed(p *pkt.Packet, to pkt.NodeID) {
	if to == pkt.Broadcast {
		return // update broadcasts don't fail meaningfully
	}
	broke := false
	for _, e := range d.table {
		if e.nextHop == to && e.metric < Infinity {
			e.metric = Infinity
			e.seq++ // odd: destination-unreachable stamp
			e.changed = true
			broke = true
		}
	}
	if broke {
		d.env.FlushNextHop(to)
		d.scheduleTrigger()
	}
	if p.Kind == pkt.KindData {
		d.env.Drop(p, stats.DropRetries)
	}
}

// MacSent implements network.Protocol (unused).
func (d *DSDV) MacSent(*pkt.Packet, pkt.NodeID) {}

// Snoop implements network.Protocol (unused).
func (d *DSDV) Snoop(*pkt.Packet, pkt.NodeID, pkt.NodeID, float64) {}

// fullDump broadcasts the entire table.
func (d *DSDV) fullDump() {
	d.ownSeq += 2
	routes := []advert{{Dst: d.env.ID(), Metric: 0, Seq: d.ownSeq}}
	for _, e := range d.table {
		routes = append(routes, advert{Dst: e.dst, Metric: e.metric, Seq: e.seq})
		e.changed = false
	}
	d.broadcastUpdate(routes)
}

// scheduleTrigger arranges an incremental update, rate-limited.
func (d *DSDV) scheduleTrigger() {
	if d.cfg.DisableTriggered || d.triggerArmed {
		return
	}
	now := d.env.Now()
	wait := d.env.RNG().Jitter(100 * sim.Millisecond)
	if since := now.Sub(d.lastTrigger); since < d.cfg.MinTriggerGap {
		wait += d.cfg.MinTriggerGap - since
	}
	d.triggerArmed = true
	d.env.Engine().ScheduleIn(wait, d.fireTrigger)
}

func (d *DSDV) fireTrigger() {
	d.triggerArmed = false
	d.lastTrigger = d.env.Now()
	var routes []advert
	for _, e := range d.table {
		if e.changed {
			routes = append(routes, advert{Dst: e.dst, Metric: e.metric, Seq: e.seq})
			e.changed = false
		}
	}
	if len(routes) == 0 {
		return
	}
	d.broadcastUpdate(routes)
}

func (d *DSDV) broadcastUpdate(routes []advert) {
	body := 4 + entryBytes*len(routes)
	p := pkt.RoutingPacket("UPDATE", d.env.ID(), pkt.Broadcast, 1, body, d.env.Now())
	p.Payload = &update{Routes: routes}
	d.env.SendMac(p, pkt.Broadcast)
}

// TableSize exposes the number of known destinations (diagnostics/tests).
func (d *DSDV) TableSize() int { return len(d.table) }

// NextHop exposes the current next hop for dst (diagnostics/tests).
func (d *DSDV) NextHop(dst pkt.NodeID) (pkt.NodeID, bool) {
	e := d.lookup(dst)
	if e == nil {
		return 0, false
	}
	return e.nextHop, true
}
