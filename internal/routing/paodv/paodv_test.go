package paodv_test

import (
	"testing"

	"adhocsim/internal/phy"
	"adhocsim/internal/routing/paodv"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func TestFactoryDeliversLikeAODV(t *testing.T) {
	f := paodv.Factory(paodv.Config{Radio: phy.DefaultParams()})
	h := rtest.NewChain(t, 5, 200, f)
	h.SendMany(0, 4, 10, sim.At(1), 100*sim.Millisecond)
	h.Run(10)
	if got := h.DeliveredUnique(4); got != 10 {
		t.Fatalf("delivered %d/10", got)
	}
}

func TestWarnThresholdScalesWithRange(t *testing.T) {
	// A smaller radio range must yield a higher warning power threshold
	// (closer warning distance ⇒ more received power).
	big := phy.DefaultParams()            // 250 m
	small := phy.ParamsForRange(100, 220) // 100 m
	warnBig := big.Prop.RxPower(big.TxPower, big.RxRange()*paodv.DefaultWarnFraction)
	warnSmall := small.Prop.RxPower(small.TxPower, small.RxRange()*paodv.DefaultWarnFraction)
	if warnSmall <= warnBig {
		t.Fatalf("warn threshold did not scale: %g vs %g", warnSmall, warnBig)
	}
}

func TestCustomWarnFraction(t *testing.T) {
	// A fraction of 0.5 warns earlier (higher power threshold) than 0.9;
	// both must produce working protocols.
	for _, frac := range []float64{0.5, 0.9} {
		f := paodv.Factory(paodv.Config{Radio: phy.DefaultParams(), WarnFraction: frac})
		h := rtest.NewChain(t, 3, 200, f)
		h.SendAt(0, 2, sim.At(1))
		h.Run(5)
		if h.DeliveredTo(2) != 1 {
			t.Fatalf("fraction %.1f: no delivery", frac)
		}
	}
}
