// Package paodv provides Preemptive AODV: standard AODV plus an early-
// warning mechanism that re-discovers routes when the received signal power
// on a hop drops toward the reception threshold (the link is about to
// stretch beyond radio range). It is implemented as a configuration of the
// aodv package; this package pins the preemptive defaults used in the
// study's comparison.
package paodv

import (
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing/aodv"
)

// DefaultWarnFraction is the fraction of the nominal radio range at which
// warnings start: a packet received from farther than this distance is
// considered to be riding a weakening link.
const DefaultWarnFraction = 0.85

// Config tunes PAODV.
type Config struct {
	// AODV carries the base-protocol parameters (Preemptive fields are
	// overwritten by this package).
	AODV aodv.Config
	// WarnFraction overrides DefaultWarnFraction when > 0.
	WarnFraction float64
	// Radio supplies the propagation model used to translate the warning
	// distance into a power threshold. Required.
	Radio phy.RadioParams
}

// Factory returns a protocol factory with preemptive warnings enabled at
// the configured distance fraction.
func Factory(cfg Config) network.ProtocolFactory {
	frac := cfg.WarnFraction
	if frac <= 0 {
		frac = DefaultWarnFraction
	}
	base := cfg.AODV
	base.Preemptive = true
	warnDist := cfg.Radio.RxRange() * frac
	base.WarnPower = cfg.Radio.Prop.RxPower(cfg.Radio.TxPower, warnDist)
	return aodv.Factory(base)
}
