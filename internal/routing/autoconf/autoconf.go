// Package autoconf implements randomized address autoconfiguration in the
// spirit of Ravelomanana's initialization protocols: each node, on joining
// the network, claims a uniformly random address from a bounded space,
// advertises the claim over a few jittered probe rounds, defends an
// established claim when a newcomer collides with it, and re-picks on
// losing. A claim that survives its probe rounds undefended has converged;
// the network-layer census turns per-node convergence instants and
// surviving duplicates into the time_to_converge and addr_collision_rate
// metrics. Data packets are TTL-scoped floods (the flood yardstick), so
// delivery metrics stay meaningful while the address plane converges.
//
// The protocol is the first consumer of the lifecycle subsystem: it
// implements network.LifecycleAware, (re)starting its claim on every Up and
// letting the claim lapse on Down, so churn scenarios measure genuine
// re-initialization cost rather than a one-shot bootstrap.
package autoconf

import (
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Message body size: the 4-byte claimed address.
const claimBytes = 4

// Config tunes the autoconfiguration agent.
type Config struct {
	// Space is the address-space size; addresses are drawn uniformly from
	// [0, Space). Default 1024 — small enough that collisions are a real
	// event at study scales, as in the adversarial-autoconf literature.
	Space int
	// Rounds is how many probe rounds a claim must survive undefended
	// before it converges (default 3).
	Rounds int
	// Interval separates probe rounds (default 500 ms).
	Interval sim.Duration
	// TTL bounds the flood scope of claims, defends and data packets
	// (default pkt.DefaultTTL).
	TTL int
}

func (c Config) withDefaults() Config {
	if c.Space <= 0 {
		c.Space = 1024
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Interval <= 0 {
		c.Interval = 500 * sim.Millisecond
	}
	if c.TTL <= 0 {
		c.TTL = pkt.DefaultTTL
	}
	return c
}

// Factory returns a protocol factory for network.Config.
func Factory(cfg Config) network.ProtocolFactory {
	cfg = cfg.withDefaults()
	return func(pkt.NodeID) network.Protocol { return New(cfg) }
}

// claimPayload is the immutable routing payload of CLAIM/DEFEND floods.
type claimPayload struct {
	Addr uint32
}

// Autoconf is one node's autoconfiguration agent.
type Autoconf struct {
	cfg Config
	env network.Env

	// Separate duplicate caches: control floods are keyed by the agent's
	// own message counter, data floods by the application sequence number,
	// and the two counters would collide in one (origin, id) space.
	seenCtl  *routing.SeenCache
	seenData *routing.SeenCache

	up          bool
	addr        uint32
	haveAddr    bool
	converged   bool
	convergedAt sim.Time
	round       int
	// epoch invalidates in-flight probe timers across re-picks and
	// Down/Up cycles, so a stale closure can never advance a new claim.
	epoch int
	seq   uint32
}

// New creates an autoconfiguration agent.
func New(cfg Config) *Autoconf {
	return &Autoconf{
		cfg:      cfg.withDefaults(),
		seenCtl:  routing.NewSeenCache(60 * sim.Second),
		seenData: routing.NewSeenCache(60 * sim.Second),
	}
}

// Start implements network.Protocol. Claiming begins at the Up hook, not
// here: a node that starts the run powered down must not touch the medium.
func (a *Autoconf) Start(env network.Env) { a.env = env }

// Up implements network.LifecycleAware: (re)start the address claim.
func (a *Autoconf) Up(at sim.Time) {
	a.up = true
	a.pick()
}

// Down implements network.LifecycleAware: the claim lapses. The address is
// dropped entirely — a recovering node re-runs the claim procedure, since
// its old address may have been claimed while it was dark.
func (a *Autoconf) Down(at sim.Time) {
	a.up = false
	a.haveAddr = false
	a.converged = false
	a.epoch++
}

// AutoconfState implements network.Autoconfigured.
func (a *Autoconf) AutoconfState() (uint32, bool, sim.Time) {
	return a.addr, a.converged, a.convergedAt
}

// pick draws a fresh random address and restarts the probe schedule.
func (a *Autoconf) pick() {
	a.addr = uint32(a.env.RNG().Intn(a.cfg.Space))
	a.haveAddr = true
	a.converged = false
	a.round = 0
	a.epoch++
	ep := a.epoch
	a.env.Engine().ScheduleIn(a.env.RNG().Jitter(routing.BroadcastJitter), func() { a.probe(ep) })
}

// probe sends one claim round, or declares convergence once every round
// survived undefended.
func (a *Autoconf) probe(ep int) {
	if ep != a.epoch || !a.up {
		return
	}
	if a.round >= a.cfg.Rounds {
		a.converged = true
		a.convergedAt = a.env.Now()
		return
	}
	a.round++
	a.broadcastCtl("CLAIM")
	a.env.Engine().ScheduleIn(a.cfg.Interval+a.env.RNG().Jitter(routing.BroadcastJitter), func() { a.probe(ep) })
}

// broadcastCtl originates one CLAIM/DEFEND flood for the current address.
func (a *Autoconf) broadcastCtl(msg string) {
	a.seq++
	p := pkt.RoutingPacket(msg, a.env.ID(), pkt.Broadcast, a.cfg.TTL, claimBytes, a.env.Now())
	p.Seq = a.seq
	p.Payload = claimPayload{Addr: a.addr}
	a.seenCtl.Seen(routing.SeenKey{Origin: p.Src, ID: p.Seq}, a.env.Now())
	a.env.SendMac(p, pkt.Broadcast)
}

// SendData implements network.Protocol: data packets are TTL-scoped floods.
func (a *Autoconf) SendData(p *pkt.Packet) {
	p.TTL = a.cfg.TTL
	a.seenData.Seen(routing.SeenKey{Origin: p.Src, ID: p.Seq}, a.env.Now())
	a.env.SendMac(p, pkt.Broadcast)
}

// Recv implements network.Protocol.
func (a *Autoconf) Recv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	if p.Kind == pkt.KindData {
		a.recvData(p, from)
		return
	}
	if a.seenCtl.Seen(routing.SeenKey{Origin: p.Src, ID: p.Seq}, a.env.Now()) {
		return
	}
	if cl, ok := p.Payload.(claimPayload); ok {
		switch p.Msg {
		case "CLAIM":
			a.onClaim(cl.Addr, p.Src)
		case "DEFEND":
			a.onDefend(cl.Addr, p.Src)
		}
	}
	a.forward(p)
}

// onClaim reacts to another node claiming an address.
func (a *Autoconf) onClaim(addr uint32, claimant pkt.NodeID) {
	if !a.up || !a.haveAddr || addr != a.addr || claimant == a.env.ID() {
		return
	}
	if a.converged {
		// An established claim is defended, pushing the newcomer off.
		a.broadcastCtl("DEFEND")
		return
	}
	// Two unconverged claimants collided. The lower id keeps the address
	// (both hear each other's probes, so exactly one side yields); the
	// loser re-picks from scratch.
	if claimant < a.env.ID() {
		a.pick()
	}
}

// onDefend reacts to an established owner defending the address this node
// claims: the claim is lost and a fresh address is drawn. Between two
// converged duplicates that discover each other, the lower id keeps the
// address and the higher id yields.
func (a *Autoconf) onDefend(addr uint32, owner pkt.NodeID) {
	if !a.up || !a.haveAddr || addr != a.addr || owner == a.env.ID() {
		return
	}
	if a.converged && owner > a.env.ID() {
		a.broadcastCtl("DEFEND")
		return
	}
	a.pick()
}

// recvData is the flood-yardstick data path: deliver at the destination,
// re-broadcast elsewhere until the TTL expires.
func (a *Autoconf) recvData(p *pkt.Packet, from pkt.NodeID) {
	if a.seenData.Seen(routing.SeenKey{Origin: p.Src, ID: p.Seq}, a.env.Now()) {
		return
	}
	p.Hops++
	if p.Dst == a.env.ID() {
		a.env.Deliver(p, from)
		return
	}
	p.TTL--
	if p.Expired() {
		a.env.Drop(p, stats.DropTTL)
		return
	}
	q := p.Clone()
	a.env.Engine().ScheduleIn(a.env.RNG().Jitter(routing.BroadcastJitter), func() {
		a.env.SendMac(q, pkt.Broadcast)
	})
}

// forward continues a control flood under a new lineage from this node.
func (a *Autoconf) forward(p *pkt.Packet) {
	p.TTL--
	if p.Expired() {
		return
	}
	q := p.Clone()
	q.Hops++
	a.env.Engine().ScheduleIn(a.env.RNG().Jitter(routing.BroadcastJitter), func() {
		a.env.SendMac(q, pkt.Broadcast)
	})
}

// Snoop implements network.Protocol (unused).
func (a *Autoconf) Snoop(*pkt.Packet, pkt.NodeID, pkt.NodeID, float64) {}

// MacSent implements network.Protocol (unused).
func (a *Autoconf) MacSent(*pkt.Packet, pkt.NodeID) {}

// MacFailed implements network.Protocol: broadcasts never fail at the MAC,
// so only queue overflow lands here; the packet is simply lost.
func (a *Autoconf) MacFailed(*pkt.Packet, pkt.NodeID) {}
