package cbrp

import (
	"slices"

	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// NodeStatus is the clustering role of a node.
type NodeStatus uint8

const (
	// Undecided nodes are still waiting for the neighbourhood to settle.
	Undecided NodeStatus = iota
	// Member nodes belong to at least one cluster head.
	Member
	// Head nodes are cluster heads.
	Head
)

func (s NodeStatus) String() string {
	switch s {
	case Undecided:
		return "undecided"
	case Member:
		return "member"
	default:
		return "head"
	}
}

// neighborInfo is this node's view of one neighbour, assembled from HELLOs.
type neighborInfo struct {
	id      pkt.NodeID
	status  NodeStatus
	heads   []pkt.NodeID // the clusters the neighbour belongs to
	twoHop  []pkt.NodeID // the neighbour's own neighbour list
	expires sim.Time
}

// neighborTable tracks 1-hop neighbours and, through their advertised
// neighbour lists, the 2-hop topology.
type neighborTable struct {
	rows map[pkt.NodeID]*neighborInfo
}

func newNeighborTable() *neighborTable {
	return &neighborTable{rows: make(map[pkt.NodeID]*neighborInfo)}
}

// update installs a fresh HELLO observation.
func (t *neighborTable) update(h *hello, from pkt.NodeID, now, expiry sim.Time) {
	t.rows[from] = &neighborInfo{
		id:      from,
		status:  h.Status,
		heads:   append([]pkt.NodeID(nil), h.Heads...),
		twoHop:  append([]pkt.NodeID(nil), h.Neighbors...),
		expires: expiry,
	}
}

// expire drops stale rows.
func (t *neighborTable) expire(now sim.Time) {
	if len(t.rows) == 0 {
		return
	}
	for id, r := range t.rows {
		if !r.expires.After(now) {
			delete(t.rows, id)
		}
	}
}

// has reports whether id is a live neighbour.
func (t *neighborTable) has(id pkt.NodeID) bool {
	_, ok := t.rows[id]
	return ok
}

// fresh reports whether id is a neighbour heard recently enough that the
// link is unlikely to have stretched away (at least margin of lifetime
// left). Route shortening and local repair use this stricter test: acting
// on a stale entry turns an optimization into a broken hop.
func (t *neighborTable) fresh(id pkt.NodeID, now sim.Time, margin sim.Duration) bool {
	r, ok := t.rows[id]
	return ok && r.expires.Sub(now) >= margin
}

// ids returns the live neighbour ids in ascending order. The order is part
// of the protocol's determinism contract: local repair scans this list for
// a bridging neighbour and takes the first match, so handing out Go's
// randomised map order here made CBRP runs diverge across processes.
func (t *neighborTable) ids() []pkt.NodeID {
	if len(t.rows) == 0 {
		return nil
	}
	out := make([]pkt.NodeID, 0, len(t.rows))
	for id := range t.rows {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// headNeighbors returns neighbours currently acting as cluster heads, in
// ascending order (see ids for why the order matters).
func (t *neighborTable) headNeighbors() []pkt.NodeID {
	if len(t.rows) == 0 {
		return nil
	}
	var out []pkt.NodeID
	for id, r := range t.rows {
		if r.status == Head {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// neighborOf reports whether via (one of our neighbours) is itself adjacent
// to target, per via's advertised neighbour list — our 2-hop knowledge.
func (t *neighborTable) neighborOf(via, target pkt.NodeID) bool {
	r, ok := t.rows[via]
	if !ok {
		return false
	}
	for _, n := range r.twoHop {
		if n == target {
			return true
		}
	}
	return false
}

// foreignHeads returns cluster heads adjacent to our neighbours but not our
// own heads — reachability into adjacent clusters (gateway detection).
// Sorted ascending so callers see a process-independent order.
func (t *neighborTable) foreignHeads(myHeads map[pkt.NodeID]bool) []pkt.NodeID {
	if len(t.rows) == 0 {
		return nil
	}
	seen := map[pkt.NodeID]bool{}
	var out []pkt.NodeID
	for _, r := range t.rows {
		for _, h := range r.heads {
			if !myHeads[h] && !seen[h] && !t.has(h) {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	slices.Sort(out)
	return out
}

// electStatus applies the lowest-ID clustering rule for node me:
//
//   - a node adjacent to a cluster head with a lower ID (or any head, if the
//     node has no chance to win) joins as a member;
//   - a node whose ID is the minimum among all non-member neighbours
//     becomes a head;
//   - otherwise the node stays undecided and waits for lower-ID neighbours
//     to resolve.
//
// The rule converges in O(diameter) hello rounds and matches CBRP's
// bootstrap behaviour closely enough for the study's purposes.
func electStatus(me pkt.NodeID, t *neighborTable) NodeStatus {
	if len(t.rows) == 0 {
		return Head // isolated node: trivially its own cluster
	}
	minContender := me
	for id, r := range t.rows {
		if r.status == Head {
			return Member
		}
		if r.status != Member && id < minContender {
			minContender = id
		}
	}
	if minContender == me {
		return Head
	}
	return Undecided
}
