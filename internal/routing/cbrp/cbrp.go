// Package cbrp implements the Cluster Based Routing Protocol (Jiang, Li &
// Tay), the third protocol of the IPPS'01 comparison. Nodes organise into
// 2-hop-diameter clusters via periodic HELLO beacons and lowest-ID election.
// Route requests are re-flooded only by cluster heads and gateway nodes,
// cutting flood cost relative to blind flooding; discovered routes are
// carried in packet headers like DSR. Two CBRP optimizations are included:
// local repair from 2-hop neighbour knowledge and en-route path shortening.
package cbrp

import (
	"slices"

	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Config tunes CBRP.
type Config struct {
	// HelloInterval is the beacon period (default 2 s).
	HelloInterval sim.Duration
	// NeighborExpiry drops unheard neighbours (default 3 × hello).
	NeighborExpiry sim.Duration
	// DisableClusterFlooding makes every node re-flood RREQs (ablation:
	// quantifies the saving from head/gateway-restricted flooding).
	DisableClusterFlooding bool
	// DisableLocalRepair turns off 2-hop route repair.
	DisableLocalRepair bool
	// DisableShortening turns off en-route path shortening.
	DisableShortening bool
	// DiscoveryBase / DiscoveryMax bound discovery retry backoff
	// (defaults 500 ms / 10 s).
	DiscoveryBase sim.Duration
	DiscoveryMax  sim.Duration
	// RouteCacheTTL bounds how long a source reuses a discovered route
	// before it must be re-validated by a fresh discovery (default 10 s;
	// link failures invalidate earlier).
	RouteCacheTTL sim.Duration
	// SendBufferCap / SendBufferTimeout bound the origin-side buffer.
	SendBufferCap     int
	SendBufferTimeout sim.Duration
}

func (c Config) withDefaults() Config {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 2 * sim.Second
	}
	if c.NeighborExpiry <= 0 {
		c.NeighborExpiry = 3 * c.HelloInterval
	}
	if c.DiscoveryBase <= 0 {
		c.DiscoveryBase = 500 * sim.Millisecond
	}
	if c.DiscoveryMax <= 0 {
		c.DiscoveryMax = 10 * sim.Second
	}
	if c.RouteCacheTTL <= 0 {
		c.RouteCacheTTL = 10 * sim.Second
	}
	return c
}

// Factory returns a protocol factory.
func Factory(cfg Config) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol { return New(cfg) }
}

// Message payloads.

// hello is the periodic beacon.
type hello struct {
	Status    NodeStatus
	Heads     []pkt.NodeID
	Neighbors []pkt.NodeID
}

// rreq floods (via heads/gateways) toward a target, recording the path.
type rreq struct {
	Origin pkt.NodeID
	Target pkt.NodeID
	ID     uint32
	Record []pkt.NodeID
}

// rrep returns the complete route to the origin.
type rrep struct {
	Route []pkt.NodeID
}

// rerr reports broken link A→B toward the source.
type rerr struct {
	A, B pkt.NodeID
}

// Wire sizes (4-byte addresses; hello carries status+heads+neighbour list).
const (
	helloBase     = 4
	rreqBaseBytes = 8
	rrepBaseBytes = 8
	rerrBytes     = 12
	srBaseBytes   = 4
)

type pending struct {
	attempts int
	timer    *sim.Timer
}

// CBRP is one node's agent.
type CBRP struct {
	cfg Config
	env network.Env

	status    NodeStatus
	neighbors *neighborTable
	myHeads   map[pkt.NodeID]bool

	seen  *routing.SeenCache
	buf   *routing.SendBuffer
	disc  map[pkt.NodeID]*pending
	reqID uint32
	// nextRREQ rate-limits discovery floods per target: a freshly
	// repaired route that immediately fails again must not re-flood the
	// network at MAC speed.
	nextRREQ map[pkt.NodeID]sim.Time
	// routes caches discovered source routes at the origin so that a
	// 4 pkt/s CBR flow does not re-flood per packet.
	routes map[pkt.NodeID]cachedRoute

	helloTicker *sim.Ticker
}

// New creates a CBRP agent.
func New(cfg Config) *CBRP {
	return &CBRP{
		cfg:       cfg.withDefaults(),
		status:    Undecided,
		neighbors: newNeighborTable(),
		myHeads:   make(map[pkt.NodeID]bool),
		seen:      routing.NewSeenCache(30 * sim.Second),
		disc:      make(map[pkt.NodeID]*pending),
		nextRREQ:  make(map[pkt.NodeID]sim.Time),
		routes:    make(map[pkt.NodeID]cachedRoute),
	}
}

// Start implements network.Protocol.
func (c *CBRP) Start(env network.Env) {
	c.env = env
	c.buf = routing.NewSendBuffer(c.cfg.SendBufferCap, c.cfg.SendBufferTimeout, func(p *pkt.Packet, timeout bool) {
		if timeout {
			c.env.Drop(p, stats.DropSendBuffer)
		} else {
			c.env.Drop(p, stats.DropSendBufFull)
		}
	})
	c.helloTicker = sim.NewTicker(env.Engine(), c.cfg.HelloInterval, c.beacon)
	c.helloTicker.Jitter = func() sim.Duration {
		return c.cfg.HelloInterval - c.cfg.HelloInterval/10 + c.env.RNG().Jitter(c.cfg.HelloInterval/5)
	}
	c.helloTicker.StartIn(c.env.RNG().Jitter(c.cfg.HelloInterval / 2))
}

// Status exposes the clustering role (tests/diagnostics).
func (c *CBRP) Status() NodeStatus { return c.status }

// Heads exposes the current cluster heads of this node, sorted ascending
// (tests/diagnostics).
func (c *CBRP) Heads() []pkt.NodeID {
	return c.headSet()
}

// --- beaconing & clustering -----------------------------------------------

func (c *CBRP) beacon() {
	now := c.env.Now()
	c.neighbors.expire(now)
	c.refreshRole()
	h := &hello{
		Status:    c.status,
		Heads:     c.headSet(),
		Neighbors: c.neighbors.ids(),
	}
	body := helloBase + 4*len(h.Heads) + 5*len(h.Neighbors)
	p := pkt.RoutingPacket("HELLO", c.env.ID(), pkt.Broadcast, 1, body, now)
	p.Payload = h
	c.env.SendMac(p, pkt.Broadcast)
}

func (c *CBRP) refreshRole() {
	me := c.env.ID()
	heads := c.neighbors.headNeighbors()
	switch {
	case c.status == Head:
		// A head abdicates only when another head with a lower ID is in
		// range (CBRP contention resolution).
		for _, h := range heads {
			if h < me {
				c.status = Member
				break
			}
		}
	default:
		c.status = electStatus(me, c.neighbors)
	}
	// Recompute cluster membership.
	clear(c.myHeads)
	if c.status == Head {
		c.myHeads[me] = true
		return
	}
	for _, h := range heads {
		c.myHeads[h] = true
	}
}

// isGateway reports whether this node bridges clusters: it hears multiple
// heads, or hears a member of a foreign cluster.
func (c *CBRP) isGateway() bool {
	if c.status == Head {
		return false
	}
	if len(c.neighbors.headNeighbors()) >= 2 {
		return true
	}
	return len(c.neighbors.foreignHeads(c.myHeads)) > 0
}

// shouldReflood decides whether this node participates in RREQ flooding.
func (c *CBRP) shouldReflood() bool {
	if c.cfg.DisableClusterFlooding {
		return true
	}
	return c.status == Head || c.isGateway()
}

func (c *CBRP) headSet() []pkt.NodeID {
	if len(c.myHeads) == 0 {
		return nil
	}
	out := make([]pkt.NodeID, 0, len(c.myHeads))
	for h := range c.myHeads {
		out = append(out, h)
	}
	slices.Sort(out)
	return out
}

// --- data path --------------------------------------------------------------

// cachedRoute is one origin-side route-cache entry.
type cachedRoute struct {
	route   []pkt.NodeID
	expires sim.Time
}

// SendData implements network.Protocol.
func (c *CBRP) SendData(p *pkt.Packet) {
	now := c.env.Now()
	// One-hop shortcut: the neighbour table is a free route.
	if c.neighbors.fresh(p.Dst, now, c.cfg.HelloInterval) {
		c.attachRoute(p, []pkt.NodeID{c.env.ID(), p.Dst})
		c.env.SendMac(p, p.Dst)
		return
	}
	if cr, ok := c.routes[p.Dst]; ok && cr.expires.After(now) {
		c.attachRoute(p, append([]pkt.NodeID(nil), cr.route...))
		c.forwardData(p)
		return
	}
	c.buf.Push(p, now)
	c.discover(p.Dst)
}

// cacheRoute installs an origin-side route.
func (c *CBRP) cacheRoute(dst pkt.NodeID, route []pkt.NodeID) {
	c.routes[dst] = cachedRoute{
		route:   append([]pkt.NodeID(nil), route...),
		expires: c.env.Now().Add(c.cfg.RouteCacheTTL),
	}
}

// invalidateRoutesVia drops cached routes whose first hop is nb or that
// traverse the link me→nb.
func (c *CBRP) invalidateRoutesVia(a, b pkt.NodeID) {
	for dst, cr := range c.routes {
		for i := 0; i+1 < len(cr.route); i++ {
			if cr.route[i] == a && cr.route[i+1] == b {
				delete(c.routes, dst)
				break
			}
		}
	}
}

func (c *CBRP) attachRoute(p *pkt.Packet, route []pkt.NodeID) {
	if p.SrcRoute != nil {
		p.Size -= srBaseBytes + pkt.SrcRouteAddrBytes*len(p.SrcRoute)
	}
	p.SrcRoute = route
	p.SRIndex = 0
	p.Size += srBaseBytes + pkt.SrcRouteAddrBytes*len(route)
}

// forwardData sends p along its source route, applying shortening.
func (c *CBRP) forwardData(p *pkt.Packet) {
	me := c.env.ID()
	idx := indexOf(p.SrcRoute, me)
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		c.env.Drop(p, stats.DropNoRoute)
		return
	}
	next := idx + 1
	if !c.cfg.DisableShortening {
		// Skip ahead to the farthest downstream node that is a fresh
		// direct neighbour (stale entries would break the pipe).
		for j := len(p.SrcRoute) - 1; j > next; j-- {
			if c.neighbors.fresh(p.SrcRoute[j], c.env.Now(), c.cfg.HelloInterval) {
				next = j
				break
			}
		}
	}
	p.SRIndex = idx
	c.env.SendMac(p, p.SrcRoute[next])
}

// Recv implements network.Protocol.
func (c *CBRP) Recv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	if p.Kind == pkt.KindRouting {
		switch m := p.Payload.(type) {
		case *hello:
			c.neighbors.update(m, from, c.env.Now(), c.env.Now().Add(c.cfg.NeighborExpiry))
		case *rreq:
			c.handleRREQ(p, m)
		case *rrep:
			c.handleRREP(p, m)
		case *rerr:
			c.handleRERR(p, m)
		}
		return
	}
	p.Hops++
	if p.Dst == c.env.ID() {
		c.env.Deliver(p, from)
		return
	}
	if p.Hops >= pkt.DefaultTTL {
		c.env.Drop(p, stats.DropTTL)
		return
	}
	c.forwardData(p)
}

// --- discovery ---------------------------------------------------------------

func (c *CBRP) discover(target pkt.NodeID) {
	if _, busy := c.disc[target]; busy {
		return
	}
	pd := &pending{}
	pd.timer = sim.NewTimer(c.env.Engine(), func() { c.discoveryTimeout(target) })
	c.disc[target] = pd
	now := c.env.Now()
	if allowed, ok := c.nextRREQ[target]; ok && allowed.After(now) {
		// Cooldown: wait out the remainder before re-flooding.
		pd.timer.ResetAt(allowed)
		return
	}
	c.sendRREQ(target, pd)
}

func (c *CBRP) sendRREQ(target pkt.NodeID, pd *pending) {
	c.reqID++
	c.nextRREQ[target] = c.env.Now().Add(c.cfg.DiscoveryBase / 2)
	m := &rreq{
		Origin: c.env.ID(),
		Target: target,
		ID:     c.reqID,
		Record: []pkt.NodeID{c.env.ID()},
	}
	c.seen.Seen(routing.SeenKey{Origin: m.Origin, ID: m.ID}, c.env.Now())
	p := pkt.RoutingPacket("RREQ", c.env.ID(), pkt.Broadcast, pkt.DefaultTTL,
		rreqBaseBytes+pkt.SrcRouteAddrBytes*len(m.Record), c.env.Now())
	p.Payload = m
	c.env.SendMac(p, pkt.Broadcast)
	timeout := c.cfg.DiscoveryBase
	for i := 0; i < pd.attempts && timeout < c.cfg.DiscoveryMax; i++ {
		timeout *= 2
	}
	if timeout > c.cfg.DiscoveryMax {
		timeout = c.cfg.DiscoveryMax
	}
	pd.timer.Reset(timeout)
}

func (c *CBRP) discoveryTimeout(target pkt.NodeID) {
	pd, ok := c.disc[target]
	if !ok {
		return
	}
	if !c.buf.HasDest(target, c.env.Now()) {
		delete(c.disc, target)
		return
	}
	pd.attempts++
	if pd.attempts > 8 {
		for _, p := range c.buf.PopDest(target, c.env.Now()) {
			c.env.Drop(p, stats.DropNoRoute)
		}
		delete(c.disc, target)
		return
	}
	c.sendRREQ(target, pd)
}

func (c *CBRP) handleRREQ(p *pkt.Packet, m *rreq) {
	me := c.env.ID()
	if m.Origin == me || indexOf(m.Record, me) >= 0 {
		return
	}
	if c.seen.Seen(routing.SeenKey{Origin: m.Origin, ID: m.ID}, c.env.Now()) {
		return
	}
	record := append(append([]pkt.NodeID(nil), m.Record...), me)
	if m.Target == me {
		c.sendRREP(record)
		return
	}
	// The target may be a direct neighbour: a cluster head (which knows
	// its whole cluster) completes the route without further flooding.
	// Restricting the shortcut to heads keeps one answer per cluster
	// rather than one per common neighbour.
	if c.status == Head && c.neighbors.fresh(m.Target, c.env.Now(), c.cfg.HelloInterval) {
		c.sendRREP(append(record, m.Target))
		return
	}
	if !c.shouldReflood() {
		return
	}
	p2 := p.Clone()
	p2.TTL--
	if p2.Expired() {
		return
	}
	m2 := *m
	m2.Record = record
	p2.Payload = &m2
	p2.Size = pkt.IPHeaderBytes + rreqBaseBytes + pkt.SrcRouteAddrBytes*len(record)
	c.env.Engine().ScheduleIn(c.env.RNG().Jitter(routing.BroadcastJitter), func() {
		c.env.SendMac(p2, pkt.Broadcast)
	})
}

// sendRREP returns route (origin..target) to the origin along the reversed
// record. When the replying node appended the target itself (neighbour
// shortcut), it still sits one short of the end of the reverse path.
func (c *CBRP) sendRREP(route []pkt.NodeID) {
	me := c.env.ID()
	i := indexOf(route, me)
	if i < 1 {
		return
	}
	back := make([]pkt.NodeID, 0, i+1)
	for j := i; j >= 0; j-- {
		back = append(back, route[j])
	}
	p := pkt.RoutingPacket("RREP", me, back[len(back)-1], pkt.DefaultTTL,
		rrepBaseBytes+pkt.SrcRouteAddrBytes*(len(route)+len(back)), c.env.Now())
	p.Payload = &rrep{Route: append([]pkt.NodeID(nil), route...)}
	p.SrcRoute = back
	p.SRIndex = 0
	c.env.SendMac(p, back[1])
}

func (c *CBRP) handleRREP(p *pkt.Packet, m *rrep) {
	me := c.env.ID()
	if p.Dst == me {
		target := m.Route[len(m.Route)-1]
		if pd, ok := c.disc[target]; ok {
			pd.timer.Stop()
			delete(c.disc, target)
		}
		c.cacheRoute(target, m.Route)
		for _, bp := range c.buf.PopDest(target, c.env.Now()) {
			bp2 := bp
			c.attachRoute(bp2, append([]pkt.NodeID(nil), m.Route...))
			c.forwardData(bp2)
		}
		return
	}
	idx := indexOf(p.SrcRoute, me)
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		c.env.Drop(p, stats.DropNoRoute)
		return
	}
	p2 := p.Clone()
	p2.SRIndex = idx
	c.env.SendMac(p2, p.SrcRoute[idx+1])
}

// --- maintenance --------------------------------------------------------------

// MacFailed implements network.Protocol.
func (c *CBRP) MacFailed(p *pkt.Packet, to pkt.NodeID) {
	if to == pkt.Broadcast {
		return
	}
	// The neighbour is gone as far as we can tell.
	delete(c.neighbors.rows, to)
	c.invalidateRoutesVia(c.env.ID(), to)
	c.env.FlushNextHop(to)
	if p.Kind != pkt.KindData {
		return
	}
	me := c.env.ID()
	if !c.cfg.DisableLocalRepair && c.localRepair(p, to) {
		return
	}
	if p.Src == me {
		c.buf.Push(p, c.env.Now())
		c.discover(p.Dst)
		return
	}
	c.sendRERR(p, me, to)
	c.env.Drop(p, stats.DropSalvageFail)
}

// localRepair tries to bridge the broken hop using 2-hop neighbour
// knowledge: find a neighbour adjacent to the unreachable next hop (or the
// hop after it) and splice it into the source route.
func (c *CBRP) localRepair(p *pkt.Packet, failed pkt.NodeID) bool {
	me := c.env.ID()
	idx := indexOf(p.SrcRoute, me)
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		return false
	}
	// Targets to re-reach, in order of preference: the node after the
	// failed hop (bypassing it entirely), then the failed hop itself.
	var targets []pkt.NodeID
	if idx+2 < len(p.SrcRoute) {
		targets = append(targets, p.SrcRoute[idx+2])
	}
	targets = append(targets, p.SrcRoute[idx+1])
	now := c.env.Now()
	// Candidate bridging neighbours, visited from a random starting point
	// and built lazily (the direct-repair branch usually wins first).
	// The rotation matters: always preferring the lowest id lets two
	// repairing nodes splice each other into a stable forwarding cycle
	// (the packet ping-pongs until its TTL dies, at every retry, forever),
	// while a deterministic RNG draw breaks such cycles the way Go's
	// randomised map iteration used to — without the cross-process
	// nondeterminism that came with it.
	var vias []pkt.NodeID
	off := -1
	for _, tgt := range targets {
		// Direct (fresh) neighbour?
		if tgt != failed && c.neighbors.fresh(tgt, now, c.cfg.HelloInterval) {
			newRoute := spliceRoute(p.SrcRoute, idx, tgt, false, 0)
			c.attachRoute(p, newRoute)
			c.forwardData(p)
			return true
		}
		// Via an intermediate fresh neighbour?
		if off < 0 {
			vias = c.neighbors.ids()
			off = 0
			if len(vias) > 1 {
				off = c.env.RNG().Intn(len(vias))
			}
		}
		for k := range vias {
			via := vias[(k+off)%len(vias)]
			if via == failed || !c.neighbors.fresh(via, now, c.cfg.HelloInterval) {
				continue
			}
			if c.neighbors.neighborOf(via, tgt) {
				newRoute := spliceRoute(p.SrcRoute, idx, tgt, true, via)
				c.attachRoute(p, newRoute)
				c.forwardData(p)
				return true
			}
		}
	}
	return false
}

// spliceRoute rebuilds a source route: prefix up to idx (inclusive), then
// optional via, then from tgt onward.
func spliceRoute(route []pkt.NodeID, idx int, tgt pkt.NodeID, hasVia bool, via pkt.NodeID) []pkt.NodeID {
	out := append([]pkt.NodeID(nil), route[:idx+1]...)
	if hasVia {
		out = append(out, via)
	}
	ti := indexOf(route, tgt)
	out = append(out, route[ti:]...)
	// Remove accidental duplicates introduced by the splice (keep first).
	seen := make(map[pkt.NodeID]bool, len(out))
	clean := out[:0]
	for _, n := range out {
		if seen[n] {
			continue
		}
		seen[n] = true
		clean = append(clean, n)
	}
	return clean
}

// sendRERR notifies the packet source of broken link a→b along the reversed
// traversed prefix.
func (c *CBRP) sendRERR(p *pkt.Packet, a, b pkt.NodeID) {
	me := c.env.ID()
	idx := indexOf(p.SrcRoute, me)
	if idx < 1 {
		return
	}
	back := make([]pkt.NodeID, 0, idx+1)
	for j := idx; j >= 0; j-- {
		back = append(back, p.SrcRoute[j])
	}
	ep := pkt.RoutingPacket("RERR", me, p.Src, pkt.DefaultTTL, rerrBytes, c.env.Now())
	ep.Payload = &rerr{A: a, B: b}
	ep.SrcRoute = back
	ep.SRIndex = 0
	c.env.SendMac(ep, back[1])
}

func (c *CBRP) handleRERR(p *pkt.Packet, m *rerr) {
	me := c.env.ID()
	c.invalidateRoutesVia(m.A, m.B)
	if p.Dst == me {
		return
	}
	idx := indexOf(p.SrcRoute, me)
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		return
	}
	p2 := p.Clone()
	p2.SRIndex = idx
	c.env.SendMac(p2, p.SrcRoute[idx+1])
}

// Snoop implements network.Protocol (unused; CBRP relies on HELLOs).
func (c *CBRP) Snoop(*pkt.Packet, pkt.NodeID, pkt.NodeID, float64) {}

// MacSent implements network.Protocol (unused).
func (c *CBRP) MacSent(*pkt.Packet, pkt.NodeID) {}

func indexOf(path []pkt.NodeID, n pkt.NodeID) int {
	for i, v := range path {
		if v == n {
			return i
		}
	}
	return -1
}
