package cbrp

import (
	"testing"

	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// fabricate builds a neighbour table from (id, status) pairs.
func fabricate(entries map[pkt.NodeID]NodeStatus) *neighborTable {
	t := newNeighborTable()
	for id, st := range entries {
		t.rows[id] = &neighborInfo{id: id, status: st, expires: sim.Never}
	}
	return t
}

func TestElectLowestIDBecomesHead(t *testing.T) {
	// Node 1 with higher-ID undecided neighbours wins headship.
	nt := fabricate(map[pkt.NodeID]NodeStatus{3: Undecided, 7: Undecided})
	if got := electStatus(1, nt); got != Head {
		t.Fatalf("lowest id elected %v, want head", got)
	}
}

func TestElectJoinsExistingHead(t *testing.T) {
	nt := fabricate(map[pkt.NodeID]NodeStatus{2: Head, 9: Undecided})
	if got := electStatus(5, nt); got != Member {
		t.Fatalf("node adjacent to head elected %v, want member", got)
	}
	// Even a lower-ID node joins an established head (stability rule).
	if got := electStatus(1, nt); got != Member {
		t.Fatalf("low-id node next to head elected %v, want member", got)
	}
}

func TestElectWaitsForLowerUndecided(t *testing.T) {
	nt := fabricate(map[pkt.NodeID]NodeStatus{2: Undecided, 9: Undecided})
	if got := electStatus(5, nt); got != Undecided {
		t.Fatalf("node with lower-id contender elected %v, want undecided", got)
	}
}

func TestElectIgnoresForeignMembers(t *testing.T) {
	// A lower-ID neighbour that is already a member of another cluster
	// does not block headship.
	nt := fabricate(map[pkt.NodeID]NodeStatus{2: Member, 9: Undecided})
	if got := electStatus(5, nt); got != Head {
		t.Fatalf("elected %v, want head (member neighbours don't contend)", got)
	}
}

func TestElectIsolatedNodeIsHead(t *testing.T) {
	if got := electStatus(4, newNeighborTable()); got != Head {
		t.Fatalf("isolated node elected %v, want head of its own cluster", got)
	}
}

func TestNeighborTableExpiry(t *testing.T) {
	nt := newNeighborTable()
	h := &hello{Status: Member, Neighbors: []pkt.NodeID{9}}
	nt.update(h, 3, sim.At(0), sim.At(6))
	if !nt.has(3) {
		t.Fatal("fresh neighbour missing")
	}
	if !nt.fresh(3, sim.At(1), 2*sim.Second) {
		t.Fatal("neighbour with 5s left not fresh")
	}
	if nt.fresh(3, sim.At(5), 2*sim.Second) {
		t.Fatal("neighbour with 1s left considered fresh")
	}
	nt.expire(sim.At(7))
	if nt.has(3) {
		t.Fatal("expired neighbour retained")
	}
}

func TestTwoHopKnowledge(t *testing.T) {
	nt := newNeighborTable()
	nt.update(&hello{Status: Member, Neighbors: []pkt.NodeID{7, 8}}, 3, 0, sim.Never)
	if !nt.neighborOf(3, 7) || !nt.neighborOf(3, 8) {
		t.Fatal("2-hop adjacency missing")
	}
	if nt.neighborOf(3, 9) || nt.neighborOf(4, 7) {
		t.Fatal("2-hop adjacency invented")
	}
}

func TestForeignHeadsDetection(t *testing.T) {
	nt := newNeighborTable()
	nt.update(&hello{Status: Member, Heads: []pkt.NodeID{10}}, 3, 0, sim.Never)
	nt.update(&hello{Status: Member, Heads: []pkt.NodeID{20}}, 4, 0, sim.Never)
	mine := map[pkt.NodeID]bool{10: true}
	foreign := nt.foreignHeads(mine)
	if len(foreign) != 1 || foreign[0] != 20 {
		t.Fatalf("foreignHeads = %v, want [20]", foreign)
	}
}

func TestSpliceRouteDedup(t *testing.T) {
	route := []pkt.NodeID{0, 1, 2, 3}
	// Repair at idx 1 targeting node 3 via node 2 (already downstream):
	// splice must not duplicate 2.
	out := spliceRoute(route, 1, 3, true, 2)
	seen := map[pkt.NodeID]bool{}
	for _, n := range out {
		if seen[n] {
			t.Fatalf("duplicate in spliced route %v", out)
		}
		seen[n] = true
	}
	if out[0] != 0 || out[len(out)-1] != 3 {
		t.Fatalf("splice endpoints wrong: %v", out)
	}
}

func TestStatusString(t *testing.T) {
	if Undecided.String() != "undecided" || Member.String() != "member" || Head.String() != "head" {
		t.Fatal("status strings")
	}
}

func TestGatewayDetection(t *testing.T) {
	mk := func() *CBRP {
		c := New(Config{})
		c.status = Member
		return c
	}
	// Member hearing two distinct heads is a direct gateway.
	c := mk()
	c.neighbors.rows[10] = &neighborInfo{id: 10, status: Head, expires: sim.Never}
	c.neighbors.rows[20] = &neighborInfo{id: 20, status: Head, expires: sim.Never}
	c.myHeads[10] = true
	if !c.isGateway() {
		t.Fatal("member adjacent to two heads not a gateway")
	}
	// Member hearing a foreign cluster's member is a distributed gateway.
	c = mk()
	c.neighbors.rows[10] = &neighborInfo{id: 10, status: Head, expires: sim.Never}
	c.neighbors.rows[7] = &neighborInfo{id: 7, status: Member, heads: []pkt.NodeID{30}, expires: sim.Never}
	c.myHeads[10] = true
	if !c.isGateway() {
		t.Fatal("member adjacent to a foreign member not a gateway")
	}
	// Plain member inside one cluster is not a gateway.
	c = mk()
	c.neighbors.rows[10] = &neighborInfo{id: 10, status: Head, expires: sim.Never}
	c.neighbors.rows[8] = &neighborInfo{id: 8, status: Member, heads: []pkt.NodeID{10}, expires: sim.Never}
	c.myHeads[10] = true
	if c.isGateway() {
		t.Fatal("interior member misdetected as gateway")
	}
	// Heads are never gateways.
	c = mk()
	c.status = Head
	c.neighbors.rows[10] = &neighborInfo{id: 10, status: Head, expires: sim.Never}
	if c.isGateway() {
		t.Fatal("head misdetected as gateway")
	}
}
