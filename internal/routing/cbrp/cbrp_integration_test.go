package cbrp_test

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/cbrp"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func instrumented(cfg cbrp.Config, agents *[]*cbrp.CBRP) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol {
		a := cbrp.New(cfg)
		*agents = append(*agents, a)
		return a
	}
}

func fastCfg() cbrp.Config {
	return cbrp.Config{HelloInterval: sim.Second}
}

func rtestFactory(cfg cbrp.Config) network.ProtocolFactory { return cbrp.Factory(cfg) }

// trackSet builds the local-repair scenario: route 0-1-2-3 with node 2
// leaving at t=8 and node 4 positioned to bridge 1→3.
func trackSet() []*mobility.Track {
	return []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.Static(geo.Pt(200, 0)),
		rtest.MovingAwayTrack(geo.Pt(400, 0), geo.Pt(400, 5000), sim.At(8), 500),
		mobility.Static(geo.Pt(600, 0)),
		mobility.Static(geo.Pt(400, 80)),
	}
}

func TestClusterFormationOnChain(t *testing.T) {
	var agents []*cbrp.CBRP
	h := rtest.NewChain(t, 6, 200, instrumented(fastCfg(), &agents))
	h.Run(10)
	heads := 0
	for i, a := range agents {
		switch a.Status() {
		case cbrp.Head:
			heads++
		case cbrp.Undecided:
			t.Fatalf("node %d still undecided after 10 hello rounds", i)
		}
	}
	if heads == 0 || heads == 6 {
		t.Fatalf("degenerate clustering: %d heads of 6 nodes", heads)
	}
	// Node 0 has the lowest ID in its neighbourhood: must be a head.
	if agents[0].Status() != cbrp.Head {
		t.Fatalf("node 0 is %v, want head", agents[0].Status())
	}
	// Node 1 is adjacent to head 0: must be its member.
	if agents[1].Status() != cbrp.Member {
		t.Fatalf("node 1 is %v, want member", agents[1].Status())
	}
	found := false
	for _, hd := range agents[1].Heads() {
		if hd == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 1 heads = %v, want to include n0", agents[1].Heads())
	}
}

func TestRoutingAcrossClusters(t *testing.T) {
	h := rtest.NewChain(t, 6, 200, rtestFactory(fastCfg()))
	h.SendMany(0, 5, 10, sim.At(6), 200*sim.Millisecond)
	h.Run(15)
	if got := h.DeliveredUnique(5); got != 10 {
		t.Fatalf("delivered %d/10 across clusters", got)
	}
}

func TestOneHopNeighborShortcut(t *testing.T) {
	// Adjacent destination: no RREQ at all once hellos have run.
	h := rtest.NewChain(t, 3, 200, rtestFactory(fastCfg()))
	h.SendAt(0, 1, sim.At(5))
	h.Run(8)
	res := h.World.Collector.Finalize()
	if res.RoutingByType["RREQ"] != 0 {
		t.Fatalf("RREQ used for a direct neighbour: %d", res.RoutingByType["RREQ"])
	}
	if h.DeliveredTo(1) != 1 {
		t.Fatal("no delivery")
	}
}

func TestClusterFloodingCheaperThanBlind(t *testing.T) {
	// A dense 12-node two-row grid: with clustering only heads/gateways
	// reflood, so total RREQ transmissions must be lower than with
	// DisableClusterFlooding (every node refloods).
	positions := make([]geo.Point, 0, 12)
	for i := 0; i < 6; i++ {
		positions = append(positions, geo.Pt(float64(i)*150, 0))
		positions = append(positions, geo.Pt(float64(i)*150, 120))
	}
	run := func(disable bool) (uint64, int) {
		cfg := fastCfg()
		cfg.DisableClusterFlooding = disable
		h := rtest.NewPositions(t, positions, rtestFactory(cfg))
		h.SendAt(0, 10, sim.At(6)) // far corner
		h.Run(12)
		return h.World.Collector.Finalize().RoutingByType["RREQ"], h.DeliveredTo(10)
	}
	clusterTx, clusterOK := run(false)
	blindTx, blindOK := run(true)
	if clusterOK != 1 || blindOK != 1 {
		t.Fatalf("delivery failed: cluster %d blind %d", clusterOK, blindOK)
	}
	if clusterTx >= blindTx {
		t.Fatalf("cluster flooding (%d tx) not cheaper than blind flooding (%d tx)", clusterTx, blindTx)
	}
}

func TestLocalRepairBridgesBrokenHop(t *testing.T) {
	// Route 0-1-2-3; node 2 dies at t=8 but node 4 sits beside it and can
	// bridge 1→3. With local repair most packets survive.
	run := func(disableRepair bool) int {
		cfg := fastCfg()
		cfg.DisableLocalRepair = disableRepair
		h := rtest.NewTracks(t, trackSet(), rtestFactory(cfg))
		h.SendMany(0, 3, 40, sim.At(6), 250*sim.Millisecond)
		h.Run(25)
		return h.DeliveredUnique(3)
	}
	withRepair := run(false)
	if withRepair < 32 {
		t.Fatalf("delivered %d/40 with local repair", withRepair)
	}
}

func TestHellosAreOnlyIdleTraffic(t *testing.T) {
	h := rtest.NewChain(t, 4, 200, rtestFactory(fastCfg()))
	h.Run(20)
	res := h.World.Collector.Finalize()
	for typ := range res.RoutingByType {
		if typ != "HELLO" {
			t.Fatalf("idle CBRP sent %s traffic", typ)
		}
	}
	if res.RoutingByType["HELLO"] == 0 {
		t.Fatal("no hellos at all")
	}
}
