package dsr

import (
	"adhocsim/internal/pkt"
)

// PathCache stores complete source routes (each a node sequence starting at
// this node's id or learned from elsewhere) and answers shortest-route
// queries. It mirrors the DSR "path cache" of the CMU implementation:
// bounded, FIFO-evicted, with link-based invalidation.
type PathCache struct {
	owner pkt.NodeID
	cap   int
	paths [][]pkt.NodeID
}

// NewPathCache creates a cache holding at most capacity paths.
func NewPathCache(owner pkt.NodeID, capacity int) *PathCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &PathCache{owner: owner, cap: capacity}
}

// Add stores a path (any node sequence, typically from a RREP record or an
// overheard source route). Duplicate paths are ignored.
func (c *PathCache) Add(path []pkt.NodeID) {
	if len(path) < 2 {
		return
	}
	// Reject paths with repeated nodes (loops).
	seen := make(map[pkt.NodeID]struct{}, len(path))
	for _, n := range path {
		if _, dup := seen[n]; dup {
			return
		}
		seen[n] = struct{}{}
	}
	for _, existing := range c.paths {
		if equalPath(existing, path) {
			return
		}
	}
	if len(c.paths) >= c.cap {
		copy(c.paths, c.paths[1:])
		c.paths = c.paths[:len(c.paths)-1]
	}
	c.paths = append(c.paths, append([]pkt.NodeID(nil), path...))
}

func equalPath(a, b []pkt.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Find returns the shortest known route from the owner to dst (inclusive of
// both endpoints), or nil. Routes are extracted as subpaths of cached paths:
// the owner may appear mid-path.
func (c *PathCache) Find(dst pkt.NodeID) []pkt.NodeID {
	var best []pkt.NodeID
	for _, path := range c.paths {
		i := index(path, c.owner)
		if i < 0 {
			continue
		}
		j := index(path, dst)
		if j <= i {
			continue
		}
		cand := path[i : j+1]
		if best == nil || len(cand) < len(best) {
			best = cand
		}
	}
	if best == nil {
		return nil
	}
	return append([]pkt.NodeID(nil), best...)
}

func index(path []pkt.NodeID, n pkt.NodeID) int {
	for i, v := range path {
		if v == n {
			return i
		}
	}
	return -1
}

// RemoveLink deletes every cached path that traverses the directed link
// a→b, truncating instead where the link is mid-path and the prefix remains
// useful. It reports how many paths were touched.
func (c *PathCache) RemoveLink(a, b pkt.NodeID) int {
	touched := 0
	kept := c.paths[:0]
	for _, path := range c.paths {
		cut := -1
		for i := 0; i+1 < len(path); i++ {
			if path[i] == a && path[i+1] == b {
				cut = i
				break
			}
		}
		switch {
		case cut < 0:
			kept = append(kept, path)
		case cut >= 1:
			touched++
			// Keep the usable prefix (still a valid partial path).
			if cut+1 >= 2 {
				kept = append(kept, path[:cut+1])
			}
		default:
			touched++
		}
	}
	for i := len(kept); i < len(c.paths); i++ {
		c.paths[i] = nil
	}
	c.paths = kept
	return touched
}

// Len returns the number of cached paths.
func (c *PathCache) Len() int { return len(c.paths) }
