package dsr

import (
	"testing"
	"testing/quick"

	"adhocsim/internal/pkt"
)

func ids(ns ...int32) []pkt.NodeID {
	out := make([]pkt.NodeID, len(ns))
	for i, n := range ns {
		out[i] = pkt.NodeID(n)
	}
	return out
}

func TestCacheFindExact(t *testing.T) {
	c := NewPathCache(0, 8)
	c.Add(ids(0, 1, 2, 3))
	got := c.Find(3)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Find = %v", got)
	}
	if c.Find(9) != nil {
		t.Fatal("found nonexistent destination")
	}
}

func TestCacheFindSubpath(t *testing.T) {
	// Owner 2 can extract 2→4 from a path 0..5 passing through it.
	c := NewPathCache(2, 8)
	c.Add(ids(0, 1, 2, 3, 4, 5))
	got := c.Find(4)
	want := ids(2, 3, 4)
	if len(got) != 3 {
		t.Fatalf("Find = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Find = %v, want %v", got, want)
		}
	}
	// Backward direction is not implied.
	if c.Find(0) != nil {
		t.Fatal("cache invented a reverse route")
	}
}

func TestCacheShortestWins(t *testing.T) {
	c := NewPathCache(0, 8)
	c.Add(ids(0, 1, 2, 3))
	c.Add(ids(0, 5, 3))
	if got := c.Find(3); len(got) != 3 || got[1] != 5 {
		t.Fatalf("Find = %v, want the 2-hop path", got)
	}
}

func TestCacheRejectsLoopsAndDuplicates(t *testing.T) {
	c := NewPathCache(0, 8)
	c.Add(ids(0, 1, 0))
	if c.Len() != 0 {
		t.Fatal("looping path cached")
	}
	c.Add(ids(0, 1, 2))
	c.Add(ids(0, 1, 2))
	if c.Len() != 1 {
		t.Fatalf("duplicate path cached: %d", c.Len())
	}
	c.Add(ids(5))
	if c.Len() != 1 {
		t.Fatal("single-node path cached")
	}
}

func TestCacheCapacityFIFO(t *testing.T) {
	c := NewPathCache(0, 2)
	c.Add(ids(0, 1))
	c.Add(ids(0, 2))
	c.Add(ids(0, 3)) // evicts 0→1
	if c.Find(1) != nil {
		t.Fatal("oldest path survived eviction")
	}
	if c.Find(2) == nil || c.Find(3) == nil {
		t.Fatal("newer paths evicted")
	}
}

func TestCacheRemoveLink(t *testing.T) {
	c := NewPathCache(0, 8)
	c.Add(ids(0, 1, 2, 3))
	c.Add(ids(0, 4, 3))
	c.RemoveLink(1, 2)
	if c.Find(3) == nil {
		t.Fatal("alternate path lost")
	}
	if got := c.Find(3); len(got) != 3 || got[1] != 4 {
		t.Fatalf("Find after RemoveLink = %v", got)
	}
	// The usable prefix of the truncated path survives: 0→1.
	if c.Find(1) == nil {
		t.Fatal("usable prefix discarded")
	}
	if c.Find(2) != nil {
		t.Fatal("broken-link suffix still reachable")
	}
}

func TestCacheRemoveLinkDirectional(t *testing.T) {
	c := NewPathCache(0, 8)
	c.Add(ids(0, 1, 2))
	c.RemoveLink(2, 1) // reverse direction: unrelated
	if c.Find(2) == nil {
		t.Fatal("RemoveLink removed the wrong direction")
	}
}

func TestCacheFindNeverLoops(t *testing.T) {
	f := func(raw []uint8) bool {
		c := NewPathCache(0, 16)
		path := []pkt.NodeID{0}
		for _, r := range raw {
			path = append(path, pkt.NodeID(r%16))
		}
		c.Add(path)
		got := c.Find(pkt.NodeID(7))
		if got == nil {
			return true
		}
		seen := map[pkt.NodeID]bool{}
		for _, n := range got {
			if seen[n] {
				return false
			}
			seen[n] = true
		}
		return got[0] == 0 && got[len(got)-1] == 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
