package dsr_test

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/dsr"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func factory(cfg dsr.Config) network.ProtocolFactory { return dsr.Factory(cfg) }

func instrumented(cfg dsr.Config, agents *[]*dsr.DSR) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol {
		a := dsr.New(cfg)
		*agents = append(*agents, a)
		return a
	}
}

func TestChainDiscoveryAndDelivery(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(dsr.Config{}))
	h.SendMany(0, 4, 10, sim.At(1), 100*sim.Millisecond)
	h.Run(10)
	if got := h.DeliveredUnique(4); got != 10 {
		t.Fatalf("delivered %d/10 over 4-hop chain", got)
	}
}

func TestSourceRouteCarriedAndHopsCounted(t *testing.T) {
	h := rtest.NewChain(t, 4, 200, factory(dsr.Config{}))
	h.SendAt(0, 3, sim.At(1))
	h.Run(5)
	if len(h.Deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(h.Deliveries))
	}
	p := h.Deliveries[0].Pkt
	if p.Hops != 3 {
		t.Fatalf("hops = %d, want 3", p.Hops)
	}
	if len(p.SrcRoute) != 4 || p.SrcRoute[0] != 0 || p.SrcRoute[3] != 3 {
		t.Fatalf("source route = %v", p.SrcRoute)
	}
	// Header bytes for the source route must be charged.
	if p.Size <= 64+pkt.UDPHeaderBytes+pkt.IPHeaderBytes {
		t.Fatalf("source-route header not charged: size %d", p.Size)
	}
}

func TestRouteCachedAfterFirstDiscovery(t *testing.T) {
	h := rtest.NewChain(t, 4, 200, factory(dsr.Config{}))
	h.SendAt(0, 3, sim.At(1))
	h.Run(3)
	afterFirst := h.World.Collector.Finalize().RoutingByType["RREQ"]
	// Second packet long after: the cache must answer without a new RREQ.
	h.SendAt(0, 3, sim.At(30))
	h.Run(35)
	afterSecond := h.World.Collector.Finalize().RoutingByType["RREQ"]
	if h.DeliveredUnique(3) != 2 {
		t.Fatalf("delivered %d/2", h.DeliveredUnique(3))
	}
	if afterSecond != afterFirst {
		t.Fatalf("cache miss: RREQs grew %d → %d", afterFirst, afterSecond)
	}
}

func TestNonPropagatingRequestFirst(t *testing.T) {
	// Adjacent target: the TTL-1 request suffices, so exactly one RREQ
	// transmission happens (nobody refloods).
	h := rtest.NewChain(t, 6, 200, factory(dsr.Config{}))
	h.SendAt(0, 1, sim.At(1))
	h.Run(5)
	res := h.World.Collector.Finalize()
	if res.RoutingByType["RREQ"] != 1 {
		t.Fatalf("RREQ tx = %d, want 1 (non-propagating phase)", res.RoutingByType["RREQ"])
	}
	if h.DeliveredTo(1) != 1 {
		t.Fatal("no delivery")
	}
}

func TestReplyFromCache(t *testing.T) {
	// Prime node 1's cache with a route to 4 (flow 1→4), then let node 0
	// discover 4: node 1 answers from cache, so no RREQ is ever
	// transmitted by nodes beyond it.
	var agents []*dsr.DSR
	h := rtest.NewChain(t, 5, 200, instrumented(dsr.Config{}, &agents))
	h.SendAt(1, 4, sim.At(1))
	h.Run(3)
	base := h.World.Collector.Finalize().RoutingByType["RREQ"]
	h.SendAt(0, 4, sim.At(3))
	h.Run(8)
	res := h.World.Collector.Finalize()
	grew := res.RoutingByType["RREQ"] - base
	if h.DeliveredUnique(4) != 2 {
		t.Fatalf("delivered %d/2", h.DeliveredUnique(4))
	}
	// 0's non-propagating RREQ (1 tx) must be all it takes: node 1 holds
	// 1→4 in cache and splices 0-1-...-4.
	if grew > 1 {
		t.Fatalf("reply-from-cache failed: %d extra RREQ transmissions", grew)
	}
	if agents[0].Cache().Find(4) == nil {
		t.Fatal("origin did not cache the spliced route")
	}
}

func TestReplyFromCacheDisabled(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(dsr.Config{DisableReplyFromCache: true}))
	h.SendAt(1, 4, sim.At(1))
	h.Run(3)
	base := h.World.Collector.Finalize().RoutingByType["RREQ"]
	h.SendAt(0, 4, sim.At(3))
	h.Run(8)
	grew := h.World.Collector.Finalize().RoutingByType["RREQ"] - base
	if grew <= 1 {
		t.Fatalf("with cache replies disabled the flood must propagate, got %d extra RREQs", grew)
	}
}

func TestSalvageOnLinkBreak(t *testing.T) {
	// 0→3 via 1 (0-1-3); node 2 offers the alternate 0-2-3 and node 1
	// vanishes mid-run. DSR at node 0 must salvage queued/failed packets
	// from its cache (it learned 0-2-3 from the RREQ flood or snooping)
	// or rediscover; either way most packets arrive.
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		rtest.MovingAwayTrack(geo.Pt(200, 0), geo.Pt(200, 5000), sim.At(5), 500),
		mobility.Static(geo.Pt(120, 160)), // in range of both 0 and 3
		mobility.Static(geo.Pt(300, 150)),
	}
	h := rtest.NewTracks(t, tracks, factory(dsr.Config{}))
	h.SendMany(0, 3, 40, sim.At(1), 250*sim.Millisecond)
	h.Run(20)
	if got := h.DeliveredUnique(3); got < 34 {
		t.Fatalf("delivered %d/40 across link break", got)
	}
}

func TestRERRPropagatesToSource(t *testing.T) {
	// Break at the far hop: intermediate node 1 must send a RERR to the
	// source, and the source's cache must drop routes over the dead link.
	var agents []*dsr.DSR
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.Static(geo.Pt(200, 0)),
		rtest.MovingAwayTrack(geo.Pt(400, 0), geo.Pt(5000, 0), sim.At(4), 800),
	}
	h := rtest.NewTracks(t, tracks, instrumented(dsr.Config{}, &agents))
	h.SendMany(0, 2, 30, sim.At(1), 300*sim.Millisecond)
	h.Run(20)
	res := h.World.Collector.Finalize()
	if res.RoutingByType["RERR"] == 0 {
		t.Fatal("no RERR on far-hop break")
	}
	if r := agents[0].Cache().Find(2); r != nil {
		t.Fatalf("source still caches a route to the vanished node: %v", r)
	}
}

func TestPromiscuousLearning(t *testing.T) {
	// Triangle: 0 and 2 talk via the chain, node 3 sits in earshot of the
	// whole exchange but is never addressed. With promiscuous learning it
	// must still populate its cache.
	var agents []*dsr.DSR
	positions := []geo.Point{geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(400, 0), geo.Pt(200, 100)}
	h := rtest.NewPositions(t, positions, instrumented(dsr.Config{}, &agents))
	h.SendMany(0, 2, 5, sim.At(1), 200*sim.Millisecond)
	h.Run(5)
	if agents[3].Cache().Len() == 0 {
		t.Fatal("bystander learned nothing promiscuously")
	}
	// And with the optimization off, it must learn only what the flood
	// itself teaches (RREQ broadcasts still reach it).
	var deaf []*dsr.DSR
	h2 := rtest.NewPositions(t, positions, instrumented(dsr.Config{DisablePromiscuous: true}, &deaf))
	h2.SendMany(0, 2, 5, sim.At(1), 200*sim.Millisecond)
	h2.Run(5)
	if deaf[3].Cache().Len() > agents[3].Cache().Len() {
		t.Fatal("promiscuous learning made the cache smaller")
	}
}

func TestNoControlTrafficWithoutData(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(dsr.Config{}))
	h.Run(30)
	if tx := h.RoutingTx(); tx != 0 {
		t.Fatalf("idle DSR transmitted %d routing packets", tx)
	}
}
