// Package dsr implements Dynamic Source Routing (Johnson & Maltz), the
// protocol the IPPS'01 study found most efficient. Routes are discovered by
// flooding route requests that accumulate the traversed node list; the
// destination (or an intermediate node with a cached route) returns the
// complete path, and data packets carry it in their header. There is no
// periodic traffic at all: every byte of overhead is event-driven.
//
// Features reproduced from the CMU study configuration: non-propagating
// (TTL 1) initial request phase, exponential discovery backoff, reply from
// cache, promiscuous route learning, packet salvaging, and per-hop route
// error propagation with cache invalidation.
package dsr

import (
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Config tunes DSR.
type Config struct {
	// CacheCapacity bounds the path cache (default 64 paths).
	CacheCapacity int
	// NonPropagating enables the TTL-1 first discovery phase (default
	// on; disable for ablation).
	DisableNonPropagating bool
	// ReplyFromCache lets intermediate nodes answer RREQs from their
	// cache (default on; disable for ablation).
	DisableReplyFromCache bool
	// PromiscuousLearning adds overheard source routes to the cache
	// (default on).
	DisablePromiscuous bool
	// MaxSalvageCount bounds per-packet salvage operations (default 15).
	MaxSalvageCount int
	// NonPropTimeout is the wait after the TTL-1 request (default 30 ms).
	NonPropTimeout sim.Duration
	// DiscoveryBase is the first propagating-request timeout; it doubles
	// per retry up to DiscoveryMax (defaults 500 ms / 10 s).
	DiscoveryBase sim.Duration
	DiscoveryMax  sim.Duration
	// SendBufferCap/SendBufferTimeout bound the origin-side buffer.
	SendBufferCap     int
	SendBufferTimeout sim.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.MaxSalvageCount <= 0 {
		c.MaxSalvageCount = 15
	}
	if c.NonPropTimeout <= 0 {
		c.NonPropTimeout = 30 * sim.Millisecond
	}
	if c.DiscoveryBase <= 0 {
		c.DiscoveryBase = 500 * sim.Millisecond
	}
	if c.DiscoveryMax <= 0 {
		c.DiscoveryMax = 10 * sim.Second
	}
	return c
}

// Factory returns a protocol factory.
func Factory(cfg Config) network.ProtocolFactory {
	return func(id pkt.NodeID) network.Protocol { return New(cfg) }
}

// Message sizing (option headers per the DSR draft, 4-byte addresses).
const (
	rreqBaseBytes = 8
	rrepBaseBytes = 8
	rerrBytes     = 12
	srBaseBytes   = 4
)

// rreq is a route request payload; Record holds the nodes traversed so far
// including the originator.
type rreq struct {
	Origin pkt.NodeID
	Target pkt.NodeID
	ID     uint32
	Record []pkt.NodeID
}

// rrep carries the discovered full route (origin..target).
type rrep struct {
	Route []pkt.NodeID
}

// rerr reports a broken link observed by From.
type rerr struct {
	From pkt.NodeID
	A, B pkt.NodeID // broken directed link A→B
}

// pending tracks discovery state for one target.
type pending struct {
	attempts int
	timer    *sim.Timer
}

// DSR is one node's agent.
type DSR struct {
	cfg   Config
	env   network.Env
	cache *PathCache
	seen  *routing.SeenCache
	buf   *routing.SendBuffer
	reqID uint32
	disc  map[pkt.NodeID]*pending
}

// New creates a DSR agent.
func New(cfg Config) *DSR {
	return &DSR{
		cfg:  cfg.withDefaults(),
		seen: routing.NewSeenCache(30 * sim.Second),
		disc: make(map[pkt.NodeID]*pending),
	}
}

// Start implements network.Protocol.
func (d *DSR) Start(env network.Env) {
	d.env = env
	d.cache = NewPathCache(env.ID(), d.cfg.CacheCapacity)
	d.buf = routing.NewSendBuffer(d.cfg.SendBufferCap, d.cfg.SendBufferTimeout, func(p *pkt.Packet, timeout bool) {
		if timeout {
			d.env.Drop(p, stats.DropSendBuffer)
		} else {
			d.env.Drop(p, stats.DropSendBufFull)
		}
	})
}

// Cache exposes the path cache (tests/diagnostics).
func (d *DSR) Cache() *PathCache { return d.cache }

// --- data path -------------------------------------------------------------

// SendData implements network.Protocol.
func (d *DSR) SendData(p *pkt.Packet) {
	route := d.cache.Find(p.Dst)
	if route == nil {
		d.buf.Push(p, d.env.Now())
		d.discover(p.Dst)
		return
	}
	d.attachRoute(p, route)
	d.forwardAlongRoute(p)
}

// attachRoute installs a source route on p and charges its header bytes.
func (d *DSR) attachRoute(p *pkt.Packet, route []pkt.NodeID) {
	if p.SrcRoute != nil {
		p.Size -= srBaseBytes + pkt.SrcRouteAddrBytes*len(p.SrcRoute)
	}
	p.SrcRoute = route
	p.SRIndex = 0
	p.Size += srBaseBytes + pkt.SrcRouteAddrBytes*len(route)
}

// forwardAlongRoute transmits p to the next node of its source route.
func (d *DSR) forwardAlongRoute(p *pkt.Packet) {
	idx := index(p.SrcRoute, d.env.ID())
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		d.env.Drop(p, stats.DropNoRoute)
		return
	}
	p.SRIndex = idx
	d.env.SendMac(p, p.SrcRoute[idx+1])
}

// Recv implements network.Protocol.
func (d *DSR) Recv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	if p.Kind == pkt.KindRouting {
		switch m := p.Payload.(type) {
		case *rreq:
			d.handleRREQ(p, m)
		case *rrep:
			d.handleRREP(p, m)
		case *rerr:
			d.handleRERR(p, m)
		}
		return
	}
	p.Hops++
	// Learn from the carried source route (nodes en route see the whole
	// path).
	if p.SrcRoute != nil {
		d.cache.Add(p.SrcRoute)
	}
	if p.Dst == d.env.ID() {
		d.env.Deliver(p, from)
		return
	}
	if p.Hops >= pkt.DefaultTTL {
		d.env.Drop(p, stats.DropTTL)
		return
	}
	d.forwardAlongRoute(p)
}

// --- discovery ---------------------------------------------------------------

func (d *DSR) discover(target pkt.NodeID) {
	if _, busy := d.disc[target]; busy {
		return
	}
	pd := &pending{}
	pd.timer = sim.NewTimer(d.env.Engine(), func() { d.discoveryTimeout(target) })
	d.disc[target] = pd
	d.sendRREQ(target, pd)
}

func (d *DSR) sendRREQ(target pkt.NodeID, pd *pending) {
	d.reqID++
	ttl := pkt.DefaultTTL
	timeout := d.cfg.DiscoveryBase
	if !d.cfg.DisableNonPropagating && pd.attempts == 0 {
		ttl = 1
		timeout = d.cfg.NonPropTimeout
	} else {
		shift := pd.attempts
		if d.cfg.DisableNonPropagating {
			shift++
		}
		for i := 1; i < shift && timeout < d.cfg.DiscoveryMax; i++ {
			timeout *= 2
		}
		if timeout > d.cfg.DiscoveryMax {
			timeout = d.cfg.DiscoveryMax
		}
	}
	m := &rreq{
		Origin: d.env.ID(),
		Target: target,
		ID:     d.reqID,
		Record: []pkt.NodeID{d.env.ID()},
	}
	d.seen.Seen(routing.SeenKey{Origin: m.Origin, ID: m.ID}, d.env.Now())
	p := pkt.RoutingPacket("RREQ", d.env.ID(), pkt.Broadcast, ttl,
		rreqBaseBytes+pkt.SrcRouteAddrBytes*len(m.Record), d.env.Now())
	p.Payload = m
	d.env.SendMac(p, pkt.Broadcast)
	pd.timer.Reset(timeout)
}

func (d *DSR) discoveryTimeout(target pkt.NodeID) {
	pd, ok := d.disc[target]
	if !ok {
		return
	}
	if !d.buf.HasDest(target, d.env.Now()) {
		delete(d.disc, target)
		return
	}
	pd.attempts++
	if pd.attempts > 8 {
		for _, p := range d.buf.PopDest(target, d.env.Now()) {
			d.env.Drop(p, stats.DropNoRoute)
		}
		delete(d.disc, target)
		return
	}
	d.sendRREQ(target, pd)
}

func (d *DSR) handleRREQ(p *pkt.Packet, m *rreq) {
	me := d.env.ID()
	if m.Origin == me || index(m.Record, me) >= 0 {
		return
	}
	if d.seen.Seen(routing.SeenKey{Origin: m.Origin, ID: m.ID}, d.env.Now()) {
		return
	}
	// The accumulated record is a path we can cache (origin..prev hop).
	d.cache.Add(m.Record)

	record := append(append([]pkt.NodeID(nil), m.Record...), me)
	if m.Target == me {
		d.sendRREP(record)
		return
	}
	if !d.cfg.DisableReplyFromCache {
		if tail := d.cache.Find(m.Target); tail != nil {
			// Splice record + cached tail if the result is loop-free.
			if full := spliceLoopFree(record, tail); full != nil {
				d.sendRREP(full)
				return
			}
		}
	}
	p2 := p.Clone()
	p2.TTL--
	if p2.Expired() {
		return
	}
	m2 := *m
	m2.Record = record
	p2.Payload = &m2
	p2.Size = pkt.IPHeaderBytes + rreqBaseBytes + pkt.SrcRouteAddrBytes*len(record)
	d.env.Engine().ScheduleIn(d.env.RNG().Jitter(routing.BroadcastJitter), func() {
		d.env.SendMac(p2, pkt.Broadcast)
	})
}

// spliceLoopFree joins head (…,me) and tail (me,…,target) rejecting overlap.
func spliceLoopFree(head, tail []pkt.NodeID) []pkt.NodeID {
	full := append(append([]pkt.NodeID(nil), head...), tail[1:]...)
	seen := make(map[pkt.NodeID]struct{}, len(full))
	for _, n := range full {
		if _, dup := seen[n]; dup {
			return nil
		}
		seen[n] = struct{}{}
	}
	return full
}

// sendRREP returns the full route (origin..target) to the origin,
// source-routed along the reversed discovery record.
func (d *DSR) sendRREP(route []pkt.NodeID) {
	origin := route[0]
	me := d.env.ID()
	d.cache.Add(route)
	// Reverse path from me back to origin: the prefix of route up to me,
	// reversed. (Links are symmetric under this PHY.)
	i := index(route, me)
	if i < 0 {
		// Replying from cache: we are not on the route; route via our
		// cached path toward the origin if we have one, else give up.
		back := d.cache.Find(origin)
		if back == nil {
			return
		}
		d.transmitRREP(route, back)
		return
	}
	back := make([]pkt.NodeID, 0, i+1)
	for j := i; j >= 0; j-- {
		back = append(back, route[j])
	}
	d.transmitRREP(route, back)
}

// transmitRREP sends the reply carrying route along the source route back.
func (d *DSR) transmitRREP(route, back []pkt.NodeID) {
	if len(back) < 2 {
		return
	}
	p := pkt.RoutingPacket("RREP", d.env.ID(), back[len(back)-1], pkt.DefaultTTL,
		rrepBaseBytes+pkt.SrcRouteAddrBytes*(len(route)+len(back)), d.env.Now())
	p.Payload = &rrep{Route: append([]pkt.NodeID(nil), route...)}
	p.SrcRoute = back
	p.SRIndex = 0
	d.env.SendMac(p, back[1])
}

func (d *DSR) handleRREP(p *pkt.Packet, m *rrep) {
	d.cache.Add(m.Route)
	me := d.env.ID()
	if p.Dst == me {
		// Discovery satisfied for the route's target.
		target := m.Route[len(m.Route)-1]
		if pd, ok := d.disc[target]; ok {
			pd.timer.Stop()
			delete(d.disc, target)
		}
		for _, bp := range d.buf.PopDest(target, d.env.Now()) {
			d.SendData(bp)
		}
		return
	}
	// Forward along the reply's source route.
	idx := index(p.SrcRoute, me)
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		d.env.Drop(p, stats.DropNoRoute)
		return
	}
	p2 := p.Clone()
	p2.SRIndex = idx
	d.env.SendMac(p2, p.SrcRoute[idx+1])
}

// --- maintenance ----------------------------------------------------------

// MacFailed implements network.Protocol: link breakage → cache invalidation,
// route error to the source, salvage attempt.
func (d *DSR) MacFailed(p *pkt.Packet, to pkt.NodeID) {
	if to == pkt.Broadcast {
		return
	}
	me := d.env.ID()
	d.cache.RemoveLink(me, to)
	d.env.FlushNextHop(to)

	if p.Kind == pkt.KindRouting {
		return // lost replies/errors are not recovered
	}
	// Route error back to the source (unless we are the source).
	if p.Src != me {
		d.sendRERR(p.Src, me, to, p.SrcRoute, p.SRIndex)
	}
	d.salvage(p, to)
}

// salvage re-routes a failed data packet from the cache, or re-buffers it at
// the origin, or drops it.
func (d *DSR) salvage(p *pkt.Packet, failedHop pkt.NodeID) {
	me := d.env.ID()
	if alt := d.cache.Find(p.Dst); alt != nil && p.Salvaged < d.cfg.MaxSalvageCount && alt[1] != failedHop {
		p.Salvaged++
		d.attachRoute(p, alt)
		d.forwardAlongRoute(p)
		return
	}
	if p.Src == me {
		d.buf.Push(p, d.env.Now())
		d.discover(p.Dst)
		return
	}
	d.env.Drop(p, stats.DropSalvageFail)
}

// sendRERR reports broken link a→b to src along the reversed prefix of the
// packet's source route (or a cached route as fallback).
func (d *DSR) sendRERR(src, a, b pkt.NodeID, srcRoute []pkt.NodeID, srIndex int) {
	me := d.env.ID()
	var back []pkt.NodeID
	if srcRoute != nil && srIndex >= 1 && srIndex < len(srcRoute) {
		back = make([]pkt.NodeID, 0, srIndex+1)
		for j := srIndex; j >= 0; j-- {
			back = append(back, srcRoute[j])
		}
	} else if cached := d.cache.Find(src); cached != nil {
		back = cached
	} else {
		return
	}
	if len(back) < 2 || back[0] != me {
		return
	}
	p := pkt.RoutingPacket("RERR", me, src, pkt.DefaultTTL, rerrBytes, d.env.Now())
	p.Payload = &rerr{From: me, A: a, B: b}
	p.SrcRoute = back
	p.SRIndex = 0
	d.env.SendMac(p, back[1])
}

func (d *DSR) handleRERR(p *pkt.Packet, m *rerr) {
	d.cache.RemoveLink(m.A, m.B)
	me := d.env.ID()
	if p.Dst == me {
		return
	}
	idx := index(p.SrcRoute, me)
	if idx < 0 || idx+1 >= len(p.SrcRoute) {
		return
	}
	p2 := p.Clone()
	p2.SRIndex = idx
	d.env.SendMac(p2, p.SrcRoute[idx+1])
}

// Snoop implements network.Protocol: promiscuous route learning.
func (d *DSR) Snoop(p *pkt.Packet, from, to pkt.NodeID, _ float64) {
	if d.cfg.DisablePromiscuous {
		return
	}
	if p.SrcRoute != nil {
		d.cache.Add(p.SrcRoute)
	}
	if m, ok := p.Payload.(*rrep); ok {
		d.cache.Add(m.Route)
	}
	if m, ok := p.Payload.(*rerr); ok {
		d.cache.RemoveLink(m.A, m.B)
	}
}

// MacSent implements network.Protocol (unused).
func (d *DSR) MacSent(*pkt.Packet, pkt.NodeID) {}
