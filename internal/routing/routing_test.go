package routing

import (
	"testing"

	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

func mkBuf(capacity int, timeout sim.Duration) (*SendBuffer, *[]string) {
	var log []string
	b := NewSendBuffer(capacity, timeout, func(p *pkt.Packet, timedOut bool) {
		if timedOut {
			log = append(log, "timeout")
		} else {
			log = append(log, "evict")
		}
	})
	return b, &log
}

func dp(dst pkt.NodeID, seq uint32) *pkt.Packet {
	return pkt.DataPacket(0, dst, seq, 64, 0)
}

func TestSendBufferPopDest(t *testing.T) {
	b, _ := mkBuf(8, sim.Second)
	b.Push(dp(1, 0), 0)
	b.Push(dp(2, 1), 0)
	b.Push(dp(1, 2), 0)
	if !b.HasDest(1, 0) || !b.HasDest(2, 0) || b.HasDest(3, 0) {
		t.Fatal("HasDest wrong")
	}
	got := b.PopDest(1, 0)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 2 {
		t.Fatalf("PopDest = %v", got)
	}
	if b.Len(0) != 1 {
		t.Fatalf("Len = %d", b.Len(0))
	}
	if len(b.PopDest(1, 0)) != 0 {
		t.Fatal("double pop returned packets")
	}
}

func TestSendBufferTimeout(t *testing.T) {
	b, log := mkBuf(8, sim.Seconds(5))
	b.Push(dp(1, 0), sim.At(0))
	b.Push(dp(1, 1), sim.At(3))
	// At t=6 the first packet is expired, the second is not.
	got := b.PopDest(1, sim.At(6))
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("PopDest after expiry = %v", got)
	}
	if len(*log) != 1 || (*log)[0] != "timeout" {
		t.Fatalf("drop log = %v", *log)
	}
}

func TestSendBufferOverflowEvictsOldest(t *testing.T) {
	b, log := mkBuf(2, sim.Second*100)
	b.Push(dp(1, 0), 0)
	b.Push(dp(1, 1), 0)
	b.Push(dp(1, 2), 0)
	got := b.PopDest(1, 0)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("overflow kept %v", got)
	}
	if len(*log) != 1 || (*log)[0] != "evict" {
		t.Fatalf("drop log = %v", *log)
	}
}

func TestSendBufferDefaults(t *testing.T) {
	b := NewSendBuffer(0, 0, func(*pkt.Packet, bool) {})
	for i := 0; i < DefaultSendBufferCap; i++ {
		b.Push(dp(1, uint32(i)), 0)
	}
	if b.Len(0) != DefaultSendBufferCap {
		t.Fatalf("default capacity = %d", b.Len(0))
	}
}

func TestSeenCacheBasics(t *testing.T) {
	c := NewSeenCache(10 * sim.Second)
	k := SeenKey{Origin: 3, ID: 7}
	if c.Seen(k, sim.At(0)) {
		t.Fatal("fresh key reported seen")
	}
	if !c.Seen(k, sim.At(1)) {
		t.Fatal("repeat not detected")
	}
	if c.Seen(SeenKey{Origin: 3, ID: 8}, sim.At(1)) {
		t.Fatal("different id collided")
	}
	if c.Seen(SeenKey{Origin: 4, ID: 7}, sim.At(1)) {
		t.Fatal("different origin collided")
	}
}

func TestSeenCacheExpiry(t *testing.T) {
	c := NewSeenCache(5 * sim.Second)
	k := SeenKey{Origin: 1, ID: 1}
	c.Seen(k, sim.At(0))
	if c.Seen(k, sim.At(6)) {
		t.Fatal("expired entry still suppressing")
	}
	if !c.Seen(k, sim.At(7)) {
		t.Fatal("re-recorded entry not seen")
	}
}

func TestSeenCacheGC(t *testing.T) {
	c := NewSeenCache(sim.Second)
	for i := uint32(0); i < 5000; i++ {
		c.Seen(SeenKey{Origin: 1, ID: i}, sim.At(float64(i)*0.001))
	}
	// GC must have run (map bounded); functional check: old entries gone.
	if c.Seen(SeenKey{Origin: 1, ID: 0}, sim.At(10)) {
		t.Fatal("ancient entry survived")
	}
}
