// Package flood implements TTL-scoped, duplicate-suppressed flooding of
// data packets. It is not one of the paper's protocols; it serves as a
// sanity yardstick (an upper bound on overhead, a mobility-insensitive
// delivery baseline) and as the simplest exerciser of the full stack.
package flood

import (
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Config tunes the flood agent.
type Config struct {
	// TTL bounds flood depth (default pkt.DefaultTTL).
	TTL int
}

// Factory returns a protocol factory for network.Config.
func Factory(cfg Config) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol { return New(cfg) }
}

// Flood is one node's flooding agent.
type Flood struct {
	cfg  Config
	env  network.Env
	seen *routing.SeenCache
}

// New creates a flood agent.
func New(cfg Config) *Flood {
	if cfg.TTL <= 0 {
		cfg.TTL = pkt.DefaultTTL
	}
	return &Flood{cfg: cfg, seen: routing.NewSeenCache(60 * sim.Second)}
}

// Start implements network.Protocol.
func (f *Flood) Start(env network.Env) { f.env = env }

// SendData implements network.Protocol: every data packet is broadcast.
func (f *Flood) SendData(p *pkt.Packet) {
	p.TTL = f.cfg.TTL
	f.seen.Seen(routing.SeenKey{Origin: p.Src, ID: p.Seq}, f.env.Now())
	f.env.SendMac(p, pkt.Broadcast)
}

// Recv implements network.Protocol.
func (f *Flood) Recv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	if f.seen.Seen(routing.SeenKey{Origin: p.Src, ID: p.Seq}, f.env.Now()) {
		return
	}
	p.Hops++
	if p.Dst == f.env.ID() {
		f.env.Deliver(p, from)
		return
	}
	p.TTL--
	if p.Expired() {
		f.env.Drop(p, stats.DropTTL)
		return
	}
	// Clone: the broadcast continues under a new lineage from this node.
	q := p.Clone()
	f.env.Engine().ScheduleIn(f.env.RNG().Jitter(routing.BroadcastJitter), func() {
		f.env.SendMac(q, pkt.Broadcast)
	})
}

// Snoop implements network.Protocol (unused).
func (f *Flood) Snoop(*pkt.Packet, pkt.NodeID, pkt.NodeID, float64) {}

// MacSent implements network.Protocol (unused).
func (f *Flood) MacSent(*pkt.Packet, pkt.NodeID) {}

// MacFailed implements network.Protocol: broadcasts never fail at the MAC,
// so only queue overflow lands here; the packet is simply lost.
func (f *Flood) MacFailed(p *pkt.Packet, _ pkt.NodeID) {}
