package flood_test

import (
	"testing"

	"adhocsim/internal/network"
	"adhocsim/internal/routing/flood"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func factory(cfg flood.Config) network.ProtocolFactory { return flood.Factory(cfg) }

func TestFloodDeliversAcrossChain(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(flood.Config{}))
	h.SendMany(0, 4, 5, sim.At(1), 500*sim.Millisecond)
	h.Run(10)
	if got := h.DeliveredUnique(4); got != 5 {
		t.Fatalf("delivered %d/5", got)
	}
}

func TestFloodDedupBoundsTransmissions(t *testing.T) {
	// One packet through a 5-node chain: each node broadcasts at most
	// once, so at most 5 data transmissions occur (origin + 4 relays,
	// and the destination does not rebroadcast → at most 4).
	h := rtest.NewChain(t, 5, 200, factory(flood.Config{}))
	h.SendAt(0, 4, sim.At(1))
	h.Run(5)
	res := h.World.Collector.Finalize()
	if res.DataTxPackets > 5 {
		t.Fatalf("flood dedup failed: %d data transmissions for one packet", res.DataTxPackets)
	}
	if h.DeliveredUnique(4) != 1 {
		t.Fatal("no delivery")
	}
}

func TestFloodTTLBoundsReach(t *testing.T) {
	h := rtest.NewChain(t, 6, 200, factory(flood.Config{TTL: 2}))
	h.SendAt(0, 5, sim.At(1))
	h.Run(5)
	if h.DeliveredTo(5) != 0 {
		t.Fatal("packet crossed 5 hops with TTL 2")
	}
	res := h.World.Collector.Finalize()
	if res.Drops["ttl-expired"] == 0 {
		t.Fatalf("no TTL drop recorded: %v", res.Drops)
	}
	// A closer destination is fine.
	h2 := rtest.NewChain(t, 6, 200, factory(flood.Config{TTL: 2}))
	h2.SendAt(0, 2, sim.At(1))
	h2.Run(5)
	if h2.DeliveredTo(2) != 1 {
		t.Fatal("TTL-2 flood failed to cover 2 hops")
	}
}

func TestFloodDeliversDespitePartitionLater(t *testing.T) {
	// Flooding has no routes to break: delivery works whenever the graph
	// is momentarily connected.
	h := rtest.NewChain(t, 3, 240, factory(flood.Config{}))
	h.SendAt(0, 2, sim.At(1))
	h.Run(3)
	if h.DeliveredTo(2) != 1 {
		t.Fatal("flood failed on connected chain")
	}
}
