package aodv_test

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/aodv"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func factory(cfg aodv.Config) network.ProtocolFactory { return aodv.Factory(cfg) }

// agents collects the per-node AODV instances for white-box assertions.
func instrumented(cfg aodv.Config, agents *[]*aodv.AODV) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol {
		a := aodv.New(cfg)
		*agents = append(*agents, a)
		return a
	}
}

func TestChainDiscoveryAndDelivery(t *testing.T) {
	var agents []*aodv.AODV
	h := rtest.NewChain(t, 5, 200, instrumented(aodv.Config{}, &agents))
	// Last packet at t=8.2s keeps routes inside ActiveRouteTimeout (3 s)
	// at the t=9 inspection point.
	h.SendMany(0, 4, 10, sim.At(1), 800*sim.Millisecond)
	h.Run(9)
	if got := h.DeliveredUnique(4); got != 10 {
		t.Fatalf("delivered %d/10 over 4-hop chain", got)
	}
	// Forward route at the source must point to the next chain node.
	if nh, ok := agents[0].NextHop(4); !ok || nh != 1 {
		t.Fatalf("source next hop = %v,%v want 1", nh, ok)
	}
	// Intermediate node routes toward both ends.
	if nh, ok := agents[2].NextHop(4); !ok || nh != 3 {
		t.Fatalf("mid next hop to 4 = %v,%v want 3", nh, ok)
	}
	if nh, ok := agents[2].NextHop(0); !ok || nh != 1 {
		t.Fatalf("mid reverse next hop = %v,%v want 1", nh, ok)
	}
}

func TestPacketsBufferedDuringDiscovery(t *testing.T) {
	h := rtest.NewChain(t, 4, 200, factory(aodv.Config{}))
	// Burst sent in the same instant: all must wait for one discovery and
	// then flow.
	for i := 0; i < 5; i++ {
		h.SendAt(0, 3, sim.At(1))
	}
	h.Run(5)
	if got := h.DeliveredTo(3); got != 5 {
		t.Fatalf("delivered %d/5 buffered packets", got)
	}
}

func TestExpandingRingLimitsFloodForNearTarget(t *testing.T) {
	// Cross topology: source at the centre, target one hop north, and
	// three long arms that a network-wide flood would sweep through. The
	// TTL=1 ring satisfies the discovery without the arms ever
	// retransmitting; a chain would hide the effect because the target
	// truncates a linear flood anyway.
	cross := func() []geo.Point {
		return []geo.Point{
			geo.Pt(0, 600),   // 0: source (centre)
			geo.Pt(0, 800),   // 1: target, one hop north
			geo.Pt(200, 600), // east arm
			geo.Pt(400, 600),
			geo.Pt(600, 600),
			geo.Pt(0, 400), // south arm
			geo.Pt(0, 200),
		}
	}
	ring := rtest.NewPositions(t, cross(), factory(aodv.Config{}))
	ring.SendAt(0, 1, sim.At(1))
	ring.Run(5)
	ringTx := ring.RoutingTx()

	full := rtest.NewPositions(t, cross(), factory(aodv.Config{DisableExpandingRing: true}))
	full.SendAt(0, 1, sim.At(1))
	full.Run(5)
	fullTx := full.RoutingTx()

	if ring.DeliveredTo(1) != 1 || full.DeliveredTo(1) != 1 {
		t.Fatal("delivery failed")
	}
	if ringTx >= fullTx {
		t.Fatalf("expanding ring (%d tx) not cheaper than full flood (%d tx)", ringTx, fullTx)
	}
}

func TestLinkBreakTriggersRediscovery(t *testing.T) {
	// Route 0-1-2. At t=5 the destination (node 2) relocates so that the
	// 1→2 hop breaks at the INTERMEDIATE node — the case that generates a
	// RERR back to the source. Node 3 provides the detour 0-1-3-2.
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.Static(geo.Pt(200, 0)),
		rtest.MovingAwayTrack(geo.Pt(400, 0), geo.Pt(400, 300), sim.At(5), 100),
		mobility.Static(geo.Pt(250, 150)),
	}
	h := rtest.NewTracks(t, tracks, factory(aodv.Config{}))
	h.SendMany(0, 2, 40, sim.At(1), 250*sim.Millisecond)
	h.Run(20)
	// Some packets are lost around the break; the bulk must arrive.
	if got := h.DeliveredUnique(2); got < 32 {
		t.Fatalf("delivered %d/40 across a link break", got)
	}
	res := h.World.Collector.Finalize()
	if res.RoutingByType["RERR"] == 0 {
		t.Fatal("no RERR generated on intermediate link break")
	}
}

func TestUnreachableDestinationDropsAfterRetries(t *testing.T) {
	// Node 2 is permanently out of range.
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		mobility.Static(geo.Pt(200, 0)),
		mobility.Static(geo.Pt(5000, 0)),
	}
	h := rtest.NewTracks(t, tracks, factory(aodv.Config{}))
	h.SendAt(0, 2, sim.At(1))
	h.Run(40)
	if h.DeliveredTo(2) != 0 {
		t.Fatal("impossible delivery")
	}
	res := h.World.Collector.Finalize()
	drops := res.Drops["no-route"] + res.Drops["send-buffer-timeout"]
	if drops == 0 {
		t.Fatalf("unreachable packet never dropped: %v", res.Drops)
	}
	// Discovery must have stopped long before the horizon: bounded RREQs.
	if res.RoutingByType["RREQ"] > 60 {
		t.Fatalf("RREQ storm for unreachable dest: %d", res.RoutingByType["RREQ"])
	}
}

func TestIntermediateReplyFromFreshRoute(t *testing.T) {
	// First flow 0→4 populates routes along the chain. A later flow 1→4
	// can be answered by node 1's own table... instead verify a second
	// discovery from node 0 to node 4 after expiry is cheaper when node 1
	// holds a fresh route. Simplest observable: a second flow 0→4 right
	// after the first reuses the still-valid route (no new RREQ at all).
	h := rtest.NewChain(t, 5, 200, factory(aodv.Config{}))
	h.SendAt(0, 4, sim.At(1))
	h.Run(3)
	rreqAfterFirst := h.World.Collector.Finalize().RoutingByType["RREQ"]
	h.SendAt(0, 4, sim.At(3.5)) // within ActiveRouteTimeout of last use? route was used at ~1s, timeout 3s → expired
	h.SendAt(0, 4, sim.At(3.6))
	h.Run(6)
	res := h.World.Collector.Finalize()
	if h.DeliveredUnique(4) != 3 {
		t.Fatalf("delivered %d/3", h.DeliveredUnique(4))
	}
	_ = rreqAfterFirst
	if res.RoutingByType["RREP"] == 0 {
		t.Fatal("no RREPs recorded")
	}
}

func TestPreemptiveWarningTriggersEarlyRediscovery(t *testing.T) {
	// 0→2 via 1; node 1 drifts slowly outward so the 0-1 link weakens.
	// With preemptive warnings the source refreshes the route before it
	// breaks; node 3 offers the alternate path.
	mk := func(preemptive bool) (int, uint64) {
		tracks := []*mobility.Track{
			mobility.Static(geo.Pt(0, 0)),
			rtest.MovingAwayTrack(geo.Pt(180, 0), geo.Pt(600, 0), sim.At(3), 15),
			mobility.Static(geo.Pt(400, 0)),
			mobility.Static(geo.Pt(200, 80)),
		}
		cfg := aodv.Config{}
		if preemptive {
			cfg.Preemptive = true
			// Warn when the received power corresponds to >212 m.
			cfg.WarnPower = warnPowerAt(212)
		}
		h := rtest.NewTracks(t, tracks, factory(cfg))
		h.SendMany(0, 2, 60, sim.At(1), 200*sim.Millisecond)
		h.Run(20)
		return h.DeliveredUnique(2), h.World.Collector.Finalize().RoutingByType["WARN"]
	}
	plainDelivered, plainWarns := mk(false)
	preDelivered, preWarns := mk(true)
	if plainWarns != 0 {
		t.Fatal("plain AODV sent WARN messages")
	}
	if preWarns == 0 {
		t.Fatal("preemptive AODV never warned")
	}
	if preDelivered < plainDelivered-2 {
		t.Fatalf("preemptive delivery %d worse than plain %d", preDelivered, plainDelivered)
	}
}

func TestNoControlTrafficWithoutData(t *testing.T) {
	h := rtest.NewChain(t, 5, 200, factory(aodv.Config{}))
	h.Run(30)
	if tx := h.RoutingTx(); tx != 0 {
		t.Fatalf("idle AODV transmitted %d routing packets", tx)
	}
}

func TestBidirectionalFlows(t *testing.T) {
	h := rtest.NewChain(t, 4, 200, factory(aodv.Config{}))
	h.SendMany(0, 3, 10, sim.At(1), 100*sim.Millisecond)
	h.SendMany(3, 0, 10, sim.At(1), 100*sim.Millisecond)
	h.Run(10)
	if h.DeliveredUnique(3) != 10 || h.DeliveredUnique(0) != 10 {
		t.Fatalf("bidirectional delivery %d/%d", h.DeliveredUnique(3), h.DeliveredUnique(0))
	}
}

// warnPowerAt computes received power at distance d under default radios.
func warnPowerAt(d float64) float64 {
	p := phy.DefaultParams()
	return p.Prop.RxPower(p.TxPower, d)
}
