package aodv_test

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/routing/aodv"
	"adhocsim/internal/routing/rtest"
	"adhocsim/internal/sim"
)

func TestHelloBeaconsOnlyWithActiveRoutes(t *testing.T) {
	cfg := aodv.Config{HelloInterval: sim.Second}
	h := rtest.NewChain(t, 3, 200, factory(cfg))
	// No traffic for 5 s: no active routes, hence no hellos.
	h.Run(5)
	if got := h.World.Collector.Finalize().RoutingByType["HELLO"]; got != 0 {
		t.Fatalf("%d HELLOs with no active routes", got)
	}
	// Traffic creates routes; hellos must start.
	h.SendMany(0, 2, 10, sim.At(5), 200*sim.Millisecond)
	h.Run(10)
	if got := h.World.Collector.Finalize().RoutingByType["HELLO"]; got == 0 {
		t.Fatal("no HELLOs despite active routes")
	}
	if h.DeliveredUnique(2) != 10 {
		t.Fatalf("delivered %d/10 in hello mode", h.DeliveredUnique(2))
	}
}

func TestHelloDetectsSilentNeighbor(t *testing.T) {
	// 0→2 via 1. Node 1 leaves at t=4. Even with NO further data traffic
	// (so no link-layer feedback), hello loss must invalidate the route
	// and produce a RERR.
	var agents []*aodv.AODV
	cfg := aodv.Config{HelloInterval: sim.Second}
	tracks := []*mobility.Track{
		mobility.Static(geo.Pt(0, 0)),
		rtest.MovingAwayTrack(geo.Pt(200, 0), geo.Pt(200, 5000), sim.At(4), 1000),
		mobility.Static(geo.Pt(400, 0)),
	}
	h := rtest.NewTracks(t, tracks, instrumented(cfg, &agents))
	// A short burst establishes routes, then silence.
	h.SendMany(0, 2, 3, sim.At(1), 100*sim.Millisecond)
	h.Run(12)
	if _, ok := agents[0].NextHop(2); ok {
		t.Fatal("route via vanished neighbour still valid after hello loss")
	}
}

func TestLocalRepairSalvagesAtIntermediate(t *testing.T) {
	// 0-1-2-3 with bypass node 4 near hop 2→3's area. Node 2 leaves at
	// t=5; with local repair node 1 re-discovers 3 itself and forwards
	// the failed packet; without it the packet dies at node 1.
	mk := func(repair bool) (delivered int, drops uint64) {
		tracks := []*mobility.Track{
			mobility.Static(geo.Pt(0, 0)),
			mobility.Static(geo.Pt(200, 0)),
			rtest.MovingAwayTrack(geo.Pt(400, 0), geo.Pt(400, 5000), sim.At(5), 1000),
			mobility.Static(geo.Pt(600, 0)),
			mobility.Static(geo.Pt(400, 80)), // bridges 1 and 3
		}
		cfg := aodv.Config{LocalRepair: repair}
		h := rtest.NewTracks(t, tracks, factory(cfg))
		h.SendMany(0, 3, 40, sim.At(1), 250*sim.Millisecond)
		h.Run(25)
		res := h.World.Collector.Finalize()
		return h.DeliveredUnique(3), res.Drops["mac-retries"]
	}
	withRepair, _ := mk(true)
	without, _ := mk(false)
	if withRepair < without {
		t.Fatalf("local repair hurt delivery: %d vs %d", withRepair, without)
	}
	if withRepair < 34 {
		t.Fatalf("delivered %d/40 with local repair", withRepair)
	}
}

// TestExpiredRouteDoesNotVetoFreshRREP is the regression test for a subtle
// stale-state bug: a destination's own RREQ floods install reverse routes
// to it everywhere, stamped with its current sequence number. Those entries
// expire silently (the valid flag stays set). When another node later
// discovers that destination, intermediate nodes receive RREPs carrying the
// same sequence number — and must NOT reject them because of the expired
// entry, or the discovery black-holes forever. The trigger needs the
// destination to also be a traffic source and gaps longer than the route
// lifetime, so it is exercised end-to-end.
func TestExpiredRouteDoesNotVetoFreshRREP(t *testing.T) {
	h := rtest.NewChain(t, 6, 200, factory(aodv.Config{}))
	// Phase 1: node 5 (the later destination) runs its own discovery,
	// poisoning reverse routes to itself along the chain.
	h.SendAt(5, 0, sim.At(1))
	// Phase 2: long idle gap — all routes expire silently.
	// Phase 3: node 0 discovers node 5; every packet must be delivered.
	h.SendMany(0, 5, 10, sim.At(20), 200*sim.Millisecond)
	h.Run(30)
	if got := h.DeliveredUnique(5); got != 10 {
		res := h.World.Collector.Finalize()
		t.Fatalf("delivered %d/10 after expiry gap (drops %v)", got, res.Drops)
	}
}
