// Package aodv implements the Ad hoc On-demand Distance Vector protocol
// (Perkins, Belding-Royer & Das, RFC 3561): expanding-ring route request
// floods, destination sequence numbers, reverse-path route replies,
// precursor lists and route error propagation. Link breaks are detected by
// the MAC layer (no HELLO beacons by default, matching the CMU study
// configuration).
//
// The package also hosts the preemptive variant (PAODV): when a data packet
// arrives with received power below a warning threshold — the link is about
// to stretch beyond range — the forwarding node warns the source, which
// re-discovers the route before it actually breaks.
package aodv

import (
	"adhocsim/internal/network"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Config tunes AODV.
type Config struct {
	// ActiveRouteTimeout expires unused routes (default 3 s).
	ActiveRouteTimeout sim.Duration
	// NodeTraversalTime estimates per-hop latency for RREQ timeouts
	// (default 40 ms).
	NodeTraversalTime sim.Duration
	// NetDiameter bounds flood TTL (default 35).
	NetDiameter int
	// RREQRetries is the number of network-wide retries after the
	// expanding-ring phase (default 2).
	RREQRetries int
	// TTLStart/TTLIncrement/TTLThreshold drive the expanding-ring search
	// (defaults 1/2/7). DisableExpandingRing floods at NetDiameter
	// immediately (ablation bench).
	TTLStart, TTLIncrement, TTLThreshold int
	DisableExpandingRing                 bool

	// Preemptive enables PAODV behaviour. WarnPower is the received
	// power (Watts) below which a forwarding node warns the source;
	// WarnGap rate-limits warnings per (source,prev-hop) (default 1 s).
	Preemptive bool
	WarnPower  float64
	WarnGap    sim.Duration

	// HelloInterval enables periodic HELLO beacons for link monitoring
	// (RFC 3561 §6.9). Zero (the default, matching the CMU study
	// configuration) relies purely on link-layer feedback. A node
	// beacons only while it has active routes, and declares a neighbour
	// lost after AllowedHelloLoss missed intervals (default 2).
	HelloInterval    sim.Duration
	AllowedHelloLoss int

	// LocalRepair lets an intermediate node that loses a link attempt to
	// re-discover the destination itself (RFC 3561 §6.12), salvaging the
	// failed packet instead of dropping it. The RERR toward precursors
	// is still sent immediately (simplified from the RFC's deferred
	// variant — documented in DESIGN.md).
	LocalRepair bool

	// SendBufferCap/SendBufferTimeout bound the origin-side packet
	// buffer (defaults 64 / 30 s).
	SendBufferCap     int
	SendBufferTimeout sim.Duration
}

func (c Config) withDefaults() Config {
	if c.ActiveRouteTimeout <= 0 {
		c.ActiveRouteTimeout = 3 * sim.Second
	}
	if c.NodeTraversalTime <= 0 {
		c.NodeTraversalTime = 40 * sim.Millisecond
	}
	if c.NetDiameter <= 0 {
		c.NetDiameter = 35
	}
	if c.RREQRetries <= 0 {
		c.RREQRetries = 2
	}
	if c.TTLStart <= 0 {
		c.TTLStart = 1
	}
	if c.TTLIncrement <= 0 {
		c.TTLIncrement = 2
	}
	if c.TTLThreshold <= 0 {
		c.TTLThreshold = 7
	}
	if c.WarnGap <= 0 {
		c.WarnGap = sim.Second
	}
	if c.AllowedHelloLoss <= 0 {
		c.AllowedHelloLoss = 2
	}
	return c
}

// Factory returns a protocol factory.
func Factory(cfg Config) network.ProtocolFactory {
	return func(pkt.NodeID) network.Protocol { return New(cfg) }
}

// Message body sizes in bytes (RFC 3561 §5).
const (
	rreqBytes = 24
	rrepBytes = 20
	rerrBase  = 4
	rerrDest  = 8
	warnBytes = 12
)

// rreq is a route request payload.
type rreq struct {
	Origin      pkt.NodeID
	OriginSeq   uint32
	ID          uint32
	Dst         pkt.NodeID
	DstSeq      uint32
	DstSeqValid bool
	HopCount    int
}

// rrep is a route reply payload.
type rrep struct {
	Origin   pkt.NodeID // who asked
	Dst      pkt.NodeID // route target
	DstSeq   uint32
	HopCount int
}

// rerr reports newly unreachable destinations.
type rerr struct {
	Unreachable []unreach
}

type unreach struct {
	Dst pkt.NodeID
	Seq uint32
}

// warn is the PAODV preemptive route-degradation notice sent toward the
// data source.
type warn struct {
	FlowDst pkt.NodeID // the destination whose route is weakening
}

// hello is the periodic liveness beacon (hello mode only).
type hello struct{}

// route is one routing-table row.
type route struct {
	dst        pkt.NodeID
	nextHop    pkt.NodeID
	hops       int
	seq        uint32
	seqValid   bool
	valid      bool
	expires    sim.Time
	precursors map[pkt.NodeID]struct{}
}

// pendingDiscovery tracks an in-progress route request at the origin.
type pendingDiscovery struct {
	ttl      int
	attempts int // network-wide attempts after ring phase
	timer    *sim.Timer
}

// AODV is one node's agent.
type AODV struct {
	cfg Config
	env network.Env

	seq    uint32
	rreqID uint32

	table   map[pkt.NodeID]*route
	pending map[pkt.NodeID]*pendingDiscovery
	seen    *routing.SeenCache
	buffer  *routing.SendBuffer

	lastWarn map[pkt.NodeID]sim.Time // per flow-source rate limit (preemptive)
	warned   map[pkt.NodeID]sim.Time // at source: per-dst refresh rate limit

	lastHeard   map[pkt.NodeID]sim.Time // neighbour liveness (hello mode)
	helloTicker *sim.Ticker

	rerrWindow sim.Time // RERR rate-limit window start
	rerrCount  int
}

// New creates an AODV agent.
func New(cfg Config) *AODV {
	return &AODV{
		cfg:       cfg.withDefaults(),
		table:     make(map[pkt.NodeID]*route),
		pending:   make(map[pkt.NodeID]*pendingDiscovery),
		seen:      routing.NewSeenCache(10 * sim.Second),
		lastWarn:  make(map[pkt.NodeID]sim.Time),
		warned:    make(map[pkt.NodeID]sim.Time),
		lastHeard: make(map[pkt.NodeID]sim.Time),
	}
}

// Start implements network.Protocol.
func (a *AODV) Start(env network.Env) {
	a.env = env
	a.buffer = routing.NewSendBuffer(a.cfg.SendBufferCap, a.cfg.SendBufferTimeout, func(p *pkt.Packet, timeout bool) {
		if timeout {
			a.env.Drop(p, stats.DropSendBuffer)
		} else {
			a.env.Drop(p, stats.DropSendBufFull)
		}
	})
	if a.cfg.HelloInterval > 0 {
		a.helloTicker = sim.NewTicker(env.Engine(), a.cfg.HelloInterval, a.helloTick)
		a.helloTicker.Jitter = func() sim.Duration {
			iv := a.cfg.HelloInterval
			return iv - iv/10 + a.env.RNG().Jitter(iv/5)
		}
		a.helloTicker.StartIn(a.env.RNG().Jitter(a.cfg.HelloInterval))
	}
}

// helloTick beacons (when routes are active) and expires silent neighbours.
func (a *AODV) helloTick() {
	now := a.env.Now()
	// Expire neighbours we route through but have not heard from.
	deadline := sim.Duration(a.cfg.AllowedHelloLoss) * a.cfg.HelloInterval
	for nb, last := range a.lastHeard {
		if now.Sub(last) <= deadline {
			continue
		}
		delete(a.lastHeard, nb)
		a.linkBroke(nb)
	}
	if !a.hasActiveRoutes() {
		return
	}
	p := pkt.RoutingPacket("HELLO", a.env.ID(), pkt.Broadcast, 1, rrepBytes, now)
	p.Payload = &hello{}
	a.env.SendMac(p, pkt.Broadcast)
}

func (a *AODV) hasActiveRoutes() bool {
	now := a.env.Now()
	for _, r := range a.table {
		if r.valid && !now.After(r.expires) {
			return true
		}
	}
	return false
}

// --- data path ----------------------------------------------------------

// SendData implements network.Protocol.
func (a *AODV) SendData(p *pkt.Packet) {
	if r := a.validRoute(p.Dst); r != nil {
		a.refresh(r)
		a.env.SendMac(p, r.nextHop)
		return
	}
	a.buffer.Push(p, a.env.Now())
	a.discover(p.Dst)
}

// Recv implements network.Protocol.
func (a *AODV) Recv(p *pkt.Packet, from pkt.NodeID, rxPower float64) {
	if a.cfg.HelloInterval > 0 {
		a.lastHeard[from] = a.env.Now()
	}
	if p.Kind == pkt.KindRouting {
		switch m := p.Payload.(type) {
		case *rreq:
			a.handleRREQ(p, m, from)
		case *rrep:
			a.handleRREP(p, m, from)
		case *rerr:
			a.handleRERR(m, from)
		case *warn:
			a.handleWarn(p, m)
		case *hello:
			// Liveness already recorded above.
		}
		return
	}
	p.Hops++
	if a.cfg.Preemptive && rxPower < a.cfg.WarnPower && p.Src != a.env.ID() {
		a.maybeWarn(p)
	}
	if p.Dst == a.env.ID() {
		a.env.Deliver(p, from)
		return
	}
	if p.Hops >= pkt.DefaultTTL {
		a.env.Drop(p, stats.DropTTL)
		return
	}
	r := a.validRoute(p.Dst)
	if r == nil {
		// Forwarding failure: drop and tell upstream.
		a.env.Drop(p, stats.DropNoRoute)
		a.sendRERRFor(p.Dst)
		return
	}
	a.refresh(r)
	// Keep the reverse route to the source alive too (RFC 3561 §6.2).
	if rev, ok := a.table[p.Src]; ok && rev.valid {
		a.refresh(rev)
	}
	a.env.SendMac(p, r.nextHop)
}

// --- discovery ----------------------------------------------------------

func (a *AODV) discover(dst pkt.NodeID) {
	if _, busy := a.pending[dst]; busy {
		return
	}
	ttl := a.cfg.TTLStart
	if a.cfg.DisableExpandingRing {
		ttl = a.cfg.NetDiameter
	}
	pd := &pendingDiscovery{ttl: ttl}
	pd.timer = sim.NewTimer(a.env.Engine(), func() { a.discoveryTimeout(dst) })
	a.pending[dst] = pd
	a.sendRREQ(dst, pd)
}

func (a *AODV) sendRREQ(dst pkt.NodeID, pd *pendingDiscovery) {
	a.seq++
	a.rreqID++
	m := &rreq{
		Origin:    a.env.ID(),
		OriginSeq: a.seq,
		ID:        a.rreqID,
		Dst:       dst,
	}
	if r, ok := a.table[dst]; ok && r.seqValid {
		m.DstSeq, m.DstSeqValid = r.seq, true
	}
	a.seen.Seen(routing.SeenKey{Origin: m.Origin, ID: m.ID}, a.env.Now())
	p := pkt.RoutingPacket("RREQ", a.env.ID(), pkt.Broadcast, pd.ttl, rreqBytes, a.env.Now())
	p.Payload = m
	a.env.SendMac(p, pkt.Broadcast)
	// Ring traversal timeout: out-and-back across pd.ttl hops plus slack,
	// doubled per network-wide retry (RFC 3561 binary exponential backoff).
	timeout := 2 * a.cfg.NodeTraversalTime * sim.Duration(pd.ttl+2)
	for i := 0; i < pd.attempts; i++ {
		timeout *= 2
	}
	pd.timer.Reset(timeout)
}

func (a *AODV) discoveryTimeout(dst pkt.NodeID) {
	pd, ok := a.pending[dst]
	if !ok {
		return
	}
	if !a.buffer.HasDest(dst, a.env.Now()) {
		// Nothing left waiting; abandon the discovery.
		delete(a.pending, dst)
		return
	}
	switch {
	case pd.ttl < a.cfg.TTLThreshold && !a.cfg.DisableExpandingRing:
		pd.ttl += a.cfg.TTLIncrement
		if pd.ttl > a.cfg.TTLThreshold {
			pd.ttl = a.cfg.NetDiameter
		}
	case pd.ttl < a.cfg.NetDiameter:
		pd.ttl = a.cfg.NetDiameter
	default:
		pd.attempts++
		if pd.attempts > a.cfg.RREQRetries {
			// Unreachable: flush the buffered packets.
			for _, p := range a.buffer.PopDest(dst, a.env.Now()) {
				a.env.Drop(p, stats.DropNoRoute)
			}
			delete(a.pending, dst)
			return
		}
	}
	a.sendRREQ(dst, pd)
}

func (a *AODV) handleRREQ(p *pkt.Packet, m *rreq, from pkt.NodeID) {
	if m.Origin == a.env.ID() {
		return
	}
	if a.seen.Seen(routing.SeenKey{Origin: m.Origin, ID: m.ID}, a.env.Now()) {
		return
	}
	// Install/refresh the reverse route to the origin.
	a.installRoute(m.Origin, from, m.HopCount+1, m.OriginSeq, true)

	if m.Dst == a.env.ID() {
		// RFC 3561 §6.6.1: the destination advances its sequence number
		// before replying (and never lets it fall behind a requested
		// value), so every RREP supersedes earlier knowledge of us.
		if m.DstSeqValid && seqNewer(m.DstSeq, a.seq) {
			a.seq = m.DstSeq
		}
		a.seq++
		a.sendRREP(m.Origin, a.env.ID(), a.seq, 0, from)
		return
	}
	if r := a.validRoute(m.Dst); r != nil && r.seqValid &&
		(!m.DstSeqValid || !seqNewer(m.DstSeq, r.seq)) {
		// Intermediate reply from a fresh-enough route.
		a.sendRREP(m.Origin, m.Dst, r.seq, r.hops, from)
		// The next hop toward the destination becomes a precursor of
		// the origin-bound traffic (and vice versa).
		r.precursors[from] = struct{}{}
		return
	}
	// Re-flood.
	p2 := p.Clone()
	p2.TTL--
	if p2.Expired() {
		return
	}
	m2 := *m
	m2.HopCount++
	p2.Payload = &m2
	a.env.Engine().ScheduleIn(a.env.RNG().Jitter(routing.BroadcastJitter), func() {
		a.env.SendMac(p2, pkt.Broadcast)
	})
}

func (a *AODV) sendRREP(origin, dst pkt.NodeID, dstSeq uint32, hops int, nextHop pkt.NodeID) {
	p := pkt.RoutingPacket("RREP", a.env.ID(), origin, pkt.DefaultTTL, rrepBytes, a.env.Now())
	p.Payload = &rrep{Origin: origin, Dst: dst, DstSeq: dstSeq, HopCount: hops}
	a.env.SendMac(p, nextHop)
}

func (a *AODV) handleRREP(p *pkt.Packet, m *rrep, from pkt.NodeID) {
	// Install/refresh the forward route to the replied destination.
	a.installRoute(m.Dst, from, m.HopCount+1, m.DstSeq, true)

	if m.Origin == a.env.ID() {
		// Discovery complete: release buffered traffic.
		if pd, ok := a.pending[m.Dst]; ok {
			pd.timer.Stop()
			delete(a.pending, m.Dst)
		}
		a.warned[m.Dst] = sim.Time(0)
		for _, bp := range a.buffer.PopDest(m.Dst, a.env.Now()) {
			a.SendData(bp)
		}
		return
	}
	// Forward the RREP along the reverse route, growing precursor lists.
	rev := a.validRoute(m.Origin)
	if rev == nil {
		a.env.Drop(p, stats.DropNoRoute)
		return
	}
	fwd := a.table[m.Dst]
	fwd.precursors[rev.nextHop] = struct{}{}
	rev.precursors[from] = struct{}{}
	m2 := *m
	m2.HopCount++
	p2 := p.Clone()
	p2.Payload = &m2
	a.env.SendMac(p2, rev.nextHop)
}

// --- error handling -------------------------------------------------------

// MacFailed implements network.Protocol. Only data-packet failures count as
// link breakage: a lost RREP/WARN under congestion is recovered by the
// discovery timeout, and treating it as a broken link turns transient
// collisions into network-wide RERR storms (congestion collapse).
func (a *AODV) MacFailed(p *pkt.Packet, to pkt.NodeID) {
	if to == pkt.Broadcast {
		return
	}
	if p.Kind != pkt.KindData {
		return
	}
	a.linkBroke(to)
	if p.Src == a.env.ID() {
		// Origin: buffer and rediscover.
		a.buffer.Push(p, a.env.Now())
		a.discover(p.Dst)
		return
	}
	if a.cfg.LocalRepair {
		// Intermediate repair: hold the packet and re-discover the
		// destination from here; the RREP drain path forwards it.
		a.buffer.Push(p, a.env.Now())
		a.discover(p.Dst)
		return
	}
	a.env.Drop(p, stats.DropRetries)
}

// linkBroke invalidates all routes through the dead neighbour and notifies
// precursors with a RERR.
func (a *AODV) linkBroke(nb pkt.NodeID) {
	var lost []unreach
	notify := make(map[pkt.NodeID]struct{})
	for _, r := range a.table {
		if r.valid && r.nextHop == nb {
			r.valid = false
			r.seq++
			lost = append(lost, unreach{Dst: r.dst, Seq: r.seq})
			for pcur := range r.precursors {
				notify[pcur] = struct{}{}
			}
		}
	}
	if len(lost) == 0 {
		return
	}
	a.env.FlushNextHop(nb)
	if len(notify) == 0 {
		return
	}
	a.broadcastRERR(lost)
}

// sendRERRFor reports a single unreachable destination (forwarding miss).
func (a *AODV) sendRERRFor(dst pkt.NodeID) {
	seq := uint32(0)
	if r, ok := a.table[dst]; ok {
		seq = r.seq
	}
	a.broadcastRERR([]unreach{{Dst: dst, Seq: seq}})
}

func (a *AODV) broadcastRERR(lost []unreach) {
	// RERR_RATELIMIT (RFC 3561 §10): at most 10 RERRs per second.
	now := a.env.Now()
	if now.Sub(a.rerrWindow) >= sim.Second {
		a.rerrWindow = now
		a.rerrCount = 0
	}
	a.rerrCount++
	if a.rerrCount > 10 {
		return
	}
	body := rerrBase + rerrDest*len(lost)
	p := pkt.RoutingPacket("RERR", a.env.ID(), pkt.Broadcast, 1, body, now)
	p.Payload = &rerr{Unreachable: lost}
	a.env.SendMac(p, pkt.Broadcast)
}

func (a *AODV) handleRERR(m *rerr, from pkt.NodeID) {
	var propagate []unreach
	notify := false
	for _, u := range m.Unreachable {
		r, ok := a.table[u.Dst]
		if !ok || !r.valid || r.nextHop != from {
			continue
		}
		r.valid = false
		r.seq = u.Seq
		propagate = append(propagate, u)
		if len(r.precursors) > 0 {
			notify = true
		}
	}
	if notify && len(propagate) > 0 {
		a.broadcastRERR(propagate)
	}
}

// --- preemptive (PAODV) ---------------------------------------------------

// maybeWarn sends a route-degradation warning back toward the data source.
func (a *AODV) maybeWarn(p *pkt.Packet) {
	now := a.env.Now()
	if last, ok := a.lastWarn[p.Src]; ok && now.Sub(last) < a.cfg.WarnGap {
		return
	}
	rev := a.validRoute(p.Src)
	if rev == nil {
		return
	}
	a.lastWarn[p.Src] = now
	wp := pkt.RoutingPacket("WARN", a.env.ID(), p.Src, pkt.DefaultTTL, warnBytes, now)
	wp.Payload = &warn{FlowDst: p.Dst}
	a.env.SendMac(wp, rev.nextHop)
}

func (a *AODV) handleWarn(p *pkt.Packet, m *warn) {
	if p.Dst != a.env.ID() {
		// Forward toward the source.
		rev := a.validRoute(p.Dst)
		if rev == nil {
			return
		}
		a.env.SendMac(p.Clone(), rev.nextHop)
		return
	}
	// At the source: refresh the route before it breaks, rate-limited.
	now := a.env.Now()
	if last, ok := a.warned[m.FlowDst]; ok && now.Sub(last) < a.cfg.WarnGap {
		return
	}
	a.warned[m.FlowDst] = now
	a.discover(m.FlowDst)
}

// --- table helpers ----------------------------------------------------------

func (a *AODV) validRoute(dst pkt.NodeID) *route {
	r, ok := a.table[dst]
	if !ok || !r.valid || a.env.Now().After(r.expires) {
		return nil
	}
	return r
}

func (a *AODV) refresh(r *route) {
	a.extend(r, a.cfg.ActiveRouteTimeout)
}

func (a *AODV) extend(r *route, lifetime sim.Duration) {
	exp := a.env.Now().Add(lifetime)
	if exp.After(r.expires) {
		r.expires = exp
	}
}

// netTraversalTime estimates a round trip across the network (RFC 3561
// NET_TRAVERSAL_TIME = 2 · NODE_TRAVERSAL_TIME · NET_DIAMETER).
func (a *AODV) netTraversalTime() sim.Duration {
	return 2 * a.cfg.NodeTraversalTime * sim.Duration(a.cfg.NetDiameter)
}

// installRoute adopts a route if it is fresher (higher seq), shorter at the
// same freshness, or repairs an invalid/unknown entry.
func (a *AODV) installRoute(dst, nextHop pkt.NodeID, hops int, seq uint32, seqValid bool) {
	if dst == a.env.ID() {
		return
	}
	r, ok := a.table[dst]
	if !ok {
		r = &route{dst: dst, precursors: make(map[pkt.NodeID]struct{})}
		a.table[dst] = r
	}
	// An expired entry is as dead as an invalidated one; keeping its stale
	// sequence number authoritative would let a silently-expired reverse
	// route veto every future RREP for the destination.
	usable := r.valid && !a.env.Now().After(r.expires)
	adopt := !usable ||
		(seqValid && r.seqValid && seqNewer(seq, r.seq)) ||
		(seqValid && r.seqValid && seq == r.seq && hops < r.hops) ||
		!r.seqValid
	if !adopt {
		return
	}
	r.nextHop = nextHop
	r.hops = hops
	r.seq = seq
	r.seqValid = seqValid
	r.valid = true
	// Fresh installations (reverse routes during discovery in particular)
	// must outlive a full request/reply round trip, or replies from far
	// destinations die on expired reverse paths (RFC 3561 §6.5).
	lifetime := a.cfg.ActiveRouteTimeout
	if ntt := 2 * a.netTraversalTime(); ntt > lifetime {
		lifetime = ntt
	}
	a.extend(r, lifetime)
}

func seqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// Snoop implements network.Protocol (unused).
func (a *AODV) Snoop(*pkt.Packet, pkt.NodeID, pkt.NodeID, float64) {}

// MacSent implements network.Protocol (unused).
func (a *AODV) MacSent(*pkt.Packet, pkt.NodeID) {}

// NextHop exposes the active next hop toward dst (tests/diagnostics).
func (a *AODV) NextHop(dst pkt.NodeID) (pkt.NodeID, bool) {
	r := a.validRoute(dst)
	if r == nil {
		return 0, false
	}
	return r.nextHop, true
}
