// Package routing hosts utilities shared by every routing protocol
// implementation: the send buffer that holds data packets while a route is
// being discovered, a duplicate cache for flood suppression, and broadcast
// jitter conventions. The protocols themselves live in subpackages.
package routing

import (
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// BroadcastJitter is the maximum random delay inserted before rebroadcasting
// a flooded routing message, breaking the synchronization of neighbours that
// all received the same broadcast at the same instant (ns-2 uses a similar
// 10 ms jitter).
const BroadcastJitter = 10 * sim.Millisecond

// DefaultSendBufferCap and DefaultSendBufferTimeout follow the CMU
// configuration: 64 packets held at the originator for at most 30 s while a
// route is sought.
const (
	DefaultSendBufferCap     = 64
	DefaultSendBufferTimeout = 30 * sim.Second
)

type buffered struct {
	p       *pkt.Packet
	expires sim.Time
}

// SendBuffer holds originated data packets awaiting a route. Expiry is
// enforced lazily on access; OnDrop is invoked for packets that time out or
// are evicted by overflow.
type SendBuffer struct {
	cap     int
	timeout sim.Duration
	items   []buffered
	// OnDrop is called for each evicted/expired packet (required).
	OnDrop func(p *pkt.Packet, timeout bool)
}

// NewSendBuffer creates a buffer with the given capacity and per-packet
// timeout; zero values select the CMU defaults.
func NewSendBuffer(capacity int, timeout sim.Duration, onDrop func(p *pkt.Packet, timeout bool)) *SendBuffer {
	if capacity <= 0 {
		capacity = DefaultSendBufferCap
	}
	if timeout <= 0 {
		timeout = DefaultSendBufferTimeout
	}
	return &SendBuffer{cap: capacity, timeout: timeout, OnDrop: onDrop}
}

// Push adds p at time now, evicting the oldest packet if full.
func (b *SendBuffer) Push(p *pkt.Packet, now sim.Time) {
	b.expire(now)
	if len(b.items) >= b.cap {
		oldest := b.items[0]
		copy(b.items, b.items[1:])
		b.items = b.items[:len(b.items)-1]
		b.OnDrop(oldest.p, false)
	}
	b.items = append(b.items, buffered{p: p, expires: now.Add(b.timeout)})
}

// PopDest removes and returns all buffered packets for dst, oldest first.
func (b *SendBuffer) PopDest(dst pkt.NodeID, now sim.Time) []*pkt.Packet {
	b.expire(now)
	var out []*pkt.Packet
	kept := b.items[:0]
	for _, it := range b.items {
		if it.p.Dst == dst {
			out = append(out, it.p)
		} else {
			kept = append(kept, it)
		}
	}
	for i := len(kept); i < len(b.items); i++ {
		b.items[i] = buffered{}
	}
	b.items = kept
	return out
}

// HasDest reports whether any packet for dst is buffered.
func (b *SendBuffer) HasDest(dst pkt.NodeID, now sim.Time) bool {
	b.expire(now)
	for _, it := range b.items {
		if it.p.Dst == dst {
			return true
		}
	}
	return false
}

// Len returns the number of buffered packets.
func (b *SendBuffer) Len(now sim.Time) int {
	b.expire(now)
	return len(b.items)
}

func (b *SendBuffer) expire(now sim.Time) {
	kept := b.items[:0]
	for _, it := range b.items {
		if it.expires.After(now) {
			kept = append(kept, it)
		} else {
			b.OnDrop(it.p, true)
		}
	}
	for i := len(kept); i < len(b.items); i++ {
		b.items[i] = buffered{}
	}
	b.items = kept
}

// SeenKey identifies a flooded message instance (origin + per-origin id).
type SeenKey struct {
	Origin pkt.NodeID
	ID     uint32
}

// SeenCache suppresses duplicate flooded messages, expiring entries after a
// horizon so that per-origin id wraparound in very long runs is harmless.
type SeenCache struct {
	horizon sim.Duration
	seen    map[SeenKey]sim.Time
}

// NewSeenCache creates a cache whose entries expire after horizon.
func NewSeenCache(horizon sim.Duration) *SeenCache {
	return &SeenCache{horizon: horizon, seen: make(map[SeenKey]sim.Time)}
}

// Seen records key at time now and reports whether it was already present
// (and unexpired).
func (c *SeenCache) Seen(key SeenKey, now sim.Time) bool {
	if t, ok := c.seen[key]; ok && now.Sub(t) < c.horizon {
		return true
	}
	c.seen[key] = now
	if len(c.seen) > 4096 {
		c.gc(now)
	}
	return false
}

func (c *SeenCache) gc(now sim.Time) {
	for k, t := range c.seen {
		if now.Sub(t) >= c.horizon {
			delete(c.seen, k)
		}
	}
}
