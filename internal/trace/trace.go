// Package trace provides ns-2-style packet-event tracing. A Tracer
// receives one record per network-layer event (send, receive, forward,
// deliver, drop) and renders it as a text line compatible in spirit with
// the CMU wireless trace format:
//
//	s 12.345678901 _3_ RTR --- 42 RREQ 44 [n3 -> bcast] ttl 5
//	r 12.345912340 _5_ RTR --- 42 RREQ 44 [n3 -> bcast] ttl 5
//	D 13.000000000 _7_ RTR no-route 99 data 92 [n1 -> n9]
//
// Tracing is optional and off by default; the simulator's hot path pays a
// single nil check per event.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Op is the traced operation.
type Op byte

const (
	// OpSend is a network-layer transmission (originating or forwarding).
	OpSend Op = 's'
	// OpRecv is a network-layer reception.
	OpRecv Op = 'r'
	// OpDeliver is an arrival at the destination sink.
	OpDeliver Op = 'd'
	// OpDrop is a packet death.
	OpDrop Op = 'D'
)

// Event is one trace record.
type Event struct {
	Op     Op
	At     sim.Time
	Node   pkt.NodeID
	Pkt    *pkt.Packet
	Peer   pkt.NodeID       // next hop for sends, previous hop for receives
	Reason stats.DropReason // drops only
}

// Tracer consumes events. Implementations must not retain Pkt beyond the
// call (packets are mutable and recycled).
type Tracer interface {
	Trace(ev Event)
}

// Writer renders events as text lines to an io.Writer. It is safe for use
// from multiple worlds only if each world has its own Writer or the caller
// serializes; a mutex guards the underlying writer for convenience.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	n   uint64
	err error

	// Filter, when non-nil, suppresses events for which it returns false.
	Filter func(ev Event) bool
}

// NewWriter creates a line-oriented tracer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Lines reports how many records have been written.
func (t *Writer) Lines() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first write error, if any.
func (t *Writer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Trace implements Tracer.
func (t *Writer) Trace(ev Event) {
	if t.Filter != nil && !t.Filter(ev) {
		return
	}
	line := Format(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := io.WriteString(t.w, line+"\n"); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Format renders one event as a trace line.
func Format(ev Event) string {
	var b strings.Builder
	label := ev.Pkt.Msg
	if label == "" {
		label = "data"
	}
	dst := ev.Pkt.Dst.String()
	fmt.Fprintf(&b, "%c %.9f _%d_ RTR ", byte(ev.Op), ev.At.Seconds(), int32(ev.Node))
	if ev.Op == OpDrop {
		fmt.Fprintf(&b, "%s ", ev.Reason)
	} else {
		b.WriteString("--- ")
	}
	fmt.Fprintf(&b, "%d %s %d [%v -> %s]", ev.Pkt.UID, label, ev.Pkt.Size, ev.Pkt.Src, dst)
	switch ev.Op {
	case OpSend:
		fmt.Fprintf(&b, " via %v ttl %d", ev.Peer, ev.Pkt.TTL)
	case OpRecv:
		fmt.Fprintf(&b, " from %v hops %d", ev.Peer, ev.Pkt.Hops)
	case OpDeliver:
		fmt.Fprintf(&b, " delay %.6f hops %d", ev.At.Sub(ev.Pkt.CreatedAt).Seconds(), ev.Pkt.Hops)
	}
	if ev.Pkt.SrcRoute != nil && ev.Op == OpSend {
		b.WriteString(" sr=")
		for i, n := range ev.Pkt.SrcRoute {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", int32(n))
		}
	}
	return b.String()
}

// Counter is a Tracer that only counts events by op — useful in tests and
// for cheap statistics without I/O.
type Counter struct {
	Sends, Recvs, Delivers, Drops uint64
}

// Trace implements Tracer.
func (c *Counter) Trace(ev Event) {
	switch ev.Op {
	case OpSend:
		c.Sends++
	case OpRecv:
		c.Recvs++
	case OpDeliver:
		c.Delivers++
	case OpDrop:
		c.Drops++
	}
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Trace implements Tracer.
func (m Multi) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}
