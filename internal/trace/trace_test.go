package trace_test

import (
	"context"
	"strings"
	"testing"

	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/flood"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/trace"
)

func mkEvent(op trace.Op) trace.Event {
	p := pkt.DataPacket(1, 2, 7, 64, sim.At(1))
	return trace.Event{Op: op, At: sim.At(2), Node: 3, Pkt: p, Peer: 4}
}

func TestFormatSend(t *testing.T) {
	line := trace.Format(mkEvent(trace.OpSend))
	for _, want := range []string{"s 2.000000000", "_3_", "data", "[n1 -> n2]", "via n4", "ttl 32"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestFormatDrop(t *testing.T) {
	ev := mkEvent(trace.OpDrop)
	ev.Reason = stats.DropNoRoute
	line := trace.Format(ev)
	if !strings.Contains(line, "D 2.000000000") || !strings.Contains(line, "no-route") {
		t.Fatalf("drop line %q", line)
	}
}

func TestFormatDeliverIncludesDelay(t *testing.T) {
	line := trace.Format(mkEvent(trace.OpDeliver))
	if !strings.Contains(line, "delay 1.000000") {
		t.Fatalf("deliver line %q lacks delay", line)
	}
}

func TestFormatSourceRoute(t *testing.T) {
	ev := mkEvent(trace.OpSend)
	ev.Pkt.SrcRoute = []pkt.NodeID{1, 3, 2}
	line := trace.Format(ev)
	if !strings.Contains(line, "sr=1,3,2") {
		t.Fatalf("line %q lacks source route", line)
	}
}

func TestFormatRoutingLabel(t *testing.T) {
	ev := mkEvent(trace.OpRecv)
	ev.Pkt = pkt.RoutingPacket("RREQ", 1, pkt.Broadcast, 5, 24, 0)
	line := trace.Format(ev)
	if !strings.Contains(line, "RREQ") || !strings.Contains(line, "bcast") {
		t.Fatalf("routing line %q", line)
	}
}

func TestWriterFilterAndCount(t *testing.T) {
	var sb strings.Builder
	w := trace.NewWriter(&sb)
	w.Filter = func(ev trace.Event) bool { return ev.Op == trace.OpDrop }
	w.Trace(mkEvent(trace.OpSend))
	ev := mkEvent(trace.OpDrop)
	ev.Reason = stats.DropTTL
	w.Trace(ev)
	if w.Lines() != 1 {
		t.Fatalf("lines = %d, want 1 (filtered)", w.Lines())
	}
	if !strings.Contains(sb.String(), "ttl-expired") {
		t.Fatalf("output %q", sb.String())
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
}

func TestCounterAndMulti(t *testing.T) {
	var c1, c2 trace.Counter
	m := trace.Multi{&c1, &c2}
	m.Trace(mkEvent(trace.OpSend))
	m.Trace(mkEvent(trace.OpRecv))
	m.Trace(mkEvent(trace.OpDeliver))
	if c1.Sends != 1 || c1.Recvs != 1 || c1.Delivers != 1 || c1.Drops != 0 {
		t.Fatalf("counter = %+v", c1)
	}
	if c2 != c1 {
		t.Fatal("multi did not fan out")
	}
}

// TestEndToEndTracing wires a tracer into a world and checks events flow.
func TestEndToEndTracing(t *testing.T) {
	var sb strings.Builder
	wr := trace.NewWriter(&sb)
	cnt := &trace.Counter{}
	w, err := network.NewWorld(network.Config{
		Tracks:   mobility.Chain(3, 200),
		Radio:    phy.DefaultParams(),
		Protocol: flood.Factory(flood.Config{}),
		Seed:     1,
		Tracer:   trace.Multi{wr, cnt},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Node(2).SetSink(func(*pkt.Packet, pkt.NodeID) {})
	w.Start()
	w.Eng.Schedule(sim.At(1), func() {
		w.Node(0).Originate(pkt.DataPacket(0, 2, 0, 64, sim.At(1)))
	})
	if err := w.Run(context.Background(), sim.At(3)); err != nil {
		t.Fatal(err)
	}
	if cnt.Sends == 0 || cnt.Recvs == 0 || cnt.Delivers != 1 {
		t.Fatalf("counter = %+v", cnt)
	}
	out := sb.String()
	if !strings.Contains(out, "s 1.000000000 _0_") {
		t.Fatalf("missing origination line:\n%s", out)
	}
	if !strings.Contains(out, "d ") {
		t.Fatalf("missing delivery line:\n%s", out)
	}
	if wr.Lines() == 0 {
		t.Fatal("no lines written")
	}
}
