package phy

import (
	"strconv"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// movingPopulation spreads n nodes over a side×side square, each drifting
// towards its mirror point, deterministically and densely enough that every
// transmit's candidate set crosses the fan-out threshold.
func movingPopulation(n int, side float64) []*mobility.Track {
	tracks := make([]*mobility.Track, n)
	for i := 0; i < n; i++ {
		x := side * float64((i*31)%97) / 97
		y := side * float64((i*57)%89) / 89
		tracks[i] = mobility.MustTrack([]mobility.Segment{{
			Start: 0,
			From:  geo.Point{X: x, Y: y},
			To:    geo.Point{X: side - x, Y: side - y},
			Speed: 4,
		}})
	}
	return tracks
}

// buildParallelWorld wires n table-backed radios (the network layer's
// configuration) on a fresh engine.
func buildParallelWorld(n int, cfg Config) (*sim.Engine, *Channel, []*collector) {
	eng := sim.NewEngine()
	ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
	ch.SetPositionTable(mobility.NewTable(movingPopulation(n, 400)))
	cols := make([]*collector, n)
	for i := 0; i < n; i++ {
		cols[i] = &collector{}
		ch.AttachRadio(pkt.NodeID(i), nil, cols[i])
	}
	return eng, ch, cols
}

// runParallelSchedule fires a staggered broadcast schedule (overlapping
// enough to provoke collisions and captures) and returns the channel and
// per-node collectors for comparison.
func runParallelSchedule(t *testing.T, cfg Config) (*Channel, []*collector) {
	t.Helper()
	const n = 48
	eng, ch, cols := buildParallelWorld(n, cfg)
	for k := 0; k < 40; k++ {
		sender := (k * 13) % n
		at := sim.Duration(k) * 90 * sim.Millisecond
		payload := strconv.Itoa(k)
		eng.ScheduleIn(at, func() { ch.Radio(pkt.NodeID(sender)).Transmit(payload, sim.Millis(1)) })
	}
	if err := eng.Run(sim.At(5)); err != nil {
		t.Fatal(err)
	}
	ch.StopWorkers()
	return ch, cols
}

// TestParallelFanoutParity: the fan-out/commit split with workers must
// reproduce the sequential path's observable behaviour exactly — every
// delivery (payload, sender, power), every busy/idle edge, and all channel
// counters — under both reception models. 48 nodes in a 400 m square put
// every node in carrier-sense range of all others, so each broadcast's 47
// candidates cross fanoutMinCandidates and genuinely exercise the pool.
func TestParallelFanoutParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		sinr bool
	}{{"capture", false}, {"sinr", true}} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{ReindexInterval: sim.Second, SpeedBound: 4, SINR: tc.sinr}
			par := base
			par.Workers = 4
			seqCh, seqCols := runParallelSchedule(t, base)
			parCh, parCols := runParallelSchedule(t, par)

			if seqCh.Transmissions != parCh.Transmissions ||
				seqCh.Deliveries != parCh.Deliveries ||
				seqCh.Collisions != parCh.Collisions ||
				seqCh.Captures != parCh.Captures {
				t.Fatalf("channel counters diverge: seq tx/del/col/cap = %d/%d/%d/%d, par = %d/%d/%d/%d",
					seqCh.Transmissions, seqCh.Deliveries, seqCh.Collisions, seqCh.Captures,
					parCh.Transmissions, parCh.Deliveries, parCh.Collisions, parCh.Captures)
			}
			for i := range seqCols {
				s, p := seqCols[i], parCols[i]
				if len(s.got) != len(p.got) || s.busy != p.busy || s.idle != p.idle {
					t.Fatalf("node %d event counts diverge: seq %d rx %d/%d edges, par %d rx %d/%d edges",
						i, len(s.got), s.busy, s.idle, len(p.got), p.busy, p.idle)
				}
				for k := range s.got {
					if s.got[k] != p.got[k] || s.from[k] != p.from[k] || s.power[k] != p.power[k] {
						t.Fatalf("node %d reception %d diverges: seq (%v from %d @ %g), par (%v from %d @ %g)",
							i, k, s.got[k], s.from[k], s.power[k], p.got[k], p.from[k], p.power[k])
					}
				}
			}
		})
	}
}

// TestParallelBruteFanoutParity: the brute-force loop's fan-out must match
// the sequential brute-force loop too (it shares the commit path but
// enumerates all radios instead of the grid candidates).
func TestParallelBruteFanoutParity(t *testing.T) {
	base := Config{BruteForce: true}
	par := base
	par.Workers = 3
	seqCh, seqCols := runParallelSchedule(t, base)
	parCh, parCols := runParallelSchedule(t, par)
	if seqCh.Deliveries != parCh.Deliveries || seqCh.Collisions != parCh.Collisions {
		t.Fatalf("brute counters diverge: seq del/col %d/%d, par %d/%d",
			seqCh.Deliveries, seqCh.Collisions, parCh.Deliveries, parCh.Collisions)
	}
	for i := range seqCols {
		if len(seqCols[i].got) != len(parCols[i].got) {
			t.Fatalf("node %d: seq %d receptions, par %d", i, len(seqCols[i].got), len(parCols[i].got))
		}
	}
}

// TestPrecomputeSwapAndDiscard pins the double-buffer state machine:
// a query inside the prepared epoch's freshness window swaps the
// background-built grid in (lastIndex lands exactly on the epoch
// boundary, not on the query time), and a query past the window — an
// event-stream gap — discards the speculative build and reindexes
// synchronously at the query time.
func TestPrecomputeSwapAndDiscard(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{ReindexInterval: sim.Second, SpeedBound: 4, Workers: 1}
	ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
	ch.SetPositionTable(mobility.NewTable(movingPopulation(8, 300)))
	cols := make([]*collector, 8)
	for i := 0; i < 8; i++ {
		cols[i] = &collector{}
		ch.AttachRadio(pkt.NodeID(i), nil, cols[i])
	}
	defer ch.StopWorkers()

	transmitAt := func(at sim.Time, sender int) {
		eng.Schedule(at, func() { ch.Radio(pkt.NodeID(sender)).Transmit("x", sim.Micros(10)) })
	}
	check := func(at sim.Time, wantIndex sim.Time, wantReindexes uint64, what string) {
		eng.Schedule(at, func() {
			if ch.lastIndex != wantIndex {
				t.Errorf("%s: lastIndex = %v, want %v", what, ch.lastIndex, wantIndex)
			}
			if ch.Reindexes != wantReindexes {
				t.Errorf("%s: reindexes = %d, want %d", what, ch.Reindexes, wantReindexes)
			}
		})
	}

	// t=0: first transmit builds synchronously and primes the pipeline.
	transmitAt(0, 0)
	check(0, 0, 1, "initial build")
	// t=1.5 s: past the 1 s interval; the prepared epoch-1s grid is 0.5 s
	// stale — inside the window — so it must swap in with lastIndex = 1 s.
	transmitAt(sim.At(1.5), 1)
	check(sim.At(1.5), sim.At(1), 2, "epoch swap")
	// t=10 s: the in-flight epoch-2s build is 8 s stale — discard and
	// rebuild synchronously at the query time.
	transmitAt(sim.At(10), 2)
	check(sim.At(10), sim.At(10), 3, "gap discard")

	if err := eng.Run(sim.At(12)); err != nil {
		t.Fatal(err)
	}
}

// TestStopWorkersMidFlight: tearing the helpers down while an epoch build
// is in flight (the cancellation-mid-epoch case: World.Run's deferred
// StopWorkers runs whatever state the interrupt left behind) must not
// deadlock or leak, must be idempotent, and must leave the channel able to
// lazily respin its helpers if the world keeps running — with results
// still identical to an uninterrupted sequential run.
func TestStopWorkersMidFlight(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{ReindexInterval: sim.Second, SpeedBound: 4, Workers: 2}
	ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
	ch.SetPositionTable(mobility.NewTable(movingPopulation(40, 350)))
	for i := 0; i < 40; i++ {
		ch.AttachRadio(pkt.NodeID(i), nil, &collector{})
	}

	// Phase 1: run far enough that a precompute request is in flight.
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("a", sim.Millis(1)) })
	if err := eng.Run(sim.At(0.5)); err != nil {
		t.Fatal(err)
	}
	if ch.pre == nil || !ch.pre.inflight {
		t.Fatal("expected an in-flight precompute after the first transmit")
	}
	ch.StopWorkers() // must join the mid-epoch build without deadlock
	ch.StopWorkers() // idempotent
	if ch.pre != nil {
		t.Fatal("precomputer not torn down")
	}

	// Phase 2: the next transmit lazily respins the helpers.
	eng.ScheduleIn(sim.Second, func() { ch.Radio(1).Transmit("b", sim.Millis(1)) })
	if err := eng.Run(sim.At(2)); err != nil {
		t.Fatal(err)
	}
	if ch.pre == nil {
		t.Fatal("parallel helpers did not respin after StopWorkers")
	}
	ch.StopWorkers()
	if ch.Transmissions != 2 || ch.Deliveries == 0 {
		t.Fatalf("phased run delivered nothing: tx=%d del=%d", ch.Transmissions, ch.Deliveries)
	}
}
