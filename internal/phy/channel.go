package phy

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// Receiver is the upper layer (MAC) attached to a Radio.
type Receiver interface {
	// OnReceive delivers a successfully decoded transmission payload.
	// rxPower is the received signal power in Watts (used by preemptive
	// routing variants to detect weakening links).
	OnReceive(payload any, from pkt.NodeID, rxPower float64)
	// OnChannelBusy fires when the medium transitions idle→busy at this
	// radio (physical carrier sense).
	OnChannelBusy()
	// OnChannelIdle fires when the medium transitions busy→idle.
	OnChannelIdle()
}

// Channel is the shared wireless medium. It connects all radios of a run and
// delivers each transmission to every radio whose received power exceeds the
// carrier-sense threshold, after the speed-of-light propagation delay.
type Channel struct {
	eng    *sim.Engine
	params RadioParams
	radios []*Radio // indexed by NodeID

	// Stats (aggregated across all radios).
	Transmissions uint64
	Deliveries    uint64
	Collisions    uint64
	Captures      uint64
}

// NewChannel creates an empty medium.
func NewChannel(eng *sim.Engine, params RadioParams) *Channel {
	if params.CaptureRatio <= 1 {
		panic("phy: capture ratio must exceed 1")
	}
	return &Channel{eng: eng, params: params}
}

// Params returns the channel's physical-layer constants.
func (c *Channel) Params() RadioParams { return c.params }

// AttachRadio creates and registers the radio for node id. Radios must be
// attached in id order starting from 0. pos reports the node's position at
// any virtual time (typically a mobility track lookup).
func (c *Channel) AttachRadio(id pkt.NodeID, pos func(sim.Time) geo.Point, rcv Receiver) *Radio {
	if int(id) != len(c.radios) {
		panic(fmt.Sprintf("phy: radios must be attached densely; got id %v with %d attached", id, len(c.radios)))
	}
	r := &Radio{id: id, ch: c, pos: pos, rcv: rcv}
	c.radios = append(c.radios, r)
	return r
}

// Radio returns the radio attached for id.
func (c *Channel) Radio(id pkt.NodeID) *Radio { return c.radios[id] }

// NumRadios returns the number of attached radios.
func (c *Channel) NumRadios() int { return len(c.radios) }

// transmit propagates a frame from r to every radio in carrier-sense range.
func (c *Channel) transmit(r *Radio, payload any, dur sim.Duration) {
	now := c.eng.Now()
	c.Transmissions++
	from := r.pos(now)
	for _, o := range c.radios {
		if o == r {
			continue
		}
		d := o.pos(now).Dist(from)
		power := c.params.Prop.RxPower(c.params.TxPower, d)
		if power < c.params.CSThreshold {
			continue
		}
		propDelay := sim.Seconds(d / SpeedOfLight)
		if propDelay < sim.Nanosecond {
			propDelay = sim.Nanosecond
		}
		o := o
		c.eng.ScheduleIn(propDelay, func() {
			o.beginArrival(arrival{
				payload: payload,
				from:    r.id,
				power:   power,
				end:     c.eng.Now().Add(dur),
			})
		})
	}
}

// InRange reports whether b currently receives a's transmissions (power at
// or above the reception threshold). Symmetric under the default models.
func (c *Channel) InRange(a, b pkt.NodeID, at sim.Time) bool {
	d := c.radios[a].pos(at).Dist(c.radios[b].pos(at))
	return c.params.Prop.RxPower(c.params.TxPower, d) >= c.params.RxThreshold
}
