package phy

import (
	"fmt"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// Receiver is the upper layer (MAC) attached to a Radio.
type Receiver interface {
	// OnReceive delivers a successfully decoded transmission payload.
	// rxPower is the received signal power in Watts (used by preemptive
	// routing variants to detect weakening links).
	OnReceive(payload any, from pkt.NodeID, rxPower float64)
	// OnChannelBusy fires when the medium transitions idle→busy at this
	// radio (physical carrier sense).
	OnChannelBusy()
	// OnChannelIdle fires when the medium transitions busy→idle.
	OnChannelIdle()
}

// Config tunes the channel's transmit fast path. The zero value enables the
// spatial index with exact (per-timestamp) reindexing, which is always
// correct; callers whose nodes move should set ReindexInterval and
// SpeedBound to amortise the reindex cost (network.NewWorld does).
type Config struct {
	// BruteForce disables the spatial index and restores the legacy
	// all-radios transmit loop. Kept for parity testing and for custom
	// propagation models whose power is not monotone in distance (the
	// index prunes by distance and would miss such a model's far-field
	// lobes).
	BruteForce bool
	// ReindexInterval bounds how stale the indexed positions may grow
	// before the channel re-captures every radio's position. Zero means
	// "reindex whenever the clock moved": exact positions, no query
	// slack, O(N) work per distinct transmit timestamp.
	ReindexInterval sim.Duration
	// SpeedBound is the maximum node speed in m/s. With a non-zero
	// ReindexInterval the neighbourhood query is padded by
	// SpeedBound×ReindexInterval so that nodes that moved since the last
	// reindex cannot be missed. The channel cannot verify the bound, so a
	// non-positive value together with a positive ReindexInterval falls
	// back to exact per-timestamp reindexing rather than risk a stale
	// index (set Static instead when positions provably never change).
	SpeedBound float64
	// Static declares that no position function ever returns a different
	// point, so the index is built once and never refreshed. Set by
	// network.NewWorld when the fastest track segment has speed zero.
	Static bool
	// SINR replaces the pairwise ns-2 capture test with cumulative-
	// interference reception: a frame decodes only if its power stays at
	// least CaptureRatio times the sum of the noise floor and every other
	// co-channel arrival's power for its whole duration. Off (the zero
	// value) keeps the bit-identical legacy capture path. Pairwise capture
	// misjudges dense multihop scenes where many individually-weak
	// interferers are collectively fatal (Fu, Liew & Huang).
	SINR bool
	// Scheduler selects the engine's event-queue implementation for runs
	// assembled through network.NewWorld: the zero value keeps the 4-ary
	// heap, sim.QueueCalendar switches to the calendar queue (O(1)
	// amortized at city-scale pending-event populations). Dispatch order —
	// and therefore every result — is bit-identical either way; the
	// choice is purely a performance knob.
	Scheduler sim.QueueKind
	// Workers selects the intra-run parallel execution layer: N > 0 fans
	// each transmit's per-candidate propagation math across N pool
	// goroutines (plus the simulation goroutine) and pipelines the next
	// epoch's position capture + spatial reindex on a background worker.
	// Results are byte-identical to the sequential path — stochastic
	// draws are content-derived per (seed, from, to, txSeq), evaluation
	// is split from in-order commit, and the epoch grid stays within the
	// SpeedBound×interval staleness window — so Workers is purely a
	// performance knob, like Scheduler. The zero value keeps today's
	// single-goroutine path instruction-identical. Negative values are
	// rejected by network.NewWorld.
	Workers int
}

// Channel is the shared wireless medium. It connects all radios of a run and
// delivers each transmission to every radio whose received power exceeds the
// carrier-sense threshold, after the speed-of-light propagation delay.
//
// Candidate receivers are found through a uniform spatial hash keyed at the
// carrier-sense range rather than a scan of all N radios: each transmission
// visits only the grid cells overlapping the padded carrier-sense disc, in
// NodeID order, so results are bit-identical to the brute-force loop while
// the per-transmission cost drops from O(N) to O(neighbourhood).
type Channel struct {
	eng      *sim.Engine
	params   RadioParams
	cfg      Config
	radios   []*Radio        // indexed by NodeID
	linkProp LinkPropagation // params.Prop when it is link/reception dependent, else nil
	tab      *mobility.Table // flat position source (nil → per-radio pos funcs)

	// Per-radio hot state, flattened struct-of-arrays style and indexed by
	// NodeID. Every arrival touches a radio's deadlines (and, under SINR,
	// its interference accumulator); keeping them in four dense arrays
	// instead of scattered *Radio fields keeps a 10k-node scene's working
	// set cache-resident through the event loop.
	txUntil   []sim.Time // transmitting until (zero: idle)
	busyUntil []sim.Time // medium observed busy until (any arrival ≥ CS, or own tx)
	airPower  []float64  // SINR mode: summed power of every in-air arrival
	airCount  []int32    // SINR mode: in-air arrival count (exact-zero reset)
	up        []bool     // liveness bitmap: false while the node is down (churn)
	downCount int        // number of down radios (fast path skips the mask at 0)

	grid        *geo.FlatGrid
	lastIndex   sim.Time // virtual time of the last reindex
	indexed     bool
	csRange     float64     // carrier-sense range implied by params (cached)
	queryRadius float64     // csRange + movement slack
	pts         []geo.Point // reusable position buffer for reindex
	scratch     []int32     // reusable candidate buffer
	arrivalPool []*arrivalEvent

	// Intra-run parallelism (Config.Workers > 0); see parallel.go. All
	// lazily built on the first transmit and torn down by StopWorkers.
	parInit   bool
	fanout    *sim.Pool    // phase=fanout leg-evaluation pool
	legs      []legResult  // per-candidate fan-out results arena
	pre       *precomputer // phase=reindex pipelined epoch builder
	rxPool    []*receptionEvent
	airPool   []*airEvent
	Reindexes uint64 // spatial-index rebuilds (diagnostics)

	// Stats (aggregated across all radios).
	Transmissions uint64
	Deliveries    uint64
	Collisions    uint64
	Captures      uint64
}

// NewChannel creates an empty medium with the default Config (spatial index
// on, exact reindexing).
func NewChannel(eng *sim.Engine, params RadioParams) *Channel {
	return NewChannelWithConfig(eng, params, Config{})
}

// NewChannelWithConfig creates an empty medium with an explicit fast-path
// configuration. Parameters are assumed valid: every public entry point
// (scenario resolution, campaign submission, network.NewWorld) surfaces
// RadioParams.Validate errors before a channel is built, so the old
// constructor-time capture-ratio panic is gone.
func NewChannelWithConfig(eng *sim.Engine, params RadioParams, cfg Config) *Channel {
	c := &Channel{eng: eng, params: params, cfg: cfg}
	// One type assertion up front, not one per transmission leg.
	c.linkProp, _ = params.Prop.(LinkPropagation)
	return c
}

// Params returns the channel's physical-layer constants.
func (c *Channel) Params() RadioParams { return c.params }

// AttachRadio creates and registers the radio for node id. Radios must be
// attached in id order starting from 0. pos reports the node's position at
// any virtual time (typically a mobility cursor lookup); it may be nil when
// a position table is installed (SetPositionTable), which then serves every
// lookup for this radio.
func (c *Channel) AttachRadio(id pkt.NodeID, pos func(sim.Time) geo.Point, rcv Receiver) *Radio {
	if int(id) != len(c.radios) {
		panic(fmt.Sprintf("phy: radios must be attached densely; got id %v with %d attached", id, len(c.radios)))
	}
	if pos == nil && (c.tab == nil || int(id) >= c.tab.Len()) {
		panic(fmt.Sprintf("phy: radio %v attached with nil pos and no position table covering it", id))
	}
	r := &Radio{id: id, ch: c, pos: pos, rcv: rcv}
	c.radios = append(c.radios, r)
	c.txUntil = append(c.txUntil, 0)
	c.busyUntil = append(c.busyUntil, 0)
	c.airPower = append(c.airPower, 0)
	c.airCount = append(c.airCount, 0)
	c.up = append(c.up, true)
	return r
}

// NodeUp reports radio id's membership state.
func (c *Channel) NodeUp(id pkt.NodeID) bool { return c.up[id] }

// SetNodeUp flips radio id's membership (the lifecycle layer's Join/Leave/
// Fail/Recover events land here). A down radio neither radiates — its MAC
// can keep draining queued frames, but transmit drops them at the channel —
// nor appears as a fan-out/carrier-sense candidate for anyone else's
// transmissions. Powering down destroys any reception in progress; energy
// already in the air from the node's earlier transmissions keeps
// propagating (it was radiated while up).
func (c *Channel) SetNodeUp(id pkt.NodeID, up bool) {
	if c.up[id] == up {
		return
	}
	c.up[id] = up
	if up {
		c.downCount--
		return
	}
	c.downCount++
	r := c.radios[id]
	if r.rx != nil && !r.rx.corrupted && r.rx.end > c.eng.Now() {
		r.rx.corrupted = true
	}
}

// SetPositionTable installs a flattened position source covering every node
// (NodeID = table index). With a table the channel reads positions straight
// out of struct-of-arrays state — and refreshes them in one batch sweep per
// reindex — instead of calling one closure per radio per probe. Install
// before attaching radios that pass a nil pos.
func (c *Channel) SetPositionTable(tab *mobility.Table) {
	if tab != nil && tab.Len() < len(c.radios) {
		panic(fmt.Sprintf("phy: position table covers %d nodes, %d radios attached", tab.Len(), len(c.radios)))
	}
	c.tab = tab
}

// posAt returns radio id's position at time t from the position table when
// one is installed, else from the radio's own position function. Both paths
// memoise per (node, timestamp), so the exact per-leg position lookups in
// propagate stay O(1) after the first probe of an event's timestamp.
func (c *Channel) posAt(id pkt.NodeID, t sim.Time) geo.Point {
	if c.tab != nil {
		return c.tab.At(int(id), t)
	}
	return c.radios[id].pos(t)
}

// Radio returns the radio attached for id.
func (c *Channel) Radio(id pkt.NodeID) *Radio { return c.radios[id] }

// NumRadios returns the number of attached radios.
func (c *Channel) NumRadios() int { return len(c.radios) }

// reindex re-captures every radio's position into the grid at time now,
// building the grid on first use (cell size = one padded CS range, so a
// query box spans at most 3×3 cells).
func (c *Channel) reindex(now sim.Time) {
	if c.grid == nil {
		c.csRange = c.params.CSRange()
		if g := MaxGain(c.params.Prop); g > 1 {
			// A stochastic model can land up to g× above nominal power,
			// so a link can clear the CS threshold from beyond the
			// nominal CS range. Widen to the distance where even a
			// maximum-gain draw falls below the threshold; the clamp the
			// models enforce is what keeps this bound finite and the
			// distance-pruning index exact (see GainBounded).
			c.csRange = c.params.rangeFor(c.params.CSThreshold / g)
		}
		slack := c.cfg.SpeedBound * c.cfg.ReindexInterval.Seconds()
		if slack < 0 {
			// A negative bound or interval must never shrink the query
			// below the carrier-sense range.
			slack = 0
		}
		// The slack keeps moved nodes inside the query disc; the extra
		// metre absorbs float rounding between the bisected range and
		// the exact per-candidate power test that follows.
		c.queryRadius = c.csRange + slack + 1.0
		c.grid = geo.NewFlatGrid(c.queryRadius)
	}
	if cap(c.pts) < len(c.radios) {
		c.pts = make([]geo.Point, len(c.radios))
	}
	c.pts = c.pts[:len(c.radios)]
	if c.tab != nil {
		// Batch refresh: one linear sweep over the flattened segment
		// arena, instead of one indirect pos call per radio.
		c.tab.Positions(now, c.pts)
	} else {
		for i, r := range c.radios {
			c.pts[i] = r.pos(now)
		}
	}
	c.grid.Rebuild(c.pts)
	c.lastIndex = now
	c.indexed = true
	c.Reindexes++
}

// needReindex reports whether the indexed positions are too stale to answer
// a query at time now.
func (c *Channel) needReindex(now sim.Time) bool {
	if !c.indexed || c.grid.Len() != len(c.radios) {
		return true
	}
	if c.cfg.Static {
		// Positions provably never change: the first index is forever.
		return false
	}
	if c.cfg.ReindexInterval <= 0 || c.cfg.SpeedBound <= 0 {
		// No interval — or an interval without a speed bound to pad the
		// query with: reindex whenever the clock moved (always exact).
		return now != c.lastIndex
	}
	return now.Sub(c.lastIndex) >= c.cfg.ReindexInterval
}

// transmit propagates a frame from r to every radio in carrier-sense range.
func (c *Channel) transmit(r *Radio, payload any, dur sim.Duration) {
	if c.downCount > 0 && !c.up[r.id] {
		// A powered-down sender radiates nothing: the MAC's state machine
		// still sees the transmission complete (txUntil was set), but no
		// energy reaches the medium.
		return
	}
	now := c.eng.Now()
	c.Transmissions++
	from := c.posAt(r.id, now)
	if c.cfg.Workers > 0 && !c.parInit {
		c.initParallel()
	}
	if c.cfg.BruteForce {
		if c.fanoutReady(len(c.radios) - 1) {
			c.fanoutAll(r, from, payload, dur, now)
			return
		}
		for _, o := range c.radios {
			if o == r || (c.downCount > 0 && !c.up[o.id]) {
				continue
			}
			c.propagate(r, o, from, payload, dur, now)
		}
		return
	}
	if c.needReindex(now) {
		c.refreshIndex(now)
	}
	// Down radios are masked out of the candidate set before the fan-out
	// gate, so the sequential and pooled paths see the same candidates and
	// take the same gate decision — the workers=N parity invariant.
	if c.downCount > 0 {
		c.scratch = c.grid.WithinSortedLive(from, c.queryRadius, int32(r.id), c.up, c.scratch[:0])
	} else {
		c.scratch = c.grid.WithinSorted(from, c.queryRadius, int32(r.id), c.scratch[:0])
	}
	if c.fanoutReady(len(c.scratch)) {
		c.fanoutCands(r, c.scratch, from, payload, dur, now)
		return
	}
	for _, id := range c.scratch {
		c.propagate(r, c.radios[id], from, payload, dur, now)
	}
}

// arrivalEvent is a pooled in-flight transmission leg: the scheduling
// closure is created once per pooled struct, so steady-state propagation
// allocates nothing.
type arrivalEvent struct {
	ch   *Channel
	o    *Radio
	a    arrival
	dur  sim.Duration
	fire sim.EventFunc
}

func (c *Channel) allocArrival() *arrivalEvent {
	if n := len(c.arrivalPool); n > 0 {
		ae := c.arrivalPool[n-1]
		c.arrivalPool[n-1] = nil
		c.arrivalPool = c.arrivalPool[:n-1]
		return ae
	}
	ae := &arrivalEvent{ch: c}
	ae.fire = func() {
		a := ae.a
		a.end = ae.ch.eng.Now().Add(ae.dur)
		o := ae.o
		ae.o, ae.a.payload = nil, nil
		ae.ch.arrivalPool = append(ae.ch.arrivalPool, ae)
		o.beginArrival(a)
	}
	return ae
}

// legPower computes the received power of one transmission leg: the
// link/reception-dependent draw when the model declares one (shadowing,
// fading — keyed by the current transmission's sequence number so grid and
// brute-force candidate orders cannot diverge), else the plain distance
// model.
func (c *Channel) legPower(sender, o *Radio, d float64) float64 {
	if c.linkProp != nil {
		return c.linkProp.LinkRxPower(c.params.TxPower, d, sender.id, o.id, c.Transmissions)
	}
	return c.params.Prop.RxPower(c.params.TxPower, d)
}

// propagate delivers one transmission leg sender→o if the received power
// clears the carrier-sense threshold.
func (c *Channel) propagate(sender, o *Radio, from geo.Point, payload any, dur sim.Duration, now sim.Time) {
	d := c.posAt(o.id, now).Dist(from)
	power := c.legPower(sender, o, d)
	if power < c.params.CSThreshold {
		return
	}
	propDelay := sim.Seconds(d / SpeedOfLight)
	if propDelay < sim.Nanosecond {
		propDelay = sim.Nanosecond
	}
	ae := c.allocArrival()
	ae.o = o
	ae.dur = dur
	ae.a = arrival{payload: payload, from: sender.id, power: power}
	c.eng.ScheduleIn(propDelay, ae.fire)
}

// InRange reports whether b currently receives a's transmissions (power at
// or above the reception threshold). Symmetric under the default models.
// Stochastic models are judged at their nominal power — connectivity
// oracles reason about the median link, not individual draws.
func (c *Channel) InRange(a, b pkt.NodeID, at sim.Time) bool {
	d := c.posAt(a, at).Dist(c.posAt(b, at))
	return c.params.Prop.RxPower(c.params.TxPower, d) >= c.params.RxThreshold
}
