package phy

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// countingReceiver tallies deliveries and busy edges without retaining
// payloads.
type countingReceiver struct {
	got  int
	busy int
}

func (c *countingReceiver) OnReceive(any, pkt.NodeID, float64) { c.got++ }
func (c *countingReceiver) OnChannelBusy()                     { c.busy++ }
func (c *countingReceiver) OnChannelIdle()                     {}

// runScripted wires n radios over the tracks, replays the transmission
// script and returns the channel plus per-radio delivery counts.
func runScripted(t *testing.T, tracks []*mobility.Track, cfg Config, script []struct {
	at  sim.Time
	who pkt.NodeID
	dur sim.Duration
}) (*Channel, []int) {
	t.Helper()
	eng := sim.NewEngine()
	ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
	rcvs := make([]*countingReceiver, len(tracks))
	for i, tr := range tracks {
		rcvs[i] = &countingReceiver{}
		ch.AttachRadio(pkt.NodeID(i), mobility.NewCursor(tr).At, rcvs[i])
	}
	for _, s := range script {
		s := s
		eng.Schedule(s.at, func() {
			r := ch.Radio(s.who)
			if !r.Transmitting() {
				r.Transmit(int(s.who), s.dur)
			}
		})
	}
	if err := eng.Run(sim.At(200)); err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(rcvs))
	for i, r := range rcvs {
		got[i] = r.got
	}
	return ch, got
}

// TestGridBruteforceParity replays identical random transmission scripts
// over random mobile scenarios with the spatial index on and off, in both
// reception modes (pairwise capture and cumulative-interference SINR), and
// requires identical delivery/collision/capture accounting — the
// bit-determinism contract of the fast path. The SINR rows double as the
// acceptance test that cumulative interference needs no brute-force
// fallback: the interference sum is floored at the carrier-sense
// threshold, so grid and brute-force candidate sets agree.
func TestGridBruteforceParity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		seed  int64
		nodes int
		area  geo.Rect
		speed float64
		sinr  bool
	}{
		{"dense-mobile", 1, 40, geo.Rect{W: 1500, H: 300}, 20, false},
		{"sparse-mobile", 2, 60, geo.Rect{W: 4000, H: 4000}, 20, false},
		{"fast-mobile", 3, 30, geo.Rect{W: 2000, H: 500}, 35, false},
		{"static", 4, 50, geo.Rect{W: 1200, H: 1200}, 0, false},
		{"dense-mobile-sinr", 1, 40, geo.Rect{W: 1500, H: 300}, 20, true},
		{"fast-mobile-sinr", 3, 30, geo.Rect{W: 2000, H: 500}, 35, true},
		{"static-sinr", 4, 50, geo.Rect{W: 1200, H: 1200}, 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(tc.seed)
			model := mobility.RandomWaypoint{Area: tc.area, MinSpeed: 1, MaxSpeed: tc.speed}
			if tc.speed == 0 {
				model.MinSpeed = 0
			}
			tracks, err := model.Generate(tc.nodes, 200*sim.Second, rng.ForkNamed("mobility"))
			if err != nil {
				t.Fatal(err)
			}
			script := make([]struct {
				at  sim.Time
				who pkt.NodeID
				dur sim.Duration
			}, 400)
			srng := rng.ForkNamed("script")
			for i := range script {
				script[i].at = sim.Time(0).Add(srng.DurationUniform(0, 190*sim.Second))
				script[i].who = pkt.NodeID(srng.Intn(tc.nodes))
				script[i].dur = srng.DurationUniform(sim.Millisecond, 4*sim.Millisecond)
			}
			speedBound := mobility.MaxTrackSpeed(tracks)
			grid, gridGot := runScripted(t, tracks, Config{ReindexInterval: sim.Second, SpeedBound: speedBound, SINR: tc.sinr}, script)
			brute, bruteGot := runScripted(t, tracks, Config{BruteForce: true, SINR: tc.sinr}, script)
			if grid.Transmissions != brute.Transmissions ||
				grid.Deliveries != brute.Deliveries ||
				grid.Collisions != brute.Collisions ||
				grid.Captures != brute.Captures {
				t.Fatalf("counter mismatch: grid tx=%d dlv=%d col=%d cap=%d, brute tx=%d dlv=%d col=%d cap=%d",
					grid.Transmissions, grid.Deliveries, grid.Collisions, grid.Captures,
					brute.Transmissions, brute.Deliveries, brute.Collisions, brute.Captures)
			}
			if grid.Deliveries == 0 && tc.name != "sparse-mobile" {
				t.Fatal("degenerate scenario: nothing delivered")
			}
			for i := range gridGot {
				if gridGot[i] != bruteGot[i] {
					t.Fatalf("radio %d: grid received %d, brute %d", i, gridGot[i], bruteGot[i])
				}
			}
			if grid.Reindexes == 0 {
				t.Fatal("spatial index never built")
			}
		})
	}
}

// TestIntervalWithoutSpeedBoundStaysExact checks the misconfiguration
// guard: a reindex interval with no speed bound cannot pad the query, so
// the channel must fall back to exact per-timestamp reindexing instead of
// freezing the index at the first build.
func TestIntervalWithoutSpeedBoundStaysExact(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannelWithConfig(eng, DefaultParams(), Config{ReindexInterval: 10 * sim.Second})
	c0, c1 := &countingReceiver{}, &countingReceiver{}
	ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, c0)
	track := mobility.MustTrack([]mobility.Segment{{Start: 0, From: geo.Pt(5000, 0), To: geo.Pt(100, 0), Speed: 700}})
	ch.AttachRadio(1, track.At, c1)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("far", sim.Millis(1)) })
	eng.Schedule(sim.At(7), func() { ch.Radio(0).Transmit("near", sim.Millis(1)) })
	if err := eng.Run(sim.At(10)); err != nil {
		t.Fatal(err)
	}
	if c1.got != 1 {
		t.Fatalf("moved-in node received %d frames, want 1 (index froze?)", c1.got)
	}
}

// TestExactReindexDefault checks the zero-Config path: moving nodes are
// re-captured whenever the clock advances, so even without a speed bound
// the index can never go stale.
func TestExactReindexDefault(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	c0, c1 := &countingReceiver{}, &countingReceiver{}
	ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, c0)
	// Node 1 warps from far out of range to 100 m between transmissions.
	track := mobility.MustTrack([]mobility.Segment{{Start: 0, From: geo.Pt(5000, 0), To: geo.Pt(100, 0), Speed: 700}})
	ch.AttachRadio(1, track.At, c1)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("far", sim.Millis(1)) })
	eng.Schedule(sim.At(7), func() { ch.Radio(0).Transmit("near", sim.Millis(1)) })
	if err := eng.Run(sim.At(10)); err != nil {
		t.Fatal(err)
	}
	if c1.got != 1 {
		t.Fatalf("moved-in node received %d frames, want 1", c1.got)
	}
}
