package phy

import (
	"context"
	"runtime/pprof"
	"sync"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// This file is the intra-run parallel execution layer (Config.Workers > 0):
//
//   - Parallel transmit fan-out: each transmit event's candidate set is
//     partitioned across a worker pool that computes the pure per-receiver
//     work — distance, propagation gain, seed-derived shadowing/fading
//     draws, the carrier-sense threshold check — into a preallocated
//     per-candidate results arena. The single simulation goroutine then
//     commits the surviving arrivals in NodeID order, so scheduled events
//     (and therefore every engine sequence number and all RNG-visible
//     state) are byte-identical to the sequential path. The fan-out is
//     safe precisely because stochastic draws are content-derived from
//     (seed, from, to, txSeq) rather than pulled from a sequential RNG
//     stream: evaluation order cannot influence any draw.
//
//   - Pipelined epoch precomputation: in the epoch-reindex regime the
//     mobility batch refresh and FlatGrid rebuild for the *next* reindex
//     interval run on a background goroutine, double-buffered, and are
//     swapped in at the epoch boundary. The grid built at epoch E serves
//     queries while now−E < interval — exactly the staleness the
//     SpeedBound×interval query padding already covers — and candidate
//     sets remain supersets filtered by the exact per-leg power test, so
//     results are unchanged.
//
// Workers default to off (Config.Workers == 0), which keeps today's
// sequential path instruction-identical.

const (
	// fanoutMinCandidates gates the fan-out per transmit: below this many
	// candidates the pool handoff costs more than the leg math it spreads.
	// Sparse scenes (the city tier at study density) rarely cross it and
	// stay effectively sequential; dense scenes — where the per-transmit
	// candidate set, and with SINR the per-arrival accounting it feeds,
	// actually dominates — cross it on every broadcast.
	fanoutMinCandidates = 32
	// fanoutGrain is the index-chunk size workers claim from the atomic
	// cursor: big enough to amortise the claim, small enough to balance
	// uneven leg costs (shadowing cache misses, fading draws).
	fanoutGrain = 8
)

// legResult is one evaluated transmission leg in the fan-out arena.
type legResult struct {
	power float64
	delay sim.Duration
	ok    bool // cleared when the leg misses the carrier-sense threshold
}

// initParallel decides, once per run, which parallel mechanisms the
// configuration supports, and builds them. Called from the first transmit
// (and again after StopWorkers if the world keeps running).
func (c *Channel) initParallel() {
	c.parInit = true
	// Fan-out needs a concurrency-safe position source and propagation
	// model: the flat table's read-only lookup plus a model that is a
	// pure value type or declares itself ConcurrentSafe. Otherwise legs
	// keep evaluating on the simulation goroutine — correctness is never
	// at stake, only the speedup.
	if c.tab != nil && concurrentSafe(c.params.Prop) {
		if c.fanout == nil {
			c.fanout = sim.NewPool(c.cfg.Workers, "fanout")
		}
	}
	// Pipelined precomputation applies only in the epoch-reindex regime:
	// a position table to batch-sweep and a positive interval with a
	// speed bound padding the queries. The exact and static regimes
	// rebuild per-timestamp or never, and brute force has no index.
	if c.pre == nil && c.tab != nil && !c.cfg.BruteForce && !c.cfg.Static &&
		c.cfg.ReindexInterval > 0 && c.cfg.SpeedBound > 0 {
		c.pre = newPrecomputer(c.tab.Clone())
	}
}

// fanoutReady reports whether this transmit's n candidates should be
// evaluated on the pool.
func (c *Channel) fanoutReady(n int) bool {
	return c.fanout != nil && n >= fanoutMinCandidates
}

// StopWorkers tears down the channel's parallel helpers — the fan-out pool
// and the background precompute goroutine — and waits for them to exit.
// network.World.Run defers it, so no goroutine outlives the run that
// spawned it (campaigns build thousands of worlds per process). Idempotent;
// a later transmit on the same channel lazily re-creates the helpers, so
// phased runs keep working.
func (c *Channel) StopWorkers() {
	if c.pre != nil {
		c.pre.stop()
		c.pre = nil
	}
	if c.fanout != nil {
		c.fanout.Stop()
	}
	c.parInit = false
}

// fanoutAll is the brute-force loop's fan-out: every other up radio is a
// candidate, in NodeID order, exactly as the sequential loop visits them
// (the liveness mask is applied here, before the legs reach the pool, so
// workers never read membership state).
func (c *Channel) fanoutAll(sender *Radio, from geo.Point, payload any, dur sim.Duration, now sim.Time) {
	cands := c.scratch[:0]
	for i := range c.radios {
		if i == int(sender.id) || (c.downCount > 0 && !c.up[i]) {
			continue
		}
		cands = append(cands, int32(i))
	}
	c.scratch = cands
	c.fanoutCands(sender, cands, from, payload, dur, now)
}

// fanoutCands evaluates the candidate legs on the pool and commits the
// survivors sequentially. cands must be sorted ascending and exclude the
// sender (WithinSorted's contract).
func (c *Channel) fanoutCands(sender *Radio, cands []int32, from geo.Point, payload any, dur sim.Duration, now sim.Time) {
	n := len(cands)
	if cap(c.legs) < n {
		c.legs = make([]legResult, n)
	}
	legs := c.legs[:n]
	// Everything a worker reads is frozen for the duration of the
	// ParallelFor: the simulation goroutine is parked inside it, so the
	// table memo, the transmission counter and the params are quiescent.
	txSeq := c.Transmissions
	params := &c.params
	tab, lp := c.tab, c.linkProp
	sid := sender.id
	c.fanout.ParallelFor(n, fanoutGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			id := cands[k]
			d := tab.AtRO(int(id), now).Dist(from)
			var power float64
			if lp != nil {
				power = lp.LinkRxPower(params.TxPower, d, sid, pkt.NodeID(id), txSeq)
			} else {
				power = params.Prop.RxPower(params.TxPower, d)
			}
			if power < params.CSThreshold {
				legs[k].ok = false
				continue
			}
			delay := sim.Seconds(d / SpeedOfLight)
			if delay < sim.Nanosecond {
				delay = sim.Nanosecond
			}
			legs[k] = legResult{power: power, delay: delay, ok: true}
		}
	})
	// Commit on the simulation goroutine in candidate (NodeID) order: the
	// engine hands out sequence numbers in scheduling order, so committing
	// in exactly the order the sequential loop schedules keeps every
	// arrival's (time, seq) identity — and all downstream state —
	// byte-identical. SINR air-power accounting happens when these
	// arrivals fire, entirely on the commit side.
	for k, id := range cands {
		lg := &legs[k]
		if !lg.ok {
			continue
		}
		ae := c.allocArrival()
		ae.o = c.radios[id]
		ae.dur = dur
		ae.a = arrival{payload: payload, from: sid, power: lg.power}
		c.eng.ScheduleIn(lg.delay, ae.fire)
	}
}

// refreshIndex brings the spatial index up to date for a query at time now:
// synchronously when pipelining is off, else through the precomputer's
// double buffer.
func (c *Channel) refreshIndex(now sim.Time) {
	if c.pre == nil {
		c.reindex(now)
		return
	}
	c.pre.refresh(c, now)
}

// precomputeReq asks the background goroutine to capture every node's
// position at virtual time at and rebuild the shadow grid from them.
type precomputeReq struct {
	at sim.Time
	n  int
}

// precomputer owns the double buffer of the pipelined reindex: a private
// clone of the position table (its memo state belongs to the background
// goroutine), a shadow grid, and a one-deep request/result handshake with
// the simulation goroutine. Exactly one build is in flight at a time; the
// shadow grid is touched by the simulation goroutine only between a done
// receive and the next kick, so the channel operations carry all the
// happens-before edges the swap needs.
type precomputer struct {
	tab      *mobility.Table
	grid     *geo.FlatGrid
	pts      []geo.Point
	req      chan precomputeReq
	done     chan sim.Time
	quit     chan struct{}
	wg       sync.WaitGroup
	inflight bool
}

func newPrecomputer(tab *mobility.Table) *precomputer {
	p := &precomputer{
		tab:  tab,
		req:  make(chan precomputeReq, 1),
		done: make(chan sim.Time, 1),
		quit: make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("phase", "reindex")))
		for {
			select {
			case <-p.quit:
				return
			case rq := <-p.req:
				if cap(p.pts) < rq.n {
					p.pts = make([]geo.Point, rq.n)
				}
				p.pts = p.pts[:rq.n]
				p.tab.Positions(rq.at, p.pts)
				p.grid.Rebuild(p.pts)
				select {
				case p.done <- rq.at:
				case <-p.quit:
					return
				}
			}
		}
	}()
	return p
}

// refresh satisfies a stale-index query at time now. When the in-flight
// epoch build is fresh enough (its epoch at satisfies 0 ≤ now−at <
// interval, the same staleness window the synchronous scheme grants
// lastIndex), the shadow grid is swapped in and the following epoch is
// kicked off; otherwise — the event stream went quiet past the prepared
// epoch — the speculative build is discarded and the index rebuilds
// synchronously at now, re-priming the pipeline from there.
func (p *precomputer) refresh(c *Channel, now sim.Time) {
	if p.inflight {
		at := <-p.done
		p.inflight = false
		if delta := now.Sub(at); delta >= 0 && delta < c.cfg.ReindexInterval {
			c.grid, p.grid = p.grid, c.grid
			c.lastIndex = at
			c.indexed = true
			c.Reindexes++
			p.kick(c, at)
			return
		}
	}
	c.reindex(now)
	p.kick(c, now)
}

// kick requests the background build of the epoch following the one that
// just became active at time at. Mobility tracks are fully determined for
// all virtual time, so capturing future positions is exact, not a guess.
func (p *precomputer) kick(c *Channel, at sim.Time) {
	if p.grid == nil {
		p.grid = geo.NewFlatGrid(c.queryRadius)
	}
	p.inflight = true
	p.req <- precomputeReq{at: at.Add(c.cfg.ReindexInterval), n: len(c.radios)}
}

func (p *precomputer) stop() {
	close(p.quit)
	p.wg.Wait()
}
