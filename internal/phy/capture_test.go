package phy

import (
	"math/rand"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// TestCapturePropertyRandomized fuzzes two overlapping transmissions at
// random distances and asserts the capture invariants: the receiver decodes
// at most one frame; if it decodes one, that frame was at least
// CaptureRatio times stronger than the competitor; and frames below the
// reception threshold are never decoded.
func TestCapturePropertyRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	params := DefaultParams()
	for trial := 0; trial < 300; trial++ {
		d1 := 20 + r.Float64()*500
		d2 := 20 + r.Float64()*500
		gap := sim.Duration(r.Int63n(int64(500 * sim.Microsecond)))

		eng := sim.NewEngine()
		ch := NewChannel(eng, params)
		rx := &collector{}
		ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
		ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(d1, 0) }, &collector{})
		ch.AttachRadio(2, func(sim.Time) geo.Point { return geo.Pt(0, d2) }, &collector{})
		eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("one", sim.Millis(1)) })
		eng.Schedule(sim.Time(gap), func() { ch.Radio(2).Transmit("two", sim.Millis(1)) })
		if err := eng.Run(sim.At(1)); err != nil {
			t.Fatal(err)
		}

		if len(rx.got) > 1 {
			t.Fatalf("trial %d: decoded %d overlapping frames", trial, len(rx.got))
		}
		p1 := params.Prop.RxPower(params.TxPower, d1)
		p2 := params.Prop.RxPower(params.TxPower, d2)
		if len(rx.got) == 1 {
			winner := rx.got[0]
			var pw, pl float64
			if winner == "one" {
				pw, pl = p1, p2
			} else {
				pw, pl = p2, p1
			}
			if pw < params.RxThreshold {
				t.Fatalf("trial %d: decoded frame below rx threshold (d1=%.0f d2=%.0f)", trial, d1, d2)
			}
			// The capture margin applies only between decodable
			// frames: sub-reception-threshold energy raises carrier
			// sense but does not contest a reception — the ns-2 model
			// this PHY reproduces has no cumulative-SINR tracking.
			if pl >= params.RxThreshold && pw < params.CaptureRatio*pl {
				t.Fatalf("trial %d: capture without %gx margin (pw=%g pl=%g d1=%.0f d2=%.0f)",
					trial, params.CaptureRatio, pw, pl, d1, d2)
			}
		}
	}
}

// TestSINRPropertyRandomized extends the capture fuzz to cumulative-
// interference mode: two overlapping transmissions at random distances,
// decoded under SINR and under pairwise capture. Invariants: at most one
// frame decodes; a decoded frame cleared the reception threshold and the
// CaptureRatio margin over every interferer at or above the carrier-sense
// threshold (capture only demands the margin over *decodable*
// interferers); and with exactly two arrivals SINR is strictly stricter,
// so its decode set is a subset of capture's.
func TestSINRPropertyRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	params := DefaultParams()
	for trial := 0; trial < 300; trial++ {
		d1 := 20 + r.Float64()*500
		d2 := 20 + r.Float64()*500
		gap := sim.Duration(r.Int63n(int64(500 * sim.Microsecond)))

		run := func(cfg Config) *collector {
			eng := sim.NewEngine()
			ch := NewChannelWithConfig(eng, params, cfg)
			rx := &collector{}
			ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
			ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(d1, 0) }, &collector{})
			ch.AttachRadio(2, func(sim.Time) geo.Point { return geo.Pt(0, d2) }, &collector{})
			eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("one", sim.Millis(1)) })
			eng.Schedule(sim.Time(gap), func() { ch.Radio(2).Transmit("two", sim.Millis(1)) })
			if err := eng.Run(sim.At(1)); err != nil {
				t.Fatal(err)
			}
			return rx
		}
		sinr := run(Config{SINR: true})
		capt := run(Config{})

		if len(sinr.got) > 1 {
			t.Fatalf("trial %d: SINR decoded %d overlapping frames", trial, len(sinr.got))
		}
		p1 := params.Prop.RxPower(params.TxPower, d1)
		p2 := params.Prop.RxPower(params.TxPower, d2)
		if len(sinr.got) == 1 {
			winner := sinr.got[0]
			var pw, pl float64
			if winner == "one" {
				pw, pl = p1, p2
			} else {
				pw, pl = p2, p1
			}
			if pw < params.RxThreshold {
				t.Fatalf("trial %d: SINR decoded frame below rx threshold (d1=%.0f d2=%.0f)", trial, d1, d2)
			}
			// Unlike capture, sub-reception energy above the CS threshold
			// contests the SINR.
			if pl >= params.CSThreshold && pw < params.CaptureRatio*pl {
				t.Fatalf("trial %d: SINR decode without %gx margin over CS-level interference (pw=%g pl=%g)",
					trial, params.CaptureRatio, pw, pl)
			}
			// Two-arrival scenes: anything SINR decodes, capture decodes.
			if len(capt.got) != 1 || capt.got[0] != winner {
				t.Fatalf("trial %d: SINR decoded %q but capture decoded %v", trial, winner, capt.got)
			}
		}
	}
}

// TestCumulativeInterferenceKillsReception is the Fu/Liew/Huang scenario
// the SINR mode exists for: three interferers, each individually weak
// enough for pairwise capture to shrug off (signal/interferer = 16 > 10),
// are collectively fatal (signal/Σ = 16/3 < 10). Capture delivers the
// frame; SINR must corrupt it.
func TestCumulativeInterferenceKillsReception(t *testing.T) {
	positions := []geo.Point{
		geo.Pt(0, 0),   // receiver
		geo.Pt(100, 0), // signal sender
		geo.Pt(0, 200), // interferers at 200 m: (200/100)⁴ = 16 per head
		geo.Pt(-200, 0),
		geo.Pt(0, -200),
	}
	run := func(cfg Config) (*collector, *Channel) {
		eng := sim.NewEngine()
		ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
		rx := &collector{}
		for i, p := range positions {
			p := p
			var rcv Receiver = &collector{}
			if i == 0 {
				rcv = rx
			}
			ch.AttachRadio(pkt.NodeID(i), func(sim.Time) geo.Point { return p }, rcv)
		}
		eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("sig", sim.Millis(1)) })
		for i, at := range []sim.Duration{100 * sim.Microsecond, 150 * sim.Microsecond, 200 * sim.Microsecond} {
			who := pkt.NodeID(2 + i)
			eng.ScheduleIn(at, func() { ch.Radio(who).Transmit("noise", sim.Millis(1)) })
		}
		if err := eng.Run(sim.At(1)); err != nil {
			t.Fatal(err)
		}
		return rx, ch
	}
	capt, _ := run(Config{})
	if len(capt.got) != 1 || capt.got[0] != "sig" {
		t.Fatalf("pairwise capture got %v, want the signal frame", capt.got)
	}
	sinr, ch := run(Config{SINR: true})
	if len(sinr.got) != 0 {
		t.Fatalf("SINR decoded %v under 16/3 cumulative interference", sinr.got)
	}
	if ch.Collisions == 0 {
		t.Fatal("cumulative loss not accounted as a collision")
	}
}

// TestSubRxCumulativeInterference: three interferers between the CS and RX
// thresholds, each individually clearing the pairwise 10× margin
// ((430/240)⁴ ≈ 10.3), so capture delivers the signal — while their summed
// sub-decodable energy (10.3/3 ≈ 3.4 < 10) sinks the SINR. This is the
// carrier-sense blind spot of the pairwise model: energy too weak to ever
// decode still jams.
func TestSubRxCumulativeInterference(t *testing.T) {
	run := func(cfg Config) *collector {
		eng := sim.NewEngine()
		ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
		rx := &collector{}
		ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
		ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(240, 0) }, &collector{})
		for i, p := range []geo.Point{geo.Pt(0, 430), geo.Pt(-430, 0), geo.Pt(0, -430)} {
			p := p
			ch.AttachRadio(pkt.NodeID(2+i), func(sim.Time) geo.Point { return p }, &collector{})
		}
		eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("sig", sim.Millis(1)) })
		for i, at := range []sim.Duration{100 * sim.Microsecond, 150 * sim.Microsecond, 200 * sim.Microsecond} {
			who := pkt.NodeID(2 + i)
			eng.ScheduleIn(at, func() { ch.Radio(who).Transmit("hum", sim.Millis(1)) })
		}
		if err := eng.Run(sim.At(1)); err != nil {
			t.Fatal(err)
		}
		return rx
	}
	if capt := run(Config{}); len(capt.got) != 1 || capt.got[0] != "sig" {
		t.Fatalf("capture got %v, want the signal (each hum is 10.3× down)", capt.got)
	}
	if sinr := run(Config{SINR: true}); len(sinr.got) != 0 {
		t.Fatalf("SINR got %v, want nothing (summed CS-level interference counts)", sinr.got)
	}
}

// TestSINRSoloTrafficMatchesCapture: without overlap the two reception
// models must agree exactly — SINR only changes contested receptions.
func TestSINRSoloTrafficMatchesCapture(t *testing.T) {
	for _, d := range []float64{50, 150, 249, 251, 400, 600} {
		run := func(cfg Config) *collector {
			eng := sim.NewEngine()
			ch := NewChannelWithConfig(eng, DefaultParams(), cfg)
			rx := &collector{}
			ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
			ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(d, 0) }, &collector{})
			for i := 0; i < 3; i++ {
				at := sim.At(float64(i) * 0.01)
				eng.Schedule(at, func() { ch.Radio(1).Transmit("x", sim.Millis(1)) })
			}
			if err := eng.Run(sim.At(1)); err != nil {
				t.Fatal(err)
			}
			return rx
		}
		capt, sinr := run(Config{}), run(Config{SINR: true})
		if len(capt.got) != len(sinr.got) || capt.busy != sinr.busy || capt.idle != sinr.idle {
			t.Fatalf("d=%.0f: capture got %d busy/idle %d/%d, SINR got %d busy/idle %d/%d",
				d, len(capt.got), capt.busy, capt.idle, len(sinr.got), sinr.busy, sinr.idle)
		}
	}
}

// TestInterferenceOnlyNeverDecodes places the sender between CS and RX
// thresholds: energy is sensed but nothing may be decoded.
func TestInterferenceOnlyNeverDecodes(t *testing.T) {
	for _, d := range []float64{251, 300, 400, 549} {
		eng := sim.NewEngine()
		ch := NewChannel(eng, DefaultParams())
		rx := &collector{}
		ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
		ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(d, 0) }, &collector{})
		eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("x", sim.Millis(1)) })
		if err := eng.Run(sim.At(1)); err != nil {
			t.Fatal(err)
		}
		if len(rx.got) != 0 {
			t.Fatalf("decoded frame from %.0f m (beyond 250 m)", d)
		}
		if rx.busy != 1 || rx.idle != 1 {
			t.Fatalf("carrier sense at %.0f m: busy/idle %d/%d", d, rx.busy, rx.idle)
		}
	}
}

// TestRadioStatsAccounting checks radio counters line up with channel ones.
func TestRadioStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	rx := &collector{}
	ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
	ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(100, 0) }, &collector{})
	for i := 0; i < 5; i++ {
		at := sim.At(float64(i) * 0.01)
		eng.Schedule(at, func() { ch.Radio(1).Transmit("x", sim.Millis(1)) })
	}
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if ch.Transmissions != 5 || ch.Deliveries != 5 {
		t.Fatalf("channel tx/rx = %d/%d", ch.Transmissions, ch.Deliveries)
	}
	if ch.Radio(1).TxFrames != 5 || ch.Radio(0).RxFrames != 5 {
		t.Fatalf("radio tx/rx = %d/%d", ch.Radio(1).TxFrames, ch.Radio(0).RxFrames)
	}
}
