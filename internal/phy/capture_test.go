package phy

import (
	"math/rand"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// TestCapturePropertyRandomized fuzzes two overlapping transmissions at
// random distances and asserts the capture invariants: the receiver decodes
// at most one frame; if it decodes one, that frame was at least
// CaptureRatio times stronger than the competitor; and frames below the
// reception threshold are never decoded.
func TestCapturePropertyRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	params := DefaultParams()
	for trial := 0; trial < 300; trial++ {
		d1 := 20 + r.Float64()*500
		d2 := 20 + r.Float64()*500
		gap := sim.Duration(r.Int63n(int64(500 * sim.Microsecond)))

		eng := sim.NewEngine()
		ch := NewChannel(eng, params)
		rx := &collector{}
		ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
		ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(d1, 0) }, &collector{})
		ch.AttachRadio(2, func(sim.Time) geo.Point { return geo.Pt(0, d2) }, &collector{})
		eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("one", sim.Millis(1)) })
		eng.Schedule(sim.Time(gap), func() { ch.Radio(2).Transmit("two", sim.Millis(1)) })
		if err := eng.Run(sim.At(1)); err != nil {
			t.Fatal(err)
		}

		if len(rx.got) > 1 {
			t.Fatalf("trial %d: decoded %d overlapping frames", trial, len(rx.got))
		}
		p1 := params.Prop.RxPower(params.TxPower, d1)
		p2 := params.Prop.RxPower(params.TxPower, d2)
		if len(rx.got) == 1 {
			winner := rx.got[0]
			var pw, pl float64
			if winner == "one" {
				pw, pl = p1, p2
			} else {
				pw, pl = p2, p1
			}
			if pw < params.RxThreshold {
				t.Fatalf("trial %d: decoded frame below rx threshold (d1=%.0f d2=%.0f)", trial, d1, d2)
			}
			// The capture margin applies only between decodable
			// frames: sub-reception-threshold energy raises carrier
			// sense but does not contest a reception — the ns-2 model
			// this PHY reproduces has no cumulative-SINR tracking.
			if pl >= params.RxThreshold && pw < params.CaptureRatio*pl {
				t.Fatalf("trial %d: capture without %gx margin (pw=%g pl=%g d1=%.0f d2=%.0f)",
					trial, params.CaptureRatio, pw, pl, d1, d2)
			}
		}
	}
}

// TestInterferenceOnlyNeverDecodes places the sender between CS and RX
// thresholds: energy is sensed but nothing may be decoded.
func TestInterferenceOnlyNeverDecodes(t *testing.T) {
	for _, d := range []float64{251, 300, 400, 549} {
		eng := sim.NewEngine()
		ch := NewChannel(eng, DefaultParams())
		rx := &collector{}
		ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
		ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(d, 0) }, &collector{})
		eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("x", sim.Millis(1)) })
		if err := eng.Run(sim.At(1)); err != nil {
			t.Fatal(err)
		}
		if len(rx.got) != 0 {
			t.Fatalf("decoded frame from %.0f m (beyond 250 m)", d)
		}
		if rx.busy != 1 || rx.idle != 1 {
			t.Fatalf("carrier sense at %.0f m: busy/idle %d/%d", d, rx.busy, rx.idle)
		}
	}
}

// TestRadioStatsAccounting checks radio counters line up with channel ones.
func TestRadioStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	rx := &collector{}
	ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, rx)
	ch.AttachRadio(1, func(sim.Time) geo.Point { return geo.Pt(100, 0) }, &collector{})
	for i := 0; i < 5; i++ {
		at := sim.At(float64(i) * 0.01)
		eng.Schedule(at, func() { ch.Radio(1).Transmit("x", sim.Millis(1)) })
	}
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if ch.Transmissions != 5 || ch.Deliveries != 5 {
		t.Fatalf("channel tx/rx = %d/%d", ch.Transmissions, ch.Deliveries)
	}
	if ch.Radio(1).TxFrames != 5 || ch.Radio(0).RxFrames != 5 {
		t.Fatalf("radio tx/rx = %d/%d", ch.Radio(1).TxFrames, ch.Radio(0).RxFrames)
	}
}

var _ = pkt.Broadcast // keep import for potential extension
