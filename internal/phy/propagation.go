// Package phy models the shared wireless medium: signal propagation,
// carrier sense, frame reception, capture and collisions. It reproduces the
// CMU Monarch ns-2 physical layer: two-ray ground reflection propagation, a
// 250 m reception range and a 550 m carrier-sense/interference range at the
// standard WaveLAN-style parameters.
package phy

import "math"

// SpeedOfLight in metres per second, for propagation delay.
const SpeedOfLight = 299792458.0

// Propagation computes received signal power as a function of distance.
type Propagation interface {
	// RxPower returns the received power in Watts at distance d metres
	// for a transmit power of txPower Watts.
	RxPower(txPower, d float64) float64
}

// FreeSpace is the Friis free-space model: Pr = Pt·Gt·Gr·λ² / ((4π)²·d²·L).
type FreeSpace struct {
	Gt, Gr float64 // antenna gains (dimensionless)
	Lambda float64 // wavelength, metres
	L      float64 // system loss ≥ 1
}

// RxPower implements Propagation.
func (m FreeSpace) RxPower(txPower, d float64) float64 {
	if d <= 0 {
		return txPower
	}
	den := 16 * math.Pi * math.Pi * d * d * m.L
	return txPower * m.Gt * m.Gr * m.Lambda * m.Lambda / den
}

// TwoRayGround is the two-ray ground-reflection model used by the CMU
// extensions: free space up to the crossover distance, then
// Pr = Pt·Gt·Gr·ht²·hr² / d⁴.
type TwoRayGround struct {
	Gt, Gr float64 // antenna gains
	Ht, Hr float64 // antenna heights, metres
	Lambda float64 // wavelength, metres
	L      float64 // system loss ≥ 1
}

// Crossover returns the distance at which the two-ray term takes over:
// 4π·ht·hr/λ.
func (m TwoRayGround) Crossover() float64 {
	return 4 * math.Pi * m.Ht * m.Hr / m.Lambda
}

// RxPower implements Propagation.
func (m TwoRayGround) RxPower(txPower, d float64) float64 {
	if d <= 0 {
		return txPower
	}
	if d < m.Crossover() {
		fs := FreeSpace{Gt: m.Gt, Gr: m.Gr, Lambda: m.Lambda, L: m.L}
		return fs.RxPower(txPower, d)
	}
	return txPower * m.Gt * m.Gr * m.Ht * m.Ht * m.Hr * m.Hr / (d * d * d * d * m.L)
}

// RadioParams bundles the physical-layer constants of a scenario.
type RadioParams struct {
	TxPower      float64     // Watts
	RxThreshold  float64     // min power for successful reception, Watts
	CSThreshold  float64     // min power to raise carrier sense, Watts
	CaptureRatio float64     // power ratio for capture (ns-2 uses 10 = 10 dB)
	Prop         Propagation // propagation model
}

// DefaultParams returns the CMU/ns-2 914 MHz WaveLAN parameterisation:
// two-ray ground, 0.28183815 W transmit power, thresholds tuned for a 250 m
// reception range and 550 m carrier-sense range, 10 dB capture.
func DefaultParams() RadioParams {
	lambda := SpeedOfLight / 914e6
	prop := TwoRayGround{Gt: 1, Gr: 1, Ht: 1.5, Hr: 1.5, Lambda: lambda, L: 1}
	const txPower = 0.28183815
	return RadioParams{
		TxPower: txPower,
		// Derive thresholds from the model itself so that the ranges
		// are exactly 250 m / 550 m regardless of float rounding.
		RxThreshold:  prop.RxPower(txPower, 250),
		CSThreshold:  prop.RxPower(txPower, 550),
		CaptureRatio: 10,
		Prop:         prop,
	}
}

// ParamsForRange returns parameters with the reception range set to rx
// metres and the carrier-sense range to cs metres (cs ≥ rx), keeping the
// default two-ray model. Used by scenarios that sweep transmission range.
func ParamsForRange(rx, cs float64) RadioParams {
	p := DefaultParams()
	prop := p.Prop.(TwoRayGround)
	p.RxThreshold = prop.RxPower(p.TxPower, rx)
	p.CSThreshold = prop.RxPower(p.TxPower, cs)
	return p
}

// RxRange computes the reception range implied by the parameters (the
// distance at which received power falls to RxThreshold), by bisection.
func (p RadioParams) RxRange() float64 { return p.rangeFor(p.RxThreshold) }

// CSRange computes the carrier-sense range implied by the parameters.
func (p RadioParams) CSRange() float64 { return p.rangeFor(p.CSThreshold) }

func (p RadioParams) rangeFor(thresh float64) float64 {
	lo, hi := 0.0, 1e5
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.Prop.RxPower(p.TxPower, mid) >= thresh {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
