// Package phy models the shared wireless medium: signal propagation,
// carrier sense, frame reception, capture and collisions. It reproduces the
// CMU Monarch ns-2 physical layer: two-ray ground reflection propagation, a
// 250 m reception range and a 550 m carrier-sense/interference range at the
// standard WaveLAN-style parameters. Stochastic models (log-normal
// shadowing, Ricean/Rayleigh fading; see internal/radio) plug in through
// the LinkPropagation extension, and Config.SINR replaces the pairwise
// capture test with cumulative-interference reception.
package phy

import (
	"fmt"
	"math"

	"adhocsim/internal/pkt"
)

// SpeedOfLight in metres per second, for propagation delay.
const SpeedOfLight = 299792458.0

// Propagation computes received signal power as a function of distance.
type Propagation interface {
	// RxPower returns the received power in Watts at distance d metres
	// for a transmit power of txPower Watts. For stochastic models this
	// is the nominal (median) power: range derivations and the spatial
	// index reason about it, while the per-link/per-transmission draw
	// goes through LinkPropagation.
	RxPower(txPower, d float64) float64
}

// LinkPropagation is an optional Propagation extension for models whose
// received power depends on the identity of the link or of the individual
// transmission — log-normal shadowing (per-link static deviation) and
// Ricean/Rayleigh fading (per-reception draw). The channel consults it on
// the transmit path when the scenario's Prop implements it; RxPower keeps
// returning the nominal power.
//
// txSeq is the channel-wide sequence number of the transmission, so a
// fading model can draw one deterministic factor per (transmission,
// receiver) leg regardless of the order receivers are probed in — the
// spatial index and the brute-force loop probe different candidate sets,
// and only content-derived draws keep them bit-identical.
type LinkPropagation interface {
	Propagation
	LinkRxPower(txPower, d float64, from, to pkt.NodeID, txSeq uint64) float64
}

// ConcurrentPropagation marks a propagation model whose RxPower (and
// LinkRxPower, when implemented) may be called from multiple goroutines at
// once. The parallel transmit fan-out evaluates candidate legs on a worker
// pool; a model that memoises internally must guard that state (see
// radio.Shadowing) before declaring itself safe, and a model that does not
// declare itself safe is simply evaluated on the simulation goroutine —
// correctness is never at stake, only the fan-out speedup.
type ConcurrentPropagation interface {
	ConcurrentSafe()
}

// concurrentSafe reports whether prop may be evaluated concurrently: the
// built-in deterministic models are pure value types (stateless by
// construction), anything else must opt in through ConcurrentPropagation.
func concurrentSafe(prop Propagation) bool {
	switch prop.(type) {
	case FreeSpace, TwoRayGround, PathLossExp:
		return true
	}
	_, ok := prop.(ConcurrentPropagation)
	return ok
}

// GainBounded is implemented by stochastic propagation models to bound how
// far above the nominal RxPower a single link or reception can land
// (linear power factor ≥ 1). The channel widens its candidate query by
// this factor so the distance-pruning spatial index can never miss a
// lucky link that clears the carrier-sense threshold from beyond the
// nominal range. Models must clamp their draws to honour the bound.
type GainBounded interface {
	MaxGainLinear() float64
}

// MaxGain returns the propagation model's upward deviation bound: its
// MaxGainLinear when it declares one, else exactly 1 (deterministic
// models never exceed their nominal power).
func MaxGain(prop Propagation) float64 {
	if gb, ok := prop.(GainBounded); ok {
		return gb.MaxGainLinear()
	}
	return 1
}

// FreeSpace is the Friis free-space model: Pr = Pt·Gt·Gr·λ² / ((4π)²·d²·L).
type FreeSpace struct {
	Gt, Gr float64 // antenna gains (dimensionless)
	Lambda float64 // wavelength, metres
	L      float64 // system loss ≥ 1
}

// RxPower implements Propagation.
func (m FreeSpace) RxPower(txPower, d float64) float64 {
	if d <= 0 {
		return txPower
	}
	den := 16 * math.Pi * math.Pi * d * d * m.L
	return txPower * m.Gt * m.Gr * m.Lambda * m.Lambda / den
}

// TwoRayGround is the two-ray ground-reflection model used by the CMU
// extensions: free space up to the crossover distance, then
// Pr = Pt·Gt·Gr·ht²·hr² / d⁴.
type TwoRayGround struct {
	Gt, Gr float64 // antenna gains
	Ht, Hr float64 // antenna heights, metres
	Lambda float64 // wavelength, metres
	L      float64 // system loss ≥ 1
}

// Crossover returns the distance at which the two-ray term takes over:
// 4π·ht·hr/λ.
func (m TwoRayGround) Crossover() float64 {
	return 4 * math.Pi * m.Ht * m.Hr / m.Lambda
}

// RxPower implements Propagation.
func (m TwoRayGround) RxPower(txPower, d float64) float64 {
	if d <= 0 {
		return txPower
	}
	if d < m.Crossover() {
		fs := FreeSpace{Gt: m.Gt, Gr: m.Gr, Lambda: m.Lambda, L: m.L}
		return fs.RxPower(txPower, d)
	}
	return txPower * m.Gt * m.Gr * m.Ht * m.Ht * m.Hr * m.Hr / (d * d * d * d * m.L)
}

// PathLossExp is the tunable path-loss-exponent model (ns-2's shadowing
// mean path loss): free space out to the reference distance D0, then
// Pr(d) = Pr_fs(D0)·(D0/d)^Exp. Exp=2 degenerates to free space; urban
// measurements run 2.7–5.
type PathLossExp struct {
	FS  FreeSpace
	D0  float64 // reference distance, metres (> 0)
	Exp float64 // path-loss exponent (> 0)
}

// RxPower implements Propagation.
func (m PathLossExp) RxPower(txPower, d float64) float64 {
	if d <= m.D0 {
		return m.FS.RxPower(txPower, d)
	}
	return m.FS.RxPower(txPower, m.D0) * math.Pow(m.D0/d, m.Exp)
}

// RadioParams bundles the physical-layer constants of a scenario.
type RadioParams struct {
	TxPower      float64     // Watts
	RxThreshold  float64     // min power for successful reception, Watts
	CSThreshold  float64     // min power to raise carrier sense, Watts
	CaptureRatio float64     // power ratio for capture, and the SINR threshold (ns-2 uses 10 = 10 dB)
	NoiseW       float64     // noise floor in Watts, the SINR denominator's constant term (0 = interference-limited)
	Prop         Propagation // propagation model
}

// Validate reports parameter errors. It subsumes the constructor-time
// capture-ratio panic the channel used to raise: specs and campaigns
// resolve radio models through internal/radio, which validates here, so a
// bad capture ratio or threshold ordering fails at spec/campaign
// submission time instead of deep inside a worker goroutine.
func (p RadioParams) Validate() error {
	if p.Prop == nil {
		return fmt.Errorf("phy: nil propagation model")
	}
	if p.TxPower <= 0 {
		return fmt.Errorf("phy: non-positive transmit power %v W", p.TxPower)
	}
	if p.RxThreshold <= 0 || p.CSThreshold <= 0 {
		return fmt.Errorf("phy: non-positive threshold (rx %v W, cs %v W)", p.RxThreshold, p.CSThreshold)
	}
	if p.CSThreshold > p.RxThreshold {
		return fmt.Errorf("phy: carrier-sense threshold %v W above reception threshold %v W (CS range must cover rx range)",
			p.CSThreshold, p.RxThreshold)
	}
	if p.CaptureRatio <= 1 {
		return fmt.Errorf("phy: capture ratio must exceed 1, got %v", p.CaptureRatio)
	}
	if p.NoiseW < 0 || math.IsNaN(p.NoiseW) {
		return fmt.Errorf("phy: invalid noise floor %v W", p.NoiseW)
	}
	if g := MaxGain(p.Prop); g < 1 || math.IsInf(g, 1) || math.IsNaN(g) {
		return fmt.Errorf("phy: propagation gain bound %v outside [1, ∞)", g)
	}
	return nil
}

// DefaultParams returns the CMU/ns-2 914 MHz WaveLAN parameterisation:
// two-ray ground, 0.28183815 W transmit power, thresholds tuned for a 250 m
// reception range and 550 m carrier-sense range, 10 dB capture.
func DefaultParams() RadioParams {
	lambda := SpeedOfLight / 914e6
	prop := TwoRayGround{Gt: 1, Gr: 1, Ht: 1.5, Hr: 1.5, Lambda: lambda, L: 1}
	const txPower = 0.28183815
	return RadioParams{
		TxPower: txPower,
		// Derive thresholds from the model itself so that the ranges
		// are exactly 250 m / 550 m regardless of float rounding.
		RxThreshold:  prop.RxPower(txPower, 250),
		CSThreshold:  prop.RxPower(txPower, 550),
		CaptureRatio: 10,
		Prop:         prop,
	}
}

// ParamsForRange returns parameters with the reception range set to rx
// metres and the carrier-sense range to cs metres (cs ≥ rx), keeping the
// default two-ray model. Used by scenarios that sweep transmission range.
func ParamsForRange(rx, cs float64) RadioParams {
	p := DefaultParams()
	prop := p.Prop.(TwoRayGround)
	p.RxThreshold = prop.RxPower(p.TxPower, rx)
	p.CSThreshold = prop.RxPower(p.TxPower, cs)
	return p
}

// RxRange computes the reception range implied by the parameters (the
// distance at which received power falls to RxThreshold), by bisection.
func (p RadioParams) RxRange() float64 { return p.rangeFor(p.RxThreshold) }

// CSRange computes the carrier-sense range implied by the parameters.
func (p RadioParams) CSRange() float64 { return p.rangeFor(p.CSThreshold) }

func (p RadioParams) rangeFor(thresh float64) float64 {
	lo, hi := 0.0, 1e5
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.Prop.RxPower(p.TxPower, mid) >= thresh {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
