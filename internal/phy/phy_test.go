package phy

import (
	"math"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

func TestTwoRayCrossoverContinuity(t *testing.T) {
	p := DefaultParams()
	prop := p.Prop.(TwoRayGround)
	x := prop.Crossover()
	below := prop.RxPower(p.TxPower, x*0.999)
	above := prop.RxPower(p.TxPower, x*1.001)
	if math.Abs(below-above)/below > 0.02 {
		t.Fatalf("discontinuity at crossover: %g vs %g", below, above)
	}
}

func TestPowerMonotoneDecreasing(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for d := 1.0; d < 2000; d += 7 {
		pw := p.Prop.RxPower(p.TxPower, d)
		if pw > prev {
			t.Fatalf("power increased with distance at %.0f m", d)
		}
		prev = pw
	}
}

func TestDefaultRanges(t *testing.T) {
	p := DefaultParams()
	if r := p.RxRange(); math.Abs(r-250) > 1 {
		t.Fatalf("rx range = %.2f, want 250", r)
	}
	if r := p.CSRange(); math.Abs(r-550) > 1 {
		t.Fatalf("cs range = %.2f, want 550", r)
	}
}

func TestParamsForRange(t *testing.T) {
	p := ParamsForRange(100, 220)
	if r := p.RxRange(); math.Abs(r-100) > 1 {
		t.Fatalf("rx range = %.2f, want 100", r)
	}
	if r := p.CSRange(); math.Abs(r-220) > 1 {
		t.Fatalf("cs range = %.2f, want 220", r)
	}
}

func TestFreeSpaceInverseSquare(t *testing.T) {
	fs := FreeSpace{Gt: 1, Gr: 1, Lambda: 0.3, L: 1}
	r1 := fs.RxPower(1, 100)
	r2 := fs.RxPower(1, 200)
	if math.Abs(r1/r2-4) > 1e-9 {
		t.Fatalf("free space is not 1/d²: ratio %g", r1/r2)
	}
}

func TestTwoRayInverseFourth(t *testing.T) {
	tr := TwoRayGround{Gt: 1, Gr: 1, Ht: 1.5, Hr: 1.5, Lambda: 0.328, L: 1}
	d := tr.Crossover() * 2
	r1 := tr.RxPower(1, d)
	r2 := tr.RxPower(1, 2*d)
	if math.Abs(r1/r2-16) > 1e-9 {
		t.Fatalf("two-ray is not 1/d⁴ beyond crossover: ratio %g", r1/r2)
	}
}

// collector is a test Receiver recording deliveries and channel edges.
type collector struct {
	got   []string
	from  []pkt.NodeID
	busy  int
	idle  int
	power []float64
}

func (c *collector) OnReceive(payload any, from pkt.NodeID, rxPower float64) {
	c.got = append(c.got, payload.(string))
	c.from = append(c.from, from)
	c.power = append(c.power, rxPower)
}
func (c *collector) OnChannelBusy() { c.busy++ }
func (c *collector) OnChannelIdle() { c.idle++ }

// buildChain wires n static radios spaced apart on a line.
func buildChain(eng *sim.Engine, n int, spacing float64) (*Channel, []*collector) {
	ch := NewChannel(eng, DefaultParams())
	tracks := mobility.Chain(n, spacing)
	cols := make([]*collector, n)
	for i := 0; i < n; i++ {
		cols[i] = &collector{}
		tr := tracks[i]
		ch.AttachRadio(pkt.NodeID(i), func(t sim.Time) geo.Point { return tr.At(t) }, cols[i])
	}
	return ch, cols
}

func TestDeliveryWithinRange(t *testing.T) {
	eng := sim.NewEngine()
	ch, cols := buildChain(eng, 3, 200) // 0-1: 200m (in range), 0-2: 400m (out of rx range, in CS)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("hello", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[1].got) != 1 || cols[1].got[0] != "hello" {
		t.Fatalf("node 1 got %v", cols[1].got)
	}
	if cols[1].from[0] != 0 {
		t.Fatal("wrong sender")
	}
	if len(cols[2].got) != 0 {
		t.Fatal("node 2 beyond rx range received frame")
	}
	// Node 2 is within carrier-sense range: it must have seen busy/idle.
	if cols[2].busy != 1 || cols[2].idle != 1 {
		t.Fatalf("node 2 busy/idle = %d/%d, want 1/1", cols[2].busy, cols[2].idle)
	}
	if ch.Deliveries != 1 {
		t.Fatalf("channel deliveries = %d", ch.Deliveries)
	}
}

func TestBeyondCSRangeSilence(t *testing.T) {
	eng := sim.NewEngine()
	ch, cols := buildChain(eng, 2, 600)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("x", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[1].got) != 0 || cols[1].busy != 0 {
		t.Fatal("node beyond CS range observed the transmission")
	}
}

func TestCollisionComparablePowers(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	// Receiver in the middle of two equidistant senders: equal power,
	// overlapping in time → collision, nothing delivered.
	positions := []geo.Point{geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(400, 0)}
	cols := make([]*collector, 3)
	for i := range positions {
		cols[i] = &collector{}
		p := positions[i]
		ch.AttachRadio(pkt.NodeID(i), func(sim.Time) geo.Point { return p }, cols[i])
	}
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("a", sim.Millis(1)) })
	eng.ScheduleIn(sim.Micros(100), func() { ch.Radio(2).Transmit("b", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[1].got) != 0 {
		t.Fatalf("middle node decoded %v despite collision", cols[1].got)
	}
	if ch.Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestCaptureStrongerFirst(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	// Receiver at origin; strong sender 50 m away, weak sender 240 m away.
	// Power ratio (240/50)⁴ ≫ 10, so the strong frame must survive.
	positions := []geo.Point{geo.Pt(0, 0), geo.Pt(50, 0), geo.Pt(240, 0)}
	cols := make([]*collector, 3)
	for i := range positions {
		cols[i] = &collector{}
		p := positions[i]
		ch.AttachRadio(pkt.NodeID(i), func(sim.Time) geo.Point { return p }, cols[i])
	}
	eng.ScheduleIn(0, func() { ch.Radio(1).Transmit("strong", sim.Millis(1)) })
	eng.ScheduleIn(sim.Micros(50), func() { ch.Radio(2).Transmit("weak", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[0].got) != 1 || cols[0].got[0] != "strong" {
		t.Fatalf("receiver got %v, want capture of strong frame", cols[0].got)
	}
	if ch.Captures == 0 {
		t.Fatal("capture not counted")
	}
}

func TestCaptureStrongerSecond(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	positions := []geo.Point{geo.Pt(0, 0), geo.Pt(50, 0), geo.Pt(240, 0)}
	cols := make([]*collector, 3)
	for i := range positions {
		cols[i] = &collector{}
		p := positions[i]
		ch.AttachRadio(pkt.NodeID(i), func(sim.Time) geo.Point { return p }, cols[i])
	}
	// Weak frame first, strong frame second: the strong one captures.
	eng.ScheduleIn(0, func() { ch.Radio(2).Transmit("weak", sim.Millis(1)) })
	eng.ScheduleIn(sim.Micros(50), func() { ch.Radio(1).Transmit("strong", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[0].got) != 1 || cols[0].got[0] != "strong" {
		t.Fatalf("receiver got %v, want strong frame via capture", cols[0].got)
	}
}

func TestHalfDuplexTxKillsRx(t *testing.T) {
	eng := sim.NewEngine()
	ch, cols := buildChain(eng, 2, 100)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("incoming", sim.Millis(1)) })
	// Node 1 starts its own transmission mid-reception.
	eng.ScheduleIn(sim.Micros(200), func() { ch.Radio(1).Transmit("own", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[1].got) != 0 {
		t.Fatal("node decoded a frame while transmitting over it")
	}
	// Node 0 cannot decode node 1's frame either: it arrives at ~200 µs
	// while node 0 is still transmitting its own 1 ms frame.
	if len(cols[0].got) != 0 {
		t.Fatal("transmitter decoded a frame that arrived mid-transmission")
	}
}

func TestSequentialFramesBothDelivered(t *testing.T) {
	eng := sim.NewEngine()
	ch, cols := buildChain(eng, 2, 100)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("one", sim.Millis(1)) })
	eng.ScheduleIn(sim.Millis(2), func() { ch.Radio(0).Transmit("two", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if len(cols[1].got) != 2 || cols[1].got[0] != "one" || cols[1].got[1] != "two" {
		t.Fatalf("got %v", cols[1].got)
	}
	if cols[1].busy != 2 || cols[1].idle != 2 {
		t.Fatalf("busy/idle = %d/%d, want 2/2", cols[1].busy, cols[1].idle)
	}
}

func TestBusyIdleEdgesWithOverlap(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	positions := []geo.Point{geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(400, 0)}
	cols := make([]*collector, 3)
	for i := range positions {
		cols[i] = &collector{}
		p := positions[i]
		ch.AttachRadio(pkt.NodeID(i), func(sim.Time) geo.Point { return p }, cols[i])
	}
	// Two overlapping transmissions as heard by the middle node: busy must
	// be signalled once and idle once, at the end of the later frame.
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("a", sim.Millis(2)) })
	eng.ScheduleIn(sim.Millis(1), func() { ch.Radio(2).Transmit("b", sim.Millis(4)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	if cols[1].busy != 1 || cols[1].idle != 1 {
		t.Fatalf("middle busy/idle = %d/%d, want 1/1", cols[1].busy, cols[1].idle)
	}
}

func TestRxPowerReported(t *testing.T) {
	eng := sim.NewEngine()
	ch, cols := buildChain(eng, 2, 150)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("x", sim.Millis(1)) })
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
	want := DefaultParams().Prop.RxPower(DefaultParams().TxPower, 150)
	if len(cols[1].power) != 1 || math.Abs(cols[1].power[0]-want)/want > 1e-9 {
		t.Fatalf("reported power %v, want %g", cols[1].power, want)
	}
}

func TestMovingNodeLeavesRange(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, DefaultParams())
	c0, c1 := &collector{}, &collector{}
	ch.AttachRadio(0, func(sim.Time) geo.Point { return geo.Pt(0, 0) }, c0)
	// Node 1 moves away at 100 m/s from 200 m to 800 m over 6 s.
	track := mobility.MustTrack([]mobility.Segment{{Start: 0, From: geo.Pt(200, 0), To: geo.Pt(800, 0), Speed: 100}})
	ch.AttachRadio(1, func(t sim.Time) geo.Point { return track.At(t) }, c1)
	eng.ScheduleIn(0, func() { ch.Radio(0).Transmit("near", sim.Millis(1)) })
	eng.Schedule(sim.At(5.8), func() { ch.Radio(0).Transmit("far", sim.Millis(1)) }) // node 1 at ~780 m
	if err := eng.Run(sim.At(10)); err != nil {
		t.Fatal(err)
	}
	if len(c1.got) != 1 || c1.got[0] != "near" {
		t.Fatalf("moving node got %v, want only the near frame", c1.got)
	}
	if !ch.InRange(0, 1, 0) {
		t.Fatal("InRange false at t=0")
	}
	if ch.InRange(0, 1, sim.At(5.8)) {
		t.Fatal("InRange true at 780 m")
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	eng := sim.NewEngine()
	ch, _ := buildChain(eng, 2, 100)
	eng.ScheduleIn(0, func() {
		ch.Radio(0).Transmit("a", sim.Millis(1))
		defer func() {
			if recover() == nil {
				t.Error("second Transmit did not panic")
			}
		}()
		ch.Radio(0).Transmit("b", sim.Millis(1))
	})
	if err := eng.Run(sim.At(1)); err != nil {
		t.Fatal(err)
	}
}
