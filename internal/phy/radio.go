package phy

import (
	"adhocsim/internal/geo"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// arrival is one transmission as seen by one receiver.
type arrival struct {
	payload   any
	from      pkt.NodeID
	power     float64
	end       sim.Time
	corrupted bool
}

// Radio is one node's transceiver. It is half-duplex: transmitting corrupts
// any in-progress reception, and frames arriving while transmitting are
// lost. Reception follows the ns-2 capture model: among overlapping
// arrivals, a frame is decoded only if it is at least CaptureRatio times
// stronger than every competing arrival; otherwise all overlapping frames
// are corrupted (a collision). With Config.SINR the pairwise test is
// replaced by cumulative-interference reception: the radio tracks the
// total in-air power and a frame decodes only if
// signal ≥ CaptureRatio · (noise + ΣI) holds whenever the interference sum
// steps up.
type Radio struct {
	id  pkt.NodeID
	ch  *Channel
	pos func(sim.Time) geo.Point // nil when the channel's position table serves this radio
	rcv Receiver

	// The per-arrival hot state — tx/busy deadlines and the SINR-mode
	// interference accumulators (summed in-air power plus an arrival count
	// so the float sum resets exactly when the air clears) — lives in the
	// channel's flat per-NodeID arrays (Channel.txUntil and friends), not
	// here: arrivals fan out across many radios per transmission, and the
	// dense arrays keep that scatter cache-resident at 10k nodes.

	rx *arrival // reception in progress, if any

	watchdogArmed bool
	watchdogFn    sim.EventFunc // cached method value (armed per busy edge)
	notifiedBusy  bool

	// Stats.
	Collisions uint64 // receptions lost to overlapping arrivals
	Captured   uint64 // receptions that survived via capture
	TxFrames   uint64
	RxFrames   uint64
}

// ID returns the radio's node id.
func (r *Radio) ID() pkt.NodeID { return r.id }

// SetReceiver installs the upper layer. AttachRadio permits a nil receiver
// so that a MAC — which needs the radio to construct itself — can be wired
// in afterwards; no frames may arrive before the receiver is set.
func (r *Radio) SetReceiver(rcv Receiver) { r.rcv = rcv }

// Position returns the node position at time t.
func (r *Radio) Position(t sim.Time) geo.Point { return r.ch.posAt(r.id, t) }

// Busy reports physical carrier sense: the medium is busy at this radio.
func (r *Radio) Busy() bool {
	now := r.ch.eng.Now()
	return now < r.ch.txUntil[r.id] || now < r.ch.busyUntil[r.id]
}

// BusyUntil returns the earliest time the medium could become idle given
// current knowledge (later arrivals may extend it).
func (r *Radio) BusyUntil() sim.Time {
	tx, busy := r.ch.txUntil[r.id], r.ch.busyUntil[r.id]
	if tx > busy {
		return tx
	}
	return busy
}

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.ch.eng.Now() < r.ch.txUntil[r.id] }

// Transmit puts a frame on the air for dur. The MAC must not call this while
// a previous transmission is still in progress.
func (r *Radio) Transmit(payload any, dur sim.Duration) {
	now := r.ch.eng.Now()
	if now < r.ch.txUntil[r.id] {
		panic("phy: Transmit while already transmitting")
	}
	// Half-duplex: transmitting destroys any reception in progress.
	if r.rx != nil && r.rx.end > now {
		r.rx.corrupted = true
	}
	r.TxFrames++
	until := now.Add(dur)
	r.ch.txUntil[r.id] = until
	r.extendBusy(until)
	r.ch.transmit(r, payload, dur)
}

// beginArrival registers a frame starting to arrive at this radio.
func (r *Radio) beginArrival(a arrival) {
	if !r.ch.up[r.id] {
		// The radio powered down after this leg was scheduled (candidate
		// filtering stops new legs): the energy neither decodes nor
		// registers as carrier at a dead receiver.
		return
	}
	now := r.ch.eng.Now()
	r.extendBusy(a.end)

	if r.ch.cfg.SINR {
		r.beginArrivalSINR(a, now)
		return
	}

	if now < r.ch.txUntil[r.id] {
		// Receiving while transmitting is impossible; the energy still
		// occupied the medium (busy already extended).
		return
	}

	switch {
	case r.rx != nil && !r.rx.corrupted && r.rx.end > now:
		cur := r.rx
		ratio := r.ch.params.CaptureRatio
		switch {
		case cur.power >= ratio*a.power:
			// Current reception captures over the newcomer; the
			// newcomer is absorbed as noise.
			r.Captured++
			r.ch.Captures++
		case a.power >= ratio*cur.power && a.power >= r.ch.params.RxThreshold:
			// Newcomer captures: the old reception dies, the new
			// one proceeds.
			cur.corrupted = true
			r.Captured++
			r.ch.Captures++
			r.startReception(a)
		default:
			// Comparable powers: both corrupted.
			cur.corrupted = true
			r.Collisions++
			r.ch.Collisions++
		}
	default:
		if a.power >= r.ch.params.RxThreshold {
			r.startReception(a)
		}
		// Otherwise sub-reception-threshold energy: carrier sense only.
	}
}

// beginArrivalSINR is the cumulative-interference arrival path. Every
// arrival above the carrier-sense threshold joins the radio's in-air power
// sum for its whole duration (sub-CS energy never reaches the radio — the
// interference sum is floored at the CS threshold in both transmit paths,
// which is what keeps grid and brute-force candidate sets identical). The
// SINR test only needs re-evaluation when interference steps UP: the
// signal power is constant and departures only improve the ratio, so
// checking at each arrival start bounds the worst case over the frame.
func (r *Radio) beginArrivalSINR(a arrival, now sim.Time) {
	r.addAir(a.power, a.end)

	if now < r.ch.txUntil[r.id] {
		// Receiving while transmitting is impossible; the energy still
		// occupied the medium and still counts as interference for
		// frames arriving after our transmission ends.
		return
	}

	ratio := r.ch.params.CaptureRatio
	noise := r.ch.params.NoiseW
	if cur := r.rx; cur != nil && !cur.corrupted && cur.end > now {
		// airPower includes the current signal itself; everything else
		// competes with it, the newcomer included.
		if cur.power >= ratio*(noise+r.ch.airPower[r.id]-cur.power) {
			// The reception rides out the extra interference.
			r.Captured++
			r.ch.Captures++
			return
		}
		cur.corrupted = true
		r.Collisions++
		r.ch.Collisions++
		// Fall through: the newcomer may itself be decodable over the
		// wreckage (the SINR analogue of newcomer capture).
	}
	r.tryStartSINR(a, ratio, noise)
}

// tryStartSINR starts receiving a if it is decodable against the noise
// floor plus all other in-air power.
func (r *Radio) tryStartSINR(a arrival, ratio, noise float64) {
	if a.power < r.ch.params.RxThreshold {
		return
	}
	if interf := noise + r.ch.airPower[r.id] - a.power; a.power < ratio*interf {
		return
	}
	r.startReception(a)
}

// airEvent is a pooled end-of-arrival marker for SINR interference
// accounting: it removes the arrival's power from the radio's in-air sum
// when the frame leaves the air.
type airEvent struct {
	r     *Radio
	power float64
	fire  sim.EventFunc
}

func (c *Channel) allocAir() *airEvent {
	if n := len(c.airPool); n > 0 {
		ae := c.airPool[n-1]
		c.airPool[n-1] = nil
		c.airPool = c.airPool[:n-1]
		return ae
	}
	ae := &airEvent{}
	ae.fire = func() {
		r := ae.r
		ch := r.ch
		ch.airCount[r.id]--
		if ch.airCount[r.id] == 0 {
			// Reset exactly: float subtraction of every departure would
			// otherwise leave residue that drifts across a long run.
			ch.airPower[r.id] = 0
		} else {
			ch.airPower[r.id] -= ae.power
		}
		ae.r = nil
		ch.airPool = append(ch.airPool, ae)
	}
	return ae
}

// addAir adds an arrival's power to the in-air sum until end.
func (r *Radio) addAir(power float64, end sim.Time) {
	r.ch.airCount[r.id]++
	r.ch.airPower[r.id] += power
	ae := r.ch.allocAir()
	ae.r = r
	ae.power = power
	r.ch.eng.Schedule(end, ae.fire)
}

// receptionEvent is a pooled in-progress reception: the end-of-frame
// closure is created once per pooled struct. The arrival lives inside the
// struct so r.rx and the corrupting writers share one instance; the struct
// returns to the pool when its end event fires.
type receptionEvent struct {
	r    *Radio
	a    arrival
	fire sim.EventFunc
}

func (c *Channel) allocReception() *receptionEvent {
	if n := len(c.rxPool); n > 0 {
		re := c.rxPool[n-1]
		c.rxPool[n-1] = nil
		c.rxPool = c.rxPool[:n-1]
		return re
	}
	re := &receptionEvent{}
	re.fire = func() {
		r := re.r
		r.finishReception(&re.a)
		re.r, re.a = nil, arrival{}
		r.ch.rxPool = append(r.ch.rxPool, re)
	}
	return re
}

func (r *Radio) startReception(a arrival) {
	re := r.ch.allocReception()
	re.r = r
	re.a = a
	r.rx = &re.a
	r.ch.eng.Schedule(a.end, re.fire)
}

func (r *Radio) finishReception(a *arrival) {
	if r.rx == a {
		r.rx = nil
	}
	if a.corrupted {
		return
	}
	// A transmission that started mid-reception corrupts it (also handled
	// in Transmit, but guard against exact-tie orderings).
	if r.ch.eng.Now() < r.ch.txUntil[r.id] {
		return
	}
	r.RxFrames++
	r.ch.Deliveries++
	if r.rcv != nil {
		r.rcv.OnReceive(a.payload, a.from, a.power)
	}
}

// extendBusy pushes out the busy horizon and manages idle/busy edge
// notifications to the MAC.
func (r *Radio) extendBusy(until sim.Time) {
	now := r.ch.eng.Now()
	if until > r.ch.busyUntil[r.id] {
		r.ch.busyUntil[r.id] = until
	}
	if !r.notifiedBusy && r.BusyUntil() > now {
		r.notifiedBusy = true
		if r.rcv != nil {
			r.rcv.OnChannelBusy()
		}
	}
	r.armWatchdog()
}

func (r *Radio) armWatchdog() {
	if r.watchdogArmed {
		return
	}
	until := r.BusyUntil()
	now := r.ch.eng.Now()
	if until <= now {
		return
	}
	r.watchdogArmed = true
	if r.watchdogFn == nil {
		r.watchdogFn = r.watchdogFire
	}
	r.ch.eng.Schedule(until, r.watchdogFn)
}

func (r *Radio) watchdogFire() {
	r.watchdogArmed = false
	now := r.ch.eng.Now()
	if r.BusyUntil() > now {
		r.armWatchdog()
		return
	}
	if r.notifiedBusy {
		r.notifiedBusy = false
		if r.rcv != nil {
			r.rcv.OnChannelIdle()
		}
	}
}
