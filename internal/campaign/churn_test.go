package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adhocsim/internal/core"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
)

// churnSpec sweeps the address-autoconfiguration protocol across a churn
// axis — the lifecycle analogue of resumeSpec. The 45 s horizon leaves
// room for the staggered-join default 30 s window, so the axis's
// default-parameter models all pass scenario validation.
func churnSpec() Spec {
	sc := scenario.Default()
	sc.Nodes = 10
	sc.Area.W = 600
	sc.Duration = 45 * sim.Second
	sc.Sources = 3
	return Spec{
		Name:      "churn-test",
		Scenario:  &sc,
		Protocols: []string{core.Autoconf},
		Axes:      []AxisSpec{{Name: "lifecycle", Models: []string{"staggered-join", "onoff-fail"}}},
		MaxReps:   2,
		BaseSeed:  11,
	}
}

// TestChurnCampaignMetrics: a churn × autoconf campaign must surface the
// lifecycle metrics end to end — membership counters in the merged stats
// and time_to_converge / addr_collision_rate summaries per cell.
func TestChurnCampaignMetrics(t *testing.T) {
	res, err := Run(context.Background(), churnSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells, want 2 (one per churn model)", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Merged.Joins == 0 {
			t.Errorf("%s: no joins recorded under a churn model", cell.Label)
		}
		ttc, ok := cell.Metrics["time_to_converge"]
		if !ok {
			t.Fatalf("%s: no time_to_converge summary; metrics: %v", cell.Label, metricNames(cell))
		}
		if ttc.Mean <= 0 || ttc.Mean > 45 {
			t.Errorf("%s: time_to_converge mean %v outside (0,45]s", cell.Label, ttc.Mean)
		}
		coll, ok := cell.Metrics["addr_collision_rate"]
		if !ok {
			t.Fatalf("%s: no addr_collision_rate summary", cell.Label)
		}
		if coll.Mean < 0 || coll.Mean > 1 {
			t.Errorf("%s: addr_collision_rate mean %v outside [0,1]", cell.Label, coll.Mean)
		}
	}
	onoff := res.Cells[indexOfLabel(t, res, "onoff-fail")]
	if onoff.Merged.Leaves == 0 {
		t.Errorf("onoff-fail cell recorded no leaves: %+v", onoff.Merged)
	}
}

func metricNames(c CellResult) []string {
	var names []string
	for k := range c.Metrics {
		names = append(names, k)
	}
	return names
}

func indexOfLabel(t *testing.T, res *Result, substr string) int {
	t.Helper()
	for i, c := range res.Cells {
		if strings.Contains(c.Label, substr) {
			return i
		}
	}
	t.Fatalf("no cell labelled %q in %v", substr, res.AxisLabels)
	return -1
}

// TestChurnCampaignResumeAndWorkerParity: the determinism guarantees the
// campaign engine makes for fixed populations must survive a churn axis —
// a journal-prefix resume and every worker-pool width aggregate to
// reflect.DeepEqual Results.
func TestChurnCampaignResumeAndWorkerParity(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	basePath := filepath.Join(dir, "churn.jsonl")
	want, err := Run(ctx, churnSpec(), Options{JournalPath: basePath})
	if err != nil {
		t.Fatal(err)
	}

	// Worker-pool width is execution-only: it must not leak into results.
	for _, workers := range []int{1, 4} {
		got, err := Run(ctx, churnSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d campaign diverges from journaled run", workers)
		}
	}

	header, entries := journalLines(t, basePath)
	if len(entries) != 4 { // 2 cells × 2 reps
		t.Fatalf("journal holds %d entries, want 4", len(entries))
	}
	for _, k := range []int{1, 3} {
		path := filepath.Join(dir, "prefix.jsonl")
		content := header + "\n" + strings.Join(entries[:k], "\n") + "\n"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := New(churnSpec(), Options{JournalPath: path})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(ctx)
		if err != nil {
			t.Fatalf("resume after %d entries: %v", k, err)
		}
		if snap := c.Snapshot(); snap.RunsFromJournal != k {
			t.Fatalf("resume after %d entries replayed %d", k, snap.RunsFromJournal)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("churn campaign resumed after %d entries diverges", k)
		}
		os.Remove(path)
	}
}

// TestChurnAxisRejectsOutOfHorizonModel: the lifecycle dry-run fires at
// plan expansion, so a churn model whose schedule cannot fit the scenario
// fails at submission time.
func TestChurnAxisRejectsOutOfHorizonModel(t *testing.T) {
	spec := churnSpec()
	sc := *spec.Scenario
	sc.Duration = 10 * sim.Second // staggered-join default window is 30 s
	spec.Scenario = &sc
	if _, err := spec.Expand(); err == nil {
		t.Fatal("Expand accepted a churn axis whose joins fall past the run horizon")
	}
}
