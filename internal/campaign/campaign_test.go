package campaign

import (
	"context"
	"math"
	"reflect"
	"testing"

	"adhocsim/internal/core"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// tinyScenario is the fast end-to-end scenario used across campaign tests:
// 10 nodes in a small box for 10 simulated seconds.
func tinyScenario() *scenario.Spec {
	s := scenario.Default()
	s.Nodes = 10
	s.Area.W = 600
	s.Duration = 10 * sim.Second
	s.Sources = 3
	return &s
}

func TestSpecExpandDefaults(t *testing.T) {
	plan, err := Spec{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.Protocols, core.StudyProtocols(); !reflect.DeepEqual(got, want) {
		t.Fatalf("protocols = %v", got)
	}
	if plan.Spec.BaseSeed != 1 || plan.Spec.MaxReps != 3 || plan.Spec.MinReps != 3 {
		t.Fatalf("replication defaults = %+v", plan.Spec)
	}
	if len(plan.Cells) != 5 || plan.MaxRuns() != 15 {
		t.Fatalf("cells = %d, max runs = %d", len(plan.Cells), plan.MaxRuns())
	}
	if plan.Cells[0].Label != "DSR" {
		t.Fatalf("label = %q", plan.Cells[0].Label)
	}
}

func TestSpecExpandGrid(t *testing.T) {
	spec := Spec{
		Scenario:  tinyScenario(),
		Protocols: []string{"dsr", "AODV"},
		Axes: []AxisSpec{
			{Name: "pause", Values: []float64{0, 30}},
			{Name: "rate", Values: []float64{2, 4, 8}},
		},
		MaxReps: 2,
	}
	plan, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 2*2*3 {
		t.Fatalf("cells = %d", len(plan.Cells))
	}
	if plan.Cells[0].Label != "DSR|pause_s=0|rate_pps=2" {
		t.Fatalf("label = %q", plan.Cells[0].Label)
	}
	// Last axis fastest, protocol outermost.
	if plan.Cells[1].Label != "DSR|pause_s=0|rate_pps=4" || plan.Cells[6].Protocol != "AODV" {
		t.Fatalf("order: %q / %q", plan.Cells[1].Label, plan.Cells[6].Protocol)
	}
	// Seeds are content-derived: distinct across cells and reps, stable
	// across re-expansion.
	plan2, _ := spec.Expand()
	seen := make(map[int64]bool)
	for ci := range plan.Cells {
		for r := 0; r < plan.Spec.MaxReps; r++ {
			s := plan.SeedFor(ci, r)
			if seen[s] {
				t.Fatalf("duplicate seed %d", s)
			}
			seen[s] = true
			if s != plan2.SeedFor(ci, r) {
				t.Fatal("seed not stable across expansions")
			}
		}
	}
	if plan.Hash != plan2.Hash || plan.Hash == "" {
		t.Fatalf("hash unstable: %q vs %q", plan.Hash, plan2.Hash)
	}
}

func TestSpecExpandErrors(t *testing.T) {
	cases := []Spec{
		{Protocols: []string{"NOPE"}},
		{Protocols: []string{"DSR", "dsr"}},
		{Axes: []AxisSpec{{Name: "warp"}}},
		{Axes: []AxisSpec{{Name: "pause", Values: []float64{0}}, {Name: "pause", Values: []float64{30}}}},
		{Epsilon: map[string]float64{"nope": 1}},
		{Epsilon: map[string]float64{"pdr": -1}},
		{MinReps: 5, MaxReps: 2},
		{MaxReps: -1},
	}
	for i, spec := range cases {
		if _, err := spec.Expand(); err == nil {
			t.Fatalf("spec %d accepted", i)
		}
	}
	// max_reps=1 with epsilon is valid: the MinReps default clamps to the
	// cap rather than rejecting a field the user never set.
	plan, err := Spec{MaxReps: 1, Epsilon: map[string]float64{"pdr": 5}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.MinReps != 1 {
		t.Fatalf("min_reps defaulted to %d", plan.Spec.MinReps)
	}
}

func TestScenarioPatch(t *testing.T) {
	n, d, w := 12, 42.5, 800.0
	spec := Spec{Base: ScenarioPatch{Nodes: &n, DurationS: &d, AreaW: &w}, MaxReps: 1}
	plan, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Base.Nodes != 12 || plan.Base.Duration != sim.Seconds(42.5) || plan.Base.Area.W != 800 {
		t.Fatalf("patched base = %+v", plan.Base)
	}
	// Unpatched fields keep study defaults.
	if plan.Base.Sources != 10 || plan.Base.TxRange != 250 {
		t.Fatalf("defaults clobbered: %+v", plan.Base)
	}
}

// TestCampaignMatchesDirectRuns is the core determinism check: a campaign
// cell's merged result must equal merging direct core.Run calls with the
// derived seeds.
func TestCampaignMatchesDirectRuns(t *testing.T) {
	spec := Spec{
		Scenario:  tinyScenario(),
		Protocols: []string{core.DSR, core.Flood},
		MaxReps:   2,
	}
	res, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	plan, _ := spec.Expand()
	for ci, cell := range res.Cells {
		if cell.Reps != 2 || cell.StopReason != StopMaxReps {
			t.Fatalf("cell %d: reps %d, stop %q", ci, cell.Reps, cell.StopReason)
		}
		var reps []stats.Results
		for r := 0; r < 2; r++ {
			direct, err := core.Run(context.Background(), core.RunConfig{
				Spec:     *tinyScenario(),
				Protocol: cell.Protocol,
				Seed:     plan.SeedFor(ci, r),
			})
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, direct)
		}
		if want := stats.MergeResults(reps); !reflect.DeepEqual(cell.Merged, want) {
			t.Fatalf("cell %d merged diverges from direct runs", ci)
		}
		pdr := cell.Metrics["pdr"]
		if pdr.N != 2 || math.Abs(pdr.Mean-(reps[0].PDR+reps[1].PDR)*50) > 1e-9 {
			t.Fatalf("cell %d pdr summary = %+v", ci, pdr)
		}
	}
}

// stoppingCampaign builds a campaign whose commits are driven by hand with
// synthetic results, so the sequential rule can be tested without real runs.
func stoppingCampaign(t *testing.T, minReps, maxReps int, eps float64) *Campaign {
	t.Helper()
	c, err := New(Spec{
		Scenario:  tinyScenario(),
		Protocols: []string{core.DSR},
		MinReps:   minReps,
		MaxReps:   maxReps,
		Epsilon:   map[string]float64{"pdr": eps},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSequentialStopping(t *testing.T) {
	// PDR metric values (percent): 80, 80.2, 80.1 → at n=2 the t-based
	// half-width is ≈1.27 (>0.3); at n=3 it is ≈0.25 (≤0.3) → stop at 3.
	pdrs := []float64{0.80, 0.802, 0.801, 0.777, 0.9}
	c := stoppingCampaign(t, 2, 5, 0.3)
	for rep, p := range pdrs {
		c.CompleteUnit(0, rep, stats.Results{PDR: p}, false)
	}
	cs := &c.cells[0]
	if cs.committed != 3 || !cs.stopped || cs.stopReason != StopCI {
		t.Fatalf("committed %d, stopped %v (%s)", cs.committed, cs.stopped, cs.stopReason)
	}
	// Speculative results beyond the stop point were stored but never
	// folded into the accumulators.
	if n := cs.acc[0].N(); n != 3 {
		t.Fatalf("accumulator n = %d", n)
	}
}

func TestSequentialStoppingOrderIndependent(t *testing.T) {
	pdrs := []float64{0.80, 0.802, 0.801, 0.777, 0.9}
	inOrder := stoppingCampaign(t, 2, 5, 0.3)
	for rep, p := range pdrs {
		inOrder.CompleteUnit(0, rep, stats.Results{PDR: p}, false)
	}
	shuffled := stoppingCampaign(t, 2, 5, 0.3)
	for _, rep := range []int{4, 2, 0, 3, 1} {
		shuffled.CompleteUnit(0, rep, stats.Results{PDR: pdrs[rep]}, false)
	}
	a, b := &inOrder.cells[0], &shuffled.cells[0]
	if a.committed != b.committed || a.stopReason != b.stopReason {
		t.Fatalf("order changed the decision: %d/%s vs %d/%s",
			a.committed, a.stopReason, b.committed, b.stopReason)
	}
	if !reflect.DeepEqual(a.acc, b.acc) {
		t.Fatal("order changed the accumulators")
	}
}

func TestStoppingNeedsMinReps(t *testing.T) {
	// A single tight value would satisfy any epsilon, but MinReps floors
	// the sample size.
	c := stoppingCampaign(t, 3, 4, 1e9)
	c.CompleteUnit(0, 0, stats.Results{PDR: 0.5}, false)
	c.CompleteUnit(0, 1, stats.Results{PDR: 0.5}, false)
	if c.cells[0].stopped {
		t.Fatal("stopped before MinReps")
	}
	c.CompleteUnit(0, 2, stats.Results{PDR: 0.5}, false)
	cs := &c.cells[0]
	if !cs.stopped || cs.stopReason != StopCI || cs.committed != 3 {
		t.Fatalf("state = %+v", cs)
	}
}

// TestLateCancelKeepsCompleteResult: a cancellation that lands after the
// final commit (every cell stopped) must not discard the finished
// aggregate — with no journal it would be unrecoverable.
func TestLateCancelKeepsCompleteResult(t *testing.T) {
	spec := Spec{Scenario: tinyScenario(), Protocols: []string{core.DSR, core.Flood}, MaxReps: 2}
	want, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := New(spec, Options{
		Workers: 1,
		OnProgress: func(s Snapshot) {
			if s.RunsDone == s.MaxRuns {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("late cancel surfaced as %v", err)
	}
	if snap := c.Snapshot(); snap.State != StateDone {
		t.Fatalf("state = %s", snap.State)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("late-cancelled result diverges")
	}
}

func TestCampaignCancel(t *testing.T) {
	big := tinyScenario()
	big.Duration = 600 * sim.Second
	big.Nodes = 20
	spec := Spec{Scenario: big, Protocols: []string{core.DSR}, MaxReps: 3}
	c, err := New(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx); !isCancel(err) {
		t.Fatalf("err = %v", err)
	}
	if snap := c.Snapshot(); snap.State != StateCancelled {
		t.Fatalf("state = %s", snap.State)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestWorkersExecutionOnly: the workers knob is execution-only — two plans
// differing solely in workers must share the spec hash (journals resume
// across worker counts) and every run-unit digest (the content-addressed
// result cache serves across worker counts), while a negative count is
// rejected at expansion.
func TestWorkersExecutionOnly(t *testing.T) {
	eight := 8
	seq, err := Spec{Protocols: []string{"DSR"}, MaxReps: 2}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	par, err := Spec{Protocols: []string{"DSR"}, MaxReps: 2, Base: ScenarioPatch{Workers: &eight}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers != 8 || seq.Workers != 0 {
		t.Fatalf("plan workers = %d/%d, want 0/8", seq.Workers, par.Workers)
	}
	if seq.Hash != par.Hash {
		t.Fatalf("workers leaked into the plan hash: %s != %s", seq.Hash, par.Hash)
	}
	for cell := range seq.Cells {
		for rep := 0; rep < 2; rep++ {
			if seq.UnitKey(cell, rep) != par.UnitKey(cell, rep) {
				t.Fatalf("workers leaked into unit digest (cell %d rep %d)", cell, rep)
			}
		}
	}
	neg := -1
	if _, err := (Spec{Base: ScenarioPatch{Workers: &neg}}).Expand(); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// TestWorkersUnitParity: a unit executed with plan workers set must return
// reflect.DeepEqual results to the sequential execution of the same unit.
func TestWorkersUnitParity(t *testing.T) {
	four := 4
	spec := Spec{Scenario: tinyScenario(), Protocols: []string{"AODV"}, MaxReps: 1}
	seq, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	spec.Base.Workers = &four
	par, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.ExecuteUnit(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.ExecuteUnit(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("workers=4 unit diverges from sequential:\nseq %+v\npar %+v", a, b)
	}
}
