package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

const tinySpecJSON = `{
  "name": "smoke",
  "base": {"nodes": 10, "area_w_m": 600, "duration_s": 10, "sources": 3},
  "protocols": ["DSR", "FLOOD"],
  "max_reps": 2
}`

func startServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(ServerOptions{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
}

func submit(t *testing.T, ts *httptest.Server, spec string) createdResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /campaigns = %d: %s", resp.StatusCode, body)
	}
	var created createdResponse
	decodeBody(t, resp, &created)
	return created
}

// TestServerEndToEnd drives submit → progress → results over real HTTP.
func TestServerEndToEnd(t *testing.T) {
	_, ts := startServer(t)
	created := submit(t, ts, tinySpecJSON)
	if created.ID == "" || created.Cells != 2 || created.MaxRuns != 4 {
		t.Fatalf("created = %+v", created)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var snap Snapshot
	for {
		resp, err := http.Get(ts.URL + "/campaigns/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET campaign = %d", resp.StatusCode)
		}
		decodeBody(t, resp, &snap)
		if snap.State == StateDone || snap.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", snap)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if snap.State != StateDone || snap.RunsDone != 4 || snap.CellsStopped != 2 {
		t.Fatalf("final snapshot = %+v", snap)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results = %d", resp.StatusCode)
	}
	var res Result
	decodeBody(t, resp, &res)
	if res.Name != "smoke" || len(res.Cells) != 2 {
		t.Fatalf("result = %+v", res)
	}
	for _, cell := range res.Cells {
		if cell.Reps != 2 || cell.Merged.DataSent == 0 {
			t.Fatalf("cell = %+v", cell)
		}
		if cell.Metrics["pdr"].N != 2 {
			t.Fatalf("pdr summary = %+v", cell.Metrics["pdr"])
		}
	}

	// The listing shows the campaign.
	listResp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var listed []struct {
		ID string `json:"id"`
		Snapshot
	}
	decodeBody(t, listResp, &listed)
	if len(listed) != 1 || listed[0].ID != created.ID || listed[0].State != StateDone {
		t.Fatalf("list = %+v", listed)
	}
}

// TestServerCancel covers results-before-done (409) and DELETE cancellation.
func TestServerCancel(t *testing.T) {
	_, ts := startServer(t)
	// A campaign too long to finish during the test.
	created := submit(t, ts, `{
	  "base": {"nodes": 20, "duration_s": 600},
	  "protocols": ["DSR"],
	  "max_reps": 3
	}`)

	resp, err := http.Get(ts.URL + "/campaigns/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results while running = %d", resp.StatusCode)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+created.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", delResp.StatusCode)
	}
	var snap Snapshot
	decodeBody(t, delResp, &snap)
	if snap.State != StateCancelled {
		t.Fatalf("state after delete = %+v", snap)
	}

	// Cancelled campaigns have no final aggregate.
	resp, err = http.Get(ts.URL + "/campaigns/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results after cancel = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// pollDone polls a campaign until it leaves the running states and returns
// the final snapshot.
func pollDone(t *testing.T, ts *httptest.Server, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		decodeBody(t, resp, &snap)
		if snap.State != StatePending && snap.State != StateRunning {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck: %+v", id, snap)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerJournalAcrossRestarts: journals are keyed by spec hash, so a
// restarted daemon (ids back at c1) neither collides with a previous life's
// journals nor re-runs a spec whose journal is already complete.
func TestServerJournalAcrossRestarts(t *testing.T) {
	dir := t.TempDir()

	s1 := NewServer(ServerOptions{JournalDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	created := submit(t, ts1, tinySpecJSON)
	if snap := pollDone(t, ts1, created.ID); snap.State != StateDone {
		t.Fatalf("first life: %+v", snap)
	}
	resp, err := http.Get(ts1.URL + "/campaigns/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var first Result
	decodeBody(t, resp, &first)
	ts1.Close()
	s1.Close()

	// Second life: same journal dir, fresh id sequence.
	s2 := NewServer(ServerOptions{JournalDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	// A different spec gets id c1 again but its own journal — no collision
	// with the previous life's file.
	other := submit(t, ts2, `{"base": {"nodes": 10, "area_w_m": 600, "duration_s": 10, "sources": 3}, "protocols": ["FLOOD"], "max_reps": 1}`)
	if snap := pollDone(t, ts2, other.ID); snap.State != StateDone {
		t.Fatalf("different spec after restart: %+v", snap)
	}

	// The original spec resumes its completed journal: zero new runs,
	// identical results.
	again := submit(t, ts2, tinySpecJSON)
	snap := pollDone(t, ts2, again.ID)
	if snap.State != StateDone || snap.RunsFromJournal != 4 {
		t.Fatalf("resubmitted spec: %+v", snap)
	}
	resp, err = http.Get(ts2.URL + "/campaigns/" + again.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var second Result
	decodeBody(t, resp, &second)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("results diverge across daemon restart")
	}
}

// TestServerDuplicateLiveSpec: two live campaigns must not share a journal.
func TestServerDuplicateLiveSpec(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(ServerOptions{JournalDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	long := `{"base": {"nodes": 20, "duration_s": 600}, "protocols": ["DSR"], "max_reps": 3}`
	created := submit(t, ts, long)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate live spec = %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+created.ID, nil)
	if delResp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		delResp.Body.Close()
	}
}

func TestServerRejections(t *testing.T) {
	_, ts := startServer(t)

	// Unknown id.
	resp, err := http.Get(ts.URL + "/campaigns/zzz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed and invalid specs.
	for _, bad := range []string{
		`{not json`,
		`{"protocols": ["NOPE"]}`,
		`{"min_reps": 9, "max_reps": 2}`,
		`{"unknown_field": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q = %d", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
