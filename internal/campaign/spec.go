// Package campaign is the batch layer over the experiment API: it expands a
// declarative Spec (protocols × sweep axes × replication policy) into a run
// set, executes it on a work-stealing worker pool over the cancellable
// core runner, aggregates every metric cell online (Welford moments,
// Student-t 95% confidence intervals), stops cells early once their
// estimates are tight enough, and journals completed runs to a JSONL
// checkpoint so a killed campaign resumes bit-identically.
//
// Determinism contract: every run's seed is content-derived from the base
// seed and the cell label (sim.DeriveSeed), runs themselves are
// deterministic, and per-cell aggregation commits replications in
// replication order regardless of completion order. A campaign that is
// interrupted (context cancellation or process death) and resumed from its
// journal therefore produces a Result that is reflect.DeepEqual to the
// uninterrupted one.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"adhocsim/internal/core"
	"adhocsim/internal/metrics"
	"adhocsim/internal/phy"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// AxisSpec names a catalogue axis ("pause", "nodes", "txrange", …; see
// core.AxisNames) and the values to visit. Nil or empty Values select the
// axis defaults. The categorical model axes ("mobility", "traffic") take
// registry model names via Models instead — e.g.
// {"name": "mobility", "models": ["waypoint", "gauss-markov", "manhattan"]} —
// and sweep the scenario family as a grid dimension.
type AxisSpec struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values,omitempty"`
	Models []string  `json:"models,omitempty"`
}

// ScenarioPatch overrides individual fields of the default study scenario
// (scenario.Default) in JSON-friendly units. Only fields present in the JSON
// override; absent fields keep the study defaults. It exists so HTTP clients
// can shape scenarios without knowing the simulator's nanosecond clock.
type ScenarioPatch struct {
	Nodes        *int     `json:"nodes,omitempty"`
	AreaW        *float64 `json:"area_w_m,omitempty"`
	AreaH        *float64 `json:"area_h_m,omitempty"`
	DurationS    *float64 `json:"duration_s,omitempty"`
	PauseS       *float64 `json:"pause_s,omitempty"`
	MaxSpeed     *float64 `json:"max_speed_mps,omitempty"`
	MinSpeed     *float64 `json:"min_speed_mps,omitempty"`
	Sources      *int     `json:"sources,omitempty"`
	Rate         *float64 `json:"rate_pps,omitempty"`
	PayloadBytes *int     `json:"payload_bytes,omitempty"`
	TxRange      *float64 `json:"tx_range_m,omitempty"`
	CSRange      *float64 `json:"cs_range_m,omitempty"`
	// Mobility/Traffic select registered scenario models by name with
	// optional parameters, e.g. {"name": "gauss-markov", "params":
	// {"alpha": 0.85}}. Absent fields keep the study models (random
	// waypoint, CBR).
	Mobility *scenario.MobilitySpec `json:"mobility,omitempty"`
	Traffic  *scenario.TrafficSpec  `json:"traffic,omitempty"`
	// Radio selects a registered radio/propagation model and the
	// reception mode, e.g. {"name": "shadowing", "params":
	// {"sigma_db": 6}, "sinr": true}. Absent keeps the study radio
	// (two-ray ground, pairwise capture).
	Radio *scenario.RadioSpec `json:"radio,omitempty"`
	// Lifecycle selects a registered node-lifecycle (churn) model by name
	// with optional parameters, e.g. {"name": "onoff-fail", "params":
	// {"mean_up_s": 60}}. Absent keeps the study's static membership.
	Lifecycle *scenario.LifecycleSpec `json:"lifecycle,omitempty"`
	// Workers enables intra-run parallelism (phy.Config.Workers) for every
	// unit of the campaign. It is an execution knob, not a scenario field:
	// results are byte-identical at any worker count, so it deliberately
	// does NOT enter the cell specs, the plan hash, or the run-unit
	// digests — cached results recorded at one worker count keep serving
	// campaigns resubmitted at another.
	Workers *int `json:"workers,omitempty"`
}

func (p ScenarioPatch) apply(s *scenario.Spec) {
	if p.Nodes != nil {
		s.Nodes = *p.Nodes
	}
	if p.AreaW != nil {
		s.Area.W = *p.AreaW
	}
	if p.AreaH != nil {
		s.Area.H = *p.AreaH
	}
	if p.DurationS != nil {
		s.Duration = sim.Seconds(*p.DurationS)
	}
	if p.PauseS != nil {
		s.Pause = sim.Seconds(*p.PauseS)
	}
	if p.MaxSpeed != nil {
		s.MaxSpeed = *p.MaxSpeed
		if s.MinSpeed > s.MaxSpeed {
			s.MinSpeed = s.MaxSpeed
		}
	}
	if p.MinSpeed != nil {
		s.MinSpeed = *p.MinSpeed
	}
	if p.Sources != nil {
		s.Sources = *p.Sources
	}
	if p.Rate != nil {
		s.Rate = *p.Rate
	}
	if p.PayloadBytes != nil {
		s.PayloadBytes = *p.PayloadBytes
	}
	if p.TxRange != nil {
		s.TxRange = *p.TxRange
	}
	if p.CSRange != nil {
		s.CSRange = *p.CSRange
	}
	if p.Mobility != nil {
		s.Mobility = *p.Mobility
	}
	if p.Traffic != nil {
		s.Traffic = *p.Traffic
	}
	if p.Radio != nil {
		s.Radio = *p.Radio
	}
	if p.Lifecycle != nil {
		s.Lifecycle = *p.Lifecycle
	}
}

// Spec declares one replication campaign: the scenario family, the protocols
// compared, the swept axes (full cross product), and the replication policy.
type Spec struct {
	// Name labels the campaign in snapshots, results and journals.
	Name string `json:"name,omitempty"`
	// Base patches the default study scenario; see ScenarioPatch.
	Base ScenarioPatch `json:"base,omitempty"`
	// Scenario, when non-nil, replaces the patched default entirely. It is
	// the Go-caller override and is not expressible over HTTP.
	Scenario *scenario.Spec `json:"-"`
	// Protocols to compare; empty selects the five study protocols.
	Protocols []string `json:"protocols,omitempty"`
	// Axes are crossed into the cell grid; empty runs a single point.
	Axes []AxisSpec `json:"axes,omitempty"`
	// BaseSeed roots the deterministic per-run seed derivation (default 1).
	BaseSeed int64 `json:"base_seed,omitempty"`
	// MinReps is the minimum replications per cell before the sequential
	// stopping rule may fire (default 2 when Epsilon is set, else MaxReps).
	MinReps int `json:"min_reps,omitempty"`
	// MaxReps caps replications per cell (default 3).
	MaxReps int `json:"max_reps,omitempty"`
	// Epsilon maps metric names (core.MetricByName; "pdr", "delay", …) to
	// target 95% confidence half-widths in the metric's own unit. A cell
	// stops replicating early once every listed metric's half-width is at
	// or below its target (and at least MinReps replications committed).
	// Empty disables early stopping: every cell runs exactly MaxReps.
	Epsilon map[string]float64 `json:"epsilon,omitempty"`
}

// Cell is one grid point of the expanded campaign: a protocol at one
// combination of axis values.
type Cell struct {
	Index    int       `json:"index"`
	Protocol string    `json:"protocol"`
	Point    []float64 `json:"point,omitempty"`
	// Label is the human-readable and seed-derivation identity of the cell,
	// e.g. "DSR|pause_s=0". It is content-derived, so reordering protocols
	// or axis values does not change any cell's replication seeds.
	Label string `json:"label"`

	spec scenario.Spec
}

// Plan is a fully-expanded, validated campaign: the resolved scenario, the
// cell grid, the tracked metrics, and the spec hash that guards journals
// against resuming under a different spec.
type Plan struct {
	Spec      Spec
	Base      scenario.Spec
	Protocols []string
	Labels    []string
	Points    [][]float64
	Cells     []Cell
	Metrics   []core.Metric
	Hash      string
	// Workers is the per-unit intra-run worker count (0 = sequential).
	// Execution-only: excluded from Hash and UnitKey by construction.
	Workers int
}

// MaxRuns is the size of the run set before early stopping.
func (p *Plan) MaxRuns() int { return len(p.Cells) * p.Spec.MaxReps }

// SeedFor derives the deterministic seed of one (cell, replication) run.
func (p *Plan) SeedFor(cell, rep int) int64 {
	return sim.DeriveSeed(p.Spec.BaseSeed, p.Cells[cell].Label+"|rep="+strconv.Itoa(rep))
}

// ExecuteUnit runs one (cell, replication) unit of the plan. It is a pure
// function of the plan and the indices — no campaign state — which is what
// makes a unit executable by any process that expanded the same spec: the
// distributed worker loop calls it on its own copy of the plan.
//
// Every unit runs with stream sinks attached — per-kind quantile sketches
// and a bucketed time series — and packs their serialized state into
// Results.Streams, so journal entries and distributed commits carry exactly
// the state the campaign needs for cross-replication percentiles.
func (p *Plan) ExecuteUnit(ctx context.Context, cell, rep int) (stats.Results, error) {
	c := p.Cells[cell]
	sk := metrics.NewSketchSink(metrics.DefaultCompression, metrics.SketchedKinds...)
	win := metrics.NewWindow(c.spec.Duration, metrics.DefaultSeriesBuckets)
	res, err := core.Run(ctx, core.RunConfig{
		Spec:     c.spec,
		Protocol: c.Protocol,
		Seed:     p.SeedFor(cell, rep),
		Phy:      phy.Config{Workers: p.Workers},
		Sinks:    []metrics.Sink{sk, win},
	})
	if err != nil {
		return res, err
	}
	res.Streams = &metrics.RunStreams{Sketches: sk.States(), Series: win.State()}
	return res, nil
}

// UnitKey is the content address of one run unit: a digest of everything
// that determines its result — the cell's fully-resolved scenario, the
// protocol, and the derived seed. Two campaigns whose grids overlap (same
// base scenario, same base seed) produce identical keys for the shared
// units, so a content-addressed result cache serves across campaign
// boundaries, not just on exact resubmission. (encoding/json sorts map
// keys, so the digest is canonical.)
func (p *Plan) UnitKey(cell, rep int) string {
	payload := struct {
		Scenario scenario.Spec
		Protocol string
		Seed     int64
		// Format versions the result payload a unit produces. v2 added
		// Results.Streams; bumping it invalidates cache entries recorded
		// without stream digests rather than serving them silently.
		Format int
	}{p.Cells[cell].spec, p.Cells[cell].Protocol, p.SeedFor(cell, rep), 2}
	b, err := json.Marshal(payload)
	if err != nil {
		// A plan that expanded cannot fail to marshal; guard anyway.
		panic(fmt.Sprintf("campaign: hashing unit: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Expand validates the spec and expands it into a Plan. The returned plan's
// Spec has all defaults filled in.
func (s Spec) Expand() (*Plan, error) {
	// Replication policy defaults.
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.MaxReps == 0 {
		s.MaxReps = 3
	}
	if s.MaxReps < 1 {
		return nil, fmt.Errorf("campaign: max_reps %d < 1", s.MaxReps)
	}
	if s.MinReps == 0 {
		if len(s.Epsilon) > 0 {
			s.MinReps = 2
			if s.MinReps > s.MaxReps {
				s.MinReps = s.MaxReps
			}
		} else {
			s.MinReps = s.MaxReps
		}
	}
	if s.MinReps < 1 || s.MinReps > s.MaxReps {
		return nil, fmt.Errorf("campaign: min_reps %d outside [1, max_reps=%d]", s.MinReps, s.MaxReps)
	}
	eps := make(map[string]float64, len(s.Epsilon))
	for name, e := range s.Epsilon {
		m, err := core.MetricByName(name)
		if err != nil {
			return nil, fmt.Errorf("campaign: epsilon: %w", err)
		}
		if e <= 0 {
			return nil, fmt.Errorf("campaign: epsilon[%s] = %v must be > 0", name, e)
		}
		eps[m.Name] = e
	}
	s.Epsilon = eps
	if len(eps) == 0 {
		s.Epsilon = nil
	}

	// Protocols: default to the study set, validate against the registry.
	if len(s.Protocols) == 0 {
		s.Protocols = core.StudyProtocols()
	}
	registered := make(map[string]bool)
	for _, name := range core.RegisteredProtocols() {
		registered[name] = true
	}
	protocols := make([]string, len(s.Protocols))
	seenProto := make(map[string]bool, len(s.Protocols))
	for i, name := range s.Protocols {
		canon := strings.ToUpper(strings.TrimSpace(name))
		if !registered[canon] {
			return nil, fmt.Errorf("campaign: unknown protocol %q (registered: %s)",
				name, strings.Join(core.RegisteredProtocols(), ", "))
		}
		if seenProto[canon] {
			// Duplicates would produce cells with identical labels and
			// therefore identical replication seeds — pure wasted work.
			return nil, fmt.Errorf("campaign: protocol %q listed twice", canon)
		}
		seenProto[canon] = true
		protocols[i] = canon
	}
	s.Protocols = protocols

	// Scenario: the Go-side override wins, else patch the study default.
	// Workers rides on the patch for JSON convenience but is pulled out
	// here — it must never reach the scenario (and so the digests).
	workers := 0
	if s.Base.Workers != nil {
		workers = *s.Base.Workers
		if workers < 0 {
			return nil, fmt.Errorf("campaign: negative worker count %d", workers)
		}
	}
	base := scenario.Default()
	s.Base.apply(&base)
	if s.Scenario != nil {
		base = *s.Scenario
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}

	// Axes: resolve catalogue names and default values against the base.
	axes := make([]core.Axis, len(s.Axes))
	labels := make([]string, len(s.Axes))
	seenAxis := make(map[string]bool, len(s.Axes))
	for i, as := range s.Axes {
		var axis core.Axis
		var err error
		if len(as.Models) > 0 {
			if len(as.Values) > 0 {
				return nil, fmt.Errorf("campaign: axis %q sets both values and models", as.Name)
			}
			axis, err = core.ModelAxisByName(as.Name, as.Models)
		} else {
			axis, err = core.AxisByName(as.Name, as.Values)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		axis, err = axis.Resolved(base)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if seenAxis[axis.Label] {
			return nil, fmt.Errorf("campaign: axis %q listed twice", as.Name)
		}
		seenAxis[axis.Label] = true
		axes[i] = axis
		labels[i] = axis.Label
	}

	// The cell grid enumerates in the same order core.Grid does. Each grid
	// point's patched scenario is dry-run validated here — a sweep value
	// that produces an impossible run (a churn window past the horizon, a
	// source count above a swept-down node count) fails at submission time,
	// not mid-campaign. Points share their spec across protocols, so each
	// is checked once.
	cross := core.CrossPoints(axes)
	pointSpecs := make([]scenario.Spec, len(cross))
	pointLabels := make([]string, len(cross))
	for pi, pt := range cross {
		spec := base
		label := ""
		for a := range axes {
			axes[a].Apply(&spec, pt[a])
			label += "|" + axes[a].Label + "=" + axes[a].FormatValue(pt[a])
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: cell %q: %w", strings.TrimPrefix(label, "|"), err)
		}
		pointSpecs[pi] = spec
		pointLabels[pi] = label
	}

	cells := make([]Cell, 0, len(protocols)*len(cross))
	for _, proto := range protocols {
		for pi, pt := range cross {
			cells = append(cells, Cell{
				Index:    len(cells),
				Protocol: proto,
				Point:    pt,
				Label:    proto + pointLabels[pi],
				spec:     pointSpecs[pi],
			})
		}
	}

	p := &Plan{
		Spec:      s,
		Base:      base,
		Protocols: protocols,
		Labels:    labels,
		Points:    cross,
		Cells:     cells,
		Metrics:   core.Metrics(),
		Workers:   workers,
	}
	hash, err := p.hash()
	if err != nil {
		return nil, err
	}
	p.Hash = hash
	return p, nil
}

// hash fingerprints everything that determines the run set and its
// aggregation: the resolved scenario, protocols, grid, seeds and stopping
// policy. Journals record it so a checkpoint cannot silently resume under a
// different spec. (encoding/json sorts map keys, so the digest is canonical.)
func (p *Plan) hash() (string, error) {
	// Cell labels fingerprint the formatted axis values too: categorical
	// model axes encode indices in Points, so two campaigns sweeping
	// different model lists would otherwise hash identically.
	cellLabels := make([]string, len(p.Cells))
	for i := range p.Cells {
		cellLabels[i] = p.Cells[i].Label
	}
	fingerprint := struct {
		Base       scenario.Spec
		Protocols  []string
		Labels     []string
		Points     [][]float64
		CellLabels []string
		BaseSeed   int64
		MinReps    int
		MaxReps    int
		Epsilon    map[string]float64
	}{p.Base, p.Protocols, p.Labels, p.Points, cellLabels, p.Spec.BaseSeed, p.Spec.MinReps, p.Spec.MaxReps, p.Spec.Epsilon}
	b, err := json.Marshal(fingerprint)
	if err != nil {
		return "", fmt.Errorf("campaign: hashing spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
