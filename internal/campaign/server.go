package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Server manages campaigns over HTTP: submit a Spec, watch its progress,
// fetch its aggregate, cancel it. It is the simulation-service face of the
// campaign engine — cmd/adhocd is a thin main around it, and tests drive it
// through net/http/httptest.
//
//	POST   /campaigns              submit a JSON Spec        → 201 + {id,…}
//	GET    /campaigns              list snapshots
//	GET    /campaigns/{id}         live progress snapshot
//	GET    /campaigns/{id}/results aggregated Result (409 while running)
//	DELETE /campaigns/{id}         cancel (context cancellation)
type Server struct {
	opts ServerOptions

	// base context: cancelling it (Close) cancels every campaign.
	base   context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	seq       int
	campaigns map[string]*managed
}

// ServerOptions configure the campaign service.
type ServerOptions struct {
	// Workers sizes each campaign's worker pool (default GOMAXPROCS).
	Workers int
	// JournalDir, when non-empty, gives every campaign a checkpoint journal
	// at <dir>/<id>.jsonl, so a restarted daemon's campaigns can be resumed
	// by resubmitting the same spec under the same id path.
	JournalDir string
}

type managed struct {
	id          string
	c           *Campaign
	cancel      context.CancelFunc
	done        chan struct{}
	journalPath string
}

// finished reports whether the campaign's goroutine has exited.
func (m *managed) finished() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// NewServer creates a campaign service.
func NewServer(opts ServerOptions) *Server {
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:      opts,
		base:      base,
		cancel:    cancel,
		campaigns: make(map[string]*managed),
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleCreate)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleDelete)
	return mux
}

// Close cancels every campaign and waits for their workers to drain.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	all := make([]*managed, 0, len(s.campaigns))
	for _, m := range s.campaigns {
		all = append(all, m)
	}
	s.mu.Unlock()
	for _, m := range all {
		<-m.done
	}
}

// createdResponse is the POST /campaigns reply.
type createdResponse struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Cells   int    `json:"cells"`
	MaxRuns int    `json:"max_runs"`
	Journal string `json:"journal,omitempty"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}

	c, err := New(spec, Options{Workers: s.opts.Workers})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.opts.JournalDir != "" {
		// The journal is keyed by the spec hash, not the campaign id: ids
		// restart at c1 after a daemon restart, but a spec always maps to
		// the same checkpoint file, so resubmitting it resumes the journal
		// and distinct specs can never collide with a previous life's
		// files. (Run reads the path later; it has not started yet.)
		c.opts.JournalPath = filepath.Join(s.opts.JournalDir, c.Plan().Hash[:16]+".jsonl")
	}

	ctx, cancel := context.WithCancel(s.base)
	s.mu.Lock()
	if c.opts.JournalPath != "" {
		// Two live campaigns must not append to one journal.
		for _, m := range s.campaigns {
			if m.journalPath == c.opts.JournalPath && !m.finished() {
				s.mu.Unlock()
				cancel()
				httpError(w, http.StatusConflict,
					fmt.Errorf("campaign %s is already running this spec (journal %s)", m.id, c.opts.JournalPath))
				return
			}
		}
	}
	s.seq++
	id := fmt.Sprintf("c%d", s.seq)
	m := &managed{id: id, c: c, cancel: cancel, done: make(chan struct{}), journalPath: c.opts.JournalPath}
	s.campaigns[id] = m
	s.mu.Unlock()
	go func() {
		defer close(m.done)
		defer cancel()
		// Outcome lives in the campaign itself: Result() for the aggregate,
		// Snapshot().Err for failures.
		_, _ = c.Run(ctx)
	}()

	writeJSON(w, http.StatusCreated, createdResponse{
		ID:      id,
		URL:     "/campaigns/" + id,
		Cells:   len(c.Plan().Cells),
		MaxRuns: c.Plan().MaxRuns(),
		Journal: c.opts.JournalPath,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	// Numeric-suffix ids ("c1", "c2", …): sort by length then value gives
	// submission order.
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	type listed struct {
		ID string `json:"id"`
		Snapshot
	}
	out := make([]listed, 0, len(ids))
	for _, id := range ids {
		if m := s.lookup(id); m != nil {
			out = append(out, listed{ID: id, Snapshot: m.c.Snapshot()})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) *managed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m.c.Snapshot())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	snap := m.c.Snapshot()
	switch snap.State {
	case StateDone:
		// Read the aggregate from the campaign itself: it is stored under
		// the same lock that flips the state to done, so a done snapshot
		// guarantees a non-nil Result (the managed goroutine's own copy is
		// stored later, after Run returns).
		writeJSON(w, http.StatusOK, m.c.Result())
	case StateFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("campaign failed: %s", snap.Err))
	default:
		// Pending, running, or cancelled: no final aggregate to serve.
		writeJSON(w, http.StatusConflict, snap)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	m.cancel()
	// Cancellation is polled inside the event loops, so the drain is prompt;
	// wait for it and report the terminal state.
	<-m.done
	writeJSON(w, http.StatusOK, m.c.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	msg := strings.TrimSpace(err.Error())
	writeJSON(w, status, map[string]string{"error": msg})
}
