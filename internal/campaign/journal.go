package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"adhocsim/internal/stats"
)

// The journal is a JSONL checkpoint: a header line identifying the campaign
// spec, then one line per completed run. Lines are appended as runs finish,
// so a killed campaign loses at most the in-flight runs; a trailing partial
// line (death mid-write) is detected and truncated away on resume. Because
// run seeds are content-derived and runs are deterministic, replaying the
// journal and re-executing only the missing runs reproduces the
// uninterrupted campaign bit-for-bit.

// journalVersion 2 added serialized stream digests (Results.Streams) to
// every entry; v1 journals are rejected rather than resumed into results
// whose percentiles would silently miss the journaled replications.
const journalVersion = 2

type journalHeader struct {
	Version  int    `json:"version"`
	SpecHash string `json:"spec_hash"`
	Name     string `json:"name,omitempty"`
	Cells    int    `json:"cells"`
	MaxReps  int    `json:"max_reps"`
}

type journalEntry struct {
	Cell    int           `json:"cell"`
	Rep     int           `json:"rep"`
	Seed    int64         `json:"seed"`
	Results stats.Results `json:"results"`
}

// journal appends completed runs to the checkpoint file.
type journal struct {
	f *os.File
}

// openFileLocked opens the journal file and takes an exclusive advisory
// lock (where the platform supports one), so two processes resuming the
// same checkpoint cannot interleave truncates and appends.
func openFileLocked(path string, flags int) (*os.File, error) {
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: journal %s is in use by another process: %w", path, err)
	}
	return f, nil
}

// startFresh creates (or restarts) the journal file and writes its header.
// The file is never opened with O_TRUNC: truncation happens only after the
// lock is held, so restarting an empty-looking journal cannot wipe one that
// a live process is already writing (advisory locks cannot stop an open).
func startFresh(path string, flags int, plan *Plan) (*journal, []journalEntry, error) {
	f, err := openFileLocked(path, flags)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: restarting journal: %w", err)
	}
	j := &journal{f: f}
	if err := j.writeLine(journalHeader{
		Version:  journalVersion,
		SpecHash: plan.Hash,
		Name:     plan.Spec.Name,
		Cells:    len(plan.Cells),
		MaxReps:  plan.Spec.MaxReps,
	}); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, nil, nil
}

// openJournal opens (or creates) the checkpoint at path for the given plan
// and returns the journal plus every valid entry already recorded. A header
// mismatch (different spec, different format version) is an error; a partial
// trailing line is truncated so subsequent appends start on a clean line.
func openJournal(path string, plan *Plan) (*journal, []journalEntry, error) {
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return startFresh(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, plan)
	case err != nil:
		return nil, nil, fmt.Errorf("campaign: reading journal: %w", err)
	}

	if len(bytes.TrimSpace(data)) == 0 {
		// An existing but empty file (killed before the header landed):
		// start it over.
		return startFresh(path, os.O_WRONLY, plan)
	}

	// Existing journal: validate the header, replay complete lines, and
	// remember where the last valid line ends so garbage can be cut off.
	head, rest, ok := cutLine(data)
	if !ok {
		return nil, nil, fmt.Errorf("campaign: journal %s has no complete header line", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(head, &hdr); err != nil {
		return nil, nil, fmt.Errorf("campaign: journal %s: bad header: %w", path, err)
	}
	if hdr.Version != journalVersion {
		return nil, nil, fmt.Errorf("campaign: journal %s is format v%d, want v%d", path, hdr.Version, journalVersion)
	}
	if hdr.SpecHash != plan.Hash {
		return nil, nil, fmt.Errorf("campaign: journal %s belongs to a different campaign spec (hash %.12s…, want %.12s…)",
			path, hdr.SpecHash, plan.Hash)
	}

	var entries []journalEntry
	validLen := len(data) - len(rest)
	for {
		line, tail, ok := cutLine(rest)
		if !ok {
			break // unterminated trailing line: drop it
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn write: drop this line and everything after
		}
		if e.Cell < 0 || e.Cell >= len(plan.Cells) || e.Rep < 0 || e.Rep >= plan.Spec.MaxReps {
			return nil, nil, fmt.Errorf("campaign: journal %s: entry (cell %d, rep %d) outside the plan", path, e.Cell, e.Rep)
		}
		if want := plan.SeedFor(e.Cell, e.Rep); e.Seed != want {
			return nil, nil, fmt.Errorf("campaign: journal %s: entry (cell %d, rep %d) has seed %d, want %d",
				path, e.Cell, e.Rep, e.Seed, want)
		}
		entries = append(entries, e)
		rest = tail
		validLen = len(data) - len(rest)
	}

	f, err := openFileLocked(path, os.O_WRONLY)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: seeking journal: %w", err)
	}
	return &journal{f: f}, entries, nil
}

// cutLine splits data at the first newline. ok is false when no terminated
// line remains.
func cutLine(data []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, data, false
	}
	return data[:i], data[i+1:], true
}

// writeLine appends one JSON value as a line. Each line is a single Write
// call, so concurrent appends (serialized by the campaign mutex) and crashes
// can tear at most the final line.
func (j *journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: encoding journal line: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("campaign: appending journal line: %w", err)
	}
	return nil
}

func (j *journal) append(e journalEntry) error { return j.writeLine(e) }

func (j *journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
