package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"adhocsim/internal/core"
)

func resumeSpec() Spec {
	return Spec{
		Name:      "resume-test",
		Scenario:  tinyScenario(),
		Protocols: []string{core.DSR, core.Flood},
		MaxReps:   3,
		BaseSeed:  7,
	}
}

// journalLines splits a journal file into its header and entry lines.
func journalLines(t *testing.T, path string) (header string, entries []string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	return lines[0], lines[1:]
}

// TestResumeFromJournalPrefixes is the checkpoint/resume acceptance test: a
// campaign killed after any prefix of its journal must resume to a Result
// that is reflect.DeepEqual to the uninterrupted one.
func TestResumeFromJournalPrefixes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	basePath := filepath.Join(dir, "base.jsonl")
	want, err := Run(ctx, resumeSpec(), Options{JournalPath: basePath})
	if err != nil {
		t.Fatal(err)
	}

	// Journaling itself must not change the aggregate.
	plain, err := Run(ctx, resumeSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, want) {
		t.Fatal("journaled and journal-free campaigns diverge")
	}

	header, entries := journalLines(t, basePath)
	if len(entries) != 6 { // 2 cells × 3 reps, no early stopping
		t.Fatalf("journal holds %d entries", len(entries))
	}

	prefixes := []int{0, 1, 3, 5, 6}
	if testing.Short() {
		prefixes = []int{0, 3, 6}
	}
	for _, k := range prefixes {
		path := filepath.Join(dir, "prefix.jsonl")
		content := header + "\n" + strings.Join(entries[:k], "\n")
		if k > 0 {
			content += "\n"
		}
		// Simulate death mid-append: a torn, unterminated trailing line.
		content += `{"cell":0,"rep"`
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := New(resumeSpec(), Options{JournalPath: path})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(ctx)
		if err != nil {
			t.Fatalf("resume after %d entries: %v", k, err)
		}
		if snap := c.Snapshot(); snap.RunsFromJournal != k {
			t.Fatalf("resume after %d entries replayed %d", k, snap.RunsFromJournal)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resume after %d entries diverges from uninterrupted run", k)
		}
		// The resumed journal must now be complete: resuming again runs
		// nothing and still agrees.
		c2, err := New(resumeSpec(), Options{JournalPath: path})
		if err != nil {
			t.Fatal(err)
		}
		again, err := c2.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap := c2.Snapshot(); snap.RunsFromJournal != 6 {
			t.Fatalf("second resume replayed %d entries", snap.RunsFromJournal)
		}
		if !reflect.DeepEqual(again, want) {
			t.Fatal("fully-journaled resume diverges")
		}
		os.Remove(path)
	}
}

// TestResumeAfterCancellation interrupts a live campaign via context
// cancellation mid-flight, then resumes from its journal.
func TestResumeAfterCancellation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cancelled.jsonl")

	want, err := Run(context.Background(), resumeSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, resumeSpec(), Options{
		JournalPath: path,
		Workers:     2,
		OnProgress: func(s Snapshot) {
			if s.RunsDone >= 2 {
				cancel()
			}
		},
	})
	if !isCancel(err) {
		t.Fatalf("interrupted campaign returned %v", err)
	}

	got, err := Run(context.Background(), resumeSpec(), Options{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed-after-cancel result diverges from uninterrupted run")
	}
}

// TestJournalExclusiveLock: two processes (here: two opens) must not share
// one checkpoint — the second open fails instead of corrupting the file.
func TestJournalExclusiveLock(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("flock is unix-only")
	}
	plan, err := resumeSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, err := openJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, err := openJournal(path, plan); err == nil ||
		!strings.Contains(err.Error(), "in use by another process") {
		t.Fatalf("concurrent open: %v", err)
	}
}

func TestJournalSpecMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	if _, err := Run(context.Background(), resumeSpec(), Options{JournalPath: path}); err != nil {
		t.Fatal(err)
	}
	other := resumeSpec()
	other.MaxReps = 2
	if _, err := Run(context.Background(), other, Options{JournalPath: path}); err == nil ||
		!strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("mismatched journal accepted: %v", err)
	}
}
