package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"adhocsim/internal/metrics"
	"adhocsim/internal/stats"
)

// State of a campaign's lifecycle.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Stop reasons recorded per cell.
const (
	StopCI      = "ci"       // sequential rule: every epsilon target met
	StopMaxReps = "max_reps" // replication cap reached
)

// Options configure campaign execution.
type Options struct {
	// Workers sizes the worker pool (default GOMAXPROCS).
	Workers int
	// JournalPath, when non-empty, checkpoints every completed run to a
	// JSONL file. If the file already holds a journal of the same spec, the
	// campaign resumes from it instead of starting over.
	JournalPath string
	// OnProgress, when non-nil, observes a Snapshot after every completed
	// run. Calls are serialized under the campaign mutex: keep it fast and
	// do not call back into the campaign from it.
	OnProgress func(Snapshot)
}

// Snapshot is a point-in-time view of campaign progress, safe to read while
// the campaign runs. Operational counters live here (not in Result) so that
// resumed and uninterrupted campaigns can produce identical Results even
// though they executed different numbers of runs.
type Snapshot struct {
	Name            string `json:"name,omitempty"`
	State           State  `json:"state"`
	Cells           int    `json:"cells"`
	CellsStopped    int    `json:"cells_stopped"`
	RunsDone        int    `json:"runs_done"`
	RunsFromJournal int    `json:"runs_from_journal,omitempty"`
	RunsFromCache   int    `json:"runs_from_cache,omitempty"`
	MaxRuns         int    `json:"max_runs"`
	Err             string `json:"error,omitempty"`
}

// CellResult is the aggregate of one cell's committed replications.
type CellResult struct {
	Protocol string    `json:"protocol"`
	Point    []float64 `json:"point,omitempty"`
	Label    string    `json:"label"`
	// Reps is the number of replications the sequential rule committed.
	Reps       int    `json:"reps"`
	StopReason string `json:"stop_reason"`
	// Merged is the replication-merged metric set (the same shape the sweep
	// and grid JSON exports use).
	Merged stats.Results `json:"merged"`
	// Metrics maps each catalogue metric to its cross-replication summary,
	// including the Student-t 95% confidence half-width.
	Metrics map[string]stats.Summary `json:"metrics"`
	// Quantiles maps sketched sample kinds ("delay", "hops") to percentile
	// summaries over every delivered packet of every committed replication —
	// per-packet distributions, not per-run means. Nil when the cell's runs
	// carried no stream digests.
	Quantiles map[string]metrics.QuantileSummary `json:"quantiles,omitempty"`
	// Series is the bucket-wise sum of the per-run time series of every
	// committed replication. Nil when runs carried no stream digests.
	Series *metrics.SeriesState `json:"series,omitempty"`
}

// Result is the final aggregate of a campaign. It is a pure function of the
// spec: interrupted-and-resumed campaigns produce a Result that is
// reflect.DeepEqual to an uninterrupted run's.
type Result struct {
	Name       string       `json:"name,omitempty"`
	SpecHash   string       `json:"spec_hash"`
	Protocols  []string     `json:"protocols"`
	AxisLabels []string     `json:"axis_labels,omitempty"`
	Points     [][]float64  `json:"points,omitempty"`
	Cells      []CellResult `json:"cells"`
}

// cellState is the engine-side accumulation for one cell.
type cellState struct {
	// results[rep] is set when that replication has completed (executed or
	// replayed from the journal); commits consume the contiguous prefix.
	results []*stats.Results
	// issued[rep] marks replications handed to a worker (or journaled), so
	// the dispatcher never double-runs one.
	issued []bool
	// committed is the length of the prefix folded into acc, in replication
	// order — this ordering is what makes aggregation completion-order
	// independent and therefore resumable bit-identically.
	committed  int
	acc        []stats.Welford // parallel to Plan.Metrics
	stopped    bool
	stopReason string
	// sketches and series aggregate the committed replications' stream
	// digests, folded strictly in replication order by commitLocked — the
	// same in-order discipline as acc, so resume and distributed execution
	// reproduce bit-identical percentiles.
	sketches map[string]*metrics.Sketch
	series   *metrics.SeriesState
}

// foldStreams merges one committed run's stream digest into the cell
// aggregate. Kinds are independent sketches, so map iteration order does not
// affect any per-kind result. Returns the first geometry error (impossible
// for digests produced by the same plan).
func (cs *cellState) foldStreams(st *metrics.RunStreams) error {
	if st == nil {
		return nil
	}
	if len(st.Sketches) > 0 && cs.sketches == nil {
		cs.sketches = make(map[string]*metrics.Sketch, len(st.Sketches))
	}
	for name, state := range st.Sketches {
		if sk := cs.sketches[name]; sk != nil {
			sk.MergeState(state)
		} else {
			cs.sketches[name] = metrics.FromState(state)
		}
	}
	if st.Series != nil {
		if cs.series == nil {
			cs.series = st.Series.Clone()
		} else if err := cs.series.Merge(st.Series); err != nil {
			return err
		}
	}
	return nil
}

// Campaign executes one expanded Plan. Create with New, run once with Run;
// Snapshot may be called concurrently at any time.
type Campaign struct {
	plan *Plan
	opts Options

	// epsIdx maps Plan.Metrics indices to their epsilon targets.
	epsIdx map[int]float64

	mu              sync.Mutex
	state           State
	cells           []cellState
	journal         *journal
	cursorRound     int
	cursorCell      int
	runsDone        int
	runsFromJournal int
	runsFromCache   int
	err             error
	result          *Result
}

// New validates and expands the spec into a ready-to-run campaign. The
// journal (if any) is opened by Run, not New, so constructing a campaign has
// no filesystem side effects.
func New(spec Spec, opts Options) (*Campaign, error) {
	plan, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		plan:   plan,
		opts:   opts,
		epsIdx: make(map[int]float64),
		state:  StatePending,
		cells:  make([]cellState, len(plan.Cells)),
	}
	for mi, m := range plan.Metrics {
		if e, ok := plan.Spec.Epsilon[m.Name]; ok {
			c.epsIdx[mi] = e
		}
	}
	for i := range c.cells {
		c.cells[i] = cellState{
			results: make([]*stats.Results, plan.Spec.MaxReps),
			issued:  make([]bool, plan.Spec.MaxReps),
			acc:     make([]stats.Welford, len(plan.Metrics)),
		}
	}
	return c, nil
}

// Plan exposes the expanded plan (cells, seeds, hash).
func (c *Campaign) Plan() *Plan { return c.plan }

// SetJournalPath configures the checkpoint journal after construction (the
// HTTP services derive the path from the plan hash, which only exists once
// New has expanded the spec). It must be called before Start/Run.
func (c *Campaign) SetJournalPath(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts.JournalPath = path
}

// JournalPath reports the configured checkpoint journal ("" = none).
func (c *Campaign) JournalPath() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.JournalPath
}

// Start transitions the campaign to running: it opens the checkpoint journal
// (if configured), replays its entries, and readies the dispatch cursor. It
// is the first half of Run, exported so external schedulers — the
// distributed coordinator in internal/dist — can drive execution unit by
// unit through NextUnit/CompleteUnit/Finish instead of a local pool.
func (c *Campaign) Start() error {
	c.mu.Lock()
	if c.state != StatePending {
		c.mu.Unlock()
		return fmt.Errorf("campaign: started twice")
	}
	c.state = StateRunning
	c.mu.Unlock()

	if c.opts.JournalPath != "" {
		j, entries, err := openJournal(c.opts.JournalPath, c.plan)
		if err != nil {
			return c.fail(err)
		}
		c.mu.Lock()
		c.journal = j
		for _, e := range entries {
			c.replayLocked(e)
		}
		c.mu.Unlock()
	}
	return nil
}

// Run executes the campaign to completion (or cancellation) and returns the
// aggregate. It may be called once. It is the single-process composition of
// the unit primitives: Start, a local pool over NextUnit → Plan.ExecuteUnit
// → CompleteUnit, then Finish.
func (c *Campaign) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.Start(); err != nil {
		return nil, err
	}

	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci, rep, ok := c.NextUnit()
				if !ok {
					return
				}
				res, err := c.plan.ExecuteUnit(ctx, ci, rep)
				if err != nil {
					c.Abort(err)
					return
				}
				c.CompleteUnit(ci, rep, res, false)
			}
		}()
	}
	wg.Wait()

	return c.Finish(ctx)
}

// Finish settles the campaign after execution has drained: it evaluates the
// terminal state, builds the final aggregate, and closes the journal. It is
// idempotent — once the campaign is terminal, it returns the stored outcome.
func (c *Campaign) Finish(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := c.settle(ctx)
	c.CloseJournal()
	return res, err
}

// CloseJournal flushes and closes the checkpoint journal without settling
// the campaign. The graceful-shutdown path uses it to leave a suspended
// campaign's journal as clean, resumable recovery state; Finish calls it on
// the normal path.
func (c *Campaign) CloseJournal() {
	c.mu.Lock()
	j := c.journal
	c.journal = nil
	c.mu.Unlock()
	j.Close()
}

// fail records a pre-execution failure and returns it.
func (c *Campaign) fail(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setErrLocked(err)
	c.state = StateFailed
	if isCancel(c.err) {
		c.state = StateCancelled
	}
	return c.err
}

// settle computes the campaign's final state after the pool drained.
func (c *Campaign) settle(ctx context.Context) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Already terminal (Finish called twice): return the stored outcome.
	switch c.state {
	case StateDone:
		return c.result, nil
	case StateFailed, StateCancelled:
		return nil, c.err
	}
	// A campaign whose every cell has stopped is complete: a cancellation
	// that only interrupted speculative (never-to-be-committed) runs, or
	// that landed after the final commit, must not throw the aggregate
	// away — with no journal it would be unrecoverable.
	allStopped := true
	for i := range c.cells {
		if !c.cells[i].stopped {
			allStopped = false
			break
		}
	}
	if allStopped && isCancel(c.err) {
		c.err = nil
	}
	if c.err == nil && ctx.Err() != nil && !allStopped {
		// Cancellation raced the last dispatch: surface it rather than
		// returning a partial aggregate as if it were complete.
		c.err = ctx.Err()
	}
	if c.err != nil {
		if isCancel(c.err) {
			c.state = StateCancelled
			if ctx.Err() != nil {
				// Prefer the naked context error over a wrapped per-run one.
				c.err = ctx.Err()
			}
		} else {
			c.state = StateFailed
		}
		return nil, c.err
	}
	cells := make([]CellResult, len(c.plan.Cells))
	for ci := range c.plan.Cells {
		cs := &c.cells[ci]
		reps := make([]stats.Results, cs.committed)
		for r := 0; r < cs.committed; r++ {
			reps[r] = *cs.results[r]
		}
		summaries := make(map[string]stats.Summary, len(c.plan.Metrics))
		for mi, m := range c.plan.Metrics {
			summaries[m.Name] = cs.acc[mi].Summary()
		}
		var quantiles map[string]metrics.QuantileSummary
		if len(cs.sketches) > 0 {
			quantiles = make(map[string]metrics.QuantileSummary, len(cs.sketches))
			for name, sk := range cs.sketches {
				quantiles[name] = sk.Summary()
			}
		}
		cells[ci] = CellResult{
			Protocol:   c.plan.Cells[ci].Protocol,
			Point:      c.plan.Cells[ci].Point,
			Label:      c.plan.Cells[ci].Label,
			Reps:       cs.committed,
			StopReason: cs.stopReason,
			Merged:     stats.MergeResults(reps),
			Metrics:    summaries,
			Quantiles:  quantiles,
			Series:     cs.series,
		}
	}
	labels := c.plan.Labels
	if len(labels) == 0 {
		// nil, not []: axis_labels is omitempty, and a Result must survive a
		// JSON roundtrip bit-identically — the distributed coordinator's
		// DeepEqual guarantee covers the HTTP view too.
		labels = nil
	}
	c.result = &Result{
		Name:       c.plan.Spec.Name,
		SpecHash:   c.plan.Hash,
		Protocols:  c.plan.Protocols,
		AxisLabels: labels,
		Points:     c.plan.Points,
		Cells:      cells,
	}
	c.state = StateDone
	return c.result, nil
}

// NextUnit hands out the next useful (cell, replication) pair. Dispatch is
// breadth-first (replication rounds across all cells) so early-stop
// decisions are made before deep speculation, and forward-only: stopping
// only removes work, so a single monotone cursor visits each pair at most
// once. Workers exiting on !ok is correct because no new work ever appears
// from the cursor — a distributed coordinator that must re-issue a unit
// lost to a dead worker keeps its own re-issue queue and feeds the result
// back through CompleteUnit.
func (c *Campaign) NextUnit() (ci, rep int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, 0, false
	}
	for c.cursorRound < c.plan.Spec.MaxReps {
		for c.cursorCell < len(c.cells) {
			i := c.cursorCell
			c.cursorCell++
			cs := &c.cells[i]
			if cs.stopped || cs.issued[c.cursorRound] {
				continue
			}
			cs.issued[c.cursorRound] = true
			return i, c.cursorRound, true
		}
		c.cursorCell = 0
		c.cursorRound++
	}
	return 0, 0, false
}

// CompleteUnit records one executed run: journal it, then commit in
// replication order. Duplicates (journal overlap, a re-issued lease whose
// original worker turned out to be alive) are ignored — the first result
// wins, and determinism makes every copy identical anyway. fromCache marks
// results replayed from the content-addressed result cache; they are
// counted separately in snapshots but journaled like live completions, so
// a resumed campaign never depends on the cache still being populated.
// Completions arriving after the campaign settled are dropped.
func (c *Campaign) CompleteUnit(ci, rep int, res stats.Results, fromCache bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return
	}
	cs := &c.cells[ci]
	if cs.results[rep] != nil {
		return // duplicate; first result wins
	}
	// Remote and cache completions may bypass NextUnit entirely.
	cs.issued[rep] = true
	cs.results[rep] = &res
	c.runsDone++
	if fromCache {
		c.runsFromCache++
	}
	if c.journal != nil {
		if err := c.journal.append(journalEntry{
			Cell:    ci,
			Rep:     rep,
			Seed:    c.plan.SeedFor(ci, rep),
			Results: res,
		}); err != nil {
			c.setErrLocked(err)
			return
		}
	}
	c.commitLocked(ci)
	if c.opts.OnProgress != nil {
		c.opts.OnProgress(c.snapshotLocked())
	}
}

// replayLocked feeds one journaled run back into the engine: the result is
// stored and marked issued (never re-run), then committed exactly like a
// live completion — same values, same order, bit-identical accumulators.
func (c *Campaign) replayLocked(e journalEntry) {
	cs := &c.cells[e.Cell]
	if cs.results[e.Rep] != nil {
		return
	}
	res := e.Results
	cs.results[e.Rep] = &res
	cs.issued[e.Rep] = true
	c.runsDone++
	c.runsFromJournal++
	c.commitLocked(e.Cell)
}

// commitLocked folds the contiguous completed prefix of a cell into its
// Welford accumulators — always in replication order, never past a stop
// decision. Speculative results beyond the stop point stay uncommitted, so
// the aggregate does not depend on scheduling.
func (c *Campaign) commitLocked(ci int) {
	cs := &c.cells[ci]
	for !cs.stopped && cs.committed < c.plan.Spec.MaxReps && cs.results[cs.committed] != nil {
		r := cs.results[cs.committed]
		for mi := range c.plan.Metrics {
			cs.acc[mi].Add(c.plan.Metrics[mi].Value(*r))
		}
		if err := cs.foldStreams(r.Streams); err != nil {
			c.setErrLocked(err)
			return
		}
		cs.committed++
		if c.epsilonMetLocked(cs) {
			cs.stopped = true
			cs.stopReason = StopCI
		} else if cs.committed == c.plan.Spec.MaxReps {
			cs.stopped = true
			cs.stopReason = StopMaxReps
		}
	}
}

// epsilonMetLocked evaluates the sequential stopping rule on the committed
// prefix: at least MinReps replications, and every epsilon metric's 95%
// confidence half-width at or below its target.
func (c *Campaign) epsilonMetLocked(cs *cellState) bool {
	if len(c.epsIdx) == 0 || cs.committed < c.plan.Spec.MinReps {
		return false
	}
	for mi, eps := range c.epsIdx {
		if cs.acc[mi].CI95() > eps {
			return false
		}
	}
	return true
}

// UnitNeeded reports whether a (cell, replication) unit would still
// contribute: the campaign is running, the cell has not stopped, and no
// result for the unit has landed yet. The distributed coordinator consults
// it before re-issuing an expired lease.
func (c *Campaign) UnitNeeded(ci, rep int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning || c.err != nil {
		return false
	}
	cs := &c.cells[ci]
	return !cs.stopped && cs.results[rep] == nil
}

// UnitResult returns the recorded result of a unit, if any — the "winning"
// result a duplicate committer is told about.
func (c *Campaign) UnitResult(ci, rep int) (stats.Results, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs := &c.cells[ci]
	if cs.results[rep] == nil {
		return stats.Results{}, false
	}
	return *cs.results[rep], true
}

// CellStopped reports whether a cell's sequential stopping rule has fired
// (or its replication cap was reached).
func (c *Campaign) CellStopped(ci int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cells[ci].stopped
}

// AllStopped reports whether every cell has stopped — the moment a
// coordinator should Finish the campaign.
func (c *Campaign) AllStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.cells {
		if !c.cells[i].stopped {
			return false
		}
	}
	return true
}

// Err returns the first fatal error recorded so far (nil while healthy).
func (c *Campaign) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Abort records a fatal execution error; dispatch stops handing out units
// and Finish will report the failure. Cancellation errors lose to real
// failures recorded earlier or later.
func (c *Campaign) Abort(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setErrLocked(err)
}

func (c *Campaign) setErrLocked(err error) {
	if err == nil {
		return
	}
	if c.err == nil {
		c.err = err
		return
	}
	// A real failure outranks cancellation symptoms.
	if isCancel(c.err) && !isCancel(err) {
		c.err = err
	}
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Snapshot returns the current progress view; safe at any time, from any
// goroutine.
func (c *Campaign) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Campaign) snapshotLocked() Snapshot {
	stopped := 0
	for i := range c.cells {
		if c.cells[i].stopped {
			stopped++
		}
	}
	s := Snapshot{
		Name:            c.plan.Spec.Name,
		State:           c.state,
		Cells:           len(c.cells),
		CellsStopped:    stopped,
		RunsDone:        c.runsDone,
		RunsFromJournal: c.runsFromJournal,
		RunsFromCache:   c.runsFromCache,
		MaxRuns:         c.plan.MaxRuns(),
	}
	if c.err != nil {
		s.Err = c.err.Error()
	}
	return s
}

// Result returns the final aggregate once the campaign is done (nil before).
func (c *Campaign) Result() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result
}

// Run expands and executes a campaign in one call — the plain entry point
// for Go callers and the -campaign CLI mode.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	c, err := New(spec, opts)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx)
}
