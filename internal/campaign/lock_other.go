//go:build !unix

package campaign

import "os"

// lockFile is a no-op where flock is unavailable; concurrent resumes of the
// same journal are then unguarded, as documented in DESIGN.md.
func lockFile(f *os.File) error { return nil }
