package campaign

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// writeJournal writes a journal file from a header and entry lines.
func writeJournal(t *testing.T, path, header string, entries []string) {
	t.Helper()
	content := header + "\n"
	if len(entries) > 0 {
		content += strings.Join(entries, "\n") + "\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestExpandModelAxis: a grid axis sweeping mobility model names must
// produce one cell per model with name-carrying (seed-deriving) labels.
func TestExpandModelAxis(t *testing.T) {
	plan, err := Spec{
		Protocols: []string{"DSR"},
		Axes: []AxisSpec{
			{Name: "mobility", Models: []string{"waypoint", "gauss-markov", "manhattan"}},
		},
		MaxReps: 1,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 3 {
		t.Fatalf("cells = %d", len(plan.Cells))
	}
	want := []string{
		"DSR|mobility_model=waypoint",
		"DSR|mobility_model=gauss-markov",
		"DSR|mobility_model=manhattan",
	}
	for i, cell := range plan.Cells {
		if cell.Label != want[i] {
			t.Fatalf("cell %d label = %q, want %q", i, cell.Label, want[i])
		}
	}
	// Labels carry names, so replication seeds differ per model.
	if plan.SeedFor(0, 0) == plan.SeedFor(1, 0) {
		t.Fatal("model cells share replication seeds")
	}
}

// TestExpandModelAxisHashDependsOnModels: same indices, different model
// lists → different spec hashes, so a journal cannot silently resume under
// a different model sweep.
func TestExpandModelAxisHashDependsOnModels(t *testing.T) {
	expand := func(models []string) *Plan {
		plan, err := Spec{
			Protocols: []string{"DSR"},
			Axes:      []AxisSpec{{Name: "traffic", Models: models}},
			MaxReps:   1,
		}.Expand()
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	a := expand([]string{"cbr", "poisson"})
	b := expand([]string{"cbr", "expoo"})
	if a.Hash == b.Hash {
		t.Fatal("different model lists produced identical spec hashes")
	}
}

func TestExpandModelAxisErrors(t *testing.T) {
	bad := []Spec{
		{Axes: []AxisSpec{{Name: "mobility", Models: []string{"teleport"}}}},
		{Axes: []AxisSpec{{Name: "pause", Models: []string{"waypoint"}}}},
		{Axes: []AxisSpec{{Name: "mobility", Models: []string{"waypoint"}, Values: []float64{0}}}},
	}
	for i, s := range bad {
		if _, err := s.Expand(); err == nil {
			t.Fatalf("bad model axis %d accepted", i)
		}
	}
}

// TestScenarioPatchModels: the HTTP-facing patch selects models by name
// with parameters, and an unknown name fails expansion loudly.
func TestScenarioPatchModels(t *testing.T) {
	var spec Spec
	blob := `{
	  "base": {
	    "nodes": 12, "duration_s": 20,
	    "mobility": {"name": "gauss-markov", "params": {"alpha": 0.85}},
	    "traffic": {"name": "expoo", "params": {"on_s": 0.5, "off_s": 1.5}}
	  },
	  "protocols": ["DSR"],
	  "max_reps": 1
	}`
	if err := json.Unmarshal([]byte(blob), &spec); err != nil {
		t.Fatal(err)
	}
	plan, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Base.Mobility.Name != "gauss-markov" || plan.Base.Mobility.Params["alpha"] != 0.85 {
		t.Fatalf("mobility patch not applied: %+v", plan.Base.Mobility)
	}
	if plan.Base.Traffic.Name != "expoo" || plan.Base.Traffic.Params["off_s"] != 1.5 {
		t.Fatalf("traffic patch not applied: %+v", plan.Base.Traffic)
	}

	var badSpec Spec
	bad := `{"base": {"mobility": {"name": "teleport"}}, "max_reps": 1}`
	if err := json.Unmarshal([]byte(bad), &badSpec); err != nil {
		t.Fatal(err)
	}
	if _, err := badSpec.Expand(); err == nil {
		t.Fatal("unknown mobility model accepted")
	}
}

// TestExpandRadioAxisAndPatch: the radio model rides the same grid
// machinery as mobility/traffic — name-carrying labels, per-model seeds —
// and the HTTP patch selects a radio model with parameters and the SINR
// reception switch.
func TestExpandRadioAxisAndPatch(t *testing.T) {
	plan, err := Spec{
		Protocols: []string{"DSR"},
		Axes: []AxisSpec{
			{Name: "radio", Models: []string{"tworay", "freespace", "shadowing"}},
		},
		MaxReps: 1,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"DSR|radio_model=tworay",
		"DSR|radio_model=freespace",
		"DSR|radio_model=shadowing",
	}
	for i, cell := range plan.Cells {
		if cell.Label != want[i] {
			t.Fatalf("cell %d label = %q, want %q", i, cell.Label, want[i])
		}
	}
	if plan.SeedFor(0, 0) == plan.SeedFor(2, 0) {
		t.Fatal("radio model cells share replication seeds")
	}

	var spec Spec
	blob := `{
	  "base": {
	    "nodes": 12, "duration_s": 20,
	    "radio": {"name": "shadowing", "params": {"sigma_db": 6}, "sinr": true}
	  },
	  "protocols": ["DSR"],
	  "max_reps": 1
	}`
	if err := json.Unmarshal([]byte(blob), &spec); err != nil {
		t.Fatal(err)
	}
	plan, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Base.Radio.Name != "shadowing" || plan.Base.Radio.Params["sigma_db"] != 6 || !plan.Base.Radio.SINR {
		t.Fatalf("radio patch not applied: %+v", plan.Base.Radio)
	}

	// Bad radio selections fail at submission, not mid-campaign: unknown
	// model, unknown parameter, and the formerly-panicking capture ratio.
	for _, bad := range []string{
		`{"base": {"radio": {"name": "warpdrive"}}, "max_reps": 1}`,
		`{"base": {"radio": {"params": {"sigma_db": 3}}}, "max_reps": 1}`,
		`{"base": {"radio": {"params": {"capture_ratio": 0.5}}}, "max_reps": 1}`,
		`{"axes": [{"name": "radio", "models": ["warpdrive"]}], "max_reps": 1}`,
	} {
		var s Spec
		if err := json.Unmarshal([]byte(bad), &s); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Expand(); err == nil {
			t.Fatalf("bad radio spec accepted: %s", bad)
		}
	}
}

// TestShadowingSINRResumeDeterminism: a campaign under a stochastic radio
// model with SINR reception must replay bit-identically from its journal —
// the per-link shadowing field derives from each run's content-derived
// seed, so re-executed and journal-replayed runs agree exactly.
func TestShadowingSINRResumeDeterminism(t *testing.T) {
	spec := func() Spec {
		s := tinyScenario()
		s.Radio.Name = "shadowing"
		s.Radio.Params = map[string]float64{"sigma_db": 5}
		s.Radio.SINR = true
		return Spec{
			Name:      "shadow-resume",
			Scenario:  s,
			Protocols: []string{"DSR", "AODV"},
			MaxReps:   2,
			BaseSeed:  11,
		}
	}
	ctx := context.Background()
	dir := t.TempDir()
	path := filepath.Join(dir, "shadow.jsonl")
	want, err := Run(ctx, spec(), Options{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	// Journal-free re-execution agrees (cross-run determinism)…
	plain, err := Run(ctx, spec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, want) {
		t.Fatal("stochastic radio campaign is not deterministic across executions")
	}
	// …and a half-journal resume re-derives the missing runs identically.
	header, entries := journalLines(t, path)
	half := filepath.Join(dir, "half.jsonl")
	writeJournal(t, half, header, entries[:len(entries)/2])
	c, err := New(spec(), Options{JournalPath: half})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); snap.RunsFromJournal != len(entries)/2 {
		t.Fatalf("replayed %d runs, want %d", snap.RunsFromJournal, len(entries)/2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed stochastic-radio campaign diverges from uninterrupted run")
	}
}

// modelMatrixSpecJSON is the acceptance scenario of the model-registry PR:
// a JSON campaign selecting Gauss-Markov mobility parameters and the expoo
// VBR workload in the base patch, crossed with a mobility-model grid axis.
const modelMatrixSpecJSON = `{
  "name": "model-matrix",
  "base": {
    "nodes": 10, "area_w_m": 600, "duration_s": 10, "sources": 3,
    "mobility": {"name": "gauss-markov", "params": {"alpha": 0.8}},
    "traffic": {"name": "expoo", "params": {"on_s": 0.5, "off_s": 0.5}}
  },
  "protocols": ["DSR"],
  "axes": [{"name": "mobility", "models": ["waypoint", "gauss-markov", "manhattan"]}],
  "max_reps": 1
}`

// TestServerModelCampaignEndToEnd drives the acceptance criterion over real
// HTTP: POST a campaign whose base selects gauss-markov/expoo and whose
// grid axis sweeps mobility models, poll to completion, and require
// distinct per-model metric cells in the results.
func TestServerModelCampaignEndToEnd(t *testing.T) {
	_, ts := startServer(t)
	created := submit(t, ts, modelMatrixSpecJSON)
	if created.Cells != 3 {
		t.Fatalf("created = %+v", created)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var snap Snapshot
	for {
		resp, err := http.Get(ts.URL + "/campaigns/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, &snap)
		if snap.State == StateDone || snap.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", snap)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if snap.State != StateDone {
		t.Fatalf("campaign ended %s: %s", snap.State, snap.Err)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	decodeBody(t, resp, &res)
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	seenLabel := make(map[string]bool)
	seenMetrics := make(map[string]bool)
	for _, cell := range res.Cells {
		if cell.Merged.DataSent == 0 {
			t.Fatalf("degenerate cell %q: %+v", cell.Label, cell)
		}
		if !strings.Contains(cell.Label, "mobility_model=") {
			t.Fatalf("cell label %q missing model name", cell.Label)
		}
		seenLabel[cell.Label] = true
		// Distinct models must yield distinct metric cells (identical
		// triples would mean the axis silently failed to apply).
		fp := ""
		for _, m := range []string{"pdr", "delay", "throughput"} {
			fp += "|" + strconvF(cell.Metrics[m].Mean)
		}
		seenMetrics[fp] = true
	}
	if len(seenLabel) != 3 {
		t.Fatalf("labels not distinct: %v", seenLabel)
	}
	if len(seenMetrics) < 2 {
		t.Fatalf("per-model metric cells are not distinct: %v", seenMetrics)
	}
}

func strconvF(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
