//go:build unix

package campaign

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on the journal
// file. The lock is released automatically when the file is closed (or the
// process dies), so a crashed campaign never wedges its checkpoint.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
