package network

import (
	"adhocsim/internal/lifecycle"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// LifecycleAware is an optional Protocol extension: protocols that
// implement it are told when their node's membership changes, so routing
// state can be (re)initialized on power-up and timers quiesced — and state
// for vanished peers aged out — on power-down. Up fires once at simulation
// start for every initially-up node (after Start), and again at each
// Join/Recover event; Down fires at each Leave/Fail event. Protocols that
// do not implement it simply keep running while down — their emissions are
// suppressed at the node and channel layers.
type LifecycleAware interface {
	Up(at sim.Time)
	Down(at sim.Time)
}

// Autoconfigured is an optional Protocol extension for address
// autoconfiguration protocols: the world's end-of-run census reads each
// node's claimed address and convergence state through it to produce the
// time_to_converge and addr_collision_rate metrics.
type Autoconfigured interface {
	// AutoconfState returns the node's claimed address, whether the claim
	// has converged (survived its probe rounds undefended), and the
	// virtual time convergence was reached.
	AutoconfState() (addr uint32, converged bool, at sim.Time)
}

// scheduleLifecycle registers every membership event with the engine. The
// schedule arrives in canonical (time, node, kind) order from the scenario
// layer, and the engine breaks time ties by scheduling order, so event
// application is deterministic.
func (w *World) scheduleLifecycle() {
	for _, ev := range w.lifecycle {
		ev := ev
		w.Eng.Schedule(ev.At, func() { w.applyLifecycle(ev) })
	}
}

// applyLifecycle flips one node's membership: the node and channel liveness
// state, the collector's join/leave accounting, and the protocol's
// lifecycle hooks. Transitions to the current state are no-ops, so models
// may emit redundant events without double-counting.
func (w *World) applyLifecycle(ev lifecycle.Event) {
	n := w.Nodes[ev.Node]
	if ev.Kind.IsUp() {
		if n.up {
			return
		}
		n.up = true
		w.Channel.SetNodeUp(pkt.NodeID(ev.Node), true)
		w.Collector.OnJoin()
		if la, ok := n.Proto.(LifecycleAware); ok {
			la.Up(w.Eng.Now())
		}
		return
	}
	if !n.up {
		return
	}
	n.up = false
	w.Channel.SetNodeUp(pkt.NodeID(ev.Node), false)
	w.Collector.OnLeave()
	if la, ok := n.Proto.(LifecycleAware); ok {
		la.Down(w.Eng.Now())
	}
}

// autoconfCensus folds per-node autoconfiguration outcomes into the
// collector at the end of a run: time_to_converge is the convergence
// instant of the slowest up node (an up node still unconverged at the
// horizon is charged the full run), addr_collision_rate the fraction of up
// nodes whose claimed address is also claimed by another up node. A no-op
// unless the protocol implements Autoconfigured.
func (w *World) autoconfCensus() {
	if len(w.Nodes) == 0 {
		return
	}
	if _, ok := w.Nodes[0].Proto.(Autoconfigured); !ok {
		return
	}
	counts := make(map[uint32]int)
	var members, colliding int
	var ttc float64
	for _, n := range w.Nodes {
		if !n.up {
			continue
		}
		ac, ok := n.Proto.(Autoconfigured)
		if !ok {
			continue
		}
		members++
		addr, converged, at := ac.AutoconfState()
		t := at.Seconds()
		if !converged {
			t = w.Eng.Now().Seconds()
		}
		if t > ttc {
			ttc = t
		}
		counts[addr]++
	}
	if members == 0 {
		return
	}
	for _, c := range counts {
		if c > 1 {
			colliding += c
		}
	}
	w.Collector.SetAutoconf(ttc, float64(colliding)/float64(members))
}
