package network_test

import (
	"context"
	"testing"

	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/flood"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/topo"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := network.NewWorld(network.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := network.NewWorld(network.Config{Tracks: mobility.Chain(2, 100)}); err == nil {
		t.Fatal("nil protocol factory accepted")
	}
}

func TestWorldWiring(t *testing.T) {
	tracks := mobility.Chain(3, 200)
	w, err := network.NewWorld(network.Config{
		Tracks:   tracks,
		Radio:    phy.DefaultParams(),
		Protocol: flood.Factory(flood.Config{}),
		Seed:     1,
		Oracle:   topo.NewOracle(tracks, 250),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(w.Nodes))
	}
	for i, n := range w.Nodes {
		if n.ID() != pkt.NodeID(i) {
			t.Fatalf("node %d has id %v", i, n.ID())
		}
		if n.NumNodes() != 3 {
			t.Fatal("NumNodes")
		}
	}
	var got []*pkt.Packet
	w.Node(2).SetSink(func(p *pkt.Packet, from pkt.NodeID) { got = append(got, p) })
	w.Start()
	p := pkt.DataPacket(0, 2, 0, 64, sim.At(1))
	w.Eng.Schedule(sim.At(1), func() { w.Node(0).Originate(p) })
	if err := w.Run(context.Background(), sim.At(5)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sink received %d", len(got))
	}
	// Oracle annotated the optimal hop count (2-hop chain).
	if got[0].OptimalHops != 2 {
		t.Fatalf("OptimalHops = %d, want 2", got[0].OptimalHops)
	}
	res := w.Collector.Finalize()
	if res.DataSent != 1 {
		t.Fatalf("DataSent = %d", res.DataSent)
	}
	// Flooding a 3-node chain transmits data packets on several hops.
	if res.DataTxPackets < 2 {
		t.Fatalf("DataTxPackets = %d", res.DataTxPackets)
	}
}

func TestMacControlAggregated(t *testing.T) {
	// Unicast traffic produces CTS/ACK counters which Run must fold into
	// the collector. Use a protocol that unicasts: a trivial inline one.
	tracks := mobility.Chain(2, 150)
	w, err := network.NewWorld(network.Config{
		Tracks:   tracks,
		Radio:    phy.DefaultParams(),
		Protocol: func(pkt.NodeID) network.Protocol { return &direct{} },
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Node(1).SetSink(func(p *pkt.Packet, from pkt.NodeID) {
		w.Collector.OnDataDelivered(p, w.Eng.Now(), false)
	})
	w.Start()
	w.Eng.Schedule(sim.At(1), func() {
		w.Node(0).Originate(pkt.DataPacket(0, 1, 0, 64, sim.At(1)))
	})
	if err := w.Run(context.Background(), sim.At(3)); err != nil {
		t.Fatal(err)
	}
	res := w.Collector.Finalize()
	if res.MacCtlFrames == 0 {
		t.Fatal("MAC control frames not aggregated")
	}
	if res.DataDelivered != 1 {
		t.Fatalf("delivered = %d", res.DataDelivered)
	}
}

// direct is a minimal protocol for wiring tests: unicast straight to the
// destination (valid only for 1-hop topologies).
type direct struct{ env network.Env }

func (d *direct) Start(env network.Env)  { d.env = env }
func (d *direct) SendData(p *pkt.Packet) { d.env.SendMac(p, p.Dst) }
func (d *direct) Recv(p *pkt.Packet, from pkt.NodeID, _ float64) {
	p.Hops++
	if p.Dst == d.env.ID() {
		d.env.Deliver(p, from)
	}
}
func (d *direct) Snoop(*pkt.Packet, pkt.NodeID, pkt.NodeID, float64) {}
func (d *direct) MacSent(*pkt.Packet, pkt.NodeID)                    {}
func (d *direct) MacFailed(p *pkt.Packet, _ pkt.NodeID) {
	d.env.Drop(p, stats.DropRetries)
}
