// Package network glues the stack together: it owns the per-node plumbing
// between MAC, routing agent and traffic sinks, and defines the Protocol
// interface that every routing protocol implements. It deliberately knows
// nothing about any specific protocol.
package network

import (
	"adhocsim/internal/mac"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/trace"
)

// Env is the node-side API a routing protocol programs against.
type Env interface {
	// ID is this node's address.
	ID() pkt.NodeID
	// Now is the current virtual time.
	Now() sim.Time
	// Engine exposes the event scheduler for protocol timers.
	Engine() *sim.Engine
	// RNG is the protocol's deterministic random substream (jitter etc.).
	RNG() *sim.RNG
	// SendMac hands a packet to the MAC toward the link-level next hop
	// (pkt.Broadcast floods one hop). Each call counts as one
	// transmission in the overhead metrics.
	SendMac(p *pkt.Packet, nextHop pkt.NodeID)
	// Deliver passes a data packet that reached its destination up to
	// the local traffic sink.
	Deliver(p *pkt.Packet, from pkt.NodeID)
	// Drop records the death of a packet.
	Drop(p *pkt.Packet, reason stats.DropReason)
	// FlushNextHop pulls every packet queued at the MAC for a broken
	// next hop back through MacFailed, so the protocol can re-route or
	// salvage them.
	FlushNextHop(to pkt.NodeID)
	// NumNodes is the total number of nodes in the scenario (protocols
	// use it only for sizing tables, never for routing knowledge).
	NumNodes() int
}

// Protocol is a routing agent bound to one node. Implementations must be
// purely event-driven and use only Env for I/O.
type Protocol interface {
	// Start runs once at simulation start (schedule beacons here).
	Start(env Env)
	// SendData originates an application packet at this node. The
	// protocol must route it, buffer it pending discovery, or drop it.
	SendData(p *pkt.Packet)
	// Recv processes any packet arriving from the MAC: routing messages
	// and data packets alike (including data addressed to this node —
	// source-routed protocols still need to inspect the header).
	Recv(p *pkt.Packet, from pkt.NodeID, rxPower float64)
	// Snoop observes unicast data frames addressed to other nodes
	// (promiscuous mode). Most protocols ignore it.
	Snoop(p *pkt.Packet, from, to pkt.NodeID, rxPower float64)
	// MacSent confirms a successful link-level transmission to a
	// neighbour (ACKed unicast or completed broadcast).
	MacSent(p *pkt.Packet, to pkt.NodeID)
	// MacFailed reports that the MAC gave up on p toward to: the
	// routing layer's link-breakage signal.
	MacFailed(p *pkt.Packet, to pkt.NodeID)
}

// SinkFunc consumes data packets that arrived at their destination.
type SinkFunc func(p *pkt.Packet, from pkt.NodeID)

// Node is one simulated station: radio + MAC + routing agent + traffic hook.
type Node struct {
	id    pkt.NodeID
	world *World
	Track *mobility.Track
	Radio *phy.Radio
	Mac   *mac.Mac
	Proto Protocol
	rng   *sim.RNG
	sink  SinkFunc
	up    bool
}

var _ mac.UpperLayer = (*Node)(nil)
var _ Env = (*Node)(nil)

// ID implements Env.
func (n *Node) ID() pkt.NodeID { return n.id }

// Now implements Env.
func (n *Node) Now() sim.Time { return n.world.Eng.Now() }

// Engine implements Env.
func (n *Node) Engine() *sim.Engine { return n.world.Eng }

// RNG implements Env.
func (n *Node) RNG() *sim.RNG { return n.rng }

// NumNodes implements Env.
func (n *Node) NumNodes() int { return len(n.world.Nodes) }

// Up reports the node's membership state (false while failed/left).
func (n *Node) Up() bool { return n.up }

// SendMac implements Env: counts the transmission and enqueues at the MAC.
// A down node's emissions vanish uncounted — a dead radio contributes
// neither offered routing load nor data transmissions.
func (n *Node) SendMac(p *pkt.Packet, nextHop pkt.NodeID) {
	if !n.up {
		return
	}
	switch p.Kind {
	case pkt.KindRouting:
		n.world.Collector.OnRoutingTx(p)
	case pkt.KindData:
		n.world.Collector.OnDataTx(p)
	}
	if t := n.world.Tracer; t != nil {
		t.Trace(trace.Event{Op: trace.OpSend, At: n.Now(), Node: n.id, Pkt: p, Peer: nextHop})
	}
	n.Mac.Send(p, nextHop)
}

// Deliver implements Env: hands the packet to the local sink.
func (n *Node) Deliver(p *pkt.Packet, from pkt.NodeID) {
	if t := n.world.Tracer; t != nil {
		t.Trace(trace.Event{Op: trace.OpDeliver, At: n.Now(), Node: n.id, Pkt: p, Peer: from})
	}
	if n.sink != nil {
		n.sink(p, from)
	}
}

// Drop implements Env.
func (n *Node) Drop(p *pkt.Packet, reason stats.DropReason) {
	if t := n.world.Tracer; t != nil {
		t.Trace(trace.Event{Op: trace.OpDrop, At: n.Now(), Node: n.id, Pkt: p, Reason: reason})
	}
	n.world.Collector.OnDrop(p, reason)
}

// FlushNextHop implements Env.
func (n *Node) FlushNextHop(to pkt.NodeID) { n.Mac.FlushDest(to) }

// SetSink installs the traffic sink for data packets addressed to this node.
func (n *Node) SetSink(s SinkFunc) { n.sink = s }

// Originate records and routes an application packet from this node. While
// the node is down the packet is discarded silently: a dead source offers
// no load, so PDR and overhead metrics only measure the up population.
func (n *Node) Originate(p *pkt.Packet) {
	if !n.up {
		return
	}
	opt := -1
	if n.world.Oracle != nil {
		opt = n.world.Oracle.HopDist(n.Now(), int32(n.id), int32(p.Dst))
	}
	p.OptimalHops = opt
	n.world.Collector.OnDataOriginated(p, opt)
	n.Proto.SendData(p)
}

// MacRecv implements mac.UpperLayer.
func (n *Node) MacRecv(p *pkt.Packet, from pkt.NodeID, rxPower float64) {
	if t := n.world.Tracer; t != nil {
		t.Trace(trace.Event{Op: trace.OpRecv, At: n.Now(), Node: n.id, Pkt: p, Peer: from})
	}
	n.Proto.Recv(p, from, rxPower)
}

// MacSnoop implements mac.UpperLayer.
func (n *Node) MacSnoop(p *pkt.Packet, from, to pkt.NodeID, rxPower float64) {
	n.Proto.Snoop(p, from, to, rxPower)
}

// MacSent implements mac.UpperLayer.
func (n *Node) MacSent(p *pkt.Packet, to pkt.NodeID) { n.Proto.MacSent(p, to) }

// MacSendFailed implements mac.UpperLayer.
func (n *Node) MacSendFailed(p *pkt.Packet, to pkt.NodeID) { n.Proto.MacFailed(p, to) }

// MacQueueFull implements mac.UpperLayer: interface-queue overflow is a
// congestion loss, not a routing event — the packet is simply charged to the
// drop census.
func (n *Node) MacQueueFull(p *pkt.Packet, to pkt.NodeID) {
	if p.Kind == pkt.KindData {
		n.world.Collector.OnDrop(p, stats.DropQueueFull)
	}
}
