package network

import (
	"context"
	"fmt"

	"adhocsim/internal/lifecycle"
	"adhocsim/internal/mac"
	"adhocsim/internal/metrics"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/topo"
	"adhocsim/internal/trace"
)

// ProtocolFactory builds a routing agent for node id. Factories are invoked
// once per node during World construction.
type ProtocolFactory func(id pkt.NodeID) Protocol

// Config assembles a World.
type Config struct {
	Tracks []*mobility.Track
	Radio  phy.RadioParams
	// Phy tunes the channel's transmit fast path. NewWorld fills the
	// defaults the zero value leaves open: a 1 s reindex interval and a
	// speed bound derived from the fastest track segment, so the spatial
	// index can never miss a receiver between reindexes.
	Phy      phy.Config
	Mac      mac.Config
	Protocol ProtocolFactory
	// Seed drives every stochastic element below the scenario layer
	// (MAC backoff, protocol jitter).
	Seed int64
	// Oracle is optional; when set, originated packets are annotated
	// with optimal hop counts for path-optimality accounting.
	Oracle *topo.Oracle
	// Tracer is optional; when set, every network-layer packet event is
	// reported to it (ns-2-style tracing).
	Tracer trace.Tracer
	// Sinks is optional; when set, the collector also emits every
	// data/routing event as a typed metrics.Sample to each sink, stamped
	// with the engine clock. Sinks run on the event loop: keep Record cheap.
	Sinks []metrics.Sink
	// Lifecycle is the run's membership schedule (scenario
	// Instance.Lifecycle) in canonical order: Join/Leave/Fail/Recover
	// events applied at their virtual times. Nil keeps the whole
	// population up for the whole run — bit-identical to the
	// fixed-population harness.
	Lifecycle []lifecycle.Event
}

// World is one fully-wired simulation instance. It is single-threaded;
// do not share across goroutines.
type World struct {
	Eng       *sim.Engine
	Channel   *phy.Channel
	Nodes     []*Node
	Collector *stats.Collector
	Oracle    *topo.Oracle
	Tracer    trace.Tracer
	lifecycle []lifecycle.Event
}

// NewWorld wires radios, MACs and routing agents for every track.
func NewWorld(cfg Config) (*World, error) {
	if len(cfg.Tracks) == 0 {
		return nil, fmt.Errorf("network: no tracks")
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("network: nil protocol factory")
	}
	// Spec- and campaign-level validation runs earlier (scenario.Validate
	// resolves the radio model eagerly); this guards direct callers that
	// assemble RadioParams by hand, where the channel constructor used to
	// panic on a capture ratio ≤ 1.
	if err := cfg.Radio.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if cfg.Phy.Workers < 0 {
		return nil, fmt.Errorf("network: negative worker count %d", cfg.Phy.Workers)
	}
	phyCfg := cfg.Phy
	if !phyCfg.BruteForce {
		if phyCfg.ReindexInterval <= 0 {
			phyCfg.ReindexInterval = sim.Second
		}
		// The speed bound is a correctness input (it pads the index's
		// query radius), so a caller-supplied value below what the
		// tracks can actually do is raised, never trusted; and only the
		// tracks themselves can prove a scenario static.
		bound := mobility.MaxTrackSpeed(cfg.Tracks)
		if phyCfg.SpeedBound < bound {
			phyCfg.SpeedBound = bound
		}
		phyCfg.Static = bound == 0
	}
	w := &World{
		Eng:       sim.NewEngineQueue(phyCfg.Scheduler),
		Collector: stats.NewCollector(),
		Oracle:    cfg.Oracle,
		Tracer:    cfg.Tracer,
	}
	w.Collector.AttachSinks(w.Eng.Now, cfg.Sinks...)
	w.Channel = phy.NewChannelWithConfig(w.Eng, cfg.Radio, phyCfg)
	// One flattened position table for the whole population, precomputed
	// off the event loop: the channel reads (and batch-refreshes) positions
	// from struct-of-arrays state with Cursor's exact memoised semantics,
	// instead of chasing one cursor object per node mid-dispatch.
	w.Channel.SetPositionTable(mobility.NewTable(cfg.Tracks))
	root := sim.NewRNG(cfg.Seed)
	for i, tr := range cfg.Tracks {
		id := pkt.NodeID(i)
		n := &Node{id: id, world: w, Track: tr, up: true}
		nodeRNG := root.Fork(int64(i))
		n.rng = nodeRNG.ForkNamed("proto")
		n.Radio = w.Channel.AttachRadio(id, nil, nil)
		n.Mac = mac.New(w.Eng, id, n.Radio, n, nodeRNG.ForkNamed("mac"), cfg.Mac)
		n.Radio.SetReceiver(n.Mac)
		n.Proto = cfg.Protocol(id)
		w.Nodes = append(w.Nodes, n)
	}
	// Nodes whose first lifecycle event brings them up (bootstrap joins,
	// recoveries) start the run powered down. InitialUp returns nil for the
	// empty schedule, so the static lifecycle touches nothing here.
	w.lifecycle = cfg.Lifecycle
	for i, up := range lifecycle.InitialUp(cfg.Lifecycle, len(cfg.Tracks)) {
		if !up {
			w.Nodes[i].up = false
			w.Channel.SetNodeUp(pkt.NodeID(i), false)
		}
	}
	return w, nil
}

// Start boots every routing agent (schedules beacons etc.), delivers the
// initial Up hook to lifecycle-aware protocols on initially-up nodes, and
// registers the membership schedule with the engine.
func (w *World) Start() {
	for _, n := range w.Nodes {
		n.Proto.Start(n)
	}
	for _, n := range w.Nodes {
		if !n.up {
			continue
		}
		if la, ok := n.Proto.(LifecycleAware); ok {
			la.Up(w.Eng.Now())
		}
	}
	w.scheduleLifecycle()
}

// Run executes the simulation until the horizon and finalizes MAC counters
// into the collector. The context, when cancellable, is polled periodically
// inside the event loop so long simulations can be aborted; a nil context
// is treated as context.Background().
func (w *World) Run(ctx context.Context, until sim.Time) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() != nil {
		w.Eng.Interrupt = ctx.Err
	} else {
		// Clear any interrupt left by a previous phased run with a
		// since-expired context.
		w.Eng.Interrupt = nil
	}
	w.Collector.Begin(w.Eng.Now())
	// The channel's parallel helpers (fan-out pool, pipelined reindex
	// goroutine) must not outlive the run — campaigns build thousands of
	// worlds per process. They re-create themselves lazily if a phased
	// run continues past this call.
	defer w.Channel.StopWorkers()
	if err := w.Eng.Run(until); err != nil {
		return err
	}
	w.Collector.Finish(w.Eng.Now())
	w.autoconfCensus()
	var frames, bytes uint64
	for _, n := range w.Nodes {
		s := n.Mac.Stats
		frames += s.RTSSent + s.CTSSent + s.AckSent
		bytes += s.CtlBytes
	}
	w.Collector.OnMacControl(frames, bytes)
	return nil
}

// Node returns the node with the given id.
func (w *World) Node(id pkt.NodeID) *Node { return w.Nodes[id] }
