// Package lifecycle compiles named churn models into deterministic per-run
// schedules of node membership events (Join/Leave/Fail/Recover). It is the
// fourth modelreg-backed scenario registry, next to mobility, traffic and
// radio: a scenario.Spec names a lifecycle model (scenario.LifecycleSpec),
// the model's builder shapes it from parameters, and Schedule expands it
// into a concrete event list from the run's "lifecycle" RNG substream — so
// identical (spec, seed) pairs replay the same churn across processes.
//
// The zero-value spec selects the static model (no events, the whole
// population up for the whole run), which the network layer treats
// bit-identically to the fixed-population harness the study started from.
package lifecycle

import (
	"fmt"
	"sort"

	"adhocsim/internal/geo"
	"adhocsim/internal/modelreg"
	"adhocsim/internal/sim"
)

// EventKind classifies a membership transition.
type EventKind uint8

const (
	// Join brings a node into the network (bootstrap / flash-crowd
	// arrival). A node whose first scheduled event is a Join starts the
	// run powered down.
	Join EventKind = iota
	// Leave removes a node gracefully (user departure).
	Leave
	// Fail removes a node abruptly (crash, battery death). The network
	// layer treats Leave and Fail identically today; the distinction is
	// kept for models and traces.
	Fail
	// Recover returns a failed node to the network. Like Join, a node
	// whose first scheduled event is a Recover starts the run down.
	Recover

	numEventKinds
)

var kindNames = [numEventKinds]string{
	Join:    "join",
	Leave:   "leave",
	Fail:    "fail",
	Recover: "recover",
}

// String returns the stable name of the kind.
func (k EventKind) String() string {
	if k < numEventKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsUp reports whether the kind transitions the node to the up state.
func (k EventKind) IsUp() bool { return k == Join || k == Recover }

// Event is one membership transition of one node at one virtual time.
type Event struct {
	At   sim.Time  `json:"at"`
	Node int       `json:"node"`
	Kind EventKind `json:"kind"`
}

// Env carries the scenario-level context into a model builder and into
// Schedule: the population size, the run horizon, and the simulation area
// (spatially-correlated models like partition-heal need it). Pos reports a
// node's position at a virtual time when the caller has mobility tracks on
// hand (scenario.Generate installs a track-table lookup); it may be nil,
// in which case position-dependent models treat every node as sitting at
// the origin — Spec.Validate dry-runs schedules this way, which preserves
// the time-boundary checks without generating tracks.
type Env struct {
	Nodes    int
	Duration sim.Duration
	Area     geo.Rect
	Pos      func(node int, at sim.Time) geo.Point
}

// posAt resolves a node position through Env.Pos, origin-pinned when nil.
func (e Env) posAt(node int, at sim.Time) geo.Point {
	if e.Pos == nil {
		return geo.Point{}
	}
	return e.Pos(node, at)
}

// Model compiles a deterministic membership schedule for one run.
type Model interface {
	// Schedule returns the run's membership events. It must be pure: the
	// same env and the same rng state must yield the same schedule, and it
	// must tolerate env.Nodes == 0 (the registry dry-runs every built
	// model with a zero-node env, so bad parameters fail at Spec.Validate
	// / campaign-submission time). Returned events need not be sorted;
	// callers Normalize before applying.
	Schedule(env Env, rng *sim.RNG) ([]Event, error)
}

// Builder constructs a configured Model from the scenario environment and a
// model-specific parameter map. Builders must be pure and must reject
// unknown parameter names (use Params.Err) so misspelled keys fail loudly
// instead of silently selecting defaults.
type Builder func(env Env, params Params) (Model, error)

// Params is the read-tracking parameter-map view handed to builders.
type Params = modelreg.Params

// NewParams wraps a raw parameter map (nil is fine).
func NewParams(m map[string]float64) Params { return modelreg.NewParams(m) }

// DefaultModel is the model an empty spec name selects: the static
// fixed-population lifecycle.
const DefaultModel = "static"

var registry = modelreg.New[Builder]("lifecycle", DefaultModel)

// Register adds a churn model under the given case-insensitive name, making
// it available to scenario specs, the campaign engine and the cmd tools.
// Registration is open: code outside this package can plug in new models.
// Registering an empty name, a nil builder, or a taken name is an error.
func Register(name string, b Builder) error { return registry.Register(name, b) }

// Registered returns every registered model name, sorted.
func Registered() []string { return registry.Names() }

// Known reports whether a model name resolves in the registry (the empty
// name selects the default model and is always known).
func Known(name string) bool { return registry.Known(name) }

// ParamNames reports the parameter keys the named model consumes, observed
// by dry-building it with an empty parameter map.
func ParamNames(name string) ([]string, error) {
	b, _, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	p := NewParams(nil)
	_, _ = b(Env{}, p)
	return p.Used(), nil
}

// New resolves a model name through the registry and builds it for the
// given environment. An empty name selects DefaultModel. The built model is
// eagerly validated with a zero-node dry run, so an out-of-range parameter
// (flashcrowd base_frac=2, onoff-fail mean_up_s=0, …) fails at
// Spec.Validate / campaign-submission time rather than mid-campaign —
// which is why Model.Schedule must tolerate n=0.
func New(name string, env Env, params map[string]float64) (Model, error) {
	b, key, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	model, err := b(env, NewParams(params))
	if err != nil {
		return nil, fmt.Errorf("lifecycle: model %q: %w", key, err)
	}
	dry := env
	dry.Nodes = 0
	if _, err := model.Schedule(dry, sim.NewRNG(0)); err != nil {
		return nil, fmt.Errorf("lifecycle: model %q: %w", key, err)
	}
	return model, nil
}

// Normalize sorts a schedule into the canonical application order: by time,
// then node id, then kind. The network layer schedules events in slice
// order, and the engine breaks time ties by scheduling order, so this
// ordering — not model-internal emission order — is what every run replays.
func Normalize(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Kind < b.Kind
	})
}

// Check validates a schedule against the run's shape: every event must name
// a node in [0, nodes) and fall inside the run horizon [0, duration]. It is
// the guard Spec.Validate and Generate apply to every compiled schedule, so
// a model that schedules a join after the run ends is rejected before any
// simulation starts.
func Check(events []Event, nodes int, duration sim.Duration) error {
	end := sim.Time(0).Add(duration)
	for _, ev := range events {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("lifecycle: event %s at %v names node %d outside [0,%d)",
				ev.Kind, ev.At, ev.Node, nodes)
		}
		if ev.At < 0 || ev.At.After(end) {
			return fmt.Errorf("lifecycle: %s of node %d at %v falls outside the run horizon [0s,%v]",
				ev.Kind, ev.Node, ev.At, duration)
		}
		if ev.Kind >= numEventKinds {
			return fmt.Errorf("lifecycle: unknown event kind %d", ev.Kind)
		}
	}
	return nil
}

// InitialUp derives each node's membership at time zero from its first
// scheduled event: a node whose first event brings it up (Join/Recover)
// must start down; every other node starts up. A nil return means the
// whole population starts up (the empty/static schedule), which lets the
// network layer keep its zero-allocation fixed-population path.
func InitialUp(events []Event, nodes int) []bool {
	if len(events) == 0 {
		return nil
	}
	up := make([]bool, nodes)
	for i := range up {
		up[i] = true
	}
	seen := make(map[int]bool, len(events))
	// Events are inspected in canonical order so "first event" is
	// well-defined even for unnormalized input.
	sorted := append([]Event(nil), events...)
	Normalize(sorted)
	for _, ev := range sorted {
		if ev.Node < 0 || ev.Node >= nodes || seen[ev.Node] {
			continue
		}
		seen[ev.Node] = true
		if ev.Kind.IsUp() {
			up[ev.Node] = false
		}
	}
	return up
}
