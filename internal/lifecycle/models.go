package lifecycle

import (
	"fmt"

	"adhocsim/internal/sim"
)

// Static is the zero-value lifecycle: the full population is up for the
// whole run and no membership events fire. It compiles to an empty
// schedule, which the network layer treats bit-identically to the
// fixed-population harness.
type Static struct{}

// Schedule implements Model.
func (Static) Schedule(Env, *sim.RNG) ([]Event, error) { return nil, nil }

// StaggeredJoin is the network-initialization setting of Ravelomanana's
// randomized bootstrap protocols: every node starts powered down and joins
// at an independent uniform instant inside [Start, Start+Window], so the
// population ramps up over a seed-derived window instead of appearing
// fully formed at time zero.
type StaggeredJoin struct {
	Start  sim.Duration // window start
	Window sim.Duration // window length
}

// Schedule implements Model: one Join per node, uniform in the window.
func (m StaggeredJoin) Schedule(env Env, rng *sim.RNG) ([]Event, error) {
	if m.Start < 0 || m.Window < 0 {
		return nil, fmt.Errorf("staggered-join: negative window [start=%v window=%v]", m.Start, m.Window)
	}
	events := make([]Event, 0, env.Nodes)
	for i := 0; i < env.Nodes; i++ {
		at := sim.Time(0).Add(m.Start).Add(rng.DurationUniform(0, m.Window))
		events = append(events, Event{At: at, Node: i, Kind: Join})
	}
	Normalize(events)
	return events, nil
}

// FlashCrowd models a burst arrival: a base fraction of the population is
// up from time zero, and everyone else joins inside a tight window
// starting at At — the flash-crowd workload of the campaign tiers.
type FlashCrowd struct {
	BaseFrac float64      // fraction of nodes up from the start
	At       sim.Duration // burst start
	Window   sim.Duration // burst spread
}

// Schedule implements Model. Each node draws its base-membership coin and,
// when it is a burst arrival, its join offset — always in node order, so
// the schedule is a pure function of the rng state.
func (m FlashCrowd) Schedule(env Env, rng *sim.RNG) ([]Event, error) {
	if m.BaseFrac < 0 || m.BaseFrac > 1 {
		return nil, fmt.Errorf("flashcrowd: base_frac %v outside [0,1]", m.BaseFrac)
	}
	if m.At < 0 || m.Window < 0 {
		return nil, fmt.Errorf("flashcrowd: negative burst [at=%v window=%v]", m.At, m.Window)
	}
	var events []Event
	for i := 0; i < env.Nodes; i++ {
		if rng.Bool(m.BaseFrac) {
			continue // up from the start
		}
		at := sim.Time(0).Add(m.At).Add(rng.DurationUniform(0, m.Window))
		events = append(events, Event{At: at, Node: i, Kind: Join})
	}
	Normalize(events)
	return events, nil
}

// OnOffFail gives every node an independent alternating renewal process:
// up periods are exponential with mean MeanUp, outages exponential with
// mean MeanDown, repeating until the horizon. Each node's cycle runs on
// its own fork of the schedule stream (forked in node order), so per-node
// churn is deterministic for a given (spec, seed).
type OnOffFail struct {
	MeanUp   sim.Duration // mean up period before a failure
	MeanDown sim.Duration // mean outage before recovery
}

// Schedule implements Model.
func (m OnOffFail) Schedule(env Env, rng *sim.RNG) ([]Event, error) {
	if m.MeanUp <= 0 || m.MeanDown <= 0 {
		return nil, fmt.Errorf("onoff-fail: non-positive means [up=%v down=%v]", m.MeanUp, m.MeanDown)
	}
	end := sim.Time(0).Add(env.Duration)
	var events []Event
	for i := 0; i < env.Nodes; i++ {
		nr := rng.Fork(int64(i))
		t := sim.Time(0).Add(sim.Seconds(nr.Exp(m.MeanUp.Seconds())))
		for !t.After(end) {
			events = append(events, Event{At: t, Node: i, Kind: Fail})
			t = t.Add(sim.Seconds(nr.Exp(m.MeanDown.Seconds())))
			if t.After(end) {
				break // stays down to the horizon
			}
			events = append(events, Event{At: t, Node: i, Kind: Recover})
			t = t.Add(sim.Seconds(nr.Exp(m.MeanUp.Seconds())))
		}
	}
	Normalize(events)
	return events, nil
}

// PartitionHeal fails every node inside a region of the area for one
// outage window — a region-wide blackout that partitions the network and
// heals. The region is the vertical strip covering RegionFrac of the area
// width; membership is judged by each node's position at the outage start
// (env.Pos; origin-pinned during validation dry runs).
type PartitionHeal struct {
	At         sim.Duration // outage start
	Outage     sim.Duration // outage length
	RegionFrac float64      // fraction of the area width that goes dark
}

// Schedule implements Model.
func (m PartitionHeal) Schedule(env Env, rng *sim.RNG) ([]Event, error) {
	if m.At < 0 || m.Outage <= 0 {
		return nil, fmt.Errorf("partition-heal: bad outage [at=%v outage=%v]", m.At, m.Outage)
	}
	if m.RegionFrac < 0 || m.RegionFrac > 1 {
		return nil, fmt.Errorf("partition-heal: region_frac %v outside [0,1]", m.RegionFrac)
	}
	_ = rng // the outage is deterministic in the spec; kept for the Model contract
	end := sim.Time(0).Add(env.Duration)
	down := sim.Time(0).Add(m.At)
	if down.After(end) {
		return nil, nil
	}
	heal := down.Add(m.Outage)
	cut := env.Area.W * m.RegionFrac
	var events []Event
	for i := 0; i < env.Nodes; i++ {
		if env.posAt(i, down).X > cut {
			continue
		}
		events = append(events, Event{At: down, Node: i, Kind: Fail})
		if !heal.After(end) {
			events = append(events, Event{At: heal, Node: i, Kind: Recover})
		}
	}
	Normalize(events)
	return events, nil
}

// The built-in models self-register so that scenario specs, campaign axes
// and external registrations all resolve through one mechanism.
func init() {
	registry.MustRegister(DefaultModel, func(env Env, p Params) (Model, error) {
		return Static{}, p.Err()
	})
	registry.MustRegister("staggered-join", func(env Env, p Params) (Model, error) {
		m := StaggeredJoin{
			Start:  p.Duration("start_s", 0),
			Window: p.Duration("window_s", 30*sim.Second),
		}
		return m, p.Err()
	})
	registry.MustRegister("flashcrowd", func(env Env, p Params) (Model, error) {
		m := FlashCrowd{
			BaseFrac: p.Get("base_frac", 0.2),
			At:       p.Duration("at_s", 10*sim.Second),
			Window:   p.Duration("window_s", 2*sim.Second),
		}
		return m, p.Err()
	})
	registry.MustRegister("onoff-fail", func(env Env, p Params) (Model, error) {
		m := OnOffFail{
			MeanUp:   p.Duration("mean_up_s", 60*sim.Second),
			MeanDown: p.Duration("mean_down_s", 10*sim.Second),
		}
		return m, p.Err()
	})
	registry.MustRegister("partition-heal", func(env Env, p Params) (Model, error) {
		m := PartitionHeal{
			At:         p.Duration("at_s", 30*sim.Second),
			Outage:     p.Duration("outage_s", 30*sim.Second),
			RegionFrac: p.Get("region_frac", 0.5),
		}
		return m, p.Err()
	})
}
