package lifecycle

import (
	"reflect"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/sim"
)

func testEnv(nodes int, dur sim.Duration) Env {
	return Env{Nodes: nodes, Duration: dur, Area: geo.Rect{W: 1500, H: 300}}
}

func TestBuiltinsRegistered(t *testing.T) {
	want := []string{"flashcrowd", "onoff-fail", "partition-heal", "staggered-join", "static"}
	if got := Registered(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Registered() = %v, want %v", got, want)
	}
	for _, name := range append(want, "") {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if Known("no-such-model") {
		t.Error("Known accepted an unregistered name")
	}
}

func TestStaticScheduleEmpty(t *testing.T) {
	m, err := New("", testEnv(40, 900*sim.Second), nil)
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.Schedule(testEnv(40, 900*sim.Second), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("static schedule has %d events, want none", len(events))
	}
	if up := InitialUp(events, 40); up != nil {
		t.Fatalf("InitialUp(empty) = %v, want nil (fixed-population fast path)", up)
	}
}

// TestScheduleDeterministic pins the registry contract every parity test
// builds on: the same (model, env, rng seed) triple yields the same
// schedule, draw for draw.
func TestScheduleDeterministic(t *testing.T) {
	env := testEnv(30, 120*sim.Second)
	env.Pos = func(node int, at sim.Time) geo.Point {
		return geo.Point{X: float64(node * 70), Y: 150}
	}
	for _, name := range Registered() {
		m, err := New(name, env, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := m.Schedule(env, sim.NewRNG(42))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := m.Schedule(env, sim.NewRNG(42))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: schedule is not a pure function of (env, rng)", name)
		}
		if err := Check(a, env.Nodes, env.Duration); err != nil {
			t.Errorf("%s: default-parameter schedule fails Check: %v", name, err)
		}
	}
}

func TestStaggeredJoinOnePerNode(t *testing.T) {
	env := testEnv(25, 120*sim.Second)
	m, err := New("staggered-join", env, map[string]float64{"start_s": 5, "window_s": 20})
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.Schedule(env, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != env.Nodes {
		t.Fatalf("got %d events, want one join per node (%d)", len(events), env.Nodes)
	}
	joined := make(map[int]bool)
	lo, hi := sim.Time(0).Add(5*sim.Second), sim.Time(0).Add(25*sim.Second)
	for _, ev := range events {
		if ev.Kind != Join {
			t.Fatalf("unexpected %s event", ev.Kind)
		}
		if joined[ev.Node] {
			t.Fatalf("node %d joins twice", ev.Node)
		}
		joined[ev.Node] = true
		if ev.At < lo || ev.At.After(hi) {
			t.Fatalf("join of node %d at %v outside window [%v,%v]", ev.Node, ev.At, lo, hi)
		}
	}
	up := InitialUp(events, env.Nodes)
	for i, u := range up {
		if u {
			t.Fatalf("node %d starts up under staggered-join; every node must boot down", i)
		}
	}
}

func TestFlashCrowdBaseFraction(t *testing.T) {
	env := testEnv(200, 60*sim.Second)
	m, err := New("flashcrowd", env, map[string]float64{"base_frac": 0.25, "at_s": 10, "window_s": 2})
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.Schedule(env, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// ~75% of 200 nodes should be burst arrivals; allow generous slack.
	if len(events) < 100 || len(events) > 190 {
		t.Fatalf("%d burst arrivals for base_frac=0.25 over 200 nodes — outside plausible range", len(events))
	}
	lo, hi := sim.Time(0).Add(10*sim.Second), sim.Time(0).Add(12*sim.Second)
	for _, ev := range events {
		if ev.Kind != Join || ev.At < lo || ev.At.After(hi) {
			t.Fatalf("bad burst event %+v", ev)
		}
	}
	up := InitialUp(events, env.Nodes)
	base := 0
	for _, u := range up {
		if u {
			base++
		}
	}
	if base+len(events) != env.Nodes {
		t.Fatalf("base (%d) + burst (%d) != population (%d)", base, len(events), env.Nodes)
	}
}

func TestOnOffFailAlternates(t *testing.T) {
	env := testEnv(15, 300*sim.Second)
	m, err := New("onoff-fail", env, map[string]float64{"mean_up_s": 30, "mean_down_s": 5})
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.Schedule(env, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("mean_up 30s over a 300s run produced no failures")
	}
	// Per node, the renewal process must strictly alternate Fail/Recover
	// starting with Fail.
	perNode := make(map[int][]Event)
	for _, ev := range events {
		perNode[ev.Node] = append(perNode[ev.Node], ev)
	}
	for node, evs := range perNode {
		for i, ev := range evs {
			want := Fail
			if i%2 == 1 {
				want = Recover
			}
			if ev.Kind != want {
				t.Fatalf("node %d event %d is %s, want %s", node, i, ev.Kind, want)
			}
			if i > 0 && ev.At <= evs[i-1].At {
				t.Fatalf("node %d events not strictly increasing in time", node)
			}
		}
	}
	// Every node starts up: the first event of each node is a Fail.
	if up := InitialUp(events, env.Nodes); up != nil {
		for i, u := range up {
			if !u {
				t.Fatalf("node %d starts down under onoff-fail", i)
			}
		}
	}
}

func TestPartitionHealRegionStrip(t *testing.T) {
	env := testEnv(10, 120*sim.Second)
	// Nodes 0..9 sit at x = 0, 150, 300, ... 1350; region_frac 0.5 cuts at
	// x = 750, so nodes 0..5 go dark.
	env.Pos = func(node int, at sim.Time) geo.Point {
		return geo.Point{X: float64(node) * 150, Y: 100}
	}
	m, err := New("partition-heal", env, map[string]float64{"at_s": 30, "outage_s": 20, "region_frac": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.Schedule(env, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	down, heal := sim.Time(0).Add(30*sim.Second), sim.Time(0).Add(50*sim.Second)
	fails, recovers := map[int]bool{}, map[int]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case Fail:
			if ev.At != down {
				t.Fatalf("fail at %v, want %v", ev.At, down)
			}
			fails[ev.Node] = true
		case Recover:
			if ev.At != heal {
				t.Fatalf("recover at %v, want %v", ev.At, heal)
			}
			recovers[ev.Node] = true
		default:
			t.Fatalf("unexpected %s event", ev.Kind)
		}
	}
	for node := 0; node < env.Nodes; node++ {
		inStrip := node <= 5
		if fails[node] != inStrip || recovers[node] != inStrip {
			t.Fatalf("node %d (x=%v): fail=%v recover=%v, want both %v",
				node, float64(node)*150, fails[node], recovers[node], inStrip)
		}
	}
	// An outage extending past the horizon schedules no Recover.
	m2, err := New("partition-heal", env, map[string]float64{"at_s": 110, "outage_s": 60, "region_frac": 1})
	if err != nil {
		t.Fatal(err)
	}
	events2, err := m2.Schedule(env, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events2 {
		if ev.Kind == Recover {
			t.Fatalf("recover at %v scheduled past the run horizon", ev.At)
		}
	}
}

func TestNormalizeCanonicalOrder(t *testing.T) {
	events := []Event{
		{At: 20, Node: 1, Kind: Recover},
		{At: 10, Node: 2, Kind: Fail},
		{At: 10, Node: 1, Kind: Leave},
		{At: 10, Node: 1, Kind: Join},
	}
	Normalize(events)
	want := []Event{
		{At: 10, Node: 1, Kind: Join},
		{At: 10, Node: 1, Kind: Leave},
		{At: 10, Node: 2, Kind: Fail},
		{At: 20, Node: 1, Kind: Recover},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("Normalize = %+v, want %+v", events, want)
	}
}

func TestCheckRejections(t *testing.T) {
	dur := 100 * sim.Second
	cases := []struct {
		name string
		ev   Event
	}{
		{"node below range", Event{At: 0, Node: -1, Kind: Join}},
		{"node above range", Event{At: 0, Node: 10, Kind: Join}},
		{"negative time", Event{At: -1, Node: 0, Kind: Join}},
		{"past horizon", Event{At: sim.Time(0).Add(dur).Add(1), Node: 0, Kind: Join}},
		{"unknown kind", Event{At: 0, Node: 0, Kind: EventKind(200)}},
	}
	for _, tc := range cases {
		if err := Check([]Event{tc.ev}, 10, dur); err == nil {
			t.Errorf("%s: Check accepted %+v", tc.name, tc.ev)
		}
	}
	ok := []Event{{At: sim.Time(0).Add(dur), Node: 9, Kind: Leave}}
	if err := Check(ok, 10, dur); err != nil {
		t.Errorf("Check rejected an event exactly at the horizon: %v", err)
	}
}

func TestInitialUpFirstEventWins(t *testing.T) {
	events := []Event{
		{At: 50, Node: 0, Kind: Fail},   // node 0: down later, starts up
		{At: 10, Node: 1, Kind: Join},   // node 1: first event brings it up -> starts down
		{At: 5, Node: 2, Kind: Recover}, // node 2: same, via Recover
		{At: 30, Node: 2, Kind: Fail},   // later events don't matter
	}
	up := InitialUp(events, 4)
	want := []bool{true, false, false, true}
	if !reflect.DeepEqual(up, want) {
		t.Fatalf("InitialUp = %v, want %v", up, want)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	env := testEnv(10, 60*sim.Second)
	if _, err := New("no-such-model", env, nil); err == nil {
		t.Error("unknown model name accepted")
	}
	if _, err := New("staggered-join", env, map[string]float64{"windw_s": 5}); err == nil {
		t.Error("misspelled parameter key accepted")
	}
	if _, err := New("flashcrowd", env, map[string]float64{"base_frac": 2}); err == nil {
		t.Error("flashcrowd base_frac=2 accepted")
	}
	if _, err := New("onoff-fail", env, map[string]float64{"mean_up_s": 0}); err == nil {
		t.Error("onoff-fail mean_up_s=0 accepted")
	}
	if _, err := New("partition-heal", env, map[string]float64{"region_frac": -0.1}); err == nil {
		t.Error("partition-heal region_frac=-0.1 accepted")
	}
}

func TestParamNames(t *testing.T) {
	cases := map[string][]string{
		"static":         nil,
		"staggered-join": {"start_s", "window_s"},
		"flashcrowd":     {"at_s", "base_frac", "window_s"},
		"onoff-fail":     {"mean_down_s", "mean_up_s"},
		"partition-heal": {"at_s", "outage_s", "region_frac"},
	}
	for name, want := range cases {
		got, err := ParamNames(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParamNames(%s) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParamNames("no-such-model"); err == nil {
		t.Error("ParamNames accepted an unregistered name")
	}
}
