package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"adhocsim/internal/campaign"
	"adhocsim/internal/stats"
)

// ServerOptions configure the coordinator.
type ServerOptions struct {
	// LocalWorkers sizes the per-campaign in-process executor pool:
	// 0 selects GOMAXPROCS, -1 disables local execution entirely (a pure
	// coordinator that only progresses through remote workers). Local
	// executors run through exactly the same dispatch and commit path as
	// remote ones, so mixed local+remote execution stays deterministic.
	LocalWorkers int
	// JournalDir, when non-empty, checkpoints every campaign to
	// <dir>/<spec-hash[:16]>.jsonl; resubmitting a spec resumes its journal.
	JournalDir string
	// Cache, when non-nil, is the content-addressed result store consulted
	// before leasing any unit and fed by every live commit.
	Cache Store
	// LeaseTTL bounds how long a silent worker keeps a unit (default 30s).
	LeaseTTL time.Duration
	// ReapInterval is the expired-lease sweep cadence (default 1s).
	ReapInterval time.Duration
	// Clock is injectable for lease-expiry tests (default time.Now).
	Clock func() time.Time
}

// Server is the distributed campaign coordinator. It owns the campaign
// lifecycle (submit, progress, results, cancel — the same HTTP API the
// single-process campaign server exposes), plus the worker protocol
// (lease, renew, release, commit, spec), a per-campaign SSE progress
// stream, and the control stream workers watch for cancellations.
type Server struct {
	opts     ServerOptions
	leaseTTL time.Duration
	clock    func() time.Time

	hub    *Hub
	cache  Store
	leases *leaseTable

	base       context.Context
	cancelBase context.CancelFunc

	mu        sync.Mutex
	seq       int
	campaigns map[string]*managed
	draining  bool

	reapOnce sync.Once // stops the reaper exactly once
	reapStop chan struct{}
	reapDone chan struct{}
}

// managed is one campaign under coordination.
type managed struct {
	id          string
	c           *campaign.Campaign
	journalPath string

	ctx    context.Context
	cancel context.CancelFunc

	// mu serializes dispatch, commit and finish for this campaign; the
	// campaign's own mutex guards its accumulators, this one guards the
	// scheduling state around it (re-issue queue, event fan-out order —
	// which is what makes SSE run counts monotone).
	mu          sync.Mutex
	pending     []unitRef // re-issue queue: expired/released leases
	stoppedSeen []bool    // cells whose convergence was already announced
	finished    bool
	done        chan struct{}

	wg sync.WaitGroup // local executors
}

type unitRef struct{ cell, rep int }

// NewServer creates a coordinator and starts its lease reaper.
func NewServer(opts ServerOptions) *Server {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.ReapInterval <= 0 {
		opts.ReapInterval = time.Second
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		leaseTTL:   opts.LeaseTTL,
		clock:      clock,
		hub:        NewHub(),
		cache:      opts.Cache,
		leases:     newLeaseTable(clock),
		base:       base,
		cancelBase: cancel,
		campaigns:  make(map[string]*managed),
		reapStop:   make(chan struct{}),
		reapDone:   make(chan struct{}),
	}
	go s.reap()
	return s
}

// Hub exposes the progress/control bus (in-process subscribers, tests).
func (s *Server) Hub() *Hub { return s.hub }

// reap periodically re-queues units whose leases expired without renewal.
func (s *Server) reap() {
	defer close(s.reapDone)
	t := time.NewTicker(s.opts.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			for _, l := range s.leases.expire() {
				if m := s.lookup(l.Campaign); m != nil {
					m.mu.Lock()
					if !m.finished && m.c.UnitNeeded(l.Cell, l.Rep) {
						m.pending = append(m.pending, unitRef{l.Cell, l.Rep})
					}
					m.mu.Unlock()
				}
			}
		}
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleCreate)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleDelete)

	mux.HandleFunc("POST /dist/lease", s.handleLease)
	mux.HandleFunc("POST /dist/renew", s.handleRenew)
	mux.HandleFunc("POST /dist/release", s.handleRelease)
	mux.HandleFunc("POST /dist/commit", s.handleCommit)
	mux.HandleFunc("GET /dist/campaigns/{id}/spec", s.handleSpec)
	mux.HandleFunc("GET /dist/events", s.handleControlEvents)
	mux.HandleFunc("GET /dist/status", s.handleStatus)
	return mux
}

// lookup finds a managed campaign by id.
func (s *Server) lookup(id string) *managed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// isDraining reports whether a graceful shutdown is underway (dispatch
// stops, in-flight work drains).
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// createdResponse is the POST /campaigns reply.
type createdResponse struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Events  string `json:"events"`
	Cells   int    `json:"cells"`
	MaxRuns int    `json:"max_runs"`
	Journal string `json:"journal,omitempty"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	c, err := campaign.New(spec, campaign.Options{})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	journalPath := ""
	if s.opts.JournalDir != "" {
		// Keyed by spec hash, not campaign id: resubmitting a spec resumes
		// its own checkpoint, distinct specs can never collide.
		journalPath = filepath.Join(s.opts.JournalDir, c.Plan().Hash[:16]+".jsonl")
		c.SetJournalPath(journalPath)
	}

	ctx, cancel := context.WithCancel(s.base)
	m := &managed{
		c:           c,
		journalPath: journalPath,
		ctx:         ctx,
		cancel:      cancel,
		stoppedSeen: make([]bool, len(c.Plan().Cells)),
		done:        make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, errors.New("coordinator is shutting down"))
		return
	}
	if journalPath != "" {
		// Two live campaigns must not append to one journal. The journal's
		// advisory flock would also catch this, but a clear 409 beats a
		// "file in use" 500.
		for _, other := range s.campaigns {
			if other.journalPath == journalPath && !other.isFinished() {
				s.mu.Unlock()
				cancel()
				httpError(w, http.StatusConflict,
					fmt.Errorf("campaign %s is already running this spec (journal %s)", other.id, journalPath))
				return
			}
		}
	}
	s.seq++
	m.id = fmt.Sprintf("c%d", s.seq)
	s.campaigns[m.id] = m
	s.mu.Unlock()

	// Start opens and replays the journal; a spec-hash mismatch or a
	// concurrently-locked checkpoint surfaces here, at submission time.
	if err := c.Start(); err != nil {
		m.mu.Lock()
		m.finished = true
		close(m.done)
		m.mu.Unlock()
		cancel()
		httpError(w, http.StatusConflict, err)
		return
	}

	// Drain any leading cache hits (and a journal that already holds the
	// whole campaign) before any executor spins up: a fully-cached
	// resubmission completes right here with zero leases granted.
	m.mu.Lock()
	if m.c.AllStopped() || m.c.Err() != nil {
		s.finishLocked(m)
	} else {
		s.primeLocked(m)
	}
	finished := m.finished
	m.mu.Unlock()

	if !finished {
		local := s.opts.LocalWorkers
		if local == 0 {
			local = runtime.GOMAXPROCS(0)
		}
		for i := 0; i < local; i++ {
			m.wg.Add(1)
			go s.runLocal(m)
		}
	}

	writeJSON(w, http.StatusCreated, createdResponse{
		ID:      m.id,
		URL:     "/campaigns/" + m.id,
		Events:  "/campaigns/" + m.id + "/events",
		Cells:   len(c.Plan().Cells),
		MaxRuns: c.Plan().MaxRuns(),
		Journal: journalPath,
	})
}

func (m *managed) isFinished() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.finished
}

// primeLocked walks the dispatch cursor committing consecutive cache hits;
// the first miss is parked on the re-issue queue so no unit is lost. It
// runs at submission so fully-cached campaigns complete without any
// worker, and keeps dispatch lazy otherwise (early-stop decisions prune
// speculative work before it is ever leased).
func (s *Server) primeLocked(m *managed) {
	for !m.finished {
		ci, rep, ok := m.c.NextUnit()
		if !ok {
			return
		}
		if res, hit := s.cachedResult(m, ci, rep); hit {
			s.commitLocked(m, ci, rep, res, true)
			continue
		}
		m.pending = append(m.pending, unitRef{ci, rep})
		return
	}
}

// cachedResult consults the content-addressed store; cache faults degrade
// to misses.
func (s *Server) cachedResult(m *managed, ci, rep int) (res stats.Results, hit bool) {
	if s.cache == nil {
		return res, false
	}
	got, found, err := s.cache.Get(m.c.Plan().UnitKey(ci, rep))
	if err != nil || !found {
		return res, false
	}
	return got, true
}

// dispatch hands out the next unit of a campaign, committing cache hits
// inline. ttl > 0 grants a worker lease; local executors pass ttl == 0 and
// run leaseless (they cannot die silently — process death takes the
// coordinator and its lease table with it, and the journal is the
// recovery story).
func (s *Server) dispatch(m *managed, worker string, ttl time.Duration) (ci, rep int, l *Lease, ok bool) {
	if s.isDraining() {
		return 0, 0, nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.finished {
		var cell, rep int
		if n := len(m.pending); n > 0 {
			u := m.pending[0]
			m.pending = m.pending[1:]
			cell, rep = u.cell, u.rep
			if !m.c.UnitNeeded(cell, rep) {
				continue // committed or pruned while queued
			}
		} else {
			var more bool
			cell, rep, more = m.c.NextUnit()
			if !more {
				return 0, 0, nil, false
			}
		}
		if res, hit := s.cachedResult(m, cell, rep); hit {
			s.commitLocked(m, cell, rep, res, true)
			continue
		}
		var lease *Lease
		if ttl > 0 {
			lease = s.leases.grant(m.id, cell, rep, worker, ttl)
		}
		return cell, rep, lease, true
	}
	return 0, 0, nil, false
}

// runLocal is one in-process executor: the same dispatch → execute →
// commit loop a remote worker runs, minus HTTP and leases.
func (s *Server) runLocal(m *managed) {
	defer m.wg.Done()
	for {
		ci, rep, _, ok := s.dispatch(m, "local", 0)
		if !ok {
			return
		}
		res, err := m.c.Plan().ExecuteUnit(m.ctx, ci, rep)
		if err != nil {
			if m.ctx.Err() != nil || errors.Is(err, context.Canceled) {
				return // campaign cancelled or finished under us
			}
			m.c.Abort(err)
			m.mu.Lock()
			s.finishLocked(m)
			m.mu.Unlock()
			return
		}
		s.commit(m, ci, rep, res, false)
	}
}

// commit is the locked wrapper around commitLocked.
func (s *Server) commit(m *managed, ci, rep int, res stats.Results, fromCache bool) (committed bool, winning stats.Results, haveWinner bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return s.commitLocked(m, ci, rep, res, fromCache)
}

// commitLocked lands one result: duplicate detection (first result wins),
// the campaign engine's in-order commit, cache population, progress
// events, and campaign settlement once every cell has stopped.
func (s *Server) commitLocked(m *managed, ci, rep int, res stats.Results, fromCache bool) (committed bool, winning stats.Results, haveWinner bool) {
	if prev, dup := m.c.UnitResult(ci, rep); dup {
		return false, prev, true
	}
	if m.finished {
		return false, stats.Results{}, false
	}
	m.c.CompleteUnit(ci, rep, res, fromCache)
	if _, landed := m.c.UnitResult(ci, rep); !landed {
		// The engine dropped it (campaign left the running state under us).
		return false, stats.Results{}, false
	}
	if err := m.c.Err(); err != nil {
		// Journal append failed: the campaign is broken; settle as failed.
		s.finishLocked(m)
		return true, res, true
	}
	if !fromCache && s.cache != nil {
		// A faulty cache must not fail the campaign; it only costs reuse.
		_ = s.cache.Put(m.c.Plan().UnitKey(ci, rep), res)
	}
	snap := m.c.Snapshot()
	cell, repIdx := ci, rep
	runEvt := Event{
		Type: EventRunCommitted, Campaign: m.id, Snapshot: &snap,
		Cell: &cell, Rep: &repIdx, Label: m.c.Plan().Cells[ci].Label,
	}
	if res.Streams != nil {
		runEvt.Series = res.Streams.Series
	}
	s.hub.Publish(CampaignTopic(m.id), runEvt)
	if m.c.CellStopped(ci) && !m.stoppedSeen[ci] {
		m.stoppedSeen[ci] = true
		cell := ci
		s.hub.Publish(CampaignTopic(m.id), Event{
			Type: EventCellConverged, Campaign: m.id,
			Cell: &cell, Label: m.c.Plan().Cells[ci].Label,
		})
	}
	if m.c.AllStopped() {
		s.finishLocked(m)
	}
	return true, res, true
}

// finishLocked settles a campaign exactly once: the engine computes the
// final aggregate (or the terminal error), outstanding leases are dropped
// so renewals start failing, terminal events go out on both the campaign
// topic and the worker control topic, and local executors are cancelled —
// any still-running speculative unit can no longer be committed.
func (s *Server) finishLocked(m *managed) {
	if m.finished {
		return
	}
	m.finished = true
	_, _ = m.c.Finish(m.ctx)
	s.leases.dropCampaign(m.id)
	snap := m.c.Snapshot()
	done := Event{
		Type: EventCampaignDone, Campaign: m.id,
		State: snap.State, Snapshot: &snap, Err: snap.Err,
	}
	s.hub.Publish(CampaignTopic(m.id), done)
	s.hub.Publish(ControlTopic, done)
	close(m.done)
	m.cancel()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	// Numeric-suffix ids ("c1", "c2", …): length-then-value sort is
	// submission order.
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	type listed struct {
		ID string `json:"id"`
		campaign.Snapshot
	}
	out := make([]listed, 0, len(ids))
	for _, id := range ids {
		if m := s.lookup(id); m != nil {
			out = append(out, listed{ID: id, Snapshot: m.c.Snapshot()})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m.c.Snapshot())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	snap := m.c.Snapshot()
	switch snap.State {
	case campaign.StateDone:
		writeJSON(w, http.StatusOK, m.c.Result())
	case campaign.StateFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("campaign failed: %s", snap.Err))
	default:
		writeJSON(w, http.StatusConflict, snap)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	// Cancel the execution context first so in-flight local runs abort
	// promptly, then settle. Workers learn three ways, fastest first: the
	// control-stream cancellation event, failing renewals (leases dropped),
	// and rejected commits.
	m.cancel()
	m.mu.Lock()
	if !m.finished {
		s.hub.Publish(ControlTopic, Event{Type: EventCampaignCancelled, Campaign: m.id})
		s.hub.Publish(CampaignTopic(m.id), Event{Type: EventCampaignCancelled, Campaign: m.id})
		s.finishLocked(m)
	}
	m.mu.Unlock()
	m.wg.Wait() // local executors have drained; the campaign is settled
	writeJSON(w, http.StatusOK, m.c.Snapshot())
}

// ---- worker protocol ----

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding lease request: %w", err))
		return
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.campaigns))
	for id, m := range s.campaigns {
		if !m.isFinished() {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		m := s.lookup(id)
		if m == nil {
			continue
		}
		ci, rep, l, ok := s.dispatch(m, req.Worker, s.leaseTTL)
		if !ok {
			continue
		}
		writeJSON(w, http.StatusOK, LeaseGrant{
			LeaseID:  l.ID,
			Campaign: m.id,
			SpecHash: m.c.Plan().Hash,
			Cell:     ci,
			Rep:      rep,
			Seed:     m.c.Plan().SeedFor(ci, rep),
			TTLMs:    s.leaseTTL.Milliseconds(),
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding renew request: %w", err))
		return
	}
	if !s.leases.renew(req.LeaseID, s.leaseTTL) {
		httpError(w, http.StatusGone, fmt.Errorf("lease %s is no longer held", req.LeaseID))
		return
	}
	writeJSON(w, http.StatusOK, RenewResponse{TTLMs: s.leaseTTL.Milliseconds()})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding release request: %w", err))
		return
	}
	if l, ok := s.leases.release(req.LeaseID); ok {
		if m := s.lookup(l.Campaign); m != nil {
			m.mu.Lock()
			if !m.finished && m.c.UnitNeeded(l.Cell, l.Rep) {
				m.pending = append(m.pending, unitRef{l.Cell, l.Rep})
			}
			m.mu.Unlock()
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding commit: %w", err))
		return
	}
	m := s.lookup(req.Campaign)
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", req.Campaign))
		return
	}
	plan := m.c.Plan()
	if req.SpecHash != plan.Hash {
		httpError(w, http.StatusConflict,
			fmt.Errorf("commit for spec %.12s…, campaign %s is spec %.12s…", req.SpecHash, m.id, plan.Hash))
		return
	}
	if req.Cell < 0 || req.Cell >= len(plan.Cells) || req.Rep < 0 || req.Rep >= plan.Spec.MaxReps {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unit (cell %d, rep %d) outside the plan", req.Cell, req.Rep))
		return
	}
	if req.LeaseID != "" {
		s.leases.release(req.LeaseID)
	}
	committed, winning, haveWinner := s.commit(m, req.Cell, req.Rep, req.Results, false)
	if committed {
		writeJSON(w, http.StatusOK, CommitResponse{Committed: true})
		return
	}
	// Duplicate (or post-settlement) commit: 409 carrying the winning
	// result, so the committer can reconcile instead of failing.
	resp := CommitResponse{Committed: false}
	if haveWinner {
		resp.Results = &winning
	}
	writeJSON(w, http.StatusConflict, resp)
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	plan := m.c.Plan()
	base := plan.Base
	writeJSON(w, http.StatusOK, SpecResponse{
		Spec:     plan.Spec,
		Scenario: &base,
		Hash:     plan.Hash,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.campaigns))
	for _, m := range s.campaigns {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	st := StatusResponse{Campaigns: len(ms), Leases: s.leases.count("")}
	for _, m := range ms {
		m.mu.Lock()
		if !m.finished {
			st.Running++
		}
		st.Pending += len(m.pending)
		m.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, st)
}

// ---- lifecycle ----

// Shutdown gracefully drains the coordinator: dispatch stops, in-flight
// local runs finish and are journaled, leases are dropped so workers
// re-home, and unfinished campaigns' journals are closed as clean,
// resumable checkpoints (resubmit the same spec after restart to resume).
// When ctx expires first, remaining in-flight runs are force-cancelled —
// the journal then simply holds fewer entries; determinism makes the
// re-run identical.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ms := make([]*managed, 0, len(s.campaigns))
	for _, m := range s.campaigns {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	s.reapOnce.Do(func() { close(s.reapStop) })
	<-s.reapDone

	drained := make(chan struct{})
	go func() {
		for _, m := range ms {
			m.wg.Wait()
		}
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase() // force-abort in-flight runs
		for _, m := range ms {
			m.wg.Wait()
		}
	}

	for _, m := range ms {
		m.mu.Lock()
		if !m.finished {
			// Suspend, don't settle: the journal is the recovery state.
			m.finished = true
			s.leases.dropCampaign(m.id)
			m.c.CloseJournal()
			close(m.done)
		}
		m.mu.Unlock()
	}
	s.cancelBase()
	return err
}

// Close force-cancels everything immediately (tests, non-graceful exits).
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": strings.TrimSpace(err.Error())})
}
