package dist

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// retry runs f until it succeeds, returns a permanent error, or ctx ends.
// Between attempts it sleeps an exponentially growing interval with full
// jitter (uniform in [d/2, d)), so a fleet of workers hammering a
// recovering coordinator naturally de-synchronizes. The jitter source is
// the global math/rand — worker-side timing never feeds the simulation,
// so it cannot perturb determinism.
func retry(ctx context.Context, base, max time.Duration, f func() error) error {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	delay := base
	for {
		err := f()
		if err == nil {
			return nil
		}
		var p *permanentError
		if errors.As(err, &p) {
			return p.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		d := delay/2 + rand.N(delay/2+1)
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		delay *= 2
		if delay > max {
			delay = max
		}
	}
}

// permanentError wraps an error retry must not absorb (4xx responses,
// protocol violations).
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// permanent marks an error as non-retryable.
func permanent(err error) error { return &permanentError{err: err} }
