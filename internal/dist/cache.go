package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"adhocsim/internal/stats"
)

// Store is the content-addressed result cache: run results keyed by
// campaign.Plan.UnitKey — a digest of the fully-resolved scenario,
// protocol, and derived seed, i.e. of everything that determines the
// result. Because runs are deterministic, a hit is exactly the result a
// re-execution would produce, so the coordinator consults the store
// before leasing any unit and resubmitted or overlapping campaigns reuse
// finished runs instead of recomputing them.
//
// Implementations must be safe for concurrent use. Get reports a miss
// with found == false; errors are reserved for real faults (I/O), and
// callers are expected to degrade a faulty cache to a miss.
type Store interface {
	Get(key string) (res stats.Results, found bool, err error)
	Put(key string, res stats.Results) error
}

// MemStore is an in-memory Store: per-process reuse and tests.
type MemStore struct {
	mu sync.Mutex
	m  map[string]stats.Results
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]stats.Results)}
}

// Get looks a key up.
func (s *MemStore) Get(key string) (stats.Results, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.m[key]
	return res, ok, nil
}

// Put stores a result.
func (s *MemStore) Put(key string, res stats.Results) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = res
	return nil
}

// Len reports the number of cached results.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// FSStore is a filesystem-backed Store: one JSON file per result at
// <dir>/<key[:2]>/<key>.json (the two-character fan-out keeps directories
// small at scale). Writes are atomic — a temp file renamed into place —
// so concurrent writers of the same key and crashes mid-write can never
// leave a torn entry visible; a corrupt file (external tampering) reads
// as a miss, never as a wrong result, because the key is content-derived
// but the payload is re-validated only by JSON shape.
type FSStore struct {
	dir string
}

// NewFSStore creates (if needed) the cache directory and returns the store.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating result cache dir: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir is the cache root.
func (s *FSStore) Dir() string { return s.dir }

func (s *FSStore) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get looks a key up; absent or undecodable files are misses.
func (s *FSStore) Get(key string) (stats.Results, bool, error) {
	if len(key) < 2 {
		return stats.Results{}, false, fmt.Errorf("dist: malformed cache key %q", key)
	}
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return stats.Results{}, false, nil
	}
	if err != nil {
		return stats.Results{}, false, fmt.Errorf("dist: reading cache entry: %w", err)
	}
	var res stats.Results
	if err := json.Unmarshal(data, &res); err != nil {
		return stats.Results{}, false, nil // corrupt entry: treat as a miss
	}
	return res, true, nil
}

// Put stores a result atomically.
func (s *FSStore) Put(key string, res stats.Results) error {
	if len(key) < 2 {
		return fmt.Errorf("dist: malformed cache key %q", key)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("dist: creating cache shard: %w", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dist: encoding cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("dist: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: publishing cache entry: %w", err)
	}
	return nil
}
