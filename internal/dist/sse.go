package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"adhocsim/internal/campaign"
)

// Server-sent events: the hub's bridge to HTTP. Each event is written as
//
//	event: <type>
//	data: <json Event>
//
// with a comment-line heartbeat while idle so intermediaries keep the
// connection alive.

const sseHeartbeat = 15 * time.Second

// sseWriter wraps a streaming response.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, true
}

func (s *sseWriter) event(e Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", e.Type, b); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

func (s *sseWriter) comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// isTerminal reports whether an event ends a campaign's stream.
func isTerminal(e Event) bool {
	return e.Type == EventCampaignDone || e.Type == EventCampaignCancelled
}

// handleEvents streams one campaign's progress: an initial snapshot, then
// run_committed / cell_converged events through to the terminal
// campaign_done. Subscription happens before the initial snapshot is read,
// so a terminal transition can never fall between the two unobserved.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		return
	}
	sub := s.hub.Subscribe(CampaignTopic(m.id), 64)
	defer sub.Cancel()
	sw, ok := newSSEWriter(w)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}

	snap := m.c.Snapshot()
	if err := sw.event(Event{Type: EventSnapshot, Campaign: m.id, State: snap.State, Snapshot: &snap}); err != nil {
		return
	}
	if terminalState(snap.State) {
		_ = sw.event(Event{Type: EventCampaignDone, Campaign: m.id, State: snap.State, Snapshot: &snap, Err: snap.Err})
		return
	}

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-sub.C():
			if err := sw.event(e); err != nil {
				return
			}
			if isTerminal(e) {
				return
			}
		case <-hb.C:
			// Heartbeat doubles as a terminal-state safety net: if the
			// subscriber's buffer ever dropped the done event (pathological
			// backlog), the stream still closes.
			if snap := m.c.Snapshot(); terminalState(snap.State) {
				_ = sw.event(Event{Type: EventCampaignDone, Campaign: m.id, State: snap.State, Snapshot: &snap, Err: snap.Err})
				return
			}
			if err := sw.comment("ping"); err != nil {
				return
			}
		}
	}
}

func terminalState(st campaign.State) bool {
	return st == campaign.StateDone || st == campaign.StateFailed || st == campaign.StateCancelled
}

// handleControlEvents streams coordinator→worker notifications for every
// campaign (cancellations and completions). Workers hold one subscription
// for their lifetime and abort in-flight runs whose campaign ends.
func (s *Server) handleControlEvents(w http.ResponseWriter, r *http.Request) {
	sub := s.hub.Subscribe(ControlTopic, 64)
	defer sub.Cancel()
	sw, ok := newSSEWriter(w)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	if err := sw.comment("control stream open"); err != nil {
		return
	}
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.base.Done():
			return
		case e := <-sub.C():
			if err := sw.event(e); err != nil {
				return
			}
		case <-hb.C:
			if err := sw.comment("ping"); err != nil {
				return
			}
		}
	}
}

// readSSE consumes a server-sent-events stream, invoking onEvent for every
// complete event until the stream ends or ctx is cancelled. It is the
// worker-side client for /dist/events (and works against
// /campaigns/{id}/events too).
func readSSE(ctx context.Context, body interface{ Read([]byte) (int, error) }, onEvent func(Event)) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data bytes.Buffer
	for sc.Scan() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				var e Event
				if err := json.Unmarshal(data.Bytes(), &e); err == nil {
					onEvent(e)
				}
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		default:
			// event:/id:/retry: lines and comments — the type travels
			// inside the JSON payload as well, so they carry no extra
			// information for us.
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}
