package dist

import (
	"fmt"

	"adhocsim/internal/campaign"
	"adhocsim/internal/scenario"
	"adhocsim/internal/stats"
)

// The coordinator/worker wire protocol. All endpoints are JSON over HTTP:
//
//	POST /dist/lease                request one run unit       → 200 LeaseGrant | 204 no work
//	POST /dist/renew                heartbeat a lease          → 200 RenewResponse | 410 lease lost
//	POST /dist/release              give an unleased unit back → 204
//	POST /dist/commit               deliver a result           → 200 CommitResponse |
//	                                409 CommitResponse carrying the winning result on duplicates
//	GET  /dist/campaigns/{id}/spec  fetch the campaign spec    → 200 SpecResponse
//	GET  /dist/events               SSE control stream (cancellation, completion)
//	GET  /dist/status               coordinator introspection  → 200 StatusResponse
//
// A worker never receives scenario objects per unit: it fetches the spec
// once per campaign, expands it locally into the identical plan (seeds and
// cell grids are content-derived, so expansion is reproducible anywhere),
// and verifies the plan hash against the coordinator's before executing
// anything — version skew between binaries is caught before it can corrupt
// an aggregate.

// LeaseRequest asks the coordinator for one unit of work.
type LeaseRequest struct {
	// Worker identifies the requesting process (diagnostics only; the
	// lease id is the capability).
	Worker string `json:"worker"`
}

// LeaseGrant hands a worker one run unit under a deadline.
type LeaseGrant struct {
	LeaseID  string `json:"lease_id"`
	Campaign string `json:"campaign"`
	SpecHash string `json:"spec_hash"`
	Cell     int    `json:"cell"`
	Rep      int    `json:"rep"`
	// Seed is the coordinator's derived seed for the unit; the worker
	// cross-checks it against its own derivation as a cheap integrity
	// probe on top of the spec-hash comparison.
	Seed int64 `json:"seed"`
	// TTLMs is the lease duration; the worker renews at TTL/3 cadence.
	TTLMs int64 `json:"ttl_ms"`
}

// RenewRequest heartbeats a lease.
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
}

// RenewResponse confirms a renewal.
type RenewResponse struct {
	TTLMs int64 `json:"ttl_ms"`
}

// ReleaseRequest returns an incomplete unit (graceful worker shutdown,
// cancelled run) so the coordinator can re-issue it immediately instead of
// waiting for the lease to expire.
type ReleaseRequest struct {
	LeaseID string `json:"lease_id"`
}

// CommitRequest delivers one executed unit's results.
type CommitRequest struct {
	// LeaseID, when present, releases the lease with the commit. A commit
	// is accepted even without a live lease: a worker that outlived its
	// deadline still did correct work, and the engine keeps the first
	// result per unit regardless.
	LeaseID  string        `json:"lease_id,omitempty"`
	Worker   string        `json:"worker,omitempty"`
	Campaign string        `json:"campaign"`
	SpecHash string        `json:"spec_hash"`
	Cell     int           `json:"cell"`
	Rep      int           `json:"rep"`
	Results  stats.Results `json:"results"`
}

// CommitResponse reports a commit's fate. On a duplicate (HTTP 409) it
// carries the winning result so the committer can reconcile instead of
// treating the conflict as an error.
type CommitResponse struct {
	Committed bool           `json:"committed"`
	Results   *stats.Results `json:"results,omitempty"`
}

// SpecResponse lets a worker reconstruct a campaign's plan. Spec is the
// submitted spec with defaults resolved; Scenario is the fully-resolved
// base scenario (the spec's Go-side Scenario override is not serializable,
// so the resolved form travels explicitly and is re-attached before
// expansion). Hash is the coordinator's plan hash the worker must match.
type SpecResponse struct {
	Spec     campaign.Spec  `json:"spec"`
	Scenario *scenario.Spec `json:"scenario"`
	Hash     string         `json:"hash"`
}

// Plan reconstructs the campaign plan a coordinator expanded, verifying
// the hash. Shared by the worker and tests.
func (sr *SpecResponse) Plan() (*campaign.Plan, error) {
	spec := sr.Spec
	spec.Scenario = sr.Scenario
	plan, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if plan.Hash != sr.Hash {
		return nil, fmt.Errorf("dist: local plan hash %.12s… does not match coordinator's %.12s… (version skew?)",
			plan.Hash, sr.Hash)
	}
	return plan, nil
}

// StatusResponse is the coordinator's introspection view.
type StatusResponse struct {
	Campaigns int `json:"campaigns"`
	Running   int `json:"running"`
	// Leases is the number of currently outstanding worker leases.
	Leases int `json:"leases"`
	// Pending is the number of re-issue-queued units across campaigns.
	Pending int `json:"pending"`
}
