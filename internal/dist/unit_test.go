package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"adhocsim/internal/stats"
)

// ---- hub ----

func TestHubPublishSubscribe(t *testing.T) {
	h := NewHub()
	a := h.Subscribe("t1", 8)
	defer a.Cancel()
	b := h.Subscribe("t1", 8)
	defer b.Cancel()
	other := h.Subscribe("t2", 8)
	defer other.Cancel()

	h.Publish("t1", Event{Type: "x", Campaign: "c1"})
	for _, sub := range []*Sub{a, b} {
		select {
		case e := <-sub.C():
			if e.Type != "x" || e.Campaign != "c1" {
				t.Errorf("got %+v", e)
			}
		case <-time.After(time.Second):
			t.Fatal("subscriber did not receive")
		}
	}
	select {
	case e := <-other.C():
		t.Errorf("topic isolation broken: %+v", e)
	default:
	}
}

func TestHubCancelStopsDelivery(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("t", 8)
	s.Cancel()
	s.Cancel() // idempotent
	h.Publish("t", Event{Type: "x"})
	select {
	case e := <-s.C():
		t.Errorf("cancelled subscriber received %+v", e)
	default:
	}
}

func TestHubDropsOldestWhenFull(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("t", 4)
	defer s.Cancel()
	for i := 0; i < 10; i++ {
		h.Publish("t", Event{Type: "e", Label: fmt.Sprint(i)})
	}
	// The buffer holds the 4 newest events; the oldest were evicted.
	var got []string
	for len(s.C()) > 0 {
		got = append(got, (<-s.C()).Label)
	}
	if len(got) != 4 {
		t.Fatalf("buffered %d events, want 4: %v", len(got), got)
	}
	if got[len(got)-1] != "9" {
		t.Errorf("newest event lost: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("order not preserved: %v", got)
		}
	}
}

// ---- cache ----

func sampleResults(n int) stats.Results {
	var r stats.Results
	r.DataSent = uint64(n)
	r.DataDelivered = uint64(n - 1)
	r.PDR = float64(n-1) / float64(n)
	r.RoutingByType = map[string]uint64{"RREQ": uint64(n)}
	return r
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, found, err := s.Get("k1"); found || err != nil {
		t.Fatalf("empty store: found=%v err=%v", found, err)
	}
	want := sampleResults(10)
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Get("k1")
	if err != nil || !found || !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip: got=%+v found=%v err=%v", got, found, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestFSStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if _, found, err := s.Get(key); found || err != nil {
		t.Fatalf("empty store: found=%v err=%v", found, err)
	}
	want := sampleResults(7)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}

	// A different handle on the same directory sees the entry (the
	// cross-coordinator-restart story).
	s2, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, found, err := s2.Get(key)
	if err != nil || !found || !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip: got=%+v found=%v err=%v", got, found, err)
	}

	// Overwriting is fine (last write wins; contents are identical by
	// construction anyway).
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}

	// A corrupt entry degrades to a miss, never to a wrong result.
	if err := os.WriteFile(filepath.Join(dir, key[:2], key+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, found, err := s.Get(key); found || err != nil {
		t.Fatalf("corrupt entry: found=%v err=%v, want miss", found, err)
	}

	// Malformed keys are rejected, not mapped to surprising paths.
	if err := s.Put("x", want); err == nil {
		t.Error("Put accepted a malformed key")
	}
	if _, _, err := s.Get("x"); err == nil {
		t.Error("Get accepted a malformed key")
	}
}

// ---- lease table ----

func TestLeaseTable(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	lt := newLeaseTable(clock)

	l1 := lt.grant("c1", 0, 0, "w1", 10*time.Second)
	l2 := lt.grant("c1", 0, 1, "w2", 10*time.Second)
	l3 := lt.grant("c2", 1, 0, "w1", 30*time.Second)
	if lt.count("") != 3 || lt.count("c1") != 2 || lt.count("c2") != 1 {
		t.Fatalf("counts: all=%d c1=%d c2=%d", lt.count(""), lt.count("c1"), lt.count("c2"))
	}
	if l1.ID == l2.ID {
		t.Fatal("lease ids collide")
	}

	// Renewal pushes the deadline; unknown ids fail.
	now = now.Add(8 * time.Second)
	if !lt.renew(l1.ID, 10*time.Second) {
		t.Fatal("renewing a live lease failed")
	}
	if lt.renew("nope", 10*time.Second) {
		t.Fatal("renewed an unknown lease")
	}

	// At t+12s: l2 (deadline t+10) expired; l1 was renewed to t+18, l3
	// runs to t+30.
	now = now.Add(4 * time.Second)
	expired := lt.expire()
	if len(expired) != 1 || expired[0].ID != l2.ID {
		t.Fatalf("expired %v, want just %s", expired, l2.ID)
	}
	if lt.renew(l2.ID, time.Second) {
		t.Error("renewed an expired lease")
	}

	// Release returns the lease for re-queueing; double release is a no-op.
	got, ok := lt.release(l1.ID)
	if !ok || got.Cell != 0 || got.Rep != 0 {
		t.Fatalf("release: %+v ok=%v", got, ok)
	}
	if _, ok := lt.release(l1.ID); ok {
		t.Error("double release succeeded")
	}

	// dropCampaign clears the rest of c2.
	if n := lt.dropCampaign("c2"); n != 1 {
		t.Errorf("dropCampaign removed %d leases, want 1", n)
	}
	if lt.count("") != 0 {
		t.Errorf("%d leases left, want 0", lt.count(""))
	}
	_ = l3
}

// ---- retry/backoff ----

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := retry(context.Background(), time.Millisecond, 4*time.Millisecond, func() error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	calls := 0
	sentinel := errors.New("bad request")
	err := retry(context.Background(), time.Millisecond, time.Millisecond, func() error {
		calls++
		return permanent(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the unwrapped sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("retried a permanent error %d times", calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := retry(ctx, 5*time.Millisecond, 50*time.Millisecond, func() error {
		calls++
		return errors.New("always failing")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls == 0 {
		t.Fatal("f never ran")
	}
}
