package dist

import (
	"strconv"
	"sync"
	"time"
)

// Lease is one unit of work handed to a worker with a deadline. A worker
// renews the lease while executing; a lease whose deadline passes without
// renewal is presumed lost (worker death, network partition) and its unit
// is re-issued, so a killed worker loses nothing but the wall clock its
// in-flight run had consumed. Duplicated execution after a false-positive
// expiry is harmless: runs are deterministic and the campaign engine keeps
// the first committed result.
type Lease struct {
	ID       string
	Campaign string
	Cell     int
	Rep      int
	Worker   string
	Deadline time.Time
}

// leaseTable tracks outstanding leases. The clock is injectable for tests.
type leaseTable struct {
	mu     sync.Mutex
	now    func() time.Time
	seq    int
	leases map[string]*Lease
}

func newLeaseTable(now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{now: now, leases: make(map[string]*Lease)}
}

// grant issues a new lease for the unit.
func (t *leaseTable) grant(campaignID string, cell, rep int, worker string, ttl time.Duration) *Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	l := &Lease{
		ID:       "l" + strconv.Itoa(t.seq),
		Campaign: campaignID,
		Cell:     cell,
		Rep:      rep,
		Worker:   worker,
		Deadline: t.now().Add(ttl),
	}
	t.leases[l.ID] = l
	return l
}

// renew pushes the deadline out by ttl; it fails on unknown (expired,
// released, campaign-dropped) leases, which tells the worker its run is
// orphaned and should be abandoned.
func (t *leaseTable) renew(id string, ttl time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[id]
	if !ok {
		return false
	}
	l.Deadline = t.now().Add(ttl)
	return true
}

// release removes a lease (commit landed, or the worker gave the unit
// back) and returns it so the caller can re-queue the unit if needed.
func (t *leaseTable) release(id string) (*Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[id]
	if ok {
		delete(t.leases, id)
	}
	return l, ok
}

// expire removes and returns every lease whose deadline has passed.
func (t *leaseTable) expire() []*Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []*Lease
	for id, l := range t.leases {
		if now.After(l.Deadline) {
			delete(t.leases, id)
			out = append(out, l)
		}
	}
	return out
}

// dropCampaign removes every lease of one campaign (it finished or was
// cancelled) and returns how many were outstanding.
func (t *leaseTable) dropCampaign(campaignID string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, l := range t.leases {
		if l.Campaign == campaignID {
			delete(t.leases, id)
			n++
		}
	}
	return n
}

// count reports outstanding leases, optionally filtered by campaign
// ("" = all).
func (t *leaseTable) count(campaignID string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if campaignID == "" {
		return len(t.leases)
	}
	n := 0
	for _, l := range t.leases {
		if l.Campaign == campaignID {
			n++
		}
	}
	return n
}
