package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"adhocsim/internal/campaign"
	"adhocsim/internal/stats"
)

// WorkerOptions configure a worker process.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker in leases (default "<hostname>-<pid>").
	ID string
	// Slots is the number of concurrently executed runs (default 1).
	Slots int
	// PollInterval is the idle wait between lease attempts when the
	// coordinator has no work (default 500ms, jittered).
	PollInterval time.Duration
	// BackoffBase/BackoffMax bound the retry schedule for lease, renew and
	// commit calls (defaults 50ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Hard, when non-nil, force-aborts in-flight runs when cancelled. The
	// ctx passed to RunWorker is the graceful signal: it stops new leases
	// but lets in-flight runs finish and commit. Hard is the second-signal
	// escalation.
	Hard context.Context
	// Client overrides the HTTP client (it must not set a global Timeout:
	// the control stream is long-lived).
	Client *http.Client
	// Logf receives worker diagnostics (default: silent).
	Logf func(format string, args ...any)
}

// worker is the client side of the distribution protocol.
type worker struct {
	opts   WorkerOptions
	base   string
	id     string
	client *http.Client
	hard   context.Context
	logf   func(string, ...any)

	mu       sync.Mutex
	plans    map[string]*campaign.Plan // campaign id → locally expanded plan
	bad      map[string]string         // campaign id → why its spec was rejected
	ended    map[string]bool           // campaigns cancelled/finished per control stream
	inflight map[*inflightRun]struct{}
}

type inflightRun struct {
	campaign string
	cancel   context.CancelFunc
}

// RunWorker joins a coordinator and executes leased run units until ctx is
// cancelled. Cancelling ctx is the graceful drain: no new leases are
// taken, in-flight runs complete and commit, leases are released, and the
// function returns nil. Cancelling opts.Hard aborts in-flight runs
// immediately (their leases are released so the units re-issue promptly).
//
// All coordinator calls retry with exponential backoff and full jitter, so
// a worker survives coordinator restarts: it simply re-leases once the
// coordinator is back (the journal and the first-result-wins commit rule
// make any resulting duplication harmless).
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Coordinator == "" {
		return errors.New("dist: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	hard := opts.Hard
	if hard == nil {
		hard = context.Background()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	w := &worker{
		opts:     opts,
		base:     strings.TrimRight(opts.Coordinator, "/"),
		id:       opts.ID,
		client:   client,
		hard:     hard,
		logf:     logf,
		plans:    make(map[string]*campaign.Plan),
		bad:      make(map[string]string),
		ended:    make(map[string]bool),
		inflight: make(map[*inflightRun]struct{}),
	}

	// The control listener outlives the graceful drain (an in-flight run
	// still wants cancellation news) but dies with the worker.
	watchCtx, stopWatch := context.WithCancel(hard)
	defer stopWatch()
	go w.watchControl(watchCtx)

	errs := make([]error, opts.Slots)
	var wg sync.WaitGroup
	for i := 0; i < opts.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.runSlot(ctx)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return nil
}

// runSlot is one lease → execute → commit loop.
func (w *worker) runSlot(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil // graceful drain complete
		}
		grant, got, err := w.lease(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil
			}
			return err
		}
		if !got {
			if !w.idle(ctx) {
				return nil
			}
			continue
		}
		w.execute(ctx, grant)
	}
}

// idle waits out the poll interval (jittered); false means ctx ended.
func (w *worker) idle(ctx context.Context) bool {
	d := w.opts.PollInterval/2 + rand.N(w.opts.PollInterval)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// lease asks for one unit; got == false is a clean "no work right now".
func (w *worker) lease(ctx context.Context) (grant LeaseGrant, got bool, err error) {
	err = retry(ctx, w.opts.BackoffBase, w.opts.BackoffMax, func() error {
		status, body, err := w.post(ctx, "/dist/lease", LeaseRequest{Worker: w.id}, &grant)
		if err != nil {
			return err
		}
		switch {
		case status == http.StatusOK:
			got = true
			return nil
		case status == http.StatusNoContent:
			got = false
			return nil
		case status >= 400 && status < 500:
			return permanent(fmt.Errorf("lease rejected: %d: %s", status, body))
		default:
			return fmt.Errorf("lease: %d: %s", status, body)
		}
	})
	return grant, got, err
}

// execute runs one leased unit end to end.
func (w *worker) execute(ctx context.Context, grant LeaseGrant) {
	if w.isEnded(grant.Campaign) {
		w.release(grant.LeaseID)
		return
	}
	plan, err := w.planFor(ctx, grant.Campaign, grant.SpecHash)
	if err != nil {
		w.logf("worker %s: campaign %s: %v", w.id, grant.Campaign, err)
		w.release(grant.LeaseID)
		return
	}
	// Cheap integrity probes on top of the plan-hash comparison.
	if grant.Cell < 0 || grant.Cell >= len(plan.Cells) || grant.Rep < 0 || grant.Rep >= plan.Spec.MaxReps {
		w.logf("worker %s: lease %s outside the plan", w.id, grant.LeaseID)
		w.release(grant.LeaseID)
		return
	}
	if seed := plan.SeedFor(grant.Cell, grant.Rep); seed != grant.Seed {
		w.logf("worker %s: lease %s seed mismatch (%d != %d)", w.id, grant.LeaseID, seed, grant.Seed)
		w.release(grant.LeaseID)
		return
	}

	// The run aborts on the hard context, a lost lease, or a cancelled
	// campaign — never on the soft ctx: a graceful drain lets it finish.
	runCtx, cancelRun := context.WithCancel(w.hard)
	defer cancelRun()
	h := &inflightRun{campaign: grant.Campaign, cancel: cancelRun}
	if !w.track(h) {
		// Campaign ended between the first check and tracking.
		w.release(grant.LeaseID)
		return
	}
	defer w.untrack(h)

	hbCtx, stopHB := context.WithCancel(runCtx)
	defer stopHB()
	go w.heartbeat(hbCtx, cancelRun, grant, time.Duration(grant.TTLMs)*time.Millisecond)

	res, err := plan.ExecuteUnit(runCtx, grant.Cell, grant.Rep)
	stopHB()
	if err != nil {
		// Aborted (campaign cancelled, lease lost, hard shutdown): give the
		// unit back so it re-issues promptly rather than waiting out the
		// lease deadline.
		w.release(grant.LeaseID)
		return
	}
	w.commit(grant, res)
}

// heartbeat renews the lease at TTL/3 cadence; a 410 means the lease was
// re-issued (or its campaign ended) and this run's work is orphaned — stop
// burning CPU on it.
func (w *worker) heartbeat(ctx context.Context, cancelRun context.CancelFunc, grant LeaseGrant, ttl time.Duration) {
	iv := ttl / 3
	if iv <= 0 {
		iv = time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			attempt, cancel := context.WithTimeout(ctx, iv)
			var lost bool
			err := retry(attempt, w.opts.BackoffBase, iv, func() error {
				status, body, err := w.post(attempt, "/dist/renew", RenewRequest{LeaseID: grant.LeaseID}, nil)
				if err != nil {
					return err
				}
				if status == http.StatusOK {
					return nil
				}
				if status == http.StatusGone || status == http.StatusNotFound {
					lost = true
					return nil
				}
				return fmt.Errorf("renew: %d: %s", status, body)
			})
			cancel()
			if lost {
				w.logf("worker %s: lease %s lost, aborting run", w.id, grant.LeaseID)
				cancelRun()
				return
			}
			_ = err // transient failure: the next tick tries again
		}
	}
}

// commit delivers a result; duplicates (409) reconcile silently against
// the coordinator's winning copy.
func (w *worker) commit(grant LeaseGrant, res stats.Results) {
	// Commit must survive a graceful drain (soft ctx already cancelled),
	// so it runs on the hard context, time-boxed.
	ctx, cancel := context.WithTimeout(w.hard, time.Minute)
	defer cancel()
	req := CommitRequest{
		LeaseID:  grant.LeaseID,
		Worker:   w.id,
		Campaign: grant.Campaign,
		SpecHash: grant.SpecHash,
		Cell:     grant.Cell,
		Rep:      grant.Rep,
		Results:  res,
	}
	err := retry(ctx, w.opts.BackoffBase, w.opts.BackoffMax, func() error {
		var resp CommitResponse
		status, body, err := w.post(ctx, "/dist/commit", req, &resp)
		if err != nil {
			return err
		}
		switch {
		case status == http.StatusOK:
			return nil
		case status == http.StatusConflict:
			// Duplicate commit: the coordinator answered with the winning
			// result. Determinism makes it identical to ours; nothing to do.
			return nil
		case status >= 400 && status < 500:
			return permanent(fmt.Errorf("commit rejected: %d: %s", status, body))
		default:
			return fmt.Errorf("commit: %d: %s", status, body)
		}
	})
	if err != nil {
		w.logf("worker %s: commit (%s cell %d rep %d) failed: %v",
			w.id, grant.Campaign, grant.Cell, grant.Rep, err)
	}
}

// release gives an unfinished unit back (best-effort: expiry is the
// backstop).
func (w *worker) release(leaseID string) {
	ctx, cancel := context.WithTimeout(w.hard, 5*time.Second)
	defer cancel()
	_, _, _ = w.post(ctx, "/dist/release", ReleaseRequest{LeaseID: leaseID}, nil)
}

// planFor returns the locally expanded plan for a campaign, fetching and
// verifying the spec on first use. A plan that cannot be reconstructed
// bit-identically (version skew between worker and coordinator binaries)
// poisons the campaign locally: its leases are released immediately
// instead of executing under a wrong model.
func (w *worker) planFor(ctx context.Context, id, hash string) (*campaign.Plan, error) {
	w.mu.Lock()
	if why, bad := w.bad[id]; bad {
		w.mu.Unlock()
		return nil, fmt.Errorf("spec rejected earlier: %s", why)
	}
	if p := w.plans[id]; p != nil {
		w.mu.Unlock()
		if p.Hash != hash {
			return nil, fmt.Errorf("coordinator changed spec hash mid-campaign (%.12s… → %.12s…)", p.Hash, hash)
		}
		return p, nil
	}
	w.mu.Unlock()

	var sr SpecResponse
	err := retry(ctx, w.opts.BackoffBase, w.opts.BackoffMax, func() error {
		status, body, err := w.get(ctx, "/dist/campaigns/"+id+"/spec", &sr)
		if err != nil {
			return err
		}
		if status == http.StatusOK {
			return nil
		}
		if status >= 400 && status < 500 {
			return permanent(fmt.Errorf("spec fetch: %d: %s", status, body))
		}
		return fmt.Errorf("spec fetch: %d: %s", status, body)
	})
	if err != nil {
		return nil, err
	}
	plan, err := sr.Plan()
	if err == nil && plan.Hash != hash {
		err = fmt.Errorf("spec hash %.12s… does not match lease hash %.12s…", plan.Hash, hash)
	}
	if err != nil {
		w.mu.Lock()
		w.bad[id] = err.Error()
		w.mu.Unlock()
		return nil, err
	}
	w.mu.Lock()
	w.plans[id] = plan
	w.mu.Unlock()
	return plan, nil
}

// watchControl follows the coordinator's control stream, marking ended
// campaigns and aborting their in-flight runs. The connection is retried
// forever — renewals failing against dropped leases are the fallback
// cancellation signal while the stream is down.
func (w *worker) watchControl(ctx context.Context) {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/dist/events", nil)
		if err != nil {
			return
		}
		resp, err := w.client.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				_ = readSSE(ctx, resp.Body, func(e Event) {
					if e.Type == EventCampaignCancelled || e.Type == EventCampaignDone {
						w.endCampaign(e.Campaign)
					}
				})
			}
			resp.Body.Close()
		}
		if !sleepCtx(ctx, 500*time.Millisecond) {
			return
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d/2 + rand.N(d))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// endCampaign records a terminal campaign and aborts its in-flight runs.
func (w *worker) endCampaign(id string) {
	w.mu.Lock()
	w.ended[id] = true
	delete(w.plans, id) // free the expanded plan; it will not be needed again
	var cancels []context.CancelFunc
	for h := range w.inflight {
		if h.campaign == id {
			cancels = append(cancels, h.cancel)
		}
	}
	w.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

func (w *worker) isEnded(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ended[id]
}

// track registers an in-flight run; false means its campaign already ended.
func (w *worker) track(h *inflightRun) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ended[h.campaign] {
		return false
	}
	w.inflight[h] = struct{}{}
	return true
}

func (w *worker) untrack(h *inflightRun) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.inflight, h)
}

// post sends a JSON request; out (when non-nil) is decoded from 2xx and
// 409 bodies. The returned body string is for error messages only.
func (w *worker) post(ctx context.Context, path string, in, out any) (int, string, error) {
	b, err := json.Marshal(in)
	if err != nil {
		return 0, "", permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(b))
	if err != nil {
		return 0, "", permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *worker) get(ctx context.Context, path string, out any) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
	if err != nil {
		return 0, "", permanent(err)
	}
	return w.do(req, out)
}

func (w *worker) do(req *http.Request, out any) (int, string, error) {
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, "", err
	}
	if out != nil && len(body) > 0 &&
		(resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusConflict) {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, string(body), fmt.Errorf("decoding %s response: %w", req.URL.Path, err)
		}
	}
	return resp.StatusCode, strings.TrimSpace(string(body)), nil
}
