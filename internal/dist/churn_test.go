package dist

import (
	"reflect"
	"testing"
	"time"

	"adhocsim/internal/campaign"
)

// churnAxisSpec sweeps the autoconfiguration protocol across a churn axis
// — the lifecycle analogue of testSpec. It arrives at the coordinator as
// JSON like a real client's submission, so the lifecycle axis and the
// churn metrics cross the wire encoding both ways.
func churnAxisSpec() campaign.Spec {
	nodes, area, dur, sources := 10, 600.0, 45.0, 3
	return campaign.Spec{
		Name:      "dist-churn",
		Base:      campaign.ScenarioPatch{Nodes: &nodes, AreaW: &area, DurationS: &dur, Sources: &sources},
		Protocols: []string{"AUTOCONF"},
		Axes:      []campaign.AxisSpec{{Name: "lifecycle", Models: []string{"staggered-join", "onoff-fail"}}},
		MaxReps:   2,
	}
}

// TestDistributedChurnMatchesSingleProcess extends the core distributed
// determinism claim to dynamic membership: a churn × autoconf campaign
// executed by remote workers over HTTP aggregates to a result
// reflect.DeepEqual to the single-process run, and the churn metrics
// (time_to_converge, addr_collision_rate, membership counters) survive the
// wire bit-identically.
func TestDistributedChurnMatchesSingleProcess(t *testing.T) {
	spec := churnAxisSpec()
	ref := singleProcessResult(t, spec)

	s, base := newTestServer(t, ServerOptions{LocalWorkers: -1, Cache: NewMemStore()})
	startWorker(t, base, 2)
	startWorker(t, base, 2)

	created := submitSpec(t, base, spec)
	waitDone(t, base, created.ID, time.Minute)

	m := s.lookup(created.ID)
	if m == nil {
		t.Fatal("campaign disappeared")
	}
	if got := m.c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("distributed churn result differs from single-process:\nref: %+v\ngot: %+v", ref, got)
	}

	viaHTTP := httpResults(t, base, created.ID)
	if !reflect.DeepEqual(*ref, viaHTTP) {
		t.Error("HTTP-decoded churn result differs from single-process reference")
	}
	for _, cell := range viaHTTP.Cells {
		if cell.Merged.Joins == 0 {
			t.Errorf("%s: no joins recorded under a churn model", cell.Label)
		}
		if ttc, ok := cell.Metrics["time_to_converge"]; !ok || ttc.Mean <= 0 {
			t.Errorf("%s: missing or non-positive time_to_converge summary over the wire", cell.Label)
		}
	}
}
