package dist

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// Journal edge cases under distribution: the JSONL checkpoint is the
// coordinator's commit log, so its failure modes (wrong spec, torn tail,
// partial coverage) must compose correctly with leases, caches and
// concurrent remote committers.

// journalPathFor computes the coordinator's journal path for a spec.
func journalPathFor(t *testing.T, dir string) string {
	t.Helper()
	plan, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, plan.Hash[:16]+".jsonl")
}

// TestJournalSpecHashMismatchRejected: a checkpoint written by a different
// spec must be rejected at submission time with 409 — not silently
// resumed into a corrupted aggregate.
func TestJournalSpecHashMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := journalPathFor(t, dir)
	header := `{"version":1,"spec_hash":"` + "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef" + `","cells":2,"max_reps":2}` + "\n"
	if err := os.WriteFile(path, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}

	_, base := newTestServer(t, ServerOptions{LocalWorkers: -1, JournalDir: dir})
	body, _ := json.Marshal(testSpec())
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, http.StatusConflict, nil)

	// The poisoned journal was not truncated or overwritten by the
	// rejection: the evidence survives for the operator.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != header {
		t.Error("rejected submission modified the mismatched journal")
	}
}

// TestJournalTornTailWithConcurrentCommitters: a journal whose tail was
// torn mid-write (process death during append) is truncated to the last
// complete line on resume, and the missing runs are re-executed by
// concurrent remote workers — landing, through the in-order commit path,
// on exactly the uninterrupted result.
func TestJournalTornTailWithConcurrentCommitters(t *testing.T) {
	spec := testSpec()
	ref := singleProcessResult(t, spec)
	dir := t.TempDir()
	path := journalPathFor(t, dir)

	// First pass: run to completion so the journal holds every run.
	s1, base1 := newTestServer(t, ServerOptions{LocalWorkers: 2, JournalDir: dir})
	created1 := submitSpec(t, base1, spec)
	waitDone(t, base1, created1.ID, time.Minute)
	s1.Close() // release the journal flock

	// Tear the tail: keep the header and the first entry, then append a
	// prefix of the second entry with no terminating newline.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want header + 4 entries", len(lines))
	}
	torn := append([]byte{}, lines[0]...) // header
	torn = append(torn, lines[1]...)      // entry 0
	torn = append(torn, lines[2][:len(lines[2])/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume with no local executors: every missing run must arrive from
	// remote workers committing concurrently over HTTP.
	s2, base2 := newTestServer(t, ServerOptions{LocalWorkers: -1, JournalDir: dir})
	startWorker(t, base2, 2)
	startWorker(t, base2, 2)
	created2 := submitSpec(t, base2, spec)
	snap := waitDone(t, base2, created2.ID, time.Minute)
	if snap.RunsDone != created2.MaxRuns {
		t.Fatalf("resumed campaign committed %d of %d runs", snap.RunsDone, created2.MaxRuns)
	}
	if got := s2.lookup(created2.ID).c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("torn-tail resume result differs from uninterrupted run")
	}

	// The repaired journal ends on complete lines: header + 4 entries.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("journal still ends mid-line after resume")
	}
	if n := bytes.Count(data, []byte("\n")); n != 5 {
		t.Errorf("journal has %d complete lines, want 5 (header + 4 entries)", n)
	}
}

// TestResumeHalfJournalHalfCache: a campaign resumes from a journal
// holding half its runs while the result cache supplies the other half —
// the campaign completes at submission time (zero executions) and the
// aggregate still equals the uninterrupted run.
func TestResumeHalfJournalHalfCache(t *testing.T) {
	spec := testSpec()
	ref := singleProcessResult(t, spec)
	cache := NewMemStore()
	dir1 := t.TempDir()

	// Populate both the cache and a complete journal.
	s1, base1 := newTestServer(t, ServerOptions{LocalWorkers: 2, JournalDir: dir1, Cache: cache})
	created1 := submitSpec(t, base1, spec)
	waitDone(t, base1, created1.ID, time.Minute)
	s1.Close()
	if cache.Len() != created1.MaxRuns {
		t.Fatalf("cache holds %d results, want %d", cache.Len(), created1.MaxRuns)
	}

	// Second journal dir: header + the first half of the entries.
	dir2 := t.TempDir()
	data, err := os.ReadFile(journalPathFor(t, dir1))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	half := append([]byte{}, lines[0]...)
	keep := (len(lines) - 1) / 2
	for _, l := range lines[1 : 1+keep] {
		half = append(half, l...)
	}
	if err := os.WriteFile(journalPathFor(t, dir2), half, 0o644); err != nil {
		t.Fatal(err)
	}

	// No local executors, no workers: the journal replays its half, the
	// cache must cover the rest at submission time.
	s2, base2 := newTestServer(t, ServerOptions{LocalWorkers: -1, JournalDir: dir2, Cache: cache})
	created2 := submitSpec(t, base2, spec)
	snap := waitDone(t, base2, created2.ID, 10*time.Second)
	if snap.RunsDone != created2.MaxRuns {
		t.Fatalf("campaign committed %d of %d runs", snap.RunsDone, created2.MaxRuns)
	}
	wantCached := created2.MaxRuns - keep
	if snap.RunsFromCache != wantCached {
		t.Errorf("%d runs from cache, want %d (journal already held %d)",
			snap.RunsFromCache, wantCached, keep)
	}
	if got := s2.lookup(created2.ID).c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("half-journal half-cache result differs from uninterrupted run")
	}

	// The journal was healed to full coverage: cached completions are
	// journaled like live ones, so resume never depends on the cache
	// staying populated.
	data, err = os.ReadFile(journalPathFor(t, dir2))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != created2.MaxRuns+1 {
		t.Errorf("resumed journal has %d lines, want %d", n, created2.MaxRuns+1)
	}
}
