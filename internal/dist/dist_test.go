package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"adhocsim/internal/campaign"
)

// testSpec is a small 2-protocol × 2-rep campaign (4 runs, milliseconds of
// wall clock) used across the end-to-end tests.
func testSpec() campaign.Spec {
	nodes, area, dur, sources := 8, 500.0, 10.0, 2
	return campaign.Spec{
		Name:      "dist-test",
		Base:      campaign.ScenarioPatch{Nodes: &nodes, AreaW: &area, DurationS: &dur, Sources: &sources},
		Protocols: []string{"DSR", "AODV"},
		MaxReps:   2,
	}
}

// biggerSpec has enough units (15) that a campaign is reliably still
// running when a test wants to interfere with it.
func biggerSpec() campaign.Spec {
	nodes, area, dur, sources := 8, 500.0, 30.0, 2
	return campaign.Spec{
		Name:      "dist-test-big",
		Base:      campaign.ScenarioPatch{Nodes: &nodes, AreaW: &area, DurationS: &dur, Sources: &sources},
		Protocols: []string{"DSR", "AODV", "DSDV"},
		MaxReps:   5,
	}
}

func newTestServer(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	s := NewServer(opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs.URL
}

// startWorker runs an in-process worker against a coordinator URL and
// returns a stop function that drains it gracefully.
func startWorker(t *testing.T, base string, slots int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := RunWorker(ctx, WorkerOptions{
			Coordinator:  base,
			Slots:        slots,
			PollInterval: 20 * time.Millisecond,
			BackoffBase:  5 * time.Millisecond,
			BackoffMax:   100 * time.Millisecond,
			Logf:         t.Logf,
		}); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return stop
}

func submitSpec(t *testing.T, base string, spec campaign.Spec) createdResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var created createdResponse
	decodeBody(t, resp, http.StatusCreated, &created)
	return created
}

func decodeBody(t *testing.T, resp *http.Response, want int, v any) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("status %d (want %d): %s", resp.StatusCode, want, buf.String())
	}
	if v != nil {
		if err := json.Unmarshal(buf.Bytes(), v); err != nil {
			t.Fatalf("decoding body: %v", err)
		}
	}
}

func waitDone(t *testing.T, base, id string, timeout time.Duration) campaign.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			t.Fatalf("progress: %v", err)
		}
		var snap campaign.Snapshot
		decodeBody(t, resp, http.StatusOK, &snap)
		switch snap.State {
		case campaign.StateDone:
			return snap
		case campaign.StateFailed, campaign.StateCancelled:
			t.Fatalf("campaign ended %s: %s", snap.State, snap.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func httpResults(t *testing.T, base, id string) campaign.Result {
	t.Helper()
	resp, err := http.Get(base + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	var result campaign.Result
	decodeBody(t, resp, http.StatusOK, &result)
	return result
}

// singleProcessResult runs the spec in-process (no HTTP, no distribution)
// as the determinism reference.
func singleProcessResult(t *testing.T, spec campaign.Spec) *campaign.Result {
	t.Helper()
	res, err := campaign.Run(context.Background(), spec, campaign.Options{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res
}

// TestResultJSONRoundtrip pins down that a campaign Result survives the
// JSON wire encoding bit-identically (reflect.DeepEqual) — the property
// every distributed DeepEqual guarantee in this package rests on.
func TestResultJSONRoundtrip(t *testing.T) {
	ref := singleProcessResult(t, testSpec())
	b, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	var back campaign.Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ref, back) {
		t.Errorf("JSON roundtrip perturbed the result:\nref:  %+v\nback: %+v", ref, back)
	}
}

// TestDistributedMatchesSingleProcess is the core determinism claim: a
// campaign executed entirely by remote workers over HTTP aggregates to a
// result reflect.DeepEqual to the single-process in-memory run — worker
// results cross two JSON boundaries on the way, so this also pins down
// that the wire encoding is lossless for every stats field.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	spec := testSpec()
	ref := singleProcessResult(t, spec)

	s, base := newTestServer(t, ServerOptions{LocalWorkers: -1, Cache: NewMemStore()})
	startWorker(t, base, 2)
	startWorker(t, base, 2)

	created := submitSpec(t, base, spec)
	waitDone(t, base, created.ID, time.Minute)

	m := s.lookup(created.ID)
	if m == nil {
		t.Fatal("campaign disappeared")
	}
	got := m.c.Result()
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("distributed result differs from single-process:\nref: %+v\ngot: %+v", ref, got)
	}

	// The HTTP view must decode back to the same value.
	viaHTTP := httpResults(t, base, created.ID)
	if !reflect.DeepEqual(*ref, viaHTTP) {
		t.Errorf("HTTP-decoded result differs from single-process reference")
	}
}

// TestMixedLocalAndRemote runs local executors and remote workers against
// the same campaign; the shared dispatch/commit path must keep the result
// identical.
func TestMixedLocalAndRemote(t *testing.T) {
	spec := testSpec()
	ref := singleProcessResult(t, spec)

	s, base := newTestServer(t, ServerOptions{LocalWorkers: 2})
	startWorker(t, base, 2)

	created := submitSpec(t, base, spec)
	waitDone(t, base, created.ID, time.Minute)
	if got := s.lookup(created.ID).c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("mixed local+remote result differs from single-process")
	}
}

// TestLeaseExpiryReissuesUnit simulates a worker that leases a unit and
// dies silently (no renew, no release, no commit): the reaper must
// re-issue the unit and the campaign must still finish with the correct
// result.
func TestLeaseExpiryReissuesUnit(t *testing.T) {
	spec := testSpec()
	ref := singleProcessResult(t, spec)

	s, base := newTestServer(t, ServerOptions{
		LocalWorkers: -1,
		LeaseTTL:     100 * time.Millisecond,
		ReapInterval: 20 * time.Millisecond,
	})

	created := submitSpec(t, base, spec)

	// The "doomed" worker takes one lease and vanishes.
	var grant LeaseGrant
	resp, err := http.Post(base+"/dist/lease", "application/json",
		bytes.NewReader([]byte(`{"worker":"doomed"}`)))
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	decodeBody(t, resp, http.StatusOK, &grant)
	if s.leases.count("") != 1 {
		t.Fatalf("expected 1 outstanding lease, got %d", s.leases.count(""))
	}

	// A healthy worker joins; once the doomed lease expires its unit is
	// re-issued and the campaign completes.
	startWorker(t, base, 2)
	waitDone(t, base, created.ID, time.Minute)
	if got := s.lookup(created.ID).c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("result after lease expiry differs from single-process")
	}

	// The dead worker's renewals are now rejected.
	resp, err = http.Post(base+"/dist/renew", "application/json",
		bytes.NewReader([]byte(`{"lease_id":"`+grant.LeaseID+`"}`)))
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	decodeBody(t, resp, http.StatusGone, nil)
}

// TestWorkerHardAbortAndRestart force-aborts a worker mid-campaign (the
// in-process analogue of kill -9 plus a restart) and checks the campaign
// still converges to the single-process result.
func TestWorkerHardAbortAndRestart(t *testing.T) {
	spec := biggerSpec()
	ref := singleProcessResult(t, spec)

	s, base := newTestServer(t, ServerOptions{
		LocalWorkers: -1,
		LeaseTTL:     200 * time.Millisecond,
		ReapInterval: 20 * time.Millisecond,
	})

	created := submitSpec(t, base, spec)
	sub := s.Hub().Subscribe(CampaignTopic(created.ID), 64)
	defer sub.Cancel()

	hard, abort := context.WithCancel(context.Background())
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		// ctx == hard: abort is immediate, not a graceful drain.
		_ = RunWorker(hard, WorkerOptions{
			Coordinator:  base,
			Slots:        2,
			PollInterval: 10 * time.Millisecond,
			BackoffBase:  5 * time.Millisecond,
			Hard:         hard,
		})
	}()

	// Abort the first worker as soon as one run lands.
	deadline := time.After(time.Minute)
	for committed := false; !committed; {
		select {
		case e := <-sub.C():
			if e.Type == EventRunCommitted {
				committed = true
			}
		case <-deadline:
			t.Fatal("no run committed within a minute")
		}
	}
	abort()
	<-firstDone

	startWorker(t, base, 2) // the "restarted" worker
	waitDone(t, base, created.ID, time.Minute)
	if got := s.lookup(created.ID).c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("result after worker abort+restart differs from single-process")
	}
}

// TestDuplicateCommitConflict checks the first-result-wins rule on the
// wire: the second commit of a unit gets 409 carrying the winning result.
func TestDuplicateCommitConflict(t *testing.T) {
	_, base := newTestServer(t, ServerOptions{LocalWorkers: -1})
	created := submitSpec(t, base, testSpec())

	var grant LeaseGrant
	resp, err := http.Post(base+"/dist/lease", "application/json",
		bytes.NewReader([]byte(`{"worker":"w1"}`)))
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	decodeBody(t, resp, http.StatusOK, &grant)

	// Execute the unit the way a worker would: fetch the spec, expand
	// locally, verify the hash, run.
	var sr SpecResponse
	resp, err = http.Get(base + "/dist/campaigns/" + created.ID + "/spec")
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	decodeBody(t, resp, http.StatusOK, &sr)
	plan, err := sr.Plan()
	if err != nil {
		t.Fatalf("reconstructing plan: %v", err)
	}
	res, err := plan.ExecuteUnit(context.Background(), grant.Cell, grant.Rep)
	if err != nil {
		t.Fatalf("executing unit: %v", err)
	}

	commit := func() (*http.Response, error) {
		body, _ := json.Marshal(CommitRequest{
			Worker: "w1", Campaign: grant.Campaign, SpecHash: grant.SpecHash,
			Cell: grant.Cell, Rep: grant.Rep, Results: res,
		})
		return http.Post(base+"/dist/commit", "application/json", bytes.NewReader(body))
	}

	resp, err = commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	var first CommitResponse
	decodeBody(t, resp, http.StatusOK, &first)
	if !first.Committed {
		t.Fatalf("first commit not accepted: %+v", first)
	}

	resp, err = commit()
	if err != nil {
		t.Fatalf("second commit: %v", err)
	}
	var second CommitResponse
	decodeBody(t, resp, http.StatusConflict, &second)
	if second.Committed {
		t.Error("duplicate commit claims to have been accepted")
	}
	if second.Results == nil {
		t.Fatal("409 response does not carry the winning result")
	}
	if !reflect.DeepEqual(*second.Results, res) {
		t.Error("winning result in 409 differs from the committed one")
	}

	// A commit under a stale spec hash is rejected before touching state.
	body, _ := json.Marshal(CommitRequest{
		Campaign: grant.Campaign, SpecHash: "deadbeef", Cell: 0, Rep: 1, Results: res,
	})
	resp, err = http.Post(base+"/dist/commit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("stale commit: %v", err)
	}
	decodeBody(t, resp, http.StatusConflict, nil)
}

// TestDeleteWhileRunning cancels a distributed campaign mid-flight over
// HTTP: the delete must settle the campaign, drop every lease, notify the
// control stream, and leave the worker idling harmlessly.
func TestDeleteWhileRunning(t *testing.T) {
	s, base := newTestServer(t, ServerOptions{LocalWorkers: -1})
	created := submitSpec(t, base, biggerSpec())

	sub := s.Hub().Subscribe(CampaignTopic(created.ID), 64)
	defer sub.Cancel()
	control := s.Hub().Subscribe(ControlTopic, 16)
	defer control.Cancel()

	startWorker(t, base, 1)

	// Wait until the campaign is demonstrably in-flight.
	deadline := time.After(time.Minute)
	for committed := false; !committed; {
		select {
		case e := <-sub.C():
			if e.Type == EventRunCommitted {
				committed = true
			}
		case <-deadline:
			t.Fatal("no run committed within a minute")
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/campaigns/"+created.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	var snap campaign.Snapshot
	decodeBody(t, resp, http.StatusOK, &snap)
	if snap.State != campaign.StateCancelled {
		t.Fatalf("state after delete = %s, want cancelled", snap.State)
	}

	// The control topic announced the cancellation (workers abort on it).
	cancelSeen := false
	ctrlDeadline := time.After(10 * time.Second)
	for !cancelSeen {
		select {
		case e := <-control.C():
			if e.Type == EventCampaignCancelled && e.Campaign == created.ID {
				cancelSeen = true
			}
		case <-ctrlDeadline:
			t.Fatal("no cancellation on the control topic")
		}
	}

	// Leases drain: dropped at delete, and any straggler commit is refused.
	if n := s.leases.count(created.ID); n != 0 {
		t.Errorf("campaign still holds %d leases after delete", n)
	}
	resp, err = http.Get(base + "/campaigns/" + created.ID + "/results")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	decodeBody(t, resp, http.StatusConflict, nil) // cancelled: no results

	// Deleting again is idempotent.
	req, _ = http.NewRequest(http.MethodDelete, base+"/campaigns/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("second delete: %v", err)
	}
	decodeBody(t, resp, http.StatusOK, &snap)
}

// TestCacheResubmitZeroRecompute: after a campaign completes once, an
// identical submission against a fresh coordinator sharing only the result
// cache must complete at submission time with every run served from cache.
func TestCacheResubmitZeroRecompute(t *testing.T) {
	spec := testSpec()
	cache := NewMemStore()

	s1, base1 := newTestServer(t, ServerOptions{Cache: cache})
	created1 := submitSpec(t, base1, spec)
	waitDone(t, base1, created1.ID, time.Minute)
	want := s1.lookup(created1.ID).c.Result()
	if cache.Len() == 0 {
		t.Fatal("completed campaign populated no cache entries")
	}

	// Fresh coordinator, no executors of any kind: cache is the only way.
	s2, base2 := newTestServer(t, ServerOptions{LocalWorkers: -1, Cache: cache})
	created2 := submitSpec(t, base2, spec)
	snap := waitDone(t, base2, created2.ID, 10*time.Second)
	if snap.RunsFromCache != snap.RunsDone || snap.RunsDone != created2.MaxRuns {
		t.Errorf("resubmission: %d runs done, %d from cache, want all %d cached",
			snap.RunsDone, snap.RunsFromCache, created2.MaxRuns)
	}
	if got := s2.lookup(created2.ID).c.Result(); !reflect.DeepEqual(want, got) {
		t.Errorf("cache-served result differs from computed result")
	}

	// Cross-campaign reuse: a different spec whose grid overlaps (same
	// base, fewer protocols) also starts from the shared units.
	overlap := spec
	overlap.Protocols = []string{"DSR"}
	created3 := submitSpec(t, base2, overlap)
	snap = waitDone(t, base2, created3.ID, 10*time.Second)
	if snap.RunsFromCache != snap.RunsDone {
		t.Errorf("overlapping campaign recomputed %d of %d runs",
			snap.RunsDone-snap.RunsFromCache, snap.RunsDone)
	}
}

// TestSSEStreamMonotone subscribes to a campaign's SSE stream over real
// HTTP and checks the committed-run counts never decrease and the stream
// terminates with campaign_done.
func TestSSEStreamMonotone(t *testing.T) {
	_, base := newTestServer(t, ServerOptions{LocalWorkers: 2})
	created := submitSpec(t, base, testSpec())

	resp, err := http.Get(base + created.Events)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}

	last := -1
	var types []string
	err = readSSE(context.Background(), resp.Body, func(e Event) {
		types = append(types, e.Type)
		if e.Snapshot != nil {
			if e.Snapshot.RunsDone < last {
				t.Errorf("runs_done went backwards: %d after %d", e.Snapshot.RunsDone, last)
			}
			last = e.Snapshot.RunsDone
		}
	})
	if err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	if len(types) == 0 || types[0] != EventSnapshot {
		t.Fatalf("stream did not open with a snapshot: %v", types)
	}
	if types[len(types)-1] != EventCampaignDone {
		t.Fatalf("stream did not end with campaign_done: %v", types)
	}
	if last != 4 {
		t.Errorf("final runs_done = %d, want 4", last)
	}

	// A late subscriber to the finished campaign gets snapshot + done
	// immediately and the stream closes.
	resp, err = http.Get(base + created.Events)
	if err != nil {
		t.Fatalf("late events: %v", err)
	}
	defer resp.Body.Close()
	types = nil
	if err := readSSE(context.Background(), resp.Body, func(e Event) {
		types = append(types, e.Type)
	}); err != nil {
		t.Fatalf("late SSE: %v", err)
	}
	if len(types) != 2 || types[0] != EventSnapshot || types[1] != EventCampaignDone {
		t.Fatalf("late subscription stream = %v, want [snapshot campaign_done]", types)
	}
}

// TestGracefulShutdownCheckpoints drains a coordinator mid-campaign and
// checks the journal is left as a clean, resumable checkpoint: a fresh
// coordinator on the same journal dir finishes the campaign and matches
// the uninterrupted result.
func TestGracefulShutdownCheckpoints(t *testing.T) {
	spec := biggerSpec()
	ref := singleProcessResult(t, spec)
	dir := t.TempDir()

	s1 := NewServer(ServerOptions{LocalWorkers: 2, JournalDir: dir})
	hs1 := httptest.NewServer(s1.Handler())
	created := submitSpec(t, hs1.URL, spec)

	sub := s1.Hub().Subscribe(CampaignTopic(created.ID), 64)
	deadline := time.After(time.Minute)
	for committed := false; !committed; {
		select {
		case e := <-sub.C():
			if e.Type == EventRunCommitted {
				committed = true
			}
		case <-deadline:
			t.Fatal("no run committed within a minute")
		}
	}
	sub.Cancel()

	// Graceful drain: in-flight runs finish and land in the journal.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	cancel()
	hs1.Close()

	s2, base2 := newTestServer(t, ServerOptions{LocalWorkers: 2, JournalDir: dir})
	created2 := submitSpec(t, base2, spec)
	snap := waitDone(t, base2, created2.ID, time.Minute)
	if snap.RunsDone != created2.MaxRuns {
		t.Fatalf("resumed campaign ran %d of %d runs", snap.RunsDone, created2.MaxRuns)
	}
	if got := s2.lookup(created2.ID).c.Result(); !reflect.DeepEqual(ref, got) {
		t.Errorf("resumed-after-shutdown result differs from uninterrupted run")
	}
}

// TestDrainingRefusesWork: during shutdown new submissions get 503 and
// lease requests come back empty.
func TestDrainingRefusesWork(t *testing.T) {
	s, base := newTestServer(t, ServerOptions{LocalWorkers: -1})
	created := submitSpec(t, base, testSpec())
	_ = created

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired: Shutdown force-cancels immediately
	_ = s.Shutdown(ctx)

	body, _ := json.Marshal(testSpec())
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit while draining: %v", err)
	}
	decodeBody(t, resp, http.StatusServiceUnavailable, nil)

	resp, err = http.Post(base+"/dist/lease", "application/json",
		bytes.NewReader([]byte(`{"worker":"w"}`)))
	if err != nil {
		t.Fatalf("lease while draining: %v", err)
	}
	decodeBody(t, resp, http.StatusNoContent, nil)
}

// TestStatusEndpoint sanity-checks the introspection view.
func TestStatusEndpoint(t *testing.T) {
	_, base := newTestServer(t, ServerOptions{LocalWorkers: -1})
	submitSpec(t, base, testSpec())

	resp, err := http.Get(base + "/dist/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st StatusResponse
	decodeBody(t, resp, http.StatusOK, &st)
	if st.Campaigns != 1 || st.Running != 1 {
		t.Errorf("status = %+v, want 1 campaign running", st)
	}
}

// TestSpecHashGuardsLease checks that a worker whose local expansion
// disagrees with the coordinator's hash refuses the work (version-skew
// protection) rather than executing under a wrong model.
func TestSpecHashGuardsLease(t *testing.T) {
	sr := SpecResponse{Spec: testSpec(), Hash: "not-the-real-hash"}
	plan, err := sr.Spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sr.Scenario = &plan.Base
	if _, err := sr.Plan(); err == nil {
		t.Fatal("SpecResponse.Plan accepted a mismatched hash")
	}
}
