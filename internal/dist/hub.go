// Package dist distributes campaign execution across processes: a
// coordinator expands a campaign.Spec into run units keyed
// (spec-hash, cell, rep), leases them to worker processes over HTTP with
// deadlines and heartbeat renewal, and commits results through the
// campaign engine's in-order path — so stopping rules and final
// aggregates stay pure functions of the spec, bit-identical to a
// single-process run. A content-addressed result cache (Store) is
// consulted before any lease is granted, and a topic-based pub/sub hub
// streams per-campaign progress to SSE subscribers and cancel
// notifications to workers.
package dist

import (
	"sync"

	"adhocsim/internal/campaign"
	"adhocsim/internal/metrics"
)

// Event is one message on the progress/control bus. The same shape is
// published in-process (Hub), serialized to SSE subscribers of
// GET /campaigns/{id}/events, and consumed by the worker's control-stream
// listener.
type Event struct {
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Campaign is the coordinator-assigned campaign id.
	Campaign string `json:"campaign,omitempty"`
	// Cell and Label identify the cell on run_committed and cell_converged
	// events; Rep is the committed replication on run_committed events.
	Cell  *int   `json:"cell,omitempty"`
	Rep   *int   `json:"rep,omitempty"`
	Label string `json:"label,omitempty"`
	// Series is the committed run's bucketed time series on run_committed
	// events — the live per-cell stream a dashboard accumulates.
	Series *metrics.SeriesState `json:"series,omitempty"`
	// State is the terminal state on campaign_done events.
	State campaign.State `json:"state,omitempty"`
	// Snapshot carries cumulative progress counters; RunsDone is monotone,
	// so subscribers that miss intermediate events still observe a
	// non-decreasing committed-run count.
	Snapshot *campaign.Snapshot `json:"snapshot,omitempty"`
	Err      string             `json:"error,omitempty"`
}

// Event types.
const (
	EventSnapshot          = "snapshot"           // initial state for a new subscriber
	EventRunCommitted      = "run_committed"      // one unit committed
	EventCellConverged     = "cell_converged"     // a cell's stopping rule fired
	EventCampaignDone      = "campaign_done"      // terminal: done, failed or cancelled
	EventCampaignCancelled = "campaign_cancelled" // control: workers abort in-flight runs
)

// CampaignTopic is the per-campaign progress topic.
func CampaignTopic(id string) string { return "campaign/" + id }

// ControlTopic carries coordinator→worker notifications (cancellation,
// completion) for every campaign; workers hold one subscription for their
// whole lifetime instead of one per campaign.
const ControlTopic = "control"

// Hub is a topic-based publish/subscribe bus. Publishing never blocks: a
// subscriber that cannot keep up loses its oldest buffered events first,
// which is safe here because events carry cumulative snapshots — the
// newest event always supersedes the dropped ones.
type Hub struct {
	mu     sync.Mutex
	topics map[string]map[*Sub]struct{}
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{topics: make(map[string]map[*Sub]struct{})}
}

// Sub is one subscription; receive from C, release with Cancel.
type Sub struct {
	hub   *Hub
	topic string
	ch    chan Event
	once  sync.Once
}

// Subscribe registers a subscriber on a topic with the given buffer
// capacity (minimum 1).
func (h *Hub) Subscribe(topic string, buf int) *Sub {
	if buf < 1 {
		buf = 16
	}
	s := &Sub{hub: h, topic: topic, ch: make(chan Event, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	subs := h.topics[topic]
	if subs == nil {
		subs = make(map[*Sub]struct{})
		h.topics[topic] = subs
	}
	subs[s] = struct{}{}
	return s
}

// C is the subscription's event stream.
func (s *Sub) C() <-chan Event { return s.ch }

// Cancel detaches the subscription from the hub. The channel is not
// closed (a concurrent Publish may still be holding it); readers should
// select on their own done signal alongside C.
func (s *Sub) Cancel() {
	s.once.Do(func() {
		h := s.hub
		h.mu.Lock()
		defer h.mu.Unlock()
		if subs := h.topics[s.topic]; subs != nil {
			delete(subs, s)
			if len(subs) == 0 {
				delete(h.topics, s.topic)
			}
		}
	})
}

// Publish fans an event out to every subscriber of the topic without
// blocking: a full subscriber buffer drops its oldest event to make room.
func (h *Hub) Publish(topic string, e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.topics[topic] {
		select {
		case s.ch <- e:
		default:
			// Full: evict the oldest buffered event. The consumer may have
			// raced a slot free, so the retry send can still fail — then the
			// consumer made room itself, and dropping this event in favour of
			// the ones in flight is equally sound.
			select {
			case <-s.ch:
			default:
			}
			select {
			case s.ch <- e:
			default:
			}
		}
	}
}
