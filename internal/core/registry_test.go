package core

import (
	"strings"
	"testing"

	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/flood"
)

func stubBuilder(BuildContext) (network.ProtocolFactory, error) {
	return func(pkt.NodeID) network.Protocol { return flood.New(flood.Config{}) }, nil
}

func TestRegisterProtocolErrors(t *testing.T) {
	if err := RegisterProtocol("", stubBuilder); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterProtocol("NILBUILDER", nil); err == nil {
		t.Error("nil builder accepted")
	}
	if err := RegisterProtocol(DSR, stubBuilder); err == nil {
		t.Error("duplicate of built-in DSR accepted")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate error = %v", err)
	}

	const name = "REGTEST-DUP"
	if err := RegisterProtocol(name, stubBuilder); err != nil {
		t.Fatal(err)
	}
	defer UnregisterProtocol(name)
	if err := RegisterProtocol(name, stubBuilder); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Case-insensitive: the lowercase spelling is the same name.
	if err := RegisterProtocol(strings.ToLower(name), stubBuilder); err == nil {
		t.Error("case-variant duplicate accepted")
	}
}

func TestFactoryForUnknownProtocolListsRegistered(t *testing.T) {
	_, err := FactoryFor("OSPF", phy.DefaultParams(), ProtocolTweaks{})
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if !strings.Contains(err.Error(), DSR) {
		t.Errorf("error does not list registered protocols: %v", err)
	}
}

func TestFactoryForResolvesCaseInsensitive(t *testing.T) {
	for _, name := range []string{"dsr", "Dsr", " DSR "} {
		if _, err := FactoryFor(name, phy.DefaultParams(), ProtocolTweaks{}); err != nil {
			t.Errorf("FactoryFor(%q): %v", name, err)
		}
	}
}

func TestRegisteredProtocolsContainsBuiltins(t *testing.T) {
	have := map[string]bool{}
	for _, p := range RegisteredProtocols() {
		have[p] = true
	}
	for _, p := range AllProtocols() {
		if !have[p] {
			t.Errorf("built-in %s missing from registry", p)
		}
	}
}
