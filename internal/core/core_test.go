package core

import (
	"context"
	"reflect"
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/phy"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// smallSpec is a fast mobile scenario exercising every code path: 20 nodes,
// 60 simulated seconds, 5 CBR flows.
func smallSpec() scenario.Spec {
	s := scenario.Default()
	s.Nodes = 20
	s.Area = geo.Rect{W: 800, H: 300}
	s.Duration = 60 * sim.Second
	s.Sources = 5
	s.StartMin = 5 * sim.Second
	s.StartMax = 15 * sim.Second
	return s
}

// staticSpec is a dense, motionless scenario where routing should be nearly
// lossless once converged.
func staticSpec() scenario.Spec {
	s := smallSpec()
	s.MaxSpeed = 0
	s.MinSpeed = 0
	s.Nodes = 25
	s.Area = geo.Rect{W: 700, H: 300}
	return s
}

func runOne(t *testing.T, spec scenario.Spec, proto string, seed int64) stats.Results {
	t.Helper()
	res, err := Run(context.Background(), RunConfig{Spec: spec, Protocol: proto, Seed: seed})
	if err != nil {
		t.Fatalf("%s: %v", proto, err)
	}
	return res
}

func TestStaticDeliveryAllProtocols(t *testing.T) {
	for _, proto := range AllProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			res := runOne(t, staticSpec(), proto, 11)
			if res.DataSent == 0 {
				t.Fatal("no traffic generated")
			}
			min := 0.85
			if proto == Flood {
				min = 0.60 // broadcast storms lose more
			}
			if proto == DSDV {
				min = 0.70 // needs convergence time at the start
			}
			if res.PDR < min {
				t.Fatalf("static PDR = %.3f < %.2f (sent=%d recv=%d drops=%v)",
					res.PDR, min, res.DataSent, res.DataDelivered, res.Drops)
			}
		})
	}
}

func TestMobileDeliveryAllProtocols(t *testing.T) {
	for _, proto := range StudyProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			res := runOne(t, smallSpec(), proto, 7)
			min := 0.5
			if proto == DSDV {
				// Stale-route losses at 20 m/s / pause 0 are DSDV's
				// characteristic weakness (a headline finding of the
				// study family), and the short run includes the
				// initial table-convergence window.
				min = 0.40
			}
			if res.PDR < min {
				t.Fatalf("mobile PDR = %.3f too low (sent=%d recv=%d drops=%v)",
					res.PDR, res.DataSent, res.DataDelivered, res.Drops)
			}
			if res.AvgDelay <= 0 {
				t.Fatal("no delay recorded")
			}
			if res.AvgHops < 1 {
				t.Fatalf("avg hops %.2f < 1", res.AvgHops)
			}
		})
	}
}

func TestProactiveProtocolsBeacon(t *testing.T) {
	// Proactive protocols emit periodic control traffic regardless of
	// load; the matching quiescence property for on-demand protocols is
	// covered in the aodv and dsr package tests.
	spec := smallSpec()
	spec.Sources = 1
	for _, proto := range []string{DSDV, CBRP} {
		res := runOne(t, spec, proto, 3)
		if res.RoutingTxPackets == 0 {
			t.Fatalf("%s sent no periodic traffic", proto)
		}
	}
}

func TestDeterminism(t *testing.T) {
	// All five study protocols, including CBRP (whose neighbour-table
	// accessors historically leaked Go's randomised map order into route
	// repair, making runs diverge) and PAODV.
	spec := smallSpec()
	for _, proto := range StudyProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			a := runOne(t, spec, proto, 42)
			b := runOne(t, spec, proto, 42)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: same seed, different results: %+v vs %+v", proto, a, b)
			}
			c := runOne(t, spec, proto, 43)
			if a.DataDelivered == c.DataDelivered && a.RoutingTxPackets == c.RoutingTxPackets &&
				a.AvgDelay == c.AvgDelay {
				t.Fatalf("%s: different seeds produced identical results (suspicious)", proto)
			}
		})
	}
}

// TestGridBruteforceParityEndToEnd runs whole random scenarios with the
// spatial index on and off and requires every metric to come out
// bit-identical — delivery, collision and capture accounting included (all
// of them feed the Results fields compared here).
func TestGridBruteforceParityEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*scenario.Spec)
		seed int64
	}{
		{"study-mobile", func(s *scenario.Spec) {}, 5},
		{"sparse-wide", func(s *scenario.Spec) {
			s.Nodes = 35
			s.Area = geo.Rect{W: 3000, H: 2000}
			s.TxRange = 150
		}, 6},
		{"short-range-fast", func(s *scenario.Spec) {
			s.TxRange = 120
			s.MaxSpeed = 30
		}, 7},
		{"static-dense", func(s *scenario.Spec) {
			s.MaxSpeed = 0
			s.MinSpeed = 0
			s.Nodes = 30
			s.Area = geo.Rect{W: 700, H: 300}
		}, 8},
	}
	for _, tc := range cases {
		tc := tc
		for _, proto := range []string{DSR, AODV, CBRP} {
			proto := proto
			t.Run(tc.name+"/"+proto, func(t *testing.T) {
				t.Parallel()
				spec := smallSpec()
				spec.Duration = 40 * sim.Second
				tc.mut(&spec)
				grid, err := Run(context.Background(), RunConfig{Spec: spec, Protocol: proto, Seed: tc.seed})
				if err != nil {
					t.Fatal(err)
				}
				brute, err := Run(context.Background(), RunConfig{
					Spec: spec, Protocol: proto, Seed: tc.seed,
					Phy: phy.Config{BruteForce: true},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(grid, brute) {
					t.Fatalf("spatial index changed results:\ngrid:  %+v\nbrute: %+v", grid, brute)
				}
			})
		}
	}
}

func TestRunReplicatedMergesSeeds(t *testing.T) {
	spec := smallSpec()
	spec.Duration = 30 * sim.Second
	res, err := RunReplicated(context.Background(), RunConfig{Spec: spec, Protocol: DSR}, []int64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(context.Background(), RunConfig{Spec: spec, Protocol: DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent <= single.DataSent {
		t.Fatalf("merged DataSent %d not cumulative over seeds (single %d)", res.DataSent, single.DataSent)
	}
}

func TestFactoryUnknownProtocol(t *testing.T) {
	if _, err := FactoryFor("OSPF", phy.DefaultParams(), ProtocolTweaks{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, p := range AllProtocols() {
		if _, err := FactoryFor(p, phy.DefaultParams(), ProtocolTweaks{}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}
