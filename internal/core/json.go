package core

import (
	"encoding/json"

	"adhocsim/internal/stats"
)

// JSON export for the three result shapes, alongside the text and CSV
// renders. All exports are indented and end with a newline so they can be
// written to files or piped as-is.

// ResultsJSON renders one run's (or one merged replication set's) metrics.
func ResultsJSON(r stats.Results) ([]byte, error) {
	return marshal(r)
}

// SweepJSON renders a sweep: the axis, the protocols, and the full merged
// Results at every point.
func SweepJSON(sr *SweepResult) ([]byte, error) {
	return marshal(sr)
}

// GridJSON renders a multi-axis grid result.
func GridJSON(g *GridResult) ([]byte, error) {
	return marshal(g)
}

// figureJSON is the serialized form of a Figure: the metric is flattened to
// its name and unit (Metric.Value is a function), and the per-protocol
// series are pre-extracted so consumers need no metric logic.
type figureJSON struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	Metric string    `json:"metric"`
	Unit   string    `json:"unit"`
	XLabel string    `json:"x_label"`
	Xs     []float64 `json:"xs"`
	// XTicks carry the formatted x values when they differ from the plain
	// numbers — for the categorical model axes these are the model names
	// the indices in Xs stand for.
	XTicks    []string             `json:"x_ticks,omitempty"`
	Protocols []string             `json:"protocols"`
	Series    map[string][]float64 `json:"series"`
}

// FigureJSON renders a figure as one metric's series per protocol.
func FigureJSON(f Figure) ([]byte, error) {
	out := figureJSON{
		ID:        f.ID,
		Title:     f.Title,
		Metric:    f.Metric.Name,
		Unit:      f.Metric.Unit,
		XLabel:    f.Sweep.XLabel,
		Xs:        f.Sweep.Xs,
		XTicks:    f.Sweep.XTicks,
		Protocols: f.Sweep.Protocols,
		Series:    make(map[string][]float64, len(f.Sweep.Protocols)),
	}
	for _, p := range f.Sweep.Protocols {
		series := make([]float64, len(f.Sweep.Xs))
		for xi := range f.Sweep.Xs {
			series[xi] = f.Metric.Value(f.Sweep.Cells[p][xi])
		}
		out.Series[p] = series
	}
	return marshal(out)
}

func marshal(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
