package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"adhocsim/internal/lifecycle"
	"adhocsim/internal/mobility"
	"adhocsim/internal/modelreg"
	"adhocsim/internal/radio"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/traffic"
)

// Axis is one sweepable scenario dimension: a label for rendering, the
// values to visit, and a function that writes one value into a Spec. Any
// Spec field can be swept — the catalogue below covers the study axes plus
// the radio/traffic dimensions the original harness could not express, and
// callers can define their own Apply for anything else.
type Axis struct {
	Label  string
	Values []float64
	Apply  func(*scenario.Spec, float64)
	// Defaults, when non-nil and Values is empty, derives the values to
	// visit from the sweep's base spec at Sweep/Grid time. Catalogue
	// constructors with static defaults fill Values directly; PauseAxis
	// uses this hook because its defaults scale with scenario duration.
	Defaults func(scenario.Spec) []float64
	// Format, when non-nil, renders a value for labels (campaign cell
	// labels, renders). Categorical axes — the mobility/traffic model
	// axes, whose float values index a name list — use it so labels read
	// "mobility_model=gauss-markov" rather than an opaque index, and so
	// campaign replication seeds derive from model names instead of list
	// positions.
	Format func(float64) string
	// CheckValue, when non-nil, validates each value at Resolved time.
	// Categorical axes reject non-integer or out-of-range indices here, so
	// a bad index fails the sweep/campaign at expansion instead of
	// silently running a mislabeled default-model cell.
	CheckValue func(float64) error
}

// FormatValue renders one axis value for labels: Format when set, else the
// shortest exact float form.
func (a Axis) FormatValue(x float64) string {
	if a.Format != nil {
		return a.Format(x)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func (a Axis) validate() error {
	if a.Apply == nil {
		return fmt.Errorf("core: axis %q has no Apply function", a.Label)
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("core: axis %q has no values", a.Label)
	}
	seen := make(map[string]bool, len(a.Values))
	for _, v := range a.Values {
		if a.CheckValue != nil {
			if err := a.CheckValue(v); err != nil {
				return fmt.Errorf("core: axis %q: %w", a.Label, err)
			}
		}
		// Duplicate points would expand into cells with identical labels
		// and therefore identical content-derived replication seeds — pure
		// wasted work, same hazard campaign.Expand rejects for duplicate
		// protocols. Compare formatted values so categorical axes catch
		// index pairs that alias the same model name.
		key := a.FormatValue(v)
		if seen[key] {
			return fmt.Errorf("core: axis %q visits %s twice", a.Label, key)
		}
		seen[key] = true
	}
	return nil
}

// Resolved fills empty Values from the Defaults hook against the given base
// spec, then validates. Sweep/Grid call it internally; the campaign engine
// resolves axes through it too, so default values cannot drift between the
// two layers.
func (a Axis) Resolved(base scenario.Spec) (Axis, error) {
	if len(a.Values) == 0 && a.Defaults != nil {
		a.Values = a.Defaults(base)
	}
	return a, a.validate()
}

// WithValues returns a copy of the axis visiting exactly the given values
// (the Defaults hook is dropped: an empty vs makes the axis invalid rather
// than reverting to defaults).
func (a Axis) WithValues(vs []float64) Axis {
	a.Values = append([]float64(nil), vs...)
	a.Defaults = nil
	return a
}

// The axis catalogue. Each constructor accepts explicit values; nil selects
// the canonical default points of the study (or a sensible spread for the
// axes the study did not sweep). An empty non-nil slice is deliberately NOT
// a default request — it fails validation at sweep time, so a
// programmatically-filtered list that came up empty errors loudly instead
// of silently launching the full default sweep.

// PauseAxis sweeps random-waypoint pause time in seconds (Figures 1–4).
// Nil values select the Broch-style defaults, scaled to the base spec's
// duration when the sweep runs.
func PauseAxis(vs []float64) Axis {
	a := Axis{
		Label:  "pause_s",
		Values: vs,
		Apply: func(s *scenario.Spec, x float64) {
			s.Pause = sim.Seconds(x)
		},
	}
	if vs == nil {
		a.Defaults = func(base scenario.Spec) []float64 {
			return DefaultPauses(base.Duration)
		}
	}
	return a
}

// NodesAxis sweeps the node count (Figure 6).
func NodesAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{10, 20, 30, 40}
	}
	return Axis{Label: "nodes", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.Nodes = int(x)
	}}
}

// ScaleAxis sweeps the node count at constant node density: the simulation
// area grows with N so that adding nodes extends the multi-hop topology
// instead of melting the MAC. This is the large-N axis the spatial-index
// transmit path exists for; the default points reach well beyond the
// study's 40-node scenes.
func ScaleAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{50, 100, 200, 350, 500, 1000, 2000, 5000, 10000}
	}
	return Axis{Label: "nodes_scaled", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		if s.Nodes > 0 {
			k := math.Sqrt(x / float64(s.Nodes))
			s.Area.W *= k
			s.Area.H *= k
		}
		s.Nodes = int(x)
	}}
}

// RateAxis sweeps the per-connection packet rate in packets/s (Figure 7).
func RateAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{1, 2, 4, 8, 12}
	}
	return Axis{Label: "rate_pps", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.Rate = x
	}}
}

// SpeedAxis sweeps the maximum node speed in m/s (Figure 8), clamping the
// minimum speed when needed.
func SpeedAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{1, 5, 10, 15, 20}
	}
	return Axis{Label: "speed_mps", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.MaxSpeed = x
		if s.MinSpeed > x {
			s.MinSpeed = x
		}
	}}
}

// SourcesAxis sweeps the number of CBR connections (the 10/20/30-source
// variants of Figures 1–2).
func SourcesAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{10, 20, 30}
	}
	return Axis{Label: "sources", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.Sources = int(x)
	}}
}

// TxRangeAxis sweeps the radio transmission range in metres; the
// carrier-sense range follows at its default 2.2× ratio unless the spec
// pins it. The v1 API had no sweep for this axis.
func TxRangeAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{100, 150, 200, 250}
	}
	return Axis{Label: "txrange_m", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.TxRange = x
	}}
}

// CSRangeAxis sweeps the carrier-sense range in metres independently of the
// transmission range (the cumulative-interference studies' axis).
func CSRangeAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{300, 450, 550, 700}
	}
	return Axis{Label: "csrange_m", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.CSRange = x
	}}
}

// AreaWidthAxis sweeps the simulation-area width in metres (node density at
// fixed population).
func AreaWidthAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{1000, 1500, 2250, 3000}
	}
	return Axis{Label: "area_w_m", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.Area.W = x
	}}
}

// PayloadAxis sweeps the CBR payload size in bytes.
func PayloadAxis(vs []float64) Axis {
	if vs == nil {
		vs = []float64{64, 256, 512, 1024}
	}
	return Axis{Label: "payload_B", Values: vs, Apply: func(s *scenario.Spec, x float64) {
		s.PayloadBytes = int(x)
	}}
}

// modelAxis builds a categorical axis over a model-name list: values are
// indices into names, Apply writes the indexed name into the spec, Format
// renders names into labels (and therefore into campaign cell labels and
// content-derived replication seeds).
func modelAxis(label string, names []string, apply func(*scenario.Spec, string)) Axis {
	names = append([]string(nil), names...)
	vs := make([]float64, len(names))
	for i := range vs {
		vs[i] = float64(i)
	}
	return Axis{
		Label:  label,
		Values: vs,
		Apply: func(s *scenario.Spec, x float64) {
			if i := int(x); i >= 0 && i < len(names) {
				apply(s, names[i])
			}
		},
		Format: func(x float64) string {
			if i := int(x); i >= 0 && i < len(names) && float64(i) == x {
				return names[i]
			}
			return strconv.FormatFloat(x, 'g', -1, 64)
		},
		CheckValue: func(x float64) error {
			if i := int(x); float64(i) != x || i < 0 || i >= len(names) {
				return fmt.Errorf("value %v does not index the model list %v", x, names)
			}
			return nil
		},
	}
}

// sameModelName compares two model names canonically, resolving the empty
// name to the model kind's default.
func sameModelName(a, b, def string) bool {
	ca := modelreg.Canonical(a)
	if ca == "" {
		ca = def
	}
	cb := modelreg.Canonical(b)
	if cb == "" {
		cb = def
	}
	return ca == cb
}

// MobilityModelAxis sweeps the mobility model by registry name (the
// scenario-family dimension the study held fixed at random waypoint). Nil
// names selects every registered model, sorted. When the applied name is
// the base spec's own model its tuned Params are kept (so a parameterized
// base can be compared against other models); switching to a different
// model resets Params to that model's defaults. The generic speed/pause
// fields shape every model through its environment either way.
func MobilityModelAxis(names []string) Axis {
	if len(names) == 0 {
		names = mobility.Registered()
	}
	return modelAxis("mobility_model", names, func(s *scenario.Spec, name string) {
		if sameModelName(s.Mobility.Name, name, mobility.DefaultModel) {
			s.Mobility.Name = name
			return
		}
		s.Mobility = scenario.MobilitySpec{Name: name}
	})
}

// TrafficModelAxis sweeps the traffic model by registry name. Nil names
// selects every registered model, sorted. Like MobilityModelAxis, the base
// spec's own model keeps its tuned Params.
func TrafficModelAxis(names []string) Axis {
	if len(names) == 0 {
		names = traffic.Registered()
	}
	return modelAxis("traffic_model", names, func(s *scenario.Spec, name string) {
		if sameModelName(s.Traffic.Name, name, traffic.DefaultModel) {
			s.Traffic.Name = name
			return
		}
		s.Traffic = scenario.TrafficSpec{Name: name}
	})
}

// RadioModelAxis sweeps the radio/propagation model by registry name (the
// channel-condition dimension the study held fixed at two-ray ground). Nil
// names selects every registered model, sorted. Like the other model axes
// the base spec's own model keeps its tuned Params; switching models
// resets Params but preserves the base's SINR reception-mode switch —
// propagation and reception model are orthogonal, so a SINR campaign can
// sweep propagation without flipping reception back to pairwise capture.
func RadioModelAxis(names []string) Axis {
	if len(names) == 0 {
		names = radio.Registered()
	}
	return modelAxis("radio_model", names, func(s *scenario.Spec, name string) {
		if sameModelName(s.Radio.Name, name, radio.DefaultModel) {
			s.Radio.Name = name
			return
		}
		s.Radio = scenario.RadioSpec{Name: name, SINR: s.Radio.SINR}
	})
}

// ChurnModelAxis sweeps the node-lifecycle (churn) model by registry name —
// the membership dimension the study held fixed at a static population. Nil
// names selects every registered model, sorted. Like the other model axes
// the base spec's own model keeps its tuned Params; switching models resets
// Params to that model's defaults.
func ChurnModelAxis(names []string) Axis {
	if len(names) == 0 {
		names = lifecycle.Registered()
	}
	return modelAxis("lifecycle_model", names, func(s *scenario.Spec, name string) {
		if sameModelName(s.Lifecycle.Name, name, lifecycle.DefaultModel) {
			s.Lifecycle.Name = name
			return
		}
		s.Lifecycle = scenario.LifecycleSpec{Name: name}
	})
}

// ModelAxisByName resolves the categorical model axes by CLI name
// ("mobility", "traffic", "radio", "lifecycle") with an explicit model-name list (nil
// selects the whole registry), validating every name against the registry
// so a typo fails at expansion time rather than mid-campaign. Duplicate
// names are rejected: they would expand into cells with identical labels
// and therefore identical replication seeds.
func ModelAxisByName(name string, models []string) (Axis, error) {
	checkModels := func(kind string, known func(string) bool, registered func() []string) error {
		seen := make(map[string]bool, len(models))
		for _, m := range models {
			if !known(m) {
				return fmt.Errorf("core: unknown %s model %q (registered: %s)",
					kind, m, strings.Join(registered(), ", "))
			}
			canon := strings.ToLower(strings.TrimSpace(m))
			if seen[canon] {
				return fmt.Errorf("core: %s model %q listed twice", kind, canon)
			}
			seen[canon] = true
		}
		return nil
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "mobility", "mobility_model":
		if err := checkModels("mobility", mobility.Known, mobility.Registered); err != nil {
			return Axis{}, err
		}
		return MobilityModelAxis(models), nil
	case "traffic", "traffic_model":
		if err := checkModels("traffic", traffic.Known, traffic.Registered); err != nil {
			return Axis{}, err
		}
		return TrafficModelAxis(models), nil
	case "radio", "radio_model":
		if err := checkModels("radio", radio.Known, radio.Registered); err != nil {
			return Axis{}, err
		}
		return RadioModelAxis(models), nil
	case "lifecycle", "lifecycle_model", "churn":
		if err := checkModels("lifecycle", lifecycle.Known, lifecycle.Registered); err != nil {
			return Axis{}, err
		}
		return ChurnModelAxis(models), nil
	}
	return Axis{}, fmt.Errorf("core: axis %q does not take model names (model axes: mobility, traffic, radio, lifecycle)", name)
}

// axisConstructors maps CLI-friendly names to catalogue constructors. The
// model axes take float indices here (the JSON/CLI string form goes
// through ModelAxisByName); nil selects the full registry.
var axisConstructors = map[string]func([]float64) Axis{
	"pause":   PauseAxis,
	"nodes":   NodesAxis,
	"scale":   ScaleAxis,
	"rate":    RateAxis,
	"speed":   SpeedAxis,
	"sources": SourcesAxis,
	"txrange": TxRangeAxis,
	"csrange": CSRangeAxis,
	"width":   AreaWidthAxis,
	"payload": PayloadAxis,
	"mobility": func(vs []float64) Axis {
		a := MobilityModelAxis(nil)
		if vs != nil {
			a = a.WithValues(vs)
		}
		return a
	},
	"traffic": func(vs []float64) Axis {
		a := TrafficModelAxis(nil)
		if vs != nil {
			a = a.WithValues(vs)
		}
		return a
	},
	"radio": func(vs []float64) Axis {
		a := RadioModelAxis(nil)
		if vs != nil {
			a = a.WithValues(vs)
		}
		return a
	},
	"lifecycle": func(vs []float64) Axis {
		a := ChurnModelAxis(nil)
		if vs != nil {
			a = a.WithValues(vs)
		}
		return a
	},
}

// AxisNames lists the catalogue names understood by AxisByName, sorted.
func AxisNames() []string {
	out := make([]string, 0, len(axisConstructors))
	for name := range axisConstructors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AxisByName resolves a catalogue axis by CLI name ("txrange", "pause", …)
// with the given values (nil selects the axis defaults).
func AxisByName(name string, vs []float64) (Axis, error) {
	ctor := axisConstructors[strings.ToLower(strings.TrimSpace(name))]
	if ctor == nil {
		return Axis{}, fmt.Errorf("core: unknown axis %q (known: %s)",
			name, strings.Join(AxisNames(), ", "))
	}
	return ctor(vs), nil
}

// GridResult holds merged results for each protocol at each point of a
// multi-axis cross product.
type GridResult struct {
	// Labels are the axis labels, outermost first.
	Labels []string
	// Points is the cross product in row-major order (last axis fastest);
	// Points[i][a] is the value of axis a at point i.
	Points [][]float64
	// PointLabels[i][a] is the formatted value of axis a at point i —
	// model names for the categorical model axes, plain numbers otherwise.
	PointLabels [][]string
	// Protocols in presentation order.
	Protocols []string
	// Cells[protocol][i] is the merged result at Points[i].
	Cells map[string][]stats.Results
}

// Point returns the index into Cells rows for the given axis values, or -1
// if the combination is not part of the grid.
func (g *GridResult) Point(values ...float64) int {
	for i, pt := range g.Points {
		if len(pt) != len(values) {
			return -1
		}
		match := true
		for a := range pt {
			if pt[a] != values[a] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// CrossPoints enumerates the axes' full cross product in row-major order
// (last axis fastest). Axes must already have values; zero axes yield one
// nil point (the single-cell degenerate case). Grid and the campaign
// engine share this enumeration — campaign cell labels, and therefore the
// content-derived replication seeds and journal hashes, depend on it.
func CrossPoints(axes []Axis) [][]float64 {
	if len(axes) == 0 {
		return [][]float64{nil}
	}
	points := 1
	for i := range axes {
		points *= len(axes[i].Values)
	}
	cross := make([][]float64, 0, points)
	idx := make([]int, len(axes))
	for {
		pt := make([]float64, len(axes))
		for a := range axes {
			pt[a] = axes[a].Values[idx[a]]
		}
		cross = append(cross, pt)
		a := len(axes) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(axes[a].Values) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			break
		}
	}
	return cross
}

// Grid evaluates every protocol at every combination of the axes' values
// (full cross product) on the shared worker pool. A single axis degenerates
// to Sweep; two or more axes express experiments the v1 API could not, such
// as TxRange × offered load.
func Grid(ctx context.Context, opts Options, axes ...Axis) (*GridResult, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("core: Grid needs at least one axis")
	}
	opts = opts.normalized()
	// Resolve into a private slice: callers passing a shared []Axis via
	// axes... must not observe default-filled Values.
	resolvedAxes := make([]Axis, len(axes))
	labels := make([]string, len(axes))
	for i := range axes {
		a, err := axes[i].Resolved(opts.Base)
		if err != nil {
			return nil, err
		}
		resolvedAxes[i] = a
		labels[i] = a.Label
	}
	axes = resolvedAxes

	cross := CrossPoints(axes)

	axisLabel := strings.Join(labels, "×")
	jobs := make([]runJob, 0, len(opts.Protocols)*len(cross)*len(opts.Seeds))
	for _, p := range opts.Protocols {
		for _, pt := range cross {
			spec := opts.Base
			for a := range axes {
				axes[a].Apply(&spec, pt[a])
			}
			for _, seed := range opts.Seeds {
				jobs = append(jobs, runJob{spec: spec, protocol: p, seed: seed, axis: axisLabel, x: pt[0]})
			}
		}
	}
	results, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return nil, err
	}
	pointLabels := make([][]string, len(cross))
	for i, pt := range cross {
		row := make([]string, len(axes))
		for a := range axes {
			row[a] = axes[a].FormatValue(pt[a])
		}
		pointLabels[i] = row
	}
	out := &GridResult{
		Labels:      labels,
		Points:      cross,
		PointLabels: pointLabels,
		Protocols:   append([]string(nil), opts.Protocols...),
		Cells:       make(map[string][]stats.Results, len(opts.Protocols)),
	}
	ri := 0
	for _, p := range opts.Protocols {
		row := make([]stats.Results, len(cross))
		for pi := range cross {
			reps := results[ri : ri+len(opts.Seeds)]
			ri += len(opts.Seeds)
			row[pi] = stats.MergeResults(reps)
		}
		out.Cells[p] = row
	}
	return out, nil
}
