package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
)

// Figure is one rendered experiment: a sweep viewed through one metric.
type Figure struct {
	ID     string
	Title  string
	Metric Metric
	Sweep  *SweepResult
}

// DefaultPauses is the Broch-style pause-time axis, scaled to the scenario
// duration when shorter than the canonical 900 s.
func DefaultPauses(duration sim.Duration) []float64 {
	canonical := []float64{0, 30, 60, 120, 300, 600, 900}
	scale := duration.Seconds() / 900
	if scale >= 1 {
		return canonical
	}
	out := make([]float64, len(canonical))
	for i, p := range canonical {
		out[i] = p * scale
	}
	return out
}

// The study's named sweeps are thin wrappers over the generic Sweep with a
// catalogue Axis.

// PauseSweep runs the mobility experiment: pause time varies, everything
// else fixed. It underlies Figures 1–4. A nil pauses slice selects the
// Broch-style defaults scaled to the scenario duration.
func PauseSweep(ctx context.Context, opts Options, pauses []float64) (*SweepResult, error) {
	return Sweep(ctx, opts, PauseAxis(pauses))
}

// DensitySweep varies the node count (Figure 6).
func DensitySweep(ctx context.Context, opts Options, nodes []float64) (*SweepResult, error) {
	return Sweep(ctx, opts, NodesAxis(nodes))
}

// LoadSweep varies the per-connection packet rate (Figure 7).
func LoadSweep(ctx context.Context, opts Options, rates []float64) (*SweepResult, error) {
	return Sweep(ctx, opts, RateAxis(rates))
}

// SpeedSweep varies the maximum node speed (Figure 8).
func SpeedSweep(ctx context.Context, opts Options, speeds []float64) (*SweepResult, error) {
	return Sweep(ctx, opts, SpeedAxis(speeds))
}

// SourcesSweep varies the number of CBR connections (the 10/20/30-source
// variants of Figures 1–2).
func SourcesSweep(ctx context.Context, opts Options, sources []float64) (*SweepResult, error) {
	return Sweep(ctx, opts, SourcesAxis(sources))
}

// Figures14 derives the four pause-time figures from one sweep.
func Figures14(sweep *SweepResult) []Figure {
	return []Figure{
		{ID: "fig1", Title: "Packet delivery ratio vs pause time", Metric: MetricPDR, Sweep: sweep},
		{ID: "fig2", Title: "Routing overhead vs pause time", Metric: MetricOverhead, Sweep: sweep},
		{ID: "fig3", Title: "Average end-to-end delay vs pause time", Metric: MetricDelay, Sweep: sweep},
		{ID: "fig4", Title: "Throughput vs pause time", Metric: MetricThroughput, Sweep: sweep},
	}
}

// PathOptimality runs the single-point path-optimality experiment
// (Figure 5) and returns, per protocol, the histogram of hops beyond
// optimal.
func PathOptimality(ctx context.Context, opts Options) (map[string]map[int]uint64, error) {
	sweep, err := Sweep(ctx, opts, PauseAxis([]float64{0}))
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[int]uint64)
	for _, p := range sweep.Protocols {
		out[p] = sweep.Cells[p][0].HopExcess
	}
	return out, nil
}

// SummaryTable runs the headline single-configuration comparison (Table 1):
// every metric for every protocol at the most stressful point (pause 0).
func SummaryTable(ctx context.Context, opts Options) (map[string]stats.Results, error) {
	sweep, err := Sweep(ctx, opts, PauseAxis([]float64{0}))
	if err != nil {
		return nil, err
	}
	out := make(map[string]stats.Results)
	for _, p := range sweep.Protocols {
		out[p] = sweep.Cells[p][0]
	}
	return out, nil
}

// RenderFigure renders an ASCII table: one row per x, one column per
// protocol.
func RenderFigure(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", strings.ToUpper(f.ID), f.Title, f.Metric.Unit)
	fmt.Fprintf(&b, "%-10s", f.Sweep.XLabel)
	for _, p := range f.Sweep.Protocols {
		fmt.Fprintf(&b, "%12s", p)
	}
	b.WriteByte('\n')
	for xi := range f.Sweep.Xs {
		fmt.Fprintf(&b, "%-10s", f.Sweep.Tick(xi))
		for _, p := range f.Sweep.Protocols {
			fmt.Fprintf(&b, "%12.3f", f.Metric.Value(f.Sweep.Cells[p][xi]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigureCSV renders the same data as CSV (x,protocol,value).
func RenderFigureCSV(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,protocol,%s_%s\n", f.Sweep.XLabel, f.Metric.Name, f.Metric.Unit)
	for xi := range f.Sweep.Xs {
		for _, p := range f.Sweep.Protocols {
			fmt.Fprintf(&b, "%s,%s,%g\n", f.Sweep.Tick(xi), p, f.Metric.Value(f.Sweep.Cells[p][xi]))
		}
	}
	return b.String()
}

// RenderSummaryTable renders Table 1.
func RenderSummaryTable(res map[string]stats.Results, protocols []string) string {
	var b strings.Builder
	metrics := []Metric{MetricPDR, MetricDelay, MetricNRL, MetricMacLoad, MetricThroughput, MetricAvgHops}
	fmt.Fprintf(&b, "TABLE 1 — Per-protocol summary\n")
	fmt.Fprintf(&b, "%-22s", "metric")
	for _, p := range protocols {
		fmt.Fprintf(&b, "%12s", p)
	}
	b.WriteByte('\n')
	for _, m := range metrics {
		fmt.Fprintf(&b, "%-22s", m.Name+" ("+m.Unit+")")
		for _, p := range protocols {
			fmt.Fprintf(&b, "%12.3f", m.Value(res[p]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderOverheadBreakdown renders Table 2: routing transmissions by message
// type for each protocol.
func RenderOverheadBreakdown(res map[string]stats.Results, protocols []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 2 — Routing overhead breakdown by message type (transmissions)\n")
	for _, p := range protocols {
		fmt.Fprintf(&b, "%-8s", p)
		types := sortedKeys(res[p].RoutingByType)
		parts := make([]string, 0, len(types))
		for _, t := range types {
			parts = append(parts, fmt.Sprintf("%s=%d", t, res[p].RoutingByType[t]))
		}
		if len(parts) == 0 {
			parts = append(parts, "(none)")
		}
		b.WriteString(strings.Join(parts, "  "))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPathOptimality renders Figure 5 as a cumulative histogram table.
func RenderPathOptimality(hist map[string]map[int]uint64, protocols []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG5 — Path optimality (hops beyond shortest possible, %% of delivered)\n")
	maxExcess := 0
	for _, h := range hist {
		for e := range h {
			if e > maxExcess {
				maxExcess = e
			}
		}
	}
	if maxExcess > 5 {
		maxExcess = 5
	}
	fmt.Fprintf(&b, "%-10s", "excess")
	for _, p := range protocols {
		fmt.Fprintf(&b, "%12s", p)
	}
	b.WriteByte('\n')
	totals := map[string]uint64{}
	for _, p := range protocols {
		for _, n := range hist[p] {
			totals[p] += n
		}
	}
	for e := 0; e <= maxExcess; e++ {
		label := fmt.Sprintf("+%d", e)
		if e == maxExcess {
			label = fmt.Sprintf("+%d..", e)
		}
		fmt.Fprintf(&b, "%-10s", label)
		for _, p := range protocols {
			var n uint64
			if e == maxExcess {
				for ee, c := range hist[p] {
					if ee >= e {
						n += c
					}
				}
			} else {
				n = hist[p][e]
			}
			pct := 0.0
			if totals[p] > 0 {
				pct = 100 * float64(n) / float64(totals[p])
			}
			fmt.Fprintf(&b, "%11.1f%%", pct)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderParameters renders Table 3 — the static parameter table.
func RenderParameters(opts Options) string {
	s := opts.Base
	rows := [][2]string{
		{"nodes", fmt.Sprintf("%d", s.Nodes)},
		{"area", fmt.Sprintf("%.0f x %.0f m", s.Area.W, s.Area.H)},
		{"duration", fmt.Sprintf("%.0f s", s.Duration.Seconds())},
		{"tx range", fmt.Sprintf("%.0f m", s.TxRange)},
		{"mobility", "random waypoint"},
		{"max speed", fmt.Sprintf("%.0f m/s", s.MaxSpeed)},
		{"traffic", fmt.Sprintf("%d CBR sources, %.0f pkt/s, %d-byte payload", s.Sources, s.Rate, s.PayloadBytes)},
		{"MAC", "IEEE 802.11 DCF, 2 Mbit/s, RTS/CTS"},
		{"seeds", fmt.Sprintf("%d replications", max(1, len(opts.Seeds)))},
	}
	var b strings.Builder
	b.WriteString("TABLE 3 — Simulation parameters\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %s\n", r[0], r[1])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SortProtocols orders protocol names in canonical study order.
func SortProtocols(ps []string) {
	order := map[string]int{DSR: 0, AODV: 1, PAODV: 2, CBRP: 3, DSDV: 4, Flood: 5}
	sort.Slice(ps, func(i, j int) bool { return order[ps[i]] < order[ps[j]] })
}
