package core

import (
	"context"
	"fmt"
	"strings"

	"adhocsim/internal/stats"
)

// Finding is one qualitative claim of the study that the reproduction must
// uphold (the "shape" acceptance criteria of EXPERIMENTS.md).
type Finding struct {
	ID    string
	Claim string
	// Check inspects results at the mobile (pause 0) and static points
	// and reports pass/fail with a human-readable detail line.
	Check func(mobile, static map[string]stats.Results) (bool, string)
}

// Findings returns the claim list derived from the study family's
// documented conclusions.
func Findings() []Finding {
	return []Finding{
		{
			ID:    "F1-dsr-beats-aodv-overhead",
			Claim: "source routing (DSR) is more efficient than distance-vector AODV: lower routing overhead under mobility",
			Check: func(mobile, _ map[string]stats.Results) (bool, string) {
				d, a := mobile[DSR].RoutingTxPackets, mobile[AODV].RoutingTxPackets
				return d < a, fmt.Sprintf("DSR %d vs AODV %d routing tx", d, a)
			},
		},
		{
			ID:    "F2-ondemand-beats-dsdv-pdr",
			Claim: "on-demand protocols out-deliver proactive DSDV under constant mobility",
			Check: func(mobile, _ map[string]stats.Results) (bool, string) {
				dsdv := mobile[DSDV].PDR
				worstOnDemand := 1.0
				for _, p := range []string{DSR, AODV, CBRP} {
					if v := mobile[p].PDR; v < worstOnDemand {
						worstOnDemand = v
					}
				}
				return worstOnDemand > dsdv,
					fmt.Sprintf("worst on-demand PDR %.1f%% vs DSDV %.1f%%", worstOnDemand*100, dsdv*100)
			},
		},
		{
			ID:    "F3-dsdv-overhead-flat",
			Claim: "DSDV's overhead is mobility-insensitive while on-demand overhead falls as mobility stops",
			Check: func(mobile, static map[string]stats.Results) (bool, string) {
				dm, ds := float64(mobile[DSDV].RoutingTxPackets), float64(static[DSDV].RoutingTxPackets)
				rm, rs := float64(mobile[DSR].RoutingTxPackets), float64(static[DSR].RoutingTxPackets)
				dsdvFlat := ds > 0.5*dm && ds < 2*dm
				dsrDrops := rs < 0.5*rm
				return dsdvFlat && dsrDrops,
					fmt.Sprintf("DSDV %0.f→%0.f tx, DSR %0.f→%0.f tx (mobile→static)", dm, ds, rm, rs)
			},
		},
		{
			ID:    "F4-dsr-best-nrl",
			Claim: "DSR has the lowest normalized routing load of all protocols under mobility",
			Check: func(mobile, _ map[string]stats.Results) (bool, string) {
				best, bestP := 1e18, ""
				for p, r := range mobile {
					if r.NormalizedRoutingLoad < best {
						best, bestP = r.NormalizedRoutingLoad, p
					}
				}
				return bestP == DSR, fmt.Sprintf("lowest NRL: %s (%.2f)", bestP, best)
			},
		},
		{
			ID:    "F5-proactive-lowest-delay",
			Claim: "the proactive protocol shows the lowest delay for delivered packets (routes pre-exist)",
			Check: func(mobile, _ map[string]stats.Results) (bool, string) {
				dsdv := mobile[DSDV].AvgDelay
				for p, r := range mobile {
					if p != DSDV && r.AvgDelay < dsdv {
						return false, fmt.Sprintf("%s delay %.1f ms < DSDV %.1f ms", p, r.AvgDelay*1e3, dsdv*1e3)
					}
				}
				return true, fmt.Sprintf("DSDV %.1f ms lowest", dsdv*1e3)
			},
		},
		{
			ID:    "F6-paodv-overhead-premium",
			Claim: "preemptive AODV pays an overhead premium over plain AODV (warnings + extra discoveries)",
			Check: func(mobile, _ map[string]stats.Results) (bool, string) {
				a, p := mobile[AODV].RoutingTxPackets, mobile[PAODV].RoutingTxPackets
				return p > a, fmt.Sprintf("PAODV %d vs AODV %d routing tx", p, a)
			},
		},
		{
			ID:    "F7-static-near-lossless",
			Claim: "every protocol is near-lossless on a static, connected network",
			Check: func(_, static map[string]stats.Results) (bool, string) {
				worst, worstP := 2.0, "(none)"
				for p, r := range static {
					if r.PDR < worst {
						worst, worstP = r.PDR, p
					}
				}
				return worst > 0.95, fmt.Sprintf("worst static PDR: %s %.1f%%", worstP, worst*100)
			},
		},
		{
			ID:    "F8-cbrp-cheap-floods",
			Claim: "CBRP's head/gateway-restricted flooding keeps its request cost below AODV's blind flooding (its total overhead adds a constant HELLO floor on top)",
			Check: func(mobile, _ map[string]stats.Results) (bool, string) {
				c, a := mobile[CBRP].RoutingByType["RREQ"], mobile[AODV].RoutingByType["RREQ"]
				hello := mobile[CBRP].RoutingByType["HELLO"]
				return c < a && hello > 0,
					fmt.Sprintf("CBRP RREQ %d < AODV RREQ %d (CBRP HELLO floor %d)", c, a, hello)
			},
		},
	}
}

// VerifyResult is the outcome of one finding check.
type VerifyResult struct {
	Finding Finding
	Pass    bool
	Detail  string
}

// Verify runs the two reference configurations (pause 0 and fully static)
// and evaluates every finding. Options follow the usual semantics; the
// pause axis is overridden internally.
func Verify(ctx context.Context, opts Options) ([]VerifyResult, error) {
	sweep, err := Sweep(ctx, opts, PauseAxis([]float64{0, opts.Base.Duration.Seconds()}))
	if err != nil {
		return nil, err
	}
	mobile := make(map[string]stats.Results)
	static := make(map[string]stats.Results)
	for _, p := range sweep.Protocols {
		mobile[p] = sweep.Cells[p][0]
		static[p] = sweep.Cells[p][1]
	}
	var out []VerifyResult
	for _, f := range Findings() {
		ok, detail := f.Check(mobile, static)
		out = append(out, VerifyResult{Finding: f, Pass: ok, Detail: detail})
	}
	return out, nil
}

// RenderVerify formats verification results as a report.
func RenderVerify(results []VerifyResult) string {
	var b strings.Builder
	pass := 0
	for _, r := range results {
		status := "FAIL"
		if r.Pass {
			status = "PASS"
			pass++
		}
		fmt.Fprintf(&b, "[%s] %-28s %s\n       %s\n", status, r.Finding.ID, r.Finding.Claim, r.Detail)
	}
	fmt.Fprintf(&b, "\n%d/%d findings reproduced\n", pass, len(results))
	return b.String()
}
