package core

import (
	"encoding/json"
	"testing"

	"adhocsim/internal/stats"
)

func TestResultsJSON(t *testing.T) {
	r := stats.Results{
		DataSent:      100,
		DataDelivered: 95,
		PDR:           0.95,
		RoutingByType: map[string]uint64{"RREQ": 10},
		HopExcess:     map[int]uint64{0: 90, 1: 5},
		Drops:         map[stats.DropReason]uint64{stats.DropTTL: 5},
	}
	b, err := ResultsJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	var back stats.Results
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.DataSent != 100 || back.PDR != 0.95 || back.RoutingByType["RREQ"] != 10 ||
		back.HopExcess[1] != 5 || back.Drops[stats.DropTTL] != 5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	b, err := SweepJSON(fakeSweep())
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.XLabel != "pause_s" || len(back.Cells[DSR]) != 2 || back.Cells[AODV][1].PDR != 0.98 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestFigureJSON(t *testing.T) {
	f := Figure{ID: "fig1", Title: "PDR vs pause", Metric: MetricPDR, Sweep: fakeSweep()}
	b, err := FigureJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		ID     string               `json:"id"`
		Metric string               `json:"metric"`
		Unit   string               `json:"unit"`
		XLabel string               `json:"x_label"`
		Xs     []float64            `json:"xs"`
		Series map[string][]float64 `json:"series"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != "fig1" || out.Metric != "pdr" || out.Unit != "%" || out.XLabel != "pause_s" {
		t.Fatalf("figure header = %+v", out)
	}
	// MetricPDR scales to percent: 0.95 → 95.
	if len(out.Series[DSR]) != 2 || out.Series[DSR][0] != 95 {
		t.Fatalf("series = %v", out.Series)
	}
}

func TestGridJSON(t *testing.T) {
	g := &GridResult{
		Labels:    []string{"txrange_m", "rate_pps"},
		Points:    [][]float64{{150, 2}, {150, 8}},
		Protocols: []string{DSR},
		Cells:     map[string][]stats.Results{DSR: {{PDR: 0.9}, {PDR: 0.8}}},
	}
	b, err := GridJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	var back GridResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 2 || back.Cells[DSR][1].PDR != 0.8 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
