package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"adhocsim/internal/geo"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
)

// TestSweepCustomTxRangeAxis sweeps the transmission range — an axis the v1
// API (four hard-coded sweeps) could not express.
func TestSweepCustomTxRangeAxis(t *testing.T) {
	opts := DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{DSR}
	opts.Seeds = []int64{1}
	axis := TxRangeAxis([]float64{120, 250})
	sweep, err := Sweep(context.Background(), opts, axis)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.XLabel != "txrange_m" || len(sweep.Xs) != 2 {
		t.Fatalf("sweep axis = %q %v", sweep.XLabel, sweep.Xs)
	}
	short, long := sweep.Cells[DSR][0], sweep.Cells[DSR][1]
	if short.DataSent == 0 || long.DataSent == 0 {
		t.Fatal("degenerate sweep cells")
	}
	// Halving the radio range on the same scenario must change the
	// simulation outcome (fewer links, longer or broken routes).
	if short.DataDelivered == long.DataDelivered && short.RoutingTxPackets == long.RoutingTxPackets {
		t.Fatalf("txrange axis had no effect: %+v vs %+v", short, long)
	}
}

// TestLegacyWrappersMatchGenericSweep pins the wrapper contract: the named
// study sweeps must produce exactly what Sweep produces for the matching
// catalogue axis.
func TestLegacyWrappersMatchGenericSweep(t *testing.T) {
	opts := DefaultOptions()
	opts.Base = smallSpec()
	opts.Base.Duration = 30 * sim.Second
	opts.Protocols = []string{AODV}
	opts.Seeds = []int64{1}
	pauses := []float64{0, 30}

	legacy, err := PauseSweep(context.Background(), opts, pauses)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := Sweep(context.Background(), opts, PauseAxis(pauses))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.XLabel != generic.XLabel {
		t.Fatalf("labels differ: %q vs %q", legacy.XLabel, generic.XLabel)
	}
	for xi := range pauses {
		l, g := legacy.Cells[AODV][xi], generic.Cells[AODV][xi]
		if l.DataSent != g.DataSent || l.DataDelivered != g.DataDelivered ||
			l.RoutingTxPackets != g.RoutingTxPackets || l.AvgDelay != g.AvgDelay {
			t.Fatalf("point %d differs: %+v vs %+v", xi, l, g)
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	// A deliberately long job queue: full-scale scenarios that would take
	// tens of seconds to finish. Cancelling shortly after the start must
	// interrupt in-flight simulations, not just pending dispatch.
	opts := DefaultOptions()
	opts.Protocols = []string{DSR, AODV}
	opts.Seeds = []int64{1, 2}
	opts.Base.Duration = 600 * sim.Second

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Sweep(ctx, opts, PauseAxis([]float64{0, 300, 600}))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestRunHonoursPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, RunConfig{Spec: smallSpec(), Protocol: DSR, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepProgressReporting(t *testing.T) {
	opts := DefaultOptions()
	opts.Base = smallSpec()
	opts.Base.Duration = 20 * sim.Second
	opts.Protocols = []string{DSR}
	opts.Seeds = []int64{1, 2}
	var calls []Progress
	opts.OnProgress = func(p Progress) { calls = append(calls, p) }

	if _, err := Sweep(context.Background(), opts, PauseAxis([]float64{0, 20})); err != nil {
		t.Fatal(err)
	}
	const total = 1 * 2 * 2 // protocols × points × seeds
	if len(calls) != total {
		t.Fatalf("progress calls = %d, want %d", len(calls), total)
	}
	for i, p := range calls {
		if p.Done != i+1 || p.Total != total {
			t.Fatalf("call %d = %+v (Done must be monotone, Total fixed)", i, p)
		}
		if p.Protocol != DSR || p.Axis != "pause_s" {
			t.Fatalf("call %d annotations = %+v", i, p)
		}
	}
}

func TestGridCrossProduct(t *testing.T) {
	opts := DefaultOptions()
	opts.Base = smallSpec()
	opts.Base.Duration = 20 * sim.Second
	opts.Protocols = []string{DSR}
	opts.Seeds = []int64{1}

	grid, err := Grid(context.Background(), opts,
		TxRangeAxis([]float64{150, 250}),
		RateAxis([]float64{2, 8}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Labels) != 2 || grid.Labels[0] != "txrange_m" || grid.Labels[1] != "rate_pps" {
		t.Fatalf("labels = %v", grid.Labels)
	}
	wantPoints := [][]float64{{150, 2}, {150, 8}, {250, 2}, {250, 8}}
	if len(grid.Points) != len(wantPoints) {
		t.Fatalf("points = %v", grid.Points)
	}
	for i, want := range wantPoints {
		if grid.Points[i][0] != want[0] || grid.Points[i][1] != want[1] {
			t.Fatalf("point %d = %v, want %v (last axis fastest)", i, grid.Points[i], want)
		}
	}
	if i := grid.Point(250, 8); i != 3 {
		t.Fatalf("Point(250,8) = %d", i)
	}
	if i := grid.Point(99, 99); i != -1 {
		t.Fatalf("Point(99,99) = %d, want -1", i)
	}
	cells := grid.Cells[DSR]
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// The high-rate points must carry more offered traffic than the
	// low-rate points at the same range.
	if cells[1].DataSent <= cells[0].DataSent {
		t.Fatalf("rate axis had no effect: %d vs %d sent", cells[1].DataSent, cells[0].DataSent)
	}
}

func TestAxisByName(t *testing.T) {
	axis, err := AxisByName("txrange", nil)
	if err != nil {
		t.Fatal(err)
	}
	if axis.Label != "txrange_m" || len(axis.Values) == 0 {
		t.Fatalf("axis = %+v", axis)
	}
	spec := scenario.Default()
	axis.Apply(&spec, 123)
	if spec.TxRange != 123 {
		t.Fatalf("apply did not set TxRange: %v", spec.TxRange)
	}
	if _, err := AxisByName("warp-factor", nil); err == nil {
		t.Fatal("unknown axis accepted")
	}
	for _, name := range AxisNames() {
		a, err := AxisByName(name, nil)
		if err != nil {
			t.Errorf("catalogue axis %q: %v", name, err)
			continue
		}
		r, err := a.Resolved(scenario.Default())
		if err != nil {
			t.Errorf("catalogue axis %q does not resolve: %v", name, err)
		} else if len(r.Values) == 0 {
			t.Errorf("catalogue axis %q resolved to no values", name)
		}
	}
}

// TestPauseAxisDefaultsScaleWithDuration pins the v2 default-resolution
// contract: PauseAxis(nil) must not sweep past the scenario horizon.
func TestPauseAxisDefaultsScaleWithDuration(t *testing.T) {
	base := scenario.Default()
	base.Duration = 150 * sim.Second
	a, err := PauseAxis(nil).Resolved(base)
	if err != nil {
		t.Fatal(err)
	}
	if last := a.Values[len(a.Values)-1]; last != 150 {
		t.Fatalf("pause defaults = %v, want scaled to 150 s horizon", a.Values)
	}
}

func TestSweepRejectsInvalidAxis(t *testing.T) {
	opts := DefaultOptions()
	opts.Base = smallSpec()
	if _, err := Sweep(context.Background(), opts, Axis{Label: "broken"}); err == nil {
		t.Fatal("axis without Apply accepted")
	}
	if _, err := Sweep(context.Background(), opts, TxRangeAxis(nil).WithValues(nil)); err == nil {
		t.Fatal("axis without values accepted")
	}
	// An explicit empty slice must error loudly, never fall back to the
	// full default sweep — even for PauseAxis, whose nil form has a
	// Defaults hook.
	if _, err := Sweep(context.Background(), opts, PauseAxis([]float64{})); err == nil {
		t.Fatal("empty pause list accepted")
	}
	if _, err := DensitySweep(context.Background(), opts, []float64{}); err == nil {
		t.Fatal("empty density list accepted")
	}
}

func TestScaleAxisHoldsDensity(t *testing.T) {
	base := scenario.Default() // 40 nodes over 1500×300
	density := float64(base.Nodes) / base.Area.Area()
	a := ScaleAxis(nil)
	if a.Label != "nodes_scaled" {
		t.Fatalf("label = %q", a.Label)
	}
	for _, x := range []float64{50, 200, 500, 5000, 10000} {
		s := base
		a.Apply(&s, x)
		if s.Nodes != int(x) {
			t.Fatalf("nodes = %d, want %d", s.Nodes, int(x))
		}
		got := float64(s.Nodes) / s.Area.Area()
		if rel := (got - density) / density; rel > 0.01 || rel < -0.01 {
			t.Fatalf("x=%v: density %.3g, want %.3g (area %+v)", x, got, density, s.Area)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("x=%v: scaled spec invalid: %v", x, err)
		}
	}
	if _, err := AxisByName("scale", nil); err != nil {
		t.Fatalf("scale axis not in catalogue: %v", err)
	}
}

func TestModelAxes(t *testing.T) {
	a := MobilityModelAxis([]string{"waypoint", "gauss-markov"})
	if a.Label != "mobility_model" || len(a.Values) != 2 {
		t.Fatalf("axis = %+v", a)
	}
	if a.FormatValue(1) != "gauss-markov" {
		t.Fatalf("FormatValue(1) = %q", a.FormatValue(1))
	}
	s := scenario.Default()
	a.Apply(&s, 1)
	if s.Mobility.Name != "gauss-markov" {
		t.Fatalf("Apply left mobility %+v", s.Mobility)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	tr := TrafficModelAxis(nil) // full registry
	if len(tr.Values) < 3 {
		t.Fatalf("registry traffic axis too small: %+v", tr)
	}
	tr.Apply(&s, 0) // sorted registry: "cbr" first
	if s.Traffic.Name != "cbr" {
		t.Fatalf("traffic = %+v", s.Traffic)
	}

	if _, err := ModelAxisByName("mobility", []string{"teleport"}); err == nil {
		t.Fatal("unknown mobility model accepted")
	}
	if _, err := ModelAxisByName("pause", []string{"waypoint"}); err == nil {
		t.Fatal("non-model axis accepted model names")
	}
	// The catalogue route resolves the model axes by index.
	axis, err := AxisByName("mobility", nil)
	if err != nil {
		t.Fatal(err)
	}
	if axis.Label != "mobility_model" || len(axis.Values) == 0 {
		t.Fatalf("catalogue mobility axis = %+v", axis)
	}
}

// TestRadioModelAxis: the radio axis applies registry names into
// Spec.Radio, keeps the base spec's tuned params when re-selecting its own
// model, and — unlike params — preserves the SINR reception switch across
// model changes (propagation and reception are orthogonal dimensions).
func TestRadioModelAxis(t *testing.T) {
	a := RadioModelAxis([]string{"tworay", "shadowing"})
	if a.Label != "radio_model" || a.FormatValue(1) != "shadowing" {
		t.Fatalf("axis = %+v", a)
	}
	s := scenario.Default()
	s.Radio.SINR = true
	a.Apply(&s, 1)
	if s.Radio.Name != "shadowing" || !s.Radio.SINR {
		t.Fatalf("Apply left radio %+v", s.Radio)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-selecting the base's own model keeps its params.
	s.Radio.Params = map[string]float64{"sigma_db": 7}
	a.Apply(&s, 1)
	if s.Radio.Params["sigma_db"] != 7 {
		t.Fatalf("base params dropped: %+v", s.Radio)
	}
	// Switching models resets params but not the reception mode; the empty
	// base name aliases tworay.
	a.Apply(&s, 0)
	if s.Radio.Name != "tworay" || s.Radio.Params != nil || !s.Radio.SINR {
		t.Fatalf("switch mishandled radio %+v", s.Radio)
	}
	s2 := scenario.Default()
	s2.Radio.Params = map[string]float64{"capture_ratio": 6}
	a.Apply(&s2, 0)
	if s2.Radio.Params["capture_ratio"] != 6 {
		t.Fatalf("default-name params dropped: %+v", s2.Radio)
	}

	if _, err := ModelAxisByName("radio", []string{"warpdrive"}); err == nil {
		t.Fatal("unknown radio model accepted")
	}
	if _, err := ModelAxisByName("radio", []string{"tworay", "TwoRay"}); err == nil {
		t.Fatal("duplicate radio models accepted")
	}
	axis, err := AxisByName("radio", nil)
	if err != nil {
		t.Fatal(err)
	}
	if axis.Label != "radio_model" || len(axis.Values) < 6 {
		t.Fatalf("catalogue radio axis = %+v", axis)
	}
}

// TestRadioModelSweepProducesDistinctCells: a real (tiny) sweep across
// radio models must reshape the metrics — the end-to-end guarantee that
// the channel condition actually reaches the PHY.
func TestRadioModelSweepProducesDistinctCells(t *testing.T) {
	opts := DefaultOptions()
	opts.Base.Nodes = 12
	opts.Base.Area = geo.Rect{W: 600, H: 300}
	opts.Base.Duration = 20 * sim.Second
	opts.Base.Sources = 3
	opts.Protocols = []string{DSR}
	opts.Seeds = []int64{1}
	sweep, err := Sweep(context.Background(), opts,
		RadioModelAxis([]string{"tworay", "freespace", "shadowing"}))
	if err != nil {
		t.Fatal(err)
	}
	cells := sweep.Cells[DSR]
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	if sweep.XTicks[2] != "shadowing" {
		t.Fatalf("ticks = %v", sweep.XTicks)
	}
	distinct := false
	for i := 1; i < len(cells); i++ {
		if !reflect.DeepEqual(cells[i], cells[0]) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("every radio model produced identical results (axis not applied?)")
	}
}

// TestModelAxisSweepProducesDistinctCells runs a tiny real sweep across
// mobility models and requires the per-model metric cells to differ — the
// end-to-end guarantee that the axis actually reshapes the workload.
func TestModelAxisSweepProducesDistinctCells(t *testing.T) {
	opts := DefaultOptions()
	opts.Base.Nodes = 12
	opts.Base.Area = geo.Rect{W: 600, H: 300}
	opts.Base.Duration = 20 * sim.Second
	opts.Base.Sources = 3
	opts.Protocols = []string{DSR}
	opts.Seeds = []int64{1}
	sweep, err := Sweep(context.Background(), opts,
		MobilityModelAxis([]string{"waypoint", "gauss-markov", "manhattan"}))
	if err != nil {
		t.Fatal(err)
	}
	cells := sweep.Cells[DSR]
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	distinct := false
	for i := 1; i < len(cells); i++ {
		if !reflect.DeepEqual(cells[i], cells[0]) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("every mobility model produced identical results (axis not applied?)")
	}
}

// TestModelAxisRejectsBadIndices: the float-valued route into the model
// axes (AxisByName / campaign "values") must reject out-of-range or
// fractional indices at resolution time — a silent Apply no-op would run a
// mislabeled default-model cell.
func TestModelAxisRejectsBadIndices(t *testing.T) {
	base := scenario.Default()
	for _, vs := range [][]float64{{0, 99}, {-1}, {1.5}, {0, 0}} {
		axis, err := AxisByName("mobility", vs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := axis.Resolved(base); err == nil {
			t.Fatalf("values %v accepted", vs)
		}
	}
	axis, err := AxisByName("traffic", []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := axis.Resolved(base); err != nil {
		t.Fatalf("valid indices rejected: %v", err)
	}
}

// TestModelAxisRejectsDuplicateNames: duplicate model names would expand
// into cells with identical labels and therefore identical replication
// seeds.
func TestModelAxisRejectsDuplicateNames(t *testing.T) {
	if _, err := ModelAxisByName("mobility", []string{"waypoint", "Waypoint"}); err == nil {
		t.Fatal("duplicate model names accepted")
	}
	if _, err := ModelAxisByName("traffic", []string{"cbr", "cbr"}); err == nil {
		t.Fatal("duplicate traffic models accepted")
	}
}

// TestModelAxisKeepsBaseParams: re-selecting the base spec's own model on
// a model axis must keep its tuned Params; switching models resets them.
func TestModelAxisKeepsBaseParams(t *testing.T) {
	a := MobilityModelAxis([]string{"waypoint", "gauss-markov"})
	s := scenario.Default()
	s.Mobility = scenario.MobilitySpec{Name: "gauss-markov", Params: map[string]float64{"alpha": 0.95}}
	a.Apply(&s, 1) // gauss-markov: the base's own model
	if s.Mobility.Params["alpha"] != 0.95 {
		t.Fatalf("base params dropped: %+v", s.Mobility)
	}
	a.Apply(&s, 0) // waypoint: a different model, params reset
	if s.Mobility.Name != "waypoint" || s.Mobility.Params != nil {
		t.Fatalf("switch did not reset params: %+v", s.Mobility)
	}
	// The empty base name aliases the default model.
	s2 := scenario.Default()
	s2.Mobility.Params = map[string]float64{"pause_s": 5}
	a.Apply(&s2, 0) // waypoint == default
	if s2.Mobility.Params["pause_s"] != 5 {
		t.Fatalf("default-name params dropped: %+v", s2.Mobility)
	}
}

// TestSweepTicksCarryModelNames: sweep results and their renders/JSON must
// name the swept models, not the opaque indices.
func TestSweepTicksCarryModelNames(t *testing.T) {
	opts := DefaultOptions()
	opts.Base.Nodes = 10
	opts.Base.Area = geo.Rect{W: 500, H: 300}
	opts.Base.Duration = 10 * sim.Second
	opts.Base.Sources = 2
	opts.Protocols = []string{DSR}
	opts.Seeds = []int64{1}
	sweep, err := Sweep(context.Background(), opts, MobilityModelAxis([]string{"waypoint", "gauss-markov"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.XTicks) != 2 || sweep.XTicks[1] != "gauss-markov" {
		t.Fatalf("ticks = %v", sweep.XTicks)
	}
	fig := Figure{ID: "m", Title: "models", Metric: MetricPDR, Sweep: sweep}
	if txt := RenderFigure(fig); !strings.Contains(txt, "gauss-markov") {
		t.Fatalf("table render lost model names:\n%s", txt)
	}
	if csv := RenderFigureCSV(fig); !strings.Contains(csv, "gauss-markov,DSR,") {
		t.Fatalf("csv render lost model names:\n%s", csv)
	}
	b, err := FigureJSON(fig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"x_ticks"`) || !strings.Contains(string(b), "gauss-markov") {
		t.Fatalf("figure JSON lost model names:\n%s", b)
	}
}
