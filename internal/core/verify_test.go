package core

import (
	"strings"
	"testing"

	"adhocsim/internal/stats"
)

// fabricated result sets that match / violate the documented shapes.
func goodShape() (mobile, static map[string]stats.Results) {
	mobile = map[string]stats.Results{
		DSR: {PDR: 0.96, AvgDelay: 0.06, RoutingTxPackets: 9000, NormalizedRoutingLoad: 1.1,
			RoutingByType: map[string]uint64{"RREQ": 5000}},
		AODV: {PDR: 0.97, AvgDelay: 0.05, RoutingTxPackets: 19000, NormalizedRoutingLoad: 2.4,
			RoutingByType: map[string]uint64{"RREQ": 14000}},
		PAODV: {PDR: 0.96, AvgDelay: 0.06, RoutingTxPackets: 26000, NormalizedRoutingLoad: 3.3,
			RoutingByType: map[string]uint64{"RREQ": 16000}},
		CBRP: {PDR: 0.99, AvgDelay: 0.09, RoutingTxPackets: 14000, NormalizedRoutingLoad: 1.7,
			RoutingByType: map[string]uint64{"RREQ": 7000, "HELLO": 6000}},
		DSDV: {PDR: 0.82, AvgDelay: 0.005, RoutingTxPackets: 10000, NormalizedRoutingLoad: 1.5,
			RoutingByType: map[string]uint64{"UPDATE": 10000}},
	}
	static = map[string]stats.Results{
		DSR:   {PDR: 0.999, RoutingTxPackets: 600},
		AODV:  {PDR: 0.997, RoutingTxPackets: 5700},
		PAODV: {PDR: 0.999, RoutingTxPackets: 10000},
		CBRP:  {PDR: 0.999, RoutingTxPackets: 14000},
		DSDV:  {PDR: 0.999, RoutingTxPackets: 9100},
	}
	return mobile, static
}

func TestFindingsPassOnDocumentedShape(t *testing.T) {
	mobile, static := goodShape()
	for _, f := range Findings() {
		ok, detail := f.Check(mobile, static)
		if !ok {
			t.Errorf("%s failed on the documented shape: %s", f.ID, detail)
		}
		if detail == "" {
			t.Errorf("%s produced no detail", f.ID)
		}
	}
}

func TestFindingsCatchViolations(t *testing.T) {
	byID := map[string]Finding{}
	for _, f := range Findings() {
		byID[f.ID] = f
	}

	// DSR more expensive than AODV: F1 must fail.
	mobile, static := goodShape()
	r := mobile[DSR]
	r.RoutingTxPackets = 50000
	mobile[DSR] = r
	if ok, _ := byID["F1-dsr-beats-aodv-overhead"].Check(mobile, static); ok {
		t.Error("F1 did not catch inverted overhead")
	}

	// DSDV delivering more than everyone: F2 must fail.
	mobile, static = goodShape()
	r = mobile[DSDV]
	r.PDR = 0.999
	mobile[DSDV] = r
	if ok, _ := byID["F2-ondemand-beats-dsdv-pdr"].Check(mobile, static); ok {
		t.Error("F2 did not catch DSDV winning PDR")
	}

	// DSDV overhead exploding when static: F3 must fail.
	mobile, static = goodShape()
	r = static[DSDV]
	r.RoutingTxPackets = 100000
	static[DSDV] = r
	if ok, _ := byID["F3-dsdv-overhead-flat"].Check(mobile, static); ok {
		t.Error("F3 did not catch non-flat DSDV overhead")
	}

	// Lossy static network: F7 must fail.
	mobile, static = goodShape()
	r = static[AODV]
	r.PDR = 0.5
	static[AODV] = r
	if ok, _ := byID["F7-static-near-lossless"].Check(mobile, static); ok {
		t.Error("F7 did not catch static losses")
	}

	// CBRP flooding more than AODV: F8 must fail.
	mobile, static = goodShape()
	r = mobile[CBRP]
	r.RoutingByType = map[string]uint64{"RREQ": 50000, "HELLO": 6000}
	mobile[CBRP] = r
	if ok, _ := byID["F8-cbrp-cheap-floods"].Check(mobile, static); ok {
		t.Error("F8 did not catch CBRP out-flooding AODV")
	}
}

func TestRenderVerify(t *testing.T) {
	results := []VerifyResult{
		{Finding: Finding{ID: "x", Claim: "c"}, Pass: true, Detail: "d1"},
		{Finding: Finding{ID: "y", Claim: "c2"}, Pass: false, Detail: "d2"},
	}
	out := RenderVerify(results)
	if !strings.Contains(out, "[PASS] x") || !strings.Contains(out, "[FAIL] y") {
		t.Fatalf("report:\n%s", out)
	}
	if !strings.Contains(out, "1/2 findings reproduced") {
		t.Fatalf("tally missing:\n%s", out)
	}
}
