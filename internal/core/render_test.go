package core

import (
	"strings"
	"testing"

	"adhocsim/internal/stats"
)

func fakeSweep() *SweepResult {
	return &SweepResult{
		XLabel:    "pause_s",
		Xs:        []float64{0, 30},
		Protocols: []string{DSR, AODV},
		Cells: map[string][]stats.Results{
			DSR: {
				{PDR: 0.95, AvgDelay: 0.010, RoutingTxPackets: 100, NormalizedRoutingLoad: 1.0, ThroughputKbps: 20},
				{PDR: 0.99, AvgDelay: 0.008, RoutingTxPackets: 50, NormalizedRoutingLoad: 0.5, ThroughputKbps: 21},
			},
			AODV: {
				{PDR: 0.93, AvgDelay: 0.012, RoutingTxPackets: 300, NormalizedRoutingLoad: 3.0, ThroughputKbps: 19},
				{PDR: 0.98, AvgDelay: 0.009, RoutingTxPackets: 120, NormalizedRoutingLoad: 1.2, ThroughputKbps: 20},
			},
		},
	}
}

func TestRenderFigureLayout(t *testing.T) {
	f := Figure{ID: "fig1", Title: "PDR vs pause", Metric: MetricPDR, Sweep: fakeSweep()}
	out := RenderFigure(f)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 data rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "FIG1") || !strings.Contains(lines[0], "%") {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "DSR") || !strings.Contains(lines[1], "AODV") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.Contains(lines[2], "95.000") || !strings.Contains(lines[2], "93.000") {
		t.Fatalf("row 0 %q", lines[2])
	}
}

func TestRenderFigureCSVRoundTrip(t *testing.T) {
	f := Figure{ID: "fig2", Title: "overhead", Metric: MetricOverhead, Sweep: fakeSweep()}
	csv := RenderFigureCSV(f)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2*2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "pause_s,protocol,routing_overhead_pkts" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "0,DSR,100" || lines[2] != "0,AODV,300" {
		t.Fatalf("rows %q %q", lines[1], lines[2])
	}
}

func TestRenderSummaryTable(t *testing.T) {
	res := map[string]stats.Results{
		DSR:  {PDR: 0.9, AvgDelay: 0.01, NormalizedRoutingLoad: 1, AvgHops: 2.5},
		DSDV: {PDR: 0.5, AvgDelay: 0.002, NormalizedRoutingLoad: 4, AvgHops: 2.0},
	}
	out := RenderSummaryTable(res, []string{DSR, DSDV})
	if !strings.Contains(out, "pdr (%)") || !strings.Contains(out, "90.000") || !strings.Contains(out, "50.000") {
		t.Fatalf("summary:\n%s", out)
	}
}

func TestRenderOverheadBreakdown(t *testing.T) {
	res := map[string]stats.Results{
		DSR:  {RoutingByType: map[string]uint64{"RREQ": 10, "RREP": 5}},
		DSDV: {},
	}
	out := RenderOverheadBreakdown(res, []string{DSR, DSDV})
	if !strings.Contains(out, "RREP=5  RREQ=10") {
		t.Fatalf("breakdown not sorted/complete:\n%s", out)
	}
	if !strings.Contains(out, "(none)") {
		t.Fatalf("empty protocol row missing:\n%s", out)
	}
}

func TestRenderPathOptimality(t *testing.T) {
	hist := map[string]map[int]uint64{
		DSR:  {0: 80, 1: 15, 2: 5},
		AODV: {0: 90, 1: 10},
	}
	out := RenderPathOptimality(hist, []string{DSR, AODV})
	if !strings.Contains(out, "80.0%") || !strings.Contains(out, "90.0%") {
		t.Fatalf("histogram:\n%s", out)
	}
	if !strings.Contains(out, "+0") || !strings.Contains(out, "..") {
		t.Fatalf("labels:\n%s", out)
	}
}

func TestRenderParameters(t *testing.T) {
	out := RenderParameters(DefaultOptions())
	for _, want := range []string{"nodes", "40", "1500 x 300 m", "random waypoint", "802.11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("parameters missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultPausesScaling(t *testing.T) {
	full := DefaultPauses(900 * 1e9)
	if len(full) != 7 || full[6] != 900 {
		t.Fatalf("full pauses = %v", full)
	}
	half := DefaultPauses(450 * 1e9)
	if half[6] != 450 || half[0] != 0 {
		t.Fatalf("scaled pauses = %v", half)
	}
}

func TestSortProtocols(t *testing.T) {
	ps := []string{DSDV, Flood, DSR, CBRP, AODV, PAODV}
	SortProtocols(ps)
	want := []string{DSR, AODV, PAODV, CBRP, DSDV, Flood}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("sorted = %v", ps)
		}
	}
}
