package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing/aodv"
	"adhocsim/internal/routing/autoconf"
	"adhocsim/internal/routing/cbrp"
	"adhocsim/internal/routing/dsdv"
	"adhocsim/internal/routing/dsr"
	"adhocsim/internal/routing/flood"
	"adhocsim/internal/routing/paodv"
)

// BuildContext carries the per-run inputs a protocol builder may need:
// the radio parameters of the scenario (PAODV derives its warning threshold
// from them) and the ablation tweaks threaded through Options.
type BuildContext struct {
	Radio  phy.RadioParams
	Tweaks ProtocolTweaks
}

// ProtocolBuilder constructs a per-node protocol factory for one run.
// Builders must be pure: they are called once per simulation run, possibly
// from many goroutines at once.
type ProtocolBuilder func(BuildContext) (network.ProtocolFactory, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]ProtocolBuilder)
)

// canonicalName normalizes protocol names: the registry is case-insensitive
// and whitespace-trimmed, so "dsr" and "DSR" resolve to the same entry.
func canonicalName(name string) string {
	return strings.ToUpper(strings.TrimSpace(name))
}

// RegisterProtocol adds a routing protocol under the given name, making it
// available to Run, the sweep helpers and every cmd tool. Registration is
// open: code outside this package (including outside internal/) can plug in
// new protocols or ablation variants without touching the harness. Names
// are case-insensitive; registering an empty name, a nil builder, or a name
// already taken is an error.
func RegisterProtocol(name string, builder ProtocolBuilder) error {
	key := canonicalName(name)
	if key == "" {
		return fmt.Errorf("core: empty protocol name")
	}
	if builder == nil {
		return fmt.Errorf("core: nil builder for protocol %q", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("core: protocol %q already registered", key)
	}
	registry[key] = builder
	return nil
}

// mustRegister is RegisterProtocol for the built-ins, where failure is a
// programming error.
func mustRegister(name string, builder ProtocolBuilder) {
	if err := RegisterProtocol(name, builder); err != nil {
		panic(err)
	}
}

// UnregisterProtocol removes a registered protocol. It exists so tests can
// clean up fixtures; built-ins should not be unregistered.
func UnregisterProtocol(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, canonicalName(name))
}

// RegisteredProtocols returns every registered protocol name, sorted.
func RegisteredProtocols() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FactoryFor resolves a protocol name through the registry to a per-node
// factory. Radio parameters are needed by PAODV (its warning threshold is a
// received-power level).
func FactoryFor(name string, radio phy.RadioParams, tweaks ProtocolTweaks) (network.ProtocolFactory, error) {
	registryMu.RLock()
	builder := registry[canonicalName(name)]
	registryMu.RUnlock()
	if builder == nil {
		return nil, fmt.Errorf("core: unknown protocol %q (registered: %s)",
			name, strings.Join(RegisteredProtocols(), ", "))
	}
	return builder(BuildContext{Radio: radio, Tweaks: tweaks})
}

// The study protocols self-register so that FactoryFor and external
// registrations resolve through one mechanism.
func init() {
	mustRegister(DSR, func(bc BuildContext) (network.ProtocolFactory, error) {
		return dsr.Factory(bc.Tweaks.DSR), nil
	})
	mustRegister(AODV, func(bc BuildContext) (network.ProtocolFactory, error) {
		return aodv.Factory(bc.Tweaks.AODV), nil
	})
	mustRegister(PAODV, func(bc BuildContext) (network.ProtocolFactory, error) {
		return paodv.Factory(paodv.Config{AODV: bc.Tweaks.AODV, Radio: bc.Radio}), nil
	})
	mustRegister(CBRP, func(bc BuildContext) (network.ProtocolFactory, error) {
		return cbrp.Factory(bc.Tweaks.CBRP), nil
	})
	mustRegister(DSDV, func(bc BuildContext) (network.ProtocolFactory, error) {
		return dsdv.Factory(bc.Tweaks.DSDV), nil
	})
	mustRegister(Flood, func(bc BuildContext) (network.ProtocolFactory, error) {
		return flood.Factory(flood.Config{}), nil
	})
	mustRegister(Autoconf, func(bc BuildContext) (network.ProtocolFactory, error) {
		return autoconf.Factory(autoconf.Config{}), nil
	})
}
